"""The replay loop: crash at every frontier, recover, judge.

One exploration is a pure function of ``(target, mode, frontier)`` - a
fresh system, a deterministic replay to the frontier, ``machine.crash()``,
:class:`~repro.core.recovery.RecoveryManager`, invariants - so frontiers
are embarrassingly parallel.  :func:`explore_frontier` is the module-level,
picklable unit of work the multiprocessing fan-out dispatches; it is also
what the CLI's ``--frontier`` flag calls directly to replay one reported
violation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..sim.crash import CrashInjector, SimulatedCrash
from ..workloads.base import Mode
from .frontier import Frontier, FrontierRecorder, prune_frontiers
from .oracle import InvariantVerdict, RunObservation, normalize_invariants
from .oracles import make_oracle

#: default exploration budget per (target, mode)
DEFAULT_MAX_FRONTIERS = 128


@dataclass
class FrontierResult:
    """What happened when the target was crashed at one frontier."""

    frontier: Frontier
    status: str                      # "ok" | "violation" | "error" | "no-crash"
    verdicts: list[InvariantVerdict] = field(default_factory=list)
    error: str = ""
    #: Generating coordinates of this crash state (litmus ``seed``/
    #: ``index``/``config``, ...) so a failure report prints its one-line
    #: reproducer without re-running the exploration.
    provenance: dict = field(default_factory=dict)

    @property
    def failed_verdicts(self) -> list[InvariantVerdict]:
        return [v for v in self.verdicts if not v.ok]


@dataclass
class ExploreReport:
    """Outcome of one systematic exploration."""

    target: str
    mode: Mode
    frontiers_recorded: int
    results: list[FrontierResult] = field(default_factory=list)
    provenance: dict = field(default_factory=dict)

    @property
    def frontiers_explored(self) -> int:
        return len(self.results)

    @property
    def frontiers_pruned(self) -> int:
        return self.frontiers_recorded - len(self.results)

    @property
    def violations(self) -> list[FrontierResult]:
        return [r for r in self.results if r.status == "violation"]

    @property
    def errors(self) -> list[FrontierResult]:
        return [r for r in self.results if r.status in ("error", "no-crash")]

    @property
    def ok(self) -> bool:
        return not self.violations and not self.errors

    def describe(self) -> str:
        from .report import render_report

        return render_report(self)


def explore_frontier(target: str, mode_value: str, frontier: Frontier,
                     provenance: dict | None = None) -> FrontierResult:
    """Crash ``target`` at one frontier, recover, evaluate invariants.

    Module-level and picklable (multiprocessing fan-out), and the direct
    implementation of a ``--frontier`` reproducer: the outcome is a pure
    function of the arguments.  ``provenance`` (the generating seed/config
    when a generator produced this crash state) rides along on the result
    and the recovery report, so failures can print exact reproducers
    without re-exploring.
    """
    provenance = dict(provenance or {})

    def result(status: str, verdicts=(), error: str = "") -> FrontierResult:
        return FrontierResult(frontier, status, list(verdicts), error,
                              provenance=provenance)

    mode = Mode(mode_value)
    oracle = make_oracle(target)
    system = oracle.build_system(mode)
    injector = CrashInjector(system.machine)
    observation = RunObservation()
    system.events.subscribe(observation)
    if frontier.mechanism == "event":
        injector.arm_at_frontier(frontier.value)
    elif frontier.mechanism == "threads":
        injector.arm(frontier.value)
    else:
        return result("error",
                      error=f"unknown mechanism {frontier.mechanism!r}")
    crashed = False
    try:
        oracle.execute(system, mode, injector)
    except SimulatedCrash:
        crashed = True
    except Exception as exc:
        return result("error", error=f"run raised {type(exc).__name__}: {exc}")
    finally:
        injector.disarm()
        system.events.unsubscribe(observation)
    if not crashed:
        # A deterministic replay must crash where the reference run said it
        # would; reaching completion means determinism itself broke.
        return result("no-crash", error="armed frontier never fired")
    system.machine.drop_volatile_regions()
    try:
        oracle.recover(system, mode,
                       provenance={**provenance,
                                   "frontier": frontier.spec()}
                       if provenance else None)
    except Exception as exc:
        return result("error",
                      error=f"recovery raised {type(exc).__name__}: {exc}")
    try:
        checks = normalize_invariants(
            oracle.declare_invariants(system, mode, observation))
    except Exception as exc:
        return result(
            "error",
            error=f"declare_invariants raised {type(exc).__name__}: {exc}")
    verdicts = [check.evaluate() for check in checks]
    status = "ok" if all(v.ok for v in verdicts) else "violation"
    return result(status, verdicts)


class CrashExplorer:
    """Record a target's frontiers, then crash it at every one."""

    def __init__(self, target: str, mode: Mode = Mode.GPM,
                 max_frontiers: int = DEFAULT_MAX_FRONTIERS,
                 window_samples: int = 3, jobs: int = 1,
                 provenance: dict | None = None) -> None:
        self.target = target
        self.mode = mode
        self.max_frontiers = max_frontiers
        self.window_samples = window_samples
        self.jobs = max(1, jobs)
        #: Generating coordinates (litmus seed/config) stamped onto every
        #: FrontierResult and RecoveryReport this exploration produces.
        self.provenance = dict(provenance or {})

    def record(self) -> list[Frontier]:
        """One uninjected reference run, observed end to end."""
        oracle = make_oracle(self.target)
        system = oracle.build_system(self.mode)
        recorder = FrontierRecorder(window_samples=self.window_samples)
        system.events.subscribe(recorder.observe)
        try:
            injector = recorder if oracle.supports_thread_injection else None
            oracle.execute(system, self.mode, injector)
        finally:
            system.events.unsubscribe(recorder.observe)
        return recorder.frontiers()

    def explore(self) -> ExploreReport:
        frontiers = self.record()
        chosen = prune_frontiers(frontiers, self.max_frontiers)
        args = [(self.target, self.mode.value, f, self.provenance)
                for f in chosen]
        if self.jobs > 1 and len(chosen) > 1:
            import multiprocessing as mp

            with mp.get_context("fork").Pool(self.jobs) as pool:
                results = pool.starmap(explore_frontier, args)
        else:
            results = [explore_frontier(*a) for a in args]
        return ExploreReport(
            target=self.target, mode=self.mode,
            frontiers_recorded=len(frontiers), results=list(results),
            provenance=dict(self.provenance),
        )


def explore(target: str, mode: Mode = Mode.GPM,
            max_frontiers: int = DEFAULT_MAX_FRONTIERS,
            window_samples: int = 3, jobs: int = 1) -> ExploreReport:
    """Convenience wrapper: record + prune + explore, one call."""
    return CrashExplorer(target, mode, max_frontiers,
                         window_samples, jobs).explore()

"""Human-readable exploration reports with replayable reproducers.

Every violation or error line carries the exact command that replays it:
the frontier coordinate is deterministic, so the reproducer is too.
"""

from __future__ import annotations

from .explorer import ExploreReport, FrontierResult
from .frontier import format_frontier


def reproducer_command(target: str, mode_value: str, spec: str) -> str:
    return (f"PYTHONPATH=src python -m repro check {target} "
            f"--mode {mode_value} --frontier {spec}")


def litmus_reproducer_command(seed, index, config: str | None = None,
                              frontier: str | None = None,
                              mutant: str | None = None) -> str:
    """The one-liner replaying one generated litmus crash state exactly."""
    cmd = f"PYTHONPATH=src python -m repro check --litmus-replay {seed}:{index}"
    if config:
        cmd += f" --litmus-config {config}"
    if frontier and frontier != "reference":
        cmd += f" --frontier {frontier}"
    if mutant:
        cmd += f" --mutant {mutant}"
    return cmd


def provenance_reproducer(provenance: dict) -> str | None:
    """A reproducer derived from stored provenance alone (no re-run).

    Litmus-flavoured provenance (``seed``/``index``) yields the exact
    ``--litmus-replay`` command; anything else renders as inline
    ``key=value`` coordinates.
    """
    if not provenance:
        return None
    if "seed" in provenance and "index" in provenance:
        return litmus_reproducer_command(
            provenance["seed"], provenance["index"],
            provenance.get("config"), provenance.get("frontier"),
            provenance.get("mutant"))
    return " ".join(f"{k}={v}" for k, v in sorted(provenance.items()))


def _kind_histogram(report: ExploreReport) -> str:
    counts: dict[str, int] = {}
    for r in report.results:
        counts[r.frontier.kind] = counts.get(r.frontier.kind, 0) + 1
    return ", ".join(f"{k}: {n}" for k, n in sorted(counts.items()))


def _render_failure(report: ExploreReport, result: FrontierResult) -> list[str]:
    lines = [f"  at {format_frontier(result.frontier)}:"]
    if result.error:
        lines.append(f"    {result.status}: {result.error}")
    for v in result.failed_verdicts:
        lines.append(f"    FAILED {v.name}: {v.detail}")
    from_provenance = provenance_reproducer(result.provenance)
    if from_provenance is not None:
        lines.append("    reproduce: " + from_provenance)
    else:
        lines.append("    reproduce: " + reproducer_command(
            report.target, report.mode.value, result.frontier.spec()))
    return lines


def render_report(report: ExploreReport) -> str:
    """The full ``python -m repro check`` output."""
    lines = [
        f"crash-consistency check: {report.target} under {report.mode.value}",
        f"  frontiers recorded  {report.frontiers_recorded}",
        f"  frontiers explored  {report.frontiers_explored}"
        + (f" ({report.frontiers_pruned} pruned)" if report.frontiers_pruned else ""),
        f"  by kind             {_kind_histogram(report)}",
    ]
    invariant_names = sorted({v.name for r in report.results for v in r.verdicts})
    if invariant_names:
        lines.append("  invariants checked  " + ", ".join(invariant_names))
    violations = report.violations
    errors = report.errors
    if not violations and not errors:
        lines.append(f"PASS: zero invariant violations across "
                     f"{report.frontiers_explored} crash states")
        return "\n".join(lines)
    if violations:
        lines.append(f"VIOLATIONS ({len(violations)}):")
        for r in violations:
            lines.extend(_render_failure(report, r))
    if errors:
        lines.append(f"ERRORS ({len(errors)}):")
        for r in errors:
            lines.extend(_render_failure(report, r))
    return "\n".join(lines)


def render_litmus_report(report, repro_cmd=litmus_reproducer_command) -> str:
    """The full ``python -m repro check --litmus N`` output.

    ``report`` is a :class:`repro.check.litmus.LitmusReport`; every failure
    line carries the exact ``--litmus-replay`` command that replays it.
    """
    total = len(report.matrix)
    configs = len({r["config"] for r in report.matrix}) if report.matrix else 0
    states = sum(r["frontiers_explored"] for r in report.matrix)
    lines = [
        f"litmus fuzzing: {report.count} generated tests, seed {report.seed}",
        f"  config matrix       {configs} points "
        f"(persistency model x DDIO window x eADR)",
        f"  matrix executions   {total}",
        f"  crash states judged {states}",
    ]
    if report.corpus:
        bad = report.corpus_failures
        lines.append(f"  seed corpus         "
                     f"{len(report.corpus) - len(bad)}/{len(report.corpus)} ok")
        for row in bad:
            lines.append(f"    FAILED {row['target']}: expected "
                         f"{row['expected']}, got {row['recorded']} "
                         f"({row['detail']})")
    for mutant, info in report.sentinels.items():
        verdict = "caught" if info["caught"] else "UNDETECTED"
        lines.append(f"  sentinel {mutant:<16}{verdict} "
                     f"({len(info['detections'])} shown of "
                     f"{info['points']} mutated points)")
        for d in info["detections"]:
            lines.append(f"    {d['name']} at {d['frontier']} "
                         f"[test {d['index']}, {d['config']}]")
    failures = report.matrix_failures
    if failures:
        lines.append(f"VIOLATIONS ({len(failures)} matrix points):")
        for r in failures:
            lines.append(f"  test {r['seed']}:{r['index']} under {r['config']}:")
            for v in r["violations"][:4]:
                lines.append(f"    FAILED {v['name']} at {v['frontier']}: "
                             f"{v['detail']}")
            if len(r["violations"]) > 4:
                lines.append(f"    ... {len(r['violations']) - 4} more")
            lines.append("    reproduce: " + repro_cmd(
                r["seed"], r["index"], r["config"],
                r["violations"][0]["frontier"], r.get("mutant")))
    if report.ok:
        lines.append(f"PASS: {total} matrix points clean, every sentinel "
                     f"mutant caught")
    else:
        problems = []
        if failures:
            problems.append(f"{len(failures)} matrix violations")
        if report.corpus_failures:
            problems.append(f"{len(report.corpus_failures)} corpus failures")
        if report.uncaught_mutants:
            problems.append("undetected sentinel mutants: "
                            + ", ".join(report.uncaught_mutants))
        lines.append("FAIL: " + "; ".join(problems))
    return "\n".join(lines)


def render_single(report_target: str, mode_value: str,
                  result: FrontierResult) -> str:
    """Output for a ``--frontier`` single-crash replay."""
    lines = [f"replay: {report_target} under {mode_value} "
             f"at {format_frontier(result.frontier)}"]
    for v in result.verdicts:
        mark = "ok " if v.ok else "FAILED"
        lines.append(f"  {mark} {v.name}: {v.detail}")
    if result.error:
        lines.append(f"  {result.status}: {result.error}")
    lines.append("PASS" if result.status == "ok" else f"FAIL ({result.status})")
    return "\n".join(lines)

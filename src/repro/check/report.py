"""Human-readable exploration reports with replayable reproducers.

Every violation or error line carries the exact command that replays it:
the frontier coordinate is deterministic, so the reproducer is too.
"""

from __future__ import annotations

from .explorer import ExploreReport, FrontierResult
from .frontier import format_frontier


def reproducer_command(target: str, mode_value: str, spec: str) -> str:
    return (f"PYTHONPATH=src python -m repro check {target} "
            f"--mode {mode_value} --frontier {spec}")


def _kind_histogram(report: ExploreReport) -> str:
    counts: dict[str, int] = {}
    for r in report.results:
        counts[r.frontier.kind] = counts.get(r.frontier.kind, 0) + 1
    return ", ".join(f"{k}: {n}" for k, n in sorted(counts.items()))


def _render_failure(report: ExploreReport, result: FrontierResult) -> list[str]:
    lines = [f"  at {format_frontier(result.frontier)}:"]
    if result.error:
        lines.append(f"    {result.status}: {result.error}")
    for v in result.failed_verdicts:
        lines.append(f"    FAILED {v.name}: {v.detail}")
    lines.append("    reproduce: " + reproducer_command(
        report.target, report.mode.value, result.frontier.spec()))
    return lines


def render_report(report: ExploreReport) -> str:
    """The full ``python -m repro check`` output."""
    lines = [
        f"crash-consistency check: {report.target} under {report.mode.value}",
        f"  frontiers recorded  {report.frontiers_recorded}",
        f"  frontiers explored  {report.frontiers_explored}"
        + (f" ({report.frontiers_pruned} pruned)" if report.frontiers_pruned else ""),
        f"  by kind             {_kind_histogram(report)}",
    ]
    invariant_names = sorted({v.name for r in report.results for v in r.verdicts})
    if invariant_names:
        lines.append("  invariants checked  " + ", ".join(invariant_names))
    violations = report.violations
    errors = report.errors
    if not violations and not errors:
        lines.append(f"PASS: zero invariant violations across "
                     f"{report.frontiers_explored} crash states")
        return "\n".join(lines)
    if violations:
        lines.append(f"VIOLATIONS ({len(violations)}):")
        for r in violations:
            lines.extend(_render_failure(report, r))
    if errors:
        lines.append(f"ERRORS ({len(errors)}):")
        for r in errors:
            lines.extend(_render_failure(report, r))
    return "\n".join(lines)


def render_single(report_target: str, mode_value: str,
                  result: FrontierResult) -> str:
    """Output for a ``--frontier`` single-crash replay."""
    lines = [f"replay: {report_target} under {mode_value} "
             f"at {format_frontier(result.frontier)}"]
    for v in result.verdicts:
        mark = "ok " if v.ok else "FAILED"
        lines.append(f"  {mark} {v.name}: {v.detail}")
    if result.error:
        lines.append(f"  {result.status}: {result.error}")
    lines.append("PASS" if result.status == "ok" else f"FAIL ({result.status})")
    return "\n".join(lines)

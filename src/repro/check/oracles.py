"""Concrete crash oracles for the check targets.

Each oracle runs a scaled-down configuration of its target - small enough
that replaying to hundreds of frontiers stays fast, large enough that every
frontier kind (fences, warp drains, Optane epochs, persist windows,
checkpoint marks, unfenced thread windows) appears in the reference run.
Reference state the invariants compare against (committed table prefixes,
checkpointed parameter vectors) is computed once per process and cached.

``broken-demo`` is the deliberately buggy target: an append ring whose
kernel persists the commit sentinel *before* the payload it guards (the
ordering fence is on the wrong side).  Thread-count injection can never
catch it - the whole warp's rounds are lost together - but the warp-drain
event frontier between the two persist rounds exposes a committed-but-torn
record, which is exactly the class of bug systematic exploration exists
to find.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from ..core.mapping import gpm_map
from ..core.persist import persist_window
from ..gpu.memory import DeviceArray
from ..pstruct import PersistentHashMap, PersistentRing
from ..workloads.base import Mode
from ..workloads.db import _META_BYTES, ROW_COLUMNS, DbConfig, GpDb
from ..workloads.dnn import DnnTraining
from ..workloads.kvs import GpKvs, KvsConfig, hash64
from ..workloads.lenet import LeNet, synthetic_mnist
from ..workloads.prefix_sum import PrefixSum, PrefixSumConfig
from .oracle import CrashOracle, RunObservation

# ---------------------------------------------------------------------------
# prefix sum
# ---------------------------------------------------------------------------

_PS_CONFIG = dict(n=1024, block_dim=128, arrays=1, seed=31)


class PrefixSumOracle(CrashOracle):
    """Fig. 8's native-persistence scan under systematic crashes."""

    name = "prefix_sum"
    #: the sentinel protocol's guarantees survive under epoch persistency
    #: (the barrier doubles as an epoch boundary) and under the adaptive
    #: data path (staged writes are volatile, like pre-fence stores) - the
    #: invariants hold verbatim for those models too.
    modes = (Mode.GPM, Mode.GPM_EPOCH, Mode.GPM_ADAPTIVE)
    supports_thread_injection = True

    def execute(self, system, mode: Mode, injector) -> None:
        self._workload = PrefixSum(PrefixSumConfig(**_PS_CONFIG))
        self._workload.run(mode, system=system, crash_injector=injector)

    def declare_invariants(self, system, mode: Mode,
                           observation: RunObservation) -> list:
        return self._workload.declare_invariants(system)


# ---------------------------------------------------------------------------
# gpKVS
# ---------------------------------------------------------------------------

#: ``n_sets`` is sized so no set ever fills across the batches: an eviction
#: would let two ops of one batch collide on a slot, and per-thread undo is
#: order-dependent under collisions - a regime the gpKVS protocol excludes
#: (the paper-scale table never fills a set; same-key SETs are compacted
#: away before the kernel for the same reason).
_KVS_CONFIG = dict(n_sets=256, ways=8, batch_size=96, set_batches=3,
                   block_dim=32, seed=7, use_hcl=True)


@lru_cache(maxsize=1)
def _kvs_reference_prefixes() -> tuple:
    """Durable table snapshots after 0, 1, ... committed SET batches."""
    cfg = KvsConfig(**_KVS_CONFIG)
    w = GpKvs(cfg)
    n_pairs = cfg.n_sets * cfg.ways
    keys = np.zeros(n_pairs, dtype=np.uint64)
    values = np.zeros(n_pairs, dtype=np.uint64)
    snapshots = [(keys.copy(), values.copy())]
    batches = []
    for batch_keys, batch_vals in w._batches():
        w.apply_batch_reference(keys, values, batch_keys, batch_vals)
        snapshots.append((keys.copy(), values.copy()))
        batches.append((batch_keys, batch_vals))
    return tuple(snapshots), tuple(batches)


class KvsOracle(CrashOracle):
    """gpKVS batched SETs: atomicity and get-after-committed-put."""

    name = "kvs"
    #: log-before-table ordering holds under epoch persistency because the
    #: two fences sit in one epoch whose drain preserves per-round region
    #: program order, and under the adaptive path because a region's staged
    #: backlog flushes before any direct write to it.
    modes = (Mode.GPM, Mode.GPM_EPOCH, Mode.GPM_ADAPTIVE)
    supports_thread_injection = True

    def execute(self, system, mode: Mode, injector) -> None:
        self._workload = GpKvs(KvsConfig(**_KVS_CONFIG))
        self._workload.run(mode, system=system, crash_injector=injector)

    def register_recovery_handlers(self, manager, system, mode: Mode) -> None:
        # Fig. 6b's application recovery: the undo kernel must run before
        # the generic rules would otherwise truncate the evidence.  One
        # handler claims all three gpKVS files; recovery itself runs once.
        state = {"done": False}
        workload = self._workload

        def recover_kvs(sys_, file_report) -> float:
            if state["done"]:
                return 0.0
            state["done"] = True
            # A crash during setup can predate the flag or log files;
            # with no batch ever begun there is nothing to undo.
            for path in ("/pm/gpkvs.flag", "/pm/gpkvs.log", "/pm/gpkvs.table"):
                if not sys_.fs.exists(path):
                    return 0.0
            return workload.recover(sys_, mode)

        manager.register_handler("/pm/gpkvs", recover_kvs)

    def declare_invariants(self, system, mode: Mode,
                           observation: RunObservation) -> list:
        cfg = self._workload.config
        checks = list(self._workload.declare_invariants(system))
        matched: dict[str, int | None] = {"prefix": None}

        def batch_atomicity() -> tuple[bool, str]:
            if not system.fs.exists("/pm/gpkvs.table"):
                matched["prefix"] = 0
                return True, "crash predates the table"
            snapshots, _batches = _kvs_reference_prefixes()
            n_pairs = cfg.n_sets * cfg.ways
            table = gpm_map(system, "/pm/gpkvs.table")
            keys = table.region.persisted_view(np.uint64, 0, n_pairs)
            values = table.region.persisted_view(np.uint64, n_pairs * 8, n_pairs)
            for k, (ref_keys, ref_vals) in enumerate(snapshots):
                if np.array_equal(keys, ref_keys) and np.array_equal(values, ref_vals):
                    matched["prefix"] = k
                    return True, f"table is exactly the {k}-batch prefix state"
            return False, ("recovered table matches no committed-batch "
                           "prefix: a batch was applied partially")

        def get_after_committed_put() -> tuple[bool, str]:
            k = matched["prefix"]
            if not k:  # no committed batch (or atomicity already failed)
                return True, "no committed batch to look up"
            snapshots, batches = _kvs_reference_prefixes()
            ref_keys, ref_vals = snapshots[k]
            n_pairs = cfg.n_sets * cfg.ways
            table = gpm_map(system, "/pm/gpkvs.table")
            keys = table.region.persisted_view(np.uint64, 0, n_pairs)
            values = table.region.persisted_view(np.uint64, n_pairs * 8, n_pairs)
            batch_keys, batch_vals = batches[k - 1]
            misses = 0
            for key, value in zip(batch_keys.tolist(), batch_vals.tolist()):
                base = (hash64(int(key)) % cfg.n_sets) * cfg.ways
                ref_row = ref_keys[base:base + cfg.ways]
                if int(key) not in ref_row:
                    continue  # evicted within the committed prefix
                got = None
                for w in range(cfg.ways):
                    if int(keys[base + w]) == key:
                        got = int(values[base + w])
                        break
                expect = int(ref_vals[base + int(np.flatnonzero(
                    ref_row == key)[0])])
                if got != expect:
                    misses += 1
            if misses:
                return False, (f"{misses} committed puts of batch {k - 1} "
                               "not readable after recovery")
            return True, f"every committed put of batch {k - 1} is readable"

        checks.append(("kvs-batch-atomicity",
                       "the recovered table is a committed-batch prefix",
                       batch_atomicity))
        checks.append(("kvs-get-after-committed-put",
                       "puts of the last committed batch stay readable",
                       get_after_committed_put))
        return checks


#: DELETE batches layered on the committed SET state: how many, and how
#: many guaranteed-absent keys each carries (absent keys exercise the
#: kernel's no-log early return - their threads must contribute nothing to
#: the undo log a crash replays).
_KVS_DELETE_BATCHES = 2
_KVS_DELETE_ABSENT = 8


@lru_cache(maxsize=1)
def _kvs_delete_batches() -> tuple:
    """Deterministic DELETE batches over the committed SET state.

    Each batch mixes keys drawn (uniquely - per-thread undo is
    order-dependent under collisions) from one reference SET batch with a
    run of keys above the SET key range, which are guaranteed absent.
    """
    cfg = KvsConfig(**_KVS_CONFIG)
    _snapshots, batches = _kvs_reference_prefixes()
    n_pairs = cfg.n_sets * cfg.ways
    rng = np.random.default_rng(cfg.seed + 17)
    out = []
    for b in range(_KVS_DELETE_BATCHES):
        src_keys, _vals = batches[b % len(batches)]
        present = rng.choice(src_keys, size=cfg.batch_size - _KVS_DELETE_ABSENT,
                             replace=False)
        absent = np.arange(n_pairs * 4 + b * _KVS_DELETE_ABSENT,
                           n_pairs * 4 + (b + 1) * _KVS_DELETE_ABSENT,
                           dtype=np.uint64)
        out.append(np.concatenate([present, absent]))
    return tuple(out)


@lru_cache(maxsize=1)
def _kvs_delete_reference_prefixes() -> tuple:
    """Durable table snapshots across the SET batches, then each DELETE.

    Extends :func:`_kvs_reference_prefixes`'s chain: the host replay of
    :func:`~repro.workloads.kvs.delete_kernel` finds each key's way and
    zeroes both words (absent keys are no-ops), so a recovered table must
    equal exactly one link of the combined chain.
    """
    cfg = KvsConfig(**_KVS_CONFIG)
    snapshots, _batches = _kvs_reference_prefixes()
    keys, values = (a.copy() for a in snapshots[-1])
    chain = list(snapshots)
    for batch in _kvs_delete_batches():
        for key in batch.tolist():
            base = (hash64(int(key)) % cfg.n_sets) * cfg.ways
            for w in range(cfg.ways):
                if int(keys[base + w]) == key:
                    keys[base + w] = 0
                    values[base + w] = 0
                    break
        chain.append((keys.copy(), values.copy()))
    return tuple(chain)


class KvsDeleteOracle(CrashOracle):
    """gpKVS batched DELETEs: tombstone-free removal under the undo log.

    Deletion is the SET of the empty sentinel - the same per-thread undo
    entry (old key + value) makes Fig. 6b's recovery kernel restore
    deletes with no new logic.  This oracle pins that claim under crashes:
    it runs the SET workload to completion, then issues DELETE batches
    through the same flag/log protocol and checks the recovered table is
    always a whole-batch prefix of the combined SET + DELETE chain.
    """

    name = "kvs-delete"
    #: same ordering argument as :class:`KvsOracle` - DELETE uses the
    #: identical log-then-write fence placement.
    modes = (Mode.GPM, Mode.GPM_EPOCH, Mode.GPM_ADAPTIVE)
    supports_thread_injection = True

    def execute(self, system, mode: Mode, injector) -> None:
        self._workload = GpKvs(KvsConfig(**_KVS_CONFIG))
        self._workload.run(mode, system=system, crash_injector=injector)
        for batch in _kvs_delete_batches():
            self._workload.delete_batch(batch, crash_injector=injector)

    def register_recovery_handlers(self, manager, system, mode: Mode) -> None:
        # Same handler as the SET oracle: the undo kernel is op-agnostic.
        state = {"done": False}
        workload = self._workload

        def recover_kvs(sys_, file_report) -> float:
            if state["done"]:
                return 0.0
            state["done"] = True
            for path in ("/pm/gpkvs.flag", "/pm/gpkvs.log", "/pm/gpkvs.table"):
                if not sys_.fs.exists(path):
                    return 0.0
            return workload.recover(sys_, mode)

        manager.register_handler("/pm/gpkvs", recover_kvs)

    def declare_invariants(self, system, mode: Mode,
                           observation: RunObservation) -> list:
        cfg = self._workload.config
        checks = list(self._workload.declare_invariants(system))
        matched: dict[str, int | None] = {"prefix": None}

        def delete_atomicity() -> tuple[bool, str]:
            if not system.fs.exists("/pm/gpkvs.table"):
                matched["prefix"] = 0
                return True, "crash predates the table"
            chain = _kvs_delete_reference_prefixes()
            n_pairs = cfg.n_sets * cfg.ways
            table = gpm_map(system, "/pm/gpkvs.table")
            keys = table.region.persisted_view(np.uint64, 0, n_pairs)
            values = table.region.persisted_view(np.uint64, n_pairs * 8, n_pairs)
            for k, (ref_keys, ref_vals) in enumerate(chain):
                if np.array_equal(keys, ref_keys) and np.array_equal(values, ref_vals):
                    matched["prefix"] = k
                    return True, f"table is exactly the {k}-batch prefix state"
            return False, ("recovered table matches no committed-batch "
                           "prefix: a DELETE batch was applied partially")

        def absent_after_committed_delete() -> tuple[bool, str]:
            k = matched["prefix"]
            if k is None or k <= cfg.set_batches:
                return True, "no committed DELETE batch to probe"
            batch = _kvs_delete_batches()[k - cfg.set_batches - 1]
            n_pairs = cfg.n_sets * cfg.ways
            table = gpm_map(system, "/pm/gpkvs.table")
            keys = table.region.persisted_view(np.uint64, 0, n_pairs)
            lingering = 0
            for key in batch.tolist():
                base = (hash64(int(key)) % cfg.n_sets) * cfg.ways
                if int(key) in keys[base:base + cfg.ways]:
                    lingering += 1
            if lingering:
                return False, (f"{lingering} keys of committed DELETE batch "
                               f"{k - cfg.set_batches - 1} still present")
            return True, (f"every key of DELETE batch "
                          f"{k - cfg.set_batches - 1} is gone")

        checks.append(("kvs-delete-atomicity",
                       "the recovered table is a committed-batch prefix of "
                       "the SET + DELETE chain", delete_atomicity))
        checks.append(("kvs-delete-absent-after-commit",
                       "keys of the last committed DELETE batch stay absent",
                       absent_after_committed_delete))
        return checks


# ---------------------------------------------------------------------------
# gpDB UPDATE
# ---------------------------------------------------------------------------

#: ``initial_rows`` is a power of two, so the Fibonacci-stride row selection
#: is collision-free within a batch (the constant is odd, hence invertible
#: modulo any power of two) - per-thread undo stays order-independent, the
#: regime gpDB's batching assumes.  Updates run on the warp lane when no
#: injector is armed, so the recovery kernel's warp form (batched HCL
#: ``read_warp``/``remove_warp``) is what this oracle replays under crashes.
_DB_CONFIG = dict(capacity_rows=512, initial_rows=256, update_batch=64,
                  update_batches=2, block_dim=32, seed=11, use_hcl=True)


@lru_cache(maxsize=1)
def _db_reference_prefixes() -> tuple:
    """Durable table images after 0, 1, ... committed UPDATE batches.

    A host replay of :func:`~repro.workloads.db.update_kernel`'s row
    selection and two-column write; UPDATEs never change the row count, so
    every link uses the same ``initial_rows`` modulus.
    """
    cfg = DbConfig(**_DB_CONFIG)
    rng = np.random.default_rng(cfg.seed)
    table = np.zeros(cfg.capacity_rows * ROW_COLUMNS, dtype=np.uint64)
    init = rng.integers(1, 1 << 63, size=cfg.initial_rows * ROW_COLUMNS,
                        dtype=np.uint64)
    table[: init.size] = init
    snapshots = [table.copy()]
    for b in range(cfg.update_batches):
        seed = cfg.seed + 100 + b
        h = hash64(seed)
        for i in range(cfg.update_batch):
            row = (h + i * 2654435761) % cfg.initial_rows
            new_val = np.uint64(hash64(seed + i) or 1)
            table[row * ROW_COLUMNS + 2] = new_val
            table[row * ROW_COLUMNS + 5] = new_val ^ np.uint64(0xFF)
        snapshots.append(table.copy())
    return tuple(snapshots)


class DbUpdateOracle(CrashOracle):
    """gpDB batched UPDATEs: HCL undo logging makes batches atomic."""

    name = "db-update"
    #: log-before-table ordering holds under epoch persistency (both fences
    #: share one epoch whose drain preserves per-round program order) and
    #: under the adaptive path (a region's staged backlog flushes before
    #: any direct write) - the same argument as :class:`KvsOracle`.
    modes = (Mode.GPM, Mode.GPM_EPOCH, Mode.GPM_ADAPTIVE)
    supports_thread_injection = True

    def execute(self, system, mode: Mode, injector) -> None:
        self._workload = GpDb("update", DbConfig(**_DB_CONFIG))
        self._workload.run(mode, system=system, crash_injector=injector)

    def register_recovery_handlers(self, manager, system, mode: Mode) -> None:
        # The undo kernel must run before the generic rules truncate the
        # HCL log; one handler claims all the gpDB files.
        state = {"done": False}
        workload = self._workload

        def recover_db(sys_, file_report) -> float:
            if state["done"]:
                return 0.0
            state["done"] = True
            # The transaction flag is created only after the table's setup
            # image is durably persisted; without it nothing was begun.
            for path in ("/pm/gpdb.flag", "/pm/gpdb.log", "/pm/gpdb.table"):
                if not sys_.fs.exists(path):
                    return 0.0
            return workload.recover(sys_, mode)

        manager.register_handler("/pm/gpdb", recover_db)

    def declare_invariants(self, system, mode: Mode,
                           observation: RunObservation) -> list:
        cfg = self._workload.config
        matched: dict[str, int | None] = {"prefix": None}

        def batch_atomicity() -> tuple[bool, str]:
            if not system.fs.exists("/pm/gpdb.flag"):
                # Setup's full-table persist strictly precedes flag
                # creation, so no transaction ever began.
                matched["prefix"] = 0
                return True, "crash predates the transaction flag"
            table = gpm_map(system, "/pm/gpdb.table")
            rows = table.region.persisted_view(np.uint64, _META_BYTES,
                                               cfg.capacity_rows * ROW_COLUMNS)
            for k, ref in enumerate(_db_reference_prefixes()):
                if np.array_equal(rows, ref):
                    matched["prefix"] = k
                    return True, f"table is exactly the {k}-batch prefix state"
            return False, ("recovered table matches no committed-batch "
                           "prefix: an UPDATE batch was applied partially")

        def row_count_stable() -> tuple[bool, str]:
            if not system.fs.exists("/pm/gpdb.flag"):
                return True, "crash predates the transaction flag"
            table = gpm_map(system, "/pm/gpdb.table")
            count = int(table.region.persisted_view(np.uint64, 0, 1)[0])
            if count != cfg.initial_rows:
                return False, (f"durable row count {count} != "
                               f"{cfg.initial_rows}: UPDATEs changed the count")
            return True, f"durable row count stays {count}"

        return [
            ("db-update-atomicity",
             "the recovered table is a committed-batch prefix",
             batch_atomicity),
            ("db-update-count-stable",
             "UPDATE batches never move the durable row count",
             row_count_stable),
        ]


# ---------------------------------------------------------------------------
# checkpointed DNN
# ---------------------------------------------------------------------------

_DNN_CONFIG = dict(batch_size=8, dataset_size=64, passes_per_iteration=1, seed=5)
_DNN_ITERATIONS = 12
_DNN_EVERY = 2


@lru_cache(maxsize=1)
def _dnn_reference_params() -> tuple:
    """Packed parameter vectors at each checkpoint epoch (0 = untrained).

    The training math is a pure function of the seed (the simulated system
    only charges time), so the reference is computed without a machine.
    """
    cfg = _DNN_CONFIG
    net = LeNet(seed=cfg["seed"])
    images, labels = synthetic_mnist(cfg["dataset_size"], seed=cfg["seed"],
                                     size=LeNet.IMAGE_SIZE)
    rng = np.random.default_rng(cfg["seed"])
    epochs = [np.zeros(net.params.total_bytes // 4, dtype=np.float32)]
    for i in range(_DNN_ITERATIONS):
        for _ in range(cfg["passes_per_iteration"]):
            idx = rng.integers(0, cfg["dataset_size"], size=cfg["batch_size"])
            net.train_step(images[idx], labels[idx])
        if (i + 1) % _DNN_EVERY == 0:
            epochs.append(net.params.pack().astype(np.float32).copy())
    return tuple(epochs)


class CheckpointedDnnOracle(CrashOracle):
    """gpmcp double-buffered checkpoints: epoch monotonicity on restore."""

    name = "checkpointed-dnn"
    modes = (Mode.GPM,)
    #: ``CheckpointedWorkload.run`` takes no injector; event frontiers need
    #: none, which is the point of arming on the bus.
    supports_thread_injection = False

    def execute(self, system, mode: Mode, injector) -> None:
        self._workload = DnnTraining(**_DNN_CONFIG)
        self._workload.iterations = _DNN_ITERATIONS
        self._workload.checkpoint_every = _DNN_EVERY
        self._workload.run(mode, system=system)

    def declare_invariants(self, system, mode: Mode,
                           observation: RunObservation) -> list:
        checks = list(self._workload.declare_invariants(system))
        started = observation.checkpoints_started

        def restores_committed_epoch() -> tuple[bool, str]:
            if not system.fs.exists("/pm/dnn.cp"):
                return True, "crash predates the checkpoint file"
            net = self._workload.restore_into_new_net(system, mode)
            restored = net.params.pack().astype(np.float32)
            epochs = _dnn_reference_params()
            matched = None
            for c, ref in enumerate(epochs):
                if np.array_equal(restored, ref):
                    matched = c
                    break
            if matched is None:
                return False, "restored parameters match no checkpoint epoch"
            # Monotonicity: a checkpoint that *started* may or may not have
            # committed, but nothing older than the previous one may win.
            if matched < started - 1 or matched > started:
                return False, (f"restored epoch {matched} but {started} "
                               "checkpoints had started: epoch went backwards")
            return True, (f"restored epoch {matched} with {started} started: "
                          "monotone")

        checks.append(("dnn-restores-committed-epoch",
                       "restore yields the newest committed epoch, "
                       "never a torn or stale one",
                       restores_committed_epoch))
        return checks


# ---------------------------------------------------------------------------
# pstruct: hashmap
# ---------------------------------------------------------------------------

_PMAP_PATH = "/pm/checkmap"
_PMAP_CAPACITY = 512
_PMAP_BATCHES = 3
_PMAP_BATCH = 48
_PMAP_SEED = 11


@lru_cache(maxsize=1)
def _pmap_batches() -> tuple:
    rng = np.random.default_rng(_PMAP_SEED)
    batches = []
    for _ in range(_PMAP_BATCHES):
        keys = rng.choice(np.arange(1, _PMAP_CAPACITY * 4, dtype=np.uint64),
                          size=_PMAP_BATCH, replace=False)
        vals = rng.integers(1, 1 << 63, size=_PMAP_BATCH, dtype=np.uint64)
        batches.append((keys, vals))
    return tuple(batches)


@lru_cache(maxsize=1)
def _pmap_reference_prefixes() -> tuple:
    """Host replay of ``_insert_kernel``'s slot choice, per batch prefix."""
    from ..pstruct.hashmap import WAYS

    n_sets = max(1, -(-_PMAP_CAPACITY // WAYS))
    keys = np.zeros(n_sets * WAYS, dtype=np.uint64)
    values = np.zeros(n_sets * WAYS, dtype=np.uint64)
    snapshots = [(keys.copy(), values.copy())]
    for batch_keys, batch_vals in _pmap_batches():
        for key, value in zip(batch_keys.tolist(), batch_vals.tolist()):
            base = (hash64(int(key)) % n_sets) * WAYS
            row = keys[base:base + WAYS]
            loc = -1
            for w in range(WAYS):
                if int(row[w]) == key:
                    loc = w
                    break
            if loc < 0:
                for w in range(WAYS):
                    if int(row[w]) == 0:
                        loc = w
                        break
            if loc < 0:
                loc = hash64(int(key) ^ 0x9E3779B97F4A7C15) % WAYS
            keys[base + loc] = key
            values[base + loc] = value
        snapshots.append((keys.copy(), values.copy()))
    return tuple(snapshots)


class HashMapOracle(CrashOracle):
    """PersistentHashMap batched inserts under systematic crashes."""

    name = "hashmap"
    modes = (Mode.GPM,)
    supports_thread_injection = True

    def execute(self, system, mode: Mode, injector) -> None:
        pmap = PersistentHashMap.create(system, _PMAP_PATH,
                                        capacity=_PMAP_CAPACITY)
        for keys, vals in _pmap_batches():
            pmap.insert_batch(keys, vals, crash_injector=injector)

    def declare_invariants(self, system, mode: Mode,
                           observation: RunObservation) -> list:
        if not system.fs.exists(_PMAP_PATH):
            return [("hashmap-untouched",
                     "crash predates the map; nothing to check",
                     lambda: (True, "no map on PM"))]
        pmap = PersistentHashMap.open(system, _PMAP_PATH)
        checks = list(pmap.declare_invariants(system))

        def batch_atomicity() -> tuple[bool, str]:
            keys = pmap._keys.np_persisted
            values = pmap._values.np_persisted
            for k, (ref_keys, ref_vals) in enumerate(_pmap_reference_prefixes()):
                if np.array_equal(keys, ref_keys) and np.array_equal(values, ref_vals):
                    return True, f"map is exactly the {k}-batch prefix state"
            return False, ("recovered map matches no committed-batch prefix: "
                           "an insert batch was applied partially")

        checks.append(("hashmap-batch-atomicity",
                       "the recovered map is a committed-batch prefix",
                       batch_atomicity))
        return checks


# ---------------------------------------------------------------------------
# pstruct: ring
# ---------------------------------------------------------------------------

_RING_PATH = "/pm/checkring"
_RING_CAPACITY = 256
_RING_APPENDS = 64
_RING_BLOCK = 32
_RING_VALUE_BASE = 1000


def _ring_append_kernel(ctx, ring, n):
    i = ctx.global_id
    if i >= n:
        return
    ring.append(ctx, _RING_VALUE_BASE + i)


def _ring_extra_kernel(ctx, ring, n, base):
    i = ctx.global_id
    if i >= n:
        return
    ring.append(ctx, base + i)


class RingOracle(CrashOracle):
    """PersistentRing appends: sentinel discipline and cursor repair."""

    name = "ring"
    modes = (Mode.GPM,)
    supports_thread_injection = True

    def execute(self, system, mode: Mode, injector) -> None:
        ring = PersistentRing.create(system, _RING_PATH, _RING_CAPACITY)
        blocks = _RING_APPENDS // _RING_BLOCK
        with persist_window(system):
            system.gpu.launch(_ring_append_kernel, blocks, _RING_BLOCK,
                              (ring, _RING_APPENDS), crash_injector=injector)

    def declare_invariants(self, system, mode: Mode,
                           observation: RunObservation) -> list:
        if not system.fs.exists(_RING_PATH):
            return [("ring-untouched",
                     "crash predates the ring; nothing to check",
                     lambda: (True, "no ring on PM"))]
        ring = PersistentRing.open(system, _RING_PATH)
        checks = list(ring.declare_invariants(system))

        def committed_values_correct() -> tuple[bool, str]:
            # Ticket t was handed to the thread that appended value
            # _RING_VALUE_BASE + t (deterministic engine order), so every
            # committed record's payload is implied by its ticket.
            bad = [(t, v) for t, v in ring.committed(durable=True)
                   if v != _RING_VALUE_BASE + t]
            if bad:
                return False, f"committed-but-torn records: {bad[:4]}"
            n = len(ring.committed(durable=True))
            return True, f"all {n} committed payloads match their tickets"

        def append_after_recovery() -> tuple[bool, str]:
            # The repaired cursor must hand out fresh tickets: appending
            # more records may not overwrite any pre-crash commit.
            before = dict(ring.committed(durable=True))
            extra_base = _RING_VALUE_BASE + 10_000
            with persist_window(system):
                system.gpu.launch(_ring_extra_kernel, 1, 8,
                                  (ring, 1 << 30, extra_base))
            after = dict(ring.committed(durable=True))
            lost = [t for t, v in before.items() if after.get(t) != v]
            if lost:
                return False, f"post-recovery appends overwrote tickets {lost[:4]}"
            return True, f"{len(after) - len(before)} fresh appends, history intact"

        checks.append(("ring-committed-values-correct",
                       "every committed payload matches its ticket",
                       committed_values_correct))
        checks.append(("ring-append-after-recovery",
                       "fresh appends never overwrite pre-crash commits",
                       append_after_recovery))
        return checks


# ---------------------------------------------------------------------------
# broken-demo: the deliberately buggy fixture
# ---------------------------------------------------------------------------

_BROKEN_PATH = "/pm/broken.ring"
_BROKEN_N = 32
_BROKEN_HEADER = 128
_BROKEN_VALUE_BASE = 4000


def _broken_append_kernel(ctx, slots, n):
    i = ctx.global_id
    if i >= n:
        return
    # BUG (deliberate): the ordering fence sits on the wrong side - the
    # commit sentinel is persisted in the drain round *before* the payload
    # it guards.  A crash between the two rounds exposes a committed-but-
    # torn record.  Thread-count injection cannot see this window (the
    # warp's rounds are lost together); the warp-drain event frontier can.
    slots.write(ctx, i * 2, np.uint64(i + 1))
    ctx.persist()
    slots.write(ctx, i * 2 + 1, np.uint64(_BROKEN_VALUE_BASE + i))
    ctx.persist()


class BrokenDemoOracle(CrashOracle):
    """A fence-ordering bug the checker must catch deterministically."""

    name = "broken-demo"
    modes = (Mode.GPM,)
    supports_thread_injection = True

    def execute(self, system, mode: Mode, injector) -> None:
        size = _BROKEN_HEADER + _BROKEN_N * 16
        region = gpm_map(system, _BROKEN_PATH, size, create=True)
        slots = DeviceArray(region.region, np.uint64, _BROKEN_HEADER,
                            _BROKEN_N * 2)
        with persist_window(system):
            system.gpu.launch(_broken_append_kernel, 1, _BROKEN_N,
                              (slots, _BROKEN_N), crash_injector=injector)

    def declare_invariants(self, system, mode: Mode,
                           observation: RunObservation) -> list:
        def sentinel_implies_payload() -> tuple[bool, str]:
            if not system.fs.exists(_BROKEN_PATH):
                return True, "crash predates the file"
            region = gpm_map(system, _BROKEN_PATH)
            slots = region.region.persisted_view(
                np.uint64, _BROKEN_HEADER, _BROKEN_N * 2
            ).reshape(_BROKEN_N, 2)
            torn = [i for i in range(_BROKEN_N)
                    if int(slots[i, 0]) == i + 1
                    and int(slots[i, 1]) != _BROKEN_VALUE_BASE + i]
            if torn:
                return False, (f"{len(torn)} committed-but-torn records "
                               f"(first: slot {torn[0]})")
            return True, "every durable sentinel guards a durable payload"

        return [("broken-sentinel-implies-payload",
                 "a durable commit sentinel implies its payload is durable",
                 sentinel_implies_payload)]


# ---------------------------------------------------------------------------
# registry
# ---------------------------------------------------------------------------

CHECK_TARGETS: dict[str, type[CrashOracle]] = {
    PrefixSumOracle.name: PrefixSumOracle,
    KvsOracle.name: KvsOracle,
    KvsDeleteOracle.name: KvsDeleteOracle,
    DbUpdateOracle.name: DbUpdateOracle,
    CheckpointedDnnOracle.name: CheckpointedDnnOracle,
    HashMapOracle.name: HashMapOracle,
    RingOracle.name: RingOracle,
    BrokenDemoOracle.name: BrokenDemoOracle,
}


def make_oracle(target: str) -> CrashOracle:
    try:
        cls = CHECK_TARGETS[target]
    except KeyError:
        known = ", ".join(sorted(CHECK_TARGETS))
        raise ValueError(f"unknown check target {target!r}; one of: {known}")
    return cls()

"""The CrashOracle protocol: what a target must say about itself.

An oracle packages one checkable target (a GPMbench workload or a pstruct
structure) for the explorer: how to run it on a fresh system with an armed
injector, how to recover the crashed system, and which invariants must hold
over the recovered state.

Invariant plumbing
------------------
Workloads and pstruct types stay import-free of this package: their
``declare_invariants`` methods return plain ``(name, description, fn)``
triples where ``fn() -> (ok, detail)``.  :func:`normalize_invariants` lifts
triples (or ready-made :class:`InvariantCheck` objects) into the typed form
the explorer evaluates, so the protocol costs its implementors nothing but
a method.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable

from ..core.recovery import RecoveryManager, RecoveryReport
from ..workloads.base import Mode, make_system


@dataclass
class InvariantCheck:
    """One checkable predicate over recovered state."""

    name: str
    description: str
    fn: Callable[[], tuple[bool, str]]

    def evaluate(self) -> "InvariantVerdict":
        try:
            ok, detail = self.fn()
        except Exception as exc:  # an invariant that *errors* is a failure
            return InvariantVerdict(self.name, False,
                                    f"invariant raised {type(exc).__name__}: {exc}")
        return InvariantVerdict(self.name, bool(ok), detail)


@dataclass
class InvariantVerdict:
    name: str
    ok: bool
    detail: str = ""


def normalize_invariants(declared: Iterable) -> list[InvariantCheck]:
    """Lift ``(name, description, fn)`` triples into :class:`InvariantCheck`."""
    checks = []
    for item in declared:
        if isinstance(item, InvariantCheck):
            checks.append(item)
        else:
            name, description, fn = item
            checks.append(InvariantCheck(name, description, fn))
    return checks


class RunObservation:
    """Bus subscriber collecting pre-crash facts invariants may need.

    Counts frontier events by kind and gpmcp checkpoint starts; stops
    accumulating the moment the :class:`~repro.sim.events.Crash` event goes
    by, so the counts describe exactly what the dying run had begun.
    """

    def __init__(self) -> None:
        self.frontier_counts: dict[str, int] = {}
        self.checkpoints_started = 0
        self.crashed = False

    def __call__(self, ts: float, event) -> None:
        if self.crashed:
            return
        cls = type(event)
        if cls.etype == "crash":
            self.crashed = True
            return
        kind = cls.frontier_kind
        if kind is None:
            return
        self.frontier_counts[kind] = self.frontier_counts.get(kind, 0) + 1
        if (cls.etype == "trace_mark" and event.category == "gpmcp"
                and event.label.startswith("checkpoint:")):
            self.checkpoints_started += 1


class CrashOracle:
    """Protocol for one crash-consistency check target.

    Subclasses define the four hooks below.  The default ``recover`` runs
    the generic :class:`~repro.core.recovery.RecoveryManager` after giving
    the oracle a chance to register application handlers.
    """

    #: CLI name of the target
    name = "oracle"
    #: modes worth exploring (persistence semantics differ per mode)
    modes = (Mode.GPM,)
    #: does the target's run path accept a ``crash_injector``?  When False
    #: only event-mechanism frontiers apply (arming needs no plumbing).
    supports_thread_injection = True

    def build_system(self, mode: Mode):
        return make_system(mode)

    def execute(self, system, mode: Mode, injector) -> None:
        """Run the target to completion (reference) or until the armed
        ``injector`` fires (exploration raises ``SimulatedCrash``)."""
        raise NotImplementedError

    def register_recovery_handlers(self, manager: RecoveryManager,
                                   system, mode: Mode) -> None:
        """Claim path prefixes needing application recovery (optional)."""

    def recover(self, system, mode: Mode,
                provenance: dict | None = None) -> RecoveryReport:
        manager = RecoveryManager(system)
        self.register_recovery_handlers(manager, system, mode)
        return manager.run(provenance=provenance)

    def declare_invariants(self, system, mode: Mode,
                           observation: RunObservation) -> list:
        """Predicates that must hold after :meth:`recover`; triples or
        :class:`InvariantCheck` objects (see :func:`normalize_invariants`)."""
        raise NotImplementedError

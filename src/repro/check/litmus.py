"""Persistency-litmus fuzzer: generated crash-consistency tests.

The hand-written oracles in :mod:`repro.check.oracles` validate fixed
recovery protocols; this module validates the *persistency models
themselves* the way the litmus-testing literature does ("Lost in
Interpretation"; Lin & Solihin's strict/epoch/relaxed design space): a
deterministic, seeded generator emits small racy kernels - 2-4 PM regions,
interleaved per-thread writes with fence/epoch/log placements drawn from a
grammar (plain writes, HCL-style logged writes, and the serving layer's
sharded-log insert where two log regions share one fence) - and for each
one an *outcome oracle* computes the machine-checkable set of post-crash
states the active model's ordering rules allow.

The oracle has two halves, both derived from one abstract interpretation of
the generated program (:func:`interpret`, a pure-Python mirror of the SIMT
engine's drain bookkeeping):

* a **frontier census**: the reference run must announce exactly the
  predicted number of ``warp-drain`` and ``epoch-boundary`` frontiers -
  this is what catches the ``"epoch-boundary"`` sentinel mutant, whose only
  symptom is a *missing* event;
* a **delivery-key prefix check** per crash state: every write gets a
  delivery key ``(flush, round)``; at any crash, the durable writes must
  form a key-prefix within each ordering scope the model declares
  (:meth:`~repro.sim.persistency.PersistencyModel.orders_rounds`: per
  thread; :meth:`~repro.sim.persistency.PersistencyModel.orders_epochs`:
  warp-wide; relaxed: none).  Configs whose deliveries park in the volatile
  LLC (:meth:`~repro.sim.persistency.PersistencyModel.durable_on_delivery`
  false) must instead show an *empty* durable set - the litmus writes are
  far too small to force capacity evictions.

A :class:`LitmusExplorer` fans each generated test out across the full
config matrix - every registered persistency model x DDIO window on/off x
eADR - through the experiment engine's shared fork pool and disk cache
(:func:`repro.experiments.runner.run_litmus_batch`), then re-runs a slice
of the tests with each sentinel mutant armed
(:data:`~repro.sim.persistency.SENTINEL_MUTANTS`) and fails unless every
mutant is caught.  The hand-written oracle targets ride along as the
*seed corpus*: their recorded frontier counts are pinned
(:data:`SEED_CORPUS`) and broken-demo's planted bug must still be caught.

CLI: ``python -m repro check --litmus N --seed S``; every failure prints a
one-line reproducer (``--litmus-replay SEED:INDEX --litmus-config ...``).
See ``docs/crash-consistency.md``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

import numpy as np

from ..core.persist import persist_window
from ..sim.crash import CrashInjector, SimulatedCrash
from ..sim.persistency import (
    MODEL_REGISTRY,
    SENTINEL_MUTANTS,
    make_model,
    sentinel_mutant,
)
from ..system import System
from .frontier import Frontier, FrontierRecorder, parse_frontier, prune_frontiers

#: Byte distance between generated write slots.  Wider than an LLC line (so
#: each write dirties its own line) and narrower than an XPLine (so merged
#: segments stay small and the adaptive model always stages them).
SLOT_STRIDE = 64

#: Size of each generated PM region: 512 slots, comfortably above the
#: largest slot count the grammar can allocate to one region (the
#: sharded-log production can land three write rounds on one region per
#: roll, so the old 256-slot regions no longer clear every test).
REGION_BYTES = 512 * SLOT_STRIDE

#: Delivery-round key of unfenced writes (the engine's implicit round).
IMPLICIT = 1 << 30

#: Default crash-exploration budget per (test, config) point, covering the
#: non-ordering frontier kinds; every warp-drain and epoch-boundary
#: frontier is always explored on top (see :func:`select_frontiers`).
DEFAULT_LITMUS_FRONTIERS = 8

#: Frontier counts of the hand-written oracle targets, promoted to the
#: fuzzer's seed corpus: a generator/bus refactor that silently shrinks the
#: explored crash space fails here (and in tests/check/test_frontier_pins).
SEED_CORPUS = {
    "prefix_sum": 184,
    "kvs": 111,
    "kvs-delete": 183,
    "db-update": 58,
    "checkpointed-dnn": 60,
    "hashmap": 93,
    "ring": 18,
    "broken-demo": 11,
}

#: The frontier at which broken-demo's planted fence-ordering bug is caught
#: (pinned by PR 2's CI job; the corpus stage replays it).
BROKEN_DEMO_FRONTIER = "event:4"


# ---------------------------------------------------------------------------
# the config matrix: model x DDIO window x eADR
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ConfigPoint:
    """One point of the litmus config matrix.

    ``model`` is a :data:`~repro.sim.persistency.MODEL_REGISTRY` name;
    ``window`` runs the kernel inside a persist window (DDIO off for models
    that toggle it); ``eadr`` lifts the model onto an eADR platform (the
    LLC joins the persistence domain), skipped for models that already are.
    """

    model: str
    window: bool
    eadr: bool

    def spec(self) -> str:
        """The ``--litmus-config`` string naming this point."""
        return (f"{self.model}:{'window' if self.window else 'nowindow'}"
                f":{'eadr' if self.eadr else 'adr'}")


def parse_config_point(spec: str) -> ConfigPoint:
    """Parse a ``model:window|nowindow:eadr|adr`` config spec."""
    parts = spec.split(":")
    if (len(parts) != 3 or parts[1] not in ("window", "nowindow")
            or parts[2] not in ("eadr", "adr")):
        raise ValueError(
            f"bad litmus config {spec!r}: expected "
            f"'<model>:window|nowindow:eadr|adr'")
    if parts[0] not in MODEL_REGISTRY:
        known = ", ".join(sorted(MODEL_REGISTRY))
        raise ValueError(
            f"bad litmus config {spec!r}: unknown model {parts[0]!r} "
            f"(one of: {known})")
    return ConfigPoint(parts[0], parts[1] == "window", parts[2] == "eadr")


def config_matrix() -> list[ConfigPoint]:
    """Every registered model x window on/off x eADR on/off.

    The eADR axis is skipped for models whose persist domain already is the
    LLC - ``eadr=True`` on top of them would be the same point twice.
    """
    points = []
    for name in sorted(MODEL_REGISTRY):
        for window in (True, False):
            for eadr in (False, True):
                if eadr and MODEL_REGISTRY[name].eadr:
                    continue
                points.append(ConfigPoint(name, window, eadr))
    return points


def build_model(point: ConfigPoint):
    """A fresh model instance for one config point.

    The eADR axis shadows the class attributes on the instance (the LLC
    joins the persist domain, so windows no longer need the DDIO toggle) -
    exactly how ``EadrStrict`` relates to ``Strict``, but for any model.
    Instances are built in-process from the picklable spec strings, never
    shipped across the pool.
    """
    model = make_model(point.model)
    if point.eadr and not model.eadr:
        model.eadr = True
        model.toggles_ddio = False
    return model


# ---------------------------------------------------------------------------
# the generator: seeded tests drawn from a small grammar
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class LitmusTest:
    """One generated litmus program.

    ``phases`` is a tuple of phases separated by block-wide barriers; each
    phase is a tuple of warp-uniform steps every thread executes in order:

    * ``("write", region, base_slot, value_base)`` - thread *t* stores the
      unique nonzero ``uint32`` ``value_base + t + 1`` to slot
      ``base_slot + t`` of the region (slots are :data:`SLOT_STRIDE` bytes
      apart, so no two writes share an LLC line);
    * ``("fence",)`` - thread-scope ``__threadfence_system()``.

    ``bulk``, when set, is ``(src_region, n_slots)``: after the kernel
    retires, a ``stream_copy`` (the zero-copy bulk-transfer descriptor)
    copies the first ``n_slots`` slots of ``src_region`` into a dedicated
    ``/pm/litmus-bulk`` PM region with ``persist=True``, inside the persist
    window when one is open.  The copy is cross-region logging shaped - a
    whole-range replica of journalled state - and is judged purely by value
    integrity: every durable destination word must be 0 or the source
    slot's unique expected value, which is sound at every crash point under
    every model (the copy participates in no ordering scope).

    Warp-uniform steps keep the warp and scalar lanes trivially equivalent
    (the parity satellite) and make the outcome set exactly computable.
    """

    seed: int
    index: int
    n_threads: int
    n_regions: int
    phases: tuple
    bulk: tuple | None = None

    def payload(self) -> dict:
        """JSON-serializable (and picklable, and cache-keyable) form."""
        out = {
            "seed": self.seed, "index": self.index,
            "n_threads": self.n_threads, "n_regions": self.n_regions,
            "phases": [[list(step) for step in phase] for phase in self.phases],
        }
        if self.bulk is not None:
            out["bulk"] = list(self.bulk)
        return out

    @classmethod
    def from_payload(cls, payload: dict) -> "LitmusTest":
        bulk = payload.get("bulk")  # absent in pre-bulk cached payloads
        return cls(
            seed=payload["seed"], index=payload["index"],
            n_threads=payload["n_threads"], n_regions=payload["n_regions"],
            phases=tuple(tuple(tuple(step) for step in phase)
                         for phase in payload["phases"]),
            bulk=None if bulk is None else tuple(bulk),
        )

    def describe(self) -> str:
        steps = sum(len(p) for p in self.phases)
        tail = ""
        if self.bulk is not None:
            tail = f", bulk-copy r{self.bulk[0]}x{self.bulk[1]}"
        return (f"litmus {self.seed}:{self.index} - {self.n_regions} regions, "
                f"{self.n_threads} threads, {len(self.phases)} phases, "
                f"{steps} steps{tail}")


def generate_test(seed: int, index: int) -> LitmusTest:
    """One deterministic litmus test; a pure function of ``(seed, index)``."""
    rng = random.Random(f"litmus:{seed}:{index}")
    n_regions = rng.randint(2, 4)
    n_threads = rng.choice((4, 6, 8))
    n_phases = rng.randint(1, 3)
    cursors = [0] * n_regions
    ordinal = 0
    phases = []
    for p in range(n_phases):
        steps: list[tuple] = []

        def write_step(region: int) -> None:
            nonlocal ordinal
            steps.append(("write", region, cursors[region], ordinal * 256))
            cursors[region] += n_threads
            ordinal += 1

        if p == 0:
            # Forced prefix: two fenced write rounds, so every test gives
            # the fence-order sentinel at least two ordered rounds in one
            # warp flush - the states where delivery order is observable.
            write_step(0)
            steps.append(("fence",))
            write_step(1 % n_regions)
            steps.append(("fence",))
        for _ in range(rng.randint(0, 3)):
            roll = rng.random()
            if roll < 0.5:
                write_step(rng.randrange(n_regions))
            elif roll < 0.7:
                # HCL-style logged write: journal to region 0, fence the
                # log entry durable, then write the data it covers.
                write_step(0)
                steps.append(("fence",))
                write_step(rng.randrange(1, n_regions))
            elif roll < 0.85:
                # Sharded-log insert (the serving layer's idiom): two
                # shards journal to their own log regions, one fence
                # makes both entries durable, then the covered data
                # writes land - cross-shard logged writes in a batch
                # window share the fence, never the log.
                write_step(0)
                write_step(1 % n_regions)
                steps.append(("fence",))
                write_step(rng.randrange(n_regions))
                write_step(rng.randrange(n_regions))
            else:
                steps.append(("fence",))
        if not steps:
            write_step(rng.randrange(n_regions))
        phases.append(tuple(steps))
    # Bulk-copy production: a post-kernel stream_copy replicates one
    # written region's slot prefix into /pm/litmus-bulk - the zero-copy
    # transfer descriptor under crash injection (its fence and Optane
    # epochs add frontier events of their own).
    bulk = None
    if rng.random() < 0.35:
        written = [r for r in range(n_regions) if cursors[r] > 0]
        src = rng.choice(written)
        bulk = (src, cursors[src])
    return LitmusTest(seed=seed, index=index, n_threads=n_threads,
                      n_regions=n_regions, phases=tuple(phases), bulk=bulk)


def generate_tests(seed: int, count: int) -> list[LitmusTest]:
    return [generate_test(seed, i) for i in range(count)]


# ---------------------------------------------------------------------------
# kernels: scalar reference + registered warp implementation
# ---------------------------------------------------------------------------


def build_kernels(test: LitmusTest, regions: list):
    """The scalar kernel for ``test`` (with its warp twin registered).

    Multi-phase tests compile to generator kernels - each phase edge is a
    block-wide barrier, which under epoch persistency closes the epoch.
    """
    phases = test.phases

    def run_phase(ctx, phase) -> None:
        t = ctx.thread_in_block
        for step in phase:
            if step[0] == "write":
                _, r, base, vbase = step
                ctx.store(regions[r], (base + t) * SLOT_STRIDE,
                          vbase + t + 1, np.uint32)
            else:
                ctx.persist()

    def run_phase_warp(wctx, phase) -> None:
        t = wctx.thread_flats
        for step in phase:
            if step[0] == "write":
                _, r, base, vbase = step
                wctx.store(regions[r], (base + t) * SLOT_STRIDE,
                           (vbase + t + 1).astype(np.uint32), np.uint32)
            else:
                wctx.persist()

    from ..gpu.warp import vectorized_for

    if len(phases) == 1:
        def scalar_kernel(ctx):
            run_phase(ctx, phases[0])

        @vectorized_for(scalar_kernel)
        def warp_kernel(wctx):
            run_phase_warp(wctx, phases[0])
    else:
        def scalar_kernel(ctx):
            for p, phase in enumerate(phases):
                if p:
                    yield
                run_phase(ctx, phase)

        @vectorized_for(scalar_kernel)
        def warp_kernel(wctx):
            for p, phase in enumerate(phases):
                if p:
                    yield
                run_phase_warp(wctx, phases[p])

    return scalar_kernel


# ---------------------------------------------------------------------------
# the outcome oracle: abstract interpretation of the drain bookkeeping
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class LitmusWrite:
    """One (step, thread) write of the plan, with its delivery key."""

    thread: int
    region: int
    slot: int
    value: int
    #: ``(flush, round)``: the barrier/retirement flush that delivers the
    #: write and the drain round it travels in (:data:`IMPLICIT` for
    #: unfenced writes).  Keys sort in delivery order within a scope.
    key: tuple


def interpret(test: LitmusTest, policy: str) -> tuple[list[LitmusWrite], int, int]:
    """Mirror the engine's drain bookkeeping for one generated program.

    Returns ``(plan, warp_drains, epoch_boundaries)``: every write with its
    delivery key, plus the exact number of ``warp-drain`` and
    ``epoch-boundary`` frontier events the reference run must announce
    under ``policy`` (the census the epoch-boundary mutant violates).
    """
    n = test.n_threads
    n_phases = len(test.phases)
    rounds = [0] * n                 # strict: per-thread fence counters
    epoch = 1                        # epoch: the engine's global epoch
    epoch_dirty = False
    pending: list[list[dict]] = [[] for _ in range(n)]
    buffer: dict[int, set[int]] = {}       # round -> regions buffered
    buffered: list[tuple[dict, int]] = []  # (write, round) awaiting flush
    done: list[LitmusWrite] = []
    warp_drains = 0
    boundaries = 0
    flush_idx = 0

    def buffer_thread(t: int, rnd: int) -> None:
        for w in pending[t]:
            buffer.setdefault(rnd, set()).add(w["region"])
            buffered.append((w, rnd))
        pending[t].clear()

    def do_flush() -> None:
        nonlocal warp_drains, flush_idx
        warp_drains += sum(len(regions) for regions in buffer.values())
        for w, rnd in buffered:
            done.append(LitmusWrite(w["thread"], w["region"], w["slot"],
                                    w["value"], (flush_idx, rnd)))
        buffer.clear()
        buffered.clear()
        flush_idx += 1

    for p, phase in enumerate(test.phases):
        for step in phase:
            if step[0] == "write":
                _, region, base, vbase = step
                for t in range(n):
                    pending[t].append({"thread": t, "region": region,
                                       "slot": base + t,
                                       "value": vbase + t + 1})
            else:  # fence
                if policy == "relaxed":
                    continue
                if policy == "epoch":
                    epoch_dirty = True
                    for t in range(n):
                        buffer_thread(t, epoch)
                else:
                    for t in range(n):
                        rounds[t] += 1
                        buffer_thread(t, rounds[t])
        if p == n_phases - 1:
            # Threads retire: unfenced stores move to the implicit round,
            # delivered after every fenced round of the final flush.
            for t in range(n):
                buffer_thread(t, IMPLICIT)
        do_flush()
        if policy == "epoch" and epoch_dirty:
            boundaries += 1
            epoch += 1
            epoch_dirty = False
    return done, warp_drains, boundaries


def select_frontiers(frontiers: list[Frontier],
                     max_frontiers: int) -> list[Frontier]:
    """The crash states one litmus point explores.

    Every ``warp-drain`` and ``epoch-boundary`` frontier is kept - those
    are exactly the states where drain-round delivery order is observable
    (the fence-order mutant lives *between* two drains of one flush, which
    proportional pruning could skip).  Everything else is bounded by the
    usual deterministic per-kind pruning.
    """
    core = [f for f in frontiers if f.kind in ("warp-drain", "epoch-boundary")]
    rest = [f for f in frontiers if f.kind not in ("warp-drain", "epoch-boundary")]
    keep = set(core) | set(prune_frontiers(rest, max_frontiers))
    return [f for f in frontiers if f in keep]


# ---------------------------------------------------------------------------
# executing one (test, config, mutant) point
# ---------------------------------------------------------------------------


def _build(test: LitmusTest, point: ConfigPoint):
    system = System(persistency=build_model(point))
    regions = [system.machine.alloc_pm(f"/pm/litmus{i}", REGION_BYTES)
               for i in range(test.n_regions)]
    if test.bulk is not None:
        # The bulk-copy destination rides at virtual index ``n_regions``
        # everywhere regions are enumerated (images, expected words).
        regions.append(system.machine.alloc_pm("/pm/litmus-bulk", REGION_BYTES))
    return system, regions


def _run(system, test: LitmusTest, regions, injector, window: bool) -> None:
    kernel = build_kernels(test, regions)

    def body() -> None:
        system.gpu.launch(kernel, 1, test.n_threads, crash_injector=injector)
        if test.bulk is not None:
            # Post-kernel bulk replication through the transfer descriptor;
            # frontier-armed injectors can fire on its fence/epoch events.
            src, n_slots = test.bulk
            system.gpu.stream_copy(regions[test.n_regions], 0, regions[src],
                                   0, n_slots * SLOT_STRIDE, persist=True)

    if window:
        with persist_window(system):
            body()
    else:
        body()


def _image_u32(buf: np.ndarray) -> np.ndarray:
    return buf.view(np.uint32)


def _expected_words(test: LitmusTest) -> dict[int, dict[int, int]]:
    """region -> {u32 word index -> expected value} over the whole test."""
    words_per_slot = SLOT_STRIDE // 4
    out: dict[int, dict[int, int]] = {r: {} for r in range(test.n_regions)}
    for phase in test.phases:
        for step in phase:
            if step[0] != "write":
                continue
            _, r, base, vbase = step
            for t in range(test.n_threads):
                out[r][(base + t) * words_per_slot] = vbase + t + 1
    if test.bulk is not None:
        # The bulk destination mirrors the source's slot prefix: a durable
        # destination word is valid iff it is 0 or the source slot's value.
        src, n_slots = test.bulk
        limit = n_slots * words_per_slot
        out[test.n_regions] = {word: value
                               for word, value in out[src].items()
                               if word < limit}
    return out


def _state_violations(test: LitmusTest, point: ConfigPoint, model,
                      plan: list[LitmusWrite], images: dict[int, np.ndarray],
                      claim: str) -> list[tuple[str, str]]:
    """Judge one post-crash (or completion) durable state.

    ``images`` maps region index to its u32 image; ``claim`` labels the
    state in violation details ("durable"/"visible").  Returns
    ``(invariant-name, detail)`` pairs.
    """
    out: list[tuple[str, str]] = []
    expected = _expected_words(test)
    # -- value integrity: a word is 0 or its unique assigned value --------
    for r, img in images.items():
        for word in np.nonzero(img)[0]:
            want = expected[r].get(int(word))
            got = int(img[word])
            if want is None:
                out.append(("litmus-value-integrity",
                            f"region {r} word {int(word)} is {got:#x} but "
                            f"was never written"))
            elif got != want:
                out.append(("litmus-value-integrity",
                            f"region {r} word {int(word)} is {got:#x}, "
                            f"expected {want:#x} or 0"))
    words_per_slot = SLOT_STRIDE // 4
    durable = [bool(images[w.region][w.slot * words_per_slot] == w.value)
               for w in plan]
    # -- persist-domain check: volatile deliveries must not survive -------
    if not model.durable_on_delivery(point.window):
        if model.adaptive and point.window:
            out.extend(_staged_flush_violations(test, plan, durable, claim))
        else:
            for i, w in enumerate(plan):
                if durable[i]:
                    out.append(("litmus-volatile-window",
                                f"write t{w.thread}->r{w.region}[{w.slot}] "
                                f"is {claim} but deliveries park in the "
                                f"volatile LLC under {point.spec()}"))
                    break
        return out
    # -- ordering: durable writes form a key-prefix within each scope -----
    if model.orders_rounds():
        scopes = [[i for i, w in enumerate(plan) if w.thread == t]
                  for t in range(test.n_threads)]
        name = "litmus-round-ordering"
    elif model.orders_epochs():
        scopes = [list(range(len(plan)))]
        name = "litmus-epoch-ordering"
    else:
        return out
    for scope in scopes:
        newest = max((plan[i].key for i in scope if durable[i]), default=None)
        if newest is None:
            continue
        for i in scope:
            if plan[i].key < newest and not durable[i]:
                w, n = plan[i], next(plan[j] for j in scope
                                     if durable[j] and plan[j].key == newest)
                out.append((name,
                            f"t{n.thread}->r{n.region}[{n.slot}] (round "
                            f"{'implicit' if n.key[1] == IMPLICIT else n.key[1]},"
                            f" flush {n.key[0]}) is {claim} but earlier "
                            f"t{w.thread}->r{w.region}[{w.slot}] (round "
                            f"{'implicit' if w.key[1] == IMPLICIT else w.key[1]},"
                            f" flush {w.key[0]}) is not"))
                break
    return out


def _staged_flush_violations(test: LitmusTest, plan: list[LitmusWrite],
                             durable: list[bool],
                             claim: str) -> list[tuple[str, str]]:
    """The adaptive-in-window outcome set.

    The adaptive model keeps DDIO on and stages the litmus fuzzer's small
    writes in the LLC, flushing each region's backlog as one contiguous
    range at window end (or at a direct write to that region - impossible
    here, every litmus store is 4 B).  A crash during that flush may land
    between regions, so the allowed states are: per region all-or-nothing,
    and the durable regions form a prefix of first-delivery order.
    """
    out: list[tuple[str, str]] = []
    by_region: dict[int, list[int]] = {}
    for i, w in enumerate(plan):
        by_region.setdefault(w.region, []).append(i)
    state: dict[int, bool] = {}
    for r, idxs in sorted(by_region.items()):
        flushed = [durable[i] for i in idxs]
        if any(flushed) and not all(flushed):
            w = plan[idxs[flushed.index(False)]]
            out.append(("litmus-staged-flush",
                        f"region {r}'s staged backlog flushed partially: "
                        f"t{w.thread}->r{w.region}[{w.slot}] is not {claim} "
                        f"but the flush covers the whole staged range"))
        else:
            state[r] = all(flushed) and bool(flushed)
    first_key = {r: min(plan[i].key for i in idxs)
                 for r, idxs in by_region.items()}
    for r, ok in state.items():
        if not ok:
            continue
        for other, key in first_key.items():
            if key < first_key[r] and state.get(other) is False:
                out.append(("litmus-staged-flush",
                            f"region {r} is {claim} but region {other}, "
                            f"staged earlier, is not - window-end flushes "
                            f"regions in first-delivery order"))
                break
    return out


def _explore_one(test: LitmusTest, point: ConfigPoint, model,
                 plan: list[LitmusWrite],
                 frontier: Frontier) -> list[tuple[str, str]]:
    """Crash a fresh system at one frontier and judge the durable state."""
    system, regions = _build(test, point)
    injector = CrashInjector(system.machine)
    if frontier.mechanism == "event":
        injector.arm_at_frontier(frontier.value)
    elif frontier.mechanism == "threads":
        injector.arm(frontier.value)
    else:
        return [("litmus-replay",
                 f"unknown frontier mechanism {frontier.mechanism!r}")]
    crashed = False
    try:
        _run(system, test, regions, injector, point.window)
    except SimulatedCrash:
        crashed = True
    finally:
        injector.disarm()
    if not crashed:
        return [("litmus-determinism",
                 f"armed frontier {frontier.spec()} never fired")]
    images = {i: _image_u32(r.persisted_view(np.uint8, 0, r.size)).copy()
              for i, r in enumerate(regions)}
    return _state_violations(test, point, model, plan, images, "durable")


def execute_point(test_payload: dict, point_spec: str, mutant: str | None = None,
                  max_frontiers: int = DEFAULT_LITMUS_FRONTIERS,
                  frontier_spec: str | None = None) -> dict:
    """Run one litmus test at one config point; the pool's unit of work.

    Module-level, picklable, and a pure function of its arguments (the
    sentinel ``mutant`` ships by name and is armed only for this scope):
    one uninjected reference run (frontier recording + census + completion
    checks), then a crash exploration of the recorded frontiers - all of
    them for the ordering-sensitive kinds, a pruned sample elsewhere, or
    exactly ``frontier_spec`` when replaying one reported violation.
    Returns a JSON-serializable verdict payload.
    """
    test = LitmusTest.from_payload(test_payload)
    point = parse_config_point(point_spec)
    model = build_model(point)
    plan, expect_drains, expect_bounds = interpret(test, model.fence_policy)
    violations: list[dict] = []

    def violate(frontier: str, name: str, detail: str) -> None:
        violations.append({"frontier": frontier, "name": name,
                           "detail": detail})

    with sentinel_mutant(mutant):
        # -- reference run: frontiers, census, completion -----------------
        system, regions = _build(test, point)
        recorder = FrontierRecorder(window_samples=2)
        system.events.subscribe(recorder.observe)
        try:
            _run(system, test, regions, recorder, point.window)
        finally:
            system.events.unsubscribe(recorder.observe)
        frontiers = recorder.frontiers()
        counts: dict[str, int] = {}
        for f in frontiers:
            counts[f.kind] = counts.get(f.kind, 0) + 1
        census = {
            "warp-drain": counts.get("warp-drain", 0),
            "epoch-boundary": counts.get("epoch-boundary", 0),
            "expect-warp-drain": expect_drains,
            "expect-epoch-boundary": expect_bounds,
        }
        if census["warp-drain"] != expect_drains:
            violate("reference", "litmus-census-warp-drain",
                    f"expected {expect_drains} warp-drain frontiers, "
                    f"recorded {census['warp-drain']}")
        if census["epoch-boundary"] != expect_bounds:
            violate("reference", "litmus-census-epoch-boundary",
                    f"expected {expect_bounds} epoch-boundary frontiers, "
                    f"recorded {census['epoch-boundary']}")
        for r in regions:
            r.ensure_materialized()  # direct .visible access below
        visible = {i: _image_u32(r.visible[:r.size]).copy()
                   for i, r in enumerate(regions)}
        expected = _expected_words(test)
        for r, words in expected.items():
            for word, value in words.items():
                if int(visible[r][word]) != value:
                    violate("reference", "litmus-kernel-effect",
                            f"region {r} word {word} is "
                            f"{int(visible[r][word]):#x} after completion, "
                            f"expected {value:#x}")
        if point.window and (model.toggles_ddio or model.adaptive):
            # Window exit drains everything (DDIO-off delivery, or the
            # adaptive model's staged-backlog flush): all values durable.
            persisted = {i: _image_u32(r.persisted_view(np.uint8, 0, r.size))
                         for i, r in enumerate(regions)}
            for r, words in expected.items():
                for word, value in words.items():
                    if int(persisted[r][word]) != value:
                        violate("reference", "litmus-complete-durability",
                                f"region {r} word {word} not durable after "
                                f"the persist window closed")
        # -- crash exploration --------------------------------------------
        if frontier_spec is not None:
            chosen = [parse_frontier(frontier_spec)]
        else:
            chosen = select_frontiers(frontiers, max_frontiers)
        for frontier in chosen:
            for name, detail in _explore_one(test, point, model, plan, frontier):
                violate(frontier.spec(), name, detail)

    return {
        "seed": test.seed, "index": test.index, "config": point.spec(),
        "mutant": mutant, "ok": not violations, "violations": violations,
        "frontiers_recorded": len(frontiers),
        "frontiers_explored": len(chosen), "census": census,
    }


# ---------------------------------------------------------------------------
# the seed corpus: today's hand-written oracle targets
# ---------------------------------------------------------------------------


def run_seed_corpus() -> list[dict]:
    """Pin the hand-written targets' crash spaces and the planted bug.

    Each target's recorded frontier count must match :data:`SEED_CORPUS`
    exactly (cheap: one reference run, no exploration), and broken-demo's
    fence-ordering bug must still be caught at its pinned frontier.
    """
    from .explorer import CrashExplorer, explore_frontier

    rows = []
    for target, expected in SEED_CORPUS.items():
        recorded = len(CrashExplorer(target).record())
        rows.append({
            "target": target, "expected": expected, "recorded": recorded,
            "ok": recorded == expected,
            "detail": "" if recorded == expected else
            f"frontier count drifted from the pinned {expected}",
        })
    result = explore_frontier("broken-demo", "gpm",
                              parse_frontier(BROKEN_DEMO_FRONTIER))
    rows.append({
        "target": f"broken-demo@{BROKEN_DEMO_FRONTIER}",
        "expected": "violation", "recorded": result.status,
        "ok": result.status == "violation",
        "detail": "; ".join(v.name for v in result.failed_verdicts)
        or "the planted bug went undetected",
    })
    return rows


# ---------------------------------------------------------------------------
# the explorer: tests x matrix x mutants through the experiment engine
# ---------------------------------------------------------------------------


@dataclass
class LitmusReport:
    """Outcome of one ``--litmus`` campaign."""

    seed: int
    count: int
    corpus: list[dict] = field(default_factory=list)
    matrix: list[dict] = field(default_factory=list)
    sentinels: dict = field(default_factory=dict)

    @property
    def corpus_failures(self) -> list[dict]:
        return [row for row in self.corpus if not row["ok"]]

    @property
    def matrix_failures(self) -> list[dict]:
        return [res for res in self.matrix if not res["ok"]]

    @property
    def uncaught_mutants(self) -> list[str]:
        return [m for m, s in self.sentinels.items() if not s["caught"]]

    @property
    def ok(self) -> bool:
        return (not self.corpus_failures and not self.matrix_failures
                and not self.uncaught_mutants)

    def describe(self) -> str:
        from .report import litmus_reproducer_command, render_litmus_report

        return render_litmus_report(self, litmus_reproducer_command)


class LitmusExplorer:
    """Fan generated litmus tests across the full persistency config matrix.

    One campaign is three stages, all deterministic in ``(count, seed)``:

    1. the **seed corpus** - the hand-written oracle targets' frontier
       counts against their pins, plus broken-demo's planted bug;
    2. the **matrix** - ``count`` generated tests, each executed at every
       :func:`config_matrix` point through the experiment engine's shared
       fork pool and disk cache (repeated points are free);
    3. the **sentinel self-check** - the first ``mutant_tests`` tests
       re-run across the matrix with each sentinel mutant armed; every
       mutant must be detected by at least one point.
    """

    def __init__(self, count: int, seed: int, jobs: int = 1,
                 max_frontiers: int = DEFAULT_LITMUS_FRONTIERS,
                 mutant_tests: int = 3, corpus: bool = True) -> None:
        if count < 1:
            raise ValueError("--litmus needs at least one test")
        self.count = count
        self.seed = seed
        self.jobs = max(1, jobs)
        self.max_frontiers = max_frontiers
        self.mutant_tests = min(max(1, mutant_tests), count)
        self.corpus = corpus

    def run(self) -> LitmusReport:
        from ..experiments.runner import run_litmus_batch

        tests = generate_tests(self.seed, self.count)
        points = config_matrix()
        tasks = [(t.payload(), p.spec(), None, self.max_frontiers)
                 for t in tests for p in points]
        n_plain = len(tasks)
        chosen = tests[: self.mutant_tests]
        for mutant in SENTINEL_MUTANTS:
            tasks.extend((t.payload(), p.spec(), mutant, self.max_frontiers)
                         for t in chosen for p in points)
        results = run_litmus_batch(tasks, jobs=self.jobs)
        sentinels: dict[str, dict] = {}
        stride = len(chosen) * len(points)
        for m, mutant in enumerate(SENTINEL_MUTANTS):
            block = results[n_plain + m * stride: n_plain + (m + 1) * stride]
            detections = [
                r for r in block
                if not r["ok"] and any(v["name"] != "litmus-determinism"
                                       for v in r["violations"])
            ]
            sentinels[mutant] = {
                "caught": bool(detections),
                "points": len(block),
                "detections": [
                    {"index": r["index"], "config": r["config"],
                     "name": r["violations"][0]["name"],
                     "frontier": r["violations"][0]["frontier"]}
                    for r in detections[:4]
                ],
            }
        return LitmusReport(
            seed=self.seed, count=self.count,
            corpus=run_seed_corpus() if self.corpus else [],
            matrix=results[:n_plain], sentinels=sentinels,
        )


def run_campaign(count: int, seed: int, jobs: int = 1,
                 max_frontiers: int = DEFAULT_LITMUS_FRONTIERS,
                 mutant_tests: int = 3, corpus: bool = True) -> LitmusReport:
    """Convenience wrapper: one :class:`LitmusExplorer` campaign."""
    return LitmusExplorer(count, seed, jobs=jobs, max_frontiers=max_frontiers,
                          mutant_tests=mutant_tests, corpus=corpus).run()

"""Crash-frontier taxonomy: where can a crash land that matters?

A *frontier* is one semantically distinct crash state, named by a
deterministic replay coordinate:

* ``mechanism="event"``: the 0-based ordinal of a frontier-tagged event on
  the bus (every event class with a non-``None`` ``frontier_kind``, see
  :mod:`repro.sim.events`).  Replayed with
  :meth:`repro.sim.crash.CrashInjector.arm_at_frontier` - the crash fires
  during emission, before the event's persistence side effect applies.
* ``mechanism="threads"``: a cumulative retired-thread count, replayed with
  :meth:`repro.sim.crash.CrashInjector.arm`.  These cover the *unfenced
  windows* between frontier events, where some threads of a kernel have
  issued stores that no drain round has yet delivered.

Thread counts alone cannot express "after this warp's drain round was
delivered but before the next" (delivery happens between ``advance`` calls),
and event ordinals alone cannot express "midway through a warp's threads";
the two mechanisms together enumerate every distinct state the simulated
hardware can be killed in.

The :class:`FrontierRecorder` watches one uninjected reference run (as a bus
subscriber and as a passive stand-in for the workload's ``crash_injector``)
and emits the full frontier list; :func:`prune_frontiers` then bounds the
exploration budget while keeping every frontier *kind* represented, by
deterministic striding - never by random sampling.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Frontier:
    """One distinct crash state, named by its replay coordinate."""

    mechanism: str      # "event" | "threads"
    value: int          # event ordinal, or cumulative retired-thread count
    kind: str           # frontier taxonomy bucket ("fence", "warp-drain", ...)
    description: str = ""

    def spec(self) -> str:
        """The ``--frontier`` CLI spec that replays this exact crash."""
        return f"{self.mechanism}:{self.value}"


#: Kind assigned to thread-count frontiers inside unfenced windows.
UNFENCED_WINDOW = "unfenced-window"


def format_frontier(frontier: Frontier) -> str:
    extra = f" ({frontier.description})" if frontier.description else ""
    return f"{frontier.spec()} [{frontier.kind}]{extra}"


def parse_frontier(spec: str) -> Frontier:
    """Parse an ``event:17`` / ``threads:113`` reproducer spec."""
    mechanism, _, raw = spec.partition(":")
    if mechanism not in ("event", "threads") or not raw:
        raise ValueError(
            f"bad frontier spec {spec!r}: expected 'event:N' or 'threads:N'"
        )
    try:
        value = int(raw)
    except ValueError as exc:
        raise ValueError(f"bad frontier spec {spec!r}: {raw!r} is not an int") from exc
    if value < 0:
        raise ValueError(f"bad frontier spec {spec!r}: ordinal must be >= 0")
    kind = UNFENCED_WINDOW if mechanism == "threads" else "replay"
    return Frontier(mechanism, value, kind, "replayed from spec")


class FrontierRecorder:
    """Observe one reference run and enumerate its crash frontiers.

    Subscribe it to the machine's event bus *and* pass it wherever the
    workload accepts a ``crash_injector`` (it only implements the passive
    half of the injector interface - ``advance`` - and never crashes):

        recorder = FrontierRecorder()
        system.events.subscribe(recorder.observe)
        workload.run(mode, system=system, crash_injector=recorder)
        frontiers = recorder.frontiers()

    Every frontier-tagged event becomes one ``event`` frontier at its
    ordinal.  Between consecutive frontier events, the distinct cumulative
    retired-thread counts form an unfenced window; up to ``window_samples``
    representative counts per window (first, middle, last - deterministic)
    become ``threads`` frontiers.
    """

    #: mirror of the active injector protocol the GPU engine relies on
    fired = False

    def __init__(self, window_samples: int = 3) -> None:
        if window_samples < 1:
            raise ValueError("window_samples must be >= 1")
        self.window_samples = window_samples
        self._event_frontiers: list[Frontier] = []
        self._thread_frontiers: list[Frontier] = []
        self._ordinal = 0
        self._threads_seen = 0
        self._window: list[int] = []
        self._seen_thread_values: set[int] = set()
        self._crashed = False

    # -- the two observation channels ------------------------------------

    def advance(self, newly_retired: int) -> None:
        """Passive ``crash_injector`` hook: record, never crash."""
        self._threads_seen += newly_retired
        if self._threads_seen not in self._seen_thread_values:
            self._seen_thread_values.add(self._threads_seen)
            self._window.append(self._threads_seen)

    def observe(self, ts: float, event) -> None:
        """Event-bus subscriber: one frontier per frontier-tagged event."""
        if self._crashed:
            return
        if type(event).etype == "crash":
            self._crashed = True
            return
        kind = type(event).frontier_kind
        if kind is None:
            return
        self._close_window()
        self._event_frontiers.append(Frontier(
            "event", self._ordinal, kind, type(event).etype
        ))
        self._ordinal += 1

    def _close_window(self) -> None:
        """Sample the unfenced thread window accumulated since the last
        frontier event (first, middle, last distinct counts)."""
        window = self._window
        if window:
            picks = {window[0], window[len(window) // 2], window[-1]}
            if self.window_samples > 3 and len(window) > 3:
                stride = max(1, len(window) // self.window_samples)
                picks.update(window[::stride][: self.window_samples])
            for count in sorted(picks)[: self.window_samples]:
                self._thread_frontiers.append(Frontier(
                    "threads", count, UNFENCED_WINDOW,
                    f"before frontier event {self._ordinal}"
                ))
            self._window = []

    # -- results ----------------------------------------------------------

    def frontiers(self) -> list[Frontier]:
        """All recorded frontiers, events first, in deterministic order."""
        self._close_window()
        return list(self._event_frontiers) + list(self._thread_frontiers)

    @property
    def event_count(self) -> int:
        return self._ordinal


def prune_frontiers(frontiers: list[Frontier],
                    max_frontiers: int) -> list[Frontier]:
    """Bound the exploration budget, deterministically and representatively.

    Keeps every frontier when the budget allows; otherwise stride-samples
    *within each kind* so that no taxonomy bucket disappears, always
    retaining each kind's first and last frontier (the boundary states most
    likely to differ).  Pure index arithmetic - no randomness - so the same
    input always prunes to the same set.
    """
    if max_frontiers <= 0 or len(frontiers) <= max_frontiers:
        return list(frontiers)
    by_kind: dict[str, list[Frontier]] = {}
    for f in frontiers:
        by_kind.setdefault(f.kind, []).append(f)
    kinds = sorted(by_kind)
    # Budget per kind, proportional to its population, at least 1 each.
    total = len(frontiers)
    budget = {k: max(1, (max_frontiers * len(by_kind[k])) // total)
              for k in kinds}
    # Distribute any slack to the largest kinds, deterministically.
    slack = max_frontiers - sum(budget.values())
    for k in sorted(kinds, key=lambda k: -len(by_kind[k])):
        if slack <= 0:
            break
        give = min(slack, len(by_kind[k]) - budget[k])
        budget[k] += give
        slack -= give
    # The 1-per-kind floor can overshoot a tight budget; trim the largest
    # allocations back (never below 1) until the budget holds.  Only when
    # there are more kinds than budget does the floor win over the cap.
    over = sum(budget.values()) - max_frontiers
    while over > 0:
        k = max(kinds, key=lambda k: (budget[k], len(by_kind[k]), k))
        if budget[k] <= 1:
            break
        budget[k] -= 1
        over -= 1
    kept: list[Frontier] = []
    for k in kinds:
        group = by_kind[k]
        n = min(budget[k], len(group))
        if n >= len(group):
            kept.extend(group)
            continue
        if n == 1:
            kept.append(group[0])
            continue
        picks = {0, len(group) - 1}
        step = (len(group) - 1) / (n - 1)
        for i in range(1, n - 1):
            picks.add(round(i * step))
        kept.extend(group[i] for i in sorted(picks)[:n])
    # Preserve the original recording order for readable reports.
    order = {id(f): i for i, f in enumerate(frontiers)}
    kept.sort(key=lambda f: order[id(f)])
    return kept

"""Systematic crash-consistency checking built on the hardware event bus.

The paper argues recoverability from *random* fault injection (Section 6.2,
NVBitFI); this subsystem replaces sampling with enumeration.  A reference
run is observed through the event bus to identify every semantically
distinct *crash frontier* (fences, warp drain rounds, Optane epochs,
persist-window toggles, checkpoint marks, and the unfenced thread windows
between them); the workload is then deterministically replayed to each
frontier, crashed there, recovered with :class:`repro.core.recovery.
RecoveryManager`, and judged against the invariants the workload declares
through the :class:`CrashOracle` protocol.

Modules
-------
``frontier``   frontier taxonomy, the :class:`FrontierRecorder`, pruning
``oracle``     the :class:`CrashOracle` protocol and invariant plumbing
``oracles``    concrete oracles for the check targets (prefix_sum, kvs,
               checkpointed-dnn, hashmap, ring, broken-demo)
``explorer``   the :class:`CrashExplorer` replay loop + multiprocessing
``report``     human-readable reports with replayable reproducer commands
``litmus``     the persistency-litmus fuzzer: seeded generated tests, the
               outcome oracle, and the :class:`LitmusExplorer` config-matrix
               fan-out with sentinel-mutant self-checks

CLI: ``python -m repro check <target>`` or ``--litmus N --seed S``
(see ``docs/crash-consistency.md``).
"""

from .explorer import CrashExplorer, ExploreReport, FrontierResult, explore
from .litmus import (
    ConfigPoint,
    LitmusExplorer,
    LitmusReport,
    LitmusTest,
    config_matrix,
    execute_point,
    generate_test,
    parse_config_point,
    run_campaign,
)
from .frontier import (
    Frontier,
    FrontierRecorder,
    format_frontier,
    parse_frontier,
    prune_frontiers,
)
from .oracle import CrashOracle, InvariantCheck, InvariantVerdict, RunObservation
from .oracles import CHECK_TARGETS, make_oracle

__all__ = [
    "CHECK_TARGETS",
    "ConfigPoint",
    "CrashExplorer",
    "CrashOracle",
    "ExploreReport",
    "Frontier",
    "FrontierRecorder",
    "FrontierResult",
    "InvariantCheck",
    "InvariantVerdict",
    "LitmusExplorer",
    "LitmusReport",
    "LitmusTest",
    "RunObservation",
    "config_matrix",
    "execute_point",
    "explore",
    "format_frontier",
    "generate_test",
    "make_oracle",
    "parse_config_point",
    "parse_frontier",
    "prune_frontiers",
    "run_campaign",
]

"""The CPU last-level cache, Data Direct I/O, and the volatility boundary.

Section 3.1 of the paper: *"When DDIO is enabled (default), GPU's writes to
system memory are cached in CPU's LLCs. They do not immediately proceed to
the memory controllers. Thus, GPM selectively turns off DDIO for GPUs when
persistence is desired."*

This module models exactly that boundary.  The LLC is a capacity-bounded LRU
store of **dirty cache lines** sitting in front of persistent memory:

* Inbound I/O writes (GPU stores arriving over PCIe) land here when DDIO is
  on - the data is *visible* but **not persistent**.
* CPU stores to PM-mapped memory also dirty lines here.
* A line becomes persistent when it is explicitly flushed (CLFLUSHOPT /
  GPM's DDIO-off fence path) or naturally evicted (the dotted arrows of
  Fig. 2).
* On a crash the dirty lines are **discarded** - unless the machine models
  eADR (Section 3.3), in which case the enhanced ADR domain includes the
  LLC and all dirty lines drain to PM on failure.

Only lines backed by PM regions are tracked: dirty DRAM lines need no
write-back bookkeeping because DRAM is lost on crash anyway.
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np

from .config import SystemConfig
from .events import EventBus, LlcEvict, LlcFlush, LlcInstall
from .memory import MemKind, Region
from .optane import OptaneModel


class LastLevelCache:
    """Dirty-line tracking for the DDIO/LLC persistence gap."""

    def __init__(self, config: SystemConfig, events: EventBus, optane: OptaneModel) -> None:
        self._config = config
        self._events = events
        self._optane = optane
        self._line = config.cpu_cache_line_bytes
        self._capacity_lines = config.llc_ddio_bytes // self._line
        # (region.token, line_no) -> region, in LRU order (oldest first).
        # Tokens are monotonic and never reused, unlike id(): a freed
        # region's stale dirty lines can never alias a later allocation.
        self._dirty: OrderedDict[tuple[int, int], tuple[Region, int]] = OrderedDict()

    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._dirty)

    def dirty_lines(self, region: Region) -> list[int]:
        """Line numbers of ``region`` currently dirty in the LLC (sorted)."""
        rid = region.token
        return sorted(line for (r, line), _ in self._dirty.items() if r == rid)

    def install_writes(self, region: Region, starts, lengths) -> None:
        """Record stores to PM-backed lines arriving at the LLC.

        The bytes are already visible (stores update ``region.visible``
        directly); this only tracks *which lines are dirty*, i.e. visible
        but not yet persistent.  Capacity overflow triggers natural LRU
        eviction, which persists the evicted lines.
        """
        if region.kind is not MemKind.PM:
            return
        starts = np.atleast_1d(np.asarray(starts, dtype=np.int64))
        lengths = np.atleast_1d(np.asarray(lengths, dtype=np.int64))
        total = int(lengths.sum())
        # Streaming fast path: traffic far exceeding the DDIO window writes
        # through continuously (lines evict as fast as they fill).  Persist
        # the head of the stream directly and cache only the tail.
        if total > 2 * self._capacity_lines * self._line:
            tail_bytes = self._capacity_lines * self._line
            starts, lengths = self._persist_all_but_tail(region, starts, lengths, tail_bytes)
        rid = region.token
        hits = fills = 0
        for start, length in zip(starts.tolist(), lengths.tolist()):
            if length <= 0:
                continue
            first = start // self._line
            last = (start + length - 1) // self._line
            for line in range(first, last + 1):
                key = (rid, line)
                if key in self._dirty:
                    self._dirty.move_to_end(key)
                    hits += 1
                else:
                    self._dirty[key] = (region, line)
                    fills += 1
        if hits or fills:
            self._events.emit(LlcInstall(region=region.name, hits=hits, fills=fills))
        self._evict_over_capacity()

    def _persist_all_but_tail(self, region, starts, lengths, tail_bytes):
        """Write the stream's head straight through; return the tail segments."""
        order = np.argsort(starts, kind="stable")
        starts, lengths = starts[order], lengths[order]
        remaining = tail_bytes
        keep_starts: list[int] = []
        keep_lengths: list[int] = []
        head_starts: list[int] = []
        head_lengths: list[int] = []
        for start, length in zip(starts[::-1].tolist(), lengths[::-1].tolist()):
            if remaining >= length:
                keep_starts.append(start)
                keep_lengths.append(length)
                remaining -= length
            elif remaining > 0:
                keep_starts.append(start + length - remaining)
                keep_lengths.append(remaining)
                head_starts.append(start)
                head_lengths.append(length - remaining)
                remaining = 0
            else:
                head_starts.append(start)
                head_lengths.append(length)
        if head_starts:
            self._optane.write_epoch(region, head_starts, head_lengths)
            # A write-through segment spans every cache line it touches, not
            # one line per segment.
            lines = sum(
                (start + length - 1) // self._line - start // self._line + 1
                for start, length in zip(head_starts, head_lengths)
            )
            self._events.emit(LlcEvict(lines=lines))
        return np.asarray(keep_starts, dtype=np.int64), np.asarray(keep_lengths, dtype=np.int64)

    def _evict_over_capacity(self) -> None:
        evicted = 0
        while len(self._dirty) > self._capacity_lines:
            (_, line), (region, _) = self._dirty.popitem(last=False)
            self._write_back(region, line)
            evicted += 1
        if evicted:
            self._events.emit(LlcEvict(lines=evicted))

    def _write_back(self, region: Region, line: int) -> None:
        start = line * self._line
        size = min(self._line, region.size - start)
        # Natural evictions are asynchronous background traffic; they persist
        # data functionally but are not charged to any foreground timeline.
        self._optane.write_epoch(region, [start], [size])

    # ------------------------------------------------------------------

    def flush_range(self, region: Region, offset: int, size: int) -> float:
        """Flush the dirty lines covering ``[offset, offset+size)`` to PM.

        Models a CLFLUSHOPT loop followed by a drain: each dirty line in the
        range is written back as its own drain epoch (this is what makes
        flush-grain access patterns pay Optane's partial-line penalty).
        Returns the media seconds consumed.
        """
        if region.kind is not MemKind.PM or size <= 0:
            return 0.0
        rid = region.token
        first = offset // self._line
        last = (offset + size - 1) // self._line
        span_lines = last - first + 1
        # Walk whichever is smaller: the address range or the dirty set.
        if span_lines <= len(self._dirty):
            hits = [
                line
                for line in range(first, last + 1)
                if (rid, line) in self._dirty
            ]
        else:
            hits = [
                line
                for (r, line) in list(self._dirty)
                if r == rid and first <= line <= last
            ]
        if not hits:
            return 0.0
        # Announce before touching the dirty set: a crash during this
        # emission must see the lines either still cached (eADR drains
        # them) or already persisted - never in between.  Real hardware
        # has no such limbo (a CLFLUSHOPT'd line is in the cache or in the
        # ADR-protected controller queue); found by the litmus fuzzer.
        self._events.emit(LlcFlush(region=region.name, lines=len(hits)))
        for line in hits:
            del self._dirty[(rid, line)]
        starts = np.asarray(sorted(hits), dtype=np.int64) * self._line
        return self._optane.flush_lines(region, starts, self._line)

    def drop_range(self, region: Region, offset: int, size: int) -> None:
        """Forget dirty lines in a range that were persisted by other means.

        Used when a bulk flush already drained the range's visible bytes to
        PM (e.g. :meth:`OptaneModel.write_flush_grain`), so a per-line
        write-back would double-charge the media.
        """
        if region.kind is not MemKind.PM or size <= 0:
            return
        rid = region.token
        first = offset // self._line
        last = (offset + size - 1) // self._line
        if last - first + 1 <= len(self._dirty):
            for line in range(first, last + 1):
                self._dirty.pop((rid, line), None)
        else:
            for key in [k for k in self._dirty if k[0] == rid and first <= k[1] <= last]:
                del self._dirty[key]

    def flush_region(self, region: Region) -> float:
        """Flush every dirty line of ``region``; returns media seconds."""
        return self.flush_range(region, 0, region.size)

    # ------------------------------------------------------------------

    def crash(self, eadr: bool) -> None:
        """Apply crash semantics to the cached dirty lines.

        Without eADR all dirty lines are lost.  With eADR the enhanced ADR
        domain covers the LLC, so every dirty line drains to PM (Section
        3.3: the feature "will drain the entire contents of CPU caches to
        PM on power failures").
        """
        if eadr:
            for (_, line), (region, _) in list(self._dirty.items()):
                self._write_back(region, line)
        self._dirty.clear()

"""First-class GPU persistency models: the pluggable mode axis.

GPM (the paper) is one point in the GPU-persistency design space.  This
module makes the whole axis explicit: a :class:`PersistencyModel` bundles
the three decisions that used to be smeared across the stack as booleans
and special cases -

1. **ordering** - how system-scope fences relate to durability
   (``fence_policy``: every fence is its own drain round, fences collapse
   into epochs delimited by barriers, or durability only at kernel
   completion);
2. **persist-domain boundary** - whether the LLC is inside the persistence
   domain (eADR) and whether persist windows must toggle DDIO
   (``perfctrlsts_0``);
3. **data path** - whether each inbound write goes straight to the PM
   media or stages in DRAM/LLC for a later bulk flush
   (:meth:`PersistencyModel.route_io_write`, the adaptive models).

Concrete models:

===============  ============================================================
``strict``       today's GPM semantics (Section 5.1): DDIO-off windows,
                 every ``__threadfence_system()`` is an ordered drain round.
                 Bit-identical to the seed goldens by construction.
``eadr``         GPM on the projected eADR platform (Section 3.3): the LLC
                 joins the persistence domain, windows are no-ops.
``epoch``        epoch persistency (Lin & Solihin): fences inside an epoch
                 are unordered among themselves; ordering is only enforced
                 across epoch boundaries (block barriers / kernel end),
                 which the engine announces as ``EpochBoundary`` events.
``relaxed``      relaxed persistency: fences guarantee nothing before
                 kernel completion; all persist traffic drains at the end.
``adaptive``     adaptive data-path selection (Long et al.): per write
                 batch, choose the direct-PM path or the DRAM/LLC staging
                 path from the access pattern observed on the event bus.
===============  ============================================================

Two registries live here so every layer shares one source of truth:

* :data:`MODEL_REGISTRY` - model name -> model class
  (:func:`make_model`, :func:`register_model`);
* :data:`MODE_REGISTRY` - workload mode string (``"gpm"``, ``"cap-mm"``,
  ``"gpm-epoch"``, ...) -> :class:`ModeEntry` describing which model the
  mode uses and how workloads drive it (:func:`mode_entry`,
  :func:`register_mode`).  ``repro.workloads.base.Mode`` and the CLI are
  both thin views over this table; unknown names error with the known set.

Registering a new model from the literature is::

    @register_model
    class MyModel(PersistencyModel):
        name = "mymodel"
        fence_policy = "epoch"

    register_mode(ModeEntry(name="gpm-mymodel", model="mymodel",
                            data_on_pm=True, in_kernel_persist=True,
                            uses_persist_window=True))

See ``docs/persistency-models.md``.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass

import numpy as np

from .events import GpuPmWrite, WarpDrain
from .memory import MemKind

#: Cost of the privileged I/O-register write that flips DDIO (the paper's
#: ``perfctrlsts_0`` write); charged by models whose windows toggle DDIO.
DDIO_TOGGLE_S = 2.0e-6

#: The fence-ordering policies the SIMT engine implements.
FENCE_POLICIES = ("strict", "epoch", "relaxed")


# ---------------------------------------------------------------------------
# sentinel mutants (planted ordering bugs for the litmus fuzzer)
# ---------------------------------------------------------------------------

#: Named, intentionally planted ordering bugs.  ``repro check --litmus``
#: re-runs a slice of its generated tests with each mutant armed and fails
#: if the fuzzer does not catch it (``docs/crash-consistency.md``):
#:
#: * ``"fence-order"`` re-plants the broken-demo bug at the engine level:
#:   ``flush_warp`` delivers a warp's buffered drain rounds in *reverse*
#:   order, so a later fence's writes can be durable at a crash while an
#:   earlier fence's are not;
#: * ``"epoch-boundary"`` makes the :class:`Epoch` model decline to open
#:   the next epoch at a barrier (:meth:`PersistencyModel.advance_epoch`),
#:   silently coalescing adjacent epochs - no ``EpochBoundary`` frontier is
#:   ever announced.
SENTINEL_MUTANTS = ("fence-order", "epoch-boundary")

_mutant: str | None = None


def activate_mutant(name: str | None) -> None:
    """Arm one sentinel mutant process-wide (``None`` disarms)."""
    global _mutant
    if name is not None and name not in SENTINEL_MUTANTS:
        known = ", ".join(SENTINEL_MUTANTS)
        raise ValueError(f"unknown sentinel mutant {name!r}; one of: {known}")
    _mutant = name


def active_mutant() -> str | None:
    """The armed sentinel mutant, or ``None`` (the normal case)."""
    return _mutant


@contextmanager
def sentinel_mutant(name: str | None):
    """Arm a sentinel mutant for the scope of the block (``None`` = no-op)."""
    previous = _mutant
    activate_mutant(name)
    try:
        yield
    finally:
        activate_mutant(previous)


class PersistencyModel:
    """Ordering, persist-domain and data-path rules for one machine.

    One instance is owned by one :class:`~repro.sim.machine.Machine` (models
    carry per-machine state: staged ranges, observed access patterns).  The
    class attributes are the model's static contract; the methods are the
    hooks the machine, ``core.persist`` and the GPU engine delegate to.
    """

    #: registry key and display name
    name = "strict"
    #: the LLC is inside the persistence domain (eADR, Section 3.3)
    eadr = False
    #: fence ordering the SIMT engine applies; one of FENCE_POLICIES
    fence_policy = "strict"
    #: persist windows toggle DDIO (the ``perfctrlsts_0`` write)
    toggles_ddio = True
    #: per-write data-path selection is active (:meth:`route_io_write`)
    adaptive = False

    def __init__(self) -> None:
        self._machine = None

    # -- lifecycle ---------------------------------------------------------

    def attach(self, machine) -> None:
        """Bind to the owning machine (subscribe observers, read config)."""
        self._machine = machine

    def reset_after_crash(self) -> None:
        """Drop volatile model state (staged ranges, open windows)."""

    # -- persist-window boundary (core.persist delegates here) -------------

    def window_begin(self, machine) -> None:
        if self.toggles_ddio:
            machine.set_ddio(False)
            machine.clock.advance(DDIO_TOGGLE_S)

    def window_end(self, machine) -> None:
        if self.toggles_ddio:
            machine.set_ddio(True)
            machine.clock.advance(DDIO_TOGGLE_S)

    # -- epoch semantics ---------------------------------------------------

    @property
    def declares_epochs(self) -> bool:
        """Whether the engine announces ``EpochBoundary`` frontiers.

        True exactly for epoch-policy models: barriers and kernel completion
        close an epoch, which is where cross-epoch ordering is enforced.
        """
        return self.fence_policy == "epoch"

    def advance_epoch(self, epoch: int) -> int:
        """The epoch to open when the engine closes a dirty epoch.

        The SIMT engine delegates here from its barrier/completion hook and
        drops the ``EpochBoundary`` announcement when the returned epoch is
        unchanged (see the ``"epoch-boundary"`` sentinel mutant).
        """
        return epoch + 1

    # -- ordering predicates (the litmus outcome oracle reads these) -------

    def orders_rounds(self) -> bool:
        """Each thread's fenced drain rounds are durability-ordered.

        Under strict-policy models a thread's round *r+1* can only be
        durable at a crash if round *r* is; unfenced (implicit-round) stores
        order after every fenced round of their thread.
        """
        return self.fence_policy == "strict"

    def orders_epochs(self) -> bool:
        """Durability is ordered across epoch boundaries (all threads).

        Under epoch-policy models fences inside one epoch are unordered
        among themselves, but a write fenced in epoch *e+1* can only be
        durable at a crash if every write fenced in epoch *e* is.
        """
        return self.fence_policy == "epoch"

    def durable_on_delivery(self, in_window: bool) -> bool:
        """Whether a delivered drain round is durable if the machine crashes.

        True when the LLC is inside the persistence domain (eADR) or when
        delivery bypasses the volatile LLC (DDIO off inside a persist
        window).  False means delivered-but-volatile: the write parks in
        LLC lines that a crash discards.
        """
        return self.eadr or (in_window and self.toggles_ddio)

    # -- data path ---------------------------------------------------------

    def route_io_write(self, machine, region, starts, lengths):
        """Route one inbound PM write batch; ``None`` means the default
        DDIO-governed path (only adaptive models override this)."""
        return None

    def describe(self) -> str:
        domain = "LLC (eADR)" if self.eadr else "memory controllers (ADR)"
        return (f"{self.name}: {self.fence_policy} ordering, "
                f"persist domain at the {domain}")


class Strict(PersistencyModel):
    """Today's GPM semantics - the seed's behaviour, bit for bit."""

    name = "strict"


class EadrStrict(Strict):
    """Strict ordering on the projected eADR platform: windows are free."""

    name = "eadr"
    eadr = True
    toggles_ddio = False


class Epoch(PersistencyModel):
    """Epoch persistency: durability ordered only across epoch boundaries.

    Fences still *initiate* persists, but fences within one epoch are
    unordered among themselves: the engine coalesces them into a single
    drain round per warp and epoch.  Block-wide barriers and kernel
    completion close the epoch (``EpochBoundary`` on the event bus), which
    is where ordering - and the per-warp fence critical path - is paid.
    """

    name = "epoch"
    fence_policy = "epoch"

    def advance_epoch(self, epoch: int) -> int:
        # Sentinel mutant "epoch-boundary": decline to open the next epoch,
        # silently coalescing adjacent epochs.  The litmus fuzzer's frontier
        # census must notice the missing EpochBoundary announcements.
        if active_mutant() == "epoch-boundary":
            return epoch
        return epoch + 1


class Relaxed(PersistencyModel):
    """Relaxed persistency: durability guaranteed only at kernel end."""

    name = "relaxed"
    fence_policy = "relaxed"


class AdaptivePath(PersistencyModel):
    """Runtime direct-PM vs DRAM/LLC-staged write-path selection.

    Inside persist windows (which keep DDIO *on* under this model), each
    inbound write batch is routed by the access pattern observed on the
    event bus: an exponential moving average of warp-drain segment sizes.
    Large/sequential traffic takes the direct path (media write, durable at
    the fence, like strict); small/scattered traffic stages in the LLC and
    is flushed in bulk - per region at the next direct write to that region
    (preserving per-region persist order), and globally at window end.

    Crash semantics follow from the mechanism: staged-but-unflushed writes
    live in volatile LLC lines and are lost, exactly like pre-fence stores
    under strict - so recovery protocols built on "fence before sentinel"
    stay sound (a durable sentinel can only have reached the media via the
    direct path, which flushes the region's staged backlog first).
    """

    name = "adaptive"
    adaptive = True
    toggles_ddio = False

    #: EMA weight of the newest warp-drain observation.
    ema_alpha = 0.2

    def __init__(self) -> None:
        super().__init__()
        self._ema_segment_bytes: float | None = None
        self._window_depth = 0
        #: region.token -> (region, staged_lo, staged_hi)
        self._staged: dict[int, list] = {}
        self._threshold = 256

    # -- lifecycle ---------------------------------------------------------

    def attach(self, machine) -> None:
        super().attach(machine)
        self._threshold = machine.config.pm_xpline_bytes
        machine.events.subscribe(self._observe)

    def _observe(self, ts: float, event) -> None:
        if type(event) is not WarpDrain or not event.segments:
            return
        mean = event.nbytes / event.segments
        if self._ema_segment_bytes is None:
            self._ema_segment_bytes = mean
        else:
            a = self.ema_alpha
            self._ema_segment_bytes = (1 - a) * self._ema_segment_bytes + a * mean

    def reset_after_crash(self) -> None:
        self._staged.clear()
        self._window_depth = 0
        self._ema_segment_bytes = None

    # -- windows -----------------------------------------------------------

    def window_begin(self, machine) -> None:
        self._window_depth += 1

    def window_end(self, machine) -> None:
        self._window_depth -= 1
        if self._window_depth > 0:
            return
        self._window_depth = 0
        total = 0.0
        for token in list(self._staged):
            total += self._flush_staged(machine, token)
        if total:
            machine.clock.advance(total)

    # -- data path ---------------------------------------------------------

    def select_write_path(self, region, starts, lengths) -> str:
        """``"direct"`` or ``"staged"`` for one write batch."""
        signal = self._ema_segment_bytes
        if signal is None:
            lengths = np.atleast_1d(np.asarray(lengths, dtype=np.int64))
            signal = float(lengths.sum()) / max(1, lengths.size)
        return "direct" if signal >= self._threshold else "staged"

    def route_io_write(self, machine, region, starts, lengths):
        if self._window_depth <= 0 or region.kind is not MemKind.PM:
            return None
        if self.select_write_path(region, starts, lengths) == "staged":
            machine.llc.install_writes(region, starts, lengths)
            self._note_staged(region, starts, lengths)
            return 0.0
        # Direct path: the region's staged backlog must hit the media first
        # (writes to one region persist in issue order under this model).
        time = self._flush_staged(machine, region.token)
        time += machine.optane.write_epoch(region, starts, lengths)
        total = int(np.sum(np.atleast_1d(np.asarray(lengths, dtype=np.int64))))
        machine.events.emit(GpuPmWrite(nbytes=total))
        return time

    def _note_staged(self, region, starts, lengths) -> None:
        starts = np.atleast_1d(np.asarray(starts, dtype=np.int64))
        lengths = np.atleast_1d(np.asarray(lengths, dtype=np.int64))
        if starts.size == 0:
            return
        lo = int(starts.min())
        hi = int((starts + lengths).max())
        entry = self._staged.get(region.token)
        if entry is None:
            self._staged[region.token] = [region, lo, hi]
        else:
            entry[1] = min(entry[1], lo)
            entry[2] = max(entry[2], hi)

    def _flush_staged(self, machine, token: int) -> float:
        entry = self._staged.pop(token, None)
        if entry is None:
            return 0.0
        region, lo, hi = entry
        return machine.llc.flush_range(region, lo, hi - lo)

    def describe(self) -> str:
        return (f"{self.name}: strict ordering, per-write direct-PM vs "
                f"LLC-staged path selection (threshold {self._threshold} B)")


# ---------------------------------------------------------------------------
# model registry
# ---------------------------------------------------------------------------

#: model name -> model class; the single source of truth for ``--model``
#: style lookups and the mode table below.
MODEL_REGISTRY: dict[str, type[PersistencyModel]] = {}


def register_model(cls: type[PersistencyModel]) -> type[PersistencyModel]:
    """Register a :class:`PersistencyModel` subclass under ``cls.name``."""
    if cls.fence_policy not in FENCE_POLICIES:
        raise ValueError(
            f"model {cls.name!r} has unknown fence policy "
            f"{cls.fence_policy!r}; one of: {', '.join(FENCE_POLICIES)}")
    MODEL_REGISTRY[cls.name] = cls
    return cls


for _cls in (Strict, EadrStrict, Epoch, Relaxed, AdaptivePath):
    register_model(_cls)


def known_models() -> list[str]:
    return list(MODEL_REGISTRY)


def make_model(name: str) -> PersistencyModel:
    """Instantiate a registered model; unknown names list the known set."""
    try:
        cls = MODEL_REGISTRY[name]
    except KeyError:
        known = ", ".join(MODEL_REGISTRY)
        raise ValueError(
            f"unknown persistency model {name!r}; one of: {known}") from None
    return cls()


def resolve_model(spec, eadr: bool = False) -> PersistencyModel:
    """Normalise a model spec (instance | name | None) to a fresh instance.

    ``None`` honours the legacy ``eadr`` boolean (the deprecation shim for
    ``System(eadr=...)`` / ``Machine(eadr=...)`` call sites): ``True`` maps
    to :class:`EadrStrict`, ``False`` to :class:`Strict`.  Passing both an
    explicit non-eADR model and ``eadr=True`` is a contradiction and errors.
    """
    if spec is None:
        return EadrStrict() if eadr else Strict()
    if isinstance(spec, str):
        model = make_model(spec)
    elif isinstance(spec, PersistencyModel):
        model = spec
    else:
        raise TypeError(
            f"persistency must be a model name, a PersistencyModel or None, "
            f"not {type(spec).__name__}")
    if eadr and not model.eadr:
        raise ValueError(
            f"eadr=True contradicts the non-eADR model {model.name!r}; "
            f"pass the model alone")
    return model


# ---------------------------------------------------------------------------
# mode registry (the workload-facing mode strings)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ModeEntry:
    """How one workload-facing mode string drives the stack.

    ``model`` names the :data:`MODEL_REGISTRY` entry the mode's machines
    are built with; the booleans are the data-path facts workloads branch
    on (formerly hard-coded properties of the ``Mode`` enum).
    """

    name: str
    model: str
    #: kernels load/store PM directly (vs an HBM shadow + post-kernel copy)
    data_on_pm: bool = False
    #: kernels guarantee persistence themselves (no post-kernel persist)
    in_kernel_persist: bool = False
    #: ``ModeDriver`` opens a persist window around kernel phases
    uses_persist_window: bool = False
    description: str = ""

    @property
    def needs_eadr(self) -> bool:
        return MODEL_REGISTRY[self.model].eadr


#: mode string -> ModeEntry; shared by ``workloads.base.Mode``, the CLI
#: and the experiment tables.
MODE_REGISTRY: dict[str, ModeEntry] = {}


def register_mode(entry: ModeEntry) -> ModeEntry:
    if entry.model not in MODEL_REGISTRY:
        raise ValueError(
            f"mode {entry.name!r} references unknown model {entry.model!r}")
    MODE_REGISTRY[entry.name] = entry
    return entry


for _entry in (
    ModeEntry("gpm", "strict", data_on_pm=True, in_kernel_persist=True,
              uses_persist_window=True,
              description="data on PM, in-kernel persists, DDIO-off windows"),
    ModeEntry("gpm-ndp", "strict", data_on_pm=True,
              description="data on PM, no direct persistence; CPU flushes"),
    ModeEntry("gpm-eadr", "eadr", data_on_pm=True, in_kernel_persist=True,
              description="GPM on the projected eADR platform"),
    ModeEntry("gpm-epoch", "epoch", data_on_pm=True, in_kernel_persist=True,
              uses_persist_window=True,
              description="GPM under epoch persistency (barrier-delimited)"),
    ModeEntry("gpm-relaxed", "relaxed", data_on_pm=True,
              in_kernel_persist=True, uses_persist_window=True,
              description="GPM under relaxed persistency (kernel-end only)"),
    ModeEntry("gpm-adaptive", "adaptive", data_on_pm=True,
              in_kernel_persist=True, uses_persist_window=True,
              description="GPM with adaptive direct-PM/staged data paths"),
    ModeEntry("cap-fs", "strict",
              description="kernel writes HBM; CPU persists via write+fsync"),
    ModeEntry("cap-mm", "strict",
              description="kernel writes HBM; CPU persists via mmap+flush"),
    ModeEntry("cap-eadr", "eadr",
              description="CAP-mm on the eADR platform (no flushes)"),
    ModeEntry("gpufs", "strict",
              description="kernel writes HBM; gwrite RPCs persist via OS"),
):
    register_mode(_entry)


def known_mode_names() -> list[str]:
    return list(MODE_REGISTRY)


def mode_entry(name: str) -> ModeEntry:
    """Look up one mode string; unknown names list the known set."""
    try:
        return MODE_REGISTRY[name]
    except KeyError:
        known = " | ".join(MODE_REGISTRY)
        raise ValueError(
            f"unknown persistence mode {name!r}; one of: {known}") from None

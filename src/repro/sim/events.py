"""The hardware event bus: one typed event per hardware primitive.

Every component of the simulated machine - the Optane media, the LLC/DDIO
boundary, the PCIe link, the GPU engine, the CPU software paths, the DMA
engine and the filesystem - announces what it just did by emitting exactly
one :class:`Event` per primitive action on the machine's :class:`EventBus`.
Consumers are pluggable subscribers:

* :class:`StatsAggregator` folds events into the cumulative
  :class:`~repro.sim.stats.MachineStats` counters (the bus is the *only*
  writer of those counters);
* :class:`~repro.sim.trace.TraceRecorder` keeps the ordered event stream
  and exports it as JSONL or a Chrome-trace JSON;
* :class:`~repro.sim.trace.ProfileSink` regenerates the WHISPER-style
  persistence profile of ``experiments/profile.py`` from events alone.

Events are timestamped with the simulated clock at emission.  Every event is
a flat, slotted dataclass so the stream can round-trip through JSON:
:func:`event_to_record` / :func:`event_from_record` convert between events
and plain dicts, and :func:`stats_from_events` proves the counters are a
pure fold over the stream (``tests/sim/test_events.py`` reconstructs
``MachineStats`` from a saved trace alone).

Emission sites are batched, never per store: GPU stores coalesce per warp
drain round and arrive as one :class:`WarpDrain` carrying arrays, LLC
installs carry hit/fill counts for the whole burst, and a kernel's fences
arrive as one :class:`SystemFence` with a count.  Instrumentation therefore
gets *richer* (ordered, attributable events) while the kernel hot path does
strictly less Python work than per-store counter bumps.
"""

from __future__ import annotations

from dataclasses import dataclass, fields as _dc_fields
from typing import Callable, Iterable

import numpy as np

from .stats import MachineStats

# --------------------------------------------------------------------------
# event taxonomy
# --------------------------------------------------------------------------

#: serialisation name -> event class, populated by :func:`_register`.
EVENT_TYPES: dict[str, type] = {}


def _register(cls):
    EVENT_TYPES[cls.etype] = cls
    return cls


@dataclass(slots=True)
class Event:
    """Base class of all hardware events (see module docstring)."""

    etype = "event"
    #: Crash-frontier taxonomy bucket (``repro.check``), a class attribute
    #: like ``etype``: events marking a semantically distinct persistency
    #: boundary carry a non-``None`` kind here, and the ordinal position of
    #: such events within a run is the deterministic coordinate system for
    #: frontier-armed crash injection
    #: (:meth:`repro.sim.crash.CrashInjector.arm_at_frontier`).  ``None``
    #: means crashing on the event can never change what a post-crash
    #: reader observes (pure metering, reads, lifecycle bookkeeping).
    frontier_kind = None


# -- GPU ---------------------------------------------------------------------


@_register
@dataclass(slots=True)
class KernelLaunch(Event):
    """A kernel entered the GPU pipeline (any flavour of launch)."""

    etype = "kernel_launch"
    frontier_kind = "kernel-launch"
    kind: str = "kernel"  # kernel | stream_copy | scatter | compute | inline


@_register
@dataclass(slots=True)
class SystemFence(Event):
    """``count`` system-scope fences (__threadfence_system) completed."""

    etype = "system_fence"
    frontier_kind = "fence"
    count: int = 1


@_register
@dataclass(slots=True)
class WarpDrain(Event):
    """One warp delivered a drain round of coalesced host-memory stores.

    ``starts``/``lengths`` are the *merged* byte segments of the round (the
    arrays handed to the PCIe and Optane models), so subscribers see exactly
    the traffic shape the hardware models priced.
    """

    etype = "warp_drain"
    frontier_kind = "warp-drain"
    region: str = ""
    round_no: int = 0
    segments: int = 0
    nbytes: int = 0
    starts: tuple = ()
    lengths: tuple = ()


@_register
@dataclass(slots=True)
class EpochBoundary(Event):
    """An epoch-persistency epoch closed (barrier or kernel completion).

    Emitted by the SIMT engine only under models whose ``fence_policy`` is
    ``"epoch"``, and only when the closing epoch initiated any persists.
    Between two boundaries, fences are unordered among themselves; crossing
    one is the moment ordering becomes observable - hence the dedicated
    frontier kind, which gives every epoch model crash-state exploration at
    exactly these points for free.
    """

    etype = "epoch_boundary"
    frontier_kind = "epoch-boundary"
    epoch: int = 0


@_register
@dataclass(slots=True)
class HbmWrite(Event):
    etype = "hbm_write"
    nbytes: int = 0


@_register
@dataclass(slots=True)
class HbmRead(Event):
    etype = "hbm_read"
    nbytes: int = 0


# -- PCIe link ---------------------------------------------------------------


@_register
@dataclass(slots=True)
class PcieWrite(Event):
    """GPU-to-host write traffic (persist-grade or streaming)."""

    etype = "pcie_write"
    nbytes: int = 0
    transactions: int = 0
    stream: bool = False


@_register
@dataclass(slots=True)
class PcieRead(Event):
    """Host-to-GPU read traffic over the link."""

    etype = "pcie_read"
    nbytes: int = 0
    stream: bool = False


@_register
@dataclass(slots=True)
class DmaTransfer(Event):
    """One bulk DMA (cudaMemcpy-style) crossing the link."""

    etype = "dma_transfer"
    frontier_kind = "dma"
    nbytes: int = 0
    to_gpu: bool = False
    initiated: bool = True


# -- Optane media ------------------------------------------------------------


@_register
@dataclass(slots=True)
class OptaneEpoch(Event):
    """One drain epoch reached the PM media.

    ``logical_bytes`` is what software asked to persist; ``media_bytes`` is
    what the XPLine read-modify-write actually wrote (Table 4's internal
    write amplification); ``media_time`` is the media seconds charged.
    """

    etype = "optane_epoch"
    frontier_kind = "optane-epoch"
    region: str = ""
    logical_bytes: int = 0
    media_bytes: int = 0
    segments: int = 0
    random_starts: int = 0
    media_time: float = 0.0
    grain: str = "epoch"  # epoch | flush_grain | line_drain


@_register
@dataclass(slots=True)
class PmRead(Event):
    etype = "pm_read"
    nbytes: int = 0
    random: bool = False


@_register
@dataclass(slots=True)
class BackgroundPersist(Event):
    """An eADR-domain background drain (durable at the LLC, free in time)."""

    etype = "background_persist"
    frontier_kind = "optane-epoch"
    region: str = ""
    nbytes: int = 0


# -- LLC / DDIO --------------------------------------------------------------


@_register
@dataclass(slots=True)
class LlcInstall(Event):
    """A burst of inbound writes dirtied LLC lines (DDIO steering)."""

    etype = "llc_install"
    region: str = ""
    hits: int = 0
    fills: int = 0


@_register
@dataclass(slots=True)
class LlcEvict(Event):
    """``lines`` dirty lines left the LLC by natural (LRU) eviction."""

    etype = "llc_evict"
    lines: int = 0


@_register
@dataclass(slots=True)
class LlcFlush(Event):
    """``lines`` dirty lines were explicitly flushed (CLFLUSHOPT path)."""

    etype = "llc_flush"
    frontier_kind = "cpu-flush"
    region: str = ""
    lines: int = 0


@_register
@dataclass(slots=True)
class DdioToggle(Event):
    """DDIO was switched (the paper's ``perfctrlsts_0`` write)."""

    etype = "ddio_toggle"
    frontier_kind = "persist-window"
    enabled: bool = True


# -- CPU / host software -----------------------------------------------------


@_register
@dataclass(slots=True)
class CpuDrain(Event):
    """One CPU flush+drain sequence (CLFLUSHOPT loop + SFENCE)."""

    etype = "cpu_drain"
    op: str = "flush"  # flush | scattered | nt_store


@_register
@dataclass(slots=True)
class CpuPmWrite(Event):
    """Bytes the CPU persisted to PM (CAP's software persist paths)."""

    etype = "cpu_pm_write"
    nbytes: int = 0


@_register
@dataclass(slots=True)
class GpuPmWrite(Event):
    """Bytes the GPU persisted to PM directly (DDIO-off fence path)."""

    etype = "gpu_pm_write"
    nbytes: int = 0


@_register
@dataclass(slots=True)
class DramWrite(Event):
    etype = "dram_write"
    nbytes: int = 0
    source: str = "cpu"  # cpu | gpu | dma


@_register
@dataclass(slots=True)
class Syscall(Event):
    etype = "syscall"
    op: str = ""
    count: int = 1


# -- request-serving layer (repro.serve) -------------------------------------


@_register
@dataclass(slots=True)
class ServiceRequest(Event):
    """One client request passed admission control (or was shed).

    Emitted by the serve front-end at arrival time; ``reason`` is empty for
    admitted requests, else the shed cause (``tenant-rate`` for a drained
    token bucket, ``queue-full`` for the global depth cap).  Pure software
    bookkeeping - never a persistency boundary.
    """

    etype = "service_request"
    tenant: str = ""
    op: str = "set"  # set | get | delete
    admitted: bool = True
    reason: str = ""


@_register
@dataclass(slots=True)
class ServiceBatch(Event):
    """The batcher launched one coalesced kernel batch.

    ``threads`` is the warp-sized launch footprint (a multiple of 32);
    ``n_ops`` the live requests inside it, so ``n_ops / threads`` is the
    batch occupancy.  ``shards`` counts the per-shard kernel launches the
    flush fanned into.
    """

    etype = "service_batch"
    op: str = "set"  # set | get | delete
    n_ops: int = 0
    threads: int = 0
    shards: int = 1


@_register
@dataclass(slots=True)
class ServiceComplete(Event):
    """One admitted request finished; ``latency`` is simulated seconds."""

    etype = "service_complete"
    tenant: str = ""
    op: str = "set"
    latency: float = 0.0
    coalesced: bool = False


# -- machine lifecycle -------------------------------------------------------


@_register
@dataclass(slots=True)
class RegionAlloc(Event):
    etype = "region_alloc"
    region: str = ""
    kind: str = ""
    size: int = 0


@_register
@dataclass(slots=True)
class RegionFree(Event):
    etype = "region_free"
    region: str = ""


@_register
@dataclass(slots=True)
class Crash(Event):
    """A simulated power failure hit the machine."""

    etype = "crash"
    eadr: bool = False


@_register
@dataclass(slots=True)
class WindowMark(Event):
    """Measurement-window boundary (emitted by ``workloads.base.measure``).

    Subscribers that must agree with windowed stats deltas (e.g. the
    persistence profile) accumulate only between ``begin`` and ``end``.
    """

    etype = "window_mark"
    phase: str = "begin"  # begin | end
    label: str = ""


@_register
@dataclass(slots=True)
class TraceMark(Event):
    """Free-form software annotation (checkpoint phases, log lifecycles)."""

    etype = "trace_mark"
    frontier_kind = "mark"
    category: str = ""
    label: str = ""


# --------------------------------------------------------------------------
# the bus
# --------------------------------------------------------------------------

#: Subscribers attached to every *subsequently created* bus (used by the
#: trace CLI and tests to observe systems built deep inside workloads).
_GLOBAL_SUBSCRIBERS: list[Callable[[float, Event], None]] = []


def add_global_subscriber(subscriber: Callable[[float, Event], None]) -> None:
    """Attach ``subscriber`` to every :class:`EventBus` created afterwards."""
    _GLOBAL_SUBSCRIBERS.append(subscriber)


def remove_global_subscriber(subscriber: Callable[[float, Event], None]) -> None:
    try:
        _GLOBAL_SUBSCRIBERS.remove(subscriber)
    except ValueError:
        pass


class EventBus:
    """Synchronous pub/sub fabric for one machine's hardware events.

    Subscribers are callables ``(timestamp_seconds, event) -> None`` invoked
    in subscription order; emission is synchronous so subscribers observe
    events exactly in hardware order.
    """

    __slots__ = ("_clock", "_subscribers", "emit")

    def __init__(self, clock=None) -> None:
        self._clock = clock
        self._subscribers: list[Callable[[float, Event], None]] = list(
            _GLOBAL_SUBSCRIBERS
        )
        self._rebind()

    def _rebind(self) -> None:
        # The emit attribute is rebound to the cheapest correct variant so
        # the common one-subscriber case (just the stats aggregator) costs a
        # single call on the kernel path.
        if len(self._subscribers) == 1:
            single = self._subscribers[0]
            clock = self._clock

            def emit(event: Event, _single=single, _clock=clock) -> None:
                _single(_clock.now if _clock is not None else 0.0, event)

        else:

            def emit(event: Event) -> None:
                ts = self._clock.now if self._clock is not None else 0.0
                for sub in list(self._subscribers):
                    sub(ts, event)

        self.emit = emit

    def subscribe(self, subscriber: Callable[[float, Event], None]) -> None:
        self._subscribers.append(subscriber)
        self._rebind()

    def unsubscribe(self, subscriber: Callable[[float, Event], None]) -> None:
        try:
            self._subscribers.remove(subscriber)
        except ValueError:
            pass
        self._rebind()

    @property
    def subscribers(self) -> tuple:
        return tuple(self._subscribers)


# --------------------------------------------------------------------------
# stats aggregation
# --------------------------------------------------------------------------


class StatsAggregator:
    """Folds the event stream into :class:`MachineStats` counters.

    This is the machine's always-on subscriber: ``Machine.stats`` is simply
    the aggregate of every event the hardware has emitted, and the mapping
    below is the single source of truth for what each counter means.
    """

    def __init__(self, stats: MachineStats | None = None) -> None:
        self.stats = stats if stats is not None else MachineStats()
        s = self.stats
        self._handlers: dict[type, Callable[[Event], None]] = {
            KernelLaunch: self._on_kernel,
            SystemFence: self._on_fence,
            PcieWrite: self._on_pcie_write,
            PcieRead: self._on_pcie_read,
            DmaTransfer: self._on_dma,
            OptaneEpoch: self._on_optane_epoch,
            PmRead: self._on_pm_read,
            BackgroundPersist: self._on_background_persist,
            LlcInstall: self._on_llc_install,
            LlcEvict: self._on_llc_evict,
            LlcFlush: self._on_llc_flush,
            CpuDrain: self._on_cpu_drain,
            CpuPmWrite: self._on_cpu_pm_write,
            GpuPmWrite: self._on_gpu_pm_write,
            DramWrite: self._on_dram_write,
            HbmWrite: self._on_hbm_write,
            HbmRead: self._on_hbm_read,
            Syscall: self._on_syscall,
        }
        self._stats = s

    def __call__(self, ts: float, event: Event) -> None:
        handler = self._handlers.get(type(event))
        if handler is not None:
            handler(event)

    # -- one small handler per counter-bearing event ----------------------

    def _on_kernel(self, e: KernelLaunch) -> None:
        self._stats.kernels_launched += 1

    def _on_fence(self, e: SystemFence) -> None:
        self._stats.system_fences += e.count

    def _on_pcie_write(self, e: PcieWrite) -> None:
        self._stats.pcie_bytes_to_host += e.nbytes
        self._stats.pcie_transactions += e.transactions

    def _on_pcie_read(self, e: PcieRead) -> None:
        self._stats.pcie_bytes_to_gpu += e.nbytes

    def _on_dma(self, e: DmaTransfer) -> None:
        if e.to_gpu:
            self._stats.pcie_bytes_to_gpu += e.nbytes
        else:
            self._stats.pcie_bytes_to_host += e.nbytes
        if e.initiated:
            self._stats.dma_transfers += 1

    def _on_optane_epoch(self, e: OptaneEpoch) -> None:
        self._stats.pm_bytes_written += e.logical_bytes
        self._stats.pm_bytes_written_internal += e.media_bytes

    def _on_pm_read(self, e: PmRead) -> None:
        self._stats.pm_bytes_read += e.nbytes

    def _on_background_persist(self, e: BackgroundPersist) -> None:
        self._stats.pm_bytes_written += e.nbytes
        self._stats.pm_bytes_written_internal += e.nbytes

    def _on_llc_install(self, e: LlcInstall) -> None:
        self._stats.llc_ddio_hits += e.hits
        self._stats.llc_ddio_fills += e.fills

    def _on_llc_evict(self, e: LlcEvict) -> None:
        self._stats.llc_evictions += e.lines

    def _on_llc_flush(self, e: LlcFlush) -> None:
        self._stats.cache_lines_flushed += e.lines

    def _on_cpu_drain(self, e: CpuDrain) -> None:
        self._stats.cpu_drains += 1

    def _on_cpu_pm_write(self, e: CpuPmWrite) -> None:
        self._stats.pm_bytes_written_by_cpu += e.nbytes

    def _on_gpu_pm_write(self, e: GpuPmWrite) -> None:
        self._stats.pm_bytes_written_by_gpu += e.nbytes

    def _on_dram_write(self, e: DramWrite) -> None:
        self._stats.dram_bytes_written += e.nbytes

    def _on_hbm_write(self, e: HbmWrite) -> None:
        self._stats.hbm_bytes_written += e.nbytes

    def _on_hbm_read(self, e: HbmRead) -> None:
        self._stats.hbm_bytes_read += e.nbytes

    def _on_syscall(self, e: Syscall) -> None:
        self._stats.syscalls += e.count


# --------------------------------------------------------------------------
# (de)serialisation
# --------------------------------------------------------------------------


def event_to_record(ts: float, event: Event) -> dict:
    """Flatten one timestamped event into a JSON-serialisable dict."""
    record: dict = {"ts": ts, "event": event.etype}
    for f in _dc_fields(event):
        value = getattr(event, f.name)
        if isinstance(value, np.ndarray):
            value = value.tolist()
        elif isinstance(value, tuple):
            value = list(value)
        elif isinstance(value, np.integer):
            value = int(value)
        elif isinstance(value, np.floating):
            value = float(value)
        record[f.name] = value
    return record


def event_from_record(record: dict) -> tuple[float, Event]:
    """Rebuild ``(timestamp, event)`` from :func:`event_to_record` output."""
    cls = EVENT_TYPES[record["event"]]
    kwargs = {}
    for f in _dc_fields(cls):
        if f.name in record:
            value = record[f.name]
            if isinstance(value, list):
                value = tuple(value)
            kwargs[f.name] = value
    return float(record["ts"]), cls(**kwargs)


def stats_from_events(events: Iterable[tuple[float, Event]]) -> MachineStats:
    """Fold an event stream (e.g. a loaded trace) into fresh counters.

    The acceptance property of the instrumentation layer: replaying the
    recorded stream reproduces ``Machine.stats`` exactly.
    """
    aggregator = StatsAggregator()
    for ts, event in events:
        aggregator(ts, event)
    return aggregator.stats

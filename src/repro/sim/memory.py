"""Memory regions of the simulated machine.

A :class:`Region` is a contiguous, byte-addressable allocation living on one
of the machine's three memory devices:

* ``HBM``  - the GPU's on-board GDDR6 (volatile, fast, local to the GPU),
* ``DRAM`` - host DDR4 (volatile, behind the PCIe link from the GPU),
* ``PM``   - Optane persistent memory (behind the PCIe link, *persistent*).

Crash consistency is modelled functionally with **two images** for PM
regions:

* ``visible``   - the latest value of every byte, as seen by coherent
  readers.  All stores update it immediately.
* ``persisted`` - the bytes that have actually reached the persistence
  domain (the Optane media / ADR-protected write-pending queue).

A store becomes persistent only when something moves it from ``visible`` to
``persisted``: a CPU cache-line flush, a non-temporal store, an LLC eviction,
or - the paper's contribution - a GPU system-scope fence with DDIO disabled.
On a simulated crash the ``visible`` image is discarded and rebuilt from
``persisted``, so missing flushes/fences produce *real* data loss that the
recovery tests can observe.

Volatile regions have only a ``visible`` image, which is poisoned on crash.
"""

from __future__ import annotations

import enum
import itertools

import numpy as np

from repro.sim import bulk

#: Byte used to fill volatile regions after a crash, so stale reads are
#: detectable in tests rather than silently returning pre-crash data.
CRASH_POISON = 0xCD


class MemKind(enum.Enum):
    """Which physical device a region lives on."""

    HBM = "hbm"
    DRAM = "dram"
    PM = "pm"


class Region:
    """A contiguous allocation on one memory device.

    Data is held in numpy ``uint8`` arrays; use :meth:`view` for typed
    access.  Regions are created through :class:`~repro.sim.machine.Machine`
    allocation helpers (or :func:`repro.core.mapping.gpm_map` for PM), not
    directly.
    """

    #: Monotonic identity tokens.  Unlike ``id()``, a token is never reused
    #: after a region is freed, so stream-tracking consumers (e.g. the
    #: Optane sequentiality heuristic) cannot alias a dead region with a
    #: new allocation that happens to land at the same address.
    _tokens = itertools.count(1)

    def __init__(self, name: str, size: int, kind: MemKind) -> None:
        if size <= 0:
            raise ValueError(f"region size must be positive, got {size}")
        self.name = name
        self.size = size
        self.kind = kind
        self.token = next(Region._tokens)
        self.visible = np.zeros(size, dtype=np.uint8)
        self.persisted = np.zeros(size, dtype=np.uint8) if kind is MemKind.PM else None
        #: Set when a crash wiped this (volatile) region's contents.
        self.lost = False
        #: Deferred bulk fills (copy elision): ``[(offset, source_view)]``.
        #: Each entry is a store of ``source_view`` at ``offset`` that has
        #: been *accounted for* but not yet materialised into ``visible``.
        #: Any observation through the region API materialises them first;
        #: a crash drops them (an unmaterialised fill is an unpersisted
        #: store).  Populated only via :meth:`defer_fill` - see
        #: ``repro.sim.bulk``.
        self._pending_fills: list[tuple[int, np.ndarray]] = []

    # -- typed access ---------------------------------------------------

    def view(self, dtype, offset: int = 0, count: int | None = None) -> np.ndarray:
        """A typed numpy view of the *visible* image.

        Mutating the view is equivalent to issuing stores without any
        persistence guarantee; simulated components that must account for
        traffic and persistence go through the machine/GPU/CPU interfaces
        instead.
        """
        if self._pending_fills:
            self._materialize_fills()
        dtype = np.dtype(dtype)
        end = self.size if count is None else offset + count * dtype.itemsize
        self._check_range(offset, end - offset)
        return self.visible[offset:end].view(dtype)

    def persisted_view(self, dtype, offset: int = 0, count: int | None = None) -> np.ndarray:
        """A typed view of the *persisted* image (PM regions only)."""
        if self.persisted is None:
            raise TypeError(f"region {self.name!r} is volatile and has no persisted image")
        dtype = np.dtype(dtype)
        end = self.size if count is None else offset + count * dtype.itemsize
        self._check_range(offset, end - offset)
        return self.persisted[offset:end].view(dtype)

    # -- raw byte access ------------------------------------------------

    def read_bytes(self, offset: int, size: int) -> np.ndarray:
        if self._pending_fills:
            self._materialize_fills()
        self._check_range(offset, size)
        return self.visible[offset : offset + size]

    def write_bytes(self, offset: int, data) -> None:
        if self._pending_fills:
            self._materialize_fills()
        data = np.asarray(data, dtype=np.uint8)
        self._check_range(offset, data.size)
        self.visible[offset : offset + data.size] = data

    def write_from(self, offset: int, src: np.ndarray) -> None:
        """Copy a ready uint8 view straight into ``visible`` (one copy).

        Fast-path sibling of :meth:`write_bytes` for callers that already
        hold a contiguous uint8 view (the bulk-transfer paths): skips the
        ``asarray`` conversion and lowers to ``np.copyto``.
        """
        if self._pending_fills:
            self._materialize_fills()
        self._check_range(offset, src.size)
        np.copyto(self.visible[offset : offset + src.size], src)

    def fill(self, offset: int, size: int, value: int) -> None:
        """Set ``size`` visible bytes to ``value`` without a temp array."""
        if self._pending_fills:
            self._materialize_fills()
        self._check_range(offset, size)
        self.visible[offset : offset + size] = value

    # -- deferred bulk fills (copy elision; see repro.sim.bulk) ----------

    def defer_fill(self, offset: int, src: np.ndarray) -> None:
        """Record ``visible[offset:offset+len(src)] = src`` without copying.

        ``src`` is held as a live view: the caller guarantees nothing reads
        this region before either the fill is consumed by the next pipeline
        stage (``repro.sim.bulk.resolve_read``) or materialised by a region
        API access.  Disjoint fills accumulate; a new fill that fully covers
        an older one replaces it; a partial overlap materialises everything
        first (keeps ordering trivially right).
        """
        self._check_range(offset, src.size)
        if self._pending_fills:
            end = offset + src.size
            kept: list[tuple[int, np.ndarray]] = []
            for off, old in self._pending_fills:
                old_end = off + old.size
                if old_end <= offset or end <= off:
                    kept.append((off, old))
                elif offset <= off and old_end <= end:
                    continue  # fully covered by the new fill: superseded
                else:
                    self._materialize_fills()
                    kept = []
                    break
            else:
                self._pending_fills = kept
        self._pending_fills.append((offset, src))

    def _materialize_fills(self) -> None:
        """Apply pending fills to ``visible`` in arrival order."""
        pending, self._pending_fills = self._pending_fills, []
        for offset, src in pending:
            np.copyto(self.visible[offset : offset + src.size], src)

    def ensure_materialized(self) -> None:
        """Public hook for code that touches ``visible`` directly."""
        if self._pending_fills:
            self._materialize_fills()

    def consume_pending_fills(self) -> None:
        """Drop pending fills whose data the pipeline has fully consumed.

        Called by a bulk pipeline's *last* stage (e.g. the CAP engine after
        the host-side persist) on its private staging region: the staged
        bytes are dead - every later use overwrites them first - so they
        are never materialised at all.  The staging region's visible bytes
        simply keep their previous (equally dead) contents.
        """
        self._pending_fills.clear()

    # -- persistence plumbing (used by caches / fences / flushes) --------

    @property
    def is_persistent(self) -> bool:
        return self.kind is MemKind.PM

    @property
    def is_host(self) -> bool:
        """True when the region is in host (system) memory - DRAM or PM."""
        return self.kind is not MemKind.HBM

    def persist_range(self, offset: int, size: int) -> None:
        """Copy ``visible`` bytes into the persisted image.

        Called by the machine when a store provably reaches the persistence
        domain; not part of the public API.
        """
        if self.persisted is None:
            raise TypeError(f"cannot persist volatile region {self.name!r}")
        if self._pending_fills:
            self._materialize_fills()
        self._check_range(offset, size)
        self.persisted[offset : offset + size] = self.visible[offset : offset + size]

    #: Below this many segments a plain slice loop beats building the index
    #: vector (see ``benchmarks/test_persist_ranges.py``).
    _PERSIST_SLICE_THRESHOLD = 16

    def persist_ranges(self, starts: np.ndarray, lengths: np.ndarray) -> None:
        """Vectorised :meth:`persist_range` over many segments.

        Large segment counts (a warp drain round can carry thousands) are
        copied with one fancy-indexed gather/scatter instead of a Python
        loop of slice assignments.
        """
        if self.persisted is None:
            raise TypeError(f"cannot persist volatile region {self.name!r}")
        if self._pending_fills:
            self._materialize_fills()
        starts = np.asarray(starts, dtype=np.int64)
        lengths = np.asarray(lengths, dtype=np.int64)
        if starts.size <= self._PERSIST_SLICE_THRESHOLD:
            for start, length in zip(starts.tolist(), lengths.tolist()):
                self.persisted[start : start + length] = self.visible[start : start + length]
            return
        keep = lengths > 0
        if not keep.all():
            starts, lengths = starts[keep], lengths[keep]
        total = int(lengths.sum())
        if total == 0:
            return
        # Absolute byte index of every copied byte: position within the
        # concatenated segments, shifted per segment to its start address.
        # One fresh allocation (the repeat); the ramp is a shared cache.
        before = np.cumsum(lengths)
        before -= lengths
        np.subtract(starts, before, out=before)
        idx = np.repeat(before, lengths)
        idx += bulk.iota64(total)
        self.persisted[idx] = self.visible[idx]

    def crash(self) -> None:
        """Apply crash semantics: keep only what was persisted.

        Pending deferred fills are dropped, not materialised: an
        unmaterialised fill is an unpersisted visible store, and a crash
        loses those on every platform we model (PM rolls visible back to
        the persisted image; volatile regions are poisoned outright).
        """
        self._pending_fills.clear()
        if self.persisted is not None:
            self.visible[:] = self.persisted
        else:
            self.visible.fill(CRASH_POISON)
            self.lost = True

    def unpersisted_bytes(self) -> int:
        """Number of bytes whose visible and persisted images differ."""
        if self.persisted is None:
            raise TypeError(f"volatile region {self.name!r} has no persisted image")
        if self._pending_fills:
            self._materialize_fills()
        return int(np.count_nonzero(self.visible != self.persisted))

    def _check_range(self, offset: int, size: int) -> None:
        if offset < 0 or size < 0 or offset + size > self.size:
            raise IndexError(
                f"access [{offset}, {offset + size}) outside region "
                f"{self.name!r} of size {self.size}"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Region({self.name!r}, size={self.size}, kind={self.kind.value})"

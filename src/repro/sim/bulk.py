"""Zero-copy bulk data paths: transfer descriptors and copy elision.

Bulk movement in the simulator used to materialise every byte it touched:
``Gpu.stream_copy`` read the source, copied it, and wrote the copy into the
destination (two full copies per transfer), and the CAP pipeline staged GPU
results through a pinned DRAM bounce buffer that nothing but the very next
pipeline step ever read (a third copy).  The *accounting* - PCIe
transactions, Optane epochs, every emitted event - never needed those
intermediates; only the functional images did.

:class:`BulkTransfer` is the descriptor the bulk paths lower to.  It
performs one transfer's data movement with the minimum number of numpy
copies:

* distinct source/destination regions: a single ``np.copyto`` between
  views (one copy, the functional floor for a visible-image update);
* overlapping ranges of one region: staged through a reusable scratch
  buffer (matching the old read-copy-write semantics);
* *deferred* fills: for engine-private staging buffers (the CAP bounce
  buffer, checkpoint staging blocks) the fill is recorded on the
  destination region as a pending fill and not materialised at all.  The
  next pipeline stage resolves the pending fill back to the original
  source view (:func:`resolve_read`), so a full CAP persist moves each
  byte exactly twice (visible + persisted image of the PM destination)
  instead of four times.

Copy-on-write discipline: a pending fill holds a live *view* of its
source.  Any observation of the destination through the region API
(``read_bytes``/``write_bytes``/``view``/``persist_range``/...)
materialises pending fills first, and a crash drops them (an
unmaterialised fill is an unpersisted store, which a crash loses on every
platform we model - volatile destinations are poisoned outright).  Event
streams, clock advances and crash frontiers are therefore bit-identical
to the eager paths; the parity suite (``tests/sim/test_bulk_parity.py``)
pins that equivalence.

Escape hatch: set ``REPRO_NO_BULK_ELISION=1`` to force every transfer
eager - the reference data path the parity suite compares against.
"""

from __future__ import annotations

import os

import numpy as np

#: Environment variable disabling all copy elision (reference data path).
NO_ELISION_ENV = "REPRO_NO_BULK_ELISION"


def elision_enabled() -> bool:
    """Whether deferred (zero-copy) fills may engage."""
    return not os.environ.get(NO_ELISION_ENV)


# ---------------------------------------------------------------------------
# scratch buffers: reusable intermediates for the paths that need staging
# ---------------------------------------------------------------------------

#: Process-wide scratch buffers, keyed by caller-chosen identity (typically
#: a ``Region.token``, which is never reused - see ``repro.sim.memory``).
#: Buffers only grow; callers receive a view of the prefix they asked for
#: and must consume it before requesting the same key again.
_scratch: dict[object, np.ndarray] = {}

#: Cached ``0..n-1`` int64 ramp shared by index-vector builders
#: (:meth:`Region.persist_ranges` and friends); grows monotonically.
_iota = np.empty(0, dtype=np.int64)


def scratch_bytes(key: object, nbytes: int) -> np.ndarray:
    """A reusable uint8 scratch buffer of at least ``nbytes`` (view)."""
    buf = _scratch.get(key)
    if buf is None or buf.size < nbytes:
        buf = np.empty(max(nbytes, 4096), dtype=np.uint8)
        _scratch[key] = buf
    return buf[:nbytes]


def iota64(n: int) -> np.ndarray:
    """A read-shared view of ``arange(n, dtype=int64)`` (do not mutate)."""
    global _iota
    if _iota.size < n:
        _iota = np.arange(max(n, 1024), dtype=np.int64)
    return _iota[:n]


def clear_scratch() -> None:
    """Drop all scratch state (tests / memory pressure)."""
    global _iota
    _scratch.clear()
    _iota = np.empty(0, dtype=np.int64)


# ---------------------------------------------------------------------------
# the transfer descriptor
# ---------------------------------------------------------------------------


def resolve_read(region, offset: int, nbytes: int) -> np.ndarray:
    """A uint8 view of ``region``'s logical bytes without materialising.

    When a single pending fill covers the whole requested range, the view
    of the *fill's source* is returned and the fill stays pending - this
    is how a downstream pipeline stage (e.g. the CAP host-side persist)
    reads "through" an elided staging buffer back to the original data.
    Otherwise this is a plain ``read_bytes`` (which materialises).
    """
    pending = region._pending_fills
    if pending:
        for off, src in pending:
            if off <= offset and offset + nbytes <= off + src.size:
                lo = offset - off
                return src[lo : lo + nbytes]
        region._materialize_fills()
    return region.read_bytes(offset, nbytes)


class BulkTransfer:
    """One whole-range bulk copy: ``dst[dst_off:+n] <- src[src_off:+n]``.

    The descriptor carries only addressing; :meth:`apply` performs the
    functional data movement.  Timing and event accounting stay with the
    caller (``Gpu.stream_copy``, the DMA engine, the CAP pipeline), which
    is what keeps elided and eager runs bit-identical observationally.
    """

    __slots__ = ("dst", "dst_off", "src", "src_off", "nbytes")

    def __init__(self, dst, dst_off: int, src, src_off: int, nbytes: int) -> None:
        if nbytes < 0:
            raise ValueError("bulk transfer size must be non-negative")
        self.dst = dst
        self.dst_off = dst_off
        self.src = src
        self.src_off = src_off
        self.nbytes = nbytes

    def source_view(self) -> np.ndarray:
        """The resolved source bytes (chases pending fills, no copy)."""
        return resolve_read(self.src, self.src_off, self.nbytes)

    def overlaps_in_place(self) -> bool:
        """True when src and dst ranges alias within one region."""
        if self.dst is not self.src:
            return False
        a, b = self.dst_off, self.dst_off + self.nbytes
        c, d = self.src_off, self.src_off + self.nbytes
        return a < d and c < b

    def apply(self, defer: bool = False) -> None:
        """Move the bytes; with ``defer`` record a pending fill instead.

        Deferral is only legal for destinations the caller knows are
        engine-private until the next pipeline stage consumes them (the
        region API materialises on any other observation); it is ignored
        when elision is disabled via ``REPRO_NO_BULK_ELISION``.
        """
        n = self.nbytes
        if n == 0:
            return
        self.dst._check_range(self.dst_off, n)
        src_view = self.source_view()
        if defer and self.dst is not self.src and elision_enabled():
            self.dst.defer_fill(self.dst_off, src_view)
            return
        if self.overlaps_in_place():
            tmp = scratch_bytes(("xfer", self.dst.token), n)
            np.copyto(tmp, src_view)
            src_view = tmp
        self.dst.write_from(self.dst_off, src_view)

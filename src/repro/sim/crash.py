"""Crash injection for recoverability stress tests.

Section 6.2 of the paper stress-tests recovery by injecting faults at random
points during kernel execution with NVBitFI, a binary-instrumentation fault
injector.  Our analogue supports two arming mechanisms:

**Thread-count arming** (the original NVBitFI-style path) hooks the GPU
engine's per-thread dispatch: the injector is armed with a *crash point* (a
count of thread completions, optionally chosen at random), and when the
kernel engine crosses it the machine crashes mid-kernel - threads already
retired keep whatever they persisted, in-flight unfenced stores are lost,
and everything volatile disappears.

**Frontier arming** (the systematic path used by :mod:`repro.check`) counts
*frontier-tagged events* on the machine's event bus instead: every event
class whose ``frontier_kind`` is non-``None`` (kernel launches, warp drain
rounds, fences, Optane epochs, DDIO toggles, ...) marks a semantically
distinct persistency boundary, and :meth:`CrashInjector.arm_at_frontier`
crashes the machine at the moment the N-th such event is emitted - *before*
its hardware side effect applies.  Because simulated runs are deterministic,
the event ordinal is an exact, replayable coordinate: re-arming the same
ordinal on a fresh system reproduces the identical crash state.  Frontier
arming needs no cooperation from the workload (no ``crash_injector``
plumbing) - any code path that emits events can be crashed.

Usage::

    injector = CrashInjector(machine, rng)
    injector.arm_random(max_threads=grid_threads)      # or .arm(n)
    # or: injector.arm_at_frontier(ordinal)
    try:
        gpu.launch(kernel, grid, block, args, crash_injector=injector)
    except SimulatedCrash as crash:
        ...   # machine.crash() has been applied; run recovery
        # crash.crash_after / crash.frontier_ordinal / crash.seed replay it

The injector counts retired threads cumulatively across launches, so one
armed point covers multi-kernel workloads.
"""

from __future__ import annotations

import numpy as np

from .machine import Machine


class SimulatedCrash(Exception):
    """Raised when an armed crash point is crossed.

    Carries everything needed to replay the exact same crash on a fresh
    system: ``crash_after`` (re-arm with :meth:`CrashInjector.arm`),
    ``frontier_ordinal`` (re-arm with
    :meth:`CrashInjector.arm_at_frontier`), and ``seed`` (the explicit seed
    handed to :meth:`CrashInjector.arm_random`, if any).
    """

    def __init__(self, threads_retired: int, *, crash_after: int | None = None,
                 frontier_ordinal: int | None = None, frontier_kind: str | None = None,
                 seed: int | None = None) -> None:
        if frontier_ordinal is not None:
            what = f"at frontier event #{frontier_ordinal}"
            if frontier_kind:
                what += f" ({frontier_kind})"
        else:
            what = f"after {threads_retired} threads retired"
        super().__init__(f"simulated crash {what}")
        self.threads_retired = threads_retired
        #: the armed thread-count crash point (replay: ``arm(crash_after)``)
        self.crash_after = crash_after
        #: the armed frontier-event ordinal (replay: ``arm_at_frontier(n)``)
        self.frontier_ordinal = frontier_ordinal
        #: ``frontier_kind`` of the event the crash fired on, if any
        self.frontier_kind = frontier_kind
        #: explicit seed given to ``arm_random``, if any (replayability)
        self.seed = seed


class CrashInjector:
    """Arms and fires mid-kernel crashes on a machine."""

    def __init__(self, machine: Machine, rng: np.random.Generator | None = None) -> None:
        self._machine = machine
        self._rng = rng if rng is not None else np.random.default_rng(0)
        self._crash_after: int | None = None
        self._frontier_after: int | None = None
        self._observing = False
        self._seed: int | None = None
        self.fired = False
        #: threads retired since arming, cumulative across kernel launches
        self.threads_seen = 0
        #: frontier-tagged events observed since arming (frontier mode)
        self.frontier_events_seen = 0

    @property
    def armed(self) -> bool:
        return (self._crash_after is not None
                or self._frontier_after is not None) and not self.fired

    @property
    def crash_after(self) -> int | None:
        return self._crash_after

    @property
    def frontier_after(self) -> int | None:
        return self._frontier_after

    # -- arming ----------------------------------------------------------

    def arm(self, crash_after_threads: int) -> None:
        """Crash once ``crash_after_threads`` threads have retired.

        The count is cumulative across kernel launches from the moment of
        arming, so a crash point can land in any launch of a multi-kernel
        workload (as NVBitFI's random injection would).
        """
        if crash_after_threads < 0:
            raise ValueError("crash point must be non-negative")
        self._disarm_observer()
        self._crash_after = crash_after_threads
        self._frontier_after = None
        self._seed = None
        self.fired = False
        self.threads_seen = 0
        self.frontier_events_seen = 0

    def arm_random(self, max_threads: int, seed: int | None = None) -> int:
        """Arm a uniformly random crash point in ``[0, max_threads)``.

        With an explicit ``seed`` the chosen point is a pure function of the
        seed (replayable from a failure report); otherwise the injector's
        own generator draws it.  Either way the chosen point is exposed as
        :attr:`crash_after` and travels on the raised
        :class:`SimulatedCrash`, so a random failure is always replayable
        by re-arming the reported point with :meth:`arm`.
        """
        if max_threads <= 0:
            raise ValueError("max_threads must be positive")
        rng = self._rng if seed is None else np.random.default_rng(seed)
        point = int(rng.integers(0, max_threads))
        self.arm(point)
        self._seed = seed
        return point

    def arm_at_frontier(self, ordinal: int) -> None:
        """Crash at the moment the ``ordinal``-th frontier event is emitted.

        Counts events whose class has a non-``None`` ``frontier_kind`` (see
        :mod:`repro.sim.events`), 0-based, from the moment of arming.  The
        crash fires *during* emission - before the emitting hardware model
        applies the event's persistence side effect - so ordinal *n* means
        "everything before frontier event *n* happened, the event itself
        and everything after it did not".
        """
        if ordinal < 0:
            raise ValueError("frontier ordinal must be non-negative")
        self._disarm_observer()
        self._frontier_after = ordinal
        self._crash_after = None
        self._seed = None
        self.fired = False
        self.threads_seen = 0
        self.frontier_events_seen = 0
        self._machine.events.subscribe(self._observe)
        self._observing = True

    def disarm(self) -> None:
        self._crash_after = None
        self._frontier_after = None
        self._disarm_observer()

    def _disarm_observer(self) -> None:
        if self._observing:
            self._machine.events.unsubscribe(self._observe)
            self._observing = False

    # -- firing ----------------------------------------------------------

    def advance(self, newly_retired: int) -> None:
        """Called by the kernel engine; crashes the machine if due."""
        if self.fired:
            return
        self.threads_seen += newly_retired
        if self._crash_after is None:
            return
        if self.threads_seen >= self._crash_after:
            self.fired = True
            self._machine.crash()
            raise SimulatedCrash(self.threads_seen,
                                 crash_after=self._crash_after,
                                 seed=self._seed)

    def _observe(self, ts: float, event) -> None:
        """Event-bus subscriber backing :meth:`arm_at_frontier`."""
        if self.fired or self._frontier_after is None:
            return
        if type(event).frontier_kind is None:
            return
        ordinal = self.frontier_events_seen
        self.frontier_events_seen += 1
        if ordinal >= self._frontier_after:
            self.fired = True
            self._disarm_observer()
            self._machine.crash()
            raise SimulatedCrash(self.threads_seen,
                                 frontier_ordinal=ordinal,
                                 frontier_kind=type(event).frontier_kind)

"""Crash injection for recoverability stress tests.

Section 6.2 of the paper stress-tests recovery by injecting faults at random
points during kernel execution with NVBitFI, a binary-instrumentation fault
injector.  Our analogue hooks the GPU engine's per-thread dispatch: a
:class:`CrashInjector` is armed with a *crash point* (a count of thread
completions, optionally chosen at random), and when the kernel engine
crosses it the machine crashes mid-kernel - threads already retired keep
whatever they persisted, in-flight unfenced stores are lost, and everything
volatile disappears.

Usage::

    injector = CrashInjector(machine, rng)
    injector.arm_random(max_threads=grid_threads)
    try:
        gpu.launch(kernel, grid, block, args, crash_injector=injector)
    except SimulatedCrash:
        ...   # machine.crash() has been applied; run recovery

The injector counts retired threads cumulatively across launches, so one
armed point covers multi-kernel workloads.
"""

from __future__ import annotations

import numpy as np

from .machine import Machine


class SimulatedCrash(Exception):
    """Raised by the GPU engine when an armed crash point is crossed."""

    def __init__(self, threads_retired: int) -> None:
        super().__init__(f"simulated crash after {threads_retired} threads retired")
        self.threads_retired = threads_retired


class CrashInjector:
    """Arms and fires mid-kernel crashes on a machine."""

    def __init__(self, machine: Machine, rng: np.random.Generator | None = None) -> None:
        self._machine = machine
        self._rng = rng if rng is not None else np.random.default_rng(0)
        self._crash_after: int | None = None
        self.fired = False
        #: threads retired since arming, cumulative across kernel launches
        self.threads_seen = 0

    @property
    def armed(self) -> bool:
        return self._crash_after is not None and not self.fired

    @property
    def crash_after(self) -> int | None:
        return self._crash_after

    def arm(self, crash_after_threads: int) -> None:
        """Crash once ``crash_after_threads`` threads have retired.

        The count is cumulative across kernel launches from the moment of
        arming, so a crash point can land in any launch of a multi-kernel
        workload (as NVBitFI's random injection would).
        """
        if crash_after_threads < 0:
            raise ValueError("crash point must be non-negative")
        self._crash_after = crash_after_threads
        self.fired = False
        self.threads_seen = 0

    def arm_random(self, max_threads: int) -> int:
        """Arm a uniformly random crash point in ``[0, max_threads)``."""
        if max_threads <= 0:
            raise ValueError("max_threads must be positive")
        point = int(self._rng.integers(0, max_threads))
        self.arm(point)
        return point

    def disarm(self) -> None:
        self._crash_after = None

    def advance(self, newly_retired: int) -> None:
        """Called by the kernel engine; crashes the machine if due."""
        if self._crash_after is None or self.fired:
            return
        self.threads_seen += newly_retired
        if self.threads_seen >= self._crash_after:
            self.fired = True
            self._machine.crash()
            raise SimulatedCrash(self.threads_seen)


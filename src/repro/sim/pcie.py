"""Timing model of the PCIe 3.0 x16 link between GPU and host.

Two traffic regimes matter to the paper:

* **Bulk DMA** (cudaMemcpy, checkpoint streaming): bandwidth-bound at
  ~13 GB/s effective (Section 6.1), plus a fixed DMA-initiation cost per
  transfer that CAP pays on every kernel boundary.

* **Fine-grained in-kernel persists** (GPM's contribution): each persist is
  a posted write followed by a system-scope fence that waits for the write
  to reach the host memory controller - a full PCIe round trip.  Massive
  GPU parallelism hides this latency, but only up to the link's bounded
  number of outstanding transactions; this produces the scaling plateau of
  Fig. 3(b) ("it typically supports a limited number of concurrent
  operations on the PCIe. Thus, it does not scale beyond a point").
"""

from __future__ import annotations

import numpy as np

from .config import SystemConfig
from .events import DmaTransfer, EventBus, PcieRead, PcieWrite


class PcieModel:
    """Analytic transfer times over the host<->GPU interconnect."""

    def __init__(self, config: SystemConfig, events: EventBus) -> None:
        self._config = config
        self._events = events

    # ------------------------------------------------------------------

    def dma_time(self, nbytes: int, to_gpu: bool = False, initiate: bool = True) -> float:
        """Seconds for one bulk DMA of ``nbytes`` (cudaMemcpy-style)."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        cfg = self._config
        self._events.emit(DmaTransfer(nbytes=nbytes, to_gpu=to_gpu, initiated=initiate))
        time = nbytes / cfg.pcie_bw
        if initiate:
            time += cfg.dma_init_s
        return time

    # ------------------------------------------------------------------

    def transactions_for(self, starts, lengths) -> int:
        """PCIe write transactions after 128 B coalescing of the segments.

        Each segment is assumed already coalesced by the GPU (one segment =
        one contiguous warp access); a segment of ``n`` bytes starting at
        ``s`` spans ``ceil`` of the 128 B-aligned blocks it touches.
        """
        starts = np.atleast_1d(np.asarray(starts, dtype=np.int64))
        lengths = np.atleast_1d(np.asarray(lengths, dtype=np.int64))
        tx_bytes = self._config.pcie_tx_bytes
        nonempty = lengths > 0
        starts, lengths = starts[nonempty], lengths[nonempty]
        if starts.size == 0:
            return 0
        first = starts // tx_bytes
        last = (starts + lengths - 1) // tx_bytes
        return int((last - first + 1).sum())

    def fine_grained_write_time(self, n_tx: int, nbytes: int, n_warps: int) -> float:
        """Seconds for ``n_tx`` persist-grade write transactions.

        ``n_warps`` is the number of warps concurrently issuing; each warp
        keeps :attr:`SystemConfig.pcie_outstanding_per_warp` transactions in
        flight, and the endpoint caps the total at
        :attr:`SystemConfig.pcie_max_outstanding`.  The result is the larger
        of the latency-limited and bandwidth-limited times.
        """
        if n_tx <= 0:
            return 0.0
        cfg = self._config
        self._events.emit(PcieWrite(nbytes=nbytes, transactions=n_tx))
        concurrency = max(1, min(n_warps * cfg.pcie_outstanding_per_warp,
                                 cfg.pcie_max_outstanding))
        latency_bound = n_tx * cfg.pcie_rtt_s / concurrency
        bandwidth_bound = nbytes / cfg.pcie_bw
        return max(latency_bound, bandwidth_bound)

    def stream_write_time(self, nbytes: int) -> float:
        """Seconds for a bandwidth-bound stream of posted writes.

        Bulk streaming (checkpoint copies, DMA-like kernels) issues posted
        writes back-to-back without waiting for per-transaction completion,
        so only the link bandwidth limits it - unlike persist-grade traffic,
        which :meth:`fine_grained_write_time` bounds by outstanding
        transactions.
        """
        if nbytes <= 0:
            return 0.0
        cfg = self._config
        self._events.emit(PcieWrite(
            nbytes=nbytes,
            transactions=-(-nbytes // cfg.pcie_tx_bytes),
            stream=True,
        ))
        return nbytes / cfg.pcie_bw

    def stream_read_time(self, nbytes: int) -> float:
        """Seconds for a bandwidth-bound bulk read from host memory."""
        if nbytes <= 0:
            return 0.0
        self._events.emit(PcieRead(nbytes=nbytes, stream=True))
        return nbytes / self._config.pcie_bw

    def read_time(self, nbytes: int, n_warps: int = 1) -> float:
        """Seconds for GPU loads of host memory over the link."""
        if nbytes <= 0:
            return 0.0
        cfg = self._config
        self._events.emit(PcieRead(nbytes=nbytes))
        # Ceiling division, as in transactions_for: a transfer that is not a
        # multiple of the 128 B payload still occupies a full transaction.
        n_tx = -(-nbytes // cfg.pcie_tx_bytes)
        concurrency = max(1, min(n_warps * cfg.pcie_outstanding_per_warp,
                                 cfg.pcie_max_outstanding))
        return max(n_tx * cfg.pcie_rtt_s / concurrency, nbytes / cfg.pcie_bw)

"""Hardware configuration for the simulated GPM platform.

Every latency, bandwidth and structural constant used by the simulator lives
in :class:`SystemConfig`, with a comment citing the paper section (or the
external measurement the paper cites) that motivated it.  The default values
model the paper's testbed (Table 3): a 4-socket Xeon Gold 6242 server with
8x128 GB Optane DCPMM, an NVIDIA Titan RTX, and a PCIe 3.0 x16 link.

Calibration tests in ``tests/sim/test_calibration.py`` pin the emergent
behaviour of these constants against the paper's microbenchmarks (Fig. 3 and
the Optane pattern-bandwidth numbers in Section 6.1), so workload-level
results are built on a substrate calibrated once, not tuned per figure.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class SystemConfig:
    """All tunable constants of the simulated machine.

    Instances are immutable; use :meth:`with_overrides` to derive variants
    (e.g. an eADR machine for the Fig. 10 projections).
    """

    # ------------------------------------------------------------------
    # Optane persistent memory (Section 2, Section 6.1, refs [27, 41, 99])
    # ------------------------------------------------------------------
    #: Bytes of the internal XPLine write-combining buffer granule.  Optane
    #: "internally buffers writes at 256 bytes to hide latency" (Section 6.1).
    pm_xpline_bytes: int = 256
    #: Load latency of the PM media; "access times are only 3-10x of DRAM"
    #: (Section 2).
    pm_read_latency_s: float = 300e-9
    #: Peak media write bandwidth for sequential, 256 B-aligned accesses:
    #: "one can achieve 12.5 GBps bandwidth with sequential accesses aligned
    #: at 256 bytes" (Section 6.1).
    pm_bw_seq_aligned: float = 12.5e9
    #: "if the accesses are not 256-bytes-aligned then it drops to 3.13 GBps"
    #: (Section 6.1).  Modelled as a read-modify-write of the full XPLine for
    #: every partial-line store: 12.5 / 4 = 3.125 GB/s.
    pm_partial_line_penalty: float = 4.0
    #: "if accesses are to random addresses then bandwidth drops to 0.72
    #: GBps" (Section 6.1).  Random XPLine sequences additionally defeat the
    #: device's internal prefetch/row buffering.
    pm_random_penalty: float = 4.34
    #: Write-pending-queue depth of the ADR domain (Section 2).  Writes that
    #: reach the WPQ are persistent.
    wpq_entries: int = 64

    # ------------------------------------------------------------------
    # DRAM (Table 3: 768 GB DDR4-2933)
    # ------------------------------------------------------------------
    dram_latency_s: float = 80e-9
    dram_bw: float = 90e9

    # ------------------------------------------------------------------
    # CPU and LLC (Table 3: 4x Xeon Gold 6242; Sections 3, 6.1)
    # ------------------------------------------------------------------
    cpu_cache_line_bytes: int = 64
    #: LLC capacity available to DDIO-steered device writes.  DDIO uses a
    #: subset of LLC ways; 2 MB is ample for our scaled workloads and keeps
    #: natural evictions (the dotted lines of Fig. 2) observable.
    llc_ddio_bytes: int = 2 * 1024 * 1024
    #: Effective single-thread CPU persist bandwidth (store + CLFLUSHOPT +
    #: SFENCE loop).  Anchors Fig. 3: all scaling numbers in the paper are
    #: relative to one CAP-mm CPU thread.
    cpu_persist_bw_single: float = 1.6e9
    #: Amdahl serial fraction of multi-threaded CPU persistence.  Fig. 3(a):
    #: CAP-mm plateaus at 1.47x over a single thread, i.e. a serial fraction
    #: of 1/1.47 ~= 0.68... parallel fraction 0.32 reproduces the measured
    #: curve (2 threads -> 1.20x, 4 -> 1.34x, 64 -> 1.46x).
    cpu_persist_serial_fraction: float = 0.68
    #: Plain (volatile) memcpy bandwidth of one CPU thread.
    cpu_memcpy_bw_single: float = 6.0e9
    #: Non-temporal store bandwidth of one CPU thread (bypasses caches).
    cpu_nt_store_bw_single: float = 2.2e9
    #: Maximum CPU threads CAP may use (Section 6.1: "CAP-mm uses 2-32 CPU
    #: threads ... we choose the number that provides the best performance").
    cpu_max_threads: int = 64

    # ------------------------------------------------------------------
    # PCIe 3.0 x16 (Table 3; Section 6.1: "achievable total PCIe 3.0
    # bandwidth (~13 GBps)")
    # ------------------------------------------------------------------
    pcie_bw: float = 13.0e9
    #: Round-trip latency of a single posted-write + completion over PCIe,
    #: the cost a GPU thread pays to *persist* (write then system-scope
    #: fence) one datum.  [66] reports ~1-2 us for GPU->host persists.
    pcie_rtt_s: float = 1.3e-6
    #: PCIe transaction payload granularity; matches the GPU coalescing
    #: width ("PCIe is better utilized when a warp accesses data at a
    #: 128-byte, aligned granularity" - Section 5.2, ref [1]).
    pcie_tx_bytes: int = 128
    #: Maximum transactions a warp keeps in flight within one persist round
    #: (write-combining/MSHR depth towards the PCIe endpoint).
    pcie_outstanding_per_warp: int = 5
    #: Total outstanding transactions the GPU's PCIe endpoint sustains;
    #: "it typically supports a limited number of concurrent operations on
    #: the PCIe [1]. Thus, it does not scale beyond a point" (Section 3.2).
    pcie_max_outstanding: int = 64

    # ------------------------------------------------------------------
    # GPU (Table 3: Titan RTX, 72 SMs, 24 GB GDDR6)
    # ------------------------------------------------------------------
    gpu_sm_count: int = 72
    gpu_warp_size: int = 32
    gpu_cache_line_bytes: int = 128
    gpu_hbm_bw: float = 550e9
    #: Simulated cost of one abstract arithmetic operation per thread, after
    #: dividing by the machine's parallelism (SMs x warp lanes).
    gpu_op_latency_s: float = 1.0e-9
    gpu_max_resident_warps: int = 72 * 32
    #: Concurrent arithmetic lanes across the whole GPU (SMs x FP32 units);
    #: divides per-thread op counts into compute time.
    gpu_parallel_lanes: int = 4608
    gpu_kernel_launch_s: float = 5e-6

    # ------------------------------------------------------------------
    # Host software costs (Section 3, Section 6.1)
    # ------------------------------------------------------------------
    #: Fixed cost of initiating one cudaMemcpy/DMA ("initializing the DMA
    #: engine and transferring rows ... adds overheads", Section 6.1).
    dma_init_s: float = 12e-6
    #: Syscall entry/exit cost (write/fsync/msync under CAP-fs).
    syscall_s: float = 2.0e-6
    #: ext4-DAX software amplification on the fsync persist bandwidth
    #: (journalling, extent bookkeeping).  Together with fsync's
    #: single-threaded flushing this makes CAP-mm ~2x CAP-fs for gpKVS
    #: (Fig. 9).
    fs_bw_derate: float = 1.5
    #: Per-call cost of a GPUfs-style system call issued from a threadblock
    #: (GPU->CPU RPC, Section 6.1: "overheads of repeatedly invoking system
    #: calls from the GPU").
    gpufs_call_s: float = 100e-6
    #: GPUfs supports files only up to 2 GB (Section 6.1).
    gpufs_max_file_bytes: int = 2 * 1024 * 1024 * 1024

    def with_overrides(self, **kwargs) -> "SystemConfig":
        """Return a copy of this config with the given fields replaced."""
        return replace(self, **kwargs)

    @property
    def cpu_persist_parallel_fraction(self) -> float:
        return 1.0 - self.cpu_persist_serial_fraction

    def cpu_persist_speedup(self, threads: int) -> float:
        """Amdahl-law speedup of multi-threaded CPU persistence (Fig. 3a)."""
        if threads < 1:
            raise ValueError("threads must be >= 1")
        p = self.cpu_persist_parallel_fraction
        return 1.0 / ((1.0 - p) + p / threads)


DEFAULT_CONFIG = SystemConfig()

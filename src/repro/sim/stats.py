"""Traffic accounting for the simulated machine.

The paper's evaluation leans on two traffic-derived metrics:

* **Write amplification** (Table 4): bytes transferred-and-persisted by CAP
  divided by bytes persisted by GPM for the same logical work.
* **PCIe write bandwidth** (Fig. 12): bytes written by the GPU to PM across
  the PCIe link, divided by elapsed simulated time.

:class:`MachineStats` tallies these by source and destination.  Counters are
cumulative; use :meth:`snapshot` and :meth:`delta_since` to measure a window.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields


@dataclass
class MachineStats:
    """Cumulative byte/operation counters for one simulated machine."""

    # PCIe link traffic (GPU <-> host)
    pcie_bytes_to_host: int = 0
    pcie_bytes_to_gpu: int = 0
    pcie_transactions: int = 0

    # Persistent-memory media traffic
    pm_bytes_written: int = 0          # logical bytes stored to PM media
    pm_bytes_written_internal: int = 0  # media bytes after XPLine RMW
    pm_bytes_read: int = 0
    pm_bytes_written_by_gpu: int = 0
    pm_bytes_written_by_cpu: int = 0

    # Volatile traffic
    dram_bytes_written: int = 0
    hbm_bytes_written: int = 0
    hbm_bytes_read: int = 0

    # Cache behaviour
    llc_ddio_hits: int = 0
    llc_ddio_fills: int = 0
    llc_evictions: int = 0
    cache_lines_flushed: int = 0

    # Ordering operations
    system_fences: int = 0
    cpu_drains: int = 0

    # Software events
    dma_transfers: int = 0
    syscalls: int = 0
    kernels_launched: int = 0

    def snapshot(self) -> "MachineStats":
        """Return an independent copy of the current counters."""
        return MachineStats(**{f.name: getattr(self, f.name) for f in fields(self)})

    def delta_since(self, earlier: "MachineStats") -> "MachineStats":
        """Return counters accumulated since ``earlier`` was snapshotted."""
        return MachineStats(
            **{
                f.name: getattr(self, f.name) - getattr(earlier, f.name)
                for f in fields(self)
            }
        )

    def merged_with(self, other: "MachineStats") -> "MachineStats":
        """Return the element-wise sum of two counter sets."""
        return MachineStats(
            **{
                f.name: getattr(self, f.name) + getattr(other, f.name)
                for f in fields(self)
            }
        )


@dataclass
class WindowedStats:
    """A (stats delta, elapsed time) pair for one measured phase."""

    stats: MachineStats
    elapsed: float = 0.0
    extra: dict = field(default_factory=dict)

    @property
    def pcie_write_bandwidth(self) -> float:
        """GPU-to-host PCIe write bandwidth over the window (Fig. 12)."""
        if self.elapsed <= 0:
            return 0.0
        return self.stats.pcie_bytes_to_host / self.elapsed

    @property
    def pm_write_bandwidth(self) -> float:
        if self.elapsed <= 0:
            return 0.0
        return self.stats.pm_bytes_written / self.elapsed

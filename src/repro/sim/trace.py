"""Trace capture and export for the hardware event bus.

Three consumers of :mod:`repro.sim.events` live here:

* :class:`TraceRecorder` - keeps the ordered ``(timestamp, event)`` stream
  and exports it as JSONL (one record per line, replayable through
  :func:`~repro.sim.events.stats_from_events`) or as a Chrome-trace JSON
  loadable in ``chrome://tracing`` / Perfetto;
* :class:`ProfileSink` - accumulates the WHISPER-style persistence profile
  (fences, PM bytes, media amplification, PCIe transactions, kernels) that
  ``experiments/profile.py`` reports, windowed by
  :class:`~repro.sim.events.WindowMark` boundaries;
* :func:`record_events` - a context manager that attaches a recorder to
  every machine created inside it, which is how the
  ``python -m repro trace`` CLI observes systems built deep inside a
  workload's ``run()``.
"""

from __future__ import annotations

import json
from contextlib import contextmanager
from dataclasses import dataclass

from .events import (
    BackgroundPersist,
    Crash,
    CpuDrain,
    CpuPmWrite,
    DdioToggle,
    DmaTransfer,
    DramWrite,
    Event,
    HbmRead,
    HbmWrite,
    KernelLaunch,
    LlcEvict,
    LlcFlush,
    LlcInstall,
    OptaneEpoch,
    PcieRead,
    PcieWrite,
    PmRead,
    RegionAlloc,
    RegionFree,
    Syscall,
    SystemFence,
    TraceMark,
    WarpDrain,
    WindowMark,
    add_global_subscriber,
    event_from_record,
    event_to_record,
    remove_global_subscriber,
)

#: Chrome-trace track (``tid``) per event type, grouping the timeline by the
#: hardware unit that produced the event.
_TRACK_OF: dict[type, str] = {
    KernelLaunch: "gpu",
    SystemFence: "gpu",
    WarpDrain: "gpu",
    HbmWrite: "gpu",
    HbmRead: "gpu",
    PcieWrite: "pcie",
    PcieRead: "pcie",
    DmaTransfer: "pcie",
    OptaneEpoch: "optane",
    PmRead: "optane",
    BackgroundPersist: "optane",
    LlcInstall: "llc",
    LlcEvict: "llc",
    LlcFlush: "llc",
    DdioToggle: "machine",
    CpuDrain: "cpu",
    CpuPmWrite: "cpu",
    DramWrite: "cpu",
    Syscall: "cpu",
    RegionAlloc: "machine",
    RegionFree: "machine",
    Crash: "machine",
    WindowMark: "machine",
    TraceMark: "machine",
}

_TRACK_IDS = {name: i for i, name in enumerate(
    ["gpu", "pcie", "optane", "llc", "cpu", "machine"], start=1)}


class TraceRecorder:
    """Subscriber keeping the full ordered event stream of a run."""

    def __init__(self) -> None:
        self.records: list[tuple[float, Event]] = []

    def __call__(self, ts: float, event: Event) -> None:
        self.records.append((ts, event))

    def __len__(self) -> int:
        return len(self.records)

    def counts(self) -> dict[str, int]:
        """Events per type, for run summaries."""
        out: dict[str, int] = {}
        for _, event in self.records:
            out[event.etype] = out.get(event.etype, 0) + 1
        return out

    # -- JSONL -----------------------------------------------------------

    def to_jsonl(self) -> str:
        """One JSON record per line; replayable via :func:`load_jsonl`."""
        lines = [json.dumps(event_to_record(ts, ev), separators=(",", ":"))
                 for ts, ev in self.records]
        return "\n".join(lines) + ("\n" if lines else "")

    def save_jsonl(self, path) -> str:
        path = str(path)
        with open(path, "w") as fh:
            fh.write(self.to_jsonl())
        return path

    # -- Chrome trace ----------------------------------------------------

    def to_chrome_trace(self) -> dict:
        """The ``chrome://tracing`` / Perfetto JSON object for this run.

        Simulated seconds map to trace microseconds.  Events that model a
        hardware duration (Optane epochs with media time) become complete
        ("X") slices; everything else is an instant ("i") on its unit's
        track, carrying its full payload in ``args``.
        """
        trace_events: list[dict] = []
        for track, tid in _TRACK_IDS.items():
            trace_events.append({
                "name": "thread_name", "ph": "M", "pid": 0, "tid": tid,
                "args": {"name": track},
            })
        for ts, event in self.records:
            track = _TRACK_OF.get(type(event), "machine")
            tid = _TRACK_IDS[track]
            record = event_to_record(ts, event)
            record.pop("ts")
            name = record.pop("event")
            ts_us = ts * 1e6
            duration_s = getattr(event, "media_time", 0.0)
            entry: dict = {
                "name": name, "pid": 0, "tid": tid, "ts": ts_us,
                "cat": track, "args": record,
            }
            if duration_s > 0.0:
                entry["ph"] = "X"
                entry["dur"] = duration_s * 1e6
            else:
                entry["ph"] = "i"
                entry["s"] = "t"
            trace_events.append(entry)
        return {"traceEvents": trace_events, "displayTimeUnit": "ms"}

    def save_chrome_trace(self, path) -> str:
        path = str(path)
        with open(path, "w") as fh:
            json.dump(self.to_chrome_trace(), fh)
        return path


def load_jsonl(path) -> list[tuple[float, Event]]:
    """Load a saved JSONL trace back into ``(timestamp, event)`` pairs."""
    out: list[tuple[float, Event]] = []
    with open(str(path)) as fh:
        for line in fh:
            line = line.strip()
            if line:
                out.append(event_from_record(json.loads(line)))
    return out


# --------------------------------------------------------------------------
# the persistence-profile sink
# --------------------------------------------------------------------------


@dataclass
class ProfileSummary:
    """Event-derived persistence profile of one measured window."""

    fences: int = 0
    pm_bytes: int = 0
    pm_media_bytes: int = 0
    pcie_transactions: int = 0
    kernels: int = 0

    @property
    def pm_kb(self) -> float:
        return self.pm_bytes / 1024

    @property
    def fences_per_kb(self) -> float:
        return self.fences / self.pm_kb if self.pm_bytes else 0.0

    @property
    def media_amplification(self) -> float:
        return (self.pm_media_bytes / self.pm_bytes) if self.pm_bytes else 0.0

    @property
    def tx_per_kb(self) -> float:
        return self.pcie_transactions / self.pm_kb if self.pm_bytes else 0.0


class ProfileSink:
    """Accumulates a :class:`ProfileSummary` between window marks.

    The sink only counts events inside :class:`~repro.sim.events.WindowMark`
    ``begin``/``end`` pairs, so its numbers agree exactly with the windowed
    stats deltas the experiments historically reported.  With
    ``windowed=False`` it counts the entire stream.
    """

    def __init__(self, windowed: bool = True) -> None:
        self.summary = ProfileSummary()
        self._windowed = windowed
        self._depth = 0

    def __call__(self, ts: float, event: Event) -> None:
        t = type(event)
        if t is WindowMark:
            self._depth += 1 if event.phase == "begin" else -1
            return
        if self._windowed and self._depth <= 0:
            return
        s = self.summary
        if t is SystemFence:
            s.fences += event.count
        elif t is OptaneEpoch:
            s.pm_bytes += event.logical_bytes
            s.pm_media_bytes += event.media_bytes
        elif t is BackgroundPersist:
            s.pm_bytes += event.nbytes
            s.pm_media_bytes += event.nbytes
        elif t is PcieWrite:
            s.pcie_transactions += event.transactions
        elif t is KernelLaunch:
            s.kernels += 1


# --------------------------------------------------------------------------
# capture scope
# --------------------------------------------------------------------------


@contextmanager
def record_events(subscriber=None):
    """Attach a subscriber to every machine created inside the block.

    Yields the subscriber (a fresh :class:`TraceRecorder` by default).  Used
    by the trace CLI and tests to observe systems a workload builds
    internally::

        with record_events() as recorder:
            result = workload.run(Mode.GPM)
        recorder.save_chrome_trace("reports/trace.json")
    """
    subscriber = subscriber if subscriber is not None else TraceRecorder()
    add_global_subscriber(subscriber)
    try:
        yield subscriber
    finally:
        remove_global_subscriber(subscriber)

"""Timing model of Intel Optane DCPMM.

The paper (Section 6.1, citing [27, 95, 99]) identifies the idiosyncrasies of
Optane that dominate GPM's bandwidth picture:

* the media is written in **256-byte XPLines**; the DIMM write-combines
  incoming stores into an internal buffer at that granularity;
* sequential accesses aligned at 256 B reach **12.5 GB/s**;
* sequential but unaligned (e.g. 64 B flush-grain) accesses drop to
  **3.13 GB/s** - every drain of a partial line costs a full-line
  read-modify-write, a 4x byte amplification;
* random accesses drop to **0.72 GB/s** - partial-line RMW *plus* the loss
  of the device's internal locality, modelled as a further multiplicative
  penalty on random line touches.

The model is epoch-based: an **epoch** is the set of writes drained together
(between two persist barriers).  Writes to the same XPLine combine freely
within an epoch but a line touched in two different epochs pays twice - this
is what makes flush-per-64B streams 4x slower than 256 B-aligned streaming,
exactly as measured.

:class:`OptaneModel` both computes media time and applies the functional
persistence (copying bytes from a region's ``visible`` to ``persisted``
image) so callers cannot account time without also persisting data.
"""

from __future__ import annotations

import numpy as np

from .config import SystemConfig
from .events import EventBus, OptaneEpoch, PmRead
from .memory import Region


def merge_segments(starts: np.ndarray, lengths: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Merge overlapping/adjacent ``[start, start+length)`` segments.

    Returns ``(starts, lengths)`` of the merged runs, sorted by address.
    """
    starts = np.asarray(starts, dtype=np.int64)
    lengths = np.asarray(lengths, dtype=np.int64)
    if starts.size == 0:
        return starts, lengths
    order = np.argsort(starts, kind="stable")
    starts = starts[order]
    ends = starts + lengths[order]
    # A new run begins wherever a segment starts beyond the running maximum
    # end of all previous segments.
    run_end = np.maximum.accumulate(ends)
    new_run = np.ones(starts.size, dtype=bool)
    new_run[1:] = starts[1:] > run_end[:-1]
    run_ids = np.cumsum(new_run) - 1
    n_runs = int(run_ids[-1]) + 1
    run_starts = starts[new_run]
    run_ends = np.zeros(n_runs, dtype=np.int64)
    np.maximum.at(run_ends, run_ids, ends)
    return run_starts, run_ends - run_starts


def merge_segments_grouped(
    starts: np.ndarray, lengths: np.ndarray, group_ids: np.ndarray, stride: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Merge segments independently within each group, in one numpy pass.

    Equivalent to calling :func:`merge_segments` on each group's slice, but
    without the per-group Python round trips: shifting every address by
    ``group * stride`` keeps the single global sort/accumulate from ever
    merging runs across group boundaries.  ``stride`` must exceed every
    segment end offset.  Returns ``(run_starts, run_lengths, run_groups)``
    ordered group-major, then by address within each group.
    """
    starts = np.asarray(starts, dtype=np.int64)
    lengths = np.asarray(lengths, dtype=np.int64)
    group_ids = np.asarray(group_ids, dtype=np.int64)
    if starts.size == 0:
        return starts, lengths, group_ids
    shifted = starts + group_ids * stride
    order = np.argsort(shifted, kind="stable")
    shifted = shifted[order]
    ends = shifted + lengths[order]
    groups = group_ids[order]
    run_end = np.maximum.accumulate(ends)
    new_run = np.ones(shifted.size, dtype=bool)
    new_run[1:] = shifted[1:] > run_end[:-1]
    run_first = np.flatnonzero(new_run)
    # Runs are disjoint and address-sorted, so the running maximum at each
    # run's last member is that run's own end (earlier runs end below this
    # run's start; later groups live beyond the stride).
    run_last = np.empty(run_first.size, dtype=np.int64)
    run_last[:-1] = run_first[1:] - 1
    run_last[-1] = shifted.size - 1
    run_groups = groups[run_first]
    run_starts = shifted[run_first] - run_groups * stride
    run_lengths = run_end[run_last] - shifted[run_first]
    return run_starts, run_lengths, run_groups


class OptaneModel:
    """Pattern-aware write/read timing for one Optane persistence domain."""

    def __init__(self, config: SystemConfig, events: EventBus) -> None:
        self._config = config
        self._events = events
        self._line = config.pm_xpline_bytes
        self._line_time = self._line / config.pm_bw_seq_aligned
        #: (region token, XPLine index) of the last write, for cross-epoch
        #: sequentiality; line indices are only comparable within a region.
        #: The token is :attr:`Region.token` - monotonic and never reused -
        #: rather than ``id()``, whose values CPython recycles after a free,
        #: which would let a cold stream to a new region masquerade as a
        #: sequential continuation of a dead one.
        self._last_line: int | None = None
        self._last_region: int | None = None

    def reset_stream(self) -> None:
        """Forget sequentiality history (e.g. after a crash/restart)."""
        self._last_line = None
        self._last_region = None

    # ------------------------------------------------------------------

    def write_epoch(self, region: Region, starts, lengths) -> float:
        """Drain one epoch of writes to PM; returns media seconds.

        ``starts``/``lengths`` are arrays of byte segments within ``region``.
        The segments are persisted functionally (visible -> persisted) and
        their media cost is computed from the XPLine-touch pattern described
        in the module docstring.
        """
        starts = np.atleast_1d(np.asarray(starts, dtype=np.int64))
        lengths = np.atleast_1d(np.asarray(lengths, dtype=np.int64))
        nonempty = lengths > 0
        if not nonempty.all():
            starts, lengths = starts[nonempty], lengths[nonempty]
        if starts.size == 0:
            return 0.0
        run_starts, run_lengths = merge_segments(starts, lengths)
        region.persist_ranges(run_starts, run_lengths)

        logical_bytes = int(run_lengths.sum())
        first_lines = run_starts // self._line
        last_lines = (run_starts + run_lengths - 1) // self._line
        touches = last_lines - first_lines + 1

        # Sequentiality: the first line of each run is sequential iff it is
        # the same as, or immediately follows, the previously written line.
        prev_last = np.empty(run_starts.size, dtype=np.int64)
        same_stream = self._last_region == region.token and self._last_line is not None
        prev_last[0] = self._last_line if same_stream else -(10**9)
        prev_last[1:] = last_lines[:-1]
        seq_start = (first_lines == prev_last) | (first_lines == prev_last + 1)

        # Every touch costs one full XPLine of media time; the first touch of
        # a non-sequential run additionally pays the random-access penalty.
        random_starts = int(np.count_nonzero(~seq_start))
        total_touches = int(touches.sum())
        time = (
            total_touches + random_starts * (self._config.pm_random_penalty - 1.0)
        ) * self._line_time

        self._last_line = int(last_lines[-1])
        self._last_region = region.token
        self._events.emit(OptaneEpoch(
            region=region.name, logical_bytes=logical_bytes,
            media_bytes=total_touches * self._line, segments=run_starts.size,
            random_starts=random_starts, media_time=time,
        ))
        return time

    def write_epochs(self, region: Region, run_starts: np.ndarray,
                     run_lengths: np.ndarray, run_groups: np.ndarray,
                     n_groups: int, after_group=None,
                     before_group=None) -> np.ndarray:
        """Drain ``n_groups`` consecutive epochs in one vectorized pass.

        Semantically identical to calling :meth:`write_epoch` once per group
        in ascending group order - same per-epoch :class:`OptaneEpoch`
        events, same cross-epoch sequentiality chaining, same functional
        persistence applied group by group (so a crash observer armed on
        the event stream sees exactly the per-epoch persistence frontier) -
        but the XPLine arithmetic for all groups runs as one numpy pass.

        The inputs are *pre-merged* runs, e.g. from
        :func:`merge_segments_grouped`: within each group they must be
        disjoint, address-sorted, and non-empty, with positive lengths, and
        ``run_groups`` must cover every group in ``[0, n_groups)``.
        ``after_group(group, logical_bytes)``, when given, is invoked right
        after each group's event - the hook the machine uses to keep its
        per-arrival events interleaved exactly as the unbatched path.
        ``before_group(group)`` is the symmetric hook invoked before each
        group persists, so a caller can emit its own per-group event ahead
        of the epoch's (the launch engine's deferred warp drains).
        Returns the per-group media seconds.
        """
        run_starts = np.asarray(run_starts, dtype=np.int64)
        run_lengths = np.asarray(run_lengths, dtype=np.int64)
        run_groups = np.asarray(run_groups, dtype=np.int64)
        first_lines = run_starts // self._line
        last_lines = (run_starts + run_lengths - 1) // self._line
        touches = last_lines - first_lines + 1
        # One global chain: group g's first run compares against group
        # g-1's last written line - exactly the stream state sequential
        # write_epoch calls would carry over (all groups share ``region``).
        prev_last = np.empty(run_starts.size, dtype=np.int64)
        same_stream = self._last_region == region.token and self._last_line is not None
        prev_last[0] = self._last_line if same_stream else -(10**9)
        prev_last[1:] = last_lines[:-1]
        seq_start = (first_lines == prev_last) | (first_lines == prev_last + 1)
        random_runs = (~seq_start).astype(np.int64)
        touches_g = np.bincount(run_groups, weights=touches,
                                minlength=n_groups).astype(np.int64)
        random_g = np.bincount(run_groups, weights=random_runs,
                               minlength=n_groups).astype(np.int64)
        logical_g = np.bincount(run_groups, weights=run_lengths,
                                minlength=n_groups).astype(np.int64)
        times = (
            touches_g + random_g * (self._config.pm_random_penalty - 1.0)
        ) * self._line_time
        bounds = np.searchsorted(run_groups, np.arange(n_groups + 1)).tolist()
        line = self._line
        name = region.name
        emit = self._events.emit
        # Python-scalar copies of the per-group columns: plain list indexing
        # in the loop below beats boxing numpy scalars thousands of times.
        last_l = last_lines.tolist()
        logical_l = logical_g.tolist()
        touches_l = touches_g.tolist()
        random_l = random_g.tolist()
        times_l = times.tolist()
        for g in range(n_groups):
            if before_group is not None:
                before_group(g)
            lo, hi = bounds[g], bounds[g + 1]
            region.persist_ranges(run_starts[lo:hi], run_lengths[lo:hi])
            self._last_line = last_l[hi - 1]
            self._last_region = region.token
            emit(OptaneEpoch(
                region=name, logical_bytes=logical_l[g],
                media_bytes=touches_l[g] * line, segments=hi - lo,
                random_starts=random_l[g], media_time=times_l[g],
            ))
            if after_group is not None:
                after_group(g, logical_l[g])
        return times

    def write_flush_grain(self, region: Region, offset: int, size: int,
                          grain: int = 64, random: bool = False) -> float:
        """Drain ``[offset, offset+size)`` as back-to-back ``grain``-byte epochs.

        Models a CPU CLFLUSHOPT+drain loop (or any flush-grain stream): every
        ``grain``-sized drain is its own epoch, so each one pays a full
        XPLine touch - the 4x partial-line amplification behind the paper's
        3.13 GB/s unaligned number.  With ``random=True`` every epoch also
        pays the random-access penalty (0.72 GB/s).  Vectorised equivalent
        of calling :meth:`write_epoch` once per grain.
        """
        if size < 0:
            raise ValueError("size must be non-negative")
        if size == 0:
            return 0.0
        if grain <= 0:
            raise ValueError("grain must be positive")
        region.persist_range(offset, size)
        touches = (size + grain - 1) // grain
        per_touch = self._line_time
        if random:
            per_touch *= self._config.pm_random_penalty
        self._last_line = (offset + size - 1) // self._line
        self._last_region = region.token
        time = touches * per_touch
        self._events.emit(OptaneEpoch(
            region=region.name, logical_bytes=size,
            media_bytes=touches * self._line, segments=touches,
            random_starts=touches if random else 0, media_time=time,
            grain="flush_grain",
        ))
        return time

    def flush_lines(self, region: Region, line_starts, line_size: int) -> float:
        """Drain a set of dirty cache lines, each as its own epoch.

        Used by the LLC write-back paths.  Sequentiality is judged between
        consecutive flushes in sorted address order; isolated lines pay the
        random penalty.  Returns media seconds.
        """
        line_starts = np.sort(np.asarray(line_starts, dtype=np.int64))
        if line_starts.size == 0:
            return 0.0
        lengths = np.minimum(line_size, region.size - line_starts)
        region.persist_ranges(line_starts, lengths)
        xlines = line_starts // self._line
        prev = np.empty(xlines.size, dtype=np.int64)
        same_stream = self._last_region == region.token and self._last_line is not None
        prev[0] = self._last_line if same_stream else -(10**9)
        prev[1:] = xlines[:-1]
        seq = (xlines == prev) | (xlines == prev + 1)
        n_random = int(np.count_nonzero(~seq))
        touches = line_starts.size
        time = (touches + n_random * (self._config.pm_random_penalty - 1.0)) * self._line_time
        self._last_line = int(xlines[-1])
        self._last_region = region.token
        self._events.emit(OptaneEpoch(
            region=region.name, logical_bytes=int(lengths.sum()),
            media_bytes=touches * self._line, segments=touches,
            random_starts=n_random, media_time=time, grain="line_drain",
        ))
        return time

    def read(self, nbytes: int, random: bool = False) -> float:
        """Media seconds to read ``nbytes`` from PM."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        self._events.emit(PmRead(nbytes=nbytes, random=random))
        bw = self._config.pm_bw_seq_aligned
        if random:
            bw /= self._config.pm_random_penalty
        return self._config.pm_read_latency_s + nbytes / bw

"""Simulated hardware substrate for the GPM reproduction.

This package models the machine of the paper's Table 3 - a Xeon server with
Optane persistent memory and a PCIe-attached NVIDIA GPU - at the level of
detail GPM's mechanisms depend on: persistence domains, the DDIO/LLC
volatility gap, Optane's pattern-dependent bandwidth, and the PCIe link's
bounded concurrency.
"""

from .clock import SimClock, Span
from .config import DEFAULT_CONFIG, SystemConfig
from .crash import CrashInjector, SimulatedCrash
from .machine import Machine
from .memory import CRASH_POISON, MemKind, Region
from .optane import OptaneModel, merge_segments
from .pcie import PcieModel
from .stats import MachineStats, WindowedStats

__all__ = [
    "CRASH_POISON",
    "CrashInjector",
    "DEFAULT_CONFIG",
    "Machine",
    "MachineStats",
    "MemKind",
    "OptaneModel",
    "PcieModel",
    "Region",
    "SimClock",
    "SimulatedCrash",
    "Span",
    "SystemConfig",
    "WindowedStats",
    "merge_segments",
]

"""Simulated hardware substrate for the GPM reproduction.

This package models the machine of the paper's Table 3 - a Xeon server with
Optane persistent memory and a PCIe-attached NVIDIA GPU - at the level of
detail GPM's mechanisms depend on: persistence domains, the DDIO/LLC
volatility gap, Optane's pattern-dependent bandwidth, and the PCIe link's
bounded concurrency.
"""

from .clock import SimClock, Span
from .config import DEFAULT_CONFIG, SystemConfig
from .crash import CrashInjector, SimulatedCrash
from .events import (
    EVENT_TYPES,
    Event,
    EventBus,
    StatsAggregator,
    event_from_record,
    event_to_record,
    stats_from_events,
)
from .machine import Machine
from .memory import CRASH_POISON, MemKind, Region
from .optane import OptaneModel, merge_segments
from .pcie import PcieModel
from .stats import MachineStats, WindowedStats
from .trace import ProfileSink, ProfileSummary, TraceRecorder, load_jsonl, record_events

__all__ = [
    "CRASH_POISON",
    "CrashInjector",
    "DEFAULT_CONFIG",
    "EVENT_TYPES",
    "Event",
    "EventBus",
    "Machine",
    "MachineStats",
    "MemKind",
    "OptaneModel",
    "PcieModel",
    "ProfileSink",
    "ProfileSummary",
    "Region",
    "SimClock",
    "SimulatedCrash",
    "Span",
    "StatsAggregator",
    "SystemConfig",
    "TraceRecorder",
    "WindowedStats",
    "event_from_record",
    "event_to_record",
    "load_jsonl",
    "merge_segments",
    "record_events",
    "stats_from_events",
]

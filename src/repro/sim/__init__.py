"""Simulated hardware substrate for the GPM reproduction.

This package models the machine of the paper's Table 3 - a Xeon server with
Optane persistent memory and a PCIe-attached NVIDIA GPU - at the level of
detail GPM's mechanisms depend on: persistence domains, the DDIO/LLC
volatility gap, Optane's pattern-dependent bandwidth, and the PCIe link's
bounded concurrency.
"""

from .clock import SimClock, Span
from .config import DEFAULT_CONFIG, SystemConfig
from .crash import CrashInjector, SimulatedCrash
from .events import (
    EVENT_TYPES,
    Event,
    EventBus,
    StatsAggregator,
    event_from_record,
    event_to_record,
    stats_from_events,
)
from .machine import Machine
from .memory import CRASH_POISON, MemKind, Region
from .optane import OptaneModel, merge_segments
from .pcie import PcieModel
from .persistency import (
    MODE_REGISTRY,
    MODEL_REGISTRY,
    AdaptivePath,
    EadrStrict,
    Epoch,
    ModeEntry,
    PersistencyModel,
    Relaxed,
    Strict,
    known_mode_names,
    known_models,
    make_model,
    mode_entry,
    register_mode,
    register_model,
    resolve_model,
)
from .stats import MachineStats, WindowedStats
from .trace import ProfileSink, ProfileSummary, TraceRecorder, load_jsonl, record_events

__all__ = [
    "AdaptivePath",
    "CRASH_POISON",
    "CrashInjector",
    "DEFAULT_CONFIG",
    "EVENT_TYPES",
    "EadrStrict",
    "Epoch",
    "Event",
    "EventBus",
    "MODE_REGISTRY",
    "MODEL_REGISTRY",
    "Machine",
    "ModeEntry",
    "PersistencyModel",
    "Relaxed",
    "Strict",
    "MachineStats",
    "MemKind",
    "OptaneModel",
    "PcieModel",
    "ProfileSink",
    "ProfileSummary",
    "Region",
    "SimClock",
    "SimulatedCrash",
    "Span",
    "StatsAggregator",
    "SystemConfig",
    "TraceRecorder",
    "WindowedStats",
    "event_from_record",
    "event_to_record",
    "known_mode_names",
    "known_models",
    "load_jsonl",
    "make_model",
    "merge_segments",
    "mode_entry",
    "record_events",
    "register_mode",
    "register_model",
    "resolve_model",
    "stats_from_events",
]

"""The simulated machine: devices, persistence domains, and crash semantics.

:class:`Machine` composes the memory devices (:mod:`repro.sim.memory`), the
Optane model, the LLC/DDIO boundary, the PCIe link, a simulated clock and the
traffic counters into one object with a small set of *hardware primitives*:

* routing of inbound I/O (GPU) writes to host memory, honouring DDIO;
* CPU store / flush / non-temporal-store paths to PM;
* the DDIO enable/disable switch (the paper writes the ``perfctrlsts_0``
  I/O register; we flip a bit);
* :meth:`crash` - power-failure semantics over every region and the cache.

Higher layers (:mod:`repro.gpu`, :mod:`repro.host`, :mod:`repro.core`) build
the GPU engine, CPU software and libGPM on top of these primitives; they
never touch ``Region.persisted`` directly.

Instrumentation: every primitive emits one typed event on the machine's
:class:`~repro.sim.events.EventBus` (``machine.events``); the counters in
``machine.stats`` are maintained by the always-subscribed
:class:`~repro.sim.events.StatsAggregator`, and further subscribers (trace
recorders, profile sinks) can be attached without touching the hardware
models.  See ``docs/observability.md``.
"""

from __future__ import annotations

import numpy as np

from .cache import LastLevelCache
from .clock import SimClock
from .config import DEFAULT_CONFIG, SystemConfig
from .events import (
    BackgroundPersist,
    Crash,
    CpuDrain,
    CpuPmWrite,
    DdioToggle,
    DramWrite,
    EventBus,
    GpuPmWrite,
    RegionAlloc,
    RegionFree,
    StatsAggregator,
)
from .memory import MemKind, Region
from .optane import OptaneModel
from .pcie import PcieModel
from .persistency import PersistencyModel, resolve_model


class Machine:
    """One simulated Xeon + Optane + GPU platform."""

    def __init__(self, config: SystemConfig = DEFAULT_CONFIG, eadr: bool = False,
                 persistency: PersistencyModel | str | None = None) -> None:
        self.config = config
        #: The machine's persistency model - ordering, persist-domain and
        #: data-path rules (``repro.sim.persistency``).  The legacy ``eadr``
        #: boolean is a deprecation shim resolved by ``resolve_model``.
        self.persistency = resolve_model(persistency, eadr=eadr)
        self.clock = SimClock()
        #: The hardware event bus; ``stats`` is its first subscriber.
        self.events = EventBus(self.clock)
        self._aggregator = StatsAggregator()
        self.stats = self._aggregator.stats
        self.events.subscribe(self._aggregator)
        self.optane = OptaneModel(config, self.events)
        self.llc = LastLevelCache(config, self.events, self.optane)
        self.pcie = PcieModel(config, self.events)
        #: DDIO steers inbound I/O writes into the LLC when enabled (the
        #: hardware default).  libGPM's gpm_persist_begin/end toggles this.
        self.ddio_enabled = True
        self.crash_count = 0
        self._regions: dict[str, Region] = {}
        self.persistency.attach(self)

    @property
    def eadr(self) -> bool:
        """Whether the LLC is inside the persistence domain (model-owned)."""
        return self.persistency.eadr

    # -- allocation ------------------------------------------------------

    def alloc(self, name: str, size: int, kind: MemKind) -> Region:
        """Allocate a named region on the given device."""
        if name in self._regions:
            raise ValueError(f"region {name!r} already allocated")
        region = Region(name, size, kind)
        self._regions[name] = region
        self.events.emit(RegionAlloc(region=name, kind=kind.value, size=size))
        return region

    def alloc_pm(self, name: str, size: int) -> Region:
        return self.alloc(name, size, MemKind.PM)

    def alloc_dram(self, name: str, size: int) -> Region:
        return self.alloc(name, size, MemKind.DRAM)

    def alloc_hbm(self, name: str, size: int) -> Region:
        return self.alloc(name, size, MemKind.HBM)

    def free(self, region: Region) -> None:
        """Release a region (PM contents are gone once freed)."""
        existing = self._regions.get(region.name)
        if existing is not region:
            raise KeyError(f"region {region.name!r} is not allocated on this machine")
        del self._regions[region.name]
        # Dirty LLC lines of a freed PM region must not write back into (or
        # resurrect) a later allocation that reuses the name.
        if region.kind is MemKind.PM:
            self.llc.drop_range(region, 0, region.size)
        self.events.emit(RegionFree(region=region.name))

    def region(self, name: str) -> Region:
        return self._regions[name]

    def has_region(self, name: str) -> bool:
        return name in self._regions

    @property
    def regions(self) -> tuple[Region, ...]:
        return tuple(self._regions.values())

    # -- DDIO ------------------------------------------------------------

    def set_ddio(self, enabled: bool) -> None:
        """Flip DDIO for inbound device writes (models ``perfctrlsts_0``)."""
        self.ddio_enabled = bool(enabled)
        self.events.emit(DdioToggle(enabled=self.ddio_enabled))

    # -- hardware write paths ---------------------------------------------

    def io_write_arrival(self, region: Region, starts, lengths) -> float:
        """Inbound I/O (GPU) writes reaching host memory.

        Data is already visible (the writer updated ``region.visible``);
        this routes the persistence side-effect.  With DDIO on, PM-bound
        writes park in the volatile LLC and the returned host-side media
        time is zero (the fence completed at the LLC).  With DDIO off they
        drain straight to the Optane media as a single epoch, and the media
        time is returned so the caller can charge it to the fence.
        """
        if region.kind is MemKind.HBM:
            raise ValueError("HBM is not host memory; io writes target DRAM or PM")
        if region.kind is MemKind.DRAM:
            total = int(np.sum(np.atleast_1d(np.asarray(lengths, dtype=np.int64))))
            self.events.emit(DramWrite(nbytes=total, source="gpu"))
            return 0.0
        if self.persistency.adaptive:
            routed = self.persistency.route_io_write(self, region, starts, lengths)
            if routed is not None:
                return routed
        if self.ddio_enabled:
            self.llc.install_writes(region, starts, lengths)
            return 0.0
        time = self.optane.write_epoch(region, starts, lengths)
        total = int(np.sum(np.atleast_1d(np.asarray(lengths, dtype=np.int64))))
        self.events.emit(GpuPmWrite(nbytes=total))
        return time

    def io_write_arrival_groups(self, region: Region, run_starts, run_lengths,
                                run_groups, n_groups: int, before_group=None):
        """Batched :meth:`io_write_arrival`: one arrival per group, vectorized.

        ``run_starts``/``run_lengths``/``run_groups`` are pre-merged segment
        runs (see :func:`~repro.sim.optane.merge_segments_grouped`) for
        ``n_groups`` consecutive arrivals - typically one group per warp of
        a bulk scatter.  Emits the same per-group events in the same order
        as ``n_groups`` sequential calls and returns the per-group media
        seconds; returns ``None`` when the active route cannot batch
        (adaptive persistency routing, DDIO-on LLC installs) and the caller
        must fall back to per-group :meth:`io_write_arrival` calls.
        ``before_group(group)``, when given, fires before each group's
        events (never on the ``None`` fallback), letting the caller keep
        its own per-arrival events interleaved as the unbatched path would.
        """
        if region.kind is MemKind.HBM:
            raise ValueError("HBM is not host memory; io writes target DRAM or PM")
        if region.kind is MemKind.DRAM:
            totals = np.bincount(run_groups, weights=run_lengths,
                                 minlength=n_groups).astype(np.int64)
            for g, total in enumerate(totals.tolist()):
                if before_group is not None:
                    before_group(g)
                self.events.emit(DramWrite(nbytes=int(total), source="gpu"))
            return np.zeros(n_groups)
        if self.persistency.adaptive or self.ddio_enabled:
            return None

        def _pm_write(_group: int, logical_bytes: int) -> None:
            self.events.emit(GpuPmWrite(nbytes=logical_bytes))

        return self.optane.write_epochs(region, run_starts, run_lengths,
                                        run_groups, n_groups,
                                        after_group=_pm_write,
                                        before_group=before_group)

    def cpu_store_arrival(self, region: Region, offset: int, size: int) -> None:
        """CPU stores to host memory dirty LLC lines (for PM regions)."""
        if region.kind is MemKind.PM:
            self.llc.install_writes(region, [offset], [size])
        elif region.kind is MemKind.DRAM:
            self.events.emit(DramWrite(nbytes=size, source="cpu"))
        else:
            raise ValueError("CPU stores target host memory, not HBM")

    def cpu_flush(self, region: Region, offset: int, size: int) -> float:
        """CLFLUSHOPT+drain over a range; returns the media seconds."""
        self.events.emit(CpuDrain(op="flush"))
        return self.llc.flush_range(region, offset, size)

    def cpu_nt_store_arrival(self, region: Region, starts, lengths) -> float:
        """Non-temporal stores bypass the cache straight to the media."""
        if region.kind is not MemKind.PM:
            total = int(np.sum(np.atleast_1d(np.asarray(lengths, dtype=np.int64))))
            self.events.emit(DramWrite(nbytes=total, source="cpu"))
            return 0.0
        time = self.optane.write_epoch(region, starts, lengths)
        total = int(np.sum(np.atleast_1d(np.asarray(lengths, dtype=np.int64))))
        self.events.emit(CpuPmWrite(nbytes=total))
        return time

    def background_persist(self, region: Region, offset: int, size: int) -> None:
        """Persist a range with zero foreground cost (eADR-domain drain).

        On an eADR platform data is durable once it reaches the LLC; the
        media drain happens asynchronously (on failure or in the
        background).  Counts media traffic but charges no time.
        """
        if not self.eadr:
            raise RuntimeError("background_persist is only meaningful with eADR")
        region.persist_range(offset, size)
        self.llc.drop_range(region, offset, size)
        self.events.emit(BackgroundPersist(region=region.name, nbytes=size))

    # -- failure ----------------------------------------------------------

    def crash(self) -> None:
        """Simulate a power failure / fail-stop crash.

        The LLC applies its (e)ADR semantics first, then every region keeps
        only its persisted image (PM) or is poisoned (DRAM/HBM).
        """
        self.events.emit(Crash(eadr=self.eadr))
        self.llc.crash(self.eadr)
        for region in self._regions.values():
            region.crash()
        self.optane.reset_stream()
        self.persistency.reset_after_crash()
        self.ddio_enabled = True
        self.crash_count += 1

    def drop_volatile_regions(self) -> None:
        """Forget volatile regions after a crash so names can be reused."""
        for name in [n for n, r in self._regions.items() if r.kind is not MemKind.PM]:
            del self._regions[name]

"""Simulated time.

The reproduction measures *simulated* seconds, not wall-clock time: every
modelled hardware action (a DMA, a kernel, a flush loop) computes its elapsed
time analytically from :class:`~repro.sim.config.SystemConfig` and advances a
:class:`SimClock`.  Experiments report ratios of simulated durations, which is
what the paper's figures plot.
"""

from __future__ import annotations

from contextlib import contextmanager


class SimClock:
    """A monotonically advancing simulated clock.

    Also supports named *spans* so experiments can attribute time to a phase
    (e.g. "checkpoint" vs "compute") and compute bandwidths over it
    (Fig. 12 divides PCIe write bytes by kernel time).
    """

    def __init__(self) -> None:
        self._now = 0.0

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def advance(self, seconds: float) -> None:
        """Advance simulated time by ``seconds`` (must be non-negative)."""
        if seconds < 0:
            raise ValueError(f"cannot advance clock by {seconds!r} s")
        self._now += seconds

    @contextmanager
    def span(self):
        """Context manager yielding a :class:`Span` over the enclosed work."""
        s = Span(self, self._now)
        try:
            yield s
        finally:
            s.close()


class Span:
    """A (start, end) interval of simulated time."""

    def __init__(self, clock: SimClock, start: float) -> None:
        self._clock = clock
        self.start = start
        self.end: float | None = None

    def close(self) -> None:
        if self.end is None:
            self.end = self._clock.now

    @property
    def elapsed(self) -> float:
        end = self.end if self.end is not None else self._clock.now
        return end - self.start

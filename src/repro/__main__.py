"""Command-line entry point: ``python -m repro <command>``.

Commands
--------

``list``
    Show every reproducible artefact (paper figures/tables, ablations,
    extensions).
``run <name> [...]``
    Regenerate one or more artefacts by name, print them, and save
    ``reports/out_<name>.txt``.
``all``
    Regenerate everything (a few minutes).
``workload <name> [--mode MODE]``
    Run one GPMbench workload under one persistence mode and report its
    simulated time and traffic.
"""

from __future__ import annotations

import argparse
import sys


def _cmd_list(_args) -> int:
    from .experiments import ALL_EXPERIMENTS
    from .workloads import gpmbench_suite

    print("artefacts (python -m repro run <name>):")
    for name in ALL_EXPERIMENTS:
        print(f"  {name}")
    print("\nworkloads (python -m repro workload <name> [--mode m]):")
    for w in gpmbench_suite():
        print(f"  {w.name}")
    return 0


def _resolve(name: str):
    from .experiments import ALL_EXPERIMENTS

    if name in ALL_EXPERIMENTS:
        return ALL_EXPERIMENTS[name]
    raise SystemExit(f"unknown artefact {name!r}; see `python -m repro list`")


def _cmd_run(args) -> int:
    for name in args.names:
        table = _resolve(name)()
        path = table.save(args.reports)
        print(table.to_text())
        if args.bars:
            try:
                print(table.to_bars(args.bars, log=args.log))
            except ValueError:
                print(f"(column {args.bars!r} not in {name})")
        print(f"saved {path}\n")
    return 0


def _cmd_all(args) -> int:
    from .experiments import run_all

    run_all(directory=args.reports, verbose=True)
    return 0


def _cmd_workload(args) -> int:
    from .workloads import Mode, gpmbench_suite

    mode = Mode(args.mode)
    target = None
    for w in gpmbench_suite():
        if w.name.lower() == args.name.lower():
            target = w
            break
    if target is None:
        known = ", ".join(w.name for w in gpmbench_suite())
        raise SystemExit(f"unknown workload {args.name!r}; one of: {known}")
    result = target.run(mode)
    print(f"{target.name} under {mode.value}:")
    print(f"  simulated time     {result.elapsed * 1e3:.4f} ms")
    print(f"  PM bytes persisted {result.bytes_persisted:,}")
    print(f"  PCIe write BW      {result.pcie_write_bandwidth / 1e9:.2f} GB/s")
    for key, value in result.extras.items():
        print(f"  {key:<18} {value}")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="GPM (ASPLOS '22) simulated reproduction",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list artefacts and workloads")
    run = sub.add_parser("run", help="regenerate named artefacts")
    run.add_argument("names", nargs="+")
    run.add_argument("--reports", default="reports")
    run.add_argument("--bars", metavar="COLUMN",
                     help="also render an ASCII bar chart of COLUMN")
    run.add_argument("--log", action="store_true",
                     help="log-scale the bar chart")
    allp = sub.add_parser("all", help="regenerate everything")
    allp.add_argument("--reports", default="reports")
    wl = sub.add_parser("workload", help="run one workload under one mode")
    wl.add_argument("name")
    wl.add_argument("--mode", default="gpm",
                    help="gpm | gpm-ndp | gpm-eadr | cap-fs | cap-mm | "
                         "cap-eadr | gpufs")
    args = parser.parse_args(argv)
    return {"list": _cmd_list, "run": _cmd_run, "all": _cmd_all,
            "workload": _cmd_workload}[args.command](args)


if __name__ == "__main__":
    sys.exit(main())

"""Command-line entry point: ``python -m repro <command>``.

Commands
--------

``list``
    Show every reproducible artefact (paper figures/tables, ablations,
    extensions).
``run <name> [...]``
    Regenerate one or more artefacts by name, print them, and save
    ``reports/out_<name>.txt``.
``all``
    Regenerate everything.  ``--jobs N`` fans the simulations over N fork
    workers; results are served from the persistent cache under
    ``~/.cache/repro`` (``--cache-dir`` moves it, ``--no-cache`` disables
    it) so repeat invocations are near-instant.  See
    ``docs/performance.md``.
``bench``
    Time the experiment engine (cold sequential vs cold parallel vs warm
    cache) and write ``BENCH_experiments.json``.
``workload <name> [--mode MODE]``
    Run one GPMbench workload under one persistence mode and report its
    simulated time and traffic.
``trace <name> [--mode MODE] [--out DIR]``
    Run one workload while recording the hardware event bus; saves a
    replayable JSONL event log and a Chrome-trace JSON (load in
    ``chrome://tracing`` or Perfetto).  See ``docs/observability.md``.
``check <target> [--mode MODE] [--max-frontiers N] [--frontier SPEC]``
    Systematically crash the target at every distinct frontier, recover,
    and verify its invariants; non-zero exit and a reproducer command on
    any violation.  See ``docs/crash-consistency.md``.
``serve [--tenants N --shards N --rate R --duration S --seed S ...]``
    Run the multi-tenant request-serving layer over gpKVS (admission
    control, warp-sized batching, sharded HCL logs) and print the service
    summary; same seed, byte-identical summary.  ``bench --service``
    writes ``BENCH_service.json``.  See ``docs/service.md``.
"""

from __future__ import annotations

import argparse
import os
import sys


def _cmd_list(_args) -> int:
    from .experiments import ALL_EXPERIMENTS
    from .workloads import gpmbench_suite

    print("artefacts (python -m repro run <name>):")
    for name in ALL_EXPERIMENTS:
        print(f"  {name}")
    print("\nworkloads (python -m repro workload <name> [--mode m]):")
    for w in gpmbench_suite():
        print(f"  {w.name}")
    from .check import CHECK_TARGETS

    print("\ncheck targets (python -m repro check <target>):")
    for name in sorted(CHECK_TARGETS):
        print(f"  {name}")
    return 0


def _resolve(name: str):
    from .experiments import ALL_EXPERIMENTS

    if name in ALL_EXPERIMENTS:
        return ALL_EXPERIMENTS[name]
    raise SystemExit(f"unknown artefact {name!r}; see `python -m repro list`")


def _setup_engine(args) -> None:
    """Apply the shared ``--jobs`` / ``--cache-dir`` / ``--no-cache`` flags."""
    from .experiments import ResultCache, set_default_jobs, set_disk_cache

    set_default_jobs(getattr(args, "jobs", 1) or 1)
    if getattr(args, "no_cache", False):
        set_disk_cache(None)
    else:
        set_disk_cache(ResultCache(getattr(args, "cache_dir", None)))


def _cmd_run(args) -> int:
    from .experiments import prefetch, requests_for, run_artefact

    _setup_engine(args)
    for name in args.names:
        _resolve(name)
    prefetch(requests_for(args.names))
    for name in args.names:
        table = run_artefact(name)
        path = table.save(args.reports)
        print(table.to_text())
        if args.bars:
            try:
                print(table.to_bars(args.bars, log=args.log))
            except ValueError:
                print(f"(column {args.bars!r} not in {name})")
        print(f"saved {path}\n")
    return 0


def _cmd_all(args) -> int:
    from .experiments import run_all

    _setup_engine(args)
    run_all(directory=args.reports, verbose=True, jobs=args.jobs)
    return 0


def _cmd_bench(args) -> int:
    if args.service:
        args.out = args.out or "BENCH_service.json"
        return _cmd_bench_service(args)
    args.out = args.out or "BENCH_experiments.json"
    from .experiments.bench import run_bench

    record = run_bench(jobs=args.jobs, smoke=args.smoke,
                       artefacts=args.artefacts, out=args.out,
                       cache_dir=args.cache_dir)
    print(f"artefacts          {len(record['artefacts'])} "
          f"({record['runs']} engine runs)")
    print(f"cold sequential    {record['cold_sequential_s']:.3f} s")
    if record["cold_parallel_s"] is None:
        print(f"cold parallel      {record['parallel_leg']}")
    else:
        print(f"cold parallel x{record['jobs']}  {record['cold_parallel_s']:.3f} s "
              f"({record['parallel_speedup']}x)")
    print(f"warm cache         {record['warm_s']:.3f} s "
          f"({100 * record['warm_over_cold']:.1f}% of cold)")
    print(f"saved {args.out}")
    return 0


def _cmd_bench_service(args) -> int:
    from .serve.bench import run_service_bench, validate_service_record
    from .serve.metrics import render_summary

    record = run_service_bench(smoke=args.smoke, seed=args.seed, out=args.out)
    print(render_summary(record["summary"]))
    print(f"wall clock      {record['wall_s']:.3f} s")
    print(f"saved {args.out}")
    problems = validate_service_record(record)
    for problem in problems:
        print(f"FAIL: {problem}", file=sys.stderr)
    return 1 if problems else 0


def _cmd_serve(args) -> int:
    from .serve import ServiceConfig, run_service
    from .serve.metrics import render_summary, summary_json

    config = ServiceConfig(
        mode=args.mode, tenants=args.tenants, shards=args.shards,
        rate=args.rate, duration=args.duration, seed=args.seed,
        read_fraction=args.read_fraction,
        delete_fraction=args.delete_fraction, theta=args.theta,
        target_batch=args.target_batch, linger=args.linger,
    )
    result = run_service(config)
    if args.json:
        print(summary_json(result["summary"]))
    else:
        print(f"served {config.tenants} tenants x {config.rate / 1e6:.2f} M ops/s "
              f"for {config.duration * 1e3:.2f} ms simulated "
              f"({config.shards} log shards, seed {config.seed}):")
        print(render_summary(result["summary"]))
    return 0


def _find_workload(name: str):
    from .workloads import gpmbench_suite

    for w in gpmbench_suite():
        if w.name.lower() == name.lower():
            return w
    known = ", ".join(w.name for w in gpmbench_suite())
    raise SystemExit(f"unknown workload {name!r}; one of: {known}")


def _parse_mode(name: str):
    from .workloads import Mode

    try:
        return Mode.from_name(name)
    except ValueError as exc:
        raise SystemExit(str(exc))


def _cmd_workload(args) -> int:
    mode = _parse_mode(args.mode)
    target = _find_workload(args.name)
    result = target.run(mode)
    print(f"{target.name} under {mode.value}:")
    print(f"  simulated time     {result.elapsed * 1e3:.4f} ms")
    print(f"  PM bytes persisted {result.bytes_persisted:,}")
    print(f"  PCIe write BW      {result.pcie_write_bandwidth / 1e9:.2f} GB/s")
    for key, value in result.extras.items():
        print(f"  {key:<18} {value}")
    return 0


def _cmd_trace(args) -> int:
    from .sim.events import stats_from_events
    from .sim.trace import record_events

    mode = _parse_mode(args.mode)
    target = _find_workload(args.name)
    with record_events() as recorder:
        result = target.run(mode)
    os.makedirs(args.out, exist_ok=True)
    base = os.path.join(args.out, f"trace_{target.name.lower()}_{mode.value}")
    jsonl_path = recorder.save_jsonl(base + ".jsonl")
    chrome_path = recorder.save_chrome_trace(base + ".json")
    replayed = stats_from_events(recorder.records)
    print(f"{target.name} under {mode.value}: {len(recorder)} events, "
          f"{result.elapsed * 1e3:.4f} ms simulated")
    for etype, count in sorted(recorder.counts().items()):
        print(f"  {etype:<20} {count}")
    print(f"  replayed fences    {replayed.system_fences}")
    print(f"  replayed PM bytes  {replayed.pm_bytes_written:,}")
    print(f"saved {jsonl_path}")
    print(f"saved {chrome_path}")
    return 0


def _cmd_check_litmus(args) -> int:
    from .check.litmus import run_campaign

    _setup_engine(args)
    report = run_campaign(args.litmus, args.seed, jobs=args.jobs,
                          max_frontiers=args.litmus_frontiers,
                          corpus=not args.no_corpus)
    print(report.describe())
    return 0 if report.ok else 1


def _cmd_check_litmus_replay(args) -> int:
    from .check.litmus import config_matrix, execute_point, generate_test
    from .check.report import litmus_reproducer_command

    seed, sep, index = args.litmus_replay.partition(":")
    if not sep or not seed.lstrip("-").isdigit() or not index.isdigit():
        raise SystemExit(f"--litmus-replay wants SEED:INDEX, "
                         f"got {args.litmus_replay!r}")
    test = generate_test(int(seed), int(index))
    print(test.describe())
    for p, phase in enumerate(test.phases):
        steps = " ".join(
            f"w(r{s[1]},slot{s[2]}+)" if s[0] == "write" else "fence"
            for s in phase)
        print(f"  phase {p}: {steps}")
    specs = ([args.litmus_config] if args.litmus_config
             else [pt.spec() for pt in config_matrix()])
    failed = 0
    for spec in specs:
        result = execute_point(test.payload(), spec, mutant=args.mutant,
                               max_frontiers=args.litmus_frontiers,
                               frontier_spec=args.frontier)
        if result["ok"]:
            print(f"  {spec}: ok "
                  f"({result['frontiers_explored']} crash states)")
            continue
        failed += 1
        print(f"  {spec}: FAIL")
        for v in result["violations"]:
            print(f"    {v['name']} at {v['frontier']}: {v['detail']}")
            print("    reproduce: " + litmus_reproducer_command(
                test.seed, test.index, spec, v["frontier"], args.mutant))
    print("PASS" if not failed else f"FAIL ({failed}/{len(specs)} configs)")
    return 0 if not failed else 1


def _cmd_check(args) -> int:
    from .check import explore, make_oracle, parse_frontier
    from .check.explorer import explore_frontier
    from .check.report import render_single

    if args.litmus_replay:
        return _cmd_check_litmus_replay(args)
    if args.litmus:
        return _cmd_check_litmus(args)
    if not args.target:
        raise SystemExit("check: name a target, or use --litmus N / "
                         "--litmus-replay SEED:INDEX")
    mode = _parse_mode(args.mode)
    try:
        make_oracle(args.target)
    except ValueError as exc:
        raise SystemExit(str(exc))
    if args.frontier:
        frontier = parse_frontier(args.frontier)
        result = explore_frontier(args.target, mode.value, frontier)
        print(render_single(args.target, mode.value, result))
        return 0 if result.status == "ok" else 1
    report = explore(args.target, mode, max_frontiers=args.max_frontiers,
                     window_samples=args.window_samples, jobs=args.jobs)
    print(report.describe())
    return 0 if report.ok else 1


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="GPM (ASPLOS '22) simulated reproduction",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list artefacts and workloads")
    def engine_flags(p, default_jobs=1):
        p.add_argument("--jobs", type=int, default=default_jobs,
                       help="parallel worker processes for the simulations")
        p.add_argument("--cache-dir", default=None,
                       help="persistent result cache directory "
                            "(default: ~/.cache/repro or $REPRO_CACHE_DIR)")
        p.add_argument("--no-cache", action="store_true",
                       help="do not read or write the persistent cache")

    run = sub.add_parser("run", help="regenerate named artefacts")
    run.add_argument("names", nargs="+")
    run.add_argument("--reports", default="reports")
    run.add_argument("--bars", metavar="COLUMN",
                     help="also render an ASCII bar chart of COLUMN")
    run.add_argument("--log", action="store_true",
                     help="log-scale the bar chart")
    engine_flags(run)
    allp = sub.add_parser("all", help="regenerate everything")
    allp.add_argument("--reports", default="reports")
    engine_flags(allp)
    bench = sub.add_parser(
        "bench", help="time the engine: cold vs parallel vs warm cache")
    bench.add_argument("--jobs", type=int, default=2,
                       help="pool width for the parallel leg")
    bench.add_argument("--smoke", action="store_true",
                       help="bench only a small artefact subset (CI)")
    bench.add_argument("--artefacts", nargs="+", default=None,
                       help="explicit artefact names to bench")
    bench.add_argument("--out", default=None,
                       help="output JSON path (default: "
                            "BENCH_experiments.json, or BENCH_service.json "
                            "with --service)")
    bench.add_argument("--cache-dir", default=None,
                       help="reuse this cache directory for the warm legs "
                            "(default: a throw-away temp dir)")
    bench.add_argument("--service", action="store_true",
                       help="bench the request-serving layer instead "
                            "(writes BENCH_service.json)")
    bench.add_argument("--seed", type=int, default=42,
                       help="service traffic seed (with --service)")
    from .sim.persistency import known_mode_names

    mode_help = " | ".join(known_mode_names())
    sv = sub.add_parser(
        "serve", help="run the multi-tenant request-serving layer over gpKVS")
    sv.add_argument("--mode", default="gpm",
                    help="PM-direct persistence mode (gpm | gpm-eadr | ...)")
    sv.add_argument("--tenants", type=int, default=4)
    sv.add_argument("--shards", type=int, default=4,
                    help="independent HCL log shards (key-hash ranges)")
    sv.add_argument("--rate", type=float, default=500_000.0,
                    help="per-tenant offered load, ops per simulated second")
    sv.add_argument("--duration", type=float, default=2e-3,
                    help="simulated seconds of traffic")
    sv.add_argument("--seed", type=int, default=42,
                    help="traffic seed; same seed, byte-identical summary")
    sv.add_argument("--read-fraction", type=float, default=0.5)
    sv.add_argument("--delete-fraction", type=float, default=0.05)
    sv.add_argument("--theta", type=float, default=0.99,
                    help="Zipfian key skew (0 = uniform)")
    sv.add_argument("--target-batch", type=int, default=128,
                    help="flush when this many requests are pending")
    sv.add_argument("--linger", type=float, default=20e-6,
                    help="flush when the oldest request waited this long (s)")
    sv.add_argument("--json", action="store_true",
                    help="print the canonical JSON summary instead of text")
    wl = sub.add_parser("workload", help="run one workload under one mode")
    wl.add_argument("name")
    wl.add_argument("--mode", default="gpm", help=mode_help)
    tr = sub.add_parser("trace", help="run one workload recording the event bus")
    tr.add_argument("name")
    tr.add_argument("--mode", default="gpm", help=mode_help)
    tr.add_argument("--out", default="reports",
                    help="directory for the JSONL + Chrome-trace files")
    ck = sub.add_parser(
        "check", help="systematically crash a target at every frontier")
    ck.add_argument("target", nargs="?", default=None,
                    help="prefix_sum | kvs | checkpointed-dnn | hashmap | "
                         "ring | broken-demo (omit with --litmus)")
    ck.add_argument("--mode", default="gpm",
                    help="persistence mode to explore (default: gpm)")
    ck.add_argument("--max-frontiers", type=int, default=128,
                    help="exploration budget; 0 explores every frontier")
    ck.add_argument("--window-samples", type=int, default=3,
                    help="thread-count samples per unfenced window")
    ck.add_argument("--jobs", type=int, default=1,
                    help="parallel worker processes")
    ck.add_argument("--frontier", metavar="SPEC",
                    help="replay one crash, e.g. event:17 or threads:113")
    ck.add_argument("--litmus", type=int, metavar="N", default=0,
                    help="fuzz N generated litmus tests across the full "
                         "persistency config matrix")
    ck.add_argument("--seed", type=int, default=0,
                    help="litmus generator seed (same seed, same tests)")
    ck.add_argument("--litmus-replay", metavar="SEED:INDEX",
                    help="re-generate one litmus test and re-judge it "
                         "(with --litmus-config / --frontier / --mutant "
                         "from a failure's reproducer line)")
    ck.add_argument("--litmus-config", metavar="SPEC",
                    help="one matrix point, e.g. strict:window:adr")
    ck.add_argument("--mutant", default=None,
                    help="arm a sentinel mutant during the replay "
                         "(fence-order | epoch-boundary)")
    from .check.litmus import DEFAULT_LITMUS_FRONTIERS

    ck.add_argument("--litmus-frontiers", type=int,
                    default=DEFAULT_LITMUS_FRONTIERS,
                    help="crash-state budget per (test, config) point on "
                         "top of the always-explored ordering frontiers")
    ck.add_argument("--no-corpus", action="store_true",
                    help="skip the seed-corpus pin stage")
    ck.add_argument("--cache-dir", default=None,
                    help="persistent litmus verdict cache directory")
    ck.add_argument("--no-cache", action="store_true",
                    help="do not read or write the persistent cache")
    args = parser.parse_args(argv)
    return {"list": _cmd_list, "run": _cmd_run, "all": _cmd_all,
            "bench": _cmd_bench, "workload": _cmd_workload,
            "trace": _cmd_trace, "check": _cmd_check,
            "serve": _cmd_serve}[args.command](args)


if __name__ == "__main__":
    sys.exit(main())

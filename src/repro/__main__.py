"""Command-line entry point: ``python -m repro <command>``.

Commands
--------

``list``
    Show every reproducible artefact (paper figures/tables, ablations,
    extensions).
``run <name> [...]``
    Regenerate one or more artefacts by name, print them, and save
    ``reports/out_<name>.txt``.
``all``
    Regenerate everything (a few minutes).
``workload <name> [--mode MODE]``
    Run one GPMbench workload under one persistence mode and report its
    simulated time and traffic.
``trace <name> [--mode MODE] [--out DIR]``
    Run one workload while recording the hardware event bus; saves a
    replayable JSONL event log and a Chrome-trace JSON (load in
    ``chrome://tracing`` or Perfetto).  See ``docs/observability.md``.
"""

from __future__ import annotations

import argparse
import os
import sys


def _cmd_list(_args) -> int:
    from .experiments import ALL_EXPERIMENTS
    from .workloads import gpmbench_suite

    print("artefacts (python -m repro run <name>):")
    for name in ALL_EXPERIMENTS:
        print(f"  {name}")
    print("\nworkloads (python -m repro workload <name> [--mode m]):")
    for w in gpmbench_suite():
        print(f"  {w.name}")
    return 0


def _resolve(name: str):
    from .experiments import ALL_EXPERIMENTS

    if name in ALL_EXPERIMENTS:
        return ALL_EXPERIMENTS[name]
    raise SystemExit(f"unknown artefact {name!r}; see `python -m repro list`")


def _cmd_run(args) -> int:
    for name in args.names:
        table = _resolve(name)()
        path = table.save(args.reports)
        print(table.to_text())
        if args.bars:
            try:
                print(table.to_bars(args.bars, log=args.log))
            except ValueError:
                print(f"(column {args.bars!r} not in {name})")
        print(f"saved {path}\n")
    return 0


def _cmd_all(args) -> int:
    from .experiments import run_all

    run_all(directory=args.reports, verbose=True)
    return 0


def _find_workload(name: str):
    from .workloads import gpmbench_suite

    for w in gpmbench_suite():
        if w.name.lower() == name.lower():
            return w
    known = ", ".join(w.name for w in gpmbench_suite())
    raise SystemExit(f"unknown workload {name!r}; one of: {known}")


def _cmd_workload(args) -> int:
    from .workloads import Mode

    mode = Mode(args.mode)
    target = _find_workload(args.name)
    result = target.run(mode)
    print(f"{target.name} under {mode.value}:")
    print(f"  simulated time     {result.elapsed * 1e3:.4f} ms")
    print(f"  PM bytes persisted {result.bytes_persisted:,}")
    print(f"  PCIe write BW      {result.pcie_write_bandwidth / 1e9:.2f} GB/s")
    for key, value in result.extras.items():
        print(f"  {key:<18} {value}")
    return 0


def _cmd_trace(args) -> int:
    from .sim.events import stats_from_events
    from .sim.trace import record_events
    from .workloads import Mode

    mode = Mode(args.mode)
    target = _find_workload(args.name)
    with record_events() as recorder:
        result = target.run(mode)
    os.makedirs(args.out, exist_ok=True)
    base = os.path.join(args.out, f"trace_{target.name.lower()}_{mode.value}")
    jsonl_path = recorder.save_jsonl(base + ".jsonl")
    chrome_path = recorder.save_chrome_trace(base + ".json")
    replayed = stats_from_events(recorder.records)
    print(f"{target.name} under {mode.value}: {len(recorder)} events, "
          f"{result.elapsed * 1e3:.4f} ms simulated")
    for etype, count in sorted(recorder.counts().items()):
        print(f"  {etype:<20} {count}")
    print(f"  replayed fences    {replayed.system_fences}")
    print(f"  replayed PM bytes  {replayed.pm_bytes_written:,}")
    print(f"saved {jsonl_path}")
    print(f"saved {chrome_path}")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="GPM (ASPLOS '22) simulated reproduction",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list artefacts and workloads")
    run = sub.add_parser("run", help="regenerate named artefacts")
    run.add_argument("names", nargs="+")
    run.add_argument("--reports", default="reports")
    run.add_argument("--bars", metavar="COLUMN",
                     help="also render an ASCII bar chart of COLUMN")
    run.add_argument("--log", action="store_true",
                     help="log-scale the bar chart")
    allp = sub.add_parser("all", help="regenerate everything")
    allp.add_argument("--reports", default="reports")
    wl = sub.add_parser("workload", help="run one workload under one mode")
    wl.add_argument("name")
    wl.add_argument("--mode", default="gpm",
                    help="gpm | gpm-ndp | gpm-eadr | cap-fs | cap-mm | "
                         "cap-eadr | gpufs")
    tr = sub.add_parser("trace", help="run one workload recording the event bus")
    tr.add_argument("name")
    tr.add_argument("--mode", default="gpm",
                    help="gpm | gpm-ndp | gpm-eadr | cap-fs | cap-mm | "
                         "cap-eadr | gpufs")
    tr.add_argument("--out", default="reports",
                    help="directory for the JSONL + Chrome-trace files")
    args = parser.parse_args(argv)
    return {"list": _cmd_list, "run": _cmd_run, "all": _cmd_all,
            "workload": _cmd_workload, "trace": _cmd_trace}[args.command](args)


if __name__ == "__main__":
    sys.exit(main())

"""Top-level composition: one simulated GPM platform.

:class:`System` wires the machine substrate to the GPU engine and the host
software stack.  It is the object applications hold; everything else hangs
off it (``system.gpu``, ``system.cpu``, ``system.fs``, ``system.machine``).
"""

from __future__ import annotations

from .gpu.device import Gpu
from .host.cpu import Cpu
from .host.dma import DmaEngine
from .host.filesystem import DaxFilesystem
from .sim.config import DEFAULT_CONFIG, SystemConfig
from .sim.machine import Machine


class System:
    """A Xeon + Optane + GPU platform ready to run workloads.

    Parameters
    ----------
    config:
        Hardware constants; defaults model the paper's Table 3 testbed.
    eadr:
        Deprecated shim for ``persistency="eadr"``: model the projected
        eADR platform of Section 6.1 ("Analyzing GPM's performance and
        eADR"), where the LLC joins the persistence domain so persistence
        no longer requires flushing or disabling DDIO.
    persistency:
        The machine's :class:`~repro.sim.persistency.PersistencyModel` - a
        registered model name (``"strict"``, ``"eadr"``, ``"epoch"``,
        ``"relaxed"``, ``"adaptive"``), a model instance, or ``None`` for
        the default (``strict``, or ``eadr`` when ``eadr=True``).
    """

    def __init__(self, config: SystemConfig = DEFAULT_CONFIG, eadr: bool = False,
                 persistency=None) -> None:
        self.machine = Machine(config, eadr=eadr, persistency=persistency)
        self.gpu = Gpu(self.machine)
        self.cpu = Cpu(self.machine)
        self.fs = DaxFilesystem(self.machine)
        self.dma = DmaEngine(self.machine)

    @property
    def config(self) -> SystemConfig:
        return self.machine.config

    @property
    def clock(self):
        return self.machine.clock

    @property
    def stats(self):
        return self.machine.stats

    @property
    def events(self):
        """The machine's hardware event bus (see :mod:`repro.sim.events`)."""
        return self.machine.events

    @property
    def eadr(self) -> bool:
        return self.machine.eadr

    @property
    def persistency(self):
        """The machine's persistency model (see :mod:`repro.sim.persistency`)."""
        return self.machine.persistency

    def crash(self) -> None:
        """Power-fail the whole platform (volatile state is lost)."""
        self.machine.crash()

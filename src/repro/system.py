"""Top-level composition: one simulated GPM platform.

:class:`System` wires the machine substrate to the GPU engine and the host
software stack.  It is the object applications hold; everything else hangs
off it (``system.gpu``, ``system.cpu``, ``system.fs``, ``system.machine``).
"""

from __future__ import annotations

from .gpu.device import Gpu
from .host.cpu import Cpu
from .host.dma import DmaEngine
from .host.filesystem import DaxFilesystem
from .sim.config import DEFAULT_CONFIG, SystemConfig
from .sim.machine import Machine


class System:
    """A Xeon + Optane + GPU platform ready to run workloads.

    Parameters
    ----------
    config:
        Hardware constants; defaults model the paper's Table 3 testbed.
    eadr:
        Model the projected eADR platform of Section 6.1 ("Analyzing GPM's
        performance and eADR"): the LLC joins the persistence domain, so
        persistence no longer requires flushing or disabling DDIO.
    """

    def __init__(self, config: SystemConfig = DEFAULT_CONFIG, eadr: bool = False) -> None:
        self.machine = Machine(config, eadr=eadr)
        self.gpu = Gpu(self.machine)
        self.cpu = Cpu(self.machine)
        self.fs = DaxFilesystem(self.machine)
        self.dma = DmaEngine(self.machine)

    @property
    def config(self) -> SystemConfig:
        return self.machine.config

    @property
    def clock(self):
        return self.machine.clock

    @property
    def stats(self):
        return self.machine.stats

    @property
    def events(self):
        """The machine's hardware event bus (see :mod:`repro.sim.events`)."""
        return self.machine.events

    @property
    def eadr(self) -> bool:
        return self.machine.eadr

    def crash(self) -> None:
        """Power-fail the whole platform (volatile state is lost)."""
        self.machine.crash()

"""Extensions beyond the paper's evaluation.

The paper's Section 3.3 sketches how GPM's design principles extend to
emerging hardware; this package builds those sketches out:

* :mod:`repro.extensions.cxl` - GPM over CXL 2.0-attached PM, and the
  Global Persistent Flush (GPF) alternative the paper argues is
  insufficient for fine-grained in-kernel persistence.
* :mod:`repro.extensions.redo` - a redo-logging variant of libGPM's undo
  transactions, trading deferred in-place writes for sequential-only
  commit latency.
* :mod:`repro.extensions.delta_checkpoint` - incremental checkpointing
  with per-chunk double buffering (the CheckFreq direction the paper
  cites).
"""

from .cxl import CXL_PROFILE, GpfEngine, cxl_config, cxl_projection, gpf_inadequacy_demo
from .delta_checkpoint import DeltaCheckpoint, delta_vs_full
from .redo import REDO_ENTRY_BYTES, RedoTransaction, redo_vs_undo

__all__ = ["CXL_PROFILE", "DeltaCheckpoint", "GpfEngine", "REDO_ENTRY_BYTES",
           "RedoTransaction", "delta_vs_full",
           "cxl_config", "cxl_projection", "gpf_inadequacy_demo",
           "redo_vs_undo"]

"""Redo logging for GPM - the other half of the design space.

libGPM implements write-ahead **undo** logging (Section 5.2): old values
are logged, then homes are updated in place, so every transaction pays the
random-access in-place writes *inside* its critical path - on Optane the
most expensive pattern there is (0.72 GB/s).

A **redo** log inverts the tradeoff: the kernel stages only *new* values
into the log (HCL's coalesced, sequential layout - the media's fast path),
the commit point is one persisted flag, and the scattered in-place writes
happen *after* commit, off the transaction's critical path.  Recovery
replays the log (idempotent) instead of undoing it.

:func:`redo_vs_undo` measures both schemes on the same scattered-update
workload: redo's *commit latency* (client-visible durability) wins by the
sequential/random media ratio; total time converges once the deferred
apply is counted.
"""

from __future__ import annotations

import numpy as np

from ..core.errors import LogEmpty
from ..core.hcl import HclLog
from ..core.logging import gpmlog_clear, gpmlog_create_hcl, gpmlog_insert, gpmlog_read
from ..core.persist import persist_window
from ..core.transactions import TransactionFlag
from ..experiments.results import ExperimentTable
from ..gpu.memory import DeviceArray
from ..system import System

#: redo entry: [home element index u64, new value u64]
REDO_ENTRY_BYTES = 16


class RedoTransaction:
    """A batched redo-logged transaction over a PM-resident u64 array."""

    def __init__(self, system: System, path_prefix: str, blocks: int,
                 threads_per_block: int, capacity_entries_per_thread: int = 8):
        self.system = system
        self.blocks = blocks
        self.threads_per_block = threads_per_block
        capacity = (blocks * threads_per_block
                    * capacity_entries_per_thread * REDO_ENTRY_BYTES * 2
                    + (1 << 16))
        self.log: HclLog = gpmlog_create_hcl(system, f"{path_prefix}.redo",
                                             capacity, blocks, threads_per_block)
        self.flag = TransactionFlag.create(system, f"{path_prefix}.redoflag")

    # -- device API -----------------------------------------------------------

    def stage(self, ctx, home_index: int, value: int) -> None:
        """Stage one update (coalesced sequential log write, no home write)."""
        entry = np.array([home_index, value], dtype=np.uint64)
        gpmlog_insert(ctx, self.log, entry)

    # -- host API ----------------------------------------------------------------

    def commit(self) -> float:
        """Durably commit: after this returns, the updates WILL apply.

        Cost: one flag persist - the staged entries are already durable.
        Returns elapsed seconds; the caller later runs :meth:`apply`.
        """
        start = self.system.machine.clock.now
        self.flag.begin()  # semantics: "committed, apply pending"
        return self.system.machine.clock.now - start

    def apply(self, table: DeviceArray) -> float:
        """Replay the staged updates into their home locations (idempotent)."""
        start = self.system.machine.clock.now
        with persist_window(self.system):
            self.system.gpu.launch(_apply_kernel, self.blocks,
                                   self.threads_per_block, (self.log, table))
        self.flag.commit()
        gpmlog_clear(self.log)
        return self.system.machine.clock.now - start

    def recover(self, table: DeviceArray) -> float:
        """Post-crash: if committed-but-unapplied, replay; else discard."""
        start = self.system.machine.clock.now
        if self.flag.active:
            with persist_window(self.system):
                self.system.gpu.launch(_apply_kernel, self.blocks,
                                       self.threads_per_block,
                                       (self.log, table))
            self.flag.commit()
        gpmlog_clear(self.log)
        return self.system.machine.clock.now - start


def _apply_kernel(ctx, log, table):
    """Each thread replays every entry it staged."""
    count = log.entry_count(ctx, REDO_ENTRY_BYTES)
    for i in range(count):
        entry = _read_entry(ctx, log, i)
        table.write(ctx, int(entry[0]), entry[1])
    if count:
        ctx.persist()


def _read_entry(ctx, log: HclLog, index: int) -> np.ndarray:
    warp_flat, lane, slot = log._identity(ctx)
    n = REDO_ENTRY_BYTES // 4
    chunks = np.empty(n, dtype=np.uint32)
    for c in range(n):
        chunks[c] = ctx.load(log.gpm.region,
                             log.chunk_offset(warp_flat, lane, index * n + c),
                             np.uint32)
    return chunks.view(np.uint64)


def _stage_kernel(ctx, tx, row_indices, values, n_ops):
    i = ctx.global_id
    if i >= n_ops:
        return
    tx.stage(ctx, int(row_indices.read(ctx, i)), int(values.read(ctx, i)))


def _undo_update_kernel(ctx, table, row_indices, values, log, n_ops):
    i = ctx.global_id
    if i >= n_ops:
        return
    idx = int(row_indices.read(ctx, i))
    old = table.read(ctx, idx)
    gpmlog_insert(ctx, log, np.array([idx, int(old)], dtype=np.uint64))
    table.write(ctx, idx, values.read(ctx, i))
    ctx.persist()


def redo_vs_undo(n_updates: int = 2048, table_elems: int = 262_144,
                 block_dim: int = 128, seed: int = 51) -> ExperimentTable:
    """Scattered updates under undo vs redo logging."""
    table_out = ExperimentTable(
        "redo_vs_undo",
        "Extension: undo vs redo logging for scattered PM updates",
        ["scheme", "commit_latency_us", "total_us"],
    )
    blocks = (n_updates + block_dim - 1) // block_dim
    rng = np.random.default_rng(seed)
    indices = rng.choice(table_elems, size=n_updates, replace=False).astype(np.uint64)
    values = rng.integers(1, 1 << 62, size=n_updates, dtype=np.uint64)

    def setup(system):
        region = system.machine.alloc_pm("redo.table", table_elems * 8)
        table = DeviceArray(region, np.uint64)
        hbm = system.machine.alloc_hbm("redo.batch", n_updates * 16)
        ridx = DeviceArray(hbm, np.uint64, 0, n_updates)
        vals = DeviceArray(hbm, np.uint64, n_updates * 8, n_updates)
        ridx.np[:] = indices
        vals.np[:] = values
        return table, ridx, vals

    # --- undo: in-place + random writes inside the critical path
    system = System()
    table, ridx, vals = setup(system)
    log = gpmlog_create_hcl(system, "/pm/undo.log", 16 << 20, blocks, block_dim)
    t0 = system.clock.now
    with persist_window(system):
        system.gpu.launch(_undo_update_kernel, blocks, block_dim,
                          (table, ridx, vals, log, n_updates))
    undo_commit = system.clock.now - t0
    gpmlog_clear(log)
    undo_total = system.clock.now - t0
    assert np.array_equal(table.np[indices.astype(np.int64)], values)
    table_out.add("undo (libGPM default)", undo_commit * 1e6, undo_total * 1e6)

    # --- redo: sequential staging, flag commit, deferred apply
    system = System()
    table, ridx, vals = setup(system)
    tx = RedoTransaction(system, "/pm/redo", blocks, block_dim)
    t0 = system.clock.now
    with persist_window(system):
        system.gpu.launch(_stage_kernel, blocks, block_dim,
                          (tx, ridx, vals, n_updates))
    commit = tx.commit()
    redo_commit = system.clock.now - t0
    tx.apply(table)
    redo_total = system.clock.now - t0
    assert np.array_equal(table.np[indices.astype(np.int64)], values)
    table_out.add("redo (extension)", redo_commit * 1e6, redo_total * 1e6)
    table_out.notes.append(
        "redo commits after only coalesced sequential log writes; undo pays "
        "the random in-place stores before it is durable"
    )
    return table_out

"""GPM over CXL-attached persistent memory (Section 3.3's projection).

The paper: *"CXL 2.0 provides support for PM... a Global Persistent Flush
(GPF) instruction that allows PM-aware applications to flush their data to
the CXL-attached PM. However, GPF can only be issued from the host CPU and
it flushes all persistent data from all device caches. In short,
CXL-attached PM alone cannot enable fine-grain, in-kernel persistence from
a GPU. We believe the design principles of GPM can be extended to
CXL-attached PM."*

This module builds out both halves of that claim:

* :func:`cxl_config` - the same simulated machine with the PCIe 3.0 link
  replaced by a CXL 2.0 x16 port: ~2x the bandwidth, roughly a third of
  the persist round-trip (coherent write-ordering instead of posted-write
  + completion), a deeper outstanding-transaction window, and cheaper
  transfer initiation.  Running GPM unchanged on this machine projects
  "GPM-CXL".
* :class:`GpfEngine` - the GPF alternative: kernels store coherently with
  **no fences**; at a host-chosen point, GPF flushes *every* dirty line of
  *every* device cache.  It persists the same bytes but (a) serialises the
  whole flush on the host and (b) offers no intra-kernel ordering, so a
  mid-kernel crash leaves no recoverable structure - which
  :func:`cxl_projection` demonstrates alongside the performance numbers.
"""

from __future__ import annotations

from ..experiments.results import ExperimentTable
from ..sim.config import DEFAULT_CONFIG, SystemConfig
from ..system import System
from ..workloads import GpKvs, GraphBfs, Mode
from ..workloads.dnn import DnnTraining

#: CXL 2.0 x16 link parameters replacing the PCIe 3.0 x16 defaults.
CXL_PROFILE = dict(
    #: x16 CXL 2.0 (32 GT/s) with protocol efficiency ~0.8
    pcie_bw=25.0e9,
    #: a coherent store's global-ordering point is reached in roughly a
    #: third of a posted-write+completion round trip
    pcie_rtt_s=0.45e-6,
    #: CXL.mem allows deeper request windows than the PCIe posted queue
    pcie_max_outstanding=128,
    #: no driver-mediated DMA setup; transfers are load/store streams
    dma_init_s=4e-6,
)


def cxl_config(base: SystemConfig = DEFAULT_CONFIG) -> SystemConfig:
    """The simulated machine with a CXL 2.0 port in place of PCIe 3.0."""
    return base.with_overrides(**CXL_PROFILE)


class GpfEngine:
    """Global Persistent Flush: host-issued, whole-cache, coarse.

    ``gpf()`` models the CXL 2.0 GPF flow: a host broadcast reaches every
    device, which drains all dirty lines of PM-backed data to the media.
    There is no way to restrict it to a range and no way to issue it from
    a kernel - the two properties GPM's fine-grained persistence needs.
    """

    #: host broadcast + device acknowledgement latency
    GPF_BROADCAST_S = 8e-6

    def __init__(self, system: System) -> None:
        self.system = system

    def gpf(self) -> float:
        """Flush all device-cached persistent data; returns elapsed seconds."""
        machine = self.system.machine
        start = machine.clock.now
        machine.clock.advance(self.GPF_BROADCAST_S)
        media = 0.0
        for region in machine.regions:
            if region.is_persistent:
                media += machine.llc.flush_region(region)
        machine.clock.advance(media)
        return machine.clock.now - start


def cxl_projection() -> ExperimentTable:
    """Project GPM onto CXL-attached PM (and contrast with GPF-only)."""
    table = ExperimentTable(
        "cxl_projection",
        "Extension: GPM projected onto CXL 2.0-attached PM (speedup over PCIe GPM)",
        ["workload", "gpm_pcie_ms", "gpm_cxl_ms", "cxl_speedup"],
    )
    for make in (GpKvs, DnnTraining, GraphBfs):
        pcie = make().run(Mode.GPM).elapsed
        cxl = make().run(Mode.GPM, system=System(cxl_config())).elapsed
        name = make().name
        table.add(name, pcie * 1e3, cxl * 1e3, pcie / cxl)
    # The Fig. 3(b)-style persist-scaling microbenchmark is where the link
    # matters: the plateau is set by outstanding transactions x payload /
    # round trip, until the Optane media caps it.
    from ..experiments.figure3 import gpu_persist_throughput

    pcie_plateau = gpu_persist_throughput(4096)
    cxl_plateau = gpu_persist_throughput(4096, config=cxl_config())
    table.add("persist plateau (GB/s)", pcie_plateau / 1e9, cxl_plateau / 1e9,
              cxl_plateau / pcie_plateau)
    table.notes.append(
        "whole-workload gains are small because the paper-calibrated Optane "
        "media, not the link, bounds GPM's persist paths; the persist-"
        "scaling plateau however roughly doubles (until the media caps it), "
        "and GPF remains unable to provide in-kernel fine-grained "
        "persistence (gpf_inadequacy_demo)"
    )
    return table


def gpf_inadequacy_demo() -> dict:
    """Why GPF alone cannot replace GPM (the paper's §3.3 argument).

    Runs a gpKVS batch with coherent stores and *only* a host GPF at the
    end, crashes just before the GPF, and shows nothing survived - there
    is no in-kernel commit point, so fine-grained recoverability is
    impossible no matter how fast the link is.  Returns the evidence.
    """
    import numpy as np

    from ..workloads import KvsConfig, make_system
    from ..workloads.kvs import set_kernel
    from ..workloads.base import ModeDriver
    from ..gpu.memory import DeviceArray

    system = System(cxl_config())
    driver = ModeDriver(system, Mode.GPM_NDP)  # coherent stores, no windows
    cfg = KvsConfig(n_sets=512, ways=8, batch_size=256, block_dim=128)
    n_pairs = cfg.n_sets * cfg.ways
    buf = driver.buffer("/pm/gpf.kvs", n_pairs * 16)
    keys = buf.array(np.uint64, 0, n_pairs)
    values = buf.array(np.uint64, n_pairs * 8, n_pairs)
    mirror = system.machine.alloc_hbm("gpf.mirror", n_pairs * 16)
    mkeys = DeviceArray(mirror, np.uint64, 0, n_pairs)
    mvalues = DeviceArray(mirror, np.uint64, n_pairs * 8, n_pairs)
    hbm = system.machine.alloc_hbm("gpf.batch", cfg.batch_size * 16)
    bk = DeviceArray(hbm, np.uint64, 0, cfg.batch_size)
    bv = DeviceArray(hbm, np.uint64, cfg.batch_size * 8, cfg.batch_size)
    rng = np.random.default_rng(3)
    bk.np[:] = rng.integers(1, n_pairs * 4, size=cfg.batch_size, dtype=np.uint64)
    bv.np[:] = rng.integers(1, 1 << 63, size=cfg.batch_size, dtype=np.uint64)
    touched: list[int] = []
    batch_keys = bk.np.copy()
    batch_vals = bv.np.copy()
    system.gpu.launch(set_kernel, 2, cfg.block_dim,
                      (keys, values, mkeys, mvalues, bk, bv, cfg.batch_size,
                       cfg.n_sets, cfg.ways, None, touched))
    visible_before = int(np.count_nonzero(keys.np))
    # Crash BEFORE the host got around to the GPF...
    system.crash()
    survived_without_gpf = int(np.count_nonzero(keys.np))
    # ...versus a run where the GPF did happen in time.
    gpf_time = None
    system2 = System(cxl_config())
    driver2 = ModeDriver(system2, Mode.GPM_NDP)
    buf2 = driver2.buffer("/pm/gpf.kvs", n_pairs * 16)
    keys2 = buf2.array(np.uint64, 0, n_pairs)
    values2 = buf2.array(np.uint64, n_pairs * 8, n_pairs)
    mirror2 = system2.machine.alloc_hbm("gpf.mirror", n_pairs * 16)
    hbm2 = system2.machine.alloc_hbm("gpf.batch", cfg.batch_size * 16)
    mk2 = DeviceArray(mirror2, np.uint64, 0, n_pairs)
    mv2 = DeviceArray(mirror2, np.uint64, n_pairs * 8, n_pairs)
    bk2 = DeviceArray(hbm2, np.uint64, 0, cfg.batch_size)
    bv2 = DeviceArray(hbm2, np.uint64, cfg.batch_size * 8, cfg.batch_size)
    bk2.np[:] = batch_keys
    bv2.np[:] = batch_vals
    system2.gpu.launch(set_kernel, 2, cfg.block_dim,
                       (keys2, values2, mk2, mv2, bk2, bv2, cfg.batch_size,
                        cfg.n_sets, cfg.ways, None, []))
    gpf_time = GpfEngine(system2).gpf()
    system2.crash()
    survived_with_gpf = int(np.count_nonzero(keys2.np))
    return {
        "visible_before_crash": visible_before,
        "survived_without_gpf": survived_without_gpf,
        "survived_with_gpf": survived_with_gpf,
        "gpf_seconds": gpf_time,
    }

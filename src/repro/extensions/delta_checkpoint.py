"""Incremental checkpointing: persist only what changed.

libGPM's ``gpmcp`` streams the whole registered payload every checkpoint
(Section 5.3).  For workloads that mutate a small, shifting fraction of
their state between checkpoints, most of that stream is redundant - the
observation behind CheckFreq [63] and the incremental-checkpoint
literature the paper cites ([20, 23, 46]).

:class:`DeltaCheckpoint` divides the payload into chunks and keeps **two
PM slots per chunk**, each tagged with the epoch that wrote it.  A
checkpoint at epoch *e*:

1. hashes the device payload per chunk and selects the dirty ones;
2. for each dirty chunk, streams the data into the slot holding the
   *older* tag, persists it, then persists the slot's tag ``= e``;
3. finally persists the master epoch ``= e`` - the commit point.

Restore at master epoch *E* picks, per chunk, the slot with the newest tag
``<= E``; a crash mid-checkpoint therefore reads as epoch *E-1* exactly,
chunk by chunk - per-chunk double buffering gives the same atomicity
``gpmcp`` gets from whole-group double buffering, at delta cost.

:func:`delta_vs_full` measures both against a payload whose update
fraction varies.
"""

from __future__ import annotations

import hashlib

import numpy as np

from ..core.errors import CheckpointError
from ..core.mapping import GpmRegion, gpm_map
from ..core.persist import gpm_persist_begin, gpm_persist_end
from ..experiments.results import ExperimentTable
from ..gpu.memory import DeviceArray
from ..sim.events import KernelLaunch, SystemFence
from ..system import System

_MAGIC = 0x44435031  # "DCP1"
_HEADER_BYTES = 128
#: header words: magic, chunk_bytes, n_chunks, master_epoch


class DeltaCheckpoint:
    """A chunked, per-chunk double-buffered incremental checkpoint."""

    def __init__(self, system, path: str) -> None:
        self.system = system
        self.gpm: GpmRegion = gpm_map(system, path)
        header = self.gpm.view(np.uint32, 0, 4)
        if int(header[0]) != _MAGIC:
            raise CheckpointError(f"{path!r} is not a DeltaCheckpoint")
        self.chunk_bytes = int(header[1])
        self.n_chunks = int(header[2])
        self._tags_off = _HEADER_BYTES
        self._data_off = _HEADER_BYTES + self.n_chunks * 2 * 4
        self._data_off += (-self._data_off) % 128
        #: last-seen chunk digests, for dirty detection (volatile; a crash
        #: just means the next checkpoint re-hashes everything).
        self._digests: list[bytes | None] = [None] * self.n_chunks

    @classmethod
    def create(cls, system, path: str, payload_bytes: int,
               chunk_bytes: int = 4096) -> "DeltaCheckpoint":
        if payload_bytes <= 0 or chunk_bytes <= 0:
            raise CheckpointError("payload and chunk sizes must be positive")
        n_chunks = -(-payload_bytes // chunk_bytes)
        tags = n_chunks * 2 * 4
        data_off = _HEADER_BYTES + tags
        data_off += (-data_off) % 128
        size = data_off + 2 * n_chunks * chunk_bytes
        region = gpm_map(system, path, size, create=True)
        header = region.view(np.uint32, 0, 4)
        header[0] = _MAGIC
        header[1] = chunk_bytes
        header[2] = n_chunks
        header[3] = 0  # master epoch: nothing committed yet
        region.region.persist_range(0, data_off)
        return cls(system, path)

    # -- layout ------------------------------------------------------------

    def _tag(self, chunk: int, slot: int) -> int:
        view = self.gpm.view(np.uint32, self._tags_off, self.n_chunks * 2)
        return int(view[chunk * 2 + slot])

    def _slot_off(self, chunk: int, slot: int) -> int:
        return self._data_off + (chunk * 2 + slot) * self.chunk_bytes

    @property
    def master_epoch(self) -> int:
        return int(self.gpm.view(np.uint32, 12, 1)[0])

    # -- checkpoint ------------------------------------------------------------

    def checkpoint(self, payload: DeviceArray) -> tuple[float, int]:
        """Persist the payload's dirty chunks; returns (seconds, n_dirty)."""
        if payload.nbytes > self.n_chunks * self.chunk_bytes:
            raise CheckpointError("payload exceeds checkpoint capacity")
        system = self.system
        start = system.machine.clock.now
        epoch = self.master_epoch + 1
        raw = payload.np.view(np.uint8)
        gpm_persist_begin(system)
        try:
            # pass 1: dirty detection + slot selection
            tags = self.gpm.view(np.uint32, self._tags_off, self.n_chunks * 2)
            plan = []  # (payload lo, payload hi, dst offset, tag offset)
            for chunk in range(self.n_chunks):
                lo = chunk * self.chunk_bytes
                if lo >= raw.size:
                    break
                hi = min(lo + self.chunk_bytes, raw.size)
                # blake2b reads the slice through the buffer protocol; no
                # intermediate bytes object.
                digest = hashlib.blake2b(raw[lo:hi], digest_size=16).digest()
                if digest == self._digests[chunk]:
                    continue
                self._digests[chunk] = digest
                slot = 0 if tags[chunk * 2] <= tags[chunk * 2 + 1] else 1
                plan.append((lo, hi, self._slot_off(chunk, slot),
                             self._tags_off + (chunk * 2 + slot) * 4))
            dirty = len(plan)
            if dirty:
                # pass 2: ONE copy kernel streams every dirty chunk
                region = self.gpm.region
                for lo, hi, dst, _ in plan:
                    region.write_from(dst, raw[lo:hi])
                starts = np.array([p[2] for p in plan], dtype=np.int64)
                lengths = np.array([p[1] - p[0] for p in plan], dtype=np.int64)
                nbytes = int(lengths.sum())
                pcie_t = system.machine.pcie.stream_write_time(nbytes)
                media_t = system.machine.io_write_arrival(region, starts, lengths)
                system.machine.events.emit(KernelLaunch(kind="delta_copy"))
                system.machine.events.emit(SystemFence())
                system.machine.clock.advance(
                    system.config.gpu_kernel_launch_s
                    + max(pcie_t, media_t)
                    + system.config.pcie_rtt_s
                )
                # pass 3: ONE kernel persists the chunk tags
                system.gpu.scatter_store_bulk(
                    region, np.array([p[3] for p in plan], dtype=np.int64),
                    np.full(dirty, epoch, dtype=np.uint32), item_bytes=4,
                )
            # commit
            system.gpu.store_and_persist_value(self.gpm.region, 12, epoch,
                                               np.uint32)
        finally:
            gpm_persist_end(system)
        return system.machine.clock.now - start, dirty

    # -- restore ------------------------------------------------------------------

    def restore(self, payload: DeviceArray) -> float:
        """Reassemble the last committed epoch into ``payload``."""
        system = self.system
        start = system.machine.clock.now
        committed = self.master_epoch
        if committed == 0:
            raise CheckpointError("nothing has been checkpointed yet")
        raw_size = payload.nbytes
        tag_view = self.gpm.view(np.uint32, self._tags_off, self.n_chunks * 2)
        for chunk in range(self.n_chunks):
            lo = chunk * self.chunk_bytes
            if lo >= raw_size:
                break
            hi = min(lo + self.chunk_bytes, raw_size)
            tags = [int(tag_view[chunk * 2 + s]) for s in (0, 1)]
            valid = [t for t in tags if 0 < t <= committed]
            if not valid:
                continue  # chunk never written: stays as-is
            slot = tags.index(max(valid))
            system.gpu.stream_copy(
                payload.region, payload.offset + lo,
                self.gpm.region, self._slot_off(chunk, slot), hi - lo,
                persist=False,
            )
        # restoring invalidates the dirty cache (payload may now differ)
        self._digests = [None] * self.n_chunks
        return system.machine.clock.now - start


def delta_vs_full(payload_kb: int = 1024, chunk_bytes: int = 4096,
                  checkpoints: int = 4) -> ExperimentTable:
    """Delta vs full checkpoint cost as the dirty fraction varies."""
    from ..core.checkpoint import gpmcp_create, gpmcp_register

    table = ExperimentTable(
        "delta_checkpoint",
        "Extension: incremental vs full checkpointing (1 MB payload)",
        ["dirty_fraction", "full_ms", "delta_ms", "delta_speedup"],
    )
    nbytes = payload_kb * 1024
    rng = np.random.default_rng(5)
    for fraction in (0.01, 0.1, 0.5, 1.0):
        # full gpmcp
        system = System()
        hbm = system.machine.alloc_hbm("w", nbytes)
        payload = DeviceArray(hbm, np.float32, 0, nbytes // 4)
        cp = gpmcp_create(system, "/pm/full", nbytes, 1, 1)
        gpmcp_register(cp, payload)
        full = 0.0
        for _ in range(checkpoints):
            _mutate(payload, fraction, chunk_bytes, rng)
            full += cp.checkpoint(0)
        # delta
        system = System()
        hbm = system.machine.alloc_hbm("w", nbytes)
        payload = DeviceArray(hbm, np.float32, 0, nbytes // 4)
        dcp = DeltaCheckpoint.create(system, "/pm/delta", nbytes, chunk_bytes)
        dcp.checkpoint(payload)  # epoch 1: everything
        delta = 0.0
        for _ in range(checkpoints):
            _mutate(payload, fraction, chunk_bytes, rng)
            t, _ = dcp.checkpoint(payload)
            delta += t
        table.add(fraction, full * 1e3, delta * 1e3, full / delta)
    table.notes.append("per-chunk double buffering keeps the gpmcp "
                       "atomicity guarantee at delta cost; hashing is "
                       "host-side and uncharged (a real system would track "
                       "dirtiness via write bitmaps)")
    return table


def _mutate(payload: DeviceArray, fraction: float, chunk_bytes: int,
            rng: np.random.Generator) -> None:
    n_chunks = -(-payload.nbytes // chunk_bytes)
    n_dirty = max(1, int(n_chunks * fraction))
    chosen = rng.choice(n_chunks, size=n_dirty, replace=False)
    words = payload.np
    per_chunk = chunk_bytes // 4
    for c in chosen.tolist():
        lo = c * per_chunk
        hi = min(lo + per_chunk, words.size)
        words[lo:hi] = rng.random(hi - lo).astype(np.float32)

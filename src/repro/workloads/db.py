"""gpDB: transactional batched INSERT/UPDATE on a GPU-accelerated database.

Section 4.1: the Virginian GPU database [6] extended with libGPM write-ahead
logging so the GPU can execute *data-modifying* queries against a
PM-resident relational table - something today's GPU databases avoid
because they cannot persist results from the kernel.

The table is row-major, 64-byte rows of eight u64 columns, with a persisted
row count as metadata.

* **INSERT** (gpDB (I)): each thread appends one full row at the end of the
  table and persists it; only the table size is logged (one conventional-log
  entry by thread 0), since new rows past the old count are invisible until
  the count is durably bumped.  CAP can restrict its transfer to the
  appended range (contiguous, host-known), so its write amplification is
  barely above 1 (Table 4: 1.27x).
* **UPDATE** (gpDB (U)): each thread updates two columns of a *scattered*
  row whose index is computed in-kernel ("known only upon computation");
  the old row is HCL-logged first.  CAP must persist the whole table -
  Table 4's ~20x write amplification.

Recovery: clear transaction flag -> truncate logs; set flag -> a recovery
kernel undoes updates row-by-row from the HCL log and the insert metadata
log restores the old row count.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.errors import LogEmpty
from ..core.hcl import HclLog, entry_chunks
from ..core.logging import (
    gpmlog_clear,
    gpmlog_create_conv,
    gpmlog_create_hcl,
    gpmlog_insert,
    gpmlog_read,
    gpmlog_remove,
)
from ..core.transactions import TransactionFlag
from ..gpu.memory import DeviceArray
from ..gpu.warp import scalar_lane, vectorized_for
from .base import Category, Mode, ModeDriver, RunResult, make_system, measure
from .kvs import hash64

ROW_COLUMNS = 8
ROW_BYTES = ROW_COLUMNS * 8
#: Table metadata: row count in the first 128-byte line.
_META_BYTES = 128


# ---------------------------------------------------------------------------
# kernels
# ---------------------------------------------------------------------------


def insert_kernel(ctx, table, base_count, batch_rows, n_ops, meta_log, persist_on):
    """Append one row per thread (Fig. 2-style streaming, coalesced)."""
    i = ctx.global_id
    if i >= n_ops:
        return
    if i == 0 and meta_log is not None:
        # INSERTs only log the table size (Section 6.1, Fig. 11a discussion).
        gpmlog_insert(ctx, meta_log, np.uint64(base_count), partition=0)
    row = batch_rows.read_vec(ctx, i * ROW_COLUMNS, ROW_COLUMNS)
    table.write_vec(ctx, (base_count + i) * ROW_COLUMNS, row)
    if persist_on:
        ctx.persist()


def update_kernel(ctx, table, row_count, batch_seed, n_ops, log, touched, persist_on):
    """Update two columns of a scattered, kernel-computed row."""
    i = ctx.global_id
    if i >= n_ops:
        return
    ctx.charge_ops(8)
    # Scattered but collision-free row selection (Fibonacci stride; the
    # constant is odd, so it is invertible modulo any power-of-two count):
    # batched updates to the *same* row would make undo order-dependent,
    # which real batching layers deduplicate away.
    row = (hash64(batch_seed) + i * 2654435761) % row_count
    old = table.read_vec(ctx, row * ROW_COLUMNS, ROW_COLUMNS)
    if log is not None:
        entry = np.concatenate([[np.uint64(row)], np.asarray(old, dtype=np.uint64)])
        gpmlog_insert(ctx, log, entry)
    new_val = np.uint64(hash64(batch_seed + i) or 1)
    table.write(ctx, row * ROW_COLUMNS + 2, new_val)
    table.write(ctx, row * ROW_COLUMNS + 5, new_val ^ np.uint64(0xFF))
    if persist_on:
        ctx.persist()
    touched.append(row)


def select_kernel(ctx, table, lo, hi, flags, n_rows):
    """Predicate scan: flag rows whose column 1 lies in [lo, hi).

    The paper (Section 4.1): GPU databases "increase throughput of
    business analytics queries by executing primarily SELECT queries" -
    the read path GPM leaves untouched.  Each thread scans one PM-resident
    row; no logging, no persistence.
    """
    i = ctx.global_id
    if i >= n_rows:
        return
    ctx.charge_ops(4)
    value = int(table.read(ctx, i * ROW_COLUMNS + 1))
    flags.write(ctx, i, 1 if lo <= value < hi else 0)


def update_recovery_kernel(ctx, table, log, n_ops):
    """Undo one UPDATE per thread from its HCL entry."""
    i = ctx.global_id
    if i >= n_ops:
        return
    try:
        raw = gpmlog_read(ctx, log, (ROW_COLUMNS + 1) * 8)
    except LogEmpty:
        return
    vals = raw.view(np.uint64)
    row = int(vals[0])
    table.write_vec(ctx, row * ROW_COLUMNS, vals[1:])
    ctx.persist()
    gpmlog_remove(ctx, log, (ROW_COLUMNS + 1) * 8)


# ---------------------------------------------------------------------------
# warp implementations (the scalar bodies above stay the parity reference)
# ---------------------------------------------------------------------------


@vectorized_for(insert_kernel)
def insert_kernel_warp(wctx, table, base_count, batch_rows, n_ops, meta_log,
                       persist_on):
    g = wctx.global_ids
    sel = wctx.active(g < n_ops)
    if sel.size == 0:
        return
    gs = g[sel]
    if meta_log is not None and int(gs[0]) == 0:
        meta_log.insert_warp(wctx,
                             entry_chunks(np.uint64(base_count)).reshape(1, -1),
                             partition=0, lanes=sel[:1])
    rows = batch_rows.read_vec_warp(wctx, gs * ROW_COLUMNS, ROW_COLUMNS,
                                    lanes=sel)
    table.write_vec_warp(wctx, (base_count + gs) * ROW_COLUMNS, rows, lanes=sel)
    if persist_on:
        wctx.persist(sel)


def _update_warp_lanes(wctx, table, batch_seed, log, touched, persist_on,
                       sel, rows, ids):
    """The vector body of one warp's updates over a collision-free lane set."""
    old = table.read_vec_warp(wctx, rows * ROW_COLUMNS, ROW_COLUMNS, lanes=sel)
    if log is not None:
        entries = np.empty((sel.size, ROW_COLUMNS + 1), dtype=np.uint64)
        entries[:, 0] = rows.astype(np.uint64)
        entries[:, 1:] = old.reshape(sel.size, ROW_COLUMNS)
        log.insert_warp(wctx, entries.view(np.uint32), lanes=sel)
    new_vals = np.array([hash64(batch_seed + i) or 1 for i in ids],
                        dtype=np.uint64)
    table.write_warp(wctx, rows * ROW_COLUMNS + 2, new_vals, lanes=sel)
    table.write_warp(wctx, rows * ROW_COLUMNS + 5,
                     new_vals ^ np.uint64(0xFF), lanes=sel)
    if persist_on:
        wctx.persist(sel)
    touched.extend(int(r) for r in rows)


@vectorized_for(update_kernel)
def update_kernel_warp(wctx, table, row_count, batch_seed, n_ops, log, touched,
                       persist_on):
    g = wctx.global_ids
    sel = wctx.active(g < n_ops)
    k = sel.size
    if k == 0:
        return
    wctx.charge_ops(8 * k)
    # Python-int arithmetic, exactly as the scalar body computes it.
    h = hash64(batch_seed)
    ids = [int(i) for i in g[sel]]
    rows = np.array([(h + i * 2654435761) % row_count for i in ids],
                    dtype=np.int64)
    if np.unique(rows).size != k:
        # Intra-warp row collision (impossible for power-of-two row counts,
        # see the scalar body): a batched old-row read would miss the
        # earlier lane's write, so fall back to lane-at-a-time, which is
        # scalar thread order.
        for j in range(k):
            _update_warp_lanes(wctx, table, batch_seed, log, touched,
                               persist_on, sel[j:j + 1], rows[j:j + 1],
                               ids[j:j + 1])
        return
    _update_warp_lanes(wctx, table, batch_seed, log, touched, persist_on,
                       sel, rows, ids)


@vectorized_for(select_kernel)
def select_kernel_warp(wctx, table, lo, hi, flags, n_rows):
    g = wctx.global_ids
    sel = wctx.active(g < n_rows)
    if sel.size == 0:
        return
    wctx.charge_ops(4 * sel.size)
    values = table.read_warp(wctx, g[sel] * ROW_COLUMNS + 1, lanes=sel)
    match = np.array([1 if lo <= int(v) < hi else 0 for v in values],
                     dtype=np.uint8)
    flags.write_warp(wctx, g[sel], match, lanes=sel)


@vectorized_for(update_recovery_kernel)
def update_recovery_kernel_warp(wctx, table, log, n_ops):
    g = wctx.global_ids
    sel = wctx.active(g < n_ops)
    if sel.size == 0:
        return
    entry_bytes = (ROW_COLUMNS + 1) * 8
    entries, live = log.read_warp(wctx, entry_bytes, lanes=sel)
    if live.size == 0:
        return
    vals = entries.view(np.uint64).reshape(live.size, ROW_COLUMNS + 1)
    rows = vals[:, 0].astype(np.int64)
    table.write_vec_warp(wctx, rows * ROW_COLUMNS,
                         np.ascontiguousarray(vals[:, 1:]), lanes=live)
    wctx.persist(live)
    log.remove_warp(wctx, entry_bytes, lanes=live)


# ---------------------------------------------------------------------------
# the workload
# ---------------------------------------------------------------------------


@dataclass
class DbConfig:
    """Scaled gpDB parameters (paper: 50M-row inserts, 2.5M updates, 3 GB)."""

    capacity_rows: int = 32768
    initial_rows: int = 16384
    insert_batch: int = 2048
    insert_batches: int = 2
    update_batch: int = 768
    update_batches: int = 2
    block_dim: int = 128
    seed: int = 11
    use_hcl: bool = True
    log_partitions: int = 64


class GpDb:
    """The gpDB workload runner; ``op`` selects INSERT or UPDATE."""

    category = Category.TRANSACTIONAL
    fine_grained = True
    paper_data_bytes = 3_000_000_000  # Table 1: 3 GB

    def __init__(self, op: str = "insert", config: DbConfig | None = None) -> None:
        if op not in ("insert", "update"):
            raise ValueError(f"op must be 'insert' or 'update', got {op!r}")
        self.op = op
        self.config = config or DbConfig()
        self.name = "gpDB (I)" if op == "insert" else "gpDB (U)"

    # -- layout -----------------------------------------------------------------

    def _table_bytes(self) -> int:
        return _META_BYTES + self.config.capacity_rows * ROW_BYTES

    def _grid(self, n_ops: int) -> int:
        return (n_ops + self.config.block_dim - 1) // self.config.block_dim

    # -- execution -----------------------------------------------------------------

    def run(self, mode: Mode, system=None, crash_injector=None) -> RunResult:
        cfg = self.config
        system = system or make_system(mode)
        driver = ModeDriver(system, mode)
        buf = driver.buffer("/pm/gpdb.table", self._table_bytes(),
                            fine_grained=True, paper_bytes=self.paper_data_bytes)
        table = buf.array(np.uint64, _META_BYTES, cfg.capacity_rows * ROW_COLUMNS)
        count_view = buf.visible_view(np.uint64, 0, 1)

        # Populate the initial table (setup, not measured).
        rng = np.random.default_rng(cfg.seed)
        init = rng.integers(1, 1 << 63, size=cfg.initial_rows * ROW_COLUMNS, dtype=np.uint64)
        table.np[: init.size] = init
        count_view[0] = cfg.initial_rows
        if buf.gpm is not None:
            buf.gpm.region.persist_range(0, self._table_bytes())

        on_pm = driver.mode.data_on_pm
        n_ops = cfg.insert_batch if self.op == "insert" else cfg.update_batch
        flag = TransactionFlag.create(system, "/pm/gpdb.flag") if on_pm else None
        meta_log = (gpmlog_create_conv(system, "/pm/gpdb.metalog", 1 << 16, 4)
                    if on_pm else None)
        hcl_log = None
        if on_pm and self.op == "update":
            if cfg.use_hcl:
                capacity = self._grid(n_ops) * cfg.block_dim * 96 * 4 + (1 << 16)
                hcl_log = gpmlog_create_hcl(system, "/pm/gpdb.log", capacity,
                                            self._grid(n_ops), cfg.block_dim)
            else:
                hcl_log = gpmlog_create_conv(system, "/pm/gpdb.log", 8 << 20,
                                             cfg.log_partitions)
        self._state = (system, driver, buf, table, flag, meta_log, hcl_log)

        def op_phase():
            if self.op == "insert":
                return self._run_inserts(driver, buf, table, count_view, flag,
                                         meta_log, crash_injector)
            return self._run_updates(driver, buf, table, count_view, flag,
                                     hcl_log, crash_injector)

        total_ops, window = measure(system, op_phase)
        return RunResult(
            workload=self.name, mode=mode, elapsed=window.elapsed, window=window,
            extras={"ops": total_ops,
                    "throughput_ops_per_s": total_ops / window.elapsed if window.elapsed else 0.0},
        )

    def _run_inserts(self, driver, buf, table, count_view, flag, meta_log, injector):
        cfg = self.config
        system = driver.system
        rng = np.random.default_rng(cfg.seed + 1)
        total = 0
        for b in range(cfg.insert_batches):
            base_count = int(count_view[0])
            n_ops = cfg.insert_batch
            if base_count + n_ops > cfg.capacity_rows:
                break
            hbm = system.machine.alloc_hbm(f"gpdb.batch{b}", n_ops * ROW_BYTES)
            rows = DeviceArray(hbm, np.uint64, 0, n_ops * ROW_COLUMNS)
            rows.np[:] = rng.integers(1, 1 << 63, size=n_ops * ROW_COLUMNS, dtype=np.uint64)
            if flag is not None:
                flag.begin()
            driver.persist_phase_begin()
            try:
                res = system.gpu.launch(
                    insert_kernel, self._grid(n_ops), cfg.block_dim,
                    (table, base_count, rows, n_ops, meta_log,
                     driver.mode.data_on_pm),
                    crash_injector=injector,
                )
                self._last_lane = res.lane
            finally:
                driver.persist_phase_end()
            # Appended rows are contiguous: CAP may restrict its transfer.
            buf.persist_range(_META_BYTES + base_count * ROW_BYTES, n_ops * ROW_BYTES)
            # Durably publish the new row count (commit point).
            count_view[0] = base_count + n_ops
            self._persist_count(driver, buf)
            if flag is not None:
                flag.commit()
                gpmlog_clear(meta_log)
            system.machine.free(hbm)
            total += n_ops
        return total

    def _run_updates(self, driver, buf, table, count_view, flag, log, injector):
        cfg = self.config
        system = driver.system
        total = 0
        for b in range(cfg.update_batches):
            n_ops = cfg.update_batch
            row_count = int(count_view[0])
            touched: list[int] = []
            if flag is not None:
                flag.begin()
            driver.persist_phase_begin()
            try:
                res = system.gpu.launch(
                    update_kernel, self._grid(n_ops), cfg.block_dim,
                    (table, row_count, cfg.seed + 100 + b, n_ops, log, touched,
                     driver.mode.data_on_pm),
                    crash_injector=injector,
                )
                self._last_lane = res.lane
            finally:
                driver.persist_phase_end()
            idx = np.unique(np.asarray(touched, dtype=np.int64)) if touched else np.array([], dtype=np.int64)
            # The two updated columns of each touched row.
            starts = np.concatenate([
                _META_BYTES + idx * ROW_BYTES + 2 * 8,
                _META_BYTES + idx * ROW_BYTES + 5 * 8,
            ])
            buf.persist_segments(starts, np.full(starts.size, 8, dtype=np.int64))
            if flag is not None:
                flag.commit()
                gpmlog_clear(log)
            total += n_ops
        return total

    def _persist_count(self, driver, buf) -> None:
        system = driver.system
        if driver.mode.in_kernel_persist:
            # The durable count bump is the commit point; it needs its own
            # persistence window (the batch's window closed with the kernel).
            driver.persist_phase_begin()
            try:
                system.gpu.store_and_persist_value(
                    buf.kernel_region, 0,
                    int(buf.visible_view(np.uint64, 0, 1)[0]), np.uint64,
                )
            finally:
                driver.persist_phase_end()
        elif driver.mode is Mode.GPM_NDP:
            system.cpu.persist_range(buf.kernel_region, 0, 8)
        else:
            buf.persist_range(0, _META_BYTES)

    def select(self, lo: int, hi: int) -> tuple[np.ndarray, float]:
        """SELECT rows whose column 1 lies in [lo, hi) (call after run()).

        Returns (matching row indices, elapsed simulated seconds).  Pure
        read path: identical under every persistence mode.
        """
        system, driver, buf, table, *_ = self._state
        n_rows = int(buf.visible_view(np.uint64, 0, 1)[0])
        hbm = system.machine.alloc_hbm(
            f"gpdb.sel{system.stats.kernels_launched}", max(n_rows, 1)
        )
        flags = DeviceArray(hbm, np.uint8, 0, n_rows)
        start = system.clock.now
        res = system.gpu.launch(select_kernel, self._grid(n_rows),
                                self.config.block_dim,
                                (table, lo, hi, flags, n_rows))
        self._last_lane = res.lane
        matches = np.flatnonzero(flags.np[:n_rows])
        elapsed = system.clock.now - start
        system.machine.free(hbm)
        return matches, elapsed

    # -- recovery --------------------------------------------------------------------

    def recover(self, system, mode: Mode) -> float:
        """Undo an interrupted batch after a crash; returns restoration time."""
        from ..core.logging import gpmlog_open
        from ..core.mapping import gpm_map

        cfg = self.config
        start = system.clock.now
        flag = TransactionFlag.open(system, "/pm/gpdb.flag")
        buf = gpm_map(system, "/pm/gpdb.table")
        table = buf.array(np.uint64, _META_BYTES, cfg.capacity_rows * ROW_COLUMNS)
        driver = ModeDriver(system, mode)
        if flag.active:
            if self.op == "update":
                log = gpmlog_open(system, "/pm/gpdb.log")
                driver.persist_phase_begin()
                try:
                    if isinstance(log, HclLog):
                        res = system.gpu.launch(
                            update_recovery_kernel,
                            self._grid(cfg.update_batch), cfg.block_dim,
                            (table, log, cfg.update_batch),
                        )
                    else:
                        # Conventional-log recovery pops from a shared
                        # partition stack: strictly order-dependent, so it
                        # stays on the thread-at-a-time lane.
                        with scalar_lane():
                            res = system.gpu.launch(
                                update_recovery_kernel,
                                self._grid(cfg.update_batch), cfg.block_dim,
                                (table, log, cfg.update_batch),
                            )
                    self._last_lane = res.lane
                finally:
                    driver.persist_phase_end()
                gpmlog_clear(log)
            else:
                # INSERT recovery: restore the durably logged row count.
                meta_log = gpmlog_open(system, "/pm/gpdb.metalog")
                try:
                    old = meta_log.host_read_entry(0, 8)
                    count = buf.view(np.uint64, 0, 1)
                    count[0] = old.view(np.uint64)[0]
                    system.gpu.store_and_persist_value(buf.region, 0,
                                                       int(count[0]), np.uint64)
                except LogEmpty:
                    pass
                gpmlog_clear(meta_log)
            flag.commit()
        else:
            # Crash outside a transaction: logs are stale, truncate them.
            if system.fs.exists("/pm/gpdb.log"):
                gpmlog_clear(gpmlog_open(system, "/pm/gpdb.log"))
        return system.clock.now - start

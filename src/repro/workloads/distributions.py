"""Shared random-distribution helpers for workload and traffic generation.

Key popularity and arrival processes used to be private to one workload
(``workloads/ycsb.py``); the request-serving layer (:mod:`repro.serve`)
draws from the same distributions, so they live here and both import them.
Everything is a pure function of its ``numpy.random.Generator`` argument -
given the same seeded generator, the same draws come out, which is what the
service layer's byte-identical-summary determinism rests on
(``tests/workloads/test_distributions.py`` pins goldens).
"""

from __future__ import annotations

import numpy as np


def zipfian_keys(n: int, key_space: int, theta: float,
                 rng: np.random.Generator) -> np.ndarray:
    """Draw ``n`` keys from a Zipfian(theta) distribution over the space.

    ``theta`` = 0 is uniform; YCSB's default is 0.99.  Uses the standard
    rank-probability construction (adequate at our scaled key spaces).
    """
    if not 0 <= theta < 1:
        raise ValueError("theta must be in [0, 1)")
    if theta == 0:
        return rng.integers(1, key_space + 1, size=n, dtype=np.uint64)
    ranks = np.arange(1, key_space + 1, dtype=np.float64)
    weights = ranks ** (-theta)
    weights /= weights.sum()
    # Popular ranks get scattered identities so skew is about *reuse*, not
    # address adjacency.
    identity = rng.permutation(key_space).astype(np.uint64) + 1
    drawn = rng.choice(key_space, size=n, p=weights)
    return identity[drawn]


def poisson_arrivals(rate: float, duration: float,
                     rng: np.random.Generator) -> np.ndarray:
    """Open-loop Poisson arrival times in ``[0, duration)`` at ``rate``/s.

    Exponential interarrival gaps accumulated until the horizon; the draw
    count adapts to the realisation, so the stream is exactly the prefix a
    longer horizon would produce (arrival processes compose across
    ``duration`` changes).
    """
    if rate <= 0:
        raise ValueError("arrival rate must be positive")
    if duration <= 0:
        return np.empty(0, dtype=np.float64)
    times: list[np.ndarray] = []
    now = 0.0
    # Draw in chunks sized to the expectation; loop until the horizon.
    chunk = max(16, int(rate * duration * 1.2))
    while now < duration:
        gaps = rng.exponential(1.0 / rate, size=chunk)
        t = now + np.cumsum(gaps)
        times.append(t)
        now = float(t[-1])
    all_times = np.concatenate(times)
    return all_times[all_times < duration]

"""Black-Scholes option pricing with checkpointed results (Section 4.2).

From the CUDA SDK samples [70]: price a large portfolio of European call
and put options with the closed-form Black-Scholes model, checkpointing the
predicted prices for fault tolerance (Table 1: 256M options, 4 GB; here
scaled to 256K options / 2 MB of prices).

The pricing maths is exact (vectorised erf-based normal CDF); each
iteration re-prices a slice of the portfolio at a shifted volatility, as a
stand-in for the streaming batches of the original sample.
"""

from __future__ import annotations

import numpy as np
from scipy.special import erf

from ..gpu.memory import DeviceArray
from .checkpointed import CheckpointedWorkload


def _norm_cdf(x: np.ndarray) -> np.ndarray:
    return 0.5 * (1.0 + erf(x / np.sqrt(2.0)))


def black_scholes(spot, strike, t, rate, vol):
    """Closed-form European call and put prices."""
    sqrt_t = np.sqrt(t)
    d1 = (np.log(spot / strike) + (rate + 0.5 * vol * vol) * t) / (vol * sqrt_t)
    d2 = d1 - vol * sqrt_t
    discount = np.exp(-rate * t)
    # N(-x) = 1 - N(x): two erf evaluations price both legs, and put-call
    # parity (call - put = spot - strike*discount) holds exactly.
    n_d1 = _norm_cdf(d1)
    n_d2 = _norm_cdf(d2)
    disc_k = strike * discount
    call = spot * n_d1 - disc_k * n_d2
    put = disc_k * (1.0 - n_d2) - spot * (1.0 - n_d1)
    return call, put


class BlackScholes(CheckpointedWorkload):
    """The BLK workload: batched pricing + price checkpoints."""

    name = "BLK"
    paper_data_bytes = 4_000_000_000  # Table 1: 4 GB (fails on GPUfs)
    iterations = 10
    checkpoint_every = 2

    def __init__(self, n_options: int = 262_144, seed: int = 9) -> None:
        self.n_options = n_options
        self.seed = seed

    def setup(self, system) -> list[DeviceArray]:
        rng = np.random.default_rng(self.seed)
        n = self.n_options
        self.spot = rng.uniform(5.0, 30.0, n)
        self.strike = rng.uniform(1.0, 100.0, n)
        self.t = rng.uniform(0.25, 10.0, n)
        self.rate = 0.02
        self.vol = 0.30
        nbytes = 2 * n * 4  # call + put prices, float32
        hbm = system.machine.alloc_hbm("blk.prices", nbytes)
        self._prices = DeviceArray(hbm, np.float32, 0, 2 * n)
        return [self._prices]

    def compute_iteration(self, system, iteration: int) -> None:
        # Re-price one slice of the portfolio at a drifted volatility.
        n = self.n_options
        slices = 4
        lo = (iteration % slices) * n // slices
        hi = lo + n // slices
        vol = self.vol * (1.0 + 0.01 * iteration)
        call, put = black_scholes(self.spot[lo:hi], self.strike[lo:hi],
                                  self.t[lo:hi], self.rate, vol)
        self._prices.np[lo:hi] = call.astype(np.float32)
        self._prices.np[n + lo : n + hi] = put.astype(np.float32)
        system.gpu.compute(60 * (hi - lo))  # ~flops of the closed form

"""YCSB-style workload generation for the persistent GPU KVS.

The paper evaluates gpKVS on uniform batched SETs and a 95:5 GET:SET mix
(Table 1).  Real key-value traffic is skewed; YCSB's core workloads pair a
Zipfian key popularity distribution with standard operation mixes.  This
module generates those batches and runs them through gpKVS, exposing how
skew interacts with GPM's persistence machinery:

* because MegaKV's batching pipeline deduplicates same-key SETs, skew
  changes *which* lines a batch touches but not *how many* - the measured
  result is that GPM's traffic and advantage are skew-robust;
* CAP's write amplification is unchanged either way (it ships the whole
  store).

Workload mixes follow YCSB's letters: A = 50:50 read/update, B = 95:5,
C = read-only, and the paper's own 100%-SET load phase.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..experiments.results import ExperimentTable
from .base import Mode
from .distributions import zipfian_keys  # noqa: F401  (re-exported; shared with repro.serve)
from .kvs import GpKvs, KvsConfig

MIXES = {
    "load": 1.00,   # 100% SETs (the paper's gpKVS configuration)
    "A": 0.50,      # 50% SETs
    "B": 0.05,      # 5% SETs (the paper's 95:5 configuration)
    "C": 0.00,      # read-only
}


@dataclass
class YcsbConfig:
    """One YCSB-flavoured gpKVS run."""

    mix: str = "A"
    theta: float = 0.99
    operations: int = 4096
    batch_size: int = 512
    n_sets: int = 8192
    seed: int = 71


class YcsbKvs:
    """Drive gpKVS with YCSB-style batches."""

    def __init__(self, config: YcsbConfig | None = None) -> None:
        self.config = config or YcsbConfig()
        if self.config.mix not in MIXES:
            raise ValueError(f"unknown mix {self.config.mix!r}; one of {sorted(MIXES)}")

    def as_gpkvs(self) -> GpKvs:
        """Materialise the mix as a GpKvs configuration."""
        cfg = self.config
        set_fraction = MIXES[cfg.mix]
        total_sets = int(cfg.operations * set_fraction)
        total_gets = cfg.operations - total_sets
        set_batches = max(1, total_sets // cfg.batch_size) if total_sets else 0
        get_batches = max(1, total_gets // cfg.batch_size) if total_gets else 0
        kvs = GpKvs(KvsConfig(
            n_sets=cfg.n_sets,
            batch_size=cfg.batch_size if total_sets else 1,
            set_batches=set_batches,
            get_batches=get_batches,
            get_batch_size=cfg.batch_size if total_gets else 0,
            seed=cfg.seed,
        ))
        kvs.name = f"YCSB-{cfg.mix}"
        self._patch_key_generator(kvs)
        return kvs

    def _patch_key_generator(self, kvs: GpKvs) -> None:
        """Swap gpKVS's uniform batches for Zipfian ones (dedup preserved)."""
        cfg = self.config
        key_space = kvs.config.n_sets * kvs.config.ways * 4

        def batches():
            rng = np.random.default_rng(cfg.seed)
            for _ in range(kvs.config.set_batches):
                keys = zipfian_keys(kvs.config.batch_size * 3, key_space,
                                    cfg.theta, rng)
                unique = np.unique(keys)[: kvs.config.batch_size]
                if unique.size < kvs.config.batch_size:
                    extra = rng.choice(
                        np.setdiff1d(
                            np.arange(1, key_space + 1, dtype=np.uint64), unique
                        ),
                        size=kvs.config.batch_size - unique.size, replace=False,
                    )
                    unique = np.concatenate([unique, extra])
                vals = rng.integers(1, 1 << 63, size=unique.size, dtype=np.uint64)
                yield unique, vals

        kvs._batches = batches

    def run(self, mode: Mode = Mode.GPM):
        return self.as_gpkvs().run(mode)


def ycsb_skew_sweep() -> ExperimentTable:
    """How key skew shifts gpKVS's behaviour under GPM vs CAP-mm."""
    table = ExperimentTable(
        "ycsb",
        "YCSB extension: gpKVS under Zipfian skew (write-heavy mix A)",
        ["theta", "gpm_ms", "cap_mm_ms", "gpm_speedup", "gpm_media_amp"],
    )
    for theta in (0.0, 0.5, 0.99):
        gpm_run = YcsbKvs(YcsbConfig(mix="A", theta=theta)).run(Mode.GPM)
        cap_run = YcsbKvs(YcsbConfig(mix="A", theta=theta)).run(Mode.CAP_MM)
        stats = gpm_run.window.stats
        amp = (stats.pm_bytes_written_internal / stats.pm_bytes_written
               if stats.pm_bytes_written else 0.0)
        table.add(theta, gpm_run.elapsed * 1e3, cap_run.elapsed * 1e3,
                  cap_run.elapsed / gpm_run.elapsed, amp)
    table.notes.append(
        "with MegaKV-style batch deduplication, skew changes which lines a "
        "batch touches but not how many: GPM's per-batch traffic, media "
        "amplification and advantage over CAP are skew-robust"
    )
    return table

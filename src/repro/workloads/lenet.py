"""A LeNet-style convolutional network with manual backprop (numpy).

The DNN-training workload of GPMbench (Section 4.2) trains LeNet [52] on
MNIST [53] with cuDNN kernels and checkpoints the weights and biases every
few passes.  This module is the *model*: a small but genuine CNN - two
convolution+average-pool stages, two fully-connected layers, softmax
cross-entropy loss - trained by SGD with hand-derived gradients.

The network is sized so its parameters occupy ~3.2 MB, matching the paper's
checkpoint payload (Table 1), and trains on synthetic MNIST-like digits
(deterministic 16x16 glyph renderings plus noise), since the real dataset
is not available offline.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


def _im2col(x: np.ndarray, k: int) -> np.ndarray:
    """im2col: x (N,C,H,W) -> (N, C*K*K, OH*OW), rows ordered (c, ki, kj)."""
    n, c = x.shape[:2]
    oh, ow = x.shape[2] - k + 1, x.shape[3] - k + 1
    # windows[n, c, i, j, ki, kj] == x[n, c, i+ki, j+kj]; the transpose +
    # reshape materialises the (c, ki, kj)-major layout in one copy.
    win = np.lib.stride_tricks.sliding_window_view(x, (k, k), axis=(2, 3))
    return win.transpose(0, 1, 4, 5, 2, 3).reshape(n, c * k * k, oh * ow)


def _conv2d(x: np.ndarray, w: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Valid 2-D convolution: x (N,C,H,W), w (F,C,K,K) -> (N,F,H-K+1,W-K+1)."""
    n = x.shape[0]
    f, _, k, _ = w.shape
    oh, ow = x.shape[2] - k + 1, x.shape[3] - k + 1
    out = w.reshape(f, -1) @ _im2col(x, k)
    return out.reshape(n, f, oh, ow) + b.reshape(1, f, 1, 1)


def _conv2d_grads(x, w, dout):
    """Gradients of _conv2d w.r.t. w, b and x."""
    n, c, h, wid = x.shape
    f, _, k, _ = w.shape
    oh, ow = dout.shape[2], dout.shape[3]
    cols = _im2col(x, k)
    dflat = dout.reshape(n, f, -1)
    dw = np.tensordot(dflat, cols, axes=([0, 2], [0, 2])).reshape(w.shape)
    db = dout.sum(axis=(0, 2, 3))
    # dcols[n] = w_flat.T @ dflat[n], batched over n.
    dcols = np.matmul(w.reshape(f, -1).T, dflat)
    dx = np.zeros_like(x)
    idx = 0
    for ci in range(c):
        for ki in range(k):
            for kj in range(k):
                dx[:, ci, ki : ki + oh, kj : kj + ow] += dcols[:, idx, :].reshape(n, oh, ow)
                idx += 1
    return dw, db, dx


def _avgpool2(x: np.ndarray) -> np.ndarray:
    return (
        x[:, :, 0::2, 0::2] + x[:, :, 0::2, 1::2]
        + x[:, :, 1::2, 0::2] + x[:, :, 1::2, 1::2]
    ) * np.float32(0.25)


def _avgpool2_grad(dout: np.ndarray) -> np.ndarray:
    n, c, h, w = dout.shape
    dx = np.empty((n, c, 2 * h, 2 * w), dtype=dout.dtype)
    q = dout * np.float32(0.25)
    dx[:, :, 0::2, 0::2] = q
    dx[:, :, 0::2, 1::2] = q
    dx[:, :, 1::2, 0::2] = q
    dx[:, :, 1::2, 1::2] = q
    return dx


def _relu(x):
    return np.maximum(x, 0.0)


def synthetic_mnist(n: int, seed: int = 0, size: int = 16) -> tuple[np.ndarray, np.ndarray]:
    """Deterministic MNIST stand-in: noisy renderings of 10 digit glyphs."""
    rng = np.random.default_rng(seed)
    labels = rng.integers(0, 10, size=n)
    base = np.zeros((10, size, size), dtype=np.float32)
    for d in range(10):
        g = np.zeros((size, size), dtype=np.float32)
        # A distinct bar/ring pattern per digit - separable, not realistic.
        g[2 + d % 5 : size - 2, 2 : 2 + 2 + d % 7] = 1.0
        g[size // 2, :] = (d % 3) / 2.0
        g[:, size // 2] = (d % 4) / 3.0
        base[d] = g
    images = base[labels] + rng.normal(0, 0.25, size=(n, size, size)).astype(np.float32)
    return images[:, None, :, :].astype(np.float32), labels


@dataclass
class LeNetParams:
    """The trainable tensors (the checkpoint payload)."""

    conv1_w: np.ndarray
    conv1_b: np.ndarray
    conv2_w: np.ndarray
    conv2_b: np.ndarray
    fc1_w: np.ndarray
    fc1_b: np.ndarray
    fc2_w: np.ndarray
    fc2_b: np.ndarray

    def tensors(self) -> list[np.ndarray]:
        return [self.conv1_w, self.conv1_b, self.conv2_w, self.conv2_b,
                self.fc1_w, self.fc1_b, self.fc2_w, self.fc2_b]

    @property
    def total_bytes(self) -> int:
        return sum(t.nbytes for t in self.tensors())

    def pack(self, out: np.ndarray | None = None) -> np.ndarray:
        """Flatten all tensors into one float32 vector (into ``out`` if given)."""
        tensors = self.tensors()
        if out is None:
            out = np.empty(sum(t.size for t in tensors), dtype=np.float32)
        pos = 0
        for t in tensors:
            out[pos : pos + t.size] = t.reshape(-1)
            pos += t.size
        return out

    def unpack(self, flat: np.ndarray) -> None:
        pos = 0
        for t in self.tensors():
            t[...] = flat[pos : pos + t.size].reshape(t.shape)
            pos += t.size


class LeNet:
    """The network: conv(8)+pool -> conv(16)+pool -> fc -> fc -> softmax."""

    #: Input image side; 32 gives a ~3.2 MB parameter payload as in Table 1.
    IMAGE_SIZE = 32

    def __init__(self, hidden: int = 1400, seed: int = 0) -> None:
        rng = np.random.default_rng(seed)

        def init(*shape):
            fan_in = int(np.prod(shape[1:])) or shape[0]
            return (rng.normal(0, 1.0 / np.sqrt(fan_in), size=shape)).astype(np.float32)

        # 32x32 -> conv5 -> 28x28 -> pool -> 14x14 -> conv3 -> 12x12 -> pool -> 6x6
        self.params = LeNetParams(
            conv1_w=init(8, 1, 5, 5), conv1_b=np.zeros(8, dtype=np.float32),
            conv2_w=init(16, 8, 3, 3), conv2_b=np.zeros(16, dtype=np.float32),
            fc1_w=init(hidden, 16 * 6 * 6), fc1_b=np.zeros(hidden, dtype=np.float32),
            fc2_w=init(10, hidden), fc2_b=np.zeros(10, dtype=np.float32),
        )

    # -- flop accounting (drives the simulated GPU compute time) -----------

    def flops_per_example(self) -> int:
        p = self.params
        conv1 = 2 * 8 * 1 * 25 * 28 * 28
        conv2 = 2 * 16 * 8 * 9 * 12 * 12
        fc = 2 * (p.fc1_w.size + p.fc2_w.size)
        return 3 * (conv1 + conv2 + fc)  # forward + ~2x backward

    # -- forward/backward ----------------------------------------------------

    def forward(self, x: np.ndarray) -> tuple[np.ndarray, dict]:
        p = self.params
        c1 = _conv2d(x, p.conv1_w, p.conv1_b)
        r1 = _relu(c1)
        p1 = _avgpool2(r1)
        c2 = _conv2d(p1, p.conv2_w, p.conv2_b)
        r2 = _relu(c2)
        p2 = _avgpool2(r2)
        flat = p2.reshape(x.shape[0], -1)
        h = _relu(flat @ p.fc1_w.T + p.fc1_b)
        logits = h @ p.fc2_w.T + p.fc2_b
        cache = {"x": x, "c1": c1, "p1": p1, "c2": c2, "p2": p2,
                 "flat": flat, "h": h}
        return logits, cache

    @staticmethod
    def softmax_loss(logits: np.ndarray, labels: np.ndarray) -> tuple[float, np.ndarray]:
        shifted = logits - logits.max(axis=1, keepdims=True)
        exp = np.exp(shifted)
        probs = exp / exp.sum(axis=1, keepdims=True)
        n = logits.shape[0]
        loss = -np.log(probs[np.arange(n), labels] + 1e-12).mean()
        dlogits = probs
        dlogits[np.arange(n), labels] -= 1.0
        return float(loss), dlogits / n

    def train_step(self, x: np.ndarray, labels: np.ndarray, lr: float = 0.05) -> float:
        """One SGD step; returns the batch loss."""
        p = self.params
        logits, cache = self.forward(x)
        loss, dlogits = self.softmax_loss(logits, labels)

        dfc2_w = dlogits.T @ cache["h"]
        dfc2_b = dlogits.sum(axis=0)
        dh = dlogits @ p.fc2_w
        dh[cache["h"] <= 0] = 0.0
        dfc1_w = dh.T @ cache["flat"]
        dfc1_b = dh.sum(axis=0)
        dflat = dh @ p.fc1_w
        dp2 = dflat.reshape(cache["p2"].shape)
        dr2 = _avgpool2_grad(dp2)
        dr2[cache["c2"] <= 0] = 0.0
        dconv2_w, dconv2_b, dp1 = _conv2d_grads(cache["p1"], p.conv2_w, dr2)
        dr1 = _avgpool2_grad(dp1)
        dr1[cache["c1"] <= 0] = 0.0
        dconv1_w, dconv1_b, _ = _conv2d_grads(cache["x"], p.conv1_w, dr1)

        for t, g in [
            (p.conv1_w, dconv1_w), (p.conv1_b, dconv1_b),
            (p.conv2_w, dconv2_w), (p.conv2_b, dconv2_b),
            (p.fc1_w, dfc1_w), (p.fc1_b, dfc1_b),
            (p.fc2_w, dfc2_w), (p.fc2_b, dfc2_b),
        ]:
            t -= (lr * g).astype(np.float32, copy=False)
        return loss

    def accuracy(self, x: np.ndarray, labels: np.ndarray) -> float:
        logits, _ = self.forward(x)
        return float((logits.argmax(axis=1) == labels).mean())

"""Hotspot: thermal simulation with checkpointed temperatures (Section 4.2).

From Rodinia [15]: iteratively solve the chip temperature field from a
power-density map using the standard Hotspot finite-difference update, and
checkpoint the estimated temperatures to PM (Table 1: 16K x 16K grids, 2 GB;
scaled here to 256 x 256).

The stencil is the real Rodinia update rule: each cell's temperature moves
toward its neighbours and the ambient according to the thermal RC
constants.
"""

from __future__ import annotations

import numpy as np

from ..gpu.memory import DeviceArray
from .checkpointed import CheckpointedWorkload

# Rodinia hotspot constants (scaled chip, arbitrary-but-physical units).
AMB_TEMP = 80.0
CAP = 0.5
RX, RY, RZ = 1.0, 1.0, 4.0


class HotspotGrid:
    """The finite-difference temperature solver."""

    def __init__(self, n: int = 256, seed: int = 13) -> None:
        rng = np.random.default_rng(seed)
        self.n = n
        self.temp = np.full((n, n), AMB_TEMP, dtype=np.float64)
        self.power = rng.uniform(0.0, 1.0, size=(n, n))
        # a few hot functional units
        for _ in range(6):
            r, c = rng.integers(0, n - n // 8, size=2)
            self.power[r : r + n // 8, c : c + n // 8] += 4.0

    def step(self) -> None:
        t = np.pad(self.temp, 1, mode="edge")
        center = t[1:-1, 1:-1]
        dtemp = (
            self.power
            + (t[2:, 1:-1] + t[:-2, 1:-1] - 2.0 * center) / RY
            + (t[1:-1, 2:] + t[1:-1, :-2] - 2.0 * center) / RX
            + (AMB_TEMP - center) / RZ
        ) / CAP
        self.temp = center + 0.01 * dtemp

    def flops_per_step(self) -> int:
        return 15 * self.n * self.n


class Hotspot(CheckpointedWorkload):
    """The HS workload: stencil solve + temperature checkpoints."""

    name = "HS"
    paper_data_bytes = 2 * 1024 * 1024 * 1024 + 1  # Table 1: 2 GB (fails on GPUfs)
    iterations = 12
    checkpoint_every = 3

    def __init__(self, n: int = 256, steps_per_iteration: int = 4) -> None:
        self.n = n
        self.steps_per_iteration = steps_per_iteration
        self.grid: HotspotGrid | None = None

    def setup(self, system) -> list[DeviceArray]:
        self.grid = HotspotGrid(self.n)
        nbytes = self.n * self.n * 4
        hbm = system.machine.alloc_hbm("hs.temp", nbytes)
        self._payload = DeviceArray(hbm, np.float32, 0, nbytes // 4)
        self._sync()
        return [self._payload]

    def _sync(self) -> None:
        self._payload.np[:] = self.grid.temp.astype(np.float32).ravel()

    def compute_iteration(self, system, iteration: int) -> None:
        flops = 0
        for _ in range(self.steps_per_iteration):
            self.grid.step()
            flops += self.grid.flops_per_step()
        self._sync()
        system.gpu.compute(flops)

"""DNN training with fine-grained checkpointing (Section 4.2, Fig. 7).

Trains the LeNet model of :mod:`repro.workloads.lenet` on synthetic MNIST
and checkpoints the weights and biases every few passes, exactly following
the paper's Fig. 7 structure (create-or-open, register in a fixed order,
checkpoint inside the training loop, restore on recovery).

The training math is genuine (numpy forward/backward); its simulated GPU
time is charged from the model's flop count.  The checkpoint payload is the
packed parameter vector (~3.2 MB, matching Table 1).
"""

from __future__ import annotations

import numpy as np

from ..gpu.memory import DeviceArray
from .base import Mode, make_system
from .checkpointed import CheckpointedWorkload, CheckpointTarget
from .base import ModeDriver
from .lenet import LeNet, synthetic_mnist


class DnnTraining(CheckpointedWorkload):
    """The DNN workload: LeNet + MNIST + weight checkpoints."""

    name = "DNN"
    paper_data_bytes = 3_200_000  # Table 1: 3.2 MB of weights and biases
    iterations = 12
    checkpoint_every = 2

    def __init__(self, batch_size: int = 32, dataset_size: int = 256,
                 passes_per_iteration: int = 1, seed: int = 5) -> None:
        self.batch_size = batch_size
        self.dataset_size = dataset_size
        self.passes_per_iteration = passes_per_iteration
        self.seed = seed
        self.net: LeNet | None = None
        self.losses: list[float] = []

    # -- CheckpointedWorkload hooks ------------------------------------------

    def setup(self, system) -> list[DeviceArray]:
        self.net = LeNet(seed=self.seed)
        self.losses = []
        images, labels = synthetic_mnist(self.dataset_size, seed=self.seed,
                                         size=LeNet.IMAGE_SIZE)
        self._data = (images, labels)
        self._rng = np.random.default_rng(self.seed)
        nbytes = self.net.params.total_bytes
        hbm = system.machine.alloc_hbm("dnn.weights", nbytes)
        weights = DeviceArray(hbm, np.float32, 0, nbytes // 4)
        self._weights = weights
        self._sync_weights_to_device()
        return [weights]

    def _sync_weights_to_device(self) -> None:
        """Mirror the numpy parameters into the simulated HBM region."""
        self.net.params.pack(out=self._weights.np)

    #: Effective concurrent lanes of the small-batch cuDNN LeNet kernels.
    #: LeNet on MNIST leaves most of a Titan RTX idle; 256 lanes calibrates
    #: the per-pass time to the paper's measurement (8.26 ms / 10 passes).
    EFFECTIVE_LANES = 256

    def compute_iteration(self, system, iteration: int) -> None:
        images, labels = self._data
        for _ in range(self.passes_per_iteration):
            idx = self._rng.integers(0, self.dataset_size, size=self.batch_size)
            self.losses.append(self.net.train_step(images[idx], labels[idx]))
            system.gpu.compute(self.net.flops_per_example() * self.batch_size,
                               active_threads=self.EFFECTIVE_LANES)
        self._sync_weights_to_device()

    # -- recovery -----------------------------------------------------------------

    def restore_into_new_net(self, system, mode: Mode) -> LeNet:
        """Fig. 7's RECOVERY_MODE path: open, re-register, restore."""
        from ..core.checkpoint import gpmcp_open

        net = LeNet(seed=self.seed + 1)  # different init: must be overwritten
        nbytes = net.params.total_bytes
        hbm = system.machine.alloc_hbm("dnn.weights.recovered", nbytes)
        weights = DeviceArray(hbm, np.float32, 0, nbytes // 4)
        if mode.in_kernel_persist:
            cp = gpmcp_open(system, "/pm/dnn.cp")
            cp.register(weights, group=0)
            cp.restore(0)
        else:
            raise NotImplementedError("recovery path modelled for GPM modes")
        net.params.unpack(weights.np.copy())
        return net

"""CFD: an Euler-equation grid solver with periodic checkpoints.

The paper draws its CFD workload from Rodinia's ``euler3d`` - "a grid solver
for Euler equation for inviscid and compression flow. The flux, momentum,
and density are computed over many timesteps. We periodically checkpoint
these to PM" (Section 4.2).

We implement a genuine (if smaller) finite-volume solver: 2-D compressible
Euler equations on a structured grid with Rusanov (local Lax-Friedrichs)
fluxes and reflective boundaries, evolving a blast-wave initial condition.
The checkpointed payload is the full conserved state - density, x/y
momentum, and energy - as in Table 1.
"""

from __future__ import annotations

import numpy as np

from ..gpu.memory import DeviceArray
from .checkpointed import CheckpointedWorkload

GAMMA = 1.4


def _pressure(rho, mx, my, e):
    return (GAMMA - 1.0) * (e - 0.5 * (mx ** 2 + my ** 2) / rho)


def _flux_x(rho, mx, my, e, p):
    u = mx / rho
    return np.stack([mx, mx * u + p, my * u, (e + p) * u])


def _flux_y(rho, mx, my, e, p):
    v = my / rho
    return np.stack([my, mx * v, my * v + p, (e + p) * v])


def _rusanov(ul, ur, flux, axis_mom):
    """Rusanov flux between left/right states (stacked [rho,mx,my,e])."""
    pl = _pressure(*ul)
    pr = _pressure(*ur)
    fl = flux(*ul, pl)
    fr = flux(*ur, pr)
    cl = np.sqrt(GAMMA * pl / ul[0]) + np.abs(ul[axis_mom] / ul[0])
    cr = np.sqrt(GAMMA * pr / ur[0]) + np.abs(ur[axis_mom] / ur[0])
    smax = np.maximum(cl, cr)
    return 0.5 * (fl + fr) - 0.5 * smax * (ur - ul)


class EulerSolver:
    """2-D compressible Euler on an n x n grid, blast-wave initial state."""

    def __init__(self, n: int = 96, cfl: float = 0.4) -> None:
        self.n = n
        self.cfl = cfl
        self.state = np.zeros((4, n, n), dtype=np.float64)
        rho = np.ones((n, n))
        p = np.full((n, n), 0.1)
        yy, xx = np.mgrid[0:n, 0:n]
        inside = (xx - n / 2) ** 2 + (yy - n / 2) ** 2 < (n / 8) ** 2
        p[inside] = 1.0
        self.state[0] = rho
        self.state[3] = p / (GAMMA - 1.0)
        self.dx = 1.0 / n

    def step(self) -> float:
        """One finite-volume timestep; returns dt."""
        s = self.state
        rho, mx, my, e = s
        p = _pressure(rho, mx, my, e)
        c = np.sqrt(GAMMA * np.maximum(p, 1e-12) / rho)
        speed = c + np.sqrt((mx ** 2 + my ** 2)) / rho
        dt = self.cfl * self.dx / max(float(speed.max()), 1e-12)

        # Reflective ghost padding.
        pad = np.pad(s, ((0, 0), (1, 1), (1, 1)), mode="edge")
        pad[1, 0, :] *= -1
        pad[1, -1, :] *= -1
        pad[2, :, 0] *= -1
        pad[2, :, -1] *= -1

        fx = _rusanov(pad[:, 1:-1, :-1], pad[:, 1:-1, 1:], _flux_x, 1)
        fy = _rusanov(pad[:, :-1, 1:-1], pad[:, 1:, 1:-1], _flux_y, 2)
        div = (fx[:, :, 1:] - fx[:, :, :-1]) / self.dx + (fy[:, 1:, :] - fy[:, :-1, :]) / self.dx
        self.state = s - dt * div
        # Keep density/energy physical under the large blast gradients.
        self.state[0] = np.maximum(self.state[0], 1e-6)
        self.state[3] = np.maximum(self.state[3], 1e-6)
        return dt

    def flops_per_step(self) -> int:
        return 120 * self.n * self.n  # ~ops of two flux sweeps + update

    def total_energy(self) -> float:
        return float(self.state[3].sum())

    def total_mass(self) -> float:
        return float(self.state[0].sum())


class CfdSolver(CheckpointedWorkload):
    """The CFD workload: Euler solver + state checkpoints."""

    name = "CFD"
    paper_data_bytes = 8_900_000  # Table 1: 8.9 MB (missile surface)
    iterations = 12
    checkpoint_every = 3

    def __init__(self, n: int = 96, steps_per_iteration: int = 2) -> None:
        self.n = n
        self.steps_per_iteration = steps_per_iteration
        self.solver: EulerSolver | None = None

    def setup(self, system) -> list[DeviceArray]:
        self.solver = EulerSolver(self.n)
        nbytes = self.solver.state.astype(np.float32).nbytes
        hbm = system.machine.alloc_hbm("cfd.state", nbytes)
        self._payload = DeviceArray(hbm, np.float32, 0, nbytes // 4)
        self._sync()
        return [self._payload]

    def _sync(self) -> None:
        self._payload.np[:] = self.solver.state.astype(np.float32).ravel()

    def compute_iteration(self, system, iteration: int) -> None:
        flops = 0
        for _ in range(self.steps_per_iteration):
            self.solver.step()
            flops += self.solver.flops_per_step()
        self._sync()
        system.gpu.compute(flops)

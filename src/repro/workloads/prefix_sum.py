"""Prefix sum with native persistence - the kernel of Fig. 8.

Each threadblock owns one subarray; each thread persists the prefix sum of
its element, then the block synchronises, and only then does the *last*
thread persist its value.  That ordering is the workload's entire recovery
protocol: "after a crash, if a value is present in the array for the last
thread, then all the threads would have had their values persisted" - so a
re-run simply skips completed blocks (line 3 of Fig. 8) and recomputes the
rest.

A second kernel folds the per-block totals into final sums, with the same
last-thread sentinel discipline on the output array.

Inputs are strictly positive integers so 0 can serve as the EMPTY sentinel.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..gpu.memory import DeviceArray
from ..gpu.warp import vectorized_for
from .base import (
    Category,
    CrashConsistent,
    Mode,
    ModeDriver,
    RunResult,
    make_system,
    measure,
)

EMPTY = 0
_HEADER_BYTES = 128


def partial_sums_kernel(ctx, inp, pm_p_sums, persist_on):
    """The Fig. 8 kernel: block-local prefix sums with ordered persists."""
    blk = ctx.block_id
    bdim = ctx.block_dim
    last_idx = (blk + 1) * bdim - 1
    # Partial sum of last thread in block exists -> whole block done, skip.
    if int(pm_p_sums.read(ctx, last_idx)) != EMPTY:
        return
    shared = ctx.shared
    if "prefix" not in shared:
        # One cooperative scan per block (charged as log-steps per thread).
        vals = inp.read_vec(ctx, blk * bdim, bdim)
        shared["prefix"] = np.cumsum(np.asarray(vals, dtype=np.int64))
        ctx.charge_ops(bdim)
    my = int(shared["prefix"][ctx.thread_in_block])
    ctx.charge_ops(10)
    if ctx.thread_in_block != bdim - 1:
        # All but the last thread persist their partial sum first.
        pm_p_sums.write(ctx, ctx.global_id, my)
        if persist_on:
            ctx.persist()
    yield  # __syncthreads(): everyone's value is durable before the sentinel
    if ctx.thread_in_block == bdim - 1:
        pm_p_sums.write(ctx, ctx.global_id, my)
        if persist_on:
            ctx.persist()


@vectorized_for(partial_sums_kernel)
def partial_sums_warp(wctx, inp, pm_p_sums, persist_on):
    """Warp-vectorized Fig. 8 kernel; accounting matches the scalar body."""
    blk = wctx.block_id
    bdim = wctx.block_dim
    last_idx = (blk + 1) * bdim - 1
    if int(pm_p_sums.read_uniform_warp(wctx, last_idx)) != EMPTY:
        return
    shared = wctx.shared
    if "prefix" not in shared:
        vals = inp.read_vec_warp(wctx, [blk * bdim], bdim)[0]
        shared["prefix"] = np.cumsum(np.asarray(vals, dtype=np.int64))
        wctx.charge_ops(bdim)
    my = shared["prefix"][wctx.thread_flats]
    wctx.charge_ops(10 * wctx.n)
    rest = wctx.thread_flats != bdim - 1
    if rest.any():
        pm_p_sums.write_warp(wctx, wctx.global_ids[rest], my[rest], lanes=rest)
        if persist_on:
            wctx.persist(rest)
    yield  # __syncthreads()
    last = ~rest
    if last.any():
        pm_p_sums.write_warp(wctx, wctx.global_ids[last], my[last], lanes=last)
        if persist_on:
            wctx.persist(last)


def final_sums_kernel(ctx, pm_p_sums, block_offsets, pm_out, persist_on):
    """Fold block offsets into final sums, same sentinel ordering."""
    blk = ctx.block_id
    bdim = ctx.block_dim
    last_idx = (blk + 1) * bdim - 1
    if int(pm_out.read(ctx, last_idx)) != EMPTY:
        return
    offset = int(block_offsets.read(ctx, blk))
    mine = int(pm_p_sums.read(ctx, ctx.global_id)) + offset
    ctx.charge_ops(4)
    if ctx.thread_in_block != bdim - 1:
        pm_out.write(ctx, ctx.global_id, mine)
        if persist_on:
            ctx.persist()
    yield
    if ctx.thread_in_block == bdim - 1:
        pm_out.write(ctx, ctx.global_id, mine)
        if persist_on:
            ctx.persist()


@vectorized_for(final_sums_kernel)
def final_sums_warp(wctx, pm_p_sums, block_offsets, pm_out, persist_on):
    blk = wctx.block_id
    bdim = wctx.block_dim
    last_idx = (blk + 1) * bdim - 1
    if int(pm_out.read_uniform_warp(wctx, last_idx)) != EMPTY:
        return
    offset = int(block_offsets.read_uniform_warp(wctx, blk))
    mine = pm_p_sums.read_warp(wctx, wctx.global_ids) + offset
    wctx.charge_ops(4 * wctx.n)
    rest = wctx.thread_flats != bdim - 1
    if rest.any():
        pm_out.write_warp(wctx, wctx.global_ids[rest], mine[rest], lanes=rest)
        if persist_on:
            wctx.persist(rest)
    yield
    last = ~rest
    if last.any():
        pm_out.write_warp(wctx, wctx.global_ids[last], mine[last], lanes=last)
        if persist_on:
            wctx.persist(last)


@dataclass
class PrefixSumConfig:
    """Scaled PS (paper: 1K arrays of 1M integers, 4 GB)."""

    n: int = 16384
    block_dim: int = 256
    arrays: int = 1
    seed: int = 31


class PrefixSum(CrashConsistent):
    """The PS workload runner."""

    name = "PS"
    category = Category.NATIVE
    fine_grained = True
    paper_data_bytes = 4_000_000_000  # Table 1: 4 GB

    def __init__(self, config: PrefixSumConfig | None = None) -> None:
        cfg = config or PrefixSumConfig()
        if cfg.n % cfg.block_dim:
            raise ValueError("n must be a multiple of block_dim")
        self.config = cfg

    def _buffer_bytes(self) -> int:
        # partial sums + final sums, int64 each
        return _HEADER_BYTES + 2 * 8 * self.config.n

    def _psum_off(self) -> int:
        return _HEADER_BYTES

    def _out_off(self) -> int:
        return _HEADER_BYTES + 8 * self.config.n

    def run(self, mode: Mode, system=None, crash_injector=None,
            resume_state=None) -> RunResult:
        cfg = self.config
        system = system or make_system(mode)
        driver = ModeDriver(system, mode)
        rng = np.random.default_rng(cfg.seed)
        self._inputs = [
            rng.integers(1, 100, size=cfg.n, dtype=np.int64)
            for _ in range(cfg.arrays)
        ]
        bufs = []
        for a in range(cfg.arrays):
            buf = driver.buffer(f"/pm/ps{a}.state", self._buffer_bytes(),
                                fine_grained=True, paper_bytes=self.paper_data_bytes)
            bufs.append(buf)
        self._state = (system, driver, bufs)

        def scan_all():
            for a, buf in enumerate(bufs):
                self._scan_one(driver, buf, self._inputs[a], crash_injector)
            return cfg.arrays

        arrays, window = measure(system, scan_all)
        return RunResult(
            workload=self.name, mode=mode, elapsed=window.elapsed, window=window,
            extras={"arrays": arrays, "elements": cfg.arrays * cfg.n},
        )

    def _scan_one(self, driver, buf, data, injector) -> None:
        cfg = self.config
        system = driver.system
        n_blocks = cfg.n // cfg.block_dim
        hbm = system.machine.alloc_hbm(
            f"ps.in.{buf.path}", data.nbytes + n_blocks * 8
        )
        inp = DeviceArray(hbm, np.int64, 0, cfg.n)
        inp.np[:] = data
        p_sums = buf.array(np.int64, self._psum_off(), cfg.n)
        out = buf.array(np.int64, self._out_off(), cfg.n)
        persist_on = driver.mode.data_on_pm
        driver.persist_phase_begin()
        try:
            res = system.gpu.launch(
                partial_sums_kernel, n_blocks, cfg.block_dim,
                (inp, p_sums, persist_on), crash_injector=injector,
            )
            self._last_lane = res.lane
            # Exclusive scan of block totals (tiny, done by one warp).
            block_totals = p_sums.np[cfg.block_dim - 1 :: cfg.block_dim]
            offsets = DeviceArray(hbm, np.int64, data.nbytes, n_blocks)
            offsets.np[:] = np.concatenate([[0], np.cumsum(block_totals)[:-1]])
            system.gpu.compute(4 * n_blocks, active_threads=n_blocks)
            system.gpu.launch(
                final_sums_kernel, n_blocks, cfg.block_dim,
                (p_sums, offsets, out, persist_on), crash_injector=injector,
            )
        finally:
            driver.persist_phase_end()
        # Post-kernel persistence for the CPU-assisted modes.
        buf.persist_range(self._psum_off(), 2 * 8 * cfg.n)
        system.machine.free(hbm)

    def declare_invariants(self, system) -> list:
        """Fig. 8's recovery contract, as checkable predicates.

        The sentinel discipline promises: if a block's *last* slot is
        non-EMPTY in the durable image, every slot of that block is durable
        and correct.  Checked for both the partial-sums and the final-sums
        arrays against the deterministic reference scan.  Only meaningful
        after a crash during :meth:`run` on the same instance (``self``
        holds the inputs the crashed run used).
        """
        cfg = self.config

        def sentinel_implies_block() -> tuple[bool, str]:
            bad = []
            for a, data in enumerate(self._inputs):
                path = f"/pm/ps{a}.state"
                if not system.fs.exists(path):
                    continue  # crash predates the buffer
                buf = self._state[2][a]
                psum_ref = (data.reshape(-1, cfg.block_dim)
                            .cumsum(axis=1).reshape(-1))
                out_ref = np.cumsum(data)
                for label, off, ref in (("psum", self._psum_off(), psum_ref),
                                        ("out", self._out_off(), out_ref)):
                    durable = buf.durable_view(np.int64, off, cfg.n)
                    for blk in range(cfg.n // cfg.block_dim):
                        lo, hi = blk * cfg.block_dim, (blk + 1) * cfg.block_dim
                        if int(durable[hi - 1]) == EMPTY:
                            continue
                        if not np.array_equal(durable[lo:hi], ref[lo:hi]):
                            bad.append(f"ps{a}.{label} block {blk}")
            if bad:
                return False, "sentinel present but block torn: " + ", ".join(bad)
            return True, "every sentinelled block is complete and correct"

        def resume_completes() -> tuple[bool, str]:
            # Line 3 of Fig. 8: a re-run skips completed blocks and
            # recomputes the rest; afterwards the scan must be exact.
            if not system.fs.exists("/pm/ps0.state"):
                return True, "crash predates the buffer; nothing to resume"
            from .base import PersistentBuffer

            driver = ModeDriver(system, Mode.GPM)
            for a, data in enumerate(self._inputs):
                buf = PersistentBuffer.reopen(driver, f"/pm/ps{a}.state")
                self._scan_one(driver, buf, data, None)
                got = buf.visible_view(np.int64, self._out_off(), cfg.n)
                if not np.array_equal(got, np.cumsum(data)):
                    return False, f"resumed scan of ps{a} is wrong"
            return True, "resumed run produced the exact scan"

        return [
            ("ps-sentinel-implies-block",
             "a durable last-thread value implies the whole block is durable",
             sentinel_implies_block),
            ("ps-resume-completes",
             "re-running after the crash completes the scan exactly",
             resume_completes),
        ]

    def verify(self) -> bool:
        """Final sums must equal the host-side inclusive scan."""
        system, driver, bufs = self._state
        for data, buf in zip(self._inputs, bufs):
            got = buf.visible_view(np.int64, self._out_off(), self.config.n)
            if not np.array_equal(got, np.cumsum(data)):
                return False
        return True

"""gpKVS: a GPU-accelerated persistent key-value store (MegaKV on GPM).

Section 4.1 / Fig. 6: MegaKV [102] extended with libGPM transactions.  The
store is an 8-way set-associative hash table of 8-byte keys and values kept
on PM; batched SETs run as GPU kernels where every insertion is write-ahead
undo-logged through HCL, the new pair is stored in place and persisted, and
a per-batch transaction flag brackets the whole batch.  GETs are served from
a volatile HBM mirror of the table ("GETs are mostly served out of the
GPU's fast HBM"), identically in every mode.

Recovery (Fig. 6b): if the persisted transaction flag is set, a recovery
kernel undoes the partial batch from the per-thread logs; otherwise the
logs are simply truncated.

Scaling substitution: the paper runs 25 batches of 2M SETs against a
multi-GB store; we run a few batches of hundreds of SETs against a ~1 MB
store, preserving the update-sparsity ratio that drives CAP's ~39x write
amplification (Table 4).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.errors import LogEmpty
from ..core.hcl import HclLog
from ..core.logging import (
    gpmlog_clear,
    gpmlog_create_conv,
    gpmlog_create_hcl,
    gpmlog_insert,
    gpmlog_read,
    gpmlog_remove,
)
from ..core.transactions import TransactionFlag
from ..gpu.memory import DeviceArray
from ..gpu.warp import scalar_lane, vectorized_for
from .base import (
    Category,
    CrashConsistent,
    Mode,
    ModeDriver,
    RunResult,
    make_system,
    measure,
)

_MASK64 = (1 << 64) - 1
#: Undo-log entry: [set u32, way u32, old_key u64, old_value u64]
LOG_ENTRY_BYTES = 24


def hash64(key: int) -> int:
    """SplitMix64 finaliser - the kernel's hash function."""
    k = key & _MASK64
    k = (k ^ (k >> 33)) * 0xFF51AFD7ED558CCD & _MASK64
    k = (k ^ (k >> 29)) * 0xC4CEB9FE1A85EC53 & _MASK64
    return k ^ (k >> 32)


def hash64_vec(keys: np.ndarray) -> np.ndarray:
    """Vectorized :func:`hash64` (bit-identical, parity-tested)."""
    k = np.asarray(keys, dtype=np.uint64)
    k = (k ^ (k >> np.uint64(33))) * np.uint64(0xFF51AFD7ED558CCD)
    k = (k ^ (k >> np.uint64(29))) * np.uint64(0xC4CEB9FE1A85EC53)
    return k ^ (k >> np.uint64(32))


def _pack_entry(set_idx: int, way: int, old_key: int, old_value: int) -> np.ndarray:
    entry = np.zeros(LOG_ENTRY_BYTES, dtype=np.uint8)
    entry[0:4] = np.frombuffer(np.uint32(set_idx).tobytes(), dtype=np.uint8)
    entry[4:8] = np.frombuffer(np.uint32(way).tobytes(), dtype=np.uint8)
    entry[8:16] = np.frombuffer(np.uint64(old_key).tobytes(), dtype=np.uint8)
    entry[16:24] = np.frombuffer(np.uint64(old_value).tobytes(), dtype=np.uint8)
    return entry


def _unpack_entry(raw: np.ndarray) -> tuple[int, int, int, int]:
    return (
        int(raw[0:4].view(np.uint32)[0]),
        int(raw[4:8].view(np.uint32)[0]),
        int(raw[8:16].view(np.uint64)[0]),
        int(raw[16:24].view(np.uint64)[0]),
    )


# ---------------------------------------------------------------------------
# kernels
# ---------------------------------------------------------------------------


def set_kernel(ctx, keys, values, mirror_keys, mirror_values, batch_keys,
               batch_values, n_ops, n_sets, ways, log, touched):
    """One batched SET per thread - the (simplified) kernel of Fig. 6a."""
    i = ctx.global_id
    if i >= n_ops:
        return
    key = int(batch_keys.read(ctx, i))
    value = int(batch_values.read(ctx, i))
    ctx.charge_ops(6)  # hashing
    set_idx = hash64(key) % n_sets
    base = set_idx * ways
    row = keys.read_vec(ctx, base, ways)
    loc = -1
    for w in range(ways):
        if int(row[w]) == key:
            loc = w
            break
    if loc < 0:
        for w in range(ways):
            if int(row[w]) == 0:
                loc = w
                break
    if loc < 0:
        loc = hash64(key ^ 0x9E3779B97F4A7C15) % ways  # evict a pseudo-random way
    old_key = int(row[loc])
    old_value = int(values.read(ctx, base + loc))
    if log is not None:
        gpmlog_insert(ctx, log, _pack_entry(set_idx, loc, old_key, old_value))
    keys.write(ctx, base + loc, key)
    values.write(ctx, base + loc, value)
    ctx.persist()
    # Maintain the volatile HBM mirror used by GETs.
    mirror_keys.write(ctx, base + loc, key)
    mirror_values.write(ctx, base + loc, value)
    touched.append(base + loc)


@vectorized_for(set_kernel)
def set_warp(wctx, keys, values, mirror_keys, mirror_values, batch_keys,
             batch_values, n_ops, n_sets, ways, log, touched):
    """Warp-vectorized SET batch (HCL logs only; see ``_run_set_batch``).

    Slot selection is the one sequential hazard: an earlier thread's insert
    can consume the empty way a later thread in the same warp would pick,
    so the selection loop walks lanes in thread order over the *live*
    table view, applying each lane's key/value as it goes (reads metered
    through :meth:`~repro.gpu.warp.WarpContext.meter_loads`).  Everything
    else - batch reads, undo-log insert, table stores, persists, mirror
    maintenance - runs as whole-warp vector batches.
    """
    sel = wctx.active(wctx.global_ids < n_ops)
    if sel.size == 0:
        return
    g = wctx.global_ids[sel]
    k = sel.size
    bkeys = batch_keys.read_warp(wctx, g, lanes=sel)
    bvals = batch_values.read_warp(wctx, g, lanes=sel)
    wctx.charge_ops(6 * k)  # hashing
    set_idxs = (hash64_vec(bkeys) % np.uint64(n_sets)).astype(np.int64)
    bases = set_idxs * ways
    wctx.meter_loads(keys.region, k, 8 * ways)   # the per-thread row read_vec
    wctx.meter_loads(values.region, k, 8)        # the per-thread old-value read
    keys_live = keys.np
    values_live = values.np
    if np.unique(bases).size == k:
        # No two lanes share a set: selection is hazard-free, vectorize it.
        rows = keys_live[(bases[:, None] + np.arange(ways)).reshape(-1)]
        rows = rows.reshape(k, ways)
        m = rows == bkeys[:, None]
        e = rows == 0
        evict = (hash64_vec(bkeys ^ np.uint64(0x9E3779B97F4A7C15))
                 % np.uint64(ways)).astype(np.int64)
        ways_chosen = np.where(m.any(axis=1), m.argmax(axis=1),
                               np.where(e.any(axis=1), e.argmax(axis=1), evict))
        locs = bases + ways_chosen
        old_keys = rows[np.arange(k), ways_chosen]
        old_values = values_live[locs].copy()
        keys_live[locs] = bkeys
        values_live[locs] = bvals
    else:
        locs = np.empty(k, dtype=np.int64)
        ways_chosen = np.empty(k, dtype=np.int64)
        old_keys = np.empty(k, dtype=np.uint64)
        old_values = np.empty(k, dtype=np.uint64)
        key_list = bkeys.tolist()
        val_list = bvals.tolist()
        for j in range(k):
            key = key_list[j]
            base = int(bases[j])
            row = keys_live[base:base + ways]
            loc = -1
            for w in range(ways):
                if int(row[w]) == key:
                    loc = w
                    break
            if loc < 0:
                for w in range(ways):
                    if int(row[w]) == 0:
                        loc = w
                        break
            if loc < 0:
                loc = hash64(key ^ 0x9E3779B97F4A7C15) % ways
            ways_chosen[j] = loc
            old_keys[j] = row[loc]
            old_values[j] = values_live[base + loc]
            keys_live[base + loc] = key
            values_live[base + loc] = val_list[j]
            locs[j] = base + loc
    if log is not None:
        entries = np.empty((k, 6), dtype=np.uint32)
        entries[:, 0] = set_idxs.astype(np.uint32)
        entries[:, 1] = ways_chosen.astype(np.uint32)
        entries[:, 2] = (old_keys & np.uint64(0xFFFFFFFF)).astype(np.uint32)
        entries[:, 3] = (old_keys >> np.uint64(32)).astype(np.uint32)
        entries[:, 4] = (old_values & np.uint64(0xFFFFFFFF)).astype(np.uint32)
        entries[:, 5] = (old_values >> np.uint64(32)).astype(np.uint32)
        log.insert_warp(wctx, entries, lanes=sel)
    keys.write_warp(wctx, locs, bkeys, lanes=sel)
    values.write_warp(wctx, locs, bvals, lanes=sel)
    wctx.persist(sel)
    mirror_keys.write_warp(wctx, locs, bkeys, lanes=sel)
    mirror_values.write_warp(wctx, locs, bvals, lanes=sel)
    touched.extend(int(x) for x in locs)


def get_kernel(ctx, mirror_keys, mirror_values, batch_keys, out, n_ops, n_sets, ways):
    """One batched GET per thread, served from the HBM mirror."""
    i = ctx.global_id
    if i >= n_ops:
        return
    key = int(batch_keys.read(ctx, i))
    ctx.charge_ops(6)
    base = (hash64(key) % n_sets) * ways
    row = mirror_keys.read_vec(ctx, base, ways)
    value = 0
    for w in range(ways):
        if int(row[w]) == key:
            value = int(mirror_values.read(ctx, base + w))
            break
    out.write(ctx, i, value)


@vectorized_for(get_kernel)
def get_warp(wctx, mirror_keys, mirror_values, batch_keys, out, n_ops, n_sets, ways):
    """Warp-vectorized GET batch: pure reads of a static mirror, no hazards."""
    sel = wctx.active(wctx.global_ids < n_ops)
    if sel.size == 0:
        return
    g = wctx.global_ids[sel]
    k = sel.size
    bkeys = batch_keys.read_warp(wctx, g, lanes=sel)
    wctx.charge_ops(6 * k)
    bases = (hash64_vec(bkeys) % np.uint64(n_sets)).astype(np.int64) * ways
    rows = mirror_keys.read_vec_warp(wctx, bases, ways, lanes=sel)
    match = rows == bkeys[:, None]
    has = match.any(axis=1)
    value = np.zeros(k, dtype=np.uint64)
    if has.any():
        w = np.argmax(match, axis=1)  # first matching way, as the scalar scan
        value[has] = mirror_values.read_warp(
            wctx, bases[has] + w[has], lanes=sel[has]
        )
    out.write_warp(wctx, g, value, lanes=sel)


def delete_kernel(ctx, keys, values, mirror_keys, mirror_values, batch_keys,
                  n_ops, n_sets, ways, log, touched):
    """One batched DELETE per thread: log the pair, then zero the slot.

    Deletion is the SET of the empty sentinel; the same undo entry (old
    key + value at the found slot) makes it transactional with no new
    recovery logic - Fig. 6b's kernel restores deletes too.
    """
    i = ctx.global_id
    if i >= n_ops:
        return
    key = int(batch_keys.read(ctx, i))
    ctx.charge_ops(6)
    set_idx = hash64(key) % n_sets
    base = set_idx * ways
    row = keys.read_vec(ctx, base, ways)
    loc = -1
    for w in range(ways):
        if int(row[w]) == key:
            loc = w
            break
    if loc < 0:
        return  # absent keys: nothing to delete, nothing to log
    if log is not None:
        old_value = int(values.read(ctx, base + loc))
        gpmlog_insert(ctx, log, _pack_entry(set_idx, loc, key, old_value))
    keys.write(ctx, base + loc, 0)
    values.write(ctx, base + loc, 0)
    ctx.persist()
    if mirror_keys is not None:
        mirror_keys.write(ctx, base + loc, 0)
        mirror_values.write(ctx, base + loc, 0)
    touched.append(base + loc)


def _recovery_kernel(ctx, keys, values, mirror_keys, mirror_values, log, ways, n_ops):
    i = ctx.global_id
    if i >= n_ops:
        return
    try:
        raw = gpmlog_read(ctx, log, LOG_ENTRY_BYTES)
    except LogEmpty:
        return
    set_idx, way, old_key, old_value = _unpack_entry(raw)
    loc = set_idx * ways + way
    keys.write(ctx, loc, old_key)
    values.write(ctx, loc, old_value)
    ctx.persist()
    if mirror_keys is not None:
        mirror_keys.write(ctx, loc, old_key)
        mirror_values.write(ctx, loc, old_value)
    gpmlog_remove(ctx, log, LOG_ENTRY_BYTES)


# ---------------------------------------------------------------------------
# the workload
# ---------------------------------------------------------------------------


@dataclass
class KvsConfig:
    """Scaled-down gpKVS parameters (paper values in comments)."""

    n_sets: int = 8192          # paper: tens of millions of pairs
    ways: int = 8               # MegaKV's 8-way set-associativity
    batch_size: int = 640       # paper: 2M SETs per batch
    set_batches: int = 4        # paper: 25
    get_batches: int = 0        # used by the 95:5 variant
    get_batch_size: int = 0
    block_dim: int = 128
    seed: int = 7
    use_hcl: bool = True        # False -> conventional log (Fig. 11a)
    log_partitions: int = 64


class GpKvs(CrashConsistent):
    """The gpKVS workload runner."""

    name = "gpKVS"
    category = Category.TRANSACTIONAL
    fine_grained = True
    paper_data_bytes = 4_100_000_000  # Table 1: 4.1 GB

    def __init__(self, config: KvsConfig | None = None) -> None:
        self.config = config or KvsConfig()

    @classmethod
    def mixed_95_5(cls) -> "GpKvs":
        """The gpKVS (95:5) variant: 95% GETs, 5% SETs."""
        w = cls(KvsConfig(set_batches=1, batch_size=640,
                          get_batches=4, get_batch_size=3040))
        w.name = "gpKVS (95:5)"
        return w

    # -- setup -----------------------------------------------------------------

    def _table_bytes(self) -> int:
        return self.config.n_sets * self.config.ways * 8 * 2

    def _grid(self, n_ops: int) -> int:
        return (n_ops + self.config.block_dim - 1) // self.config.block_dim

    def _make_log(self, driver: ModeDriver, n_ops: int):
        cfg = self.config
        if not driver.mode.data_on_pm:
            return None  # CAP has no logging (Section 6.1)
        if cfg.use_hcl:
            capacity = self._grid(n_ops) * cfg.block_dim * 64 * 4 + (1 << 16)
            return gpmlog_create_hcl(driver.system, "/pm/gpkvs.log", capacity,
                                     self._grid(n_ops), cfg.block_dim)
        capacity = max(4 << 20, n_ops * 64 * cfg.log_partitions)
        return gpmlog_create_conv(driver.system, "/pm/gpkvs.log", capacity,
                                  cfg.log_partitions)

    def _batches(self):
        cfg = self.config
        rng = np.random.default_rng(cfg.seed)
        n_pairs = cfg.n_sets * cfg.ways
        for _ in range(cfg.set_batches):
            # Keys are unique within a batch: MegaKV's batching pipeline
            # compacts SETs to the same key before the kernel (two same-key
            # SETs in one batch would make per-thread undo order-dependent).
            keys = rng.choice(np.arange(1, n_pairs * 4, dtype=np.uint64),
                              size=cfg.batch_size, replace=False)
            vals = rng.integers(1, _MASK64, size=cfg.batch_size, dtype=np.uint64)
            yield keys, vals

    # -- execution ----------------------------------------------------------------

    def run(self, mode: Mode, system=None, crash_injector=None) -> RunResult:
        """Run the batched workload under ``mode`` and report throughput.

        With a ``crash_injector`` armed, a batch may die mid-kernel; the
        raised :class:`~repro.sim.crash.SimulatedCrash` propagates to the
        caller (see :meth:`recover`).
        """
        cfg = self.config
        system = system or make_system(mode)
        driver = ModeDriver(system, mode)
        table = driver.buffer("/pm/gpkvs.table", self._table_bytes(),
                              fine_grained=True, paper_bytes=self.paper_data_bytes)
        n_pairs = cfg.n_sets * cfg.ways
        keys = table.array(np.uint64, 0, n_pairs)
        values = table.array(np.uint64, n_pairs * 8, n_pairs)
        machine = system.machine
        mirror = machine.alloc_hbm("gpkvs.mirror", self._table_bytes())
        mirror_keys_arr = DeviceArray(mirror, np.uint64, 0, n_pairs)
        mirror_values_arr = DeviceArray(mirror, np.uint64, n_pairs * 8, n_pairs)
        log = self._make_log(driver, cfg.batch_size)
        flag = (TransactionFlag.create(system, "/pm/gpkvs.flag")
                if driver.mode.data_on_pm else None)
        self._state = (system, driver, table, keys, values,
                       mirror_keys_arr, mirror_values_arr, log, flag)

        def op_phase():
            total_ops = 0
            for batch_keys_np, batch_vals_np in self._batches():
                total_ops += self._run_set_batch(
                    driver, table, keys, values, mirror_keys_arr, mirror_values_arr,
                    log, flag, batch_keys_np, batch_vals_np, crash_injector,
                )
            total_ops += self._run_get_batches(driver, mirror_keys_arr, mirror_values_arr)
            return total_ops

        total_ops, window = measure(system, op_phase)
        throughput = total_ops / window.elapsed if window.elapsed else 0.0
        return RunResult(
            workload=self.name, mode=mode, elapsed=window.elapsed, window=window,
            extras={"ops": total_ops, "throughput_ops_per_s": throughput},
        )

    def _run_set_batch(self, driver, table, keys, values, mirror_keys, mirror_values,
                       log, flag, batch_keys_np, batch_vals_np, crash_injector):
        cfg = self.config
        system = driver.system
        n_ops = batch_keys_np.size
        hbm_in = system.machine.alloc_hbm(
            f"gpkvs.batch{system.stats.kernels_launched}", n_ops * 16
        )
        bk = DeviceArray(hbm_in, np.uint64, 0, n_ops)
        bv = DeviceArray(hbm_in, np.uint64, n_ops * 8, n_ops)
        bk.np[:] = batch_keys_np
        bv.np[:] = batch_vals_np
        touched: list[int] = []
        if flag is not None:
            flag.begin()
        driver.persist_phase_begin()
        try:
            # The conventional-log ablation (Fig. 11a) serialises threads on
            # partition locks - per-thread interleaving is its whole point,
            # so it keeps the reference interpreter.
            if log is not None and not isinstance(log, HclLog):
                with scalar_lane():
                    result = system.gpu.launch(
                        set_kernel, self._grid(n_ops), cfg.block_dim,
                        (keys, values, mirror_keys, mirror_values, bk, bv,
                         n_ops, cfg.n_sets, cfg.ways, log, touched),
                        crash_injector=crash_injector,
                    )
            else:
                result = system.gpu.launch(
                    set_kernel, self._grid(n_ops), cfg.block_dim,
                    (keys, values, mirror_keys, mirror_values, bk, bv, n_ops,
                     cfg.n_sets, cfg.ways, log, touched),
                    crash_injector=crash_injector,
                )
            self._last_lane = result.lane
        finally:
            driver.persist_phase_end()
        # Mode-appropriate post-kernel persistence of the updated pairs.
        idx = np.unique(np.asarray(touched, dtype=np.int64)) if touched else np.array([], dtype=np.int64)
        starts = np.concatenate([idx * 8, values.offset + idx * 8])
        lengths = np.full(starts.size, 8, dtype=np.int64)
        table.persist_segments(starts, lengths)
        if flag is not None:
            flag.commit()
            gpmlog_clear(log)
        system.machine.free(hbm_in)
        return n_ops

    def _run_get_batches(self, driver, mirror_keys, mirror_values):
        cfg = self.config
        if cfg.get_batches == 0:
            return 0
        system = driver.system
        rng = np.random.default_rng(cfg.seed + 1)
        total = 0
        for b in range(cfg.get_batches):
            n_ops = cfg.get_batch_size
            hbm = system.machine.alloc_hbm(f"gpkvs.get{b}", n_ops * 16)
            bk = DeviceArray(hbm, np.uint64, 0, n_ops)
            out = DeviceArray(hbm, np.uint64, n_ops * 8, n_ops)
            bk.np[:] = rng.integers(1, cfg.n_sets * cfg.ways * 4, size=n_ops, dtype=np.uint64)
            system.gpu.launch(
                get_kernel, self._grid(n_ops), cfg.block_dim,
                (mirror_keys, mirror_values, bk, out, n_ops, cfg.n_sets, cfg.ways),
            )
            system.machine.free(hbm)
            total += n_ops
        return total

    def delete_batch(self, delete_keys, crash_injector=None) -> int:
        """Transactionally delete a batch of keys (call after :meth:`run`).

        Uses the same undo log / flag protocol as SETs; a crash mid-batch
        is undone by :meth:`recover`.  Returns how many keys were present.
        """
        (system, driver, table, keys, values,
         mirror_keys, mirror_values, log, flag) = self._state
        cfg = self.config
        delete_keys = np.asarray(delete_keys, dtype=np.uint64)
        if delete_keys.size > cfg.batch_size:
            raise ValueError(
                f"delete batch of {delete_keys.size} exceeds the log geometry "
                f"({cfg.batch_size})"
            )
        n_ops = delete_keys.size
        hbm = system.machine.alloc_hbm(
            f"gpkvs.del{system.stats.kernels_launched}", n_ops * 8
        )
        bk = DeviceArray(hbm, np.uint64, 0, n_ops)
        bk.np[:] = delete_keys
        present_before = sum(
            1 for k in delete_keys.tolist()
            if int(k) in keys.np[(hash64(int(k)) % cfg.n_sets) * cfg.ways:
                                 (hash64(int(k)) % cfg.n_sets) * cfg.ways + cfg.ways]
        )
        touched: list[int] = []
        if flag is not None:
            flag.begin()
        driver.persist_phase_begin()
        try:
            system.gpu.launch(
                delete_kernel, self._grid(n_ops), cfg.block_dim,
                (keys, values, mirror_keys, mirror_values, bk, n_ops,
                 cfg.n_sets, cfg.ways, log, touched),
                crash_injector=crash_injector,
            )
        finally:
            driver.persist_phase_end()
        idx = (np.unique(np.asarray(touched, dtype=np.int64))
               if touched else np.array([], dtype=np.int64))
        starts = np.concatenate([idx * 8, values.offset + idx * 8])
        table.persist_segments(starts, np.full(starts.size, 8, dtype=np.int64))
        if flag is not None:
            flag.commit()
            gpmlog_clear(log)
        system.machine.free(hbm)
        return present_before

    # -- crash invariants -----------------------------------------------------------

    def apply_batch_reference(self, keys_np: np.ndarray, values_np: np.ndarray,
                              batch_keys, batch_vals) -> None:
        """Apply one SET batch to host-side table arrays, in place.

        Mirrors :func:`set_kernel`'s slot choice exactly (match, then first
        empty way, then pseudo-random eviction) in thread order, which is
        the engine's deterministic execution order - so committed batches
        replayed through this function predict the durable table bit for
        bit.  Used by the crash checker to compute per-batch reference
        snapshots.
        """
        cfg = self.config
        for key, value in zip(batch_keys.tolist(), batch_vals.tolist()):
            base = (hash64(int(key)) % cfg.n_sets) * cfg.ways
            row = keys_np[base:base + cfg.ways]
            loc = -1
            for w in range(cfg.ways):
                if int(row[w]) == key:
                    loc = w
                    break
            if loc < 0:
                for w in range(cfg.ways):
                    if int(row[w]) == 0:
                        loc = w
                        break
            if loc < 0:
                loc = hash64(int(key) ^ 0x9E3779B97F4A7C15) % cfg.ways
            keys_np[base + loc] = key
            values_np[base + loc] = value

    def declare_invariants(self, system) -> list:
        """Structural gpKVS invariants over the recovered store."""

        def flag_idle() -> tuple[bool, str]:
            if not system.fs.exists("/pm/gpkvs.flag"):
                return True, "crash predates the transaction flag"
            flag = TransactionFlag.open(system, "/pm/gpkvs.flag")
            if flag.active:
                return False, "transaction flag still active after recovery"
            return True, "transaction flag idle"

        def table_intact() -> tuple[bool, str]:
            # Keys and values pair up: a durable key slot never has its
            # value torn away (each SET persists both words in one epoch).
            if not system.fs.exists("/pm/gpkvs.table"):
                return True, "crash predates the table"
            from ..core.mapping import gpm_map

            cfg = self.config
            n_pairs = cfg.n_sets * cfg.ways
            table = gpm_map(system, "/pm/gpkvs.table")
            keys = table.region.persisted_view(np.uint64, 0, n_pairs)
            values = table.region.persisted_view(np.uint64, n_pairs * 8, n_pairs)
            torn = np.flatnonzero((keys != 0) & (values == 0))
            if torn.size:
                return False, f"{torn.size} slots have a key but no value"
            return True, "no torn key/value slots"

        return [
            ("kvs-flag-idle",
             "the batch transaction flag is idle after recovery", flag_idle),
            ("kvs-table-intact",
             "durable keys always carry their durable values", table_intact),
        ]

    # -- recovery -------------------------------------------------------------------

    def recover(self, system, mode: Mode) -> float:
        """Post-crash recovery: undo the interrupted batch from the logs.

        Must be called on the *same system* after a crash during
        :meth:`run`.  Returns the restoration latency in simulated seconds.
        """
        from ..core.logging import gpmlog_open
        from ..core.mapping import gpm_map

        cfg = self.config
        start = system.clock.now
        flag = TransactionFlag.open(system, "/pm/gpkvs.flag")
        log = gpmlog_open(system, "/pm/gpkvs.log")
        table = gpm_map(system, "/pm/gpkvs.table")
        n_pairs = cfg.n_sets * cfg.ways
        keys = table.array(np.uint64, 0, n_pairs)
        values = table.array(np.uint64, n_pairs * 8, n_pairs)
        if flag.active:
            driver = ModeDriver(system, mode)
            driver.persist_phase_begin()
            try:
                system.gpu.launch(
                    _recovery_kernel, self._grid(cfg.batch_size), cfg.block_dim,
                    (keys, values, None, None, log, cfg.ways, cfg.batch_size),
                )
            finally:
                driver.persist_phase_end()
            flag.commit()
        gpmlog_clear(log)
        return system.clock.now - start

"""GPMbench infrastructure: persistence modes, buffers, and run results.

Every GPMbench workload can execute under all the persistence systems the
paper evaluates (Figs. 9 and 10):

=========  ==================================================================
GPM        data on PM, in-kernel fine-grained persists (DDIO off in windows)
GPM-NDP    data on PM, direct loads/stores, but *no direct persistence*:
           DDIO stays on and the CPU flushes afterwards (Fig. 10)
GPM-eADR   GPM on a projected eADR platform: persists complete at the LLC
CAP-fs     kernel writes HBM; CPU persists results via write()+fsync()
CAP-mm     kernel writes HBM; CPU persists via mmap+CLFLUSHOPT+SFENCE
CAP-eADR   CAP-mm without the flushes (Fig. 10)
GPUfs      kernel writes HBM; per-threadblock gwrite RPCs persist via the OS
=========  ==================================================================

The central abstraction is :class:`PersistentBuffer`: a logical persistent
data structure that kernels address uniformly, realised as a PM mapping
(GPM modes) or as an HBM shadow plus a PM file persisted post-kernel (CAP
modes).  Write amplification (Table 4) *emerges* from this split: GPM
persists exactly the updated bytes, CAP must ship whole structures.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

from ..core.mapping import GpmRegion, gpm_map
from ..core.persist import gpm_persist_begin, gpm_persist_end
from ..gpu.memory import DeviceArray
from ..host.cap import CapEngine, CapMode
from ..host.filesystem import PmFile
from ..host.gpufs import GpuFs, GpufsUnsupported
from ..sim.events import WindowMark
from ..sim.persistency import make_model, mode_entry
from ..sim.stats import MachineStats, WindowedStats
from ..system import System


class Mode(enum.Enum):
    """Persistence system under test.

    A thin enum view over the single source of truth,
    ``repro.sim.persistency.MODE_REGISTRY``: every member's value is a
    registry key, and the data-path properties below are registry lookups.
    """

    GPM = "gpm"
    GPM_NDP = "gpm-ndp"
    GPM_EADR = "gpm-eadr"
    GPM_EPOCH = "gpm-epoch"
    GPM_RELAXED = "gpm-relaxed"
    GPM_ADAPTIVE = "gpm-adaptive"
    CAP_FS = "cap-fs"
    CAP_MM = "cap-mm"
    CAP_EADR = "cap-eadr"
    GPUFS = "gpufs"

    @classmethod
    def from_name(cls, name: str) -> "Mode":
        """Resolve a mode string; unknown names error with the known set."""
        mode_entry(name)  # raises ValueError listing known names
        return cls(name)

    @property
    def entry(self):
        """This mode's :class:`~repro.sim.persistency.ModeEntry`."""
        return mode_entry(self.value)

    @property
    def persistency_model(self) -> str:
        """Name of the persistency model the mode's machines run under."""
        return self.entry.model

    @property
    def data_on_pm(self) -> bool:
        """Do kernels load/store PM directly in this mode?"""
        return self.entry.data_on_pm

    @property
    def in_kernel_persist(self) -> bool:
        """Do kernels guarantee persistence themselves?"""
        return self.entry.in_kernel_persist

    @property
    def uses_persist_window(self) -> bool:
        """Does ``ModeDriver`` open a persist window around kernel phases?"""
        return self.entry.uses_persist_window

    @property
    def needs_eadr(self) -> bool:
        return self.entry.needs_eadr


class Category(enum.Enum):
    """GPMbench workload classes (Table 1)."""

    TRANSACTIONAL = "transactional"
    CHECKPOINT = "checkpointing"
    NATIVE = "native"


@dataclass
class RunResult:
    """Outcome of one workload run under one mode."""

    workload: str
    mode: Mode
    elapsed: float
    window: WindowedStats
    #: workload-specific figures of merit (ops, throughput, ...)
    extras: dict = field(default_factory=dict)

    @property
    def bytes_persisted(self) -> int:
        return self.window.stats.pm_bytes_written

    @property
    def pcie_write_bandwidth(self) -> float:
        return self.window.pcie_write_bandwidth


def make_system(mode: Mode) -> System:
    """A fresh platform carrying the mode's persistency model.

    Reads ``repro.sim.config.DEFAULT_CONFIG`` dynamically so ablations that
    swap the module-level default build the machine they asked for (the
    experiments runner keys its result cache on the same object).
    """
    from ..sim import config as _config

    return System(config=_config.DEFAULT_CONFIG,
                  persistency=make_model(mode.persistency_model))


class CrashConsistent:
    """Protocol for crash-consistency checking (``repro.check``).

    A workload or persistent structure states its crash invariants by
    overriding :meth:`declare_invariants`, returning plain
    ``(name, description, fn)`` triples where ``fn() -> (ok, detail)``
    judges the *recovered* state.  Triples keep the protocol
    dependency-free: implementors never import from ``repro.check``; the
    checker normalizes them into its typed form.  Invariants are evaluated
    after a simulated crash and :class:`~repro.core.recovery.RecoveryManager`
    recovery, so they should read durable state (``durable_view`` /
    ``np_persisted``) and be guarded against files the crash predates
    (``system.fs.exists``).
    """

    def declare_invariants(self, system) -> list:
        return []


class ModeDriver:
    """Realises one persistence mode for one workload run."""

    def __init__(self, system: System, mode: Mode) -> None:
        self.system = system
        self.mode = mode
        if mode.needs_eadr and not system.eadr:
            raise ValueError(f"{mode.value} needs an eADR platform")
        self._cap: CapEngine | None = None
        self._gpufs: GpuFs | None = None
        self._buffer_seq = 0

    # -- persist window management -----------------------------------------

    def persist_phase_begin(self) -> None:
        """Open the in-kernel persistence window where the mode has one."""
        if self.mode.uses_persist_window:
            gpm_persist_begin(self.system)

    def persist_phase_end(self) -> None:
        if self.mode.uses_persist_window:
            gpm_persist_end(self.system)

    # -- buffers -------------------------------------------------------------

    def buffer(self, path: str, size: int, fine_grained: bool = True,
               paper_bytes: int | None = None) -> "PersistentBuffer":
        """Create the mode-appropriate realisation of a persistent buffer."""
        self._buffer_seq += 1
        return PersistentBuffer(self, path, size, fine_grained, paper_bytes or size)

    @property
    def cap(self) -> CapEngine:
        if self._cap is None:
            cap_mode = {
                Mode.CAP_FS: CapMode.FS,
                Mode.CAP_MM: CapMode.MM,
                Mode.CAP_EADR: CapMode.EADR,
            }[self.mode]
            self._cap = CapEngine(self.system, cap_mode)
        return self._cap

    @property
    def gpufs(self) -> GpuFs:
        if self._gpufs is None:
            self._gpufs = GpuFs(self.system)
        return self._gpufs


class PersistentBuffer:
    """A logical persistent data structure, mode-appropriately realised.

    Kernels address :meth:`array` uniformly.  After (or during) compute,
    :meth:`persist_segments` / :meth:`persist_all` applies the mode's
    persistence path:

    * GPM / GPM-eADR: nothing - the kernel already persisted in place.
    * GPM-NDP: the CPU flushes the named segments out of the LLC.
    * CAP-*: the **whole buffer** is DMA'd and persisted (CAP cannot
      selectively persist at byte granularity - Section 3's limitation 3).
    * GPUfs: the whole buffer goes through per-threadblock gwrite RPCs.
    """

    def __init__(self, driver: ModeDriver, path: str, size: int,
                 fine_grained: bool, paper_bytes: int) -> None:
        self.driver = driver
        self.path = path
        self.size = size
        self.fine_grained = fine_grained
        self.paper_bytes = paper_bytes
        system = driver.system
        if driver.mode.data_on_pm:
            self.gpm: GpmRegion | None = gpm_map(system, path, size, create=True)
            self.kernel_region = self.gpm.region
            self.pm_file: PmFile | None = self.gpm.file
            self.hbm = None
        else:
            self.gpm = None
            self.hbm = system.machine.alloc_hbm(f"hbm:{path}", size)
            self.kernel_region = self.hbm
            self.pm_file = system.fs.create(path, size)

    @classmethod
    def reopen(cls, driver: ModeDriver, path: str,
               fine_grained: bool = True,
               paper_bytes: int | None = None) -> "PersistentBuffer":
        """Re-attach to an existing PM-resident buffer (post-crash resume).

        Only meaningful for the PM-direct modes, where the buffer's file
        survived the crash.
        """
        if not driver.mode.data_on_pm:
            raise ValueError("reopen requires a PM-direct mode")
        buf = cls.__new__(cls)
        buf.driver = driver
        buf.path = path
        buf.fine_grained = fine_grained
        buf.gpm = gpm_map(driver.system, path)
        buf.size = buf.gpm.size
        buf.paper_bytes = paper_bytes or buf.size
        buf.kernel_region = buf.gpm.region
        buf.pm_file = buf.gpm.file
        buf.hbm = None
        return buf

    # -- kernel-side view -----------------------------------------------------

    def array(self, dtype, offset: int = 0, count: int | None = None) -> DeviceArray:
        return DeviceArray(self.kernel_region, dtype, offset, count)

    # -- persistence ------------------------------------------------------------

    @property
    def wants_segments(self) -> bool:
        """Whether :meth:`persist_segments` actually uses the segment lists.

        Only GPM-NDP flushes the named segments; the in-kernel modes ignore
        them and CAP/GPUfs persist the whole buffer regardless.  Callers
        with expensive segment-list construction can skip it when False.
        """
        return self.driver.mode is Mode.GPM_NDP

    def persist_segments(self, starts, lengths) -> float:
        """Make the given byte segments durable, the mode's way.

        GPM already persisted in-kernel; NDP flushes exactly these segments
        from the CPU; CAP/GPUfs fall back to persisting the entire buffer
        (their write amplification).  Returns elapsed seconds.
        """
        mode = self.driver.mode
        if mode.in_kernel_persist:
            return 0.0
        if mode is Mode.GPM_NDP:
            return self.driver.system.cpu.persist_scattered(
                self.kernel_region, starts, lengths
            )
        return self.persist_all()

    def persist_all(self) -> float:
        """Make the whole buffer durable, the mode's way."""
        mode = self.driver.mode
        if mode.in_kernel_persist:
            return 0.0
        if mode is Mode.GPM_NDP:
            return self.driver.system.cpu.persist_range(self.kernel_region, 0, self.size)
        if mode is Mode.GPUFS:
            return self.driver.gpufs.gwrite_bulk(
                self.hbm, 0, self.pm_file, 0, self.size,
                paper_file_bytes=self.paper_bytes, fine_grained=self.fine_grained,
            )
        return self.driver.cap.persist_output(self.hbm, 0, self.pm_file, 0, self.size)

    def persist_range(self, offset: int, size: int) -> float:
        """Durably persist one contiguous range (e.g. appended DB rows).

        CAP *can* restrict transfers to a contiguous, host-known range -
        this is why gpDB INSERT's write amplification is only 1.27x while
        scattered UPDATEs pay ~20x (Table 4).
        """
        mode = self.driver.mode
        if mode.in_kernel_persist:
            return 0.0
        if mode is Mode.GPM_NDP:
            return self.driver.system.cpu.persist_range(self.kernel_region, offset, size)
        if mode is Mode.GPUFS:
            return self.driver.gpufs.gwrite_bulk(
                self.hbm, offset, self.pm_file, offset, size,
                paper_file_bytes=self.paper_bytes, fine_grained=self.fine_grained,
            )
        return self.driver.cap.persist_output(self.hbm, offset, self.pm_file, offset, size)

    # -- verification ------------------------------------------------------------

    def durable_view(self, dtype, offset: int = 0, count: int | None = None) -> np.ndarray:
        """What a post-crash reader would see (the persisted image)."""
        region = self.gpm.region if self.gpm is not None else self.pm_file.region
        return region.persisted_view(dtype, offset, count)

    def visible_view(self, dtype, offset: int = 0, count: int | None = None) -> np.ndarray:
        return self.kernel_region.view(dtype, offset, count)


def measure(system: System, fn, *args, **kwargs):
    """Run ``fn`` and return ``(its result, WindowedStats over the call)``.

    The window boundaries are also announced on the event bus, so windowed
    event consumers (:class:`~repro.sim.trace.ProfileSink`) agree exactly
    with the stats delta returned here.
    """
    before = system.stats.snapshot()
    t0 = system.clock.now
    system.events.emit(WindowMark(phase="begin", label=getattr(fn, "__name__", "")))
    try:
        out = fn(*args, **kwargs)
    finally:
        system.events.emit(WindowMark(phase="end", label=getattr(fn, "__name__", "")))
    window = WindowedStats(
        stats=system.stats.delta_since(before), elapsed=system.clock.now - t0
    )
    return out, window

"""Binomial option pricing: the paper's counter-example (Section 4.3).

*"Consider computation of binomial options... threads in a threadblock
coordinate to compute a single value which is written by a single thread of
a threadblock. That leaves little parallelism to exploit in writing and
persisting data to PM. GPM's fine-grained persistence brings fine-grained
recoverability. However, GPM needs parallelism for good performance."*

This workload exists to reproduce that negative result: a Cox-Ross-
Rubinstein binomial-tree pricer where each threadblock cooperatively
reduces one option's tree and its thread 0 persists the single 4-byte
price.  With only ``n_options`` concurrent persists (tens, not tens of
thousands), GPM's latency-hiding story collapses and its advantage over
CAP shrinks toward the DMA-overhead floor - see
``repro.experiments.ablations.binomial_counter_example``.

The pricing maths is the real CRR model; tests check its convergence to
Black-Scholes for European options.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..gpu.memory import DeviceArray
from ..gpu.warp import vectorized_for
from .base import Category, Mode, ModeDriver, RunResult, make_system, measure

_HEADER_BYTES = 128


def binomial_price(spot: float, strike: float, t: float, rate: float,
                   vol: float, steps: int, call: bool = True) -> float:
    """Cox-Ross-Rubinstein binomial price of a European option."""
    dt = t / steps
    u = np.exp(vol * np.sqrt(dt))
    d = 1.0 / u
    disc = np.exp(-rate * dt)
    p = (np.exp(rate * dt) - d) / (u - d)
    # terminal payoffs
    j = np.arange(steps + 1)
    prices = spot * u ** j * d ** (steps - j)
    values = np.maximum(prices - strike, 0.0) if call else np.maximum(strike - prices, 0.0)
    # backward induction
    for _ in range(steps):
        values = disc * (p * values[1:] + (1.0 - p) * values[:-1])
    return float(values[0])


def pricing_kernel(ctx, params, out, n_options, steps, persist_on):
    """One threadblock per option; thread 0 persists the single result.

    All threads charge their share of the cooperative tree reduction
    (~steps^2/block ops each); only thread 0 stores + fences.
    """
    blk = ctx.block_id
    if blk >= n_options:
        return
    ctx.charge_ops(steps * steps // ctx.block_dim + steps)
    if ctx.thread_in_block != 0:
        return
    spot = float(params.read(ctx, blk * 4 + 0))
    strike = float(params.read(ctx, blk * 4 + 1))
    t = float(params.read(ctx, blk * 4 + 2))
    vol = float(params.read(ctx, blk * 4 + 3))
    price = binomial_price(spot, strike, t, 0.02, vol, steps)
    out.write(ctx, blk, np.float32(price))
    if persist_on:
        ctx.persist()


@vectorized_for(pricing_kernel)
def pricing_warp(wctx, params, out, n_options, steps, persist_on):
    """Warp-vectorized pricer: thread 0's work runs on a single lane.

    The four parameter reads stay separate calls so the op count matches
    the scalar body's four :meth:`~repro.gpu.memory.DeviceArray.read`\\ s.
    """
    blk = wctx.block_id
    if blk >= n_options:
        return
    wctx.charge_ops((steps * steps // wctx.block_dim + steps) * wctx.n)
    if wctx.warp_in_block != 0:
        return
    lane0 = wctx.lanes[:1]
    spot = float(params.read_uniform_warp(wctx, blk * 4 + 0, lanes=lane0))
    strike = float(params.read_uniform_warp(wctx, blk * 4 + 1, lanes=lane0))
    t = float(params.read_uniform_warp(wctx, blk * 4 + 2, lanes=lane0))
    vol = float(params.read_uniform_warp(wctx, blk * 4 + 3, lanes=lane0))
    price = binomial_price(spot, strike, t, 0.02, vol, steps)
    out.write_warp(wctx, [blk], np.float32(price), lanes=lane0)
    if persist_on:
        wctx.persist(lane0)


@dataclass
class BinomialConfig:
    n_options: int = 96
    steps: int = 64
    block_dim: int = 64
    seed: int = 41


class BinomialOptions:
    """The binomial-options workload runner."""

    name = "BINO"
    category = Category.NATIVE
    fine_grained = True
    paper_data_bytes = 1_000_000  # tiny persisted output: one float/option

    def __init__(self, config: BinomialConfig | None = None) -> None:
        self.config = config or BinomialConfig()

    def run(self, mode: Mode, system=None) -> RunResult:
        cfg = self.config
        system = system or make_system(mode)
        driver = ModeDriver(system, mode)
        rng = np.random.default_rng(cfg.seed)
        n = cfg.n_options
        hbm = system.machine.alloc_hbm("bino.params", n * 4 * 4)
        params = DeviceArray(hbm, np.float32, 0, n * 4)
        p = params.np.reshape(n, 4)
        p[:, 0] = rng.uniform(10, 50, n)    # spot
        p[:, 1] = rng.uniform(10, 50, n)    # strike
        p[:, 2] = rng.uniform(0.5, 3.0, n)  # maturity
        p[:, 3] = rng.uniform(0.1, 0.5, n)  # volatility
        buf = driver.buffer("/pm/bino.out", _HEADER_BYTES + n * 4,
                            fine_grained=True, paper_bytes=self.paper_data_bytes)
        out = buf.array(np.float32, _HEADER_BYTES, n)
        self._state = (system, driver, buf, params)

        def price_all():
            driver.persist_phase_begin()
            try:
                res = system.gpu.launch(pricing_kernel, n, cfg.block_dim,
                                        (params, out, n, cfg.steps,
                                         driver.mode.data_on_pm))
                self._last_lane = res.lane
            finally:
                driver.persist_phase_end()
            buf.persist_range(_HEADER_BYTES, n * 4)
            return n

        priced, window = measure(system, price_all)
        return RunResult(
            workload=self.name, mode=mode, elapsed=window.elapsed, window=window,
            extras={"options": priced},
        )

    def verify(self) -> bool:
        """Prices must match the host-side CRR model."""
        system, driver, buf, params = self._state
        cfg = self.config
        out = buf.visible_view(np.float32, _HEADER_BYTES, cfg.n_options)
        p = params.np.reshape(cfg.n_options, 4)
        for i in range(0, cfg.n_options, 7):  # spot-check a subset
            ref = binomial_price(float(p[i, 0]), float(p[i, 1]),
                                 float(p[i, 2]), 0.02, float(p[i, 3]),
                                 cfg.steps)
            if abs(float(out[i]) - ref) > 1e-4 * max(ref, 1.0):
                return False
        return True

"""SRAD: speckle-reducing anisotropic diffusion with native persistence.

From Rodinia via Chai [25]: SRAD removes locally correlated noise
(speckle) from ultrasonic/radar images by iterative anisotropic diffusion.
Each iteration computes a per-pixel diffusion coefficient from local
gradients and the ROI statistics, then diffuses the image.

Table 1: the diffusion coefficient matrix and output image are persisted
per pixel ("diffuse noise per pixel"); Section 6.1 notes SRAD's PM writes
are "streaming but not necessarily aligned", which is why its PCIe
bandwidth sits mid-range in Fig. 12 - our PM layout deliberately offsets
the planes off the 256 B XPLine boundary to preserve that behaviour.

The diffusion math is the genuine SRAD update (Yu & Acton); persistence
follows the native pattern: every pixel's coefficient and new intensity
are stored and fenced in-kernel, so after a crash the filter resumes from
the last durable iteration counter.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..gpu.warp import vectorized_for
from .base import Category, Mode, ModeDriver, RunResult, make_system, measure

_HEADER_BYTES = 128
#: Extra offset that knocks the image/coefficient planes off XPLine
#: alignment (the "streaming but not aligned" pattern of Section 6.1).
_MISALIGN = 64
_BLOCK_DIM = 128


def srad_iteration(img: np.ndarray, lam: float = 0.5) -> tuple[np.ndarray, np.ndarray]:
    """One SRAD step; returns (new image, diffusion coefficients)."""
    mean = img.mean()
    var = img.var()
    q0_sq = var / (mean * mean + 1e-12)

    n = np.roll(img, 1, axis=0) - img
    s = np.roll(img, -1, axis=0) - img
    w = np.roll(img, 1, axis=1) - img
    e = np.roll(img, -1, axis=1) - img
    # reflective boundaries
    n[0, :] = 0.0
    s[-1, :] = 0.0
    w[:, 0] = 0.0
    e[:, -1] = 0.0

    g2 = (n ** 2 + s ** 2 + w ** 2 + e ** 2) / (img ** 2 + 1e-12)
    l = (n + s + w + e) / (img + 1e-12)
    num = 0.5 * g2 - (1.0 / 16.0) * (l ** 2)
    den = (1.0 + 0.25 * l) ** 2
    q_sq = num / (den + 1e-12)
    c = 1.0 / (1.0 + (q_sq - q0_sq) / (q0_sq * (1.0 + q0_sq) + 1e-12))
    c = np.clip(c, 0.0, 1.0)

    c_s = np.roll(c, -1, axis=0)
    c_e = np.roll(c, -1, axis=1)
    c_s[-1, :] = c[-1, :]
    c_e[:, -1] = c[:, -1]
    d = c * n + c_s * s + c * w + c_e * e
    return img + (lam / 4.0) * d, c.astype(np.float32)


def srad_plane_kernel(ctx, state, base_off, vals, n_px, ops_per_px,
                      persist_on):
    """Store one pixel of one output plane (native per-pixel persistence).

    The intensity launch charges each pixel's stencil arithmetic (~40 ops,
    the Rodinia kernel's cost); the coefficient launch only streams.  One
    launch per plane keeps each plane's warp drains address-sequential on
    the media - the "streaming but not necessarily aligned" pattern of
    Section 6.1.
    """
    i = ctx.global_id
    if i >= n_px:
        return
    if ops_per_px:
        ctx.charge_ops(ops_per_px)
    ctx.store(state, base_off + i * 4, np.float32(vals[i]), np.float32)
    if persist_on:
        ctx.persist()


@vectorized_for(srad_plane_kernel)
def srad_plane_kernel_warp(wctx, state, base_off, vals, n_px, ops_per_px,
                           persist_on):
    g = wctx.global_ids
    if int(g[-1]) < n_px:
        # Full warp in range (all but the grid's tail warp): no masking,
        # and the lane ids are one contiguous run - slice the value plane
        # and assert the store coalesced.
        if ops_per_px:
            wctx.charge_ops(ops_per_px * g.size)
        wctx.store(state, base_off + g * 4, vals[int(g[0]):int(g[-1]) + 1],
                   np.float32, coalesced=True)
        if persist_on:
            wctx.persist()
        return
    sel = wctx.active(g < n_px)
    if sel.size == 0:
        return
    gs = g[sel]
    if ops_per_px:
        wctx.charge_ops(ops_per_px * gs.size)
    wctx.store(state, base_off + gs * 4, vals[gs].astype(np.float32),
               np.float32, lanes=sel)
    if persist_on:
        wctx.persist(sel)


@dataclass
class SradConfig:
    """Scaled SRAD (paper: 128K x 1K plane, 3 GB)."""

    n: int = 192
    iterations: int = 6
    lam: float = 0.5
    seed: int = 23


class Srad:
    """The SRAD workload runner."""

    name = "SRAD"
    category = Category.NATIVE
    fine_grained = False  # coarse per-plane writes: the one native workload GPUfs runs
    paper_data_bytes = 1_000_000_000  # coefficient+output planes persisted per iteration

    def __init__(self, config: SradConfig | None = None) -> None:
        self.config = config or SradConfig()

    def _plane_bytes(self) -> int:
        return self.config.n * self.config.n * 4

    def _img_off(self) -> int:
        return _HEADER_BYTES + _MISALIGN

    def _coef_off(self) -> int:
        return self._img_off() + self._plane_bytes()

    def _buffer_bytes(self) -> int:
        return self._coef_off() + self._plane_bytes() + 256

    def run(self, mode: Mode, system=None) -> RunResult:
        cfg = self.config
        system = system or make_system(mode)
        driver = ModeDriver(system, mode)
        rng = np.random.default_rng(cfg.seed)
        base = rng.uniform(0.2, 1.0, size=(cfg.n, cfg.n))
        speckle = rng.normal(0, 0.15, size=(cfg.n, cfg.n))
        img = (base * np.exp(speckle)).astype(np.float64)
        self._noisy = img.copy()
        buf = driver.buffer("/pm/srad.state", self._buffer_bytes(),
                            fine_grained=self.fine_grained,
                            paper_bytes=self.paper_data_bytes)
        self._state = (system, driver, buf)

        def diffuse():
            cur = img
            n_px = cfg.n * cfg.n
            done = int(buf.visible_view(np.uint32, 0, 1)[0])
            driver.persist_phase_begin()
            try:
                return _iterate(cur, n_px, done)
            finally:
                driver.persist_phase_end()

        def _iterate(cur, n_px, done):
            grid = (n_px + _BLOCK_DIM - 1) // _BLOCK_DIM
            for it in range(done, cfg.iterations):
                cur, coef = srad_iteration(cur, cfg.lam)
                # Native persistence: every pixel's new intensity and
                # coefficient is stored + fenced from the kernel (one
                # launch per plane, keeping each drain stream sequential).
                for base_off, vals, ops in (
                    (self._img_off(), cur.astype(np.float32).ravel(), 40),
                    (self._coef_off(), coef.ravel(), 0),
                ):
                    res = system.gpu.launch(
                        srad_plane_kernel, grid, _BLOCK_DIM,
                        (buf.kernel_region, base_off, vals, n_px, ops,
                         driver.mode.data_on_pm),
                    )
                    self._last_lane = res.lane
                if not driver.mode.in_kernel_persist:
                    buf.persist_all()
                # Durable iteration counter: the resume point.
                buf.visible_view(np.uint32, 0, 1)[0] = it + 1
                if driver.mode.in_kernel_persist:
                    system.gpu.store_and_persist_value(buf.kernel_region, 0,
                                                       it + 1, np.uint32)
                elif driver.mode is Mode.GPM_NDP:
                    system.cpu.persist_range(buf.kernel_region, 0, 4)
                else:
                    buf.persist_range(0, 4)
            self._result = cur
            return cfg.iterations

        iters, window = measure(system, diffuse)
        return RunResult(
            workload=self.name, mode=mode, elapsed=window.elapsed, window=window,
            extras={"iterations": iters, "pixels": cfg.n * cfg.n},
        )

    def verify(self) -> bool:
        """The filter must smooth: output variance strictly below input's."""
        sys_, driver, buf = self._state
        out = buf.visible_view(np.float32, self._img_off(),
                               self.config.n * self.config.n)
        ref = self._result.astype(np.float32).ravel()
        return bool(np.allclose(out, ref) and out.var() < self._noisy.var())

"""Shared machinery for the checkpointing workload class (Section 4.2).

DNN, CFD, Black-Scholes and Hotspot share one shape: a long-running loop of
GPU compute over volatile device data, with the results checkpointed to PM
every *k* iterations for fault tolerance.  What differs per persistence mode
is only the checkpoint path:

* **GPM / GPM-eADR**: libGPM's ``gpmcp`` - the GPU streams registered
  structures straight into the double-buffered PM checkpoint.
* **GPM-NDP**: the GPU streams into PM (DDIO on), but the *CPU* must then
  flush the whole checkpoint out of the LLC - the serialisation Fig. 10
  punishes.
* **CAP-fs / CAP-mm / CAP-eADR**: DMA to the host, CPU persists.
* **GPUfs**: per-threadblock gwrite RPCs (checkpoint-class workloads are the
  only ones GPUfs supports, minus its 2 GB file limit).

:class:`CheckpointTarget` realises those paths; :class:`CheckpointedWorkload`
is the template the four workloads fill in with their compute.
"""

from __future__ import annotations

from ..core.checkpoint import Gpmcp, gpmcp_create
from ..gpu.memory import DeviceArray
from .base import (
    Category,
    CrashConsistent,
    Mode,
    ModeDriver,
    RunResult,
    make_system,
    measure,
)


class CheckpointTarget:
    """Mode-appropriate checkpoint/restore of a set of device arrays."""

    def __init__(self, driver: ModeDriver, name: str, payload: list[DeviceArray],
                 paper_bytes: int, fine_grained: bool = False) -> None:
        self.driver = driver
        self.payload = payload
        self.total_bytes = sum(p.nbytes for p in payload)
        self.paper_bytes = paper_bytes
        self.fine_grained = fine_grained
        system = driver.system
        mode = driver.mode
        self._cp: Gpmcp | None = None
        self._buffer = None
        if mode.in_kernel_persist:
            self._cp = gpmcp_create(system, f"/pm/{name}.cp",
                                    self.total_bytes + 128 * len(payload),
                                    elements=len(payload), groups=1)
            for p in payload:
                self._cp.register(p, group=0)
        else:
            self._buffer = driver.buffer(f"/pm/{name}.cp", self.total_bytes,
                                         fine_grained=fine_grained,
                                         paper_bytes=paper_bytes)

    def checkpoint(self) -> float:
        """Persist all payload arrays; returns elapsed simulated seconds."""
        system = self.driver.system
        mode = self.driver.mode
        if self._cp is not None:
            return self._cp.checkpoint(0)
        if mode is Mode.GPM_NDP:
            # GPU streams directly into the PM mapping (no persistence
            # guarantee), then the CPU flushes it line by line.
            start = system.clock.now
            off = 0
            for p in self.payload:
                system.gpu.stream_copy(self._buffer.kernel_region, off,
                                       p.region, p.offset, p.nbytes, persist=False)
                off += p.nbytes
            system.cpu.persist_range(self._buffer.kernel_region, 0, self.total_bytes)
            return system.clock.now - start
        # CAP / GPUfs: stage the payload into one HBM block, then persist.
        # The staging block is private to this target, so the copies defer
        # as pending fills the persist step reads straight through (the CAP
        # bounce elision then chains all the way back to the payload views).
        start = system.clock.now
        off = 0
        for p in self.payload:
            system.gpu.stream_copy(self._buffer.hbm, off, p.region, p.offset,
                                   p.nbytes, persist=False, defer_fill=True)
            off += p.nbytes
        self._buffer.persist_all()
        self._buffer.hbm.consume_pending_fills()
        return system.clock.now - start

    def restore(self) -> float:
        """Load the last durable checkpoint back into the payload arrays."""
        system = self.driver.system
        if self._cp is not None:
            return self._cp.restore(0)
        start = system.clock.now
        src = self._buffer.pm_file.region if self._buffer.pm_file else self._buffer.kernel_region
        off = 0
        for p in self.payload:
            system.gpu.stream_copy(p.region, p.offset, src, off, p.nbytes,
                                   persist=False)
            off += p.nbytes
        return system.clock.now - start


class CheckpointedWorkload(CrashConsistent):
    """Template for the iterative, checkpointing GPMbench workloads.

    Subclasses define :meth:`setup` (allocate device state, return the
    payload arrays) and :meth:`compute_iteration` (one timestep of real
    math plus a charged GPU compute time).
    """

    name: str = "checkpointed"
    category = Category.CHECKPOINT
    fine_grained = False
    paper_data_bytes: int = 0
    iterations: int = 10
    checkpoint_every: int = 2

    # -- subclass hooks -----------------------------------------------------

    def setup(self, system) -> list[DeviceArray]:
        raise NotImplementedError

    def compute_iteration(self, system, iteration: int) -> None:
        raise NotImplementedError

    # -- crash invariants ----------------------------------------------------

    def declare_invariants(self, system) -> list:
        """Structural gpmcp invariants: the double buffer stays readable."""
        path = f"/pm/{self.name.lower()}.cp"

        def selector_valid() -> tuple[bool, str]:
            if not system.fs.exists(path):
                return True, "crash predates the checkpoint file"
            from ..core.checkpoint import gpmcp_open

            cp = gpmcp_open(system, path)
            for group in range(cp.groups):
                sel = cp._selector(group)
                if sel not in (0, 1):
                    return False, f"group {group} selector is {sel}"
            return True, "every group selector names a valid copy"

        return [
            (f"{self.name.lower()}-cp-selector-valid",
             "the checkpoint selector always names one of the two copies",
             selector_valid),
        ]

    # -- driver ----------------------------------------------------------------

    def run(self, mode: Mode, system=None,
            checkpoint_every: int | None = None) -> RunResult:
        system = system or make_system(mode)
        driver = ModeDriver(system, mode)
        payload = self.setup(system)
        target = CheckpointTarget(driver, self.name.lower(), payload,
                                  self.paper_data_bytes, self.fine_grained)
        every = checkpoint_every or self.checkpoint_every
        self._state = (system, driver, target)

        def loop():
            checkpoint_time = 0.0
            compute_time = 0.0
            n_checkpoints = 0
            for i in range(self.iterations):
                t0 = system.clock.now
                self.compute_iteration(system, i)
                compute_time += system.clock.now - t0
                if (i + 1) % every == 0:
                    checkpoint_time += target.checkpoint()
                    n_checkpoints += 1
            return checkpoint_time, compute_time, n_checkpoints

        (cp_time, compute_time, n_cp), window = measure(system, loop)
        return RunResult(
            workload=self.name, mode=mode,
            # Fig. 9 compares the persistence paths; for this class that is
            # the checkpointing time (compute is identical across modes).
            elapsed=cp_time,
            window=window,
            extras={
                "checkpoint_time": cp_time,
                "compute_time": compute_time,
                "total_time": window.elapsed,
                "checkpoints": n_cp,
                "checkpoint_bytes": target.total_bytes,
            },
        )

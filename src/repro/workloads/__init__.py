"""GPMbench: the nine GPU workloads of Table 1, runnable under every
persistence system the paper evaluates (GPM, GPM-NDP, GPM-eADR, CAP-fs,
CAP-mm, CAP-eADR, GPUfs)."""

from .base import (
    Category,
    Mode,
    ModeDriver,
    PersistentBuffer,
    RunResult,
    make_system,
    measure,
)
from .bfs import BfsConfig, GraphBfs, make_road_graph, reference_bfs
from .binomial import BinomialConfig, BinomialOptions, binomial_price
from .blackscholes import BlackScholes, black_scholes
from .cfd import CfdSolver, EulerSolver
from .checkpointed import CheckpointedWorkload, CheckpointTarget
from .db import DbConfig, GpDb
from .dnn import DnnTraining
from .hotspot import Hotspot, HotspotGrid
from .kvs import GpKvs, KvsConfig
from .lenet import LeNet, synthetic_mnist
from .prefix_sum import PrefixSum, PrefixSumConfig
from .srad import Srad, SradConfig


def gpmbench_suite() -> list:
    """The full Fig. 9 workload lineup, in paper order.

    Returns fresh workload instances: gpKVS, gpKVS (95:5), gpDB (I),
    gpDB (U), DNN, CFD, BLK, HS, BFS, SRAD, PS.
    """
    return [
        GpKvs(),
        GpKvs.mixed_95_5(),
        GpDb("insert"),
        GpDb("update"),
        DnnTraining(),
        CfdSolver(),
        BlackScholes(),
        Hotspot(),
        GraphBfs(),
        Srad(),
        PrefixSum(),
    ]


__all__ = [
    "BfsConfig",
    "BinomialConfig",
    "BinomialOptions",
    "binomial_price",
    "BlackScholes",
    "Category",
    "CfdSolver",
    "CheckpointTarget",
    "CheckpointedWorkload",
    "DbConfig",
    "DnnTraining",
    "EulerSolver",
    "GpDb",
    "GpKvs",
    "GraphBfs",
    "Hotspot",
    "HotspotGrid",
    "KvsConfig",
    "LeNet",
    "Mode",
    "ModeDriver",
    "PersistentBuffer",
    "PrefixSum",
    "PrefixSumConfig",
    "RunResult",
    "Srad",
    "SradConfig",
    "black_scholes",
    "gpmbench_suite",
    "make_road_graph",
    "make_system",
    "measure",
    "reference_bfs",
    "synthetic_mnist",
]

"""BFS with native persistence (Section 4.3): resumable graph traversal.

The paper's BFS (from Chai [25]) runs level-synchronous breadth-first
search over a PM-resident USA-road-network graph, persisting "the node
search sequence and cost of traversal for each node" every iteration; after
a crash the application *resumes* from the persisted partial traversal
instead of restarting.  The read-only graph itself is staged into the GPU's
HBM once (Section 4.3: read-only structures go to device memory).

PM layout::

    [progress: level u32, visited u32, pad to 128]
    [cost: u32 x nodes]           (0xFFFFFFFF = unvisited)
    [sequence: u32 x nodes]       (append-only visit order)

Persistence ordering per level: costs -> sequence -> progress record, so a
crash can at worst lose the in-flight level, which resume recomputes
idempotently from the durable costs.

Two execution engines share this logic:

* ``engine="kernel"``: a real per-thread GPU kernel (used at small scale
  and for crash-injection tests);
* ``engine="bulk"``: numpy frontier expansion + the device's vectorised
  scatter-store path, allowing road-network-like scales (hundreds of
  thousands of nodes, hundreds of levels) where CAP's per-iteration DMA +
  whole-cost-array persistence overheads dominate - the paper's 85x.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from ..gpu.memory import DeviceArray
from ..gpu.warp import vectorized_for
from ..sim import bulk
from .base import Category, Mode, ModeDriver, RunResult, make_system, measure

INF = np.uint32(0xFFFFFFFF)
_HEADER_BYTES = 128


def make_road_graph(rows: int, cols: int, seed: int = 17,
                    shortcut_fraction: float = 0.005) -> tuple[np.ndarray, np.ndarray]:
    """A synthetic road-network-like graph in CSR form.

    Grid connectivity (low degree, huge diameter - the signature of road
    networks) plus a sprinkle of random shortcuts.  Returns (row_ptr,
    col_idx) with symmetric edges.  Construction is deterministic per
    argument tuple, so repeated builds (every bench leg re-runs BFS twice)
    come from a small cache; the returned arrays are read-only.
    """
    return _road_graph_cached(rows, cols, seed, shortcut_fraction)


@lru_cache(maxsize=8)
def _road_graph_cached(rows: int, cols: int, seed: int,
                       shortcut_fraction: float) -> tuple[np.ndarray, np.ndarray]:
    n = rows * cols
    rng = np.random.default_rng(seed)
    edges = []
    idx = np.arange(n).reshape(rows, cols)
    # 4-neighbour grid roads
    edges.append(np.stack([idx[:, :-1].ravel(), idx[:, 1:].ravel()], axis=1))
    edges.append(np.stack([idx[:-1, :].ravel(), idx[1:, :].ravel()], axis=1))
    # shortcuts (highways)
    n_short = int(n * shortcut_fraction)
    if n_short:
        pairs = rng.integers(0, n, size=(n_short, 2))
        pairs = pairs[pairs[:, 0] != pairs[:, 1]]
        edges.append(pairs)
    e = np.concatenate(edges)
    e = np.concatenate([e, e[:, ::-1]])  # symmetric
    order = np.lexsort((e[:, 1], e[:, 0]))
    e = e[order]
    keep = np.ones(e.shape[0], dtype=bool)
    keep[1:] = (e[1:] != e[:-1]).any(axis=1)
    e = e[keep]
    row_ptr = np.zeros(n + 1, dtype=np.int64)
    np.add.at(row_ptr, e[:, 0] + 1, 1)
    row_ptr = np.cumsum(row_ptr)
    col_idx = e[:, 1].astype(np.int32)
    row_ptr.setflags(write=False)
    col_idx.setflags(write=False)
    return row_ptr, col_idx


def reference_bfs(row_ptr: np.ndarray, col_idx: np.ndarray, source: int) -> np.ndarray:
    """Host-side reference costs for verification."""
    n = row_ptr.size - 1
    cost = np.full(n, INF, dtype=np.uint32)
    cost[source] = 0
    frontier = np.array([source])
    level = 0
    while frontier.size:
        nbrs = np.concatenate([
            col_idx[row_ptr[u] : row_ptr[u + 1]] for u in frontier.tolist()
        ]) if frontier.size else np.array([], dtype=np.int32)
        nbrs = np.unique(nbrs)
        new = nbrs[cost[nbrs] == INF]
        cost[new] = level + 1
        frontier = new
        level += 1
    return cost


def bfs_kernel(ctx, row_ptr, col_idx, frontier, n_frontier, cost, seq, counter,
               level, persist_on):
    """Relax one frontier node per thread (per-thread engine)."""
    i = ctx.global_id
    if i >= n_frontier:
        return
    node = int(frontier.read(ctx, i))
    begin = int(row_ptr.read(ctx, node))
    end = int(row_ptr.read(ctx, node + 1))
    if end > begin:
        nbrs = col_idx.read_vec(ctx, begin, end - begin)
    else:
        nbrs = []
    for nb in np.asarray(nbrs).tolist():
        ctx.charge_ops(2)
        if int(cost.read(ctx, nb)) == int(INF):
            cost.write(ctx, nb, np.uint32(level + 1))
            slot = int(ctx.atomic_add(counter.region, counter.offset, 1, np.int64))
            seq.write(ctx, slot, np.uint32(nb))
    if persist_on:
        ctx.persist()


@vectorized_for(bfs_kernel)
def bfs_kernel_warp(wctx, row_ptr, col_idx, frontier, n_frontier, cost, seq,
                    counter, level, persist_on):
    """Warp-vectorized frontier expansion via the gather/scatter primitives.

    The neighbour walk is the irregular part: each lane gathers a
    different-sized adjacency run, and a neighbour is *claimed* by the
    first lane (in lane-major flat order) that observes it unvisited -
    exactly the order the scalar threads resolve their sequential
    read-modify-write races in.
    """
    g = wctx.global_ids
    sel = wctx.active(g < n_frontier)
    if sel.size == 0:
        return
    nodes = frontier.read_warp(wctx, g[sel], lanes=sel).astype(np.int64)
    begins = row_ptr.read_warp(wctx, nodes, lanes=sel).astype(np.int64)
    ends = row_ptr.read_warp(wctx, nodes + 1, lanes=sel).astype(np.int64)
    counts = ends - begins
    has = counts > 0
    nbrs = col_idx.read_gather_warp(wctx, begins[has], counts[has],
                                    lanes=sel[has]).astype(np.int64)
    total = nbrs.size
    if total == 0:
        if persist_on:
            wctx.persist(sel)
        return
    wctx.charge_ops(2 * total)
    # Every neighbour costs one cost-array load (same accounting whether it
    # turns out visited or not); the values come from the live view since
    # claim resolution below encodes the scalar lane's program order.
    wctx.meter_loads(cost.region, total, cost.dtype.itemsize)
    cand = cost.np[nbrs] == INF
    cand_flat = np.flatnonzero(cand)
    _uniq, first = np.unique(nbrs[cand_flat], return_index=True)
    claim_flat = cand_flat[np.sort(first)]
    kc = claim_flat.size
    if kc:
        lane_of = np.repeat(sel[has], counts[has])
        claim_lanes = lane_of[claim_flat]
        claim_nb = nbrs[claim_flat]
        cost.write_warp(wctx, claim_nb,
                        np.full(kc, np.uint32(level + 1), dtype=np.uint32),
                        lanes=claim_lanes)
        slots = wctx.atomic_add(
            counter.region,
            np.full(kc, counter.offset, dtype=np.int64), 1, np.int64,
            lanes=claim_lanes,
        )
        seq.write_warp(wctx, slots, claim_nb.astype(np.uint32),
                       lanes=claim_lanes)
    if persist_on:
        wctx.persist(sel)


@dataclass
class BfsConfig:
    """Scaled BFS parameters.

    The default graph is a 128 x 640 corridor grid with no shortcuts: low
    degree and a ~770-level diameter, preserving (at ~1/6 scale) the USA
    road network's defining property - thousands of tiny BFS levels - that
    drives CAP's per-iteration overheads in the paper (6000 iterations).
    """

    rows: int = 128
    cols: int = 640
    shortcut_fraction: float = 0.0
    source: int = 0
    seed: int = 17
    engine: str = "bulk"      # "bulk" or "kernel"
    block_dim: int = 128
    max_levels: int = 100_000


class GraphBfs:
    """The BFS workload runner."""

    name = "BFS"
    category = Category.NATIVE
    fine_grained = True
    paper_data_bytes = 1_000_000_000  # Table 1: USA road network, 1 GB

    def __init__(self, config: BfsConfig | None = None) -> None:
        self.config = config or BfsConfig()
        if self.config.engine not in ("bulk", "kernel"):
            raise ValueError(f"unknown engine {self.config.engine!r}")

    # -- layout -----------------------------------------------------------------

    @property
    def n_nodes(self) -> int:
        return self.config.rows * self.config.cols

    def _buffer_bytes(self) -> int:
        return _HEADER_BYTES + 8 * self.n_nodes  # cost + sequence

    def _cost_off(self) -> int:
        return _HEADER_BYTES

    def _seq_off(self) -> int:
        return _HEADER_BYTES + 4 * self.n_nodes

    # -- execution -----------------------------------------------------------------

    def run(self, mode: Mode, system=None, crash_injector=None,
            resume_buffer=None) -> RunResult:
        cfg = self.config
        system = system or make_system(mode)
        driver = ModeDriver(system, mode)
        row_ptr_np, col_idx_np = make_road_graph(cfg.rows, cfg.cols, cfg.seed,
                                                 cfg.shortcut_fraction)
        n = self.n_nodes
        # Read-only graph staged into HBM once (not persisted).
        graph_hbm = system.machine.alloc_hbm("bfs.graph",
                                             row_ptr_np.nbytes + col_idx_np.nbytes)
        row_ptr = DeviceArray(graph_hbm, np.int64, 0, n + 1)
        col_idx = DeviceArray(graph_hbm, np.int32, row_ptr_np.nbytes, col_idx_np.size)
        row_ptr.np[:] = row_ptr_np
        col_idx.np[:] = col_idx_np

        if resume_buffer is not None:
            buf = resume_buffer
        else:
            buf = driver.buffer("/pm/bfs.state", self._buffer_bytes(),
                                fine_grained=True, paper_bytes=self.paper_data_bytes)
            buf.visible_view(np.uint32, self._cost_off(), n)[:] = INF
            if buf.gpm is not None:
                buf.gpm.region.persist_range(0, self._buffer_bytes())
        self._state = (system, driver, buf, row_ptr_np, col_idx_np)

        def traverse():
            return self._traverse(driver, buf, row_ptr, col_idx,
                                  row_ptr_np, col_idx_np, crash_injector)

        levels, window = measure(system, traverse)
        return RunResult(
            workload=self.name, mode=mode, elapsed=window.elapsed, window=window,
            extras={"levels": levels, "nodes": n},
        )

    def _traverse(self, driver, buf, row_ptr, col_idx, row_ptr_np, col_idx_np,
                  injector) -> int:
        # The whole level-synchronous search runs inside one persistence
        # window: with 768 micro-kernels, per-launch DDIO toggling would
        # dominate (the paper brackets the kernel-launch region similarly).
        driver.persist_phase_begin()
        try:
            return self._traverse_inner(driver, buf, row_ptr, col_idx,
                                        row_ptr_np, col_idx_np, injector)
        finally:
            driver.persist_phase_end()

    def _traverse_inner(self, driver, buf, row_ptr, col_idx, row_ptr_np,
                        col_idx_np, injector) -> int:
        cfg = self.config
        system = driver.system
        n = self.n_nodes
        cost_view = buf.visible_view(np.uint32, self._cost_off(), n)
        header = buf.visible_view(np.uint32, 0, 2)
        level = int(header[0])
        visited = int(header[1])
        if level == 0 and visited == 0:
            # Fresh start: seed the source node (cost 0, first in sequence).
            frontier_np = np.array([cfg.source], dtype=np.uint32)
            cost_view[cfg.source] = 0
            system.gpu.scatter_store_bulk(
                buf.kernel_region,
                np.array([self._cost_off() + 4 * cfg.source, self._seq_off()]),
                np.array([0, cfg.source], dtype=np.uint32), item_bytes=4,
                fence_rounds=1 if driver.mode.data_on_pm else 0,
            )
            self._persist_level(driver, buf, frontier_np, 0, 0)
            visited = 1
            level = 1
            self._commit_level(driver, buf, level, visited)
        else:
            # Resume.  Costs >= the in-flight level are *uncommitted* partial
            # writes (the progress record persists only after a level's cost
            # and sequence writes); reset them so the redo sees them as
            # unvisited - otherwise their subtrees would never be explored.
            stale = (cost_view >= level) & (cost_view != INF)
            stale_nodes = np.flatnonzero(stale)
            if stale_nodes.size:
                cost_view[stale_nodes] = INF
                system.gpu.scatter_store_bulk(
                    buf.kernel_region,
                    self._cost_off() + 4 * stale_nodes.astype(np.int64),
                    np.full(stale_nodes.size, INF, dtype=np.uint32),
                    item_bytes=4,
                    fence_rounds=1 if driver.mode.data_on_pm else 0,
                )
            # The frontier is every node at the last durable level.
            frontier_np = np.flatnonzero(cost_view == level - 1).astype(np.uint32)

        mask = np.zeros(n, dtype=bool)
        while frontier_np.size and level < cfg.max_levels:
            if cfg.engine == "kernel":
                new = self._level_kernel(driver, buf, row_ptr, col_idx,
                                         frontier_np, level, visited, injector)
            else:
                new = self._level_bulk(driver, buf, row_ptr_np, col_idx_np,
                                       cost_view, frontier_np, level, visited,
                                       mask)
            self._persist_level(driver, buf, new, level, visited)
            visited += new.size
            self._commit_level(driver, buf, level + 1, visited)
            frontier_np = new
            level += 1
        return level

    def _level_bulk(self, driver, buf, row_ptr_np, col_idx_np, cost_view,
                    frontier_np, level, visited, mask) -> np.ndarray:
        system = driver.system
        starts = row_ptr_np[frontier_np]
        ends = row_ptr_np[frontier_np + 1]
        counts = ends - starts
        total = int(counts.sum())
        if total:
            # Vectorized ragged CSR gather (flat indices, segment-major):
            # per-byte segment shift + the shared 0..total-1 ramp.
            before = np.cumsum(counts)
            before -= counts
            np.subtract(starts, before, out=before)
            idx = np.repeat(before, counts)
            idx += bulk.iota64(total)
            gather = col_idx_np[idx]
        else:
            gather = np.array([], dtype=np.int32)
        # Filter before dedup: most neighbours are already visited by
        # mid-search, so dedup runs over the short unvisited tail.  The
        # scatter-into-mask produces the same sorted unique set np.unique
        # would, without the sort; only the touched bits are reset.
        cand = gather[cost_view[gather] == INF]
        mask[cand] = True
        new_idx = np.flatnonzero(mask)
        mask[new_idx] = False
        new = new_idx.astype(np.uint32)
        # One relaxation kernel per level writes both the new costs
        # (scattered) and the visit sequence (contiguous, coalesced).
        cost_view[new_idx] = level
        k = new.size
        offsets = np.empty(2 * k, dtype=np.int64)
        np.multiply(new_idx, 4, out=offsets[:k])
        offsets[:k] += self._cost_off()
        np.multiply(bulk.iota64(k), 4, out=offsets[k:])
        offsets[k:] += self._seq_off() + 4 * visited
        values = np.empty(2 * k, dtype=np.uint32)
        values[:k] = level
        values[k:] = new
        system.gpu.scatter_store_bulk(
            buf.kernel_region, offsets, values, item_bytes=4,
            fence_rounds=1 if driver.mode.data_on_pm else 0,
            ops_per_item=6,
        )
        return new

    def _level_kernel(self, driver, buf, row_ptr, col_idx, frontier_np, level,
                      visited, injector) -> np.ndarray:
        cfg = self.config
        system = driver.system
        n_f = frontier_np.size
        hbm = system.machine.alloc_hbm(f"bfs.front{level}", n_f * 4 + 64)
        frontier = DeviceArray(hbm, np.uint32, 0, n_f)
        frontier.np[:] = frontier_np
        counter = DeviceArray(hbm, np.int64, n_f * 4 + (-n_f * 4) % 8, 1)
        counter.np[0] = visited
        cost = buf.array(np.uint32, self._cost_off(), self.n_nodes)
        seq = buf.array(np.uint32, self._seq_off(), self.n_nodes)
        grid = (n_f + cfg.block_dim - 1) // cfg.block_dim
        # (already inside the traversal-wide persistence window)
        res = system.gpu.launch(
            bfs_kernel, grid, cfg.block_dim,
            (row_ptr, col_idx, frontier, n_f, cost, seq, counter, level - 1,
             driver.mode.data_on_pm),
            crash_injector=injector,
        )
        self._last_lane = res.lane
        new_count = int(counter.np[0]) - visited
        new = buf.visible_view(np.uint32, self._seq_off() + 4 * visited, new_count).copy()
        system.machine.free(hbm)
        return new

    # -- persistence of per-level results --------------------------------------------

    def _persist_level(self, driver, buf, new, level, visited) -> None:
        """Mode-appropriate persistence of this level's cost/seq updates."""
        if driver.mode.in_kernel_persist or new.size == 0:
            return
        if not buf.wants_segments:
            # CAP/GPUfs persist the whole buffer regardless of the segment
            # list (their write amplification) - skip building it.
            buf.persist_all()
            return
        starts = np.concatenate([
            self._cost_off() + 4 * new.astype(np.int64),
            self._seq_off() + 4 * (visited + np.arange(new.size, dtype=np.int64)),
        ])
        buf.persist_segments(starts, np.full(starts.size, 4, dtype=np.int64))

    def _commit_level(self, driver, buf, next_level, visited) -> None:
        """Durably advance the progress record (level, visited count)."""
        system = driver.system
        header = buf.visible_view(np.uint32, 0, 2)
        header[0] = next_level
        header[1] = visited
        if driver.mode.in_kernel_persist:
            packed = int(next_level) | (int(visited) << 32)
            system.gpu.store_and_persist_value(buf.kernel_region, 0,
                                               np.uint64(packed), np.uint64)
        elif driver.mode is Mode.GPM_NDP:
            system.cpu.persist_range(buf.kernel_region, 0, 8)
        else:
            buf.persist_range(0, _HEADER_BYTES)

    # -- verification -------------------------------------------------------------------

    def verify(self, buf_or_view=None) -> bool:
        """Check final costs against the host reference."""
        system, driver, buf, row_ptr_np, col_idx_np = self._state
        ref = reference_bfs(row_ptr_np, col_idx_np, self.config.source)
        got = buf.visible_view(np.uint32, self._cost_off(), self.n_nodes)
        return bool(np.array_equal(ref, got))

"""Host-side software: CPU persistence paths, DAX filesystem, DMA, CAP."""

from .cap import CapEngine, CapMode
from .cpu import Cpu
from .dma import DmaEngine
from .filesystem import DaxFilesystem, FsError, PmFile
from .gpufs import GPUFS_PAGE_BYTES, GpuFs, GpufsUnsupported

__all__ = [
    "CapEngine",
    "CapMode",
    "Cpu",
    "DaxFilesystem",
    "DmaEngine",
    "FsError",
    "GPUFS_PAGE_BYTES",
    "GpuFs",
    "GpufsUnsupported",
    "PmFile",
]

"""GPUfs-style baseline: filesystem system calls from GPU kernels.

Section 6.1 compares GPM against GPUfs [87], which exposes ``gread``/
``gwrite`` to GPU code but still relies on the CPU and OS for persistence.
The comparison's findings, which this model reproduces:

* GPUfs requires **all threads of a threadblock** to invoke its API
  (calls are ordered by block-wide barriers); workloads where individual
  threads persist fine-grained data deadlock - so the transactional and
  most native-persistence workloads simply cannot run.
* Files are limited to **2 GB**, so BLK (4 GB) and HS (2 GB) fail at
  *paper scale* (support is judged against the paper's input sizes, not
  our scaled-down ones).
* Workloads that do run pay a per-call GPU->CPU RPC cost plus the CAP-fs
  style OS persistence path, ending up slower than CAP-fs (0.1-0.7x).
"""

from __future__ import annotations

import math

from ..sim.events import Syscall
from ..sim.memory import MemKind, Region
from .filesystem import PmFile


class GpufsUnsupported(Exception):
    """The workload cannot run on GPUfs; carries the reason."""

    FINE_GRAIN = "per-thread fine-grained I/O deadlocks GPUfs"
    FILE_TOO_LARGE = "GPUfs only supports files up to 2GB"

    def __init__(self, reason: str) -> None:
        super().__init__(reason)
        self.reason = reason


#: gwrite granularity: one call per threadblock per buffer page.
GPUFS_PAGE_BYTES = 16 * 1024
#: Concurrent RPC channels between GPU and the GPUfs CPU daemon.
GPUFS_RPC_CHANNELS = 1


class GpuFs:
    """The GPUfs persistence path for coarse-grain workloads."""

    def __init__(self, system) -> None:
        self.system = system

    def check_supported(self, paper_file_bytes: int, fine_grained: bool) -> None:
        """Raise :class:`GpufsUnsupported` if the workload cannot run."""
        if fine_grained:
            raise GpufsUnsupported(GpufsUnsupported.FINE_GRAIN)
        if paper_file_bytes > self.system.config.gpufs_max_file_bytes:
            raise GpufsUnsupported(GpufsUnsupported.FILE_TOO_LARGE)

    def gwrite_bulk(self, src: Region, src_off: int, dst: PmFile, dst_off: int,
                    nbytes: int, paper_file_bytes: int,
                    fine_grained: bool = False) -> float:
        """Persist ``nbytes`` of GPU results through gwrite + OS.

        Threadblocks issue one gwrite RPC per 64 KB page; the CPU daemon
        writes pages into the PM file and fsyncs.  Returns elapsed seconds.
        """
        self.check_supported(paper_file_bytes, fine_grained)
        if src.kind is not MemKind.HBM:
            raise ValueError("gwrite sources data from GPU memory")
        machine = self.system.machine
        start = machine.clock.now
        n_calls = max(1, math.ceil(nbytes / GPUFS_PAGE_BYTES))
        rpc_time = n_calls * self.system.config.gpufs_call_s / GPUFS_RPC_CHANNELS
        machine.events.emit(Syscall(op="gwrite", count=n_calls))
        machine.clock.advance(rpc_time)
        # Data path: DMA pages to host, then the CAP-fs style write+fsync.
        data = src.read_bytes(src_off, nbytes).copy()
        machine.clock.advance(machine.pcie.dma_time(nbytes))
        self.system.fs.write(dst, dst_off, data)
        self.system.fs.fsync(dst)
        return machine.clock.now - start

"""CPU-Assisted Persistence (CAP): today's baselines for GPU + PM.

Figure 2(a) of the paper: without GPM, a GPU application persists results in
three steps - (1) the driver DMAs data from GPU memory to host DRAM, (2) the
CPU copies it to NVM, (3) the CPU guarantees persistence by evicting cache
contents.  The paper evaluates two realisations plus an eADR projection:

* **CAP-fs**: step 2+3 via the ext4-DAX filesystem - ``write()`` then
  ``fsync()``.
* **CAP-mm**: the PM file is memory-mapped; cudaMemcpy stages through a
  pinned bounce buffer, then CPU threads copy and CLFLUSHOPT+SFENCE.  Uses
  the best-performing thread count (Section 6.1).
* **CAP-eADR** (Fig. 10): CAP-mm minus the cache flushes - with eADR data
  is durable once in the LLC, but the GPU->CPU transfer remains.
"""

from __future__ import annotations

import enum
import itertools

from ..sim import bulk
from ..sim.memory import MemKind, Region
from .filesystem import PmFile



class CapMode(enum.Enum):
    """Which CAP realisation to model."""

    FS = "cap-fs"
    MM = "cap-mm"
    EADR = "cap-eadr"


class CapEngine:
    """The three-step CAP persistence pipeline."""

    def __init__(self, system, mode: CapMode, threads: int | None = None) -> None:
        self.system = system
        self.mode = mode
        #: CPU threads used for the host-side copy/persist.  ``None`` picks
        #: the best-performing count, as the paper does.
        self.threads = threads
        self._bounce: Region | None = None
        # Per-engine suffix for bounce-buffer names: keeps region names (and
        # hence event streams) deterministic for a given run, regardless of
        # how many systems the process built before this one.
        self._bounce_ids = itertools.count()
        if mode is CapMode.EADR and not system.eadr:
            raise ValueError("CAP-eADR requires a System(eadr=True) platform")

    # ------------------------------------------------------------------

    def _bounce_buffer(self, nbytes: int) -> Region:
        """The driver's pinned DRAM bounce buffer, grown on demand."""
        if self._bounce is None or self._bounce.size < nbytes:
            if self._bounce is not None:
                self.system.machine.free(self._bounce)
            machine = self.system.machine
            # Skip names another engine on this machine already holds (e.g. a
            # recovery driver built alongside the original run's driver).
            name = f"cap-bounce-{next(self._bounce_ids)}"
            while name in machine._regions:
                name = f"cap-bounce-{next(self._bounce_ids)}"
            self._bounce = machine.alloc_dram(name, max(nbytes, 1 << 16))
        return self._bounce

    def persist_output(self, src: Region, src_off: int, dst: PmFile | Region,
                       dst_off: int, nbytes: int) -> float:
        """Run the full CAP pipeline for ``nbytes`` of GPU results.

        ``src`` must be GPU memory (HBM).  ``dst`` is the PM-resident file
        (CAP-fs) or its mapped region (CAP-mm / CAP-eADR).  Returns elapsed
        simulated seconds; the destination range is durable on return.
        """
        if nbytes == 0:
            return 0.0
        if src.kind is not MemKind.HBM:
            raise ValueError("CAP persists results produced in GPU memory")
        machine = self.system.machine
        start = machine.clock.now
        bounce = self._bounce_buffer(nbytes)
        # The bounce buffer is engine-private: nothing reads it between this
        # DMA and the host-side copy below, so the staging fill is deferred
        # (copy elision) and the host step reads straight through it back to
        # the GPU source view.  Accounting is unchanged on both steps.
        self.system.dma.device_to_host(
            src, src_off, bounce, 0, nbytes, pinned=True, defer_fill=True
        )
        data = bulk.resolve_read(bounce, 0, nbytes)

        if self.mode is CapMode.FS:
            f = self._as_file(dst)
            self.system.fs.write(f, dst_off, data)
            self.system.fs.fsync(f)
        elif self.mode is CapMode.MM:
            region = self._as_region(dst)
            self.system.cpu.write_and_persist(region, dst_off, data, threads=self.threads)
        else:  # CAP-eADR
            region = self._as_region(dst)
            elapsed_copy = nbytes / (
                self.system.config.cpu_memcpy_bw_single
                * self.system.config.cpu_persist_speedup(
                    self.threads or self.system.config.cpu_max_threads
                )
            )
            region.write_from(dst_off, data)
            machine.cpu_store_arrival(region, dst_off, nbytes)
            machine.clock.advance(elapsed_copy)
            machine.background_persist(region, dst_off, nbytes)
        # The staged bytes are consumed; drop the deferred fill so the next
        # pipeline run never materialises it.
        bounce.consume_pending_fills()
        return machine.clock.now - start

    @staticmethod
    def _as_file(dst) -> PmFile:
        if isinstance(dst, PmFile):
            return dst
        raise TypeError("CAP-fs needs a PmFile destination")

    @staticmethod
    def _as_region(dst) -> Region:
        if isinstance(dst, PmFile):
            return dst.region
        if isinstance(dst, Region):
            return dst
        raise TypeError(f"cannot persist into {type(dst).__name__}")

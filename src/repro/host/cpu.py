"""CPU-side software model: stores, flushes, drains, non-temporal stores.

This is the machinery CAP relies on (Section 3): after results reach host
DRAM, CPU threads copy them into PM-mapped memory and guarantee persistence
with a CLFLUSHOPT loop plus an SFENCE drain (or bypass caches with
non-temporal stores when generating data locally - note Section 3 points out
CAP-mm *cannot* use nt-stores because the data arrives from the GPU via the
LLC, not from the CPU's own stores).

Timing: one thread persists at
:attr:`~repro.sim.config.SystemConfig.cpu_persist_bw_single`; adding threads
follows the Amdahl curve calibrated against Fig. 3(a) (plateau 1.47x); the
Optane media time of the flush-grain epochs is a hard lower bound.
"""

from __future__ import annotations

import numpy as np

from ..sim.bulk import BulkTransfer
from ..sim.events import CpuDrain, CpuPmWrite
from ..sim.machine import Machine
from ..sim.memory import MemKind, Region


class Cpu:
    """Multi-core host CPU issuing stores, flushes and drains."""

    def __init__(self, machine: Machine) -> None:
        self.machine = machine
        self.config = machine.config

    def _clamp_threads(self, threads: int | None) -> int:
        if threads is None:
            return self.config.cpu_max_threads
        if threads < 1:
            raise ValueError("threads must be >= 1")
        return min(threads, self.config.cpu_max_threads)

    # ------------------------------------------------------------------

    def store(self, region: Region, offset: int, data) -> None:
        """Plain stores: visible immediately, dirty in the cache, untimed.

        Use the ``*_persist`` methods when the caller needs both timing and
        durability.
        """
        data = np.asarray(data, dtype=np.uint8)
        region.write_bytes(offset, data)
        self.machine.cpu_store_arrival(region, offset, data.size)

    def memcpy(self, dst: Region, dst_off: int, src: Region, src_off: int,
               nbytes: int, threads: int | None = 1) -> float:
        """Volatile memcpy between host regions; returns elapsed seconds."""
        threads = self._clamp_threads(threads)
        BulkTransfer(dst, dst_off, src, src_off, nbytes).apply()
        self.machine.cpu_store_arrival(dst, dst_off, nbytes)
        elapsed = nbytes / (self.config.cpu_memcpy_bw_single
                            * self.config.cpu_persist_speedup(threads))
        self.machine.clock.advance(elapsed)
        return elapsed

    # ------------------------------------------------------------------

    def write_and_persist(self, region: Region, offset: int, data,
                          threads: int | None = None, random: bool = False) -> float:
        """Store ``data`` to PM and persist it with a flush+drain loop.

        The canonical CAP-mm inner loop: store, CLFLUSHOPT each 64 B line,
        SFENCE.  Returns elapsed seconds (also advances the clock).
        """
        data = np.asarray(data, dtype=np.uint8).ravel()
        region.write_from(offset, data)
        return self.persist_range(region, offset, data.size, threads=threads, random=random)

    def persist_range(self, region: Region, offset: int, size: int,
                      threads: int | None = None, random: bool = False) -> float:
        """Flush+drain ``[offset, offset+size)`` of a PM region.

        Persists whatever is currently visible (e.g. data a DMA already
        deposited, or GPU stores parked in the LLC under GPM-NDP).
        """
        if region.kind is not MemKind.PM:
            raise ValueError("persist_range targets PM regions")
        threads = self._clamp_threads(threads)
        self.machine.events.emit(CpuDrain(op="flush"))
        media = self.machine.optane.write_flush_grain(
            region, offset, size, grain=self.config.cpu_cache_line_bytes, random=random
        )
        self.machine.llc.drop_range(region, offset, size)
        sw = size / (self.config.cpu_persist_bw_single
                     * self.config.cpu_persist_speedup(threads))
        self.machine.events.emit(CpuPmWrite(nbytes=size))
        elapsed = max(sw, media)
        self.machine.clock.advance(elapsed)
        return elapsed

    def persist_scattered(self, region: Region, starts, lengths,
                          threads: int | None = None) -> float:
        """Flush+drain many scattered segments (random-pattern pricing)."""
        starts = np.atleast_1d(np.asarray(starts, dtype=np.int64))
        lengths = np.atleast_1d(np.asarray(lengths, dtype=np.int64))
        threads = self._clamp_threads(threads)
        self.machine.events.emit(CpuDrain(op="scattered"))
        media = 0.0
        total = 0
        for s, l in zip(starts.tolist(), lengths.tolist()):
            media += self.machine.optane.write_flush_grain(
                region, s, l, grain=self.config.cpu_cache_line_bytes, random=True
            )
            self.machine.llc.drop_range(region, s, l)
            total += l
        sw = total / (self.config.cpu_persist_bw_single
                      * self.config.cpu_persist_speedup(threads))
        self.machine.events.emit(CpuPmWrite(nbytes=total))
        elapsed = max(sw, media)
        self.machine.clock.advance(elapsed)
        return elapsed

    def nt_write_and_persist(self, region: Region, offset: int, data,
                             threads: int | None = None) -> float:
        """Non-temporal stores + drain: bypasses the cache to PM.

        Only valid when the CPU itself generates the data (CPU-only
        baselines); CAP-mm cannot use this path (Section 3).
        """
        data = np.asarray(data, dtype=np.uint8).ravel()
        threads = self._clamp_threads(threads)
        region.write_bytes(offset, data)
        media = self.machine.cpu_nt_store_arrival(region, [offset], [data.size])
        self.machine.events.emit(CpuDrain(op="nt_store"))
        sw = data.size / (self.config.cpu_nt_store_bw_single
                          * self.config.cpu_persist_speedup(threads))
        elapsed = max(sw, media)
        self.machine.clock.advance(elapsed)
        return elapsed

    def compute(self, total_ops: int, threads: int | None = None,
                op_latency: float = 1.0e-9) -> float:
        """Charge pure CPU compute of ``total_ops`` over ``threads`` cores."""
        threads = self._clamp_threads(threads)
        elapsed = total_ops * op_latency / threads
        self.machine.clock.advance(elapsed)
        return elapsed

    def read_pm(self, region: Region, offset: int, size: int, random: bool = False) -> float:
        """Timed PM read (media-side cost only)."""
        elapsed = self.machine.optane.read(size, random=random)
        self.machine.clock.advance(elapsed)
        return elapsed

"""A PM-backed DAX filesystem model (ext4-DAX of Table 3).

Two roles:

* **Naming and lifetime of PM**: libGPM allocates persistent memory by
  memory-mapping PM-resident files (Section 5.1, via PMDK's libpmem).  A
  :class:`PmFile` owns a PM region that survives simulated crashes; the
  filesystem's namespace is itself persistent.
* **The CAP-fs persistence path** (Section 3): ``write()`` +
  ``fsync()``/``msync()`` with syscall overheads and the filesystem's
  software amplification on the persist bandwidth
  (:attr:`~repro.sim.config.SystemConfig.fs_bw_derate`).
"""

from __future__ import annotations

import numpy as np

from ..sim.events import CpuPmWrite, Syscall
from ..sim.machine import Machine
from ..sim.memory import Region


class FsError(Exception):
    """Filesystem-level failure (missing file, duplicate create, ...)."""


class PmFile:
    """A file on the DAX filesystem, backed by a PM region."""

    def __init__(self, path: str, region: Region) -> None:
        self.path = path
        self.region = region
        #: Bytes dirtied via write() since the last fsync.
        self._dirty_low: int | None = None
        self._dirty_high: int | None = None

    @property
    def size(self) -> int:
        return self.region.size

    def _mark_dirty(self, offset: int, size: int) -> None:
        high = offset + size
        self._dirty_low = offset if self._dirty_low is None else min(self._dirty_low, offset)
        self._dirty_high = high if self._dirty_high is None else max(self._dirty_high, high)

    def _take_dirty(self) -> tuple[int, int] | None:
        if self._dirty_low is None:
            return None
        span = (self._dirty_low, self._dirty_high - self._dirty_low)
        self._dirty_low = self._dirty_high = None
        return span


class DaxFilesystem:
    """The host's PM-resident filesystem."""

    def __init__(self, machine: Machine) -> None:
        self.machine = machine
        self.config = machine.config
        self._files: dict[str, PmFile] = {}

    # -- namespace --------------------------------------------------------

    def create(self, path: str, size: int) -> PmFile:
        """Create a PM-resident file of ``size`` bytes."""
        if path in self._files:
            raise FsError(f"file exists: {path!r}")
        self.machine.events.emit(Syscall(op="create"))
        self.machine.clock.advance(self.config.syscall_s)
        region = self.machine.alloc_pm(f"fs:{path}", size)
        f = PmFile(path, region)
        self._files[path] = f
        return f

    def open(self, path: str) -> PmFile:
        self.machine.events.emit(Syscall(op="open"))
        self.machine.clock.advance(self.config.syscall_s)
        try:
            return self._files[path]
        except KeyError:
            raise FsError(f"no such file: {path!r}") from None

    def exists(self, path: str) -> bool:
        return path in self._files

    def unlink(self, path: str) -> None:
        f = self._files.pop(path, None)
        if f is None:
            raise FsError(f"no such file: {path!r}")
        self.machine.events.emit(Syscall(op="unlink"))
        self.machine.clock.advance(self.config.syscall_s)
        self.machine.free(f.region)

    def listdir(self) -> list[str]:
        return sorted(self._files)

    # -- CAP-fs data path ---------------------------------------------------

    def write(self, f: PmFile, offset: int, data) -> float:
        """``write()`` syscall: copy data into the DAX file (not yet durable).

        The copy runs at the single-thread persist bandwidth derated by the
        filesystem software factor; durability requires :meth:`fsync`.
        """
        data = np.asarray(data, dtype=np.uint8).ravel()
        self.machine.events.emit(Syscall(op="write"))
        f.region.write_from(offset, data)
        self.machine.cpu_store_arrival(f.region, offset, data.size)
        f._mark_dirty(offset, data.size)
        elapsed = self.config.syscall_s + data.size / self.config.cpu_memcpy_bw_single
        self.machine.clock.advance(elapsed)
        return elapsed

    def fsync(self, f: PmFile) -> float:
        """``fsync()``: make all written data durable.

        Pays the syscall, the flush-grain media drain of the dirty span, and
        the filesystem software derate on the persist bandwidth.
        """
        self.machine.events.emit(Syscall(op="fsync"))
        span = f._take_dirty()
        elapsed = self.config.syscall_s
        if span is not None:
            offset, size = span
            media = self.machine.optane.write_flush_grain(
                f.region, offset, size, grain=self.config.cpu_cache_line_bytes
            )
            self.machine.llc.drop_range(f.region, offset, size)
            sw = size / (self.config.cpu_persist_bw_single / self.config.fs_bw_derate)
            elapsed += max(media, sw)
            self.machine.events.emit(CpuPmWrite(nbytes=size))
        self.machine.clock.advance(elapsed)
        return elapsed

"""The GPU driver's DMA engine (cudaMemcpy paths).

Section 3: ``cudaMemcpy`` between device memory and a memory-mapped file
"internally uses a pinned memory on DRAM as a bounce buffer"; CAP pays for
(1) initiating the DMA, (2) the PCIe transfer, and (3) for pageable/mapped
destinations, the extra bounce-buffer copy.

Functionally, DMA writes arriving at host memory pass through DDIO like any
I/O write: into the (volatile) LLC when the destination is PM - which is why
CAP still needs the CPU to flush afterwards.
"""

from __future__ import annotations

from ..sim.bulk import BulkTransfer
from ..sim.events import DramWrite, HbmWrite
from ..sim.machine import Machine
from ..sim.memory import MemKind, Region


class DmaEngine:
    """cudaMemcpy-style bulk transfers between HBM and host memory."""

    def __init__(self, machine: Machine) -> None:
        self.machine = machine
        self.config = machine.config

    def device_to_host(self, src: Region, src_off: int, dst: Region, dst_off: int,
                       nbytes: int, pinned: bool = True,
                       defer_fill: bool = False) -> float:
        """DMA ``nbytes`` from GPU memory to host memory.

        ``pinned=False`` models a pageable/mapped destination: the transfer
        stages through a pinned DRAM bounce buffer, adding a host-side copy.
        ``defer_fill`` elides the functional copy into ``dst`` (legal only
        for caller-private DRAM staging; see ``repro.sim.bulk``).  Returns
        elapsed seconds (also advances the clock).
        """
        if src.kind is not MemKind.HBM:
            raise ValueError("device_to_host source must be HBM")
        if dst.kind is MemKind.HBM:
            raise ValueError("device_to_host destination must be host memory")
        # src and dst are distinct memories (HBM vs host): one copy (or a
        # deferred fill the next pipeline stage reads through).
        BulkTransfer(dst, dst_off, src, src_off, nbytes).apply(
            defer=defer_fill and dst.kind is MemKind.DRAM
        )
        elapsed = self.machine.pcie.dma_time(nbytes, to_gpu=False)
        if dst.kind is MemKind.PM:
            # I/O writes to PM land in the LLC via DDIO: visible, volatile.
            self.machine.llc.install_writes(dst, [dst_off], [nbytes])
        else:
            self.machine.events.emit(DramWrite(nbytes=nbytes, source="dma"))
        if not pinned:
            elapsed += nbytes / self.config.cpu_memcpy_bw_single
        self.machine.clock.advance(elapsed)
        return elapsed

    def host_to_device(self, src: Region, src_off: int, dst: Region, dst_off: int,
                       nbytes: int, pinned: bool = True) -> float:
        """DMA ``nbytes`` from host memory into GPU memory."""
        if dst.kind is not MemKind.HBM:
            raise ValueError("host_to_device destination must be HBM")
        if src.kind is MemKind.HBM:
            raise ValueError("host_to_device source must be host memory")
        BulkTransfer(dst, dst_off, src, src_off, nbytes).apply()
        elapsed = self.machine.pcie.dma_time(nbytes, to_gpu=True)
        self.machine.events.emit(HbmWrite(nbytes=nbytes))
        if src.kind is MemKind.PM:
            elapsed += self.machine.optane.read(nbytes)
        if not pinned:
            elapsed += nbytes / self.config.cpu_memcpy_bw_single
        self.machine.clock.advance(elapsed)
        return elapsed

"""Calibrated software costs of the CPU baselines.

The paper's Fig. 1 compares GPM against *real* CPU systems - Intel pmemKV,
RocksDB-pmem, MatrixKV, and hand-parallelised PM-aware CPU applications.
Those are large closed or external codebases we cannot rebuild; per the
substitution rule they are modelled as **performance models layered on the
shared Optane substrate**: a functional data structure plus per-operation
software costs.

The constants below are the models' calibration points.  They were chosen
to be *independently plausible* for the real systems on Optane (per-op
costs of PM key-value stores are well documented in the paper's refs
[38, 79, 100]) and are NOT tuned per figure; the Fig. 1 ratios then emerge
from running both sides on the same simulated machine.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class KvsCost:
    """Per-SET software cost model of a CPU persistent KVS."""

    #: single-thread software time per SET (index walk, locking, allocator,
    #: log formatting) - excludes the media time, which the Optane model adds
    per_op_s: float
    #: Amdahl parallel fraction across the 64-core server
    parallel_fraction: float
    #: bytes appended to a WAL (sequential flush-grain) per SET
    wal_bytes: int
    #: random PM cache lines flushed in place per SET
    random_lines: int


#: Intel pmemKV (cmap engine): lock-sharded PM hashmap, no WAL - in-place
#: persistent updates, two random line flushes (slot + bucket metadata).
PMEMKV = KvsCost(per_op_s=7.5e-6, parallel_fraction=0.95, wal_bytes=0, random_lines=2)

#: RocksDB on PM: WAL append + memtable insert + amortised compaction
#: rewrite (LSM write amplification folded into the WAL byte count).
ROCKSDB = KvsCost(per_op_s=16.0e-6, parallel_fraction=0.94, wal_bytes=192, random_lines=0)

#: MatrixKV: LSM with a PM matrix container for L0 - cheaper compactions
#: than RocksDB but more software than pmemKV.
MATRIXKV = KvsCost(per_op_s=8.5e-6, parallel_fraction=0.95, wal_bytes=96, random_lines=0)


#: Multi-threaded CPU PM applications (Fig. 1b): per-parallel-region costs.
#: A fork/join parallel region (e.g. one BFS level) pays thread wake-up +
#: barrier; fine-grained PM updates are serialised on shared structures.
CPU_PARALLEL_REGION_S = 18e-6
#: Per-PM-update software cost in CPU native apps when the update targets a
#: *contended shared structure* (BFS's frontier queue + cost array): an
#: atomic claim, the store, CLFLUSHOPT and a serialising SFENCE under
#: contention.  ~2 us per update matches the per-op costs measured for
#: contended fine-grained PM updates in the paper's refs [64, 99].
CPU_PM_UPDATE_S = 2.2e-6
#: Per-element compute cost of the CPU stencil/scan codes (vectorised AVX).
CPU_ELEMENT_OP_S = 1.2e-9

"""CPU-only persistent-memory baselines (the Fig. 1 comparators)."""

from .costs import (
    CPU_ELEMENT_OP_S,
    CPU_PARALLEL_REGION_S,
    CPU_PM_UPDATE_S,
    MATRIXKV,
    PMEMKV,
    ROCKSDB,
    KvsCost,
)
from .cpu_apps import CpuBfs, CpuPrefixSum, CpuSrad
from .cpu_db import CpuDb
from .cpu_kvs import CpuKvsStore, MatrixKvStore, PmemKvStore, RocksDbStore

__all__ = [
    "CPU_ELEMENT_OP_S",
    "CPU_PARALLEL_REGION_S",
    "CPU_PM_UPDATE_S",
    "CpuBfs",
    "CpuDb",
    "CpuKvsStore",
    "CpuPrefixSum",
    "CpuSrad",
    "KvsCost",
    "MATRIXKV",
    "MatrixKvStore",
    "PMEMKV",
    "PmemKvStore",
    "ROCKSDB",
    "RocksDbStore",
]

"""Multi-threaded CPU PM applications: the Fig. 1b comparators.

The paper's Fig. 1b compares GPM-ported BFS, SRAD and PS against
"multi-threaded CPU alternatives that use PM for persistence" (speedups of
27x, 19.2x and 2.8x respectively).  These are performance models of such
CPU implementations on the shared substrate: the *function* is computed
exactly (numpy), and the *time* combines

* per-element vectorised compute across the server's cores,
* a fork/join parallel-region cost per iteration/level, and
* the serialised fine-grained PM update path (locked shared-structure
  append + flush per update) that CPUs cannot latency-hide the way a GPU's
  thousands of warps can - the crux of the paper's Fig. 1b argument.

Costs come from :mod:`repro.baselines.costs`.
"""

from __future__ import annotations

import numpy as np

from ..system import System
from ..workloads.bfs import INF, make_road_graph
from ..workloads.srad import srad_iteration
from .costs import CPU_ELEMENT_OP_S, CPU_PARALLEL_REGION_S, CPU_PM_UPDATE_S


def _parallel_time(elements: int, threads: int, per_element: float = CPU_ELEMENT_OP_S) -> float:
    return elements * per_element / max(threads, 1)


class CpuBfs:
    """Level-synchronous CPU BFS persisting costs + sequence to PM."""

    name = "CPU BFS"

    def __init__(self, system: System, rows: int = 128, cols: int = 640,
                 threads: int = 64, seed: int = 17) -> None:
        self.system = system
        self.threads = min(threads, system.config.cpu_max_threads)
        self.rows, self.cols = rows, cols
        self.row_ptr, self.col_idx = make_road_graph(rows, cols, seed, 0.0)
        n = rows * cols
        self.state = system.machine.alloc_pm("cpubfs.state", 8 * n + 128)
        self.cost_view = self.state.view(np.uint32, 128, n)

    def run(self, source: int = 0) -> float:
        """Full traversal; returns elapsed simulated seconds."""
        machine = self.system.machine
        start = machine.clock.now
        n = self.rows * self.cols
        cost = self.cost_view
        cost[:] = INF
        cost[source] = 0
        frontier = np.array([source])
        level = 0
        while frontier.size:
            gather = np.concatenate([
                self.col_idx[self.row_ptr[u] : self.row_ptr[u + 1]]
                for u in frontier.tolist()
            ]) if frontier.size else np.array([], dtype=np.int32)
            nbrs = np.unique(gather)
            new = nbrs[cost[nbrs] == INF]
            cost[new] = level + 1
            # Time: fork/join + edge relaxations + serialised PM updates
            # (locked queue append + in-place cost flush per discovery).
            sw = (
                CPU_PARALLEL_REGION_S
                + _parallel_time(gather.size * 8, self.threads)
                + new.size * CPU_PM_UPDATE_S
            )
            media = 0.0
            for node in new.tolist():
                media += machine.optane.write_flush_grain(
                    self.state, 128 + 4 * node, 4, grain=64, random=True
                )
            machine.clock.advance(max(sw, media))
            frontier = new
            level += 1
        return machine.clock.now - start


class CpuSrad:
    """CPU SRAD persisting the coefficient/output planes each iteration."""

    name = "CPU SRAD"

    def __init__(self, system: System, n: int = 192, iterations: int = 6,
                 threads: int = 64, seed: int = 23) -> None:
        self.system = system
        self.n = n
        self.iterations = iterations
        self.threads = min(threads, system.config.cpu_max_threads)
        rng = np.random.default_rng(seed)
        base = rng.uniform(0.2, 1.0, size=(n, n))
        self.img = (base * np.exp(rng.normal(0, 0.15, size=(n, n))))
        self.state = system.machine.alloc_pm("cpusrad.state", 2 * 4 * n * n + 256)

    def run(self) -> float:
        machine = self.system.machine
        start = machine.clock.now
        cur = self.img
        n_px = self.n * self.n
        for _ in range(self.iterations):
            cur, coef = srad_iteration(cur)
            self.state.view(np.float32, 0, n_px)[:] = cur.astype(np.float32).ravel()
            self.state.view(np.float32, 4 * n_px, n_px)[:] = coef.ravel()
            # Compute: the Rodinia OpenMP SRAD kernel is division/branch
            # heavy and scales poorly with threads; ~26 ns per pixel of
            # serial-equivalent time matches its published CPU-vs-GPU gap.
            # Persistence: store + flush loops over both planes at the
            # Fig. 3a-calibrated bandwidth.
            nbytes = 2 * 4 * n_px
            persist_bw = (self.system.config.cpu_persist_bw_single
                          * self.system.config.cpu_persist_speedup(self.threads))
            sw = (
                CPU_PARALLEL_REGION_S
                + n_px * 26e-9
                + nbytes / persist_bw
            )
            media = machine.optane.write_flush_grain(self.state, 0, nbytes,
                                                     grain=64)
            machine.clock.advance(max(sw, media))
        self.result = cur
        return machine.clock.now - start


class CpuPrefixSum:
    """CPU prefix sum persisting partial + final sums."""

    name = "CPU PS"

    def __init__(self, system: System, n: int = 16384, arrays: int = 1,
                 threads: int = 64, seed: int = 31) -> None:
        self.system = system
        self.n = n
        self.arrays = arrays
        self.threads = min(threads, system.config.cpu_max_threads)
        rng = np.random.default_rng(seed)
        self.inputs = [rng.integers(1, 100, size=n, dtype=np.int64)
                       for _ in range(arrays)]
        self.state = system.machine.alloc_pm("cpups.state", 2 * 8 * n + 128)

    def run(self) -> float:
        machine = self.system.machine
        start = machine.clock.now
        for data in self.inputs:
            out = np.cumsum(data)
            self.state.view(np.int64, 128, self.n)[:] = out
            # Blocked parallel scan: two passes over the data; both the
            # partial and final sums are persisted with store+flush loops,
            # mirroring the GPU version's two persisted arrays.
            nbytes = 2 * 8 * self.n
            persist_bw = (self.system.config.cpu_persist_bw_single
                          * self.system.config.cpu_persist_speedup(self.threads))
            sw = (
                2 * CPU_PARALLEL_REGION_S
                + _parallel_time(2 * self.n, self.threads, 2 * CPU_ELEMENT_OP_S)
                + nbytes / persist_bw
            )
            media = machine.optane.write_flush_grain(self.state, 128, 8 * self.n,
                                                     grain=64)
            media += machine.optane.write_flush_grain(self.state, 128, 8 * self.n,
                                                      grain=64)
            machine.clock.advance(max(sw, media))
            self.result = out
        return machine.clock.now - start

"""CPU persistent key-value stores: the Fig. 1a comparators.

Three performance-modelled stores run batched SETs on the simulated
machine's CPU + Optane substrate:

* :class:`PmemKvStore` - Intel pmemKV's cmap engine: a lock-sharded PM
  hash map with in-place persistent updates (no log).
* :class:`RocksDbStore` - RocksDB with its WAL on PM: sequential WAL
  appends plus LSM compaction write amplification.
* :class:`MatrixKvStore` - MatrixKV: LSM with a PM-resident matrix
  container that cheapens L0 compaction.

Each is *functionally* a real store (SETs land in a persistent image and
survive crashes; GETs return the stored values) with the per-op software
costs of :mod:`repro.baselines.costs` and media time from the shared
Optane model.
"""

from __future__ import annotations

import numpy as np

from ..sim.memory import Region
from ..system import System
from ..workloads.kvs import hash64
from .costs import MATRIXKV, PMEMKV, ROCKSDB, KvsCost


class CpuKvsStore:
    """Base: a persistent CPU hash store with a modelled persistence path."""

    #: paper-facing name for reports
    display_name = "cpu-kvs"

    def __init__(self, system: System, cost: KvsCost, n_sets: int = 8192,
                 ways: int = 8, threads: int = 64) -> None:
        self.system = system
        self.cost = cost
        self.n_sets = n_sets
        self.ways = ways
        self.threads = min(threads, system.config.cpu_max_threads)
        n = n_sets * ways
        self.table = system.machine.alloc_pm(f"cpukvs:{id(self)}", n * 16)
        self._keys = self.table.view(np.uint64, 0, n)
        self._values = self.table.view(np.uint64, n * 8, n)
        self._wal_pos = 0
        self._wal: Region | None = None
        if cost.wal_bytes:
            self._wal = system.machine.alloc_pm(f"cpukvs-wal:{id(self)}", 64 << 20)

    # -- operations ---------------------------------------------------------

    def set_batch(self, keys: np.ndarray, values: np.ndarray) -> float:
        """Apply a batch of SETs; returns elapsed simulated seconds."""
        machine = self.system.machine
        start = machine.clock.now
        n_ops = keys.size
        slots = np.empty(n_ops, dtype=np.int64)
        for i in range(n_ops):
            slots[i] = self._insert_functional(int(keys[i]), int(values[i]))
        # software time: per-op cost, Amdahl-scaled over the cores
        p = self.cost.parallel_fraction
        speedup = 1.0 / ((1.0 - p) + p / self.threads)
        sw = n_ops * self.cost.per_op_s / speedup
        # media time: WAL appends are sequential flush-grain streams;
        # in-place updates are random line flushes
        media = 0.0
        if self.cost.wal_bytes and self._wal is not None:
            nbytes = n_ops * self.cost.wal_bytes
            if self._wal_pos + nbytes > self._wal.size:
                self._wal_pos = 0
            media += machine.optane.write_flush_grain(
                self._wal, self._wal_pos, nbytes, grain=64
            )
            self._wal_pos += nbytes
        if self.cost.random_lines:
            for s in (slots * 8).tolist():
                media += machine.optane.write_flush_grain(
                    self.table, s, 64 * self.cost.random_lines, grain=64, random=True
                )
        machine.clock.advance(max(sw, media))
        return machine.clock.now - start

    def get(self, key: int) -> int | None:
        base = (hash64(key) % self.n_sets) * self.ways
        for w in range(self.ways):
            if int(self._keys[base + w]) == key:
                return int(self._values[base + w])
        return None

    def _insert_functional(self, key: int, value: int) -> int:
        base = (hash64(key) % self.n_sets) * self.ways
        loc = -1
        for w in range(self.ways):
            if int(self._keys[base + w]) == key:
                loc = w
                break
        if loc < 0:
            for w in range(self.ways):
                if int(self._keys[base + w]) == 0:
                    loc = w
                    break
        if loc < 0:
            loc = hash64(key ^ 0x9E3779B97F4A7C15) % self.ways
        self._keys[base + loc] = key
        self._values[base + loc] = value
        # In-place stores persist through the modelled flush path; reflect
        # that functionally so crash tests see durable data.
        self.table.persist_range((base + loc) * 8, 8)
        self.table.persist_range(self.n_sets * self.ways * 8 + (base + loc) * 8, 8)
        return base + loc

    def throughput(self, batch_size: int = 4096, batches: int = 4,
                   seed: int = 7) -> float:
        """Batched-SET throughput in ops/s (the Fig. 1a metric)."""
        rng = np.random.default_rng(seed)
        n = self.n_sets * self.ways
        elapsed = 0.0
        for _ in range(batches):
            keys = rng.integers(1, n * 4, size=batch_size, dtype=np.uint64)
            vals = rng.integers(1, 1 << 63, size=batch_size, dtype=np.uint64)
            elapsed += self.set_batch(keys, vals)
        return batches * batch_size / elapsed


class PmemKvStore(CpuKvsStore):
    """Intel pmemKV (cmap engine) on PM."""

    display_name = "Intel PmemKV"

    def __init__(self, system: System, **kw) -> None:
        super().__init__(system, PMEMKV, **kw)


class RocksDbStore(CpuKvsStore):
    """RocksDB with a PM-resident WAL."""

    display_name = "RocksDB-PM"

    def __init__(self, system: System, **kw) -> None:
        super().__init__(system, ROCKSDB, **kw)


class MatrixKvStore(CpuKvsStore):
    """MatrixKV: LSM with a PM matrix container."""

    display_name = "MatrixKV"

    def __init__(self, system: System, **kw) -> None:
        super().__init__(system, MATRIXKV, **kw)

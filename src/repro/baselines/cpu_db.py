"""CPU-only gpDB: the OpenMP port of Section 6.1.

"For a fair comparison, we converted the CUDA implementation of gpDB to
OpenMP implementation that can leverage many core CPUs. We observed that
GPM sped up gpDB (I) and gpDB (U) by 3.1x and 6.9x, respectively, while
maintaining the same recoverability properties through write-ahead
logging."

This model runs the same batched INSERT/UPDATE work on the CPU with
write-ahead logging: updates log the old row to a PM WAL (sequential
flush-grain), apply in place (random line flushes), and inserts append
rows (nt-store stream) after logging the table size.
"""

from __future__ import annotations

import numpy as np

from ..system import System
from ..workloads.db import ROW_BYTES, ROW_COLUMNS
from ..workloads.kvs import hash64
from .costs import CPU_PARALLEL_REGION_S

#: Per-update software cost of the OpenMP port: WAL entry formatting, two
#: CLFLUSHOPTs (WAL line + row line) and an SFENCE, uncontended.
CPU_DB_UPDATE_S = 0.9e-6


class CpuDb:
    """The OpenMP-style CPU database with WAL recoverability."""

    name = "CPU gpDB"

    def __init__(self, system: System, capacity_rows: int = 32768,
                 initial_rows: int = 16384, threads: int = 64,
                 seed: int = 11) -> None:
        self.system = system
        self.threads = min(threads, system.config.cpu_max_threads)
        self.capacity_rows = capacity_rows
        self.table = system.machine.alloc_pm("cpudb.table",
                                             128 + capacity_rows * ROW_BYTES)
        self.wal = system.machine.alloc_pm("cpudb.wal", 16 << 20)
        self._wal_pos = 0
        rng = np.random.default_rng(seed)
        rows = self.table.view(np.uint64, 128, capacity_rows * ROW_COLUMNS)
        rows[: initial_rows * ROW_COLUMNS] = rng.integers(
            1, 1 << 63, size=initial_rows * ROW_COLUMNS, dtype=np.uint64
        )
        self.row_count = initial_rows
        self.table.persist_range(0, self.table.size)

    def _wal_append(self, nbytes: int) -> float:
        if self._wal_pos + nbytes > self.wal.size:
            self._wal_pos = 0
        t = self.system.machine.optane.write_flush_grain(
            self.wal, self._wal_pos, nbytes, grain=64
        )
        self._wal_pos += nbytes
        return t

    def insert_batch(self, n_rows: int, seed: int = 0) -> float:
        """Append ``n_rows``; returns elapsed simulated seconds."""
        machine = self.system.machine
        start = machine.clock.now
        rng = np.random.default_rng(seed)
        rows = self.table.view(np.uint64, 128, self.capacity_rows * ROW_COLUMNS)
        base = self.row_count
        data = rng.integers(1, 1 << 63, size=n_rows * ROW_COLUMNS, dtype=np.uint64)
        rows[base * ROW_COLUMNS : (base + n_rows) * ROW_COLUMNS] = data
        self.row_count += n_rows
        # WAL: just the table size; data: store + CLFLUSHOPT loops over the
        # appended rows (the port uses the same persist discipline as
        # updates).
        media = self._wal_append(64)
        nbytes = n_rows * ROW_BYTES
        media += machine.optane.write_flush_grain(
            self.table, 128 + base * ROW_BYTES, nbytes, grain=64
        )
        sw = (
            CPU_PARALLEL_REGION_S
            + nbytes / self.system.config.cpu_persist_bw_single
            / self.system.config.cpu_persist_speedup(self.threads)
        )
        machine.clock.advance(max(sw, media))
        return machine.clock.now - start

    def update_batch(self, n_updates: int, seed: int = 0) -> float:
        """Update two columns of scattered rows under WAL; returns seconds."""
        machine = self.system.machine
        start = machine.clock.now
        rows = self.table.view(np.uint64, 128, self.capacity_rows * ROW_COLUMNS)
        media = 0.0
        for i in range(n_updates):
            r = hash64(seed ^ (i * 0x9E3779B97F4A7C15)) % self.row_count
            # undo-log the old row (sequential WAL), then update in place
            media += self._wal_append(ROW_BYTES + 8)
            val = np.uint64(hash64(seed + i) or 1)
            rows[r * ROW_COLUMNS + 2] = val
            rows[r * ROW_COLUMNS + 5] = val ^ np.uint64(0xFF)
            media += machine.optane.write_flush_grain(
                self.table, 128 + r * ROW_BYTES, ROW_BYTES, grain=64, random=True
            )
        sw = CPU_PARALLEL_REGION_S + n_updates * CPU_DB_UPDATE_S
        machine.clock.advance(max(sw, media))
        return machine.clock.now - start

"""A multi-producer persistent append ring for GPU threads.

Thousands of GPU threads append records concurrently; each record must be
either fully durable or invisible after a crash.  The design uses the
sentinel discipline of HCL's tail index (Section 5.2) at per-entry
granularity:

1. the producer reserves a ticket with an atomic fetch-add on a PM cursor;
2. it writes the payload into the ticket's slot and **persists it**;
3. only then does it write and persist the slot's sequence word
   (``ticket + 1``, never 0) - the commit sentinel.

A crash between (2) and (3) leaves a *hole*: the payload bytes may be on
PM but the sequence word is 0, so readers never observe a torn record.
Recovery-time consumers use :meth:`committed` (every committed record, in
ticket order) or :meth:`durable_prefix` (the gap-free prefix, for
consumers that need exactly-once, in-order handoff).

This build targets the append-only regime (at most ``capacity`` records
between :meth:`reset` calls), which is the checkpoint/journal pattern GPM
workloads need; wrap-around reclamation would add a consumer cursor.
"""

from __future__ import annotations

import numpy as np

from ..core.errors import GpmError
from ..core.mapping import gpm_map
from ..gpu.memory import DeviceArray

_MAGIC = 0x50524E47  # "PRNG"
_HEADER_BYTES = 128
_CURSOR_OFF = 16
ENTRY_BYTES = 16  # [seq u64 | value u64]


class PersistentRing:
    """An append-only, crash-consistent record ring on PM."""

    def __init__(self, system, path: str) -> None:
        self.system = system
        self.path = path
        self.gpm = gpm_map(system, path)
        header = self.gpm.view(np.uint32, 0, 2)
        if int(header[0]) != _MAGIC:
            raise GpmError(f"{path!r} is not a PersistentRing")
        self.capacity = int(header[1])
        self._slots = self.gpm.array(np.uint64, _HEADER_BYTES,
                                     self.capacity * 2)

    @classmethod
    def create(cls, system, path: str, capacity: int) -> "PersistentRing":
        if capacity <= 0:
            raise GpmError("capacity must be positive")
        size = _HEADER_BYTES + capacity * ENTRY_BYTES
        region = gpm_map(system, path, size, create=True)
        header = region.view(np.uint32, 0, 2)
        header[0] = _MAGIC
        header[1] = capacity
        region.region.persist_range(0, _HEADER_BYTES)
        return cls(system, path)

    @classmethod
    def open(cls, system, path: str) -> "PersistentRing":
        return cls(system, path)

    # -- device API -------------------------------------------------------------

    def append(self, ctx, value: int) -> int:
        """Append one record from a GPU thread; returns its ticket.

        Must run inside a persistence window for the commit sentinel to
        mean anything.  Raises once the ring is full (append-only build).
        """
        ticket = int(ctx.atomic_add(self.gpm.region, _CURSOR_OFF, 1, np.uint64))
        if ticket >= self.capacity:
            raise GpmError(f"ring {self.path!r} full ({self.capacity} records)")
        slot = ticket % self.capacity
        # payload first...
        self._slots.write(ctx, slot * 2 + 1, np.uint64(value))
        ctx.persist()
        # ...then the commit sentinel
        self._slots.write(ctx, slot * 2, np.uint64(ticket + 1))
        ctx.persist()
        return ticket

    # -- host API ----------------------------------------------------------------

    def _view(self, durable: bool) -> np.ndarray:
        arr = self._slots.np_persisted if durable else self._slots.np
        return arr.reshape(self.capacity, 2)

    def reserved(self) -> int:
        """Tickets handed out (including ones whose commit was lost)."""
        return int(self.gpm.view(np.uint64, _CURSOR_OFF, 1)[0])

    def committed(self, durable: bool = True) -> list[tuple[int, int]]:
        """Every committed (ticket, value), in ticket order."""
        slots = self._view(durable)
        seqs = slots[:, 0]
        present = np.flatnonzero(seqs)
        order = np.argsort(seqs[present])
        return [(int(seqs[i]) - 1, int(slots[i, 1]))
                for i in present[order].tolist()]

    def durable_prefix(self) -> list[tuple[int, int]]:
        """The gap-free committed prefix (exactly-once consumers)."""
        out = []
        for expected, (ticket, value) in enumerate(self.committed(durable=True)):
            if ticket != expected:
                break
            out.append((ticket, value))
        return out

    def holes(self) -> list[int]:
        """Tickets that were reserved but never durably committed."""
        committed = {t for t, _ in self.committed(durable=True)}
        # The durable cursor may itself lag; holes are judged against the
        # highest committed ticket (anything reserved beyond it that never
        # committed is indistinguishable from never-reserved).
        horizon = max(committed) + 1 if committed else 0
        return [t for t in range(horizon) if t not in committed]

    def declare_invariants(self, system=None) -> list:
        """Structural invariants (``repro.check`` protocol).

        Judged after a crash plus :meth:`recover`: the header survives,
        committed sequence words are well-formed (each names a ticket below
        the reserved horizon, no two slots claim the same ticket), and the
        cursor sits past every committed record so future appends cannot
        overwrite history.  Returns ``(name, description, fn)`` triples.
        """

        def header_intact() -> tuple[bool, str]:
            header = self.gpm.view(np.uint32, 0, 2)
            if int(header[0]) != _MAGIC:
                return False, f"magic is {int(header[0]):#x}"
            if int(header[1]) != self.capacity:
                return False, f"capacity changed to {int(header[1])}"
            return True, "magic and capacity intact"

        def sequence_words_valid() -> tuple[bool, str]:
            committed = self.committed(durable=True)
            tickets = [t for t, _ in committed]
            if len(set(tickets)) != len(tickets):
                return False, "two slots claim the same ticket"
            bad = [t for t in tickets if not 0 <= t < self.capacity]
            if bad:
                return False, f"tickets out of range: {bad[:4]}"
            return True, f"{len(tickets)} committed records, all well-formed"

        def cursor_past_committed() -> tuple[bool, str]:
            committed = self.committed(durable=True)
            horizon = max((t for t, _ in committed), default=-1) + 1
            if self.reserved() < horizon:
                return False, (f"cursor {self.reserved()} lags committed "
                               f"horizon {horizon}: appends would overwrite")
            return True, f"cursor {self.reserved()} >= horizon {horizon}"

        return [
            ("ring-header-intact",
             "the ring header survives any crash", header_intact),
            ("ring-sequence-words-valid",
             "committed sequence words are unique and in range",
             sequence_words_valid),
            ("ring-cursor-past-committed",
             "the recovered cursor never lets appends overwrite history",
             cursor_past_committed),
        ]

    def recover(self) -> int:
        """Repair the cursor after a crash; returns the next free ticket.

        The cursor's own last increments may not have persisted, so after a
        crash it can lag the highest committed ticket - new appends would
        then overwrite committed records.  Recovery advances it past every
        committed record (holes stay holes) and persists it.
        """
        committed = self.committed(durable=True)
        next_ticket = (max(t for t, _ in committed) + 1) if committed else 0
        cursor = self.gpm.view(np.uint64, _CURSOR_OFF, 1)
        if int(cursor[0]) < next_ticket:
            cursor[0] = next_ticket
        self.gpm.region.persist_range(_CURSOR_OFF, 8)
        elapsed = self.system.machine.optane.write_flush_grain(
            self.gpm.region, _CURSOR_OFF, 8, grain=64
        )
        self.system.machine.clock.advance(elapsed)
        return int(cursor[0])

    def reset(self) -> None:
        """Truncate the ring (host-side, durable)."""
        self.gpm.view(np.uint64, _CURSOR_OFF, 1)[0] = 0
        self._slots.np[:] = 0
        region = self.gpm.region
        region.persist_range(0, region.size)
        elapsed = self.system.machine.optane.write_flush_grain(
            region, 0, region.size, grain=256
        )
        self.system.machine.clock.advance(elapsed)

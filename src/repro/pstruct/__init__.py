"""Crash-consistent persistent data structures built on libGPM.

The paper's contribution is the *mechanism* (fine-grained in-kernel
persistence) and a library of primitives; this package is the layer a
downstream adopter would build next - reusable, recoverable data
structures whose crash consistency is enforced by libGPM's logging,
fences, and sentinel disciplines:

* :class:`~repro.pstruct.hashmap.PersistentHashMap` - a set-associative
  u64 -> u64 map with undo-logged batched inserts (the gpKVS recipe of
  Fig. 6, packaged as a library type).
* :class:`~repro.pstruct.ring.PersistentRing` - a multi-producer append
  ring where GPU threads reserve slots with an atomic cursor and commit
  entries with a persisted-sequence sentinel, so consumers (and recovery)
  see every committed entry and no torn ones.
"""

from .hashmap import PersistentHashMap
from .ring import PersistentRing

__all__ = ["PersistentHashMap", "PersistentRing"]

"""A crash-consistent GPU hash map on persistent memory.

The gpKVS recipe of Fig. 6, packaged as a reusable type: a set-associative
u64 -> u64 table on PM whose batched inserts run as GPU kernels under HCL
write-ahead undo logging and a transaction flag.  Any crash leaves the map
in the state of the last committed batch after :meth:`recover`.

Usage::

    pmap = PersistentHashMap.create(system, "/pm/map", capacity=65536)
    pmap.insert_batch(keys, values)      # durable + atomic
    pmap.get(key)                        # host-side lookup
    # after a crash:
    pmap = PersistentHashMap.open(system, "/pm/map")
    pmap.recover()
"""

from __future__ import annotations

import numpy as np

from ..core.errors import GpmError, LogEmpty
from ..core.logging import (
    gpmlog_clear,
    gpmlog_create_hcl,
    gpmlog_insert,
    gpmlog_open,
    gpmlog_read,
    gpmlog_remove,
)
from ..core.mapping import gpm_map
from ..core.persist import persist_window
from ..core.transactions import TransactionFlag
from ..gpu.memory import DeviceArray
from ..workloads.kvs import hash64

_HEADER_BYTES = 128
_MAGIC = 0x504D4150  # "PMAP"
WAYS = 8
#: undo entry: [slot u64, old_key u64, old_value u64]
_UNDO_BYTES = 24
_BLOCK_DIM = 128
_MAX_BATCH = 8192


def _insert_kernel(ctx, keys, values, batch_keys, batch_values, n_ops,
                   n_sets, log):
    i = ctx.global_id
    if i >= n_ops:
        return
    key = int(batch_keys.read(ctx, i))
    value = int(batch_values.read(ctx, i))
    ctx.charge_ops(6)
    base = (hash64(key) % n_sets) * WAYS
    row = keys.read_vec(ctx, base, WAYS)
    loc = -1
    for w in range(WAYS):
        if int(row[w]) == key:
            loc = w
            break
    if loc < 0:
        for w in range(WAYS):
            if int(row[w]) == 0:
                loc = w
                break
    if loc < 0:
        loc = hash64(key ^ 0x9E3779B97F4A7C15) % WAYS
    slot = base + loc
    old = np.array([slot, int(row[loc]), int(values.read(ctx, slot))],
                   dtype=np.uint64)
    gpmlog_insert(ctx, log, old)
    keys.write(ctx, slot, key)
    values.write(ctx, slot, value)
    ctx.persist()


def _undo_kernel(ctx, keys, values, log, n_ops):
    if ctx.global_id >= n_ops:
        return
    try:
        raw = gpmlog_read(ctx, log, _UNDO_BYTES)
    except LogEmpty:
        return
    entry = raw.view(np.uint64)
    slot = int(entry[0])
    keys.write(ctx, slot, entry[1])
    values.write(ctx, slot, entry[2])
    ctx.persist()
    gpmlog_remove(ctx, log, _UNDO_BYTES)


class PersistentHashMap:
    """A recoverable set-associative map for GPU batch workloads."""

    def __init__(self, system, path: str) -> None:
        self.system = system
        self.path = path
        self.gpm = gpm_map(system, path)
        header = self.gpm.view(np.uint32, 0, 4)
        if int(header[0]) != _MAGIC:
            raise GpmError(f"{path!r} is not a PersistentHashMap")
        self.n_sets = int(header[1])
        self.capacity = self.n_sets * WAYS
        self._keys = self.gpm.array(np.uint64, _HEADER_BYTES, self.capacity)
        self._values = self.gpm.array(
            np.uint64, _HEADER_BYTES + self.capacity * 8, self.capacity
        )
        self._flag = (TransactionFlag.open(system, f"{path}.flag")
                      if system.fs.exists(f"{path}.flag")
                      else TransactionFlag.create(system, f"{path}.flag"))
        self._log = (gpmlog_open(system, f"{path}.log")
                     if system.fs.exists(f"{path}.log")
                     else self._make_log())

    def _make_log(self):
        blocks = (_MAX_BATCH + _BLOCK_DIM - 1) // _BLOCK_DIM
        capacity = blocks * _BLOCK_DIM * 8 * _UNDO_BYTES + (1 << 16)
        return gpmlog_create_hcl(self.system, f"{self.path}.log", capacity,
                                 blocks, _BLOCK_DIM)

    # -- lifecycle ------------------------------------------------------------

    @classmethod
    def create(cls, system, path: str, capacity: int) -> "PersistentHashMap":
        """Create a new map with at least ``capacity`` slots."""
        n_sets = max(1, -(-capacity // WAYS))
        size = _HEADER_BYTES + n_sets * WAYS * 16
        region = gpm_map(system, path, size, create=True)
        header = region.view(np.uint32, 0, 4)
        header[0] = _MAGIC
        header[1] = n_sets
        region.region.persist_range(0, _HEADER_BYTES)
        return cls(system, path)

    @classmethod
    def open(cls, system, path: str) -> "PersistentHashMap":
        """Re-attach to an existing map (e.g. after a crash)."""
        return cls(system, path)

    # -- mutation -------------------------------------------------------------

    def insert_batch(self, keys, values, crash_injector=None) -> float:
        """Atomically and durably apply a batch of inserts on the GPU.

        Keys must be nonzero and unique within the batch.  Returns elapsed
        simulated seconds.  On a mid-batch crash, :meth:`recover` restores
        the pre-batch state.
        """
        keys = np.asarray(keys, dtype=np.uint64)
        values = np.asarray(values, dtype=np.uint64)
        if keys.size != values.size:
            raise GpmError("keys and values must pair up")
        if keys.size > _MAX_BATCH:
            raise GpmError(f"batch of {keys.size} exceeds {_MAX_BATCH}")
        if (keys == 0).any():
            raise GpmError("0 is the empty-slot sentinel; keys must be nonzero")
        if np.unique(keys).size != keys.size:
            raise GpmError("keys must be unique within a batch")
        system = self.system
        start = system.machine.clock.now
        n = keys.size
        hbm = system.machine.alloc_hbm(f"pmap.batch.{id(keys)}", n * 16)
        bk = DeviceArray(hbm, np.uint64, 0, n)
        bv = DeviceArray(hbm, np.uint64, n * 8, n)
        bk.np[:] = keys
        bv.np[:] = values
        blocks = (n + _BLOCK_DIM - 1) // _BLOCK_DIM
        self._flag.begin()
        try:
            with persist_window(system):
                system.gpu.launch(
                    _insert_kernel, blocks, _BLOCK_DIM,
                    (self._keys, self._values, bk, bv, n, self.n_sets,
                     self._log),
                    crash_injector=crash_injector,
                )
            self._flag.commit()
            gpmlog_clear(self._log)
        finally:
            system.machine.free(hbm)
        return system.machine.clock.now - start

    def recover(self) -> float:
        """Undo any interrupted batch; safe to call unconditionally."""
        system = self.system
        start = system.machine.clock.now
        if self._flag.active:
            blocks = (_MAX_BATCH + _BLOCK_DIM - 1) // _BLOCK_DIM
            with persist_window(system):
                system.gpu.launch(_undo_kernel, blocks, _BLOCK_DIM,
                                  (self._keys, self._values, self._log,
                                   _MAX_BATCH))
            self._flag.commit()
        gpmlog_clear(self._log)
        return system.machine.clock.now - start

    # -- crash invariants --------------------------------------------------------

    def declare_invariants(self, system=None) -> list:
        """Structural invariants (``repro.check`` protocol).

        Judged after a crash plus :meth:`recover`: the header survives, the
        batch flag is idle, and no slot is torn (a durable key whose value
        word is still the empty sentinel - every insert persists both words
        in one epoch, and undo restores them pairwise).  Returns plain
        ``(name, description, fn)`` triples, ``fn() -> (ok, detail)``.
        """

        def header_intact() -> tuple[bool, str]:
            header = self.gpm.view(np.uint32, 0, 4)
            if int(header[0]) != _MAGIC:
                return False, f"magic is {int(header[0]):#x}"
            if int(header[1]) != self.n_sets:
                return False, f"n_sets changed to {int(header[1])}"
            return True, "magic and geometry intact"

        def flag_idle() -> tuple[bool, str]:
            if self._flag.active:
                return False, "batch flag still active after recovery"
            return True, "batch flag idle"

        def no_torn_slots() -> tuple[bool, str]:
            keys = self._keys.np_persisted
            values = self._values.np_persisted
            torn = np.flatnonzero((keys != 0) & (values == 0))
            if torn.size:
                return False, f"{torn.size} durable keys lost their values"
            return True, "every durable key carries its durable value"

        return [
            ("hashmap-header-intact",
             "the map header survives any crash", header_intact),
            ("hashmap-flag-idle",
             "the batch transaction flag is idle after recovery", flag_idle),
            ("hashmap-no-torn-slots",
             "key and value words of a slot are never torn apart",
             no_torn_slots),
        ]

    # -- queries ---------------------------------------------------------------

    def get(self, key: int, durable: bool = False) -> int | None:
        """Host-side lookup; ``durable=True`` reads the post-crash image."""
        view_keys = self._keys.np_persisted if durable else self._keys.np
        view_vals = self._values.np_persisted if durable else self._values.np
        base = (hash64(int(key)) % self.n_sets) * WAYS
        for w in range(WAYS):
            if int(view_keys[base + w]) == key:
                return int(view_vals[base + w])
        return None

    def __len__(self) -> int:
        return int(np.count_nonzero(self._keys.np))

    def items(self):
        """Iterate (key, value) pairs currently resident."""
        occupied = np.flatnonzero(self._keys.np)
        for slot in occupied.tolist():
            yield int(self._keys.np[slot]), int(self._values.np[slot])

"""The GPU execution hierarchy: grids, threadblocks, warps, threads.

Section 2 of the paper: work is dispatched to the GPU as a *grid* of
*threadblocks*; a threadblock's threads execute in lockstep groups of 32
called *warps*; loads/stores by a warp's threads falling on the same 128 B
block are coalesced by hardware into a single access.  HCL's log layout
(Figs. 4-5) is literally this hierarchy, so the simulator exposes it
faithfully.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Dim3:
    """A CUDA-style 1/2/3-dimensional extent."""

    x: int = 1
    y: int = 1
    z: int = 1

    def __post_init__(self) -> None:
        if min(self.x, self.y, self.z) < 1:
            raise ValueError(f"dimensions must be >= 1, got {self}")

    @classmethod
    def of(cls, dims) -> "Dim3":
        """Coerce an int, tuple, or Dim3 into a Dim3."""
        if isinstance(dims, Dim3):
            return dims
        if isinstance(dims, int):
            return cls(dims)
        return cls(*dims)

    @property
    def count(self) -> int:
        return self.x * self.y * self.z

    def flatten(self, x: int, y: int, z: int) -> int:
        """Linearise coordinates in CUDA order (x fastest)."""
        return (z * self.y + y) * self.x + x

    def unflatten(self, flat: int) -> tuple[int, int, int]:
        x = flat % self.x
        y = (flat // self.x) % self.y
        z = flat // (self.x * self.y)
        return x, y, z

    def __iter__(self):
        return iter((self.x, self.y, self.z))


@dataclass(frozen=True)
class ThreadId:
    """Full identity of one simulated GPU thread."""

    grid_dim: Dim3
    block_dim: Dim3
    block_flat: int
    thread_flat: int
    warp_size: int = 32

    @property
    def global_id(self) -> int:
        """Flat global thread index across the grid."""
        return self.block_flat * self.block_dim.count + self.thread_flat

    @property
    def lane(self) -> int:
        """Position within the warp (0..warp_size-1)."""
        return self.thread_flat % self.warp_size

    @property
    def warp_in_block(self) -> int:
        return self.thread_flat // self.warp_size

    @property
    def warp_global(self) -> int:
        """Flat warp index across the grid."""
        warps_per_block = (self.block_dim.count + self.warp_size - 1) // self.warp_size
        return self.block_flat * warps_per_block + self.warp_in_block

    @property
    def thread_idx(self) -> tuple[int, int, int]:
        return self.block_dim.unflatten(self.thread_flat)

    @property
    def block_idx(self) -> tuple[int, int, int]:
        return self.grid_dim.unflatten(self.block_flat)


def warps_in_block(block_dim: Dim3, warp_size: int = 32) -> int:
    return (block_dim.count + warp_size - 1) // warp_size


def warps_in_grid(grid_dim: Dim3, block_dim: Dim3, warp_size: int = 32) -> int:
    return grid_dim.count * warps_in_block(block_dim, warp_size)

"""Simulated SIMT GPU: execution hierarchy, kernels, coalescing, fences."""

from .device import Gpu
from .hierarchy import Dim3, ThreadId, warps_in_block, warps_in_grid
from .kernel import GpuFault, KernelResult, LaunchAccounting, ThreadContext
from .memory import DeviceArray
from .multi import GroupResult, MultiGpu
from .warp import WarpContext, scalar_lane, vectorized_for

__all__ = [
    "DeviceArray",
    "Dim3",
    "Gpu",
    "GpuFault",
    "GroupResult",
    "MultiGpu",
    "KernelResult",
    "LaunchAccounting",
    "ThreadContext",
    "ThreadId",
    "WarpContext",
    "scalar_lane",
    "vectorized_for",
    "warps_in_block",
    "warps_in_grid",
]

"""Multi-GPU coordination over one persistence domain.

Section 2 of the paper: *"The system scope affects all GPU and CPU
threads, and those in other GPUs for multi-GPU kernels"* - GPM's
persistence story extends to several GPUs sharing the host's PM, each over
its own PCIe link, all draining into the same Optane domain.

:class:`MultiGpu` launches one kernel per device *concurrently*: each
launch is executed functionally in sequence (the simulator is
single-threaded) with its clock advance deferred, then the wall-clock cost
of the overlapped group is charged as::

    elapsed = max(per-GPU kernel times, combined Optane media demand)

Per-GPU PCIe links overlap freely; the PM media is the shared resource, so
the sum of the group's drain-epoch times is a floor.  This reproduces the
expected scaling shape: fine-grained persist throughput grows nearly
linearly with GPUs until the Optane media saturates
(:func:`repro.experiments.multigpu.multi_gpu_scaling`).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..sim.machine import Machine
from .device import Gpu
from .kernel import KernelResult


@dataclass
class GroupResult:
    """Outcome of one overlapped multi-GPU launch group."""

    elapsed: float
    per_gpu: list[KernelResult]

    @property
    def media_bound(self) -> bool:
        """Did the shared PM media set the group's critical path?"""
        media = sum(r.accounting.pm_media_time for r in self.per_gpu)
        longest = max(r.elapsed for r in self.per_gpu)
        return media >= longest


class MultiGpu:
    """A set of GPUs sharing one machine's persistence domain."""

    def __init__(self, machine: Machine, n_gpus: int) -> None:
        if n_gpus < 1:
            raise ValueError("need at least one GPU")
        self.machine = machine
        self.gpus = [Gpu(machine) for _ in range(n_gpus)]

    def __len__(self) -> int:
        return len(self.gpus)

    def parallel_launch(self, launches) -> GroupResult:
        """Run one (kernel, grid, block, args) tuple per GPU, overlapped.

        ``launches`` is a sequence of up to ``len(self)`` tuples; entry
        *i* runs on GPU *i*.  Functional effects apply in list order
        (a simulator serialisation of racy cross-GPU writes); time is the
        overlapped critical path described in the module docstring.
        """
        launches = list(launches)
        if not launches:
            raise ValueError("nothing to launch")
        if len(launches) > len(self.gpus):
            raise ValueError(f"{len(launches)} launches for {len(self.gpus)} GPUs")
        results = []
        for gpu, (kernel, grid, block, args) in zip(self.gpus, launches):
            results.append(
                gpu.launch(kernel, grid, block, args, advance_clock=False)
            )
        longest = max(r.elapsed for r in results)
        media = sum(r.accounting.pm_media_time for r in results)
        elapsed = max(longest, media)
        self.machine.clock.advance(elapsed)
        return GroupResult(elapsed=elapsed, per_gpu=results)

"""The simulated GPU: kernel launches, warp scheduling, bulk transfers.

Execution model
---------------

:meth:`Gpu.launch` runs a kernel functionally, one thread at a time, in warp
order.  Persist-grade stores buffered by the threads (see
:mod:`repro.gpu.kernel`) are delivered to the machine at warp-retire (or
barrier) boundaries so that lockstep stores coalesce into shared PCIe
transactions and Optane drain epochs.

Timing model
------------

The launch's elapsed simulated time is::

    launch_overhead + max(compute, hbm, host_write, host_read)

* ``compute``: charged ops / min(threads, parallel lanes).
* ``hbm``: bytes moved to/from GDDR6 at the HBM bandwidth.
* ``host_write``: the larger of (a) the PCIe transaction stream under the
  link's bounded concurrency, (b) the per-warp fence critical path
  (``rounds x RTT x waves`` - a thread cannot overlap its own fences), and
  (c) the Optane media drain time of the written epochs.
* ``host_read``: PM/DRAM loads over the link.

This reproduces the two behaviours the paper's performance story rests on:
massive parallelism hides individual persist latency (Fig. 3b rises), and
the link's bounded concurrency plus the media's pattern sensitivity cap it
(Fig. 3b plateaus, Fig. 12 varies by workload).
"""

from __future__ import annotations

import inspect
import math

import numpy as np

from ..sim.bulk import BulkTransfer
from ..sim.crash import CrashInjector
from ..sim.events import (
    EpochBoundary,
    HbmWrite,
    KernelLaunch,
    PcieWrite,
    SystemFence,
    WarpDrain,
)
from ..sim.machine import Machine
from ..sim.memory import MemKind, Region
from ..sim.optane import merge_segments, merge_segments_grouped
from ..sim.persistency import active_mutant
from .hierarchy import Dim3, ThreadId, warps_in_grid
from .kernel import (
    _IMPLICIT_ROUND,
    GpuFault,
    KernelResult,
    LaunchAccounting,
    ThreadContext,
    _WarpDrainBuffer,
)
from .warp import WarpContext, resolve_warp_impl


class _BlockEngine:
    """Shared machinery between the threads of one launch."""

    def __init__(self, machine: Machine, acct: LaunchAccounting,
                 defer: bool = False) -> None:
        self.machine = machine
        self.acct = acct
        #: With ``defer`` (no crash injector armed), warp-round drains are
        #: queued in delivery order and batched per region at the next
        #: barrier/finish - one numpy pass over thousands of warps instead
        #: of per-warp merge/epoch calls.  Events, accounting and the
        #: persisted image are identical: mid-launch persistence frontiers
        #: are only observable through crash injection, which always runs
        #: the unbatched path.
        self.defer = defer
        self._deferred: list = []
        #: fence ordering applied this launch - the machine's persistency
        #: model decides (strict: every fence is its own ordered drain
        #: round; epoch: fences coalesce per epoch, ordering only across
        #: barriers; relaxed: durability only at kernel completion).
        self.policy = machine.persistency.fence_policy
        self._buffers: dict[int, _WarpDrainBuffer] = {}
        self._warp_rounds: dict[int, int] = {}
        self._warps_with_writes: set[int] = set()
        #: fences completed this launch; emitted as one batched SystemFence
        #: event at finish() so the per-fence hot path is a counter bump.
        self._fence_count = 0
        #: epoch-policy state: the open epoch's ordinal, whether it saw any
        #: fences, and the last epoch each warp fenced in (to count each
        #: warp's drain rounds as epochs-with-fences, not fences).
        self._epoch = 1
        self._epoch_dirty = False
        self._warp_epoch_seen: dict[int, int] = {}

    # -- metering (called by ThreadContext) -------------------------------

    def meter_read(self, region: Region, nbytes: int) -> None:
        if region.kind is MemKind.HBM:
            self.acct.hbm_read_bytes += nbytes
        else:
            self.acct.host_read_bytes += nbytes

    def meter_write(self, ctx: ThreadContext, region: Region, offset: int, nbytes: int) -> None:
        if region.kind is MemKind.HBM:
            self.acct.hbm_write_bytes += nbytes
        else:
            ctx._pending.append((region, offset, nbytes))

    def meter_atomic(self, ctx: ThreadContext, region: Region, offset: int, nbytes: int) -> None:
        # An atomic is a read-modify-write; over PCIe both directions count.
        self.acct.ops += 4
        if region.kind is MemKind.HBM:
            self.acct.hbm_read_bytes += nbytes
            self.acct.hbm_write_bytes += nbytes
        else:
            self.acct.host_read_bytes += nbytes
            ctx._pending.append((region, offset, nbytes))

    def fence(self, ctx: ThreadContext) -> None:
        self.acct.fences += 1
        self._fence_count += 1
        warp = ctx.tid.warp_global
        if self.policy == "relaxed":
            # Durability only at kernel completion: the fence costs nothing
            # and orders nothing; pending stores ride to the implicit round.
            return
        if self.policy == "epoch":
            # Fences within one epoch coalesce into a single drain round;
            # a warp pays one RTT per epoch it fences in, not per fence.
            if self._warp_epoch_seen.get(warp) != self._epoch:
                self._warp_epoch_seen[warp] = self._epoch
                self._warp_rounds[warp] = self._warp_rounds.get(warp, 0) + 1
            self._epoch_dirty = True
            round_no = self._epoch
        else:
            ctx._round += 1
            self._warp_rounds[warp] = max(self._warp_rounds.get(warp, 0), ctx._round)
            round_no = ctx._round
        if ctx._pending:
            buf = self._buffers.setdefault(warp, _WarpDrainBuffer())
            buf.add_many(round_no, ctx._pending)
            ctx._pending.clear()
            self._warps_with_writes.add(warp)

    # -- lifecycle ---------------------------------------------------------

    def thread_retired(self, ctx: ThreadContext) -> None:
        """Move a retiring thread's unfenced stores to the implicit round."""
        if ctx._pending:
            warp = ctx.tid.warp_global
            buf = self._buffers.setdefault(warp, _WarpDrainBuffer())
            buf.add_many(_IMPLICIT_ROUND, ctx._pending)
            ctx._pending.clear()
            self._warps_with_writes.add(warp)

    def flush_warp(self, warp_global: int) -> None:
        buf = self._buffers.pop(warp_global, None)
        if buf is None:
            return
        # Sentinel mutant "fence-order": deliver the buffered rounds in
        # reverse - a later fence's writes become durable while an earlier
        # fence's are still pending, re-planting the broken-demo bug at the
        # engine level for the litmus fuzzer to catch.
        for round_no in sorted(buf.rounds,
                               reverse=active_mutant() == "fence-order"):
            for region, starts, lengths in buf.rounds[round_no].values():
                if self.defer:
                    self._deferred.append((region, starts, lengths, round_no))
                else:
                    self._deliver(region, starts, lengths, round_no)

    def flush_all(self) -> None:
        for warp in list(self._buffers):
            self.flush_warp(warp)

    def epoch_boundary(self) -> None:
        """Close the open epoch (block barrier / kernel completion).

        Only meaningful under epoch-policy models, and only when the epoch
        initiated persists: emits :class:`EpochBoundary` - the frontier at
        which epoch-persistency ordering becomes observable - and opens the
        next epoch.  Callers flush first, so the boundary lands after the
        epoch's drains in the event stream.
        """
        self._flush_deferred()
        if self.policy != "epoch" or not self._epoch_dirty:
            return
        nxt = self.machine.persistency.advance_epoch(self._epoch)
        if nxt == self._epoch:
            # The model declined to open a new epoch (the "epoch-boundary"
            # sentinel mutant): adjacent epochs silently coalesce and no
            # boundary frontier is announced.
            return
        self.machine.events.emit(EpochBoundary(epoch=self._epoch))
        self._epoch = nxt
        self._epoch_dirty = False

    def _deliver(self, region: Region, starts, lengths,
                 round_no: int = 0) -> None:
        # The scalar lane buffers lists of ints, the warp lane lists of
        # numpy batches; either way one flat array pair reaches the merge.
        if starts and isinstance(starts[0], np.ndarray):
            starts = np.concatenate(starts)
            lengths = np.concatenate(lengths)
        s, l = merge_segments(np.asarray(starts), np.asarray(lengths))
        nbytes = int(l.sum())
        self.machine.events.emit(WarpDrain(
            region=region.name,
            round_no=-1 if round_no == _IMPLICIT_ROUND else round_no,
            segments=s.size, nbytes=nbytes, starts=s, lengths=l,
        ))
        self.acct.host_write_bytes += nbytes
        self.acct.host_write_tx += self.machine.pcie.transactions_for(s, l)
        self.acct.pm_media_time += self.machine.io_write_arrival(region, s, l)

    def _flush_deferred(self) -> None:
        """Deliver the queued warp-round drains, batched per region.

        Consecutive same-region queue entries become the groups of one
        :func:`merge_segments_grouped` pass; each group then gets the same
        :class:`WarpDrain` event, accounting, and (via the machine's
        ``before_group`` hook) event interleaving that :meth:`_deliver`
        would have produced for it, while the merge, XPLine and PCIe
        arithmetic for all groups run vectorized.  Routes that cannot batch
        (DDIO installs, adaptive routing) fall back to per-entry delivery.
        """
        queue = self._deferred
        if not queue:
            return
        self._deferred = []
        machine = self.machine
        acct = self.acct
        tx_bytes = machine.config.pcie_tx_bytes
        i, n = 0, len(queue)
        while i < n:
            region = queue[i][0]
            j = i
            while j < n and queue[j][0] is region:
                j += 1
            entries = queue[i:j]
            i = j
            if len(entries) == 1:
                self._deliver(*entries[0])
                continue
            flat_s, flat_l, flat_g = [], [], []
            for g, (_region, starts, lengths, _round) in enumerate(entries):
                if starts and isinstance(starts[0], np.ndarray):
                    s = np.concatenate(starts)
                    l = np.concatenate(lengths)
                else:
                    s = np.asarray(starts, dtype=np.int64)
                    l = np.asarray(lengths, dtype=np.int64)
                flat_s.append(s)
                flat_l.append(l)
                flat_g.append(np.full(s.size, g, dtype=np.int64))
            s_all = np.concatenate(flat_s)
            l_all = np.concatenate(flat_l)
            if s_all.size == 0 or (l_all <= 0).any():
                # Degenerate segments: keep the reference path's handling.
                for entry in entries:
                    self._deliver(*entry)
                continue
            n_groups = len(entries)
            run_s, run_l, run_g = merge_segments_grouped(
                s_all, l_all, np.concatenate(flat_g), region.size + 1)
            bounds = np.searchsorted(run_g, np.arange(n_groups + 1)).tolist()
            nbytes_g = np.bincount(run_g, weights=run_l,
                                   minlength=n_groups).astype(np.int64)
            spans = (run_s + run_l - 1) // tx_bytes - run_s // tx_bytes + 1
            tx_g = np.bincount(run_g, weights=spans,
                               minlength=n_groups).astype(np.int64)
            nbytes_l = nbytes_g.tolist()
            emit = machine.events.emit
            name = region.name

            def _drain(g, bounds=bounds, entries=entries, run_s=run_s,
                       run_l=run_l, nbytes_l=nbytes_l, name=name):
                lo, hi = bounds[g], bounds[g + 1]
                round_no = entries[g][3]
                emit(WarpDrain(
                    region=name,
                    round_no=-1 if round_no == _IMPLICIT_ROUND else round_no,
                    segments=hi - lo, nbytes=nbytes_l[g],
                    starts=run_s[lo:hi], lengths=run_l[lo:hi],
                ))

            times = machine.io_write_arrival_groups(
                region, run_s, run_l, run_g, n_groups, before_group=_drain)
            if times is None:
                for entry in entries:
                    self._deliver(*entry)
                continue
            acct.host_write_bytes += int(nbytes_g.sum())
            acct.host_write_tx += int(tx_g.sum())
            for t in times.tolist():
                acct.pm_media_time += t

    def finish(self) -> None:
        self.flush_all()
        self.epoch_boundary()
        if self._fence_count:
            self.machine.events.emit(SystemFence(count=self._fence_count))
            self._fence_count = 0
        if (self.policy == "relaxed" and self.acct.fences
                and self._warps_with_writes):
            # All persist traffic drains as one round at kernel completion.
            self.acct.max_warp_rounds = 1
        else:
            self.acct.max_warp_rounds = max(self._warp_rounds.values(), default=0)
        self.acct.warps_with_host_writes = len(self._warps_with_writes)


class Gpu:
    """The simulated PCIe-attached GPU of the platform."""

    def __init__(self, machine: Machine) -> None:
        self.machine = machine
        self.config = machine.config

    # ------------------------------------------------------------------
    # kernel launch
    # ------------------------------------------------------------------

    def launch(
        self,
        kernel,
        grid_dim,
        block_dim,
        args: tuple = (),
        *,
        compute_ops_per_thread: int = 0,
        shared_factory=None,
        crash_injector: CrashInjector | None = None,
        advance_clock: bool = True,
    ) -> KernelResult:
        """Run ``kernel`` over a grid; returns timing and traffic.

        ``kernel`` is called as ``kernel(ctx, *args)`` per thread.  If it is
        a generator function, each ``yield`` is a block-wide barrier
        (``__syncthreads``).  ``shared_factory(block_id)`` builds the
        block's shared-memory object (default: a fresh dict).

        Kernels carrying a warp-level implementation (see
        :func:`repro.gpu.warp.vectorized_for`) execute on the vectorized
        lane - one Python call per warp instead of per thread - with
        bit-identical accounting, events, and memory images.  The scalar
        lane is used whenever a ``crash_injector`` is supplied (including
        ``repro.check``'s frontier recorders): per-thread interleaving is
        exactly what crash injection explores.  ``KernelResult.lane``
        reports which lane ran.

        Raises :class:`~repro.sim.crash.SimulatedCrash` if an armed
        ``crash_injector`` fires mid-launch; simulated time for the partial
        execution is still charged.

        ``advance_clock=False`` computes the elapsed time without advancing
        the machine clock - used by the multi-GPU coordinator, which
        overlaps several launches and advances by their combined critical
        path instead.
        """
        grid = Dim3.of(grid_dim)
        block = Dim3.of(block_dim)
        if block.count > 1024:
            raise GpuFault(f"block of {block.count} threads exceeds the 1024-thread limit")
        warp_size = self.config.gpu_warp_size
        acct = LaunchAccounting()
        engine = _BlockEngine(self.machine, acct, defer=crash_injector is None)
        before = self.machine.stats.snapshot()
        total_threads = grid.count * block.count
        acct.ops += compute_ops_per_thread * total_threads
        self.machine.events.emit(KernelLaunch(kind="kernel"))
        warp_impl = resolve_warp_impl(kernel) if crash_injector is None else None
        run_as = warp_impl if warp_impl is not None else kernel
        is_generator = inspect.isgeneratorfunction(run_as)
        retired = 0
        crashed = False
        try:
            for block_flat in range(grid.count):
                shared = shared_factory(block_flat) if shared_factory else {}
                if warp_impl is not None:
                    retired = self._run_block_warps(
                        warp_impl, grid, block, block_flat, shared, args,
                        engine, warp_size, retired, is_generator,
                    )
                    continue
                contexts = [
                    ThreadContext(
                        ThreadId(grid, block, block_flat, t, warp_size), shared, engine
                    )
                    for t in range(block.count)
                ]
                if is_generator:
                    retired = self._run_block_generators(
                        kernel, contexts, args, engine, retired, crash_injector
                    )
                else:
                    retired = self._run_block_plain(
                        kernel, contexts, args, engine, warp_size, retired, crash_injector
                    )
        except Exception:
            crashed = True
            raise
        finally:
            engine.finish()
            frac = retired / total_threads if total_threads else 1.0
            elapsed = self._launch_elapsed(acct, total_threads, grid, block)
            if crashed:
                elapsed *= max(frac, 1.0 / max(total_threads, 1))
            if advance_clock:
                self.machine.clock.advance(elapsed)
        return KernelResult(
            elapsed=elapsed,
            accounting=acct,
            stats_delta=self.machine.stats.delta_since(before),
            threads=total_threads,
            warps=warps_in_grid(grid, block, warp_size),
            lane="warp" if warp_impl is not None else "scalar",
        )

    def _run_block_plain(self, kernel, contexts, args, engine, warp_size, retired, injector):
        for w0 in range(0, len(contexts), warp_size):
            warp_ctxs = contexts[w0 : w0 + warp_size]
            for ctx in warp_ctxs:
                kernel(ctx, *args)
                engine.thread_retired(ctx)
                retired += 1
                if injector is not None:
                    injector.advance(1)
            engine.flush_warp(warp_ctxs[0].tid.warp_global)
        return retired

    def _run_block_generators(self, kernel, contexts, args, engine, retired, injector):
        active = []
        for ctx in contexts:
            gen = kernel(ctx, *args)
            active.append((ctx, gen))
        while active:
            still = []
            newly = 0
            for ctx, gen in active:
                try:
                    next(gen)
                    still.append((ctx, gen))
                except StopIteration:
                    engine.thread_retired(ctx)
                    retired += 1
                    newly += 1
            # Barrier (or block end): all fenced batches become visible in
            # program order before any post-barrier store.  Under epoch
            # persistency the barrier also closes the epoch.
            engine.flush_all()
            engine.epoch_boundary()
            if injector is not None:
                injector.advance(newly)
            active = still
        return retired

    def _run_block_warps(self, warp_impl, grid, block, block_flat, shared,
                         args, engine, warp_size, retired, is_generator):
        """One block on the vectorized lane: one Python call per warp.

        Plain warp kernels mirror ``_run_block_plain``: run the warp, move
        its unfenced stores to the implicit round, flush.  Generator warp
        kernels mirror ``_run_block_generators``: every warp advances to
        the barrier, then the block-wide ``flush_all`` delivers all fenced
        batches in program order - so event order is identical by
        construction.
        """
        n = block.count
        if not is_generator:
            for w0 in range(0, n, warp_size):
                count = min(warp_size, n - w0)
                wctx = WarpContext(grid, block, block_flat, w0, count,
                                   warp_size, shared, engine)
                warp_impl(wctx, *args)
                wctx._retire()
                engine.flush_warp(wctx.warp_global)
                retired += count
            return retired
        running = []
        for w0 in range(0, n, warp_size):
            count = min(warp_size, n - w0)
            wctx = WarpContext(grid, block, block_flat, w0, count,
                               warp_size, shared, engine)
            running.append((wctx, warp_impl(wctx, *args)))
        while running:
            still = []
            for wctx, gen in running:
                try:
                    next(gen)
                    still.append((wctx, gen))
                except StopIteration:
                    wctx._retire()
                    retired += wctx.n
            engine.flush_all()
            engine.epoch_boundary()
            running = still
        return retired

    # ------------------------------------------------------------------
    # timing
    # ------------------------------------------------------------------

    def _launch_elapsed(self, acct: LaunchAccounting, total_threads: int, grid: Dim3, block: Dim3) -> float:
        cfg = self.config
        total_warps = warps_in_grid(grid, block, cfg.gpu_warp_size)
        waves = max(1, math.ceil(total_warps / cfg.gpu_max_resident_warps))
        compute = acct.ops * cfg.gpu_op_latency_s / max(
            1, min(total_threads, cfg.gpu_parallel_lanes)
        )
        hbm = (acct.hbm_read_bytes + acct.hbm_write_bytes) / cfg.gpu_hbm_bw
        warps_issuing = max(1, min(acct.warps_with_host_writes, cfg.gpu_max_resident_warps))
        host_write = self.machine.pcie.fine_grained_write_time(
            acct.host_write_tx, acct.host_write_bytes, warps_issuing
        )
        fence_chain = acct.max_warp_rounds * cfg.pcie_rtt_s * waves
        host_write = max(host_write, fence_chain, acct.pm_media_time, acct.serial_time)
        read_warps = max(1, min(total_warps, cfg.gpu_max_resident_warps))
        host_read = self.machine.pcie.read_time(acct.host_read_bytes, read_warps)
        return cfg.gpu_kernel_launch_s + max(compute, hbm, host_write, host_read)

    # ------------------------------------------------------------------
    # bulk transfers (engine-level helpers used by libGPM and baselines)
    # ------------------------------------------------------------------

    def stream_copy(
        self,
        dst: Region,
        dst_off: int,
        src: Region,
        src_off: int,
        nbytes: int,
        persist: bool = True,
        defer_fill: bool = False,
    ) -> float:
        """Device-wide streaming copy kernel (128 B-aligned, coalesced).

        This is the data path of ``gpmcp_checkpoint``/``gpmcp_restore``: a
        grid of warps streams ``nbytes`` between HBM and host memory with
        perfectly coalesced accesses, then (optionally) issues one
        system-scope fence.  Returns elapsed seconds (also advances the
        clock).

        ``defer_fill`` lowers the data movement to a pending fill on ``dst``
        (copy elision; see :mod:`repro.sim.bulk`).  Only legal when the
        caller owns ``dst`` as private staging that nothing reads before the
        next pipeline stage consumes it.  Accounting is unaffected.
        """
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        cfg = self.config
        self.machine.events.emit(KernelLaunch(kind="stream_copy"))
        BulkTransfer(dst, dst_off, src, src_off, nbytes).apply(defer=defer_fill)
        elapsed = cfg.gpu_kernel_launch_s
        if nbytes:
            if dst.kind is MemKind.HBM and src.kind is MemKind.HBM:
                elapsed += 2 * nbytes / cfg.gpu_hbm_bw
            elif dst.kind is MemKind.HBM:
                # host -> device restore path
                elapsed += max(
                    self.machine.pcie.stream_read_time(nbytes),
                    nbytes / cfg.gpu_hbm_bw,
                )
                if src.kind is MemKind.PM:
                    elapsed += self.machine.optane.read(0)  # latency term only
            else:
                # device -> host streaming write
                pcie_t = self.machine.pcie.stream_write_time(nbytes)
                media_t = self.machine.io_write_arrival(dst, [dst_off], [nbytes])
                elapsed += max(pcie_t, media_t, nbytes / cfg.gpu_hbm_bw)
                if persist:
                    self.machine.events.emit(SystemFence())
                    elapsed += cfg.pcie_rtt_s
        self.machine.clock.advance(elapsed)
        return elapsed

    def scatter_store_bulk(
        self,
        region: Region,
        offsets: np.ndarray,
        values: np.ndarray,
        item_bytes: int,
        fence_rounds: int = 1,
        ops_per_item: int = 0,
    ) -> float:
        """A data-parallel kernel of scattered stores + persists, vectorised.

        Equivalent to launching one thread per item where thread *i* stores
        ``item_bytes`` at byte offset ``offsets[i]`` and fences - but the
        warp grouping, coalescing, Optane epochs and timing are computed
        with numpy so large native-persistence workloads (BFS frontiers,
        SRAD planes) stay tractable.  Items are assigned to warps of 32 in
        order, as the launch engine would.  Returns elapsed seconds.
        """
        offsets = np.asarray(offsets, dtype=np.int64)
        n = offsets.size
        cfg = self.config
        self.machine.events.emit(KernelLaunch(kind="scatter"))
        if n == 0:
            self.machine.clock.advance(cfg.gpu_kernel_launch_s)
            return cfg.gpu_kernel_launch_s
        flat = np.ascontiguousarray(values).reshape(-1)
        raw = flat.view(np.uint8)
        if raw.size != n * item_bytes:
            raise ValueError(
                f"values supply {raw.size} bytes for {n} items of {item_bytes} B"
            )
        # Functional scatter: one fancy-indexed assignment; duplicate offsets
        # resolve last-item-wins, as the sequential store loop would (both
        # paths are item-granular, so the equivalence holds under aliasing).
        region.ensure_materialized()
        if (
            item_bytes == flat.dtype.itemsize
            and item_bytes in (2, 4, 8)
            and region.size % item_bytes == 0
            and not (offsets & (item_bytes - 1)).any()
        ):
            # Aligned typed scatter: one element store per item instead of
            # item_bytes byte stores.
            region.visible.view(flat.dtype)[offsets >> item_bytes.bit_length() - 1] = flat
        else:
            idx = (offsets[:, None] + np.arange(item_bytes, dtype=np.int64)).reshape(-1)
            region.visible[idx] = raw
        lengths = np.full(n, item_bytes, dtype=np.int64)
        nbytes_total = n * item_bytes
        if region.kind is MemKind.HBM:
            # Device-local scatter: only compute + HBM bandwidth matter.
            self.machine.events.emit(HbmWrite(nbytes=nbytes_total))
            compute = ops_per_item * n * cfg.gpu_op_latency_s / max(
                1, min(n, cfg.gpu_parallel_lanes)
            )
            elapsed = cfg.gpu_kernel_launch_s + max(
                nbytes_total / cfg.gpu_hbm_bw, compute
            )
            self.machine.clock.advance(elapsed)
            return elapsed
        # Warp-granular coalescing + delivery.
        warp = cfg.gpu_warp_size
        n_warps = (n + warp - 1) // warp
        total_tx = 0
        media = 0.0
        times = None
        if item_bytes > 0:
            # Batched delivery: merge every warp's segments in one numpy
            # pass and hand the machine all the per-warp arrivals at once.
            # Event order, per-epoch persistence frontiers, and every count
            # match the per-warp loop below; the loop remains only for the
            # routes that cannot batch (DDIO-on installs, adaptive routing).
            group_ids = np.arange(n, dtype=np.int64) // warp
            stride = int(offsets.max()) + item_bytes + 1
            run_s, run_l, run_g = merge_segments_grouped(
                offsets, lengths, group_ids, stride)
            times = self.machine.io_write_arrival_groups(
                region, run_s, run_l, run_g, n_warps)
        if times is not None:
            media = float(times.sum())
            total_tx = self.machine.pcie.transactions_for(run_s, run_l)
        else:
            for w in range(n_warps):
                s = offsets[w * warp : (w + 1) * warp]
                l = lengths[w * warp : (w + 1) * warp]
                ms, ml = merge_segments(s, l)
                total_tx += self.machine.pcie.transactions_for(ms, ml)
                media += self.machine.io_write_arrival(region, ms, ml)
        nbytes = n * item_bytes
        self.machine.events.emit(SystemFence(count=fence_rounds * n))
        warps_issuing = min(n_warps, cfg.gpu_max_resident_warps)
        pcie_t = self.machine.pcie.fine_grained_write_time(total_tx, nbytes, warps_issuing)
        waves = max(1, math.ceil(n_warps / cfg.gpu_max_resident_warps))
        fence_chain = fence_rounds * cfg.pcie_rtt_s * waves
        compute = ops_per_item * n * cfg.gpu_op_latency_s / max(1, min(n, cfg.gpu_parallel_lanes))
        elapsed = cfg.gpu_kernel_launch_s + max(pcie_t, fence_chain, media, compute)
        self.machine.clock.advance(elapsed)
        return elapsed

    def compute(self, total_ops: float, active_threads: int | None = None) -> float:
        """Charge a compute-only kernel of ``total_ops`` arithmetic operations.

        Used by workloads whose math runs vectorised on the host for speed
        (DNN training, CFD, stencils): the *function* is computed with
        numpy, the *time* is modelled here as a GPU kernel with the given
        parallelism.  Returns elapsed seconds (also advances the clock).
        """
        cfg = self.config
        self.machine.events.emit(KernelLaunch(kind="compute"))
        lanes = cfg.gpu_parallel_lanes
        if active_threads is not None:
            lanes = max(1, min(active_threads, lanes))
        elapsed = cfg.gpu_kernel_launch_s + total_ops * cfg.gpu_op_latency_s / lanes
        self.machine.clock.advance(elapsed)
        return elapsed

    def store_and_persist_value(self, region: Region, offset: int, value, dtype=np.uint32) -> float:
        """One store + system fence from a single GPU thread.

        Used for tiny metadata persists (transaction flags, checkpoint
        flips) issued outside a kernel's data path.
        """
        dtype = np.dtype(dtype)
        arr = np.asarray(value, dtype=dtype)
        raw = np.frombuffer(arr.tobytes(), dtype=np.uint8)
        region.write_bytes(offset, raw)
        media = self.machine.io_write_arrival(region, [offset], [len(raw)])
        self.machine.events.emit(SystemFence())
        self.machine.events.emit(PcieWrite(nbytes=len(raw), transactions=1))
        elapsed = self.machine.config.pcie_rtt_s + media
        self.machine.clock.advance(elapsed)
        return elapsed

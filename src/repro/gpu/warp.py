"""The warp-vectorized execution lane of the simulated GPU.

The scalar lane of :meth:`~repro.gpu.device.Gpu.launch` interprets a kernel
one Python thread at a time - faithful, and the reference semantics for
crash injection, but slow: a 16K-thread launch pays ~10 Python calls per
simulated load/store.  This module adds a second lane that executes one
**warp per call**: a :class:`WarpContext` exposes the same primitives as
:class:`~repro.gpu.kernel.ThreadContext` but over numpy arrays of per-lane
offsets and values, with explicit active-lane subsets for divergence.

Equivalence is by construction, not by re-modelling:

* vectorized stores append *array batches* to the same per-warp
  :class:`~repro.gpu.kernel._WarpDrainBuffer` the scalar lane fills, keyed
  by the same per-lane fence rounds, and drain through the unchanged
  ``_BlockEngine._deliver`` path - so coalesced segments, PCIe transaction
  counts, Optane epochs and every event-bus emission come out identical
  (``merge_segments`` sorts, so intra-round store order cannot matter);
* metering increments the same :class:`~repro.gpu.kernel.LaunchAccounting`
  counters by the same amounts (one op per load/store *per lane*, etc.).

Kernels opt in by attaching a warp-level implementation to the scalar
callable with :func:`vectorized_for`; the scalar body remains the reference
(and the only lane used under crash injection, where per-thread interleaving
is the whole point).  The parity suite in ``tests/gpu/test_warp_parity.py``
holds the two lanes bit-identical on every converted workload.
"""

from __future__ import annotations

import os
from contextlib import contextmanager

import numpy as np

from ..sim import bulk
from ..sim.memory import MemKind, Region
from .hierarchy import Dim3
from .kernel import _IMPLICIT_ROUND, _WarpDrainBuffer

#: Module switch: when True, ``Gpu.launch`` ignores registered warp
#: implementations and every kernel runs thread-at-a-time.  Settable for a
#: whole process via the ``REPRO_SCALAR_LANE`` environment variable, or
#: scoped with :func:`scalar_lane` (the parity tests' reference runs).
_scalar_only = os.environ.get("REPRO_SCALAR_LANE", "") not in ("", "0")

#: Cached ``np.arange`` vectors for gather/scatter index construction.
_SPANS: dict[int, np.ndarray] = {}


def vectorized_for(scalar_kernel):
    """Decorator registering a warp-level implementation of ``scalar_kernel``.

    The warp implementation is called once per warp as ``fn(wctx, *args)``
    with the same extra arguments as the scalar kernel; if it is a generator
    function, each ``yield`` is the block-wide barrier, mirroring the scalar
    convention.  The scalar callable stays the reference semantics - it runs
    whenever a crash injector is armed or the scalar lane is forced.
    """

    def register(warp_fn):
        scalar_kernel.__warp_impl__ = warp_fn
        warp_fn.__scalar_impl__ = scalar_kernel
        return warp_fn

    return register


def resolve_warp_impl(kernel):
    """The warp implementation ``Gpu.launch`` should use, or ``None``."""
    if _scalar_only:
        return None
    return getattr(kernel, "__warp_impl__", None)


@contextmanager
def scalar_lane():
    """Force the thread-at-a-time lane within the block (parity reference)."""
    global _scalar_only
    prev = _scalar_only
    _scalar_only = True
    try:
        yield
    finally:
        _scalar_only = prev


def _span(nbytes: int) -> np.ndarray:
    arange = _SPANS.get(nbytes)
    if arange is None:
        arange = np.arange(nbytes, dtype=np.int64)
        arange.setflags(write=False)  # shared across every caller
        _SPANS[nbytes] = arange
    return arange


#: Cached constant per-lane length vectors (read-only: they are shared
#: across every pending-store batch with the same shape).
_CONST_LENGTHS: dict[tuple[int, int], np.ndarray] = {}


def _const_lengths(k: int, nbytes: int) -> np.ndarray:
    arr = _CONST_LENGTHS.get((k, nbytes))
    if arr is None:
        arr = np.full(k, nbytes, dtype=np.int64)
        arr.setflags(write=False)
        _CONST_LENGTHS[(k, nbytes)] = arr
    return arr


class WarpContext:
    """The device-side view of one warp (all lanes at once).

    Per-lane arguments (``offsets``, ``values``) are numpy arrays with one
    entry per *participating lane*; the ``lanes`` parameter names those
    lanes (indices into the warp, an int array or a boolean mask; default:
    every lane).  Divergent kernels pass the active subset explicitly -
    the simulated accounting charges only participating lanes, exactly as
    the scalar lane charges only threads that execute the operation.
    """

    __slots__ = (
        "shared", "block_flat", "warp_global", "warp_in_block", "n",
        "lanes", "thread_flats", "global_ids", "_block_dim", "_grid_dim",
        "_engine", "_rounds", "_round0", "_pending",
    )

    def __init__(self, grid: Dim3, block: Dim3, block_flat: int, w0: int,
                 count: int, warp_size: int, shared, engine) -> None:
        self.shared = shared
        self.block_flat = block_flat
        warps_per_block = (block.count + warp_size - 1) // warp_size
        self.warp_in_block = w0 // warp_size
        self.warp_global = block_flat * warps_per_block + self.warp_in_block
        self.n = count
        self.lanes = _span(count)  # shared read-only arange
        self.thread_flats = w0 + self.lanes
        self.global_ids = block_flat * block.count + self.thread_flats
        self._block_dim = block.count
        self._grid_dim = grid.count
        self._engine = engine
        #: Per-lane fence-round counters (the scalar lane's ``ctx._round``).
        #: Kept as one scalar (``_round0``) while every lane agrees - the
        #: convergent common case - and materialised per-lane only once a
        #: divergent fence splits the warp.
        self._rounds = None
        self._round0 = 0
        #: Vector store batches awaiting a fence:
        #: (region, starts, lengths, lane indices), one entry per store op.
        self._pending: list[tuple[Region, np.ndarray, np.ndarray, np.ndarray]] = []

    # -- identity helpers -------------------------------------------------

    @property
    def block_id(self) -> int:
        return self.block_flat

    @property
    def block_dim(self) -> int:
        return self._block_dim

    @property
    def grid_dim(self) -> int:
        return self._grid_dim

    def _sel(self, lanes) -> np.ndarray:
        if lanes is None:
            return self.lanes
        lanes = np.asarray(lanes)
        if lanes.dtype == np.bool_:
            return np.flatnonzero(lanes)
        return lanes.astype(np.int64, copy=False)

    def active(self, lanes=None) -> np.ndarray:
        """Normalise a lane subset (mask / indices / None) to lane indices."""
        return self._sel(lanes)

    # -- compute ----------------------------------------------------------

    def charge_ops(self, n: int) -> None:
        """Charge ``n`` abstract arithmetic operations (warp-wide total)."""
        self._engine.acct.ops += n

    def charge_serial_time(self, total_seconds: float) -> None:
        acct = self._engine.acct
        if total_seconds > acct.serial_time:
            acct.serial_time = total_seconds

    # -- memory -----------------------------------------------------------

    def _bounds(self, region: Region, offsets: np.ndarray, nbytes: int) -> None:
        if offsets.size == 0:
            return
        lo = int(offsets.min())
        hi = int(offsets.max()) + nbytes
        if lo < 0 or hi > region.size:
            raise IndexError(
                f"warp access [{lo}, {hi}) outside region {region.name!r} "
                f"of size {region.size}"
            )

    def load(self, region: Region, offsets, dtype=np.uint8, count: int = 1,
             lanes=None):
        """Per-lane typed loads: one load of ``count`` elements per lane.

        Returns a ``(k,)`` array (``count == 1``) or ``(k, count)`` array,
        ``k`` being the number of participating lanes.  Accounting matches
        ``k`` scalar :meth:`~repro.gpu.kernel.ThreadContext.load` calls.
        """
        del lanes  # participation is implied by offsets; kept for symmetry
        offsets = np.asarray(offsets, dtype=np.int64)
        k = offsets.size
        dtype = np.dtype(dtype)
        nbytes = dtype.itemsize * count
        self._bounds(region, offsets, nbytes)
        idx = (offsets[:, None] + _span(nbytes)).reshape(-1)
        data = region.visible[idx].view(dtype)
        self._meter_loads(region, k, nbytes)
        if count == 1:
            return data
        return data.reshape(k, count)

    def load_uniform(self, region: Region, offset: int, dtype=np.uint8,
                     count: int = 1, lanes=None):
        """All participating lanes load the *same* address (broadcast read).

        Metered as one scalar load per lane; the value is read once.
        Returns a scalar (``count == 1``) or a copied array.
        """
        k = self._sel(lanes).size
        dtype = np.dtype(dtype)
        nbytes = dtype.itemsize * count
        data = region.read_bytes(offset, nbytes).view(dtype)
        self._meter_loads(region, k, nbytes)
        if count == 1:
            return data[0]
        return data.copy()

    def _meter_loads(self, region: Region, k: int, nbytes_each: int) -> None:
        acct = self._engine.acct
        acct.ops += k
        if region.kind is MemKind.HBM:
            acct.hbm_read_bytes += k * nbytes_each
        else:
            acct.host_read_bytes += k * nbytes_each

    def meter_loads(self, region: Region, k: int, nbytes_each: int) -> None:
        """Account for ``k`` per-lane loads whose values were obtained
        through host-side views (the sequential-hazard escape hatch: a warp
        implementation that must see intra-warp program order reads live
        numpy views and meters here, keeping counters identical)."""
        self._meter_loads(region, k, nbytes_each)

    def _ragged_indices(self, offsets: np.ndarray,
                        nbytes: np.ndarray) -> np.ndarray:
        """Flat byte indices for ragged per-lane segments, lane-major.

        Segment ``j`` contributes ``offsets[j] .. offsets[j]+nbytes[j]-1``;
        concatenation order is lane order, which is thread order - so both
        gathers and scatter conflict resolution see the scalar sequence.
        """
        total = int(nbytes.sum())
        # Segment-start shift per byte, then the shared 0..total-1 ramp:
        # idx = repeat(offsets - (ends - nbytes), nbytes) + iota(total).
        before = np.cumsum(nbytes)
        before -= nbytes
        np.subtract(offsets, before, out=before)
        idx = np.repeat(before, nbytes)
        idx += bulk.iota64(total)
        return idx

    def load_gather(self, region: Region, offsets, counts, dtype=np.uint8,
                    lanes=None):
        """Ragged per-lane loads: lane ``j`` loads ``counts[j]`` elements.

        The irregular-kernel gather primitive (BFS neighbour walks, hash
        probes): each participating lane reads a *different-sized* run of
        consecutive elements.  Returns one flat array - the lane-major
        concatenation of all runs, exactly the order scalar threads would
        produce.  Accounting matches ``k`` scalar vector loads; callers
        pass only lanes that actually load (``counts`` all positive), as
        the scalar body skips the load entirely for empty runs.
        """
        del lanes  # participation is implied by offsets; kept for symmetry
        offsets = np.asarray(offsets, dtype=np.int64)
        counts = np.asarray(counts, dtype=np.int64)
        k = offsets.size
        dtype = np.dtype(dtype)
        nbytes = counts * dtype.itemsize
        if k == 0:
            return np.empty(0, dtype=dtype)
        lo = int(offsets.min())
        hi = int((offsets + nbytes).max())
        if lo < 0 or hi > region.size:
            raise IndexError(
                f"warp gather [{lo}, {hi}) outside region {region.name!r} "
                f"of size {region.size}"
            )
        idx = self._ragged_indices(offsets, nbytes)
        data = region.visible[idx].view(dtype)
        acct = self._engine.acct
        acct.ops += k
        total = int(nbytes.sum())
        if region.kind is MemKind.HBM:
            acct.hbm_read_bytes += total
        else:
            acct.host_read_bytes += total
        return data

    def store_scatter(self, region: Region, offsets, values, counts,
                      dtype=np.uint8, lanes=None) -> None:
        """Ragged per-lane stores: lane ``j`` stores ``counts[j]`` elements.

        The scatter twin of :meth:`load_gather`: ``values`` is the flat
        lane-major concatenation of every lane's run.  Visible immediately;
        host stores join ``_pending`` with one segment per lane, so each
        lane's fence round drains exactly its own bytes through the shared
        coalescing path.  Overlapping runs resolve highest-lane-wins,
        matching scalar thread order.
        """
        sel = self._sel(lanes)
        offsets = np.asarray(offsets, dtype=np.int64)
        counts = np.asarray(counts, dtype=np.int64)
        k = offsets.size
        if k == 0:
            return
        dtype = np.dtype(dtype)
        nbytes = counts * dtype.itemsize
        lo = int(offsets.min())
        hi = int((offsets + nbytes).max())
        if lo < 0 or hi > region.size:
            raise IndexError(
                f"warp scatter [{lo}, {hi}) outside region {region.name!r} "
                f"of size {region.size}"
            )
        arr = np.ascontiguousarray(np.asarray(values, dtype=dtype))
        raw = arr.reshape(-1).view(np.uint8)
        if raw.size != int(nbytes.sum()):
            raise ValueError(
                f"scatter values supply {raw.size} bytes for segments "
                f"totalling {int(nbytes.sum())}"
            )
        idx = self._ragged_indices(offsets, nbytes)
        region.visible[idx] = raw
        acct = self._engine.acct
        acct.ops += k
        if region.kind is MemKind.HBM:
            acct.hbm_write_bytes += raw.size
        else:
            self._pending.append((region, offsets, nbytes, sel))

    def store(self, region: Region, offsets, values, dtype=np.uint8,
              lanes=None, coalesced: bool = False) -> None:
        """Per-lane typed stores; visible immediately, persistence on fence.

        ``values`` is ``(k,)`` (one element per lane), ``(k, m)`` (a vector
        per lane) or a scalar to broadcast.  Overlapping per-lane offsets
        resolve highest-lane-wins, matching scalar thread order.

        ``coalesced=True`` asserts the offsets form one ascending densely
        packed run (lane ``j`` at ``offsets[0] + j * itemsize``), skipping
        the per-element detection scan; the end points are still checked.
        """
        sel = self._sel(lanes)
        offsets = np.asarray(offsets, dtype=np.int64)
        k = offsets.size
        dtype = np.dtype(dtype)
        arr = np.asarray(values, dtype=dtype)
        if arr.ndim == 0:
            arr = np.broadcast_to(arr, (k,))
        raw = np.ascontiguousarray(arr).view(np.uint8).reshape(k, -1)
        nbytes = raw.shape[1]
        lo = int(offsets[0]) if k else 0
        packed = k > 1 and int(offsets[-1]) - lo == (k - 1) * nbytes
        if coalesced and not packed:
            raise ValueError("store(coalesced=True) offsets are not one "
                             "densely packed ascending run")
        if packed and (coalesced or
                       (offsets[1:] - offsets[:-1] == nbytes).all()):
            # Coalesced warp store (ascending, densely packed): one slice
            # assignment instead of a fancy-indexed scatter, and O(1)
            # bounds from the end points.
            hi = lo + k * nbytes
            if lo < 0 or hi > region.size:
                self._bounds(region, offsets, nbytes)
            region.visible[lo:hi] = raw.reshape(-1)
        else:
            self._bounds(region, offsets, nbytes)
            idx = (offsets[:, None] + _span(nbytes)).reshape(-1)
            region.visible[idx] = raw.reshape(-1)
        self.record_store(region, offsets, nbytes, sel)

    def record_store(self, region: Region, offsets: np.ndarray,
                     nbytes_each: int, lanes: np.ndarray) -> None:
        """Meter per-lane stores whose bytes were already placed in the
        visible image (via :meth:`store` or live host-side views)."""
        k = offsets.size
        acct = self._engine.acct
        acct.ops += k
        if region.kind is MemKind.HBM:
            acct.hbm_write_bytes += k * nbytes_each
        else:
            self._pending.append((
                region,
                np.asarray(offsets, dtype=np.int64),
                _const_lengths(k, nbytes_each),
                lanes,
            ))

    # -- atomics (sequential per-lane semantics, vector metering) ----------

    def _atomic(self, region: Region, offsets, values, dtype, fn, lanes=None):
        sel = self._sel(lanes)
        offsets = np.asarray(offsets, dtype=np.int64)
        dtype = np.dtype(dtype)
        k = offsets.size
        values = np.broadcast_to(np.asarray(values, dtype=dtype), (k,))
        old = np.empty(k, dtype=dtype)
        visible = region.visible
        nb = dtype.itemsize
        self._bounds(region, offsets, nb)
        # Lane order IS thread order: colliding offsets chain exactly as the
        # scalar lane's sequential read-modify-writes do.
        for j in range(k):
            off = int(offsets[j])
            cur = visible[off:off + nb].view(dtype)[0]
            old[j] = cur
            new = fn(cur, values[j])
            if new is not None:
                visible[off:off + nb] = np.asarray(new, dtype=dtype).reshape(1).view(np.uint8)
        acct = self._engine.acct
        acct.ops += 4 * k
        if region.kind is MemKind.HBM:
            acct.hbm_read_bytes += k * nb
            acct.hbm_write_bytes += k * nb
        else:
            acct.host_read_bytes += k * nb
            self._pending.append((
                region, offsets, np.full(k, nb, dtype=np.int64), sel,
            ))
        return old

    def atomic_add(self, region: Region, offsets, values, dtype=np.int64,
                   lanes=None):
        """Per-lane atomic fetch-and-add; returns the previous values."""
        return self._atomic(region, offsets, values, dtype,
                            lambda cur, v: cur + v, lanes)

    def atomic_max(self, region: Region, offsets, values, dtype=np.int64,
                   lanes=None):
        """Per-lane atomic max; returns the previous values."""
        return self._atomic(region, offsets, values, dtype,
                            lambda cur, v: max(cur, v), lanes)

    def atomic_cas(self, region: Region, offsets, expected, desired,
                   dtype=np.int64, lanes=None):
        """Per-lane atomic compare-and-swap; returns the previous values."""
        dtype = np.dtype(dtype)
        k = np.asarray(offsets).size
        expected = np.broadcast_to(np.asarray(expected, dtype=dtype), (k,))
        desired = np.broadcast_to(np.asarray(desired, dtype=dtype), (k,))
        state = {"j": 0}

        def swap(cur, _v):
            j = state["j"]
            state["j"] = j + 1
            if cur == expected[j]:
                return desired[j]
            return None

        return self._atomic(region, offsets, desired, dtype, swap, lanes)

    # -- fences -----------------------------------------------------------

    def persist(self, lanes=None) -> None:
        """System-scope fence for the participating lanes.

        Each participating lane counts one fence and advances its private
        round; pending stores belonging to those lanes move into the warp's
        drain buffer under each lane's (new) round number - precisely the
        scalar lane's per-thread ``fence``, batched.
        """
        sel = self._sel(lanes)
        k = sel.size
        if k == 0:
            return
        eng = self._engine
        eng.acct.fences += k
        eng._fence_count += k
        if eng.policy == "relaxed":
            # Mirror of the scalar engine's relaxed fence: no ordering, no
            # round; pending stores ride to the implicit round at retire.
            return
        if eng.policy == "epoch":
            self._persist_epoch(sel)
            return
        full = k == self.n
        if full and self._rounds is None:
            # Whole-warp fence with lane-uniform rounds (the overwhelmingly
            # common convergent case): pure scalar bookkeeping - every
            # pending store drains under the one shared round.
            self._round0 += 1
            top = self._round0
            warp = self.warp_global
            if top > eng._warp_rounds.get(warp, 0):
                eng._warp_rounds[warp] = top
            if not self._pending:
                return
            buf = eng._buffers.setdefault(warp, _WarpDrainBuffer())
            for region, starts, lengths, _lsel in self._pending:
                buf.add_arrays(top, region, starts, lengths)
            self._pending = []
            eng._warps_with_writes.add(warp)
            return
        if self._rounds is None:
            self._rounds = np.full(self.n, self._round0, dtype=np.int64)
        rounds = self._rounds
        if full:
            rounds += 1
            top = int(rounds.max())
        else:
            rounds[sel] += 1
            top = int(rounds[sel].max())
        warp = self.warp_global
        if top > eng._warp_rounds.get(warp, 0):
            eng._warp_rounds[warp] = top
        if not self._pending:
            return
        if full:
            # Whole-warp fence: every pending store drains, no lane
            # masking needed (rounds may differ after earlier divergence).
            buf = eng._buffers.setdefault(warp, _WarpDrainBuffer())
            for region, starts, lengths, lsel in self._pending:
                d_rounds = rounds[lsel]
                r0 = int(d_rounds[0])
                if d_rounds.size == 1 or (d_rounds == r0).all():
                    buf.add_arrays(r0, region, starts, lengths)
                else:
                    for r in np.unique(d_rounds).tolist():
                        sub = d_rounds == r
                        buf.add_arrays(int(r), region, starts[sub], lengths[sub])
            self._pending = []
            eng._warps_with_writes.add(warp)
            return
        fencing = np.zeros(self.n, dtype=bool)
        fencing[sel] = True
        buf = None
        still = []
        for region, starts, lengths, lsel in self._pending:
            drain = fencing[lsel]
            if not drain.any():
                still.append((region, starts, lengths, lsel))
                continue
            if buf is None:
                buf = eng._buffers.setdefault(warp, _WarpDrainBuffer())
            d_rounds = rounds[lsel[drain]]
            d_starts = starts[drain]
            d_lengths = lengths[drain]
            r0 = int(d_rounds[0])
            if d_rounds.size == 1 or (d_rounds == r0).all():
                buf.add_arrays(r0, region, d_starts, d_lengths)
            else:
                for r in np.unique(d_rounds).tolist():
                    sub = d_rounds == r
                    buf.add_arrays(int(r), region, d_starts[sub], d_lengths[sub])
            if not drain.all():
                keep = ~drain
                still.append((region, starts[keep], lengths[keep], lsel[keep]))
        self._pending = still
        if buf is not None:
            eng._warps_with_writes.add(warp)

    def _persist_epoch(self, sel) -> None:
        """Epoch-policy fence: drain fencing lanes under the open epoch.

        The warp-lane mirror of ``_BlockEngine.fence``'s epoch branch: all
        fences within one epoch share one drain round (the epoch ordinal),
        and the warp's round count advances once per epoch it fences in.
        """
        eng = self._engine
        warp = self.warp_global
        if eng._warp_epoch_seen.get(warp) != eng._epoch:
            eng._warp_epoch_seen[warp] = eng._epoch
            eng._warp_rounds[warp] = eng._warp_rounds.get(warp, 0) + 1
        eng._epoch_dirty = True
        if not self._pending:
            return
        fencing = np.zeros(self.n, dtype=bool)
        fencing[sel] = True
        buf = None
        still = []
        for region, starts, lengths, lsel in self._pending:
            drain = fencing[lsel]
            if not drain.any():
                still.append((region, starts, lengths, lsel))
                continue
            if buf is None:
                buf = eng._buffers.setdefault(warp, _WarpDrainBuffer())
            buf.add_arrays(eng._epoch, region, starts[drain], lengths[drain])
            if not drain.all():
                keep = ~drain
                still.append((region, starts[keep], lengths[keep], lsel[keep]))
        self._pending = still
        if buf is not None:
            eng._warps_with_writes.add(warp)

    def threadfence_system(self, lanes=None) -> None:
        """CUDA-spelled alias of :meth:`persist`."""
        self.persist(lanes)

    def threadfence(self, lanes=None) -> None:
        """Device-scope fences: visibility only, one op per lane."""
        self._engine.acct.ops += self._sel(lanes).size

    def threadfence_block(self, lanes=None) -> None:
        self._engine.acct.ops += self._sel(lanes).size

    # -- lifecycle ---------------------------------------------------------

    def _retire(self) -> None:
        """Warp retirement: unfenced stores drain at the implicit round."""
        if not self._pending:
            return
        eng = self._engine
        buf = eng._buffers.setdefault(self.warp_global, _WarpDrainBuffer())
        for region, starts, lengths, _lsel in self._pending:
            buf.add_arrays(_IMPLICIT_ROUND, region, starts, lengths)
        self._pending.clear()
        eng._warps_with_writes.add(self.warp_global)

"""Typed array views over simulated memory regions.

Workload kernels overwhelmingly address memory as typed arrays; a
:class:`DeviceArray` binds (region, dtype, offset, count) and offers both
*metered* element access from inside kernels (through a
:class:`~repro.gpu.kernel.ThreadContext`) and *unmetered* numpy views for
host-side setup and test verification.
"""

from __future__ import annotations

import numpy as np

from ..sim.memory import Region
from .kernel import ThreadContext


class DeviceArray:
    """A typed window into a region, usable from kernels and host code."""

    def __init__(self, region: Region, dtype, offset: int = 0, count: int | None = None) -> None:
        self.region = region
        self.dtype = np.dtype(dtype)
        self.offset = offset
        max_count = (region.size - offset) // self.dtype.itemsize
        self.count = max_count if count is None else count
        if self.count < 0 or self.count > max_count:
            raise ValueError(
                f"count {count} does not fit region {region.name!r} at offset {offset}"
            )

    # -- layout ----------------------------------------------------------

    def byte_offset(self, index: int) -> int:
        """Byte address within the region of element ``index``."""
        if index < 0 or index >= self.count:
            raise IndexError(f"index {index} out of range [0, {self.count})")
        return self.offset + index * self.dtype.itemsize

    @property
    def nbytes(self) -> int:
        return self.count * self.dtype.itemsize

    def __len__(self) -> int:
        return self.count

    # -- metered (in-kernel) access ---------------------------------------

    def read(self, ctx: ThreadContext, index: int):
        """Load one element from inside a kernel."""
        return ctx.load(self.region, self.byte_offset(index), self.dtype)

    def write(self, ctx: ThreadContext, index: int, value) -> None:
        """Store one element from inside a kernel."""
        ctx.store(self.region, self.byte_offset(index), value, self.dtype)

    def read_vec(self, ctx: ThreadContext, index: int, n: int) -> np.ndarray:
        """Load ``n`` consecutive elements."""
        return ctx.load(self.region, self.byte_offset(index), self.dtype, count=n)

    def write_vec(self, ctx: ThreadContext, index: int, values) -> None:
        """Store consecutive elements starting at ``index``."""
        values = np.asarray(values, dtype=self.dtype)
        if index + values.size > self.count:
            raise IndexError("vector store overruns array")
        ctx.store(self.region, self.byte_offset(index), values, self.dtype)

    def atomic_add(self, ctx: ThreadContext, index: int, value):
        return ctx.atomic_add(self.region, self.byte_offset(index), value, self.dtype)

    def atomic_cas(self, ctx: ThreadContext, index: int, expected, desired):
        return ctx.atomic_cas(self.region, self.byte_offset(index), expected, desired, self.dtype)

    def atomic_max(self, ctx: ThreadContext, index: int, value):
        return ctx.atomic_max(self.region, self.byte_offset(index), value, self.dtype)

    # -- unmetered host-side access ----------------------------------------

    @property
    def np(self) -> np.ndarray:
        """Unmetered numpy view of the visible image (setup/verification)."""
        return self.region.view(self.dtype, self.offset, self.count)

    @property
    def np_persisted(self) -> np.ndarray:
        """Unmetered view of the persisted image (PM regions only)."""
        return self.region.persisted_view(self.dtype, self.offset, self.count)

"""Typed array views over simulated memory regions.

Workload kernels overwhelmingly address memory as typed arrays; a
:class:`DeviceArray` binds (region, dtype, offset, count) and offers both
*metered* element access from inside kernels (through a
:class:`~repro.gpu.kernel.ThreadContext`) and *unmetered* numpy views for
host-side setup and test verification.
"""

from __future__ import annotations

import numpy as np

from ..sim.memory import Region
from .kernel import ThreadContext


class DeviceArray:
    """A typed window into a region, usable from kernels and host code."""

    def __init__(self, region: Region, dtype, offset: int = 0, count: int | None = None) -> None:
        self.region = region
        self.dtype = np.dtype(dtype)
        self.offset = offset
        max_count = (region.size - offset) // self.dtype.itemsize
        self.count = max_count if count is None else count
        if self.count < 0 or self.count > max_count:
            raise ValueError(
                f"count {count} does not fit region {region.name!r} at offset {offset}"
            )

    # -- layout ----------------------------------------------------------

    def byte_offset(self, index: int) -> int:
        """Byte address within the region of element ``index``."""
        if index < 0 or index >= self.count:
            raise IndexError(f"index {index} out of range [0, {self.count})")
        return self.offset + index * self.dtype.itemsize

    @property
    def nbytes(self) -> int:
        return self.count * self.dtype.itemsize

    def __len__(self) -> int:
        return self.count

    # -- metered (in-kernel) access ---------------------------------------

    def read(self, ctx: ThreadContext, index: int):
        """Load one element from inside a kernel."""
        return ctx.load(self.region, self.byte_offset(index), self.dtype)

    def write(self, ctx: ThreadContext, index: int, value) -> None:
        """Store one element from inside a kernel."""
        ctx.store(self.region, self.byte_offset(index), value, self.dtype)

    def read_vec(self, ctx: ThreadContext, index: int, n: int) -> np.ndarray:
        """Load ``n`` consecutive elements."""
        return ctx.load(self.region, self.byte_offset(index), self.dtype, count=n)

    def write_vec(self, ctx: ThreadContext, index: int, values) -> None:
        """Store consecutive elements starting at ``index``."""
        values = np.asarray(values, dtype=self.dtype)
        if index + values.size > self.count:
            raise IndexError("vector store overruns array")
        ctx.store(self.region, self.byte_offset(index), values, self.dtype)

    # -- metered warp-level (vectorized lane) access ------------------------

    def _byte_offsets(self, indices) -> np.ndarray:
        indices = np.asarray(indices, dtype=np.int64)
        if indices.size and (int(indices.min()) < 0
                             or int(indices.max()) >= self.count):
            raise IndexError(f"warp indices out of range [0, {self.count})")
        # One fresh array (drain buffers may retain it), built in place.
        out = indices * self.dtype.itemsize
        out += self.offset
        return out

    def read_uniform_warp(self, wctx, index: int, lanes=None):
        """All participating lanes load the same element (broadcast read)."""
        return wctx.load_uniform(self.region, self.byte_offset(index),
                                 self.dtype, lanes=lanes)

    def read_warp(self, wctx, indices, lanes=None) -> np.ndarray:
        """Per-lane loads of one element each (vectorized lane)."""
        return wctx.load(self.region, self._byte_offsets(indices), self.dtype,
                         lanes=lanes)

    def read_vec_warp(self, wctx, indices, n: int, lanes=None) -> np.ndarray:
        """Per-lane loads of ``n`` consecutive elements each."""
        return wctx.load(self.region, self._byte_offsets(indices), self.dtype,
                         count=n, lanes=lanes)

    def write_warp(self, wctx, indices, values, lanes=None) -> None:
        """Per-lane stores of one element each (vectorized lane)."""
        wctx.store(self.region, self._byte_offsets(indices), values,
                   self.dtype, lanes=lanes)

    def _byte_offsets_ragged(self, indices, counts) -> tuple[np.ndarray, np.ndarray]:
        indices = np.asarray(indices, dtype=np.int64)
        counts = np.asarray(counts, dtype=np.int64)
        if indices.size and (int(indices.min()) < 0
                             or int((indices + counts).max()) > self.count):
            raise IndexError(f"warp segments out of range [0, {self.count})")
        out = indices * self.dtype.itemsize
        out += self.offset
        return out, counts

    def read_gather_warp(self, wctx, indices, counts, lanes=None) -> np.ndarray:
        """Ragged per-lane loads: lane ``j`` reads ``counts[j]`` elements
        starting at ``indices[j]``; returns their flat concatenation."""
        offsets, counts = self._byte_offsets_ragged(indices, counts)
        return wctx.load_gather(self.region, offsets, counts, self.dtype,
                                lanes=lanes)

    def write_scatter_warp(self, wctx, indices, values, counts,
                           lanes=None) -> None:
        """Ragged per-lane stores: lane ``j`` writes ``counts[j]`` elements
        starting at ``indices[j]``; ``values`` is the flat concatenation."""
        offsets, counts = self._byte_offsets_ragged(indices, counts)
        wctx.store_scatter(self.region, offsets, values, counts, self.dtype,
                           lanes=lanes)

    def write_vec_warp(self, wctx, indices, values, lanes=None) -> None:
        """Per-lane stores of one fixed-width vector each: ``values`` is
        ``(k, n)``; lane ``j`` writes row ``j`` at ``indices[j]``."""
        values = np.asarray(values, dtype=self.dtype)
        n = values.shape[-1] if values.ndim > 1 else 1
        indices = np.asarray(indices, dtype=np.int64)
        if indices.size and (int(indices.min()) < 0
                             or int(indices.max()) + n > self.count):
            raise IndexError("warp vector store overruns array")
        wctx.store(self.region,
                   self.offset + indices * self.dtype.itemsize,
                   values, self.dtype, lanes=lanes)

    def atomic_add(self, ctx: ThreadContext, index: int, value):
        return ctx.atomic_add(self.region, self.byte_offset(index), value, self.dtype)

    def atomic_cas(self, ctx: ThreadContext, index: int, expected, desired):
        return ctx.atomic_cas(self.region, self.byte_offset(index), expected, desired, self.dtype)

    def atomic_max(self, ctx: ThreadContext, index: int, value):
        return ctx.atomic_max(self.region, self.byte_offset(index), value, self.dtype)

    # -- unmetered host-side access ----------------------------------------

    @property
    def np(self) -> np.ndarray:
        """Unmetered numpy view of the visible image (setup/verification)."""
        return self.region.view(self.dtype, self.offset, self.count)

    @property
    def np_persisted(self) -> np.ndarray:
        """Unmetered view of the persisted image (PM regions only)."""
        return self.region.persisted_view(self.dtype, self.offset, self.count)

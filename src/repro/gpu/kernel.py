"""Per-thread kernel contexts and per-launch accounting.

Kernels are plain Python callables invoked once per simulated GPU thread
with a :class:`ThreadContext` as first argument::

    def set_kernel(ctx, kvs, batch):
        i = ctx.tid.global_id
        ...
        ctx.store(kvs.region, offset, value, dtype=np.uint64)
        ctx.persist()            # __threadfence_system()

A kernel may instead be a *generator function*; each bare ``yield`` is a
block-wide barrier (``__syncthreads()``), which is how the prefix-sum kernel
of Fig. 8 expresses its two persist phases.

Stores to **host** memory (PM or DRAM mapped through UVA) are buffered per
thread and drain on :meth:`ThreadContext.persist` - the system-scope fence -
at which point they join their warp's *drain batch*.  Batches are delivered
to the machine at warp (or barrier) boundaries so that the 32 lockstep
threads of a warp coalesce: adjacent 4 B stores merge into 128 B PCIe
transactions and a single Optane drain epoch, exactly the effect HCL is
designed to exploit.  Stores to HBM are immediate and only metered.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..sim.machine import Machine
from ..sim.memory import MemKind, Region
from ..sim.optane import merge_segments
from ..sim.stats import MachineStats
from .hierarchy import Dim3, ThreadId


class GpuFault(Exception):
    """A kernel performed an illegal operation (bad address, bad region)."""


#: Round key for stores that were never explicitly fenced; they drain at
#: warp retirement ("eventual" durability) without counting as fence rounds.
_IMPLICIT_ROUND = 1 << 30


@dataclass
class LaunchAccounting:
    """Traffic and compute tallies for one kernel launch."""

    ops: int = 0
    hbm_read_bytes: int = 0
    hbm_write_bytes: int = 0
    host_read_bytes: int = 0
    host_write_bytes: int = 0
    host_write_tx: int = 0
    pm_media_time: float = 0.0
    fences: int = 0
    #: max persist rounds observed in any single warp (fence critical path)
    max_warp_rounds: int = 0
    #: warps that issued at least one host write (concurrency estimate)
    warps_with_host_writes: int = 0
    #: lower bound on elapsed time imposed by software serialisation
    #: (e.g. lock-ordered inserts into a conventional log partition)
    serial_time: float = 0.0


@dataclass
class KernelResult:
    """Outcome of one kernel launch."""

    elapsed: float
    accounting: LaunchAccounting
    stats_delta: MachineStats
    threads: int
    warps: int
    crashed: bool = False
    #: Which execution lane ran the kernel: "scalar" (thread-at-a-time) or
    #: "warp" (the vectorized lane of :mod:`repro.gpu.warp`).
    lane: str = "scalar"


@dataclass
class _WarpDrainBuffer:
    """Pending persist batches for one warp, keyed by fence round.

    Stores accumulate as plain per-region lists; they are converted to
    arrays and merged into coalesced segments exactly once, when the round
    drains (``_BlockEngine._deliver``).  The scalar lane appends python
    ints (:meth:`add` / :meth:`add_many`); the warp lane appends whole
    numpy batches (:meth:`add_arrays`) - a round's lists hold one kind or
    the other, never a mix, and ``_deliver`` normalises either.

    Rounds key their per-region buckets by the monotonic ``Region.token``,
    never ``id(region)``: CPython recycles the id of a freed region for the
    next same-type allocation, so a free+realloc between stores of one
    kernel would silently merge two distinct regions' segments (the same
    aliasing class fixed for Optane stream identity and LLC dirty lines).
    """

    rounds: dict[int, dict[int, tuple[Region, list[int], list[int]]]] = field(
        default_factory=dict
    )

    def add(self, round_no: int, region: Region, start: int, length: int) -> None:
        per_region = self.rounds.setdefault(round_no, {})
        key = region.token
        if key not in per_region:
            per_region[key] = (region, [], [])
        _, starts, lengths = per_region[key]
        starts.append(start)
        lengths.append(length)

    def add_many(self, round_no: int, pending: list[tuple[Region, int, int]]) -> None:
        """Move a thread's whole pending list into ``round_no`` in one pass."""
        per_region = self.rounds.setdefault(round_no, {})
        get = per_region.get
        for region, start, length in pending:
            key = region.token
            entry = get(key)
            if entry is None:
                per_region[key] = entry = (region, [], [])
                get = per_region.get
            entry[1].append(start)
            entry[2].append(length)

    def add_arrays(self, round_no: int, region: Region, starts: np.ndarray,
                   lengths: np.ndarray) -> None:
        """Append one vectorized store batch (the warp lane's unit)."""
        per_region = self.rounds.setdefault(round_no, {})
        key = region.token
        entry = per_region.get(key)
        if entry is None:
            per_region[key] = entry = (region, [], [])
        entry[1].append(starts)
        entry[2].append(lengths)


class ThreadContext:
    """The device-side view of one GPU thread.

    Exposes CUDA-equivalent primitives: typed loads/stores, atomics, scoped
    fences, and op charging for arithmetic the simulator cannot see.
    """

    __slots__ = ("tid", "shared", "_engine", "_pending", "_round")

    def __init__(self, tid: ThreadId, shared, engine: "_BlockEngine") -> None:
        self.tid = tid
        #: Per-threadblock shared memory (scratchpad); any mutable object.
        self.shared = shared
        self._engine = engine
        #: (region, start, length) stores awaiting a system fence.
        self._pending: list[tuple[Region, int, int]] = []
        self._round = 0

    # -- identity helpers -------------------------------------------------

    @property
    def global_id(self) -> int:
        return self.tid.global_id

    @property
    def block_id(self) -> int:
        return self.tid.block_flat

    @property
    def thread_in_block(self) -> int:
        return self.tid.thread_flat

    @property
    def lane(self) -> int:
        return self.tid.lane

    @property
    def block_dim(self) -> int:
        return self.tid.block_dim.count

    @property
    def grid_dim(self) -> int:
        return self.tid.grid_dim.count

    # -- compute ----------------------------------------------------------

    def charge_ops(self, n: int) -> None:
        """Charge ``n`` abstract arithmetic operations to this kernel."""
        self._engine.acct.ops += n

    def charge_serial_time(self, total_seconds: float) -> None:
        """Raise the launch's serialisation floor to ``total_seconds``.

        Software structures that serialise threads (e.g. a lock-protected
        log partition) cannot be expressed through parallel traffic models;
        they instead declare the accumulated critical-section time of their
        most contended resource, which lower-bounds the kernel's elapsed
        time.
        """
        acct = self._engine.acct
        if total_seconds > acct.serial_time:
            acct.serial_time = total_seconds

    # -- memory -----------------------------------------------------------

    def load(self, region: Region, offset: int, dtype=np.uint8, count: int = 1):
        """Typed load; returns a scalar (count==1) or a copied array."""
        dtype = np.dtype(dtype)
        nbytes = dtype.itemsize * count
        data = region.read_bytes(offset, nbytes).view(dtype)
        self._engine.meter_read(region, nbytes)
        self._engine.acct.ops += 1
        if count == 1:
            return data[0]
        return data.copy()

    def store(self, region: Region, offset: int, value, dtype=np.uint8) -> None:
        """Typed store of a scalar or array.

        Visible immediately (coherent readers see it); persistence of host
        stores requires a subsequent :meth:`persist`.
        """
        arr = np.asarray(value, dtype=np.dtype(dtype))
        # Byte view without the tobytes()/frombuffer round trip; reshape(-1)
        # also lifts 0-d scalars to 1-d so the view is legal.
        raw = np.ascontiguousarray(arr).reshape(-1).view(np.uint8)
        region.write_bytes(offset, raw)
        self._engine.meter_write(self, region, offset, raw.size)
        self._engine.acct.ops += 1

    def _atomic_write(self, region: Region, offset: int, value, dtype) -> None:
        """The write half of an atomic RMW, via the same path as stores."""
        raw = np.asarray(value, dtype=dtype).reshape(-1).view(np.uint8)
        region.write_bytes(offset, raw)

    def atomic_add(self, region: Region, offset: int, value, dtype=np.int64):
        """Atomic fetch-and-add; returns the previous value."""
        dtype = np.dtype(dtype)
        old = dtype.type(region.read_bytes(offset, dtype.itemsize).view(dtype)[0])
        self._atomic_write(region, offset, old + dtype.type(value), dtype)
        self._engine.meter_atomic(self, region, offset, dtype.itemsize)
        return old

    def atomic_cas(self, region: Region, offset: int, expected, desired, dtype=np.int64):
        """Atomic compare-and-swap; returns the previous value."""
        dtype = np.dtype(dtype)
        old = dtype.type(region.read_bytes(offset, dtype.itemsize).view(dtype)[0])
        if old == dtype.type(expected):
            self._atomic_write(region, offset, dtype.type(desired), dtype)
        self._engine.meter_atomic(self, region, offset, dtype.itemsize)
        return old

    def atomic_max(self, region: Region, offset: int, value, dtype=np.int64):
        """Atomic max; returns the previous value."""
        dtype = np.dtype(dtype)
        old = dtype.type(region.read_bytes(offset, dtype.itemsize).view(dtype)[0])
        self._atomic_write(region, offset, max(old, dtype.type(value)), dtype)
        self._engine.meter_atomic(self, region, offset, dtype.itemsize)
        return old

    # -- fences -----------------------------------------------------------

    def persist(self) -> None:
        """System-scope fence: ``__threadfence_system()``.

        Guarantees this thread's prior host-memory stores have reached the
        host memory controllers.  With DDIO disabled (libGPM's persist
        window) the drained stores are durable; with DDIO enabled they stop
        at the volatile LLC - visibility without persistence, the trap GPM
        exists to close.
        """
        self._engine.fence(self)

    def threadfence_system(self) -> None:
        """CUDA-spelled alias of :meth:`persist`."""
        self._engine.fence(self)

    def threadfence(self) -> None:
        """Device-scope fence: orders visibility, guarantees no durability."""
        self._engine.acct.ops += 1

    def threadfence_block(self) -> None:
        self._engine.acct.ops += 1

"""Figure 10: understanding GPM's performance, and the eADR projection.

Four configurations, normalised to CAP-fs (log-scale in the paper):

* **GPM-NDP** (No Direct Persistence): kernels still load/store PM
  directly, but DDIO stays on and the CPU guarantees persistence, as in
  CAP-mm.  GPM beats it by up to ~6x - direct persistence matters beyond
  direct access.
* **GPM**: the full system.
* **GPM-eADR**: projected future platform where reaching the LLC is
  durable - no DDIO disabling, no media wait on the fence path.
* **CAP-eADR**: CAP-mm minus the CPU flushes.
"""

from __future__ import annotations

from ..workloads import Mode
from .results import ExperimentTable
from .runner import modes_matrix, prefetch, run_workload, workload_names


def required_runs():
    """The deduplicated batch of runs this figure consumes."""
    return modes_matrix(Mode.CAP_FS, Mode.GPM_NDP, Mode.GPM, Mode.GPM_EADR,
                        Mode.CAP_EADR)


def figure10() -> ExperimentTable:
    prefetch(required_runs())
    table = ExperimentTable(
        "figure10", "Figure 10: GPM variants and eADR projection (speedup over CAP-fs)",
        ["workload", "gpm_ndp", "gpm", "gpm_eadr", "cap_eadr"],
    )
    for name in workload_names():
        base = run_workload(name, Mode.CAP_FS).elapsed
        table.add(
            name,
            base / run_workload(name, Mode.GPM_NDP).elapsed,
            base / run_workload(name, Mode.GPM).elapsed,
            base / run_workload(name, Mode.GPM_EADR).elapsed,
            base / run_workload(name, Mode.CAP_EADR).elapsed,
        )
    return table


def eadr_summary(table: ExperimentTable | None = None) -> dict:
    """The Fig. 10 headline ratios the paper quotes in the text."""
    table = table or figure10()
    ratios_ndp = []
    ratios_eadr = []
    ratios_vs_cap = []
    for row in table.rows:
        _, ndp, gpm, gpm_eadr, cap_eadr = row
        ratios_ndp.append(gpm / ndp)
        ratios_eadr.append(gpm_eadr / gpm)
        ratios_vs_cap.append(gpm_eadr / cap_eadr)
    n = len(table.rows)
    return {
        "max_gpm_over_ndp": max(ratios_ndp),          # paper: up to 6x
        "max_eadr_over_gpm": max(ratios_eadr),        # paper: up to 13x
        "avg_gpm_eadr_over_cap_eadr": sum(ratios_vs_cap) / n,  # paper: 24x avg
    }


figure10.required_runs = required_runs

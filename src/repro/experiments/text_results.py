"""Section 6.1's in-text quantitative claims.

* Checkpoint-frequency sensitivity: "the DNN training speeds up by 61% and
  40%, when we checkpointed weights and biases after every 10th and 20th
  pass" (GPM total time vs the CAP alternative, at two frequencies), and
  "various workloads' total execution times improved by 19%-122% over
  different checkpointing frequencies".
* The CPU-only database comparison: "GPM sped up gpDB (I) and gpDB (U) by
  3.1x and 6.9x" over an OpenMP port with the same WAL recoverability.
"""

from __future__ import annotations

from ..baselines import CpuDb
from ..system import System
from ..workloads import CfdSolver, DnnTraining, GpDb, Hotspot, Mode
from .results import ExperimentTable
from .runner import RunRequest, prefetch, run_workload


def cpu_only_db_required_runs():
    """The engine-served runs the CPU-only DB comparison consumes."""
    return [RunRequest("gpDB (U)", Mode.GPM)]


def checkpoint_frequency() -> ExperimentTable:
    """Total-time improvement of GPM over CAP-fs at two checkpoint rates."""
    table = ExperimentTable(
        "checkpoint_freq",
        "Checkpoint-frequency sensitivity: total-time improvement of GPM over CAP-fs",
        ["workload", "checkpoint_every", "gpm_total_ms", "capfs_total_ms",
         "improvement_pct"],
    )
    # The paper checkpoints every 10th/20th pass, over runs whose compute
    # dominates; use the same frequencies with enough iterations/timesteps
    # between checkpoints for the paper's compute:checkpoint duty cycle.
    def make(cls):
        if cls is DnnTraining:
            w = cls()
        elif cls is CfdSolver:
            w = cls(steps_per_iteration=40)
        else:
            w = cls(steps_per_iteration=100)
        w.iterations = 20
        return w

    for cls in (DnnTraining, CfdSolver, Hotspot):
        for every in (10, 20):
            gpm = make(cls).run(Mode.GPM, checkpoint_every=every)
            cap = make(cls).run(Mode.CAP_FS, checkpoint_every=every)
            g = gpm.extras["total_time"]
            c = cap.extras["total_time"]
            table.add(cls.name, every, g * 1e3, c * 1e3, 100 * (c / g - 1.0))
    table.notes.append("paper: DNN +61%/+40% at every-10th/20th pass; all "
                       "workloads +19%..+122% across frequencies")
    return table


def cpu_only_db() -> ExperimentTable:
    """GPM vs the OpenMP CPU port of gpDB (same WAL recoverability)."""
    table = ExperimentTable(
        "cpu_db", "gpDB: GPM vs CPU-only (OpenMP) with write-ahead logging",
        ["query", "gpm_ms", "cpu_ms", "speedup", "paper_speedup"],
    )
    prefetch(cpu_only_db_required_runs())
    db = CpuDb(System(), initial_rows=4096)
    # INSERT compares at a larger batch (the paper appends 50M rows; at tiny
    # batches fixed overheads mask the bandwidth gap the paper measures).
    from ..workloads import DbConfig

    big = GpDb("insert", DbConfig(insert_batch=6144, insert_batches=2,
                                  initial_rows=4096))
    gpm_i = big.run(Mode.GPM).elapsed
    cpu_i = db.insert_batch(6144, seed=1) + db.insert_batch(6144, seed=2)
    table.add("INSERT", gpm_i * 1e3, cpu_i * 1e3, cpu_i / gpm_i, 3.1)
    gpm_u = run_workload("gpDB (U)", Mode.GPM).elapsed
    cpu_u = db.update_batch(768, seed=1) + db.update_batch(768, seed=2)
    table.add("UPDATE", gpm_u * 1e3, cpu_u * 1e3, cpu_u / gpm_u, 6.9)
    return table


cpu_only_db.required_runs = cpu_only_db_required_runs

"""The experiment engine: memoised, disk-cached, parallel workload execution.

Several figures slice the same runs (Fig. 9 and Table 4 both need
GPM/CAP-mm results; Fig. 12 needs the GPM windows), so every run is keyed
by ``(workload name, mode, machine configuration)`` and satisfied from, in
order:

1. the **in-process memo** (this module's dictionaries),
2. the **persistent disk cache** (:class:`~repro.experiments.diskcache.
   ResultCache`, enabled by the CLI / :func:`set_disk_cache`) - results
   survive process exit and are shared across concurrent processes,
3. a **fresh deterministic run** - inline, or fanned out over a fork pool
   when :func:`prefetch`/:func:`run_workloads_parallel` is given
   ``jobs > 1``.

Figure/table modules declare the batch of runs they consume via
:func:`RunRequest` lists and call :func:`prefetch` up front, so a single
deduplicated set of runs is executed (in parallel when requested) instead
of ad-hoc ``run_workload`` calls serialising on one core.

Results cross process and cache boundaries as exact JSON payloads (see
:mod:`~repro.experiments.diskcache`): a parallel run is bit-identical to a
sequential one because the simulation is deterministic and the
serialization is lossless.

The cache key includes the active :class:`~repro.sim.config.SystemConfig`
(a frozen, hashable dataclass), so tests or ablations that swap
``repro.sim.config.DEFAULT_CONFIG`` never read results produced under a
different machine.  ``GpufsUnsupported`` outcomes are stored as *reason
markers*, never exception objects, so every cache hit raises a fresh
exception (re-raising one shared instance would mutate its
``__traceback__`` across callers).
"""

from __future__ import annotations

import atexit
import os
import time
from dataclasses import dataclass
from typing import Callable, Iterable

from ..host.gpufs import GpufsUnsupported
from ..sim import config as _config
from ..sim.config import SystemConfig
from ..sim.trace import ProfileSink, ProfileSummary, record_events
from ..workloads import Mode, RunResult, gpmbench_suite
from .diskcache import (
    ResultCache,
    profile_from_record,
    profile_to_record,
    result_from_record,
    result_to_record,
)


def _current_config() -> SystemConfig:
    """The configuration new systems will be built with, read dynamically."""
    return _config.DEFAULT_CONFIG


@dataclass(frozen=True)
class _Unsupported:
    """Memoised marker for a run the mode cannot execute (GPUfs)."""

    reason: str


@dataclass(frozen=True)
class RunRequest:
    """One (workload, mode) run an artefact needs, optionally profiled."""

    workload: str
    mode: Mode
    profiled: bool = False

    @property
    def sort_key(self) -> tuple:
        return (self.workload, self.mode.value, self.profiled)


#: (workload name, mode, config) -> RunResult | _Unsupported
_cache: dict[tuple[str, Mode, SystemConfig], RunResult | _Unsupported] = {}
#: (workload name, mode, config) -> (RunResult, event-derived profile)
_profile_cache: dict[tuple[str, Mode, SystemConfig], tuple[RunResult, ProfileSummary]] = {}

#: Persistent cache shared across processes; ``None`` keeps the engine
#: memory-only (the library default - the CLI opts in).
_disk_cache: ResultCache | None = None
#: Pool width used when ``prefetch`` is not given an explicit ``jobs``.
_default_jobs: int = 1

#: Workloads runnable by name beyond the Fig. 9 lineup (e.g. the
#: Section 4.3 binomial counter-example), registered by their consumers.
_extra_workloads: dict[str, Callable[[], object]] = {}

#: Wall-clock of every fresh (non-cached) run executed since the last
#: :func:`drain_run_timings` - the attribution trail the bench records.
_run_timings: list[dict] = []

#: The engine's persistent fork pool (see :func:`shared_pool`).
_pool = None
_pool_width = 0


# --------------------------------------------------------------------------
# engine configuration
# --------------------------------------------------------------------------


def set_disk_cache(cache: ResultCache | None) -> None:
    """Install (or, with ``None``, disable) the persistent result cache."""
    global _disk_cache
    _disk_cache = cache


def get_disk_cache() -> ResultCache | None:
    return _disk_cache


def set_default_jobs(jobs: int) -> None:
    """Pool width for prefetches that do not pass ``jobs`` explicitly."""
    global _default_jobs
    _default_jobs = max(1, int(jobs))


def get_default_jobs() -> int:
    return _default_jobs


def available_cpus() -> int:
    """CPUs this process may actually run on (affinity-aware).

    Container CPU quotas and taskset masks make ``os.cpu_count()`` a lie;
    the scheduler affinity set is what the fork pool can really use.
    """
    try:
        return len(os.sched_getaffinity(0))
    except (AttributeError, OSError):
        return os.cpu_count() or 1


def effective_jobs(jobs: int) -> int:
    """Clamp a requested pool width to the CPUs actually available.

    The simulation is pure Python compute, so forking more workers than
    cores strictly loses: on a 1-core host the smoke bench's 2-worker cold
    leg ran at 0.90x sequential - all contention and fork overhead, no
    parallelism.  A clamped width of 1 skips the pool entirely.
    """
    return max(1, min(int(jobs), available_cpus()))


def shared_pool(jobs: int):
    """The engine's persistent fork pool, reused across waves and calls.

    Fork-pool startup used to be paid twice per ``run_all`` (once for the
    prefetch wave, once for the table builders) and again on every later
    batch; on the smoke bench that overhead alone pushed the parallel leg
    *slower* than sequential.  Workers never rely on fork-time state: runs
    always execute fresh (:func:`_execute`) and table builders receive the
    run memo and the active config explicitly, so one long-lived pool is
    safe to share.
    """
    global _pool, _pool_width
    jobs = max(2, int(jobs))
    if _pool is not None and _pool_width != jobs:
        shutdown_pool()
    if _pool is None:
        import multiprocessing as mp

        _pool = mp.get_context("fork").Pool(jobs)
        _pool_width = jobs
    return _pool


def shutdown_pool() -> None:
    """Tear down the shared fork pool (no-op when none is live)."""
    global _pool, _pool_width
    if _pool is not None:
        _pool.terminate()
        _pool.join()
        _pool = None
        _pool_width = 0


atexit.register(shutdown_pool)


def drain_run_timings() -> list[dict]:
    """Return (and clear) the per-run wall-clock entries recorded so far."""
    out = list(_run_timings)
    _run_timings.clear()
    return out


def _note_timing(req: RunRequest, payload: dict) -> None:
    wall = payload.get("wall_s")
    if wall is not None:
        _run_timings.append({
            "workload": req.workload, "mode": req.mode.value,
            "persistency": req.mode.persistency_model,
            "profiled": req.profiled, "wall_s": round(float(wall), 3),
        })


def register_workload(name: str, factory: Callable[[], object]) -> None:
    """Make a non-lineup workload runnable (and cacheable) by name."""
    _extra_workloads[name] = factory


def workload_names() -> list[str]:
    return [w.name for w in gpmbench_suite()]


def modes_matrix(*modes: Mode, profiled: bool = False) -> list[RunRequest]:
    """Every lineup workload crossed with the given modes."""
    return [RunRequest(name, mode, profiled)
            for name in workload_names() for mode in modes]


def _fresh(name: str):
    for w in gpmbench_suite():
        if w.name == name:
            return w
    factory = _extra_workloads.get(name)
    if factory is not None:
        return factory()
    raise KeyError(f"unknown workload {name!r}")


# --------------------------------------------------------------------------
# execution and memo plumbing
# --------------------------------------------------------------------------


def adopt_config(config: SystemConfig | None) -> None:
    """Make ``config`` the active machine configuration (``None``: keep).

    Pool tasks ship the caller's config explicitly because the shared fork
    pool outlives the fork point: a worker's inherited ``DEFAULT_CONFIG``
    can predate an ablation's swap.
    """
    if config is not None and config != _config.DEFAULT_CONFIG:
        _config.DEFAULT_CONFIG = config


def _execute(workload: str, mode_value: str, profiled: bool,
             config: SystemConfig | None = None) -> dict:
    """Run one workload fresh; return its serialized payload.

    Module-level and picklable: this is the unit of work the fork pool
    dispatches (the same pattern as ``repro.check.explorer``).  Returning
    payloads rather than live objects keeps the parallel and sequential
    paths on one serialization, so their results cannot diverge.  The
    payload carries the run's wall-clock (``wall_s``) so the bench can
    attribute regressions to individual runs.
    """
    adopt_config(config)
    mode = Mode(mode_value)
    start = time.perf_counter()
    try:
        if profiled:
            sink = ProfileSink()
            with record_events(sink):
                result = _fresh(workload).run(mode)
            return {"result": result_to_record(result),
                    "profile": profile_to_record(sink.summary),
                    "wall_s": time.perf_counter() - start}
        result = _fresh(workload).run(mode)
        return {"result": result_to_record(result),
                "wall_s": time.perf_counter() - start}
    except GpufsUnsupported as exc:
        return {"unsupported": exc.reason,
                "wall_s": time.perf_counter() - start}


def _execute_litmus(test_payload: dict, point_spec: str, mutant: str | None,
                    max_frontiers: int,
                    config: SystemConfig | None = None) -> dict:
    """Run one litmus (test, config-point, mutant) fresh; pool-dispatchable.

    Imported lazily both ways (``repro.check.litmus`` calls
    :func:`run_litmus_batch`, which dispatches back here) to keep the
    check/experiments layers import-cycle-free.
    """
    adopt_config(config)
    from ..check.litmus import execute_point

    return execute_point(test_payload, point_spec, mutant=mutant,
                         max_frontiers=max_frontiers)


def run_litmus_batch(tasks: list[tuple], jobs: int | None = None) -> list[dict]:
    """Satisfy a batch of litmus tasks: disk cache, else (parallel) runs.

    Each task is ``(test_payload, point_spec, mutant, max_frontiers)`` -
    plain JSON-able values, exactly what one :func:`_execute_litmus` call
    takes and what keys the disk cache (so repeated matrix points across
    fuzzing sessions are free).  Misses fan out over the engine's shared
    fork pool with ``chunksize=1``, like workload prefetches.
    """
    config = _current_config()
    results: list[dict | None] = [None] * len(tasks)
    pending: list[int] = []
    for i, task in enumerate(tasks):
        payload = _disk_cache.load_litmus(task, config) if _disk_cache else None
        if payload is not None:
            results[i] = payload
        else:
            pending.append(i)
    jobs = effective_jobs(_default_jobs if jobs is None else int(jobs))
    if jobs > 1 and len(pending) > 1:
        args = [tasks[i] + (config,) for i in pending]
        payloads = shared_pool(jobs).starmap(_execute_litmus, args,
                                             chunksize=1)
    else:
        payloads = [_execute_litmus(*tasks[i], config) for i in pending]
    for i, payload in zip(pending, payloads):
        results[i] = payload
        if _disk_cache is not None:
            _disk_cache.store_litmus(tasks[i], config, payload)
    return results


def _memo_satisfies(req: RunRequest, config: SystemConfig) -> bool:
    key = (req.workload, req.mode, config)
    if req.profiled:
        return key in _profile_cache or isinstance(_cache.get(key), _Unsupported)
    return key in _cache


def _install_payload(req: RunRequest, config: SystemConfig, payload: dict) -> None:
    key = (req.workload, req.mode, config)
    if "unsupported" in payload:
        _cache[key] = _Unsupported(payload["unsupported"])
        return
    result = result_from_record(payload["result"])
    if "profile" in payload:
        _profile_cache[key] = (result, profile_from_record(payload["profile"]))
        _cache.setdefault(key, result)
    else:
        _cache[key] = result


def _obtain(req: RunRequest) -> None:
    """Ensure the memo satisfies ``req`` (disk cache, else a fresh run)."""
    config = _current_config()
    if _memo_satisfies(req, config):
        return
    if _disk_cache is not None:
        payload = _disk_cache.load_run(req.workload, req.mode, req.profiled, config)
        if payload is not None:
            _install_payload(req, config, payload)
            return
    payload = _execute(req.workload, req.mode.value, req.profiled)
    _note_timing(req, payload)
    _install_payload(req, config, payload)
    if _disk_cache is not None:
        _disk_cache.store_run(req.workload, req.mode, req.profiled, config, payload)


def snapshot_memo(requests: Iterable) -> list[tuple]:
    """Serialize the memo entries answering ``requests`` for pool shipment.

    The table-builder wave used to depend on forking *after* the prefetch
    so workers inherited the warm memo; with the shared pool the fork may
    predate the runs, so the memo travels with the task instead.
    """
    config = _current_config()
    out: list[tuple] = []
    for req in _normalize(requests):
        key = (req.workload, req.mode, config)
        if req.profiled and key in _profile_cache:
            result, prof = _profile_cache[key]
            payload = {"result": result_to_record(result),
                       "profile": profile_to_record(prof)}
        elif key in _cache:
            val = _cache[key]
            payload = ({"unsupported": val.reason}
                       if isinstance(val, _Unsupported)
                       else {"result": result_to_record(val)})
        else:
            continue
        out.append((req.workload, req.mode.value, req.profiled, payload))
    return out


def install_memo(entries: list[tuple]) -> None:
    """Install :func:`snapshot_memo` entries into this process's memo."""
    config = _current_config()
    for workload, mode_value, profiled, payload in entries:
        _install_payload(RunRequest(workload, Mode(mode_value), profiled),
                         config, payload)


def _normalize(requests: Iterable) -> list[RunRequest]:
    out = []
    for req in requests:
        if isinstance(req, RunRequest):
            out.append(req)
        else:
            name, mode, *rest = req
            out.append(RunRequest(name, Mode(mode), bool(rest and rest[0])))
    return out


# --------------------------------------------------------------------------
# public API
# --------------------------------------------------------------------------


def prefetch(requests: Iterable, jobs: int | None = None) -> None:
    """Satisfy a batch of run requests, fanning misses over a fork pool.

    Deduplicates the requests (a profiled run subsumes its plain twin),
    satisfies what it can from the memo and the disk cache, and executes
    the rest - with ``multiprocessing`` ``fork`` workers when ``jobs > 1``
    (default: the engine-wide setting of :func:`set_default_jobs`).  After
    the call every request is answerable from the memo, so subsequent
    ``run_workload`` calls are hits.
    """
    config = _current_config()
    requests = _normalize(requests)
    profiled = {(r.workload, r.mode) for r in requests if r.profiled}
    deduped: dict[tuple, RunRequest] = {}
    for req in requests:
        if not req.profiled and (req.workload, req.mode) in profiled:
            continue  # the profiled twin seeds the plain memo too
        deduped.setdefault((req.workload, req.mode, req.profiled), req)
    pending = sorted(
        (r for r in deduped.values() if not _memo_satisfies(r, config)),
        key=lambda r: r.sort_key,
    )
    if _disk_cache is not None:
        still = []
        for req in pending:
            payload = _disk_cache.load_run(req.workload, req.mode,
                                           req.profiled, config)
            if payload is not None:
                _install_payload(req, config, payload)
            else:
                still.append(req)
        pending = still
    jobs = effective_jobs(_default_jobs if jobs is None else int(jobs))
    if jobs > 1 and len(pending) > 1:
        args = [(r.workload, r.mode.value, r.profiled, config)
                for r in pending]
        # chunksize=1: run times vary by 100x across (workload, mode),
        # so static chunking would serialise behind the slow ones.
        payloads = shared_pool(jobs).starmap(_execute, args, chunksize=1)
        for req, payload in zip(pending, payloads):
            _note_timing(req, payload)
            _install_payload(req, config, payload)
            if _disk_cache is not None:
                _disk_cache.store_run(req.workload, req.mode, req.profiled,
                                      config, payload)
    else:
        for req in pending:
            _obtain(req)


def run_workloads_parallel(requests: Iterable, jobs: int | None = None
                           ) -> list[RunResult | None]:
    """Execute the deduplicated request set in parallel; gather in order.

    Returns one entry per input request (``None`` where the mode cannot
    run the workload, e.g. GPUfs).  Results are bit-identical to
    sequential execution: the simulation is deterministic and results
    cross the pool as exact JSON payloads.
    """
    requests = _normalize(requests)
    prefetch(requests, jobs=jobs)
    out: list[RunResult | None] = []
    for req in requests:
        try:
            if req.profiled:
                out.append(run_workload_profiled(req.workload, req.mode)[0])
            else:
                out.append(run_workload(req.workload, req.mode))
        except GpufsUnsupported:
            out.append(None)
    return out


def run_workload(name: str, mode: Mode) -> RunResult:
    """Run (or recall) one workload under one mode.

    Raises :class:`GpufsUnsupported` for the GPUfs-incompatible workloads,
    exactly as the real GPUfs port would fail - a *fresh* exception object
    per call, never a cached one.
    """
    _obtain(RunRequest(name, mode))
    out = _cache[(name, mode, _current_config())]
    if isinstance(out, _Unsupported):
        raise GpufsUnsupported(out.reason)
    return out


def run_workload_profiled(name: str, mode: Mode) -> tuple[RunResult, ProfileSummary]:
    """Run one workload with a :class:`ProfileSink` attached to its machines.

    Returns the run result plus the persistence profile derived purely from
    the event stream (windowed to the workload's measured section).  The
    run also populates the plain :func:`run_workload` cache.
    """
    _obtain(RunRequest(name, mode, profiled=True))
    key = (name, mode, _current_config())
    if key not in _profile_cache and isinstance(_cache.get(key), _Unsupported):
        raise GpufsUnsupported(_cache[key].reason)
    return _profile_cache[key]


def clear_cache() -> None:
    """Drop the in-process memo (the disk cache is untouched)."""
    _cache.clear()
    _profile_cache.clear()

"""Cross-mode workload execution with per-process caching.

Several figures slice the same runs (Fig. 9 and Table 4 both need
GPM/CAP-mm results; Fig. 12 needs the GPM windows), so
:func:`run_workload_modes` memoises results per (workload lineup index,
mode) within the process.  Fresh workload instances and fresh systems are
used for every run - nothing is shared across modes except the cache of
*results*.
"""

from __future__ import annotations

from ..host.gpufs import GpufsUnsupported
from ..workloads import Mode, RunResult, gpmbench_suite

#: (workload name, mode) -> RunResult | GpufsUnsupported
_cache: dict[tuple[str, Mode], RunResult | GpufsUnsupported] = {}


def workload_names() -> list[str]:
    return [w.name for w in gpmbench_suite()]


def _fresh(name: str):
    for w in gpmbench_suite():
        if w.name == name:
            return w
    raise KeyError(f"unknown workload {name!r}")


def run_workload(name: str, mode: Mode) -> RunResult:
    """Run (or recall) one workload under one mode.

    Raises :class:`GpufsUnsupported` for the GPUfs-incompatible workloads,
    exactly as the real GPUfs port would fail.
    """
    key = (name, mode)
    if key not in _cache:
        try:
            _cache[key] = _fresh(name).run(mode)
        except GpufsUnsupported as exc:
            _cache[key] = exc
    out = _cache[key]
    if isinstance(out, GpufsUnsupported):
        raise out
    return out


def clear_cache() -> None:
    _cache.clear()

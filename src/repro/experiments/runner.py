"""Cross-mode workload execution with per-process caching.

Several figures slice the same runs (Fig. 9 and Table 4 both need
GPM/CAP-mm results; Fig. 12 needs the GPM windows), so
:func:`run_workload_modes` memoises results per (workload lineup index,
mode, machine configuration) within the process.  Fresh workload instances
and fresh systems are used for every run - nothing is shared across modes
except the cache of *results*.

The cache key includes the active :class:`~repro.sim.config.SystemConfig`
(it is a frozen, hashable dataclass), so tests or ablations that swap
``repro.sim.config.DEFAULT_CONFIG`` never read results produced under a
different machine.
"""

from __future__ import annotations

from ..host.gpufs import GpufsUnsupported
from ..sim import config as _config
from ..sim.config import SystemConfig
from ..sim.trace import ProfileSink, ProfileSummary, record_events
from ..workloads import Mode, RunResult, gpmbench_suite


def _current_config() -> SystemConfig:
    """The configuration new systems will be built with, read dynamically."""
    return _config.DEFAULT_CONFIG


#: (workload name, mode, config) -> RunResult | GpufsUnsupported
_cache: dict[tuple[str, Mode, SystemConfig], RunResult | GpufsUnsupported] = {}
#: (workload name, mode, config) -> (RunResult, event-derived profile)
_profile_cache: dict[tuple[str, Mode, SystemConfig], tuple[RunResult, ProfileSummary]] = {}


def workload_names() -> list[str]:
    return [w.name for w in gpmbench_suite()]


def _fresh(name: str):
    for w in gpmbench_suite():
        if w.name == name:
            return w
    raise KeyError(f"unknown workload {name!r}")


def run_workload(name: str, mode: Mode) -> RunResult:
    """Run (or recall) one workload under one mode.

    Raises :class:`GpufsUnsupported` for the GPUfs-incompatible workloads,
    exactly as the real GPUfs port would fail.
    """
    key = (name, mode, _current_config())
    if key not in _cache:
        try:
            _cache[key] = _fresh(name).run(mode)
        except GpufsUnsupported as exc:
            _cache[key] = exc
    out = _cache[key]
    if isinstance(out, GpufsUnsupported):
        raise out
    return out


def run_workload_profiled(name: str, mode: Mode) -> tuple[RunResult, ProfileSummary]:
    """Run one workload with a :class:`ProfileSink` attached to its machines.

    Returns the run result plus the persistence profile derived purely from
    the event stream (windowed to the workload's measured section).  The
    run also populates the plain :func:`run_workload` cache.
    """
    key = (name, mode, _current_config())
    if key not in _profile_cache:
        sink = ProfileSink()
        with record_events(sink):
            result = _fresh(name).run(mode)
        _profile_cache[key] = (result, sink.summary)
        _cache.setdefault(key, result)
    return _profile_cache[key]


def clear_cache() -> None:
    _cache.clear()
    _profile_cache.clear()

"""Figure 1: benefits of GPM over CPU-with-PM.

* Fig. 1a - throughput of persistent key-value stores: Intel pmemKV,
  RocksDB-PM and MatrixKV on the many-core CPU versus MegaKV ported onto
  GPM (paper: GPM 2.7x / 5.8x / 3.1x faster).
* Fig. 1b - GPM speedup over multi-threaded CPU PM applications for BFS,
  SRAD and PS (paper: 27x / 19.2x / 2.8x).
"""

from __future__ import annotations

from ..baselines import CpuBfs, CpuPrefixSum, CpuSrad, MatrixKvStore, PmemKvStore, RocksDbStore
from ..system import System
from ..workloads import GraphBfs, Mode, PrefixSum, Srad
from .results import ExperimentTable
from .runner import RunRequest, prefetch, run_workload


def figure1a_required_runs():
    """The engine-served runs figure 1a consumes."""
    return [RunRequest("gpKVS", Mode.GPM)]


def figure1b_required_runs():
    """The engine-served runs figure 1b consumes."""
    return [RunRequest(cls.name, Mode.GPM)
            for cls in (GraphBfs, Srad, PrefixSum)]


def figure1a() -> ExperimentTable:
    """Throughputs of persistent KVS (batched 8 B SETs)."""
    table = ExperimentTable(
        "figure1a", "Figure 1a: throughput of persistent KVS (SETs)",
        ["system", "throughput_mops", "gpm_speedup", "paper_speedup"],
    )
    prefetch(figure1a_required_runs())
    gpm = run_workload("gpKVS", Mode.GPM).extras["throughput_ops_per_s"]
    paper = {"Intel PmemKV": 2.7, "RocksDB-PM": 5.8, "MatrixKV": 3.1}
    for cls in (PmemKvStore, RocksDbStore, MatrixKvStore):
        store = cls(System())
        thr = store.throughput()
        table.add(cls.display_name, thr / 1e6, gpm / thr, paper[cls.display_name])
    table.add("GPM-KVS", gpm / 1e6, 1.0, 1.0)
    return table


def figure1b() -> ExperimentTable:
    """GPM speedups over CPU PM applications (BFS, SRAD, PS)."""
    table = ExperimentTable(
        "figure1b", "Figure 1b: GPM speedup over CPU PM applications",
        ["workload", "cpu_ms", "gpm_ms", "speedup", "paper_speedup"],
    )
    prefetch(figure1b_required_runs())
    pairs = [
        (GraphBfs, CpuBfs, 27.0),
        (Srad, CpuSrad, 19.2),
        (PrefixSum, CpuPrefixSum, 2.8),
    ]
    for workload_cls, cpu_cls, paper in pairs:
        gpm = run_workload(workload_cls.name, Mode.GPM).elapsed
        cpu = cpu_cls(System()).run()
        table.add(workload_cls.name, cpu * 1e3, gpm * 1e3, cpu / gpm, paper)
    return table


figure1a.required_runs = figure1a_required_runs
figure1b.required_runs = figure1b_required_runs

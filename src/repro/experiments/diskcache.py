"""Persistent on-disk cache of experiment run results.

The experiment engine (:mod:`repro.experiments.runner`) memoises results
per process; this module makes those results survive process exit.  Every
cached outcome is one JSON file under the cache directory (default
``~/.cache/repro``, overridable with ``REPRO_CACHE_DIR`` or the CLI's
``--cache-dir``), keyed by a stable digest of

* the workload name and persistence mode,
* whether the run carried a profile sink,
* the full :class:`~repro.sim.config.SystemConfig` the run executed under
  (every field, via ``dataclasses.asdict``), and
* the package version (``repro.version.__version__``),

so a config ablation or an upgraded simulator can never read results
produced under a different machine or model.  Entries are written with an
atomic rename (temp file in the same directory + ``os.replace``) so
concurrent processes sharing one cache directory either see a complete
entry or none; unreadable/corrupt entries are treated as misses and
removed.

Serialization is exact: run payloads hold only JSON round-trip-safe values
(Python floats round-trip through ``json`` losslessly), which is what lets
parallel workers ship results to the parent - and warm cache hits replay
them - bit-identical to an in-process sequential run.

Two payload shapes are stored:

* run payloads - a serialized :class:`~repro.workloads.RunResult`, plus
  optionally its :class:`~repro.sim.trace.ProfileSummary`, or an
  ``unsupported`` marker carrying the :class:`GpufsUnsupported` reason
  (markers are stored instead of pickled exceptions, so every cache hit
  can raise a *fresh* exception object);
* table payloads - a rendered :class:`ExperimentTable`, cached per
  artefact so a warm ``python -m repro all`` rebuilds nothing.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import re
import tempfile

import numpy as np

from ..sim.config import SystemConfig
from ..sim.stats import MachineStats, WindowedStats
from ..sim.trace import ProfileSummary
from ..version import __version__
from ..workloads import Mode, RunResult
from .results import ExperimentTable

#: Default cache location; ``REPRO_CACHE_DIR`` overrides it.
DEFAULT_CACHE_DIR = os.path.join("~", ".cache", "repro")


def default_cache_dir() -> str:
    return os.environ.get("REPRO_CACHE_DIR") or os.path.expanduser(DEFAULT_CACHE_DIR)


# --------------------------------------------------------------------------
# exact JSON serialization
# --------------------------------------------------------------------------


def _plain(value):
    """Recursively convert numpy scalars/arrays to exact plain-Python values."""
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, dict):
        return {str(k): _plain(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_plain(v) for v in value]
    return value


def config_digest(config: SystemConfig) -> str:
    """Stable hex digest over every field of a :class:`SystemConfig`."""
    blob = json.dumps(dataclasses.asdict(config), sort_keys=True,
                      separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


def result_to_record(result: RunResult) -> dict:
    stats = result.window.stats
    return {
        "workload": result.workload,
        "mode": result.mode.value,
        "elapsed": result.elapsed,
        "window": {
            "elapsed": result.window.elapsed,
            "stats": {f.name: getattr(stats, f.name)
                      for f in dataclasses.fields(stats)},
            "extra": _plain(result.window.extra),
        },
        "extras": _plain(result.extras),
    }


def result_from_record(record: dict) -> RunResult:
    window = record["window"]
    return RunResult(
        workload=record["workload"],
        mode=Mode(record["mode"]),
        elapsed=record["elapsed"],
        window=WindowedStats(
            stats=MachineStats(**window["stats"]),
            elapsed=window["elapsed"],
            extra=dict(window.get("extra", {})),
        ),
        extras=dict(record["extras"]),
    )


def profile_to_record(profile: ProfileSummary) -> dict:
    return {f.name: getattr(profile, f.name)
            for f in dataclasses.fields(profile)}


def profile_from_record(record: dict) -> ProfileSummary:
    return ProfileSummary(**record)


def table_to_record(table: ExperimentTable) -> dict:
    return {
        "name": table.name,
        "title": table.title,
        "headers": list(table.headers),
        "rows": _plain(table.rows),
        "notes": list(table.notes),
    }


def table_from_record(record: dict) -> ExperimentTable:
    return ExperimentTable(
        name=record["name"],
        title=record["title"],
        headers=list(record["headers"]),
        rows=[list(row) for row in record["rows"]],
        notes=list(record["notes"]),
    )


# --------------------------------------------------------------------------
# the cache proper
# --------------------------------------------------------------------------


def _slug(text: str) -> str:
    return re.sub(r"[^a-z0-9]+", "-", text.lower()).strip("-")


class ResultCache:
    """One directory of JSON entries, keyed by digest; corrupt-tolerant."""

    def __init__(self, directory: str | None = None,
                 version: str = __version__) -> None:
        self.directory = os.path.expanduser(directory or default_cache_dir())
        self.version = version

    # -- keying ----------------------------------------------------------

    def _digest(self, kind: str, name: str, config: SystemConfig,
                **parts) -> str:
        record = {"kind": kind, "name": name, "version": self.version,
                  "config": dataclasses.asdict(config), **parts}
        blob = json.dumps(record, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode()).hexdigest()

    def run_path(self, workload: str, mode: Mode, profiled: bool,
                 config: SystemConfig) -> str:
        digest = self._digest("run", workload, config, mode=mode.value,
                              profiled=profiled)
        slug = _slug(f"{workload}-{mode.value}")
        if profiled:
            slug += "-profiled"
        return os.path.join(self.directory, f"run-{slug}-{digest[:16]}.json")

    def table_path(self, artefact: str, config: SystemConfig) -> str:
        digest = self._digest("table", artefact, config)
        return os.path.join(
            self.directory, f"table-{_slug(artefact)}-{digest[:16]}.json")

    # -- raw entries -----------------------------------------------------

    def _load(self, path: str) -> dict | None:
        try:
            with open(path) as fh:
                entry = json.load(fh)
            payload = entry["payload"]
            if not isinstance(payload, dict):
                raise ValueError("malformed payload")
            return payload
        except FileNotFoundError:
            return None
        except (OSError, ValueError, KeyError, TypeError):
            # Corrupt or truncated entry: drop it so the slot is rewritten.
            try:
                os.remove(path)
            except OSError:
                pass
            return None

    def _store(self, path: str, payload: dict, **meta) -> str:
        os.makedirs(self.directory, exist_ok=True)
        entry = {"version": self.version, **meta, "payload": payload}
        fd, tmp = tempfile.mkstemp(dir=self.directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(entry, fh, separators=(",", ":"))
            # Atomic within one filesystem: concurrent writers race to an
            # identical entry, readers never observe a partial file.
            os.replace(tmp, path)
        except BaseException:
            try:
                os.remove(tmp)
            except OSError:
                pass
            raise
        return path

    # -- run outcomes ----------------------------------------------------

    def load_run(self, workload: str, mode: Mode, profiled: bool,
                 config: SystemConfig) -> dict | None:
        """The stored run payload, or ``None`` on miss/corruption.

        Payloads contain either ``result`` (+ optional ``profile``) or an
        ``unsupported`` reason string.
        """
        path = self.run_path(workload, mode, profiled, config)
        payload = self._load(path)
        if payload is None:
            return None
        if "unsupported" in payload:
            return payload if isinstance(payload["unsupported"], str) else None
        if "result" not in payload or (profiled and "profile" not in payload):
            try:
                os.remove(path)
            except OSError:
                pass
            return None
        return payload

    def store_run(self, workload: str, mode: Mode, profiled: bool,
                  config: SystemConfig, payload: dict) -> str:
        path = self._store(
            self.run_path(workload, mode, profiled, config), payload,
            workload=workload, mode=mode.value, profiled=profiled,
            config_digest=config_digest(config),
        )
        if profiled and "result" in payload:
            # A profiled run fully determines the plain one; seed that slot
            # too so unprofiled consumers hit without rerunning.
            plain = {"result": payload["result"]}
            self._store(
                self.run_path(workload, mode, False, config), plain,
                workload=workload, mode=mode.value, profiled=False,
                config_digest=config_digest(config),
            )
        return path

    # -- litmus points ---------------------------------------------------

    def litmus_path(self, task: tuple, config: SystemConfig) -> str:
        """Cache path for one ``(test_payload, point_spec, mutant,
        max_frontiers)`` litmus task (see ``repro.check.litmus``)."""
        test_payload, point_spec, mutant, max_frontiers = task
        digest = self._digest("litmus", point_spec, config,
                              test=test_payload, mutant=mutant or "",
                              max_frontiers=max_frontiers)
        slug = _slug(f"{test_payload['seed']}-{test_payload['index']}"
                     f"-{point_spec}" + (f"-{mutant}" if mutant else ""))
        return os.path.join(self.directory,
                            f"litmus-{slug}-{digest[:16]}.json")

    def load_litmus(self, task: tuple, config: SystemConfig) -> dict | None:
        """The stored litmus verdict payload, or ``None`` on miss."""
        path = self.litmus_path(task, config)
        payload = self._load(path)
        if payload is None or "ok" not in payload:
            return None
        return payload

    def store_litmus(self, task: tuple, config: SystemConfig,
                     payload: dict) -> str:
        test_payload, point_spec, mutant, _ = task
        return self._store(
            self.litmus_path(task, config), payload,
            litmus=f"{test_payload['seed']}:{test_payload['index']}",
            point=point_spec, mutant=mutant or "",
            config_digest=config_digest(config),
        )

    # -- artefact tables -------------------------------------------------

    def load_table(self, artefact: str,
                   config: SystemConfig) -> ExperimentTable | None:
        payload = self._load(self.table_path(artefact, config))
        if payload is None:
            return None
        try:
            return table_from_record(payload)
        except (KeyError, TypeError):
            return None

    def store_table(self, artefact: str, config: SystemConfig,
                    table: ExperimentTable) -> str:
        return self._store(
            self.table_path(artefact, config), table_to_record(table),
            artefact=artefact, config_digest=config_digest(config),
        )

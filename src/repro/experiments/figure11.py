"""Figure 11: the importance of Hierarchical Coalesced Logging.

* Fig. 11a - transactional workloads with HCL versus conventional
  distributed (lock-partitioned) logging: the paper measures 3.3x for
  gpKVS and 6.1x for gpDB (U).  gpDB (I) is skipped, as in the paper,
  because INSERTs only log the table size.
* Fig. 11b - a logging microbenchmark: N concurrent threads each insert
  one entry; HCL latency stays flat with thread count while the
  conventional log's grows (on average ~3.6x higher).
"""

from __future__ import annotations

import numpy as np

from ..core.logging import gpmlog_create_conv, gpmlog_create_hcl, gpmlog_insert
from ..core.persist import persist_window
from ..workloads import DbConfig, GpDb, GpKvs, KvsConfig, Mode
from .results import ExperimentTable

MICRO_THREADS = [512, 2048, 8192, 32768]
MICRO_ENTRY_BYTES = 16
MICRO_BLOCK = 256
CONV_PARTITIONS = 64


def figure11a() -> ExperimentTable:
    table = ExperimentTable(
        "figure11a", "Figure 11a: speedup of HCL over conventional logging",
        ["workload", "hcl_ms", "conventional_ms", "speedup", "paper_speedup"],
    )
    for name, make, paper in [
        ("gpKVS", lambda hcl: GpKvs(KvsConfig(use_hcl=hcl)), 3.3),
        ("gpDB (U)", lambda hcl: GpDb("update", DbConfig(use_hcl=hcl)), 6.1),
    ]:
        hcl_t = make(True).run(Mode.GPM).elapsed
        conv_t = make(False).run(Mode.GPM).elapsed
        table.add(name, hcl_t * 1e3, conv_t * 1e3, conv_t / hcl_t, paper)
    return table


def _insert_kernel(ctx, log, n_ops, partitions):
    if ctx.global_id >= n_ops:
        return
    entry = np.full(MICRO_ENTRY_BYTES // 4, ctx.global_id, dtype=np.uint32)
    # The microbenchmark spreads warps evenly over the partitions, so the
    # per-partition (serialised) load grows linearly with thread count.
    gpmlog_insert(ctx, log, entry,
                  partition=ctx.tid.warp_global % partitions if partitions else -1)


def _micro_latency(n_threads: int, use_hcl: bool) -> float:
    from ..system import System

    system = System()
    blocks = (n_threads + MICRO_BLOCK - 1) // MICRO_BLOCK
    if use_hcl:
        capacity = n_threads * MICRO_ENTRY_BYTES * 4 + (1 << 16)
        log = gpmlog_create_hcl(system, "/pm/fig11.log", capacity, blocks, MICRO_BLOCK)
        partitions = 0
    else:
        capacity = max(8 << 20, n_threads * MICRO_ENTRY_BYTES * 8)
        log = gpmlog_create_conv(system, "/pm/fig11.log", capacity, CONV_PARTITIONS)
        partitions = CONV_PARTITIONS
    with persist_window(system):
        result = system.gpu.launch(_insert_kernel, blocks, MICRO_BLOCK,
                                   (log, n_threads, partitions))
    return result.elapsed


def figure11b() -> ExperimentTable:
    table = ExperimentTable(
        "figure11b", "Figure 11b: log-insert latency vs concurrent threads",
        ["threads", "hcl_us", "conventional_us", "ratio"],
    )
    for n in MICRO_THREADS:
        hcl = _micro_latency(n, True)
        conv = _micro_latency(n, False)
        table.add(n, hcl * 1e6, conv * 1e6, conv / hcl)
    table.notes.append("paper: conventional latency grows with threads, HCL "
                       "stays stable; ~3.6x lower latency on average")
    return table

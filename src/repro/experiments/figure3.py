"""Figure 3: scaling of persistence with thread count.

The paper's microbenchmark writes and persists 1 GB from either side:

* Fig. 3a - CAP-mm with 1..64 CPU threads: plateaus at 1.47x over one
  thread (flush-bandwidth Amdahl wall).
* Fig. 3b - GPM with 32..2048 GPU threads persisting at 8 B granularity:
  scales past the CPU (to ~4x a single CPU thread) until the PCIe
  endpoint's bounded outstanding transactions flatten it.

The CPU side runs the actual simulated persist path; the GPU side uses the
lockstep fence model (a thread cannot overlap its own persist round trips;
a warp's coalesced round is ``32 x grain`` bytes in
``ceil(32*grain/128)`` transactions; the endpoint sustains at most
``pcie_max_outstanding`` of them concurrently).
"""

from __future__ import annotations

import math

import numpy as np

from ..sim.config import DEFAULT_CONFIG, SystemConfig
from ..system import System
from .results import ExperimentTable

CPU_THREADS = [1, 2, 4, 6, 16, 32, 64]
GPU_THREADS = [32, 64, 128, 256, 512, 1024, 2048]
PAPER_CPU = {1: 1.0, 2: 1.20, 4: 1.34, 6: 1.42, 16: 1.46, 32: 1.47, 64: 1.46}
PAPER_GPU = {32: 0.32, 64: 0.48, 128: 0.93, 256: 1.72, 512: 3.30,
             1024: 4.04, 2048: 3.97}

#: Scaled transfer size (paper: 1 GB; the model is size-independent).
TRANSFER_BYTES = 8 << 20


def cpu_persist_time(threads: int, nbytes: int = TRANSFER_BYTES) -> float:
    """Measured simulated time of the CAP-mm CPU persist loop."""
    system = System()
    region = system.machine.alloc_pm("fig3.cpu", nbytes)
    data = np.zeros(nbytes, dtype=np.uint8)
    return system.cpu.write_and_persist(region, 0, data, threads=threads)


def gpu_persist_throughput(n_threads: int, grain: int = 8,
                           config: SystemConfig = DEFAULT_CONFIG) -> float:
    """Bytes/s of ``n_threads`` GPU threads persisting at ``grain`` bytes.

    Lockstep model: each fence round a warp emits ``ceil(32*grain/128)``
    coalesced transactions and waits a full PCIe round trip; the endpoint
    overlaps rounds across warps up to its outstanding-transaction limit.
    """
    warps = math.ceil(n_threads / config.gpu_warp_size)
    tx_per_round = math.ceil(config.gpu_warp_size * grain / config.pcie_tx_bytes)
    concurrency = min(warps * tx_per_round, config.pcie_max_outstanding)
    throughput = concurrency * config.pcie_tx_bytes / config.pcie_rtt_s
    return min(throughput, config.pcie_bw, config.pm_bw_seq_aligned)


def figure3() -> ExperimentTable:
    """Both halves of Fig. 3, normalised to one CAP-mm CPU thread."""
    table = ExperimentTable(
        "figure3", "Figure 3: scaling of persistence",
        ["side", "threads", "speedup", "paper_speedup"],
    )
    base = cpu_persist_time(1)
    for t in CPU_THREADS:
        table.add("cpu", t, base / cpu_persist_time(t), PAPER_CPU[t])
    cpu_bw = DEFAULT_CONFIG.cpu_persist_bw_single
    for t in GPU_THREADS:
        table.add("gpu", t, gpu_persist_throughput(t) / cpu_bw, PAPER_GPU[t])
    table.notes.append(
        "GPU low-thread speedups undershoot the paper (0.12 vs 0.32 at 32 "
        "threads): the strict lockstep fence model does not credit the "
        "partial round-trip pipelining real warps achieve; the plateau "
        "(~3.9x at >=1024 threads) matches."
    )
    return table

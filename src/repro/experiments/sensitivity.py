"""Hardware sensitivity sweeps - what the simulator buys us.

The paper measures one testbed.  The simulator can ask how GPM's advantage
depends on the hardware constants the paper identifies as load-bearing:

* **Optane's random-access penalty** (Section 6.1's 0.72 GB/s): GPM's
  transactional wins are media-bound, so a future PM with better random
  write behaviour widens them; CAP barely notices (it streams).
* **PCIe persist round trip** ([66]'s ~1-2 us): the fence critical path.
* **CPU persist scaling** (Fig. 3a's 1.47x wall): CAP's ceiling - if CPU
  flushing scaled perfectly, how much of GPM's advantage would remain?

Each sweep reruns gpKVS (the bellwether transactional workload) under GPM
and CAP-mm on a machine with one constant changed.
"""

from __future__ import annotations

from ..sim.config import DEFAULT_CONFIG
from ..system import System
from ..workloads import GpKvs, Mode
from .results import ExperimentTable


def _ratio(config) -> tuple[float, float, float]:
    gpm = GpKvs().run(Mode.GPM, system=System(config)).elapsed
    cap = GpKvs().run(Mode.CAP_MM, system=System(config)).elapsed
    return gpm, cap, cap / gpm


def sensitivity_sweep() -> ExperimentTable:
    table = ExperimentTable(
        "sensitivity",
        "Sensitivity: gpKVS GPM-vs-CAP-mm under varied hardware constants",
        ["knob", "value", "gpm_ms", "cap_mm_ms", "gpm_speedup"],
    )
    base = DEFAULT_CONFIG

    for penalty in (1.0, DEFAULT_CONFIG.pm_random_penalty, 8.0):
        cfg = base.with_overrides(pm_random_penalty=penalty)
        gpm, cap, ratio = _ratio(cfg)
        table.add("pm_random_penalty", penalty, gpm * 1e3, cap * 1e3, ratio)

    for rtt in (0.4e-6, DEFAULT_CONFIG.pcie_rtt_s, 2.6e-6):
        cfg = base.with_overrides(pcie_rtt_s=rtt)
        gpm, cap, ratio = _ratio(cfg)
        table.add("pcie_rtt_us", rtt * 1e6, gpm * 1e3, cap * 1e3, ratio)

    for serial in (0.0, DEFAULT_CONFIG.cpu_persist_serial_fraction, 0.9):
        cfg = base.with_overrides(cpu_persist_serial_fraction=serial)
        gpm, cap, ratio = _ratio(cfg)
        table.add("cpu_persist_serial_fraction", serial, gpm * 1e3,
                  cap * 1e3, ratio)

    table.notes.append(
        "GPM's gpKVS advantage is dominated by write amplification, so it "
        "survives even perfectly-scaling CPU flushing (serial fraction 0); "
        "a PM with no random-access penalty widens it further"
    )
    return table

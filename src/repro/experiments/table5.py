"""Table 5: restoration latency (RL) under GPM.

RL is the time to run the recovery path after a crash, as a percentage of
the workload's operation time.  Following the paper's methodology:

* transactional workloads measure the **worst case** by crashing just
  before the batch commits, then timing the undo-from-log recovery kernel;
* checkpointing workloads time ``gpmcp_restore`` of the last consistent
  checkpoint;
* native workloads are skipped - their recovery logic is embedded in the
  forward kernels (they have no separate recovery program).
"""

from __future__ import annotations

from ..sim.crash import CrashInjector, SimulatedCrash
from ..workloads import (
    BlackScholes,
    CfdSolver,
    DnnTraining,
    GpDb,
    GpKvs,
    Hotspot,
    Mode,
    make_system,
)
from .results import ExperimentTable
from .runner import RunRequest, prefetch, run_workload

PAPER_RL_PCT = {
    "gpKVS": 18.96, "gpDB (I)": 0.01, "gpDB (U)": 10.43,
    "DNN": 0.12, "CFD": 0.30, "BLK": 0.80, "HS": 1.65,
}


def required_runs():
    """The engine-served runs (the crash/restore replays stay bespoke)."""
    return [RunRequest(name, Mode.GPM)
            for name in ("gpKVS", "gpDB (I)", "gpDB (U)")]


def _transactional_rl(make_workload, crash_after_threads: int) -> float:
    """Crash just before commit; return the recovery time in seconds."""
    workload = make_workload()
    system = make_system(Mode.GPM)
    injector = CrashInjector(system.machine)
    injector.arm(crash_after_threads)
    try:
        workload.run(Mode.GPM, system=system, crash_injector=injector)
    except SimulatedCrash:
        pass
    else:
        raise RuntimeError("crash injector did not fire")
    return workload.recover(system, Mode.GPM)


def _checkpoint_rl(workload) -> tuple[float, float]:
    """(operation time, restore time) for a checkpointing workload."""
    result = workload.run(Mode.GPM)
    _, _, target = workload._state
    system = workload._state[0]
    start = system.clock.now
    target.restore()
    return result.extras["total_time"], system.clock.now - start


def table5() -> ExperimentTable:
    prefetch(required_runs())
    table = ExperimentTable(
        "table5", "Table 5: restoration latency under GPM",
        ["workload", "operation_ms", "restore_ms", "rl_pct", "paper_rl_pct"],
    )
    # Transactional: worst-case crash at the end of the first batch.
    kvs = GpKvs()
    op = run_workload("gpKVS", Mode.GPM).elapsed
    rl = _transactional_rl(GpKvs, kvs.config.batch_size)
    table.add("gpKVS", op * 1e3, rl * 1e3, 100 * rl / op, PAPER_RL_PCT["gpKVS"])

    db_i = GpDb("insert")
    op = run_workload("gpDB (I)", Mode.GPM).elapsed
    rl = _transactional_rl(lambda: GpDb("insert"), db_i.config.insert_batch)
    table.add("gpDB (I)", op * 1e3, rl * 1e3, 100 * rl / op, PAPER_RL_PCT["gpDB (I)"])

    db_u = GpDb("update")
    op = run_workload("gpDB (U)", Mode.GPM).elapsed
    rl = _transactional_rl(lambda: GpDb("update"), db_u.config.update_batch)
    table.add("gpDB (U)", op * 1e3, rl * 1e3, 100 * rl / op, PAPER_RL_PCT["gpDB (U)"])

    # Checkpointing: restore the last consistent checkpoint.
    for cls in (DnnTraining, CfdSolver, BlackScholes, Hotspot):
        workload = cls()
        op, rl = _checkpoint_rl(workload)
        table.add(workload.name, op * 1e3, rl * 1e3, 100 * rl / op,
                  PAPER_RL_PCT[workload.name])
    table.notes.append("native workloads have no separate recovery kernel "
                       "(recovery is embedded), as in the paper")
    return table


table5.required_runs = required_runs

"""Figure 12: PCIe write bandwidth to PM under GPM.

Two parts:

* per-workload GPU-to-PM PCIe write bandwidth over the measured window -
  well below the ~13 GB/s link peak for the transactional workloads
  (sparse unaligned updates throttle at the Optane media), higher for the
  streaming checkpoint workloads, lowest for BFS (random 4 B updates);
* the Optane pattern microbenchmark the paper uses to explain it:
  sequential 256 B-aligned -> 12.5 GB/s, unaligned (64 B flush grain) ->
  3.13 GB/s, random -> 0.72 GB/s.
"""

from __future__ import annotations

import numpy as np

from ..sim.machine import Machine
from ..workloads import Mode
from .results import ExperimentTable
from .runner import modes_matrix, prefetch, run_workload, workload_names

#: GB/s bars read off the paper's Fig. 12 (approximate).
PAPER_BW_GBPS = {
    "gpKVS": 1.5, "gpKVS (95:5)": 1.5, "gpDB (I)": 2.6, "gpDB (U)": 0.2,
    "DNN": 9.0, "CFD": 9.0, "BLK": 10.0, "HS": 9.0,
    "BFS": 0.7, "SRAD": 2.6, "PS": 9.0,
}


def pattern_microbenchmark() -> ExperimentTable:
    """The three Optane access patterns (Section 6.1's numbers)."""
    table = ExperimentTable(
        "figure12_patterns", "Optane write bandwidth by access pattern",
        ["pattern", "gbps", "paper_gbps"],
    )
    total = 4 << 20

    def run_pattern(grains, addresses):
        machine = Machine()
        region = machine.alloc_pm("fig12", total * 2)
        time = 0.0
        for addr, grain in zip(addresses, grains):
            time += machine.optane.write_epoch(region, [addr], [grain])
        return sum(grains) / time / 1e9

    n = total // 256
    table.add("sequential 256B-aligned",
              run_pattern([256] * n, [i * 256 for i in range(n)]), 12.5)
    n = total // 64
    table.add("sequential unaligned (64B grain)",
              run_pattern([64] * n, [i * 64 for i in range(n)]), 3.13)
    rng = np.random.default_rng(3)
    addrs = (rng.permutation(n) * 64).tolist()
    table.add("random", run_pattern([64] * n, addrs), 0.72)
    return table


def required_runs():
    """The deduplicated batch of runs this figure consumes."""
    return modes_matrix(Mode.GPM)


def figure12() -> ExperimentTable:
    prefetch(required_runs())
    table = ExperimentTable(
        "figure12", "Figure 12: PCIe write bandwidth with GPM (GB/s)",
        ["workload", "gbps", "paper_gbps"],
    )
    for name in workload_names():
        result = run_workload(name, Mode.GPM)
        # For the checkpointing class, bandwidth is meaningful over the
        # persistence phase (the compute phase generates no PCIe writes and
        # its length depends only on the model/grid size).
        elapsed = result.extras.get("checkpoint_time", result.elapsed)
        bw = result.window.stats.pcie_bytes_to_host / elapsed if elapsed else 0.0
        table.add(name, bw / 1e9, PAPER_BW_GBPS[name])
    table.notes.append(
        "absolute values differ from the paper at our scaled inputs; the "
        "ordering (streaming checkpoint workloads near link speed, sparse "
        "transactional/graph workloads media-bound far below it) is the "
        "reproduced result"
    )
    return table


figure12.required_runs = required_runs

"""Experiment harnesses regenerating every figure and table of the paper.

Each module produces :class:`~repro.experiments.results.ExperimentTable`
objects that render to the tab-separated ``out_*.txt`` files the paper's
artifact emits.  :func:`run_all` regenerates everything into ``reports/``.
"""

from .ablations import (
    binomial_counter_example,
    ddio_ablation,
    hcl_striping_ablation,
    log_entry_size_sweep,
    warp_coalescing_ablation,
)
from .figure1 import figure1a, figure1b
from .figure3 import cpu_persist_time, figure3, gpu_persist_throughput
from .figure9 import figure9
from .figure10 import eadr_summary, figure10
from .figure11 import figure11a, figure11b
from .figure12 import figure12, pattern_microbenchmark
from .results import ExperimentTable
from .runner import clear_cache, run_workload, workload_names
from .multigpu import multi_gpu_scaling


def _ycsb_skew_sweep():
    # imported lazily: repro.workloads.ycsb imports experiment plumbing
    from ..workloads.ycsb import ycsb_skew_sweep

    return ycsb_skew_sweep()


def _delta_vs_full():
    from ..extensions.delta_checkpoint import delta_vs_full

    return delta_vs_full()


def _redo_vs_undo():
    from ..extensions.redo import redo_vs_undo

    return redo_vs_undo()


def _cxl_projection():
    from ..extensions.cxl import cxl_projection

    return cxl_projection()

from .profile import persistence_profile
from .sensitivity import sensitivity_sweep
from .table4 import table4
from .table5 import table5
from .text_results import checkpoint_frequency, cpu_only_db

ALL_EXPERIMENTS = {
    "figure1a": figure1a,
    "figure1b": figure1b,
    "figure3": figure3,
    "figure9": figure9,
    "figure10": figure10,
    "figure11a": figure11a,
    "figure11b": figure11b,
    "figure12": figure12,
    "figure12_patterns": pattern_microbenchmark,
    "table4": table4,
    "table5": table5,
    "checkpoint_freq": checkpoint_frequency,
    "cpu_db": cpu_only_db,
    "ablation_striping": hcl_striping_ablation,
    "ablation_coalescing": warp_coalescing_ablation,
    "ablation_ddio": ddio_ablation,
    "ablation_entry_size": log_entry_size_sweep,
    "ablation_binomial": binomial_counter_example,
    "sensitivity": sensitivity_sweep,
    "profile": persistence_profile,
    "multigpu": multi_gpu_scaling,
    "ycsb": _ycsb_skew_sweep,
    "delta_checkpoint": _delta_vs_full,
    "redo_vs_undo": _redo_vs_undo,
    "cxl_projection": _cxl_projection,
}


def run_all(directory: str = "reports", verbose: bool = True) -> dict[str, ExperimentTable]:
    """Regenerate every figure/table; saves out_*.txt files; returns tables."""
    out = {}
    for name, fn in ALL_EXPERIMENTS.items():
        table = fn()
        table.save(directory)
        if verbose:
            print(table.to_text())
        out[name] = table
    return out


__all__ = [
    "ALL_EXPERIMENTS",
    "binomial_counter_example",
    "ddio_ablation",
    "hcl_striping_ablation",
    "log_entry_size_sweep",
    "warp_coalescing_ablation",
    "ExperimentTable",
    "checkpoint_frequency",
    "clear_cache",
    "cpu_only_db",
    "cpu_persist_time",
    "eadr_summary",
    "figure1a",
    "figure1b",
    "figure3",
    "figure9",
    "figure10",
    "figure11a",
    "figure11b",
    "figure12",
    "gpu_persist_throughput",
    "pattern_microbenchmark",
    "multi_gpu_scaling",
    "persistence_profile",
    "run_all",
    "run_workload",
    "sensitivity_sweep",
    "table4",
    "table5",
    "workload_names",
]

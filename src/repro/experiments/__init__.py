"""Experiment harnesses regenerating every figure and table of the paper.

Each module produces :class:`~repro.experiments.results.ExperimentTable`
objects that render to the tab-separated ``out_*.txt`` files the paper's
artifact emits.  :func:`run_all` regenerates everything into ``reports/``,
prefetching the union of every artefact's engine-served runs (see
:mod:`~repro.experiments.runner`) so the expensive simulation work is
deduplicated, disk-cached, and - with ``jobs > 1`` - fanned out over a
fork pool before the tables are assembled.
"""

from .ablations import (
    binomial_counter_example,
    ddio_ablation,
    hcl_striping_ablation,
    log_entry_size_sweep,
    warp_coalescing_ablation,
)
from .diskcache import ResultCache, table_from_record, table_to_record
from .figure1 import figure1a, figure1b
from .figure3 import cpu_persist_time, figure3, gpu_persist_throughput
from .figure9 import figure9
from .figure10 import eadr_summary, figure10
from .figure11 import figure11a, figure11b
from .figure12 import figure12, pattern_microbenchmark
from .results import ExperimentTable
from .runner import (
    RunRequest,
    adopt_config,
    clear_cache,
    drain_run_timings,
    effective_jobs,
    get_default_jobs,
    get_disk_cache,
    install_memo,
    modes_matrix,
    prefetch,
    run_workload,
    run_workload_profiled,
    run_workloads_parallel,
    set_default_jobs,
    set_disk_cache,
    shared_pool,
    shutdown_pool,
    snapshot_memo,
    workload_names,
    _current_config,
)
from .multigpu import multi_gpu_scaling


def _ycsb_skew_sweep():
    # imported lazily: repro.workloads.ycsb imports experiment plumbing
    from ..workloads.ycsb import ycsb_skew_sweep

    return ycsb_skew_sweep()


def _delta_vs_full():
    from ..extensions.delta_checkpoint import delta_vs_full

    return delta_vs_full()


def _redo_vs_undo():
    from ..extensions.redo import redo_vs_undo

    return redo_vs_undo()


def _cxl_projection():
    from ..extensions.cxl import cxl_projection

    return cxl_projection()

from .profile import persistence_profile
from .sensitivity import sensitivity_sweep
from .table4 import table4
from .table5 import table5
from .text_results import checkpoint_frequency, cpu_only_db

ALL_EXPERIMENTS = {
    "figure1a": figure1a,
    "figure1b": figure1b,
    "figure3": figure3,
    "figure9": figure9,
    "figure10": figure10,
    "figure11a": figure11a,
    "figure11b": figure11b,
    "figure12": figure12,
    "figure12_patterns": pattern_microbenchmark,
    "table4": table4,
    "table5": table5,
    "checkpoint_freq": checkpoint_frequency,
    "cpu_db": cpu_only_db,
    "ablation_striping": hcl_striping_ablation,
    "ablation_coalescing": warp_coalescing_ablation,
    "ablation_ddio": ddio_ablation,
    "ablation_entry_size": log_entry_size_sweep,
    "ablation_binomial": binomial_counter_example,
    "sensitivity": sensitivity_sweep,
    "profile": persistence_profile,
    "multigpu": multi_gpu_scaling,
    "ycsb": _ycsb_skew_sweep,
    "delta_checkpoint": _delta_vs_full,
    "redo_vs_undo": _redo_vs_undo,
    "cxl_projection": _cxl_projection,
}


def requests_for(names) -> list[RunRequest]:
    """The deduplicated union of engine-served runs the artefacts consume.

    Artefact functions advertise their batch via a ``required_runs``
    attribute; artefacts without one (the bespoke microbenchmarks) simply
    contribute nothing and run their own simulations when built.
    """
    out: list[RunRequest] = []
    seen: set[RunRequest] = set()
    for name in names:
        getter = getattr(ALL_EXPERIMENTS[name], "required_runs", None)
        if getter is None:
            continue
        for req in getter():
            if req not in seen:
                seen.add(req)
                out.append(req)
    return out


def _build_record(name: str, config=None, memo=None) -> dict:
    """Build one artefact; return its serialized table.

    Module-level and picklable: the unit of work ``run_all`` dispatches to
    fork-pool workers.  The shared pool's workers may have been forked
    before the prefetch executed, so the active config and the warm run
    memo arrive with the task rather than via fork inheritance.  Workers
    run single-job themselves - daemonic pool workers cannot fork
    grandchildren.
    """
    set_default_jobs(1)
    adopt_config(config)
    if memo:
        install_memo(memo)
    return table_to_record(ALL_EXPERIMENTS[name]())


def run_artefact(name: str) -> ExperimentTable:
    """Build one named artefact, via the persistent table cache if enabled."""
    cache = get_disk_cache()
    config = _current_config()
    if cache is not None:
        cached = cache.load_table(name, config)
        if cached is not None:
            return cached
    table = ALL_EXPERIMENTS[name]()
    if cache is not None:
        cache.store_table(name, config, table)
    return table


def run_all(directory: str = "reports", verbose: bool = True,
            jobs: int | None = None, names=None) -> dict[str, ExperimentTable]:
    """Regenerate every figure/table; saves out_*.txt files; returns tables.

    ``jobs > 1`` fans the work over fork-pool workers in two waves: first
    the union of the artefacts' engine-served runs (the expensive
    simulations, deduplicated), then the table assembly for artefacts the
    persistent table cache cannot already answer.  Output is bit-identical
    to a sequential run - the simulation is deterministic and results
    cross the pool as exact serialized payloads.
    """
    names = list(names) if names is not None else list(ALL_EXPERIMENTS)
    unknown = [n for n in names if n not in ALL_EXPERIMENTS]
    if unknown:
        raise KeyError(f"unknown artefacts: {', '.join(unknown)}")
    jobs = effective_jobs(get_default_jobs() if jobs is None else int(jobs))
    cache = get_disk_cache()
    config = _current_config()

    tables: dict[str, ExperimentTable] = {}
    if cache is not None:
        for name in names:
            cached = cache.load_table(name, config)
            if cached is not None:
                tables[name] = cached
    pending = [n for n in names if n not in tables]

    if pending:
        # Warm the run memo, then ship it with each table-builder task so
        # no run executes twice.  Both waves draw on the one shared pool -
        # fork startup is paid once per process, not twice per batch.
        requests = requests_for(pending)
        prefetch(requests, jobs=jobs)
        if jobs > 1 and len(pending) > 1:
            memo = snapshot_memo(requests)
            records = shared_pool(jobs).starmap(
                _build_record, [(name, config, memo) for name in pending],
                chunksize=1)
            for name, record in zip(pending, records):
                tables[name] = table_from_record(record)
        else:
            for name in pending:
                tables[name] = ALL_EXPERIMENTS[name]()
        if cache is not None:
            for name in pending:
                cache.store_table(name, config, tables[name])

    out = {}
    for name in names:
        table = tables[name]
        table.save(directory)
        if verbose:
            print(table.to_text())
        out[name] = table
    return out


__all__ = [
    "ALL_EXPERIMENTS",
    "binomial_counter_example",
    "ddio_ablation",
    "hcl_striping_ablation",
    "log_entry_size_sweep",
    "warp_coalescing_ablation",
    "ExperimentTable",
    "ResultCache",
    "RunRequest",
    "adopt_config",
    "drain_run_timings",
    "effective_jobs",
    "install_memo",
    "shared_pool",
    "shutdown_pool",
    "snapshot_memo",
    "checkpoint_frequency",
    "clear_cache",
    "cpu_only_db",
    "cpu_persist_time",
    "eadr_summary",
    "figure1a",
    "figure1b",
    "figure3",
    "figure9",
    "figure10",
    "figure11a",
    "figure11b",
    "figure12",
    "gpu_persist_throughput",
    "modes_matrix",
    "pattern_microbenchmark",
    "multi_gpu_scaling",
    "persistence_profile",
    "prefetch",
    "requests_for",
    "run_all",
    "run_artefact",
    "run_workload",
    "run_workload_profiled",
    "run_workloads_parallel",
    "sensitivity_sweep",
    "set_default_jobs",
    "set_disk_cache",
    "table4",
    "table5",
    "workload_names",
]

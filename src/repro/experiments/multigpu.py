"""Multi-GPU persist scaling: extending Fig. 3(b) across devices.

One GPU's fine-grained persist throughput plateaus at its PCIe endpoint's
outstanding-transaction limit (~6.3 GB/s in our calibration).  With several
GPUs, each on its own link but draining into the same Optane domain, the
aggregate grows until the *media* becomes the shared bottleneck - the
multi-GPU analogue of the paper's Section 2 claim that system-scope
persistence spans devices.
"""

from __future__ import annotations

import numpy as np

from ..core.persist import persist_window
from ..gpu.memory import DeviceArray
from ..gpu.multi import MultiGpu
from ..system import System
from .results import ExperimentTable

_THREADS_PER_GPU = 8192
_BLOCK = 128
_PER_THREAD_BYTES = 64


def _persist_stream_kernel(ctx, arr, rounds, total_threads):
    # One fully coalesced 64 B vector persist per thread: warp epochs are
    # whole XPLines, so a single GPU is link-bound (the Fig. 3b plateau
    # regime) and adding GPUs exposes the shared-media ceiling.
    import numpy as np

    words = _PER_THREAD_BYTES // 4
    payload = np.full(words, ctx.global_id, dtype=np.uint32)
    arr.write_vec(ctx, ctx.global_id * words, payload)
    ctx.persist()


def multi_gpu_scaling(max_gpus: int = 4) -> ExperimentTable:
    table = ExperimentTable(
        "multigpu",
        "Extension: fine-grained persist throughput vs GPU count",
        ["gpus", "throughput_gbps", "scaling", "media_bound"],
    )
    rounds = 1
    base_throughput = None
    for n_gpus in range(1, max_gpus + 1):
        system = System()
        multi = MultiGpu(system.machine, n_gpus)
        grid = _THREADS_PER_GPU // _BLOCK
        launches = []
        for g in range(n_gpus):
            region = system.machine.alloc_pm(f"mg{g}",
                                             _THREADS_PER_GPU * _PER_THREAD_BYTES)
            arr = DeviceArray(region, np.uint32)
            launches.append((_persist_stream_kernel, grid, _BLOCK,
                             (arr, rounds, _THREADS_PER_GPU)))
        with persist_window(system):
            group = multi.parallel_launch(launches)
        nbytes = n_gpus * _THREADS_PER_GPU * _PER_THREAD_BYTES
        throughput = nbytes / group.elapsed
        base_throughput = base_throughput or throughput
        table.add(n_gpus, throughput / 1e9, throughput / base_throughput,
                  group.media_bound)
    table.notes.append(
        "per-GPU PCIe links overlap; the shared Optane media caps the "
        "aggregate - scaling is near-linear until the media_bound column "
        "flips"
    )
    return table

"""Ablations of GPM's design choices.

The paper motivates several mechanisms without isolating them; these
ablations measure each one alone on the simulated machine:

* **HCL striping** (Fig. 5): the same lock-free hierarchical log with the
  chunk striping disabled - entries laid contiguously per thread - shows
  how much of HCL's win is the coalescer, not just lock-freedom.
* **Warp coalescing** (Section 5.2's premise): identical bytes stored
  warp-contiguous versus strided, measuring transactions and time.
* **DDIO disabling** (Section 3.1): the same fenced kernel with the
  persistence window on and off - the off case is *faster* but persists
  nothing, quantifying what GPM's correctness costs.
* **Log entry size** (Fig. 5 striping): HCL insert cost versus entry
  size - stripes scale linearly, the tail sentinel amortises.
* **Workload suitability** (Section 4.3): the binomial-options
  counter-example next to gpKVS - GPM "needs parallelism for good
  performance".
"""

from __future__ import annotations

import numpy as np

from ..core.logging import gpmlog_create_hcl, gpmlog_insert
from ..core.hcl import HclLog
from ..core.mapping import gpm_map
from ..core.persist import persist_window
from ..system import System
from ..workloads import GpKvs, Mode
from ..workloads.binomial import BinomialOptions
from .results import ExperimentTable
from .runner import RunRequest, prefetch, register_workload, run_workload

# The binomial counter-example is not in the Fig. 9 lineup; registering it
# makes its runs engine-served (memoised, disk-cached, parallelisable).
register_workload(BinomialOptions.name, BinomialOptions)

_BLOCKS = 16
_BLOCK_DIM = 256


def _hcl_log(system, striped: bool, entry_bytes: int = 24):
    region = gpm_map(system, "/pm/abl.log", 8 << 20, create=True)
    return HclLog.format(region, _BLOCKS, _BLOCK_DIM, striped=striped)


def _insert_kernel(ctx, log, entry_words):
    entry = np.full(entry_words, ctx.global_id, dtype=np.uint32)
    gpmlog_insert(ctx, log, entry)


def hcl_striping_ablation() -> ExperimentTable:
    """Fig. 5's striping, isolated: striped vs contiguous HCL layout."""
    table = ExperimentTable(
        "ablation_striping",
        "Ablation: HCL chunk striping (both layouts are lock-free)",
        ["layout", "latency_us", "pcie_tx", "speedup_vs_unstriped"],
    )
    results = {}
    for striped in (True, False):
        system = System()
        log = _hcl_log(system, striped)
        with persist_window(system):
            res = system.gpu.launch(_insert_kernel, _BLOCKS, _BLOCK_DIM, (log, 6))
        results[striped] = res
    unstriped = results[False].elapsed
    for striped in (False, True):
        res = results[striped]
        table.add("striped (Fig. 5)" if striped else "contiguous per thread",
                  res.elapsed * 1e6, res.accounting.host_write_tx,
                  unstriped / res.elapsed)
    table.notes.append("striping turns each warp's 32 lockstep chunk stores "
                       "into one 128 B line; without it they scatter across "
                       "32 lines")
    return table


def _coalesced_kernel(ctx, arr):
    arr.write(ctx, ctx.global_id, 1)
    ctx.persist()


def _strided_kernel(ctx, arr, stride):
    arr.write(ctx, ctx.global_id * stride, 1)
    ctx.persist()


def warp_coalescing_ablation() -> ExperimentTable:
    """Same bytes, different layout: the hardware coalescer's effect."""
    table = ExperimentTable(
        "ablation_coalescing",
        "Ablation: warp coalescing of persisted stores (4 B x 2048 threads)",
        ["pattern", "pcie_tx", "latency_us", "slowdown_vs_coalesced"],
    )
    base = None
    for label, stride in (("warp-contiguous", 1), ("64 B stride", 16),
                          ("256 B stride", 64)):
        system = System()
        region = system.machine.alloc_pm("abl", 2048 * 64 * 4 + 4096)
        from ..gpu.memory import DeviceArray

        arr = DeviceArray(region, np.uint32)
        with persist_window(system):
            if stride == 1:
                res = system.gpu.launch(_coalesced_kernel, 16, 128, (arr,))
            else:
                res = system.gpu.launch(_strided_kernel, 16, 128, (arr, stride))
        base = base or res.elapsed
        table.add(label, res.accounting.host_write_tx, res.elapsed * 1e6,
                  res.elapsed / base)
    return table


def ddio_ablation() -> ExperimentTable:
    """What selectively disabling DDIO costs - and what it buys."""
    table = ExperimentTable(
        "ablation_ddio",
        "Ablation: the persistence window (DDIO off) on a fenced kernel",
        ["ddio", "latency_us", "durable_bytes", "survives_crash"],
    )
    for disable in (False, True):
        system = System()
        region = system.machine.alloc_pm("abl", 1 << 20)
        from ..gpu.memory import DeviceArray

        arr = DeviceArray(region, np.uint32)
        if disable:
            system.machine.set_ddio(False)
        res = system.gpu.launch(_coalesced_kernel, 16, 128, (arr,))
        n_stores = 16 * 128
        durable = 4 * int(np.count_nonzero(
            region.persisted_view(np.uint32, 0, n_stores)
        ))
        system.crash()
        survives = bool(region.visible[: n_stores * 4].any())
        table.add("off (GPM window)" if disable else "on (default)",
                  res.elapsed * 1e6, durable, survives)
    table.notes.append("with DDIO on the same fences complete faster at the "
                       "volatile LLC - visibility without durability")
    return table


def log_entry_size_sweep() -> ExperimentTable:
    """HCL insert cost versus entry size (stripe count scales linearly)."""
    table = ExperimentTable(
        "ablation_entry_size",
        "Ablation: HCL insert latency vs entry size (4096 threads)",
        ["entry_bytes", "stripes", "latency_us", "us_per_stripe"],
    )
    for entry_words in (1, 2, 4, 8, 16):
        system = System()
        log = _hcl_log(system, striped=True)
        with persist_window(system):
            res = system.gpu.launch(_insert_kernel, _BLOCKS, _BLOCK_DIM,
                                    (log, entry_words))
        table.add(entry_words * 4, entry_words, res.elapsed * 1e6,
                  res.elapsed * 1e6 / entry_words)
    table.notes.append("per-stripe cost falls with size: the two sentinel "
                       "fences amortise over more data")
    return table


def binomial_required_runs():
    """The engine-served runs of the Section 4.3 counter-example."""
    return [RunRequest(name, mode)
            for name in ("gpKVS", BinomialOptions.name)
            for mode in (Mode.CAP_FS, Mode.CAP_MM, Mode.GPM)]


def binomial_counter_example() -> ExperimentTable:
    """Section 4.3: GPM needs parallelism in *persisting* to win."""
    table = ExperimentTable(
        "ablation_binomial",
        "Counter-example: binomial options vs gpKVS (GPM speedup over CAP)",
        ["workload", "persisting_threads", "gpm_vs_capfs", "gpm_vs_capmm"],
    )
    prefetch(binomial_required_runs())
    kvs_fs = run_workload("gpKVS", Mode.CAP_FS).elapsed
    kvs_mm = run_workload("gpKVS", Mode.CAP_MM).elapsed
    kvs_gpm = run_workload("gpKVS", Mode.GPM).elapsed
    table.add("gpKVS", GpKvs().config.batch_size, kvs_fs / kvs_gpm,
              kvs_mm / kvs_gpm)
    bino_fs = run_workload(BinomialOptions.name, Mode.CAP_FS).elapsed
    bino_mm = run_workload(BinomialOptions.name, Mode.CAP_MM).elapsed
    bino_gpm = run_workload(BinomialOptions.name, Mode.GPM).elapsed
    table.add("binomial options", BinomialOptions().config.n_options,
              bino_fs / bino_gpm, bino_mm / bino_gpm)
    table.notes.append('one persisting thread per threadblock "leaves '
                       'little parallelism to exploit in writing and '
                       'persisting data to PM" (Section 4.3)')
    return table


binomial_counter_example.required_runs = binomial_required_runs

"""Experiment result tables and tab-separated report output.

The paper's artifact emits one tab-separated file per figure/table
(``out_figure9.txt`` etc.); :class:`ExperimentTable` mirrors that: a named
grid of rows that renders to TSV and pretty text, and can be saved under
``reports/``.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field


@dataclass
class ExperimentTable:
    """One reproduced figure or table."""

    name: str
    title: str
    headers: list[str]
    rows: list[list] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add(self, *values) -> None:
        if len(values) != len(self.headers):
            raise ValueError(
                f"row has {len(values)} values, table {self.name} has "
                f"{len(self.headers)} columns"
            )
        self.rows.append(list(values))

    @staticmethod
    def _fmt(value) -> str:
        if isinstance(value, float):
            return f"{value:.4g}"
        return str(value)

    def to_tsv(self) -> str:
        lines = ["\t".join(self.headers)]
        lines += ["\t".join(self._fmt(v) for v in row) for row in self.rows]
        return "\n".join(lines) + "\n"

    def to_text(self) -> str:
        """Aligned human-readable rendering with title and notes."""
        cols = [self.headers] + [[self._fmt(v) for v in row] for row in self.rows]
        widths = [max(len(r[i]) for r in cols) for i in range(len(self.headers))]
        out = [self.title, "-" * len(self.title)]
        for r in cols:
            out.append("  ".join(v.ljust(w) for v, w in zip(r, widths)).rstrip())
        for note in self.notes:
            out.append(f"note: {note}")
        return "\n".join(out) + "\n"

    def to_bars(self, column: str, width: int = 40, log: bool = False) -> str:
        """ASCII bar chart of one numeric column, labelled by first column.

        ``log=True`` scales bars logarithmically (the paper's Fig. 10 uses
        a log axis for the same reason).  Non-numeric cells (e.g. GPUfs's
        ``*``) render as their text.
        """
        import math

        idx = self.headers.index(column)
        values = []
        for row in self.rows:
            v = row[idx]
            values.append(float(v) if isinstance(v, (int, float)) else None)
        numeric = [v for v in values if v is not None and v > 0]
        if not numeric:
            return f"(no numeric data in column {column!r})"
        top = max(numeric)
        scale = (lambda v: math.log10(v * 9 / top + 1)) if log else (lambda v: v / top)
        label_w = max(len(str(r[0])) for r in self.rows)
        out = [f"{self.title}  [{column}]"]
        for row, v in zip(self.rows, values):
            label = str(row[0]).ljust(label_w)
            if v is None or v <= 0:
                out.append(f"{label}  {self._fmt(row[idx])}")
                continue
            bar = "#" * max(1, round(scale(v) * width))
            out.append(f"{label}  {bar} {self._fmt(v)}")
        return "\n".join(out) + "\n"

    def save(self, directory: str = "reports") -> str:
        """Write ``out_<name>.txt`` (TSV) under ``directory``; returns path."""
        os.makedirs(directory, exist_ok=True)
        path = os.path.join(directory, f"out_{self.name}.txt")
        with open(path, "w") as f:
            f.write(self.to_tsv())
        return path

    def column(self, header: str) -> list:
        i = self.headers.index(header)
        return [row[i] for row in self.rows]

    def lookup(self, key, column: str):
        """Value in ``column`` for the row whose first cell equals ``key``."""
        i = self.headers.index(column)
        for row in self.rows:
            if row[0] == key:
                return row[i]
        raise KeyError(f"no row {key!r} in table {self.name}")

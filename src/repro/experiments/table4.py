"""Table 4: write amplification of CAP over GPM.

WA = bytes persisted to PM by CAP-mm / bytes persisted by GPM, for the
same logical work.  The paper measures 39x for gpKVS (the whole
multi-million-entry store is shipped for a sparse batch of SETs), 1.27x
for gpDB INSERT (appended rows are contiguous and host-known), ~20x for
gpDB UPDATE (scattered, kernel-computed rows), and 1.0x for the
checkpointing workloads (the checkpoint is the payload either way).
"""

from __future__ import annotations

from ..workloads import Mode
from .results import ExperimentTable
from .runner import modes_matrix, prefetch, run_workload, workload_names

PAPER_WA = {
    "gpKVS": 39.38, "gpKVS (95:5)": 39.38, "gpDB (I)": 1.27, "gpDB (U)": 19.88,
    "DNN": 1.0, "CFD": 1.0, "BLK": 1.0, "HS": 1.0,
    "BFS": 1.0, "SRAD": 1.0, "PS": 1.0,
}


def required_runs():
    """The deduplicated batch of runs this table consumes."""
    return modes_matrix(Mode.GPM, Mode.CAP_MM)


def table4() -> ExperimentTable:
    prefetch(required_runs())
    table = ExperimentTable(
        "table4", "Table 4: write amplification of CAP-mm over GPM",
        ["workload", "gpm_bytes", "cap_bytes", "write_amplification", "paper_wa"],
    )
    for name in workload_names():
        gpm = run_workload(name, Mode.GPM).bytes_persisted
        cap = run_workload(name, Mode.CAP_MM).bytes_persisted
        table.add(name, gpm, cap, cap / gpm if gpm else float("inf"),
                  PAPER_WA[name])
    table.notes.append(
        "BFS deviates from the paper's 1.0: our CAP realisation ships the "
        "whole cost array every level (Section 3.2's 'entire ... or "
        "sections of it' argument); the paper's CAP-BFS evidently "
        "restricted per-level transfers to the new data"
    )
    return table


table4.required_runs = required_runs

"""Figure 9: speedup of CAP-mm, GPM and GPUfs normalised to CAP-fs.

All eleven workload configurations of the paper's evaluation (gpKVS,
gpKVS 95:5, gpDB INSERT/UPDATE, the four checkpointing workloads, and the
three native ones) run under the four persistence systems.  GPUfs entries
marked ``*`` failed to execute, for the same reasons as in the paper
(fine-grained per-thread I/O deadlocks; >2 GB files unsupported).
"""

from __future__ import annotations

from ..host.gpufs import GpufsUnsupported
from ..workloads import Mode
from .results import ExperimentTable
from .runner import modes_matrix, prefetch, run_workload, workload_names

#: Approximate bar heights read off the paper's Fig. 9, for shape checks.
PAPER_GPM_SPEEDUP = {
    "gpKVS": 8.0, "gpKVS (95:5)": 7.0, "gpDB (I)": 6.0, "gpDB (U)": 8.0,
    "DNN": 16.0, "CFD": 17.0, "BLK": 18.0, "HS": 11.0,
    "BFS": 85.0, "SRAD": 5.0, "PS": 11.0,
}


def required_runs():
    """The deduplicated batch of runs this figure consumes."""
    return modes_matrix(Mode.CAP_FS, Mode.CAP_MM, Mode.GPM, Mode.GPUFS)


def figure9() -> ExperimentTable:
    prefetch(required_runs())
    table = ExperimentTable(
        "figure9", "Figure 9: speedup over CAP-fs",
        ["workload", "cap_mm", "gpm", "gpufs", "paper_gpm"],
    )
    for name in workload_names():
        base = run_workload(name, Mode.CAP_FS).elapsed
        cap_mm = base / run_workload(name, Mode.CAP_MM).elapsed
        gpm = base / run_workload(name, Mode.GPM).elapsed
        try:
            gpufs = base / run_workload(name, Mode.GPUFS).elapsed
        except GpufsUnsupported:
            gpufs = "*"
        table.add(name, cap_mm, gpm, gpufs, PAPER_GPM_SPEEDUP[name])
    table.notes.append("(*) workload unsupported by GPUfs, as in the paper")
    return table


figure9.required_runs = required_runs

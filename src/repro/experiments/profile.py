"""WHISPER-style persistence profiling of the GPMbench workloads.

Nalli et al.'s WHISPER analysis [64] characterised CPU PM applications by
their persistence *behaviour* - how often they order, how much they write,
how local the writes are.  The same lens applied to GPM's workloads
explains every performance result in the paper's evaluation: the profile
below is the quantitative bridge between Table 1's workload taxonomy and
Figs. 9-12.

Per workload (under GPM):

* fences issued, and fences per kilobyte persisted (ordering intensity),
* PM bytes persisted and the media's internal write amplification
  (random/partial-line RMW overhead),
* PCIe transactions per kilobyte (coalescing quality),
* kernels launched (kernel-boundary overhead exposure).
"""

from __future__ import annotations

from ..workloads import Mode
from .results import ExperimentTable
from .runner import run_workload, workload_names


def persistence_profile() -> ExperimentTable:
    table = ExperimentTable(
        "profile",
        "Persistence profile of GPMbench under GPM (WHISPER-style)",
        ["workload", "fences", "fences_per_kb", "pm_kb", "media_amplification",
         "tx_per_kb", "kernels"],
    )
    for name in workload_names():
        result = run_workload(name, Mode.GPM)
        stats = result.window.stats
        kb = stats.pm_bytes_written / 1024
        amplification = (stats.pm_bytes_written_internal / stats.pm_bytes_written
                         if stats.pm_bytes_written else 0.0)
        table.add(
            name,
            stats.system_fences,
            stats.system_fences / kb if kb else 0.0,
            kb,
            amplification,
            stats.pcie_transactions / kb if kb else 0.0,
            stats.kernels_launched,
        )
    table.notes.append(
        "high fences/KB + high media amplification = the transactional "
        "class (Fig. 12's low bandwidths); amplification ~1 + low "
        "fences/KB = the streaming checkpoint class; BFS combines few "
        "bytes with extreme kernel counts"
    )
    return table

"""WHISPER-style persistence profiling of the GPMbench workloads.

Nalli et al.'s WHISPER analysis [64] characterised CPU PM applications by
their persistence *behaviour* - how often they order, how much they write,
how local the writes are.  The same lens applied to GPM's workloads
explains every performance result in the paper's evaluation: the profile
below is the quantitative bridge between Table 1's workload taxonomy and
Figs. 9-12.

Per workload (under GPM):

* fences issued, and fences per kilobyte persisted (ordering intensity),
* PM bytes persisted and the media's internal write amplification
  (random/partial-line RMW overhead),
* PCIe transactions per kilobyte (coalescing quality),
* kernels launched (kernel-boundary overhead exposure).

The numbers are accumulated by a :class:`~repro.sim.trace.ProfileSink`
subscribed to the hardware event bus, windowed to each workload's measured
section - the same figures the windowed stats deltas used to provide, now
derived from the event stream alone.
"""

from __future__ import annotations

from ..workloads import Mode
from .results import ExperimentTable
from .runner import modes_matrix, prefetch, run_workload_profiled, workload_names


def required_runs():
    """The deduplicated batch of profiled runs this table consumes."""
    return modes_matrix(Mode.GPM, profiled=True)


def persistence_profile() -> ExperimentTable:
    prefetch(required_runs())
    table = ExperimentTable(
        "profile",
        "Persistence profile of GPMbench under GPM (WHISPER-style)",
        ["workload", "fences", "fences_per_kb", "pm_kb", "media_amplification",
         "tx_per_kb", "kernels"],
    )
    for name in workload_names():
        _, profile = run_workload_profiled(name, Mode.GPM)
        table.add(
            name,
            profile.fences,
            profile.fences_per_kb,
            profile.pm_kb,
            profile.media_amplification,
            profile.tx_per_kb,
            profile.kernels,
        )
    table.notes.append(
        "high fences/KB + high media amplification = the transactional "
        "class (Fig. 12's low bandwidths); amplification ~1 + low "
        "fences/KB = the streaming checkpoint class; BFS combines few "
        "bytes with extreme kernel counts"
    )
    return table


persistence_profile.required_runs = required_runs

"""Wall-clock benchmark of the experiment engine.

Three legs, each building the same artefact set through :func:`run_all`
into throw-away report directories:

1. **cold sequential** - no disk cache, one process: the pre-engine
   baseline;
2. **cold parallel** - a fresh cache directory, ``jobs`` fork workers:
   what the fan-out buys on first contact;
3. **warm** - the same cache directory again: what the persistent cache
   buys on every later invocation (expected well under 10% of cold).

The in-process memo is cleared between legs so each one pays its own
costs; the engine's prior configuration (disk cache, default jobs) is
restored afterwards.  Results land in ``BENCH_experiments.json``.
"""

from __future__ import annotations

import json
import os
import tempfile
import time

from ..version import __version__
from . import ALL_EXPERIMENTS, requests_for, run_all
from .diskcache import ResultCache
from .runner import (
    clear_cache,
    get_default_jobs,
    get_disk_cache,
    set_default_jobs,
    set_disk_cache,
)

#: Two cheap artefacts exercising both the run engine and the table cache;
#: what ``python -m repro bench --smoke`` (and CI) measures.
SMOKE_ARTEFACTS = ["figure12", "table4"]


def _leg(names: list[str], directory: str, jobs: int) -> float:
    clear_cache()
    start = time.perf_counter()
    run_all(directory=directory, verbose=False, jobs=jobs, names=names)
    return time.perf_counter() - start


def run_bench(jobs: int = 2, smoke: bool = False,
              artefacts: list[str] | None = None,
              out: str = "BENCH_experiments.json",
              cache_dir: str | None = None) -> dict:
    """Measure the three legs; write and return the benchmark record."""
    if artefacts:
        names = list(artefacts)
    else:
        names = SMOKE_ARTEFACTS if smoke else list(ALL_EXPERIMENTS)
    unknown = [n for n in names if n not in ALL_EXPERIMENTS]
    if unknown:
        raise KeyError(f"unknown artefacts: {', '.join(unknown)}")

    prev_cache, prev_jobs = get_disk_cache(), get_default_jobs()
    try:
        with tempfile.TemporaryDirectory(prefix="repro-bench-") as tmp:
            cache_root = cache_dir or os.path.join(tmp, "cache")
            set_disk_cache(None)
            cold_seq = _leg(names, os.path.join(tmp, "seq"), jobs=1)
            set_disk_cache(ResultCache(cache_root))
            cold_par = _leg(names, os.path.join(tmp, "par"), jobs=jobs)
            warm = _leg(names, os.path.join(tmp, "warm"), jobs=jobs)
    finally:
        set_disk_cache(prev_cache)
        set_default_jobs(prev_jobs)
        clear_cache()

    record = {
        "version": __version__,
        "jobs": jobs,
        "smoke": bool(smoke),
        "artefacts": names,
        "runs": len(requests_for(names)),
        "cold_sequential_s": round(cold_seq, 3),
        "cold_parallel_s": round(cold_par, 3),
        "warm_s": round(warm, 3),
        "parallel_speedup": round(cold_seq / cold_par, 3) if cold_par else None,
        "warm_over_cold": round(warm / cold_seq, 4) if cold_seq else None,
    }
    with open(out, "w") as fh:
        json.dump(record, fh, indent=2)
        fh.write("\n")
    return record

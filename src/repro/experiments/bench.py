"""Wall-clock benchmark of the experiment engine.

Three legs, each building the same artefact set through :func:`run_all`
into throw-away report directories:

1. **cold sequential** - no disk cache, one process: the pre-engine
   baseline;
2. **cold parallel** - a fresh cache directory, ``jobs`` fork workers:
   what the fan-out buys on first contact;
3. **warm** - the same cache directory again: what the persistent cache
   buys on every later invocation (expected well under 10% of cold).

The in-process memo is cleared between legs so each one pays its own
costs; the engine's prior configuration (disk cache, default jobs) is
restored afterwards.  Results land in ``BENCH_experiments.json``.
"""

from __future__ import annotations

import json
import os
import tempfile
import time

from ..version import __version__
from . import ALL_EXPERIMENTS, requests_for, run_all
from .diskcache import ResultCache
from .runner import (
    available_cpus,
    clear_cache,
    drain_run_timings,
    effective_jobs,
    get_default_jobs,
    get_disk_cache,
    set_default_jobs,
    set_disk_cache,
)

#: Two cheap artefacts exercising both the run engine and the table cache;
#: what ``python -m repro bench --smoke`` (and CI) measures.
SMOKE_ARTEFACTS = ["figure12", "table4"]


def _leg(names: list[str], directory: str, jobs: int) -> dict:
    clear_cache()
    drain_run_timings()  # discard anything a previous caller left behind
    start = time.perf_counter()
    run_all(directory=directory, verbose=False, jobs=jobs, names=names)
    wall = time.perf_counter() - start
    runs = sorted(drain_run_timings(),
                  key=lambda r: r["wall_s"], reverse=True)
    return {
        "wall_s": round(wall, 3),
        "runs_executed": len(runs),
        "runs_wall_s": round(sum(r["wall_s"] for r in runs), 3),
        "runs_detail": runs,
    }


def execution_lanes() -> dict[str, str]:
    """Which execution lane each converted workload's kernels actually take.

    Probes small configurations of the warp-converted workloads under GPM
    and reports the lane of their last launch.  CI fails the smoke bench
    if any entry silently regresses to ``"scalar"`` - the vectorized lane
    disengaging is a performance bug that no correctness test would catch.
    """
    from ..workloads.base import Mode
    from ..workloads.bfs import BfsConfig, GraphBfs
    from ..workloads.binomial import BinomialConfig, BinomialOptions
    from ..workloads.db import DbConfig, GpDb
    from ..workloads.kvs import GpKvs, KvsConfig
    from ..workloads.prefix_sum import PrefixSum, PrefixSumConfig
    from ..workloads.srad import Srad, SradConfig

    probes = {
        "PS": PrefixSum(PrefixSumConfig(n=1024, block_dim=256)),
        "KVS": GpKvs(KvsConfig(n_sets=256, batch_size=128, set_batches=1)),
        "BINO": BinomialOptions(BinomialConfig(n_options=8, steps=16,
                                               block_dim=32)),
        "SRAD": Srad(SradConfig(n=48, iterations=1)),
        "BFS": GraphBfs(BfsConfig(rows=12, cols=16, engine="kernel")),
        "DB-I": GpDb("insert", DbConfig(capacity_rows=1024, initial_rows=256,
                                        insert_batch=128, insert_batches=1,
                                        block_dim=64)),
        "DB-U": GpDb("update", DbConfig(capacity_rows=512, initial_rows=256,
                                        update_batch=128, update_batches=1,
                                        block_dim=64)),
    }
    lanes = {}
    for name, workload in probes.items():
        workload.run(Mode.GPM)
        lanes[name] = workload._last_lane
    return lanes


def persistency_models() -> dict:
    """The persistency-model landscape the benched engine ran under.

    Records the registered models and each benched mode's model so future
    mode comparisons in the trajectory can attribute results.
    """
    from ..sim.persistency import MODE_REGISTRY, MODEL_REGISTRY

    return {
        "registered": list(MODEL_REGISTRY),
        "mode_to_model": {name: entry.model
                          for name, entry in MODE_REGISTRY.items()},
    }


def run_bench(jobs: int = 2, smoke: bool = False,
              artefacts: list[str] | None = None,
              out: str = "BENCH_experiments.json",
              cache_dir: str | None = None) -> dict:
    """Measure the three legs; write and return the benchmark record."""
    if artefacts:
        names = list(artefacts)
    else:
        names = SMOKE_ARTEFACTS if smoke else list(ALL_EXPERIMENTS)
    unknown = [n for n in names if n not in ALL_EXPERIMENTS]
    if unknown:
        raise KeyError(f"unknown artefacts: {', '.join(unknown)}")

    eff = effective_jobs(jobs)
    prev_cache, prev_jobs = get_disk_cache(), get_default_jobs()
    try:
        with tempfile.TemporaryDirectory(prefix="repro-bench-") as tmp:
            cache_root = cache_dir or os.path.join(tmp, "cache")
            set_disk_cache(None)
            seq = _leg(names, os.path.join(tmp, "seq"), jobs=1)
            set_disk_cache(ResultCache(cache_root))
            # With one usable CPU a "parallel" leg just reruns the
            # sequential baseline and reports a meaningless <1.0 speedup.
            # The leg still runs (the warm leg needs the disk cache
            # filled) but is reported as a cache fill, not a comparison.
            par = _leg(names, os.path.join(tmp, "par"),
                       jobs=1 if eff == 1 else jobs)
            if eff == 1:
                par["cache_fill_only"] = True
            warm = _leg(names, os.path.join(tmp, "warm"), jobs=jobs)
        lanes = execution_lanes()
    finally:
        set_disk_cache(prev_cache)
        set_default_jobs(prev_jobs)
        clear_cache()

    cold_seq, warm_s = seq["wall_s"], warm["wall_s"]
    cold_par = None if eff == 1 else par["wall_s"]
    cpus = available_cpus()
    record = {
        "version": __version__,
        "jobs": jobs,
        "effective_jobs": eff,
        # Host context: parallel-speedup numbers are meaningless without
        # knowing whether the pool was clamped, and why.
        "cpu_count": cpus,
        "jobs_clamp_reason": (None if eff == jobs else
                              f"requested {jobs} workers, affinity allows "
                              f"{cpus} CPUs"),
        "smoke": bool(smoke),
        "artefacts": names,
        "runs": len(requests_for(names)),
        "cold_sequential_s": cold_seq,
        "cold_parallel_s": cold_par,
        "warm_s": warm_s,
        "parallel_leg": "skipped (1 cpu)" if eff == 1 else "ok",
        "parallel_speedup": round(cold_seq / cold_par, 3) if cold_par else None,
        "warm_over_cold": round(warm_s / cold_seq, 4) if cold_seq else None,
        "execution_lanes": lanes,
        "persistency_models": persistency_models(),
        "legs": {
            "cold_sequential": seq,
            "cold_parallel": par,
            "warm": warm,
        },
    }
    with open(out, "w") as fh:
        json.dump(record, fh, indent=2)
        fh.write("\n")
    return record

"""Hierarchical Coalesced Logging (HCL) - Section 5.2, Figs. 4 and 5.

HCL is the cornerstone of libGPM: a write-ahead undo log that scales to
hundreds of thousands of GPU threads with **no locks** and **coalesced**
PCIe/PM traffic.  Two ideas from the paper:

1. *Mimic the execution hierarchy*: the log file is partitioned grid ->
   threadblock -> warp, and within a warp each thread owns a fixed lane, so
   every thread computes a unique insertion offset from its
   (block, warp, lane) identity - no serialisation whatsoever.

2. *Exploit the hardware coalescer*: log entries are **striped** across
   128-byte, cache-line-aligned units in 4-byte chunks, one chunk per lane
   (Fig. 5).  When the 32 lockstep threads of a warp each insert chunk *c*
   of their entry, the 32 stores land in one 128 B line and coalesce into a
   single PCIe transaction and a single Optane drain - the simulator's warp
   drain batches reproduce this merging, so HCL's speedup *emerges* rather
   than being hard-coded.

Failure atomicity: a thread persists its entry's chunks first, then
increments and persists its **tail index**; the tail is the recovery-time
sentinel, so a torn entry (crash between the two persists) is simply never
observed.

Log layout within the PM file::

    [header 64 B][tails: u32 x total_threads][data, 128 B aligned]
    data: per-warp areas of chunks_per_thread stripes;
          stripe j of warp w holds chunk j of all 32 lanes.
"""

from __future__ import annotations

import numpy as np

from ..gpu.kernel import ThreadContext
from .errors import GpmError, LogEmpty, LogFull
from .mapping import GpmRegion, gpm_map

HCL_MAGIC = 0x48434C31  # "HCL1"
_HEADER_BYTES = 64
_CHUNK = 4
_STRIPE = 128  # bytes: one chunk per lane x 32 lanes
_WARP = 32


def _align(value: int, alignment: int) -> int:
    return (value + alignment - 1) // alignment * alignment


def entry_chunks(data) -> np.ndarray:
    """Convert an entry (bytes / ndarray / scalar) to 4-byte chunks."""
    if isinstance(data, (bytes, bytearray, memoryview)):
        raw = np.frombuffer(bytes(data), dtype=np.uint8)
    else:
        raw = np.frombuffer(np.asarray(data).tobytes(), dtype=np.uint8)
    if raw.size == 0:
        raise GpmError("cannot log an empty entry")
    padded = _align(raw.size, _CHUNK)
    if padded != raw.size:
        raw = np.concatenate([raw, np.zeros(padded - raw.size, dtype=np.uint8)])
    return raw.view(np.uint32)


def chunks_needed(entry_bytes: int) -> int:
    return _align(entry_bytes, _CHUNK) // _CHUNK


class HclLog:
    """A hierarchical coalesced log bound to one kernel geometry.

    Created by :func:`repro.core.logging.gpmlog_create_hcl`; the geometry
    (``blocks``, ``threads_per_block``) must match the kernels that insert
    (the paper: "the number of logging threads and their offset into HCL's
    log is known before the kernel starts execution").
    """

    kind = "hcl"

    def __init__(self, gpm_region: GpmRegion) -> None:
        self.gpm = gpm_region
        header = gpm_region.view(np.uint32, 0, _HEADER_BYTES // 4)
        if int(header[0]) != HCL_MAGIC:
            raise GpmError(f"{gpm_region.path!r} is not an HCL log")
        self.blocks = int(header[1])
        self.threads_per_block = int(header[2])
        self.chunks_per_thread = int(header[3])
        self.tails_offset = int(header[4])
        self.data_offset = int(header[5])
        #: Fig. 5 striping on (the default) or the contiguous-layout ablation.
        self.striped = bool(header[6])
        self.warps_per_block = (self.threads_per_block + _WARP - 1) // _WARP
        self.total_threads = self.blocks * self.threads_per_block
        self._tails = gpm_region.array(np.uint32, self.tails_offset, self.total_threads)

    # -- creation ----------------------------------------------------------

    @staticmethod
    def format(gpm_region: GpmRegion, blocks: int, threads_per_block: int,
               striped: bool = True) -> "HclLog":
        """Initialise an HCL header/geometry in a fresh mapping.

        ``striped=False`` lays each thread's chunks out *contiguously* in
        its private area instead of striping them across 128 B units - the
        ablation of Fig. 5's design choice.  The layout is equally lock-free
        but a warp's lockstep chunk-``c`` stores then scatter over 32
        different cache lines instead of coalescing into one.
        """
        if blocks <= 0 or threads_per_block <= 0:
            raise GpmError("log geometry must be positive")
        total_threads = blocks * threads_per_block
        warps = blocks * ((threads_per_block + _WARP - 1) // _WARP)
        # The tails are themselves written warp-coalesced: align them to the
        # 128 B stripe so a warp's 32 tail updates are one transaction.
        tails_offset = _align(_HEADER_BYTES, _STRIPE)
        data_offset = _align(tails_offset + total_threads * 4, _STRIPE)
        usable = gpm_region.size - data_offset
        chunks_per_thread = usable // (warps * _STRIPE)
        if chunks_per_thread < 1:
            raise GpmError(
                f"log of {gpm_region.size} B too small for {warps} warps "
                f"(needs >= {data_offset + warps * _STRIPE} B)"
            )
        header = gpm_region.view(np.uint32, 0, _HEADER_BYTES // 4)
        header[0] = HCL_MAGIC
        header[1] = blocks
        header[2] = threads_per_block
        header[3] = chunks_per_thread
        header[4] = tails_offset
        header[5] = data_offset
        header[6] = 1 if striped else 0
        # The header and zeroed tails must themselves be durable.
        gpm_region.region.persist_range(0, data_offset)
        return HclLog(gpm_region)

    # -- addressing ---------------------------------------------------------

    def _identity(self, ctx: ThreadContext) -> tuple[int, int, int]:
        tid = ctx.tid
        if tid.block_flat >= self.blocks or tid.block_dim.count > self.threads_per_block:
            raise GpmError(
                f"kernel geometry ({tid.grid_dim.count}x{tid.block_dim.count}) exceeds "
                f"log geometry ({self.blocks}x{self.threads_per_block})"
            )
        warp_flat = tid.block_flat * self.warps_per_block + tid.warp_in_block
        return warp_flat, tid.lane, self._thread_slot(tid)

    def _thread_slot(self, tid) -> int:
        return tid.block_flat * self.threads_per_block + tid.thread_flat

    def chunk_offset(self, warp_flat: int, lane: int, chunk_index: int) -> int:
        """Byte offset of a thread's ``chunk_index``-th 4 B chunk (Fig. 5)."""
        warp_base = self.data_offset + warp_flat * self.chunks_per_thread * _STRIPE
        if self.striped:
            return warp_base + chunk_index * _STRIPE + lane * _CHUNK
        # Ablation layout: each thread's chunks are contiguous in a private
        # span; lockstep stores of chunk c scatter over 32 cache lines.
        return warp_base + lane * self.chunks_per_thread * _CHUNK + chunk_index * _CHUNK

    def _tail_offset(self, slot: int) -> int:
        return self.tails_offset + slot * 4

    # -- device API ----------------------------------------------------------

    def insert(self, ctx: ThreadContext, data) -> None:
        """Insert one entry for the calling thread; persists entry then tail.

        The per-chunk stores at lane-strided offsets coalesce across the
        warp into single-cache-line writes - this is where HCL's performance
        comes from.
        """
        chunks = entry_chunks(data)
        warp_flat, lane, slot = self._identity(ctx)
        region = self.gpm.region
        tail = int(ctx.load(region, self._tail_offset(slot), np.uint32))
        if tail + chunks.size > self.chunks_per_thread:
            raise LogFull(
                f"thread slot {slot}: {tail}+{chunks.size} chunks exceed "
                f"capacity {self.chunks_per_thread}"
            )
        for c in range(chunks.size):
            ctx.store(region, self.chunk_offset(warp_flat, lane, tail + c),
                      chunks[c], np.uint32)
        ctx.persist()
        ctx.store(region, self._tail_offset(slot), tail + chunks.size, np.uint32)
        ctx.persist()

    def insert_warp(self, wctx, chunks: np.ndarray, lanes=None) -> None:
        """Warp-vectorized :meth:`insert`: one equal-sized entry per lane.

        ``chunks`` is a ``(k, n)`` uint32 array - entry chunks for each of
        the ``k`` participating lanes.  The per-chunk-index store batches
        land at the same lane-strided offsets as ``k`` scalar inserts, so
        the warp's stores of chunk ``c`` still merge into one 128 B line,
        and the two persists (entry, then tail) keep the same rounds.
        """
        chunks = np.atleast_2d(np.asarray(chunks, dtype=np.uint32))
        sel = wctx.active(lanes)
        k, n = chunks.shape
        if k != sel.size:
            raise GpmError(f"{k} entries for {sel.size} participating lanes")
        if (wctx.block_id >= self.blocks
                or wctx.block_dim > self.threads_per_block):
            raise GpmError(
                f"kernel geometry exceeds log geometry "
                f"({self.blocks}x{self.threads_per_block})"
            )
        thread_flats = wctx.thread_flats[sel]
        warp_flat = wctx.block_id * self.warps_per_block + wctx.warp_in_block
        lane_ids = thread_flats % _WARP
        slots = wctx.block_id * self.threads_per_block + thread_flats
        region = self.gpm.region
        tail_offs = self.tails_offset + slots.astype(np.int64) * 4
        tails = wctx.load(region, tail_offs, np.uint32).astype(np.int64)
        if int(tails.max()) + n > self.chunks_per_thread:
            slot = int(slots[int(np.argmax(tails))])
            raise LogFull(
                f"thread slot {slot}: {int(tails.max())}+{n} chunks exceed "
                f"capacity {self.chunks_per_thread}"
            )
        warp_base = self.data_offset + warp_flat * self.chunks_per_thread * _STRIPE
        for c in range(n):
            if self.striped:
                offs = warp_base + (tails + c) * _STRIPE + lane_ids * _CHUNK
            else:
                offs = (warp_base + lane_ids * self.chunks_per_thread * _CHUNK
                        + (tails + c) * _CHUNK)
            wctx.store(region, offs, chunks[:, c], np.uint32, lanes=sel)
        wctx.persist(sel)
        wctx.store(region, tail_offs, (tails + n).astype(np.uint32), np.uint32,
                   lanes=sel)
        wctx.persist(sel)

    def _warp_identity(self, wctx, sel):
        """Per-lane (warp_flat, lane, slot, tail byte offset) for a warp."""
        if (wctx.block_id >= self.blocks
                or wctx.block_dim > self.threads_per_block):
            raise GpmError(
                f"kernel geometry exceeds log geometry "
                f"({self.blocks}x{self.threads_per_block})"
            )
        thread_flats = wctx.thread_flats[sel]
        warp_flat = wctx.block_id * self.warps_per_block + wctx.warp_in_block
        lane_ids = thread_flats % _WARP
        slots = wctx.block_id * self.threads_per_block + thread_flats
        tail_offs = self.tails_offset + slots.astype(np.int64) * 4
        return warp_flat, lane_ids, slots, tail_offs

    def read_warp(self, wctx, entry_bytes: int,
                  lanes=None) -> tuple[np.ndarray, np.ndarray]:
        """Warp-vectorized :meth:`read` of each lane's most recent entry.

        Where the scalar read raises :class:`LogEmpty` per thread, the warp
        form *filters*: lanes whose tail holds fewer than the entry's chunks
        are charged their tail load (exactly what the scalar thread pays
        before raising) and dropped.  Returns ``(entries, live)`` - a
        ``(k_live, chunks)`` uint32 array and the surviving lane indices.
        """
        n = chunks_needed(entry_bytes)
        sel = wctx.active(lanes)
        warp_flat, lane_ids, _slots, tail_offs = self._warp_identity(wctx, sel)
        region = self.gpm.region
        tails = wctx.load(region, tail_offs, np.uint32).astype(np.int64)
        ok = tails >= n
        live = sel[ok]
        if live.size == 0:
            return np.empty((0, n), dtype=np.uint32), live
        t_ok = tails[ok]
        lane_ok = lane_ids[ok]
        warp_base = self.data_offset + warp_flat * self.chunks_per_thread * _STRIPE
        chunks = np.empty((live.size, n), dtype=np.uint32)
        for c in range(n):
            if self.striped:
                offs = warp_base + (t_ok - n + c) * _STRIPE + lane_ok * _CHUNK
            else:
                offs = (warp_base + lane_ok * self.chunks_per_thread * _CHUNK
                        + (t_ok - n + c) * _CHUNK)
            chunks[:, c] = wctx.load(region, offs, np.uint32)
        return chunks, live

    def remove_warp(self, wctx, entry_bytes: int, lanes=None) -> None:
        """Warp-vectorized :meth:`remove`: pop each lane's latest entry."""
        n = chunks_needed(entry_bytes)
        sel = wctx.active(lanes)
        if sel.size == 0:
            return
        _warp_flat, _lane_ids, slots, tail_offs = self._warp_identity(wctx, sel)
        region = self.gpm.region
        tails = wctx.load(region, tail_offs, np.uint32).astype(np.int64)
        if (tails < n).any():
            slot = int(slots[int(np.argmin(tails))])
            raise LogEmpty(
                f"thread slot {slot}: tail {int(tails.min())} < entry of {n} chunks"
            )
        wctx.store(region, tail_offs, (tails - n).astype(np.uint32), np.uint32,
                   lanes=sel)
        wctx.persist(sel)

    def read(self, ctx: ThreadContext, entry_bytes: int) -> np.ndarray:
        """Read the calling thread's most recent entry (as uint8)."""
        n = chunks_needed(entry_bytes)
        warp_flat, lane, slot = self._identity(ctx)
        region = self.gpm.region
        tail = int(ctx.load(region, self._tail_offset(slot), np.uint32))
        if tail < n:
            raise LogEmpty(f"thread slot {slot}: tail {tail} < entry of {n} chunks")
        chunks = np.empty(n, dtype=np.uint32)
        for c in range(n):
            chunks[c] = ctx.load(region, self.chunk_offset(warp_flat, lane, tail - n + c),
                                 np.uint32)
        return chunks.view(np.uint8)[:entry_bytes].copy()

    def remove(self, ctx: ThreadContext, entry_bytes: int) -> None:
        """Pop the calling thread's most recent entry (persists new tail)."""
        n = chunks_needed(entry_bytes)
        _, _, slot = self._identity(ctx)
        region = self.gpm.region
        tail = int(ctx.load(region, self._tail_offset(slot), np.uint32))
        if tail < n:
            raise LogEmpty(f"thread slot {slot}: tail {tail} < entry of {n} chunks")
        ctx.store(region, self._tail_offset(slot), tail - n, np.uint32)
        ctx.persist()

    def entry_count(self, ctx: ThreadContext, entry_bytes: int) -> int:
        """How many ``entry_bytes``-sized entries this thread has logged."""
        _, _, slot = self._identity(ctx)
        tail = int(ctx.load(self.gpm.region, self._tail_offset(slot), np.uint32))
        return tail // chunks_needed(entry_bytes)

    # -- host API (recovery tooling / verification) ---------------------------

    def host_tail(self, slot: int, persisted: bool = True) -> int:
        view = (self.gpm.persisted_view if persisted else self.gpm.view)(
            np.uint32, self.tails_offset, self.total_threads
        )
        return int(view[slot])

    def host_read_entry(self, slot: int, entry_bytes: int, index: int = -1,
                        persisted: bool = True) -> np.ndarray:
        """Read a logged entry from the host (default: last; from PM image)."""
        n = chunks_needed(entry_bytes)
        tail = self.host_tail(slot, persisted)
        n_entries = tail // n
        if n_entries == 0:
            raise LogEmpty(f"thread slot {slot} has no {entry_bytes}-byte entries")
        if index < 0:
            index += n_entries
        if not 0 <= index < n_entries:
            raise IndexError(f"entry {index} out of range [0, {n_entries})")
        block = slot // self.threads_per_block
        thread = slot % self.threads_per_block
        warp_flat = block * self.warps_per_block + thread // _WARP
        lane = thread % _WARP
        view = (self.gpm.persisted_view if persisted else self.gpm.view)
        chunks = np.empty(n, dtype=np.uint32)
        for c in range(n):
            off = self.chunk_offset(warp_flat, lane, index * n + c)
            chunks[c] = view(np.uint32, off, 1)[0]
        return chunks.view(np.uint8)[:entry_bytes].copy()

    def clear(self) -> None:
        """Truncate every per-thread log (host-side, durable)."""
        self._tails.np[:] = 0
        elapsed = self.gpm.system.machine.optane.write_flush_grain(
            self.gpm.region, self.tails_offset, self.total_threads * 4, grain=256
        )
        self.gpm.system.machine.clock.advance(elapsed)

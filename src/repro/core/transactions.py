"""Transaction-flag helpers for recoverable batched GPU transactions.

Section 5.2's gpKVS example: *"Before the kernel begins execution, a flag is
set and persisted to indicate that a transaction on the GPU is active."*  On
recovery, a clear flag means the crash did not interrupt an active batch and
the logs can simply be truncated; a set flag means the logs must be replayed
(undo).

:class:`TransactionFlag` is that one persisted word, plus the begin/commit
protocol around a batch.
"""

from __future__ import annotations

import numpy as np

from .mapping import GpmRegion, gpm_map

FLAG_IDLE = 0
FLAG_ACTIVE = 1

_FLAG_BYTES = 64  # own cache line


class TransactionFlag:
    """A persisted transaction-active flag on PM."""

    def __init__(self, system, gpm_region: GpmRegion) -> None:
        self.system = system
        self.gpm = gpm_region

    @classmethod
    def create(cls, system, path: str) -> "TransactionFlag":
        region = gpm_map(system, path, _FLAG_BYTES, create=True)
        flag = cls(system, region)
        flag._write(FLAG_IDLE)
        return flag

    @classmethod
    def open(cls, system, path: str) -> "TransactionFlag":
        return cls(system, gpm_map(system, path))

    def _write(self, value: int) -> None:
        region = self.gpm.region
        region.view(np.uint32, 0, 1)[0] = value
        self.system.machine.cpu_store_arrival(region, 0, 4)
        elapsed = self.system.machine.llc.flush_range(region, 0, 4)
        self.system.machine.clock.advance(elapsed)

    def begin(self) -> None:
        """Mark a batched transaction active (persisted before any update)."""
        self._write(FLAG_ACTIVE)

    def commit(self) -> None:
        """Mark the batch complete (persisted after all updates persisted)."""
        self._write(FLAG_IDLE)

    @property
    def active(self) -> bool:
        """Read the *persisted* flag - what recovery would observe."""
        return int(self.gpm.persisted_view(np.uint32, 0, 1)[0]) == FLAG_ACTIVE

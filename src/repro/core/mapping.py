"""PM allocation and UVA mapping: ``gpm_map`` / ``gpm_unmap``.

Section 5.1: *"To allocate memory on PM, a PM-resident file is
memory-mapped using Intel PMDK's libpmem library. Using CUDA's UVA, it maps
the newly allocated memory to the GPU's address space, enabling direct
access to PM via loads/stores."*

A :class:`GpmRegion` is that mapping: a PM-file-backed region visible to
both CPU code (via numpy views) and GPU kernels (via
:class:`~repro.gpu.memory.DeviceArray` element access).
"""

from __future__ import annotations

import numpy as np

from ..gpu.memory import DeviceArray
from ..host.filesystem import FsError, PmFile
from ..sim.memory import Region
from .errors import MappingError


class GpmRegion:
    """A PM-resident file mapped into the GPU's (and CPU's) address space."""

    def __init__(self, system, pm_file: PmFile) -> None:
        self.system = system
        self.file = pm_file
        self.mapped = True

    @property
    def path(self) -> str:
        return self.file.path

    @property
    def region(self) -> Region:
        return self.file.region

    @property
    def size(self) -> int:
        return self.file.size

    def array(self, dtype, offset: int = 0, count: int | None = None) -> DeviceArray:
        """A typed device-accessible array over (part of) the mapping."""
        self._check_mapped()
        return DeviceArray(self.region, dtype, offset, count)

    def view(self, dtype, offset: int = 0, count: int | None = None) -> np.ndarray:
        """CPU-side numpy view of the visible image."""
        self._check_mapped()
        return self.region.view(dtype, offset, count)

    def persisted_view(self, dtype, offset: int = 0, count: int | None = None) -> np.ndarray:
        """What would survive a crash right now (for tests/verification)."""
        return self.region.persisted_view(dtype, offset, count)

    def _check_mapped(self) -> None:
        if not self.mapped:
            raise MappingError(f"region {self.path!r} was unmapped")


def gpm_map(system, path: str, size: int | None = None, create: bool = False) -> GpmRegion:
    """Map a PM-resident file into the GPU's virtual address space.

    With ``create=True`` a new file of ``size`` bytes is created (zeroed);
    otherwise an existing file is opened - and ``size``, if given, must
    match.  Returns a :class:`GpmRegion` whose contents survive crashes.
    """
    if create:
        if size is None or size <= 0:
            raise MappingError("creating a mapping requires a positive size")
        if system.fs.exists(path):
            raise MappingError(f"file exists: {path!r}")
        f = system.fs.create(path, size)
    else:
        try:
            f = system.fs.open(path)
        except FsError as exc:
            raise MappingError(str(exc)) from exc
        if size is not None and size != f.size:
            raise MappingError(
                f"size mismatch for {path!r}: file has {f.size}, caller expects {size}"
            )
    # Mapping cost: page-table setup for the UVA window.
    system.machine.clock.advance(system.config.syscall_s)
    return GpmRegion(system, f)


def gpm_unmap(system, region: GpmRegion) -> None:
    """Tear down a mapping.  File contents remain on PM."""
    if not region.mapped:
        raise MappingError(f"region {region.path!r} already unmapped")
    region.mapped = False
    system.machine.clock.advance(system.config.syscall_s)

"""Persistency primitives: persist windows (DDIO control) and fences.

Section 5.1: *"Our library provides gpm_persist_begin() and
gpm_persist_end(), that switches DDIO off and on for the GPU by writing to
the I/O register perfctrlsts_0. The persistence guarantees by the library
are valid only inside the regions marked by these routines, typically placed
before and after a kernel launch."*

What a window *does* is the machine's persistency model's decision
(:mod:`repro.sim.persistency`): under the strict and epoch models it is the
DDIO toggle above; on an eADR platform (Section 3.3) it is a no-op - data is
durable once it reaches the LLC, so DDIO can stay on (the GPM-eADR
configuration of Fig. 10); under the adaptive model it delimits the scope
within which write-path selection is active, and window exit flushes any
DRAM/LLC-staged writes.
"""

from __future__ import annotations

from contextlib import contextmanager

from ..gpu.kernel import ThreadContext
from ..sim.persistency import DDIO_TOGGLE_S as _DDIO_TOGGLE_S  # noqa: F401 (re-export)


def gpm_persist_begin(system) -> None:
    """Enter a persistence window.

    Call from the CPU before launching kernels that persist to PM.  The
    machine's persistency model decides the semantics; under the default
    strict model this disables DDIO - without it (and without eADR),
    system-scope fences complete at the volatile LLC and guarantee only
    visibility, not durability.
    """
    system.machine.persistency.window_begin(system.machine)


def gpm_persist_end(system) -> None:
    """Leave the persistence window (model-defined: restore DDIO, flush
    staged writes, or nothing)."""
    system.machine.persistency.window_end(system.machine)


@contextmanager
def persist_window(system):
    """Context manager equivalent of gpm_persist_begin/gpm_persist_end."""
    gpm_persist_begin(system)
    try:
        yield system
    finally:
        gpm_persist_end(system)


def gpm_persist(ctx: ThreadContext) -> None:
    """Device-side persist: guarantee this thread's prior PM writes.

    Implemented with the system-scope fence (``__threadfence_system()``),
    which inside a persistence window completes only once writes have
    reached the host memory controllers - the ADR persistence domain.
    """
    ctx.persist()

"""Persistency primitives: persist windows (DDIO control) and fences.

Section 5.1: *"Our library provides gpm_persist_begin() and
gpm_persist_end(), that switches DDIO off and on for the GPU by writing to
the I/O register perfctrlsts_0. The persistence guarantees by the library
are valid only inside the regions marked by these routines, typically placed
before and after a kernel launch."*

On an eADR platform (Section 3.3) the window is a no-op: data is durable
once it reaches the LLC, so DDIO can stay on - this is exactly the GPM-eADR
configuration of Fig. 10.
"""

from __future__ import annotations

from contextlib import contextmanager

from ..gpu.kernel import ThreadContext

#: Cost of the privileged I/O-register write that flips DDIO.
_DDIO_TOGGLE_S = 2.0e-6


def gpm_persist_begin(system) -> None:
    """Enter a persistence window: disable DDIO for GPU writes.

    Call from the CPU before launching kernels that persist to PM.  Without
    this (and without eADR), system-scope fences complete at the volatile
    LLC and guarantee only visibility, not durability.
    """
    if not system.eadr:
        system.machine.set_ddio(False)
        system.machine.clock.advance(_DDIO_TOGGLE_S)


def gpm_persist_end(system) -> None:
    """Leave the persistence window: restore DDIO."""
    if not system.eadr:
        system.machine.set_ddio(True)
        system.machine.clock.advance(_DDIO_TOGGLE_S)


@contextmanager
def persist_window(system):
    """Context manager equivalent of gpm_persist_begin/gpm_persist_end."""
    gpm_persist_begin(system)
    try:
        yield system
    finally:
        gpm_persist_end(system)


def gpm_persist(ctx: ThreadContext) -> None:
    """Device-side persist: guarantee this thread's prior PM writes.

    Implemented with the system-scope fence (``__threadfence_system()``),
    which inside a persistence window completes only once writes have
    reached the host memory controllers - the ADR persistence domain.
    """
    ctx.persist()

"""libGPM - the paper's CUDA library, reimplemented over the simulator.

Exposes the full API of Table 2:

===============  ============================================================
Primitive        gpm_map, gpm_unmap, gpm_persist_begin/gpm_persist_end,
                 gpm_persist (device-side)
Logging          gpmlog_create_conv, gpmlog_create_hcl, gpmlog_open,
                 gpmlog_close, gpmlog_insert, gpmlog_read, gpmlog_remove,
                 gpmlog_clear
Checkpointing    gpmcp_create, gpmcp_open, gpmcp_close, gpmcp_register,
                 gpmcp_checkpoint, gpmcp_restore
===============  ============================================================
"""

from .checkpoint import (
    Gpmcp,
    gpmcp_checkpoint,
    gpmcp_close,
    gpmcp_create,
    gpmcp_open,
    gpmcp_register,
    gpmcp_restore,
)
from .conventional import ConventionalLog
from .errors import CheckpointError, GpmError, LogEmpty, LogFull, MappingError
from .hcl import HclLog, chunks_needed, entry_chunks
from .inspect import FileReport, classify_file, format_survey, pending_recovery, survey
from .logging import (
    GpmLog,
    gpmlog_clear,
    gpmlog_close,
    gpmlog_create_conv,
    gpmlog_create_hcl,
    gpmlog_insert,
    gpmlog_open,
    gpmlog_read,
    gpmlog_remove,
)
from .mapping import GpmRegion, gpm_map, gpm_unmap
from .persist import gpm_persist, gpm_persist_begin, gpm_persist_end, persist_window
from .recovery import RecoveryAction, RecoveryManager, RecoveryReport
from .util import gpm_memcpy, gpm_memset
from .transactions import FLAG_ACTIVE, FLAG_IDLE, TransactionFlag

__all__ = [
    "CheckpointError",
    "ConventionalLog",
    "FileReport",
    "classify_file",
    "format_survey",
    "gpm_memcpy",
    "gpm_memset",
    "pending_recovery",
    "RecoveryAction",
    "RecoveryManager",
    "RecoveryReport",
    "survey",
    "FLAG_ACTIVE",
    "FLAG_IDLE",
    "GpmError",
    "GpmLog",
    "GpmRegion",
    "Gpmcp",
    "HclLog",
    "LogEmpty",
    "LogFull",
    "MappingError",
    "TransactionFlag",
    "chunks_needed",
    "entry_chunks",
    "gpm_map",
    "gpm_persist",
    "gpm_persist_begin",
    "gpm_persist_end",
    "gpm_unmap",
    "gpmcp_checkpoint",
    "gpmcp_close",
    "gpmcp_create",
    "gpmcp_open",
    "gpmcp_register",
    "gpmcp_restore",
    "gpmlog_clear",
    "gpmlog_close",
    "gpmlog_create_conv",
    "gpmlog_create_hcl",
    "gpmlog_insert",
    "gpmlog_open",
    "gpmlog_read",
    "gpmlog_remove",
    "persist_window",
]

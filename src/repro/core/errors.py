"""libGPM error types."""

from __future__ import annotations


class GpmError(Exception):
    """Base class for libGPM failures."""


class LogFull(GpmError):
    """A thread attempted to insert past its share of the log."""


class LogEmpty(GpmError):
    """A thread attempted to read/remove from an empty per-thread log."""


class CheckpointError(GpmError):
    """Checkpoint creation, registration, or restoration failed."""


class MappingError(GpmError):
    """gpm_map/gpm_unmap misuse (missing file, size mismatch, ...)."""

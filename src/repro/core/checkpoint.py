"""Checkpointing to PM for iterative GPU applications - Section 5.3, Fig. 7.

A checkpoint file groups semantically related data structures; groups are
checkpointed and restored independently.  The library double-buffers every
group on PM: a *consistent* copy and a *working* copy.  ``gpmcp_checkpoint``
streams the registered device data into the working copy with a GPU copy
kernel (128 B-aligned, coalesced - the fast path of Fig. 12), persists it,
and then atomically flips the group's selector; a crash mid-checkpoint
therefore always leaves the previous consistent copy recoverable.

As in the paper, registration order is the restore-time identity: "the
library relies on the order of registration of data structures to a
checkpoint for identifying which data structure a checkpointed structure
should be restored to".  Pointer-based structures cannot be checkpointed.

File layout::

    [header 64 B][selectors: u32 x groups][group 0 copy A | copy B]...
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..sim.events import TraceMark
from ..sim.memory import MemKind, Region
from .errors import CheckpointError
from .hcl import _align
from .mapping import GpmRegion, gpm_map, gpm_unmap
from .persist import gpm_persist_begin, gpm_persist_end

CP_MAGIC = 0x47504350  # "GPCP"
_HEADER_BYTES = 64
_ELEMENT_ALIGN = 128


@dataclass
class _Element:
    """One registered data structure within a group."""

    region: Region
    offset: int
    size: int
    cp_offset: int  # byte offset within the group copy


@dataclass
class _Group:
    elements: list[_Element] = field(default_factory=list)
    used: int = 0


class Gpmcp:
    """An open checkpoint handle (``gpmcp`` in the paper's API)."""

    def __init__(self, system, gpm_region: GpmRegion) -> None:
        self.system = system
        self.gpm = gpm_region
        header = gpm_region.view(np.uint32, 0, _HEADER_BYTES // 4)
        if int(header[0]) != CP_MAGIC:
            raise CheckpointError(f"{gpm_region.path!r} is not a checkpoint file")
        self.groups = int(header[1])
        self.group_bytes = int(header[2])
        self.max_elements = int(header[3])
        self.selector_offset = int(header[4])
        self.data_offset = int(header[5])
        self._registry = [_Group() for _ in range(self.groups)]

    # -- layout ------------------------------------------------------------

    @staticmethod
    def required_file_size(size: int, groups: int) -> int:
        group_bytes = _align(size, _ELEMENT_ALIGN)
        selector_offset = _HEADER_BYTES
        data_offset = _align(selector_offset + groups * 4, _ELEMENT_ALIGN)
        return data_offset + 2 * groups * group_bytes

    @staticmethod
    def format(system, gpm_region: GpmRegion, size: int, elements: int, groups: int) -> "Gpmcp":
        if groups <= 0 or elements <= 0 or size <= 0:
            raise CheckpointError("size, elements and groups must be positive")
        group_bytes = _align(size, _ELEMENT_ALIGN)
        selector_offset = _HEADER_BYTES
        data_offset = _align(selector_offset + groups * 4, _ELEMENT_ALIGN)
        needed = data_offset + 2 * groups * group_bytes
        if gpm_region.size < needed:
            raise CheckpointError(
                f"checkpoint file of {gpm_region.size} B too small (needs {needed} B)"
            )
        header = gpm_region.view(np.uint32, 0, _HEADER_BYTES // 4)
        header[0] = CP_MAGIC
        header[1] = groups
        header[2] = group_bytes
        header[3] = elements
        header[4] = selector_offset
        header[5] = data_offset
        gpm_region.region.persist_range(0, data_offset)
        return Gpmcp(system, gpm_region)

    def _copy_base(self, group: int, copy: int) -> int:
        return self.data_offset + (group * 2 + copy) * self.group_bytes

    def _selector(self, group: int) -> int:
        return int(self.gpm.view(np.uint32, self.selector_offset + group * 4, 1)[0])

    # -- registration --------------------------------------------------------

    def register(self, region_or_array, size: int | None = None, group: int = 0,
                 offset: int = 0) -> None:
        """Register a device data structure with a checkpoint group.

        Accepts a :class:`~repro.gpu.memory.DeviceArray` (size inferred) or
        a raw region + offset/size.  Order of registration matters for
        restore, exactly as in the paper.
        """
        if not 0 <= group < self.groups:
            raise CheckpointError(f"group {group} out of range [0, {self.groups})")
        g = self._registry[group]
        if len(g.elements) >= self.max_elements:
            raise CheckpointError(f"group {group} already has {self.max_elements} elements")
        if hasattr(region_or_array, "region") and hasattr(region_or_array, "nbytes"):
            region = region_or_array.region
            offset = region_or_array.offset
            size = region_or_array.nbytes if size is None else size
        else:
            region = region_or_array
            if size is None:
                size = region.size - offset
        if region.kind is MemKind.PM:
            raise CheckpointError(
                "checkpointed structures live in volatile memory; PM-resident data "
                "should use native persistence instead"
            )
        cp_offset = _align(g.used, _ELEMENT_ALIGN)
        if cp_offset + size > self.group_bytes:
            raise CheckpointError(
                f"group {group} capacity {self.group_bytes} B exceeded "
                f"({cp_offset} + {size})"
            )
        g.elements.append(_Element(region, offset, size, cp_offset))
        g.used = cp_offset + size

    # -- checkpoint / restore ---------------------------------------------------

    def checkpoint(self, group: int = 0) -> float:
        """Stream the group's registered data to PM and flip the selector.

        Launches the library's GPU copy kernel per element (coalesced
        streaming writes), persists, then atomically marks the working copy
        consistent.  Returns elapsed simulated seconds.
        """
        g = self._group(group)
        if not g.elements:
            raise CheckpointError(f"group {group} has no registered elements")
        machine = self.system.machine
        start = machine.clock.now
        machine.events.emit(TraceMark(category="gpmcp", label=f"checkpoint:group{group}"))
        gpm_persist_begin(self.system)
        try:
            working = 1 - self._selector(group)
            base = self._copy_base(group, working)
            for elt in g.elements:
                self.system.gpu.stream_copy(
                    self.gpm.region, base + elt.cp_offset,
                    elt.region, elt.offset, elt.size, persist=True,
                )
            # Atomic flip: one persisted word names the consistent copy.
            self.system.gpu.store_and_persist_value(
                self.gpm.region, self.selector_offset + group * 4, working, np.uint32
            )
        finally:
            gpm_persist_end(self.system)
        return machine.clock.now - start

    def restore(self, group: int = 0) -> float:
        """Copy the group's consistent PM copy back into device memory.

        The caller must have re-registered the same structures in the same
        order.  Returns elapsed simulated seconds.
        """
        g = self._group(group)
        if not g.elements:
            raise CheckpointError(f"group {group} has no registered elements")
        machine = self.system.machine
        start = machine.clock.now
        machine.events.emit(TraceMark(category="gpmcp", label=f"restore:group{group}"))
        consistent = self._selector(group)
        base = self._copy_base(group, consistent)
        for elt in g.elements:
            self.system.gpu.stream_copy(
                elt.region, elt.offset,
                self.gpm.region, base + elt.cp_offset, elt.size, persist=False,
            )
        return machine.clock.now - start

    def _group(self, group: int) -> _Group:
        if not 0 <= group < self.groups:
            raise CheckpointError(f"group {group} out of range [0, {self.groups})")
        return self._registry[group]


# -- the paper's function-style API ------------------------------------------


def gpmcp_create(system, path: str, size: int, elements: int, groups: int) -> Gpmcp:
    """Create a checkpoint file; ``size`` is the capacity of each group."""
    file_size = Gpmcp.required_file_size(size, groups)
    region = gpm_map(system, path, file_size, create=True)
    return Gpmcp.format(system, region, size, elements, groups)


def gpmcp_open(system, path: str) -> Gpmcp:
    """Open an existing checkpoint file (e.g. after a crash)."""
    return Gpmcp(system, gpm_map(system, path))


def gpmcp_close(system, cp: Gpmcp) -> None:
    gpm_unmap(system, cp.gpm)


def gpmcp_register(cp: Gpmcp, region_or_array, size: int | None = None,
                   group: int = 0, offset: int = 0) -> None:
    cp.register(region_or_array, size=size, group=group, offset=offset)


def gpmcp_checkpoint(cp: Gpmcp, group: int = 0) -> float:
    return cp.checkpoint(group)


def gpmcp_restore(cp: Gpmcp, group: int = 0) -> float:
    return cp.restore(group)

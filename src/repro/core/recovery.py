"""System-wide recovery orchestration.

A crashed process restarting over a PM filesystem faces many structures at
once: hash maps mid-batch, rings with stale cursors, logs left over from
committed transactions.  :class:`RecoveryManager` turns the inspector's
survey (:mod:`repro.core.inspect`) into an ordered recovery plan and
executes it:

* ``hashmap`` files recover through
  :meth:`repro.pstruct.PersistentHashMap.recover` (undo if their flag is
  active);
* ``ring`` files repair their cursors;
* logs whose sibling transaction flag is idle are stale and truncated;
* unknown structures are reported, not touched.

Applications with bespoke recovery (the GPMbench workloads) register a
handler by path prefix; handlers run before the generic rules claim the
file.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from .inspect import FileReport, survey
from .logging import gpmlog_clear, gpmlog_open


@dataclass
class RecoveryAction:
    """One step of an executed recovery plan."""

    path: str
    action: str          # "handler" | "hashmap-undo" | "ring-cursor" |
                         # "truncate-stale-log" | "skip"
    detail: str = ""
    elapsed: float = 0.0


@dataclass
class RecoveryReport:
    actions: list[RecoveryAction] = field(default_factory=list)
    #: Where this crash state came from (e.g. a litmus test's generating
    #: ``seed``/``index``/``config``) - carried so a failure downstream can
    #: print its one-line reproducer without re-running the exploration.
    #: Also surfaced as ``paths("provenance")`` rows.
    provenance: dict = field(default_factory=dict)

    @property
    def total_elapsed(self) -> float:
        return sum(a.elapsed for a in self.actions)

    def paths(self, action: str) -> list[str]:
        """Every path the plan resolved with ``action`` (e.g. ``"skip"``)."""
        return [a.path for a in self.actions if a.action == action]

    def action_for(self, path: str) -> RecoveryAction | None:
        """The action taken for ``path``, if the survey saw it."""
        for a in self.actions:
            if a.path == path:
                return a
        return None

    def describe(self) -> str:
        lines = ["recovery report:"]
        for a in self.actions:
            extra = f" ({a.detail})" if a.detail else ""
            lines.append(f"  {a.path}: {a.action}{extra} "
                         f"[{a.elapsed * 1e6:.1f} us]")
        lines.append(f"total: {self.total_elapsed * 1e6:.1f} us")
        return "\n".join(lines)


class RecoveryManager:
    """Bring every durable libGPM structure back to consistency."""

    def __init__(self, system) -> None:
        self.system = system
        self._handlers: list[tuple[str, Callable]] = []

    def register_handler(self, path_prefix: str,
                         handler: Callable[[object, FileReport], float]) -> None:
        """Claim files under ``path_prefix`` for application recovery.

        ``handler(system, report)`` must return its elapsed simulated
        seconds; it runs once per matching file, before the generic rules.
        """
        self._handlers.append((path_prefix, handler))

    # ------------------------------------------------------------------

    def run(self, provenance: dict | None = None) -> RecoveryReport:
        """Survey PM, recover everything recoverable, report each step.

        ``provenance`` (e.g. ``{"seed": 7, "config": "strict:window:adr"}``)
        is recorded on the report and mirrored as zero-cost ``provenance``
        actions, so ``report.paths("provenance")`` names the generating
        coordinates of the crash state being recovered.
        """
        report = RecoveryReport()
        if provenance:
            report.provenance = dict(provenance)
            for key, value in provenance.items():
                report.actions.append(RecoveryAction(
                    f"{key}={value}", "provenance"))
        reports = survey(self.system)
        flags_active = {
            r.path: r.detail.get("transaction_active", False)
            for r in reports if r.kind == "tx-flag"
        }
        claimed: set[str] = set()
        for file_report in reports:
            handler = self._handler_for(file_report.path)
            if handler is not None:
                elapsed = handler(self.system, file_report)
                report.actions.append(RecoveryAction(
                    file_report.path, "handler", elapsed=elapsed))
                claimed.add(file_report.path)
        # Structured types first: they own (and clear) their sibling
        # flag/log files, which must not then be treated as orphans.
        for file_report in reports:
            if file_report.path in claimed:
                continue
            if file_report.kind in ("hashmap", "ring"):
                report.actions.append(self._generic(file_report, flags_active))
                claimed.add(file_report.path)
                for sibling in (f"{file_report.path}.flag",
                                f"{file_report.path}.log"):
                    if any(r.path == sibling for r in reports):
                        claimed.add(sibling)
                        report.actions.append(RecoveryAction(
                            sibling, "skip", f"owned by {file_report.path}"))
        for file_report in reports:
            if file_report.path in claimed:
                continue
            report.actions.append(self._generic(file_report, flags_active))
        return report

    def _handler_for(self, path: str):
        for prefix, handler in self._handlers:
            if path.startswith(prefix):
                return handler
        return None

    def _generic(self, file_report: FileReport,
                 flags_active: dict[str, bool]) -> RecoveryAction:
        system = self.system
        start = system.machine.clock.now
        kind = file_report.kind
        path = file_report.path
        if kind == "hashmap":
            from ..pstruct import PersistentHashMap

            pmap = PersistentHashMap.open(system, path)
            undone = pmap._flag.active
            pmap.recover()
            return RecoveryAction(path, "hashmap-undo",
                                  "interrupted batch undone" if undone
                                  else "clean",
                                  system.machine.clock.now - start)
        if kind == "ring":
            from ..pstruct import PersistentRing

            ring = PersistentRing.open(system, path)
            next_ticket = ring.recover()
            return RecoveryAction(path, "ring-cursor",
                                  f"cursor at {next_ticket}",
                                  system.machine.clock.now - start)
        if kind in ("hcl-log", "conv-log"):
            flag_path = path.replace(".log", ".flag")
            if flags_active.get(flag_path):
                # An app-specific undo owns this log; without a registered
                # handler we must not destroy the evidence.
                return RecoveryAction(path, "skip",
                                      "active transaction needs its "
                                      "application's recovery kernel")
            has_entries = (file_report.detail.get("threads_with_entries")
                           or file_report.detail.get("non_empty_partitions"))
            if has_entries:
                gpmlog_clear(gpmlog_open(system, path))
                return RecoveryAction(path, "truncate-stale-log",
                                      "committed leftovers",
                                      system.machine.clock.now - start)
            return RecoveryAction(path, "skip", "empty")
        if kind == "tx-flag":
            # Flags are cleared by whichever structure they guard.
            return RecoveryAction(path, "skip", "owned by its structure")
        if kind == "checkpoint":
            return RecoveryAction(path, "skip",
                                  "double-buffered: always consistent")
        return RecoveryAction(path, "skip", "unrecognised contents")

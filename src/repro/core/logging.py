"""The gpmlog_* API of Table 2 - front-ends over HCL and conventional logs.

These functions mirror the paper's CUDA signatures: create/open/close from
the CPU, insert/read/remove from GPU threads, clear from the CPU.  The log
flavour (HCL vs conventional) is recorded in the file header so
:func:`gpmlog_open` can reconstruct the right object after a crash.
"""

from __future__ import annotations

import numpy as np

from ..gpu.kernel import ThreadContext
from ..sim.events import TraceMark
from .conventional import CONV_MAGIC, ConventionalLog
from .errors import GpmError
from .hcl import HCL_MAGIC, HclLog
from .mapping import gpm_map, gpm_unmap

GpmLog = HclLog | ConventionalLog


def gpmlog_create_hcl(system, path: str, size: int, blocks: int,
                      threads_per_block: int) -> HclLog:
    """Create a Hierarchical Coalesced Log sized for a kernel geometry."""
    system.events.emit(TraceMark(category="gpmlog", label=f"create_hcl:{path}"))
    region = gpm_map(system, path, size, create=True)
    return HclLog.format(region, blocks, threads_per_block)


def gpmlog_create_conv(system, path: str, size: int, n_partitions: int) -> ConventionalLog:
    """Create a conventional (lock-based, partitioned) log."""
    system.events.emit(TraceMark(category="gpmlog", label=f"create_conv:{path}"))
    region = gpm_map(system, path, size, create=True)
    return ConventionalLog.format(region, n_partitions)


def gpmlog_open(system, path: str) -> GpmLog:
    """Open an existing log, dispatching on its persisted header magic."""
    system.events.emit(TraceMark(category="gpmlog", label=f"open:{path}"))
    region = gpm_map(system, path)
    magic = int(region.view(np.uint32, 0, 1)[0])
    if magic == HCL_MAGIC:
        return HclLog(region)
    if magic == CONV_MAGIC:
        return ConventionalLog(region)
    raise GpmError(f"{path!r} does not contain a libGPM log (magic {magic:#x})")


def gpmlog_close(system, log: GpmLog) -> None:
    """Unmap a log.  Its contents remain on PM."""
    gpm_unmap(system, log.gpm)


def gpmlog_insert(ctx: ThreadContext, log: GpmLog, data, partition: int = -1):
    """Insert a log entry from a GPU thread (persisted on return).

    For HCL logs the entry lands at the thread's hierarchy-derived offset;
    ``partition`` is ignored.  For conventional logs the entry is appended
    to ``partition`` (default: the caller's block id modulo partitions)
    under that partition's lock.
    """
    if isinstance(log, HclLog):
        log.insert(ctx, data)
    else:
        log.insert(ctx, data, partition)


def gpmlog_read(ctx: ThreadContext, log: GpmLog, size: int, partition: int = -1) -> np.ndarray:
    """Read the most recent entry (thread-local for HCL)."""
    if isinstance(log, HclLog):
        return log.read(ctx, size)
    return log.read(ctx, size, partition)


def gpmlog_remove(ctx: ThreadContext, log: GpmLog, size: int, partition: int = -1) -> None:
    """Remove the most recent entry (persisted on return)."""
    if isinstance(log, HclLog):
        log.remove(ctx, size)
    else:
        log.remove(ctx, size, partition)


def gpmlog_clear(log: GpmLog, partition: int = -1) -> None:
    """Truncate the log (host-side, durable)."""
    if isinstance(log, HclLog):
        log.clear()
    else:
        log.clear(partition)

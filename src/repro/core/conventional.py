"""Conventional distributed logging: the baseline HCL is measured against.

Section 5.2: prior work scales CPU logging by keeping multiple log files
(*partitions*); inserts into different partitions proceed concurrently, but
inserts into the same partition are **serialised by a lock**.  libGPM keeps
this flavour for small metadata (``gpmlog_create_conv``), and the paper's
Fig. 11 benchmarks HCL against it.

The simulator charges each insert the critical-section cost of acquiring a
PM-resident lock over PCIe and appending; the accumulated per-partition
serial time lower-bounds the kernel's elapsed time
(:meth:`~repro.gpu.kernel.ThreadContext.charge_serial_time`), which is what
makes conventional-log latency grow with thread count (Fig. 11b) while
HCL's stays flat.

Layout::

    [header 64 B][counts: u32 x partitions][partition areas, 128 B aligned]
"""

from __future__ import annotations

import numpy as np

from ..gpu.kernel import ThreadContext
from .errors import GpmError, LogEmpty, LogFull
from .hcl import _align, entry_chunks
from .mapping import GpmRegion

CONV_MAGIC = 0x434F4E56  # "CONV"
_HEADER_BYTES = 64


class ConventionalLog:
    """A lock-based, partitioned append log on PM."""

    kind = "conv"

    def __init__(self, gpm_region: GpmRegion) -> None:
        self.gpm = gpm_region
        header = gpm_region.view(np.uint32, 0, _HEADER_BYTES // 4)
        if int(header[0]) != CONV_MAGIC:
            raise GpmError(f"{gpm_region.path!r} is not a conventional log")
        self.partitions = int(header[1])
        self.partition_bytes = int(header[2])
        self.counts_offset = int(header[3])
        self.data_offset = int(header[4])
        # Serialisation bookkeeping: per-partition critical-section time
        # accumulated within the current kernel (reset on each new launch).
        self._serial: np.ndarray = np.zeros(self.partitions)
        self._serial_epoch = -1

    @staticmethod
    def format(gpm_region: GpmRegion, partitions: int) -> "ConventionalLog":
        if partitions <= 0:
            raise GpmError("partitions must be positive")
        counts_offset = _HEADER_BYTES
        data_offset = _align(counts_offset + partitions * 4, 128)
        usable = gpm_region.size - data_offset
        partition_bytes = usable // partitions // 128 * 128
        if partition_bytes < 128:
            raise GpmError(f"log of {gpm_region.size} B too small for {partitions} partitions")
        header = gpm_region.view(np.uint32, 0, _HEADER_BYTES // 4)
        header[0] = CONV_MAGIC
        header[1] = partitions
        header[2] = partition_bytes
        header[3] = counts_offset
        header[4] = data_offset
        gpm_region.region.persist_range(0, data_offset)
        return ConventionalLog(gpm_region)

    # -- internals -----------------------------------------------------------

    def _partition_for(self, ctx: ThreadContext, partition: int) -> int:
        if partition < 0:
            # Auto-partitioning assigns threadblocks to partitions, the
            # usual distributed-log arrangement of [9, 11, 94].
            return ctx.block_id % self.partitions
        if partition >= self.partitions:
            raise GpmError(f"partition {partition} out of range [0, {self.partitions})")
        return partition

    def _count_offset(self, p: int) -> int:
        return self.counts_offset + p * 4

    def _charge_lock(self, ctx: ThreadContext, p: int, entry_bytes: int) -> None:
        """Account the serialised critical section of one locked insert."""
        machine = self.gpm.system.machine
        epoch = machine.stats.kernels_launched
        if epoch != self._serial_epoch:
            self._serial[:] = 0.0
            self._serial_epoch = epoch
        cfg = machine.config
        # Lock acquire and release are PM atomics over PCIe, and the entry
        # must be *persisted* (another round trip) before the lock can be
        # released - undo entries may not be torn by a successor's append.
        critical = 3 * cfg.pcie_rtt_s + entry_bytes / cfg.pcie_bw
        self._serial[p] += critical
        ctx.charge_serial_time(float(self._serial[p]))

    # -- device API ------------------------------------------------------------

    def insert(self, ctx: ThreadContext, data, partition: int = -1) -> None:
        """Append an entry to a partition under its lock; persists entry+count."""
        chunks = entry_chunks(data)
        nbytes = chunks.size * 4
        p = self._partition_for(ctx, partition)
        region = self.gpm.region
        self._charge_lock(ctx, p, nbytes)
        count = int(ctx.load(region, self._count_offset(p), np.uint32))
        if count + nbytes > self.partition_bytes:
            raise LogFull(f"partition {p}: {count}+{nbytes} exceeds {self.partition_bytes}")
        base = self.data_offset + p * self.partition_bytes
        ctx.store(region, base + count, chunks, np.uint32)
        ctx.persist()
        ctx.store(region, self._count_offset(p), count + nbytes, np.uint32)
        ctx.persist()

    def insert_warp(self, wctx, chunks, partition: int = -1, lanes=None) -> None:
        """Warp form of :meth:`insert`: ``chunks`` is ``(k, n)`` uint32.

        Same-partition inserts are serialised by the lock, so lanes append
        one at a time in lane order - each lane's count load observes the
        previous lane's bump, exactly as the scalar path does.  The warp
        form exists so callers can stay on the warp lane; it buys coalesced
        drains, not lock-free appends.
        """
        chunks = np.asarray(chunks, dtype=np.uint32)
        if chunks.ndim == 1:
            chunks = chunks.reshape(1, -1)
        sel = wctx.active(lanes)
        nbytes = chunks.shape[1] * 4
        region = self.gpm.region
        for j in range(sel.size):
            lane = sel[j:j + 1]
            p = self._partition_for(wctx, partition)
            self._charge_lock(wctx, p, nbytes)
            count = int(wctx.load(region, np.array([self._count_offset(p)]),
                                  np.uint32, lanes=lane)[0])
            if count + nbytes > self.partition_bytes:
                raise LogFull(
                    f"partition {p}: {count}+{nbytes} exceeds {self.partition_bytes}"
                )
            base = self.data_offset + p * self.partition_bytes
            wctx.store(region, np.array([base + count]),
                       chunks[j].reshape(1, -1), np.uint32, lanes=lane)
            wctx.persist(lane)
            wctx.store(region, np.array([self._count_offset(p)]),
                       np.array([count + nbytes], dtype=np.uint32),
                       np.uint32, lanes=lane)
            wctx.persist(lane)

    def read(self, ctx: ThreadContext, entry_bytes: int, partition: int = -1) -> np.ndarray:
        """Read the partition's most recent entry."""
        padded = _align(entry_bytes, 4)
        p = self._partition_for(ctx, partition)
        region = self.gpm.region
        count = int(ctx.load(region, self._count_offset(p), np.uint32))
        if count < padded:
            raise LogEmpty(f"partition {p}: count {count} < entry of {padded} bytes")
        base = self.data_offset + p * self.partition_bytes
        raw = ctx.load(region, base + count - padded, np.uint8, count=padded)
        return np.asarray(raw[:entry_bytes]).copy()

    def remove(self, ctx: ThreadContext, entry_bytes: int, partition: int = -1) -> None:
        """Pop the partition's most recent entry under the lock."""
        padded = _align(entry_bytes, 4)
        p = self._partition_for(ctx, partition)
        region = self.gpm.region
        self._charge_lock(ctx, p, 4)
        count = int(ctx.load(region, self._count_offset(p), np.uint32))
        if count < padded:
            raise LogEmpty(f"partition {p}: count {count} < entry of {padded} bytes")
        ctx.store(region, self._count_offset(p), count - padded, np.uint32)
        ctx.persist()

    # -- host API ---------------------------------------------------------------

    def host_count(self, partition: int, persisted: bool = True) -> int:
        view = (self.gpm.persisted_view if persisted else self.gpm.view)(
            np.uint32, self.counts_offset, self.partitions
        )
        return int(view[partition])

    def host_read_entry(self, partition: int, entry_bytes: int, index: int = -1,
                        persisted: bool = True) -> np.ndarray:
        padded = _align(entry_bytes, 4)
        count = self.host_count(partition, persisted)
        n_entries = count // padded
        if n_entries == 0:
            raise LogEmpty(f"partition {partition} has no entries")
        if index < 0:
            index += n_entries
        if not 0 <= index < n_entries:
            raise IndexError(f"entry {index} out of range [0, {n_entries})")
        base = self.data_offset + partition * self.partition_bytes + index * padded
        view = (self.gpm.persisted_view if persisted else self.gpm.view)(
            np.uint8, base, padded
        )
        return np.asarray(view[:entry_bytes]).copy()

    def clear(self, partition: int = -1) -> None:
        """Truncate one partition (or all), durably."""
        counts = self.gpm.view(np.uint32, self.counts_offset, self.partitions)
        if partition < 0:
            counts[:] = 0
            span = (self.counts_offset, self.partitions * 4)
        else:
            counts[partition] = 0
            span = (self._count_offset(partition), 4)
        elapsed = self.gpm.system.machine.optane.write_flush_grain(
            self.gpm.region, span[0], span[1], grain=64
        )
        self.gpm.system.machine.clock.advance(elapsed)

"""Post-crash inspection of PM state - a ``pmempool``-style doctor.

After a crash, an operator (or a recovery harness deciding *whether* to run
recovery kernels) wants to see what is on PM: which libGPM structures live
in which files, whether transactions were in flight, how much data each
per-thread log holds.  These helpers read only durable state (the
persisted images), never the volatile views, so their answers are exactly
what a post-restart process would see.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..host.filesystem import PmFile
from .checkpoint import CP_MAGIC, Gpmcp
from .conventional import CONV_MAGIC, ConventionalLog
from .hcl import HCL_MAGIC, HclLog
from .mapping import GpmRegion
from .transactions import FLAG_ACTIVE


@dataclass
class FileReport:
    """What one PM file durably contains."""

    path: str
    size: int
    kind: str                      # "hcl-log" | "conv-log" | "checkpoint" | "raw"
    detail: dict = field(default_factory=dict)

    def describe(self) -> str:
        extras = ", ".join(f"{k}={v}" for k, v in self.detail.items())
        return f"{self.path} [{self.kind}] {self.size} B ({extras})"


def _magic_of(pm_file: PmFile) -> int:
    if pm_file.size < 4:
        return 0
    return int(pm_file.region.persisted_view(np.uint32, 0, 1)[0])


def classify_file(system, pm_file: PmFile) -> FileReport:
    """Identify the durable libGPM structure (if any) in one PM file."""
    magic = _magic_of(pm_file)
    gpm = GpmRegion(system, pm_file)
    if magic == HCL_MAGIC:
        log = HclLog(gpm)
        tails = [log.host_tail(s) for s in range(log.total_threads)]
        return FileReport(pm_file.path, pm_file.size, "hcl-log", {
            "geometry": f"{log.blocks}x{log.threads_per_block}",
            "threads_with_entries": sum(1 for t in tails if t),
            "total_chunks": sum(tails),
            "striped": log.striped,
        })
    if magic == CONV_MAGIC:
        log = ConventionalLog(gpm)
        counts = [log.host_count(p) for p in range(log.partitions)]
        return FileReport(pm_file.path, pm_file.size, "conv-log", {
            "partitions": log.partitions,
            "non_empty_partitions": sum(1 for c in counts if c),
            "total_bytes": sum(counts),
        })
    if magic == CP_MAGIC:
        cp = Gpmcp(system, gpm)
        selectors = [cp._selector(g) for g in range(cp.groups)]
        return FileReport(pm_file.path, pm_file.size, "checkpoint", {
            "groups": cp.groups,
            "group_bytes": cp.group_bytes,
            "consistent_copies": selectors,
        })
    # Higher-level structures from repro.pstruct register their magics here
    # (imported lazily: pstruct builds on core).
    if magic == 0x504D4150:  # "PMAP"
        n_sets = int(pm_file.region.persisted_view(np.uint32, 4, 1)[0])
        keys = pm_file.region.persisted_view(np.uint64, 128, n_sets * 8)
        return FileReport(pm_file.path, pm_file.size, "hashmap", {
            "capacity": n_sets * 8,
            "occupied": int(np.count_nonzero(keys)),
        })
    if magic == 0x50524E47:  # "PRNG"
        capacity = int(pm_file.region.persisted_view(np.uint32, 4, 1)[0])
        seqs = pm_file.region.persisted_view(np.uint64, 128, capacity * 2)[::2]
        return FileReport(pm_file.path, pm_file.size, "ring", {
            "capacity": capacity,
            "committed": int(np.count_nonzero(seqs)),
        })
    detail = {}
    # A bare 64-byte file whose first word is 0/1 is (likely) a tx flag.
    if pm_file.size == 64 and magic in (0, FLAG_ACTIVE):
        detail["transaction_active"] = bool(magic == FLAG_ACTIVE)
        return FileReport(pm_file.path, pm_file.size, "tx-flag", detail)
    return FileReport(pm_file.path, pm_file.size, "raw", {
        "nonzero_bytes": int(np.count_nonzero(pm_file.region.persisted)),
    })


def survey(system) -> list[FileReport]:
    """Classify every PM file on the system's filesystem."""
    return [classify_file(system, system.fs.open(path))
            for path in system.fs.listdir()]


def pending_recovery(system) -> list[str]:
    """Paths whose durable state demands recovery before reuse.

    A set transaction flag means an interrupted batch; its sibling logs
    hold the undo entries.
    """
    return [
        report.path
        for report in survey(system)
        if report.kind == "tx-flag" and report.detail.get("transaction_active")
    ]


def format_survey(system) -> str:
    """A human-readable dump of all durable libGPM state."""
    lines = ["durable PM state:"]
    for report in survey(system):
        lines.append("  " + report.describe())
    needs = pending_recovery(system)
    if needs:
        lines.append(f"RECOVERY NEEDED: active transaction flags at {needs}")
    else:
        lines.append("no interrupted transactions")
    return "\n".join(lines)

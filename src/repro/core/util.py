"""Persistent bulk utilities: gpm_memset and gpm_memcpy.

Convenience wrappers over the GPU's streaming engine for the common
initialise/copy-then-persist patterns (zeroing a fresh log area, cloning a
PM table).  Both run as device-wide coalesced kernels inside their own
persistence window, so the destination range is durable on return.
"""

from __future__ import annotations

from ..sim.events import KernelLaunch, SystemFence
from ..sim.memory import MemKind, Region
from .errors import GpmError
from .mapping import GpmRegion
from .persist import gpm_persist_begin, gpm_persist_end


def _as_region(target) -> Region:
    if isinstance(target, GpmRegion):
        return target.region
    if isinstance(target, Region):
        return target
    raise GpmError(f"cannot address {type(target).__name__} as PM")


def gpm_memset(system, target, offset: int, size: int, value: int = 0) -> float:
    """Durably fill ``[offset, offset+size)`` of a PM mapping with a byte.

    Returns elapsed simulated seconds.
    """
    region = _as_region(target)
    if region.kind is not MemKind.PM:
        raise GpmError("gpm_memset targets persistent memory")
    if not 0 <= value < 256:
        raise GpmError(f"fill value {value} is not a byte")
    start = system.machine.clock.now
    gpm_persist_begin(system)
    try:
        region.fill(offset, size, value)
        # The fill streams from the GPU as coalesced stores + one fence.
        pcie_t = system.machine.pcie.stream_write_time(size)
        media_t = system.machine.io_write_arrival(region, [offset], [size])
        system.machine.events.emit(KernelLaunch(kind="memset"))
        system.machine.events.emit(SystemFence())
        system.machine.clock.advance(
            system.config.gpu_kernel_launch_s
            + max(pcie_t, media_t)
            + system.config.pcie_rtt_s
        )
        if system.eadr:
            system.machine.background_persist(region, offset, size)
    finally:
        gpm_persist_end(system)
    return system.machine.clock.now - start


def gpm_memcpy(system, dst, dst_off: int, src, src_off: int, size: int) -> float:
    """Durably copy between mappings/regions (any combination of PM/HBM src).

    The destination must be PM; the copy streams through the GPU and is
    persisted before return.  Returns elapsed simulated seconds.
    """
    dst_region = _as_region(dst)
    src_region = _as_region(src)
    if dst_region.kind is not MemKind.PM:
        raise GpmError("gpm_memcpy destination must be persistent memory")
    start = system.machine.clock.now
    gpm_persist_begin(system)
    try:
        system.gpu.stream_copy(dst_region, dst_off, src_region, src_off, size,
                               persist=True)
        if system.eadr:
            system.machine.background_persist(dst_region, dst_off, size)
    finally:
        gpm_persist_end(system)
    return system.machine.clock.now - start

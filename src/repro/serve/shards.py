"""Sharded HCL logs: N independent undo logs keyed by key-hash range.

gpKVS brackets every SET/DELETE batch with one :class:`HclLog` and one
:class:`TransactionFlag`; the whole store is one persistence domain, so one
in-flight batch serialises the log lifecycle.  The serving layer shards
that domain: the hash table's ``n_sets`` sets are split into ``n_shards``
contiguous ranges, and each range owns a private HCL log and transaction
flag.  Because a key's set index (``hash64(key) % n_sets``) fully
determines its shard, batches grouped by shard touch *disjoint* table
slices and *disjoint* logs - their drain epochs overlap on the link and
media exactly like the multi-GPU coordinator's launches, and a crash is
recovered shard-by-shard with the unmodified recovery kernel of Fig. 6b.

On-PM layout (all under one base path, default ``/pm/serve``)::

    <base>/meta           manifest: magic, n_shards, n_sets, ways, geometry
    <base>/shard00.log    HCL log of shard 0 (per-batch undo entries)
    <base>/shard00.flag   transaction flag of shard 0
    ...

The manifest is persisted at creation so post-crash recovery can rebuild
the shard map from PM alone (:meth:`ShardedHclLog.open`).
"""

from __future__ import annotations

import numpy as np

from ..core.errors import GpmError
from ..core.hcl import HclLog
from ..core.logging import gpmlog_create_hcl, gpmlog_open
from ..core.mapping import gpm_map
from ..core.transactions import TransactionFlag
from ..sim.events import TraceMark

SERVE_MAGIC = 0x53525631  # "SRV1"
_META_BYTES = 64


def _check_shard_geometry(n_sets: int, n_shards: int) -> None:
    """Reject shard geometries that cannot partition the set space.

    ``n_shards > n_sets`` would leave ownerless shards with silently empty
    ranges - a misconfiguration, not a layout - and non-positive counts
    break the range arithmetic outright.
    """
    if n_sets < 1:
        raise GpmError(f"need at least one table set, got n_sets={n_sets}")
    if n_shards < 1:
        raise GpmError(f"need at least one log shard, got n_shards={n_shards}")
    if n_shards > n_sets:
        raise GpmError(
            f"n_shards={n_shards} exceeds n_sets={n_sets}: "
            "every shard must own at least one set"
        )


def shard_of_sets(set_idxs: np.ndarray, n_sets: int, n_shards: int) -> np.ndarray:
    """Map table set indices to shard ids (contiguous, near-equal ranges)."""
    _check_shard_geometry(n_sets, n_shards)
    return (np.asarray(set_idxs, dtype=np.int64) * n_shards) // n_sets


def shard_set_range(shard: int, n_sets: int, n_shards: int) -> tuple[int, int]:
    """The half-open ``[first_set, last_set)`` range shard ``shard`` owns."""
    _check_shard_geometry(n_sets, n_shards)
    if not 0 <= shard < n_shards:
        raise GpmError(f"shard {shard} out of range for n_shards={n_shards}")
    first = (shard * n_sets + n_shards - 1) // n_shards
    last = ((shard + 1) * n_sets + n_shards - 1) // n_shards
    return first, last


class ShardedHclLog:
    """N per-shard HCL logs plus their transaction flags, under one base.

    ``blocks``/``threads_per_block`` is the *maximum* kernel geometry one
    shard's batch slice may launch with; each shard's log is formatted for
    that geometry (the paper: the logging thread count is known before the
    kernel starts).
    """

    def __init__(self, system, base: str, n_shards: int, n_sets: int,
                 logs: list[HclLog], flags: list[TransactionFlag]) -> None:
        _check_shard_geometry(n_sets, n_shards)
        self.system = system
        self.base = base
        self.n_shards = n_shards
        self.n_sets = n_sets
        self.logs = logs
        self.flags = flags

    # -- paths --------------------------------------------------------------

    @staticmethod
    def meta_path(base: str) -> str:
        return f"{base}/meta"

    @staticmethod
    def log_path(base: str, shard: int) -> str:
        return f"{base}/shard{shard:02d}.log"

    @staticmethod
    def flag_path(base: str, shard: int) -> str:
        return f"{base}/shard{shard:02d}.flag"

    # -- creation / reopening ------------------------------------------------

    @classmethod
    def create(cls, system, base: str, n_shards: int, n_sets: int, ways: int,
               blocks: int, threads_per_block: int) -> "ShardedHclLog":
        """Format the manifest, one HCL log and one flag per shard."""
        system.events.emit(TraceMark(category="serve",
                                     label=f"create_shards:{base}:{n_shards}"))
        meta = gpm_map(system, cls.meta_path(base), _META_BYTES, create=True)
        header = meta.view(np.uint32, 0, _META_BYTES // 4)
        header[0] = SERVE_MAGIC
        header[1] = n_shards
        header[2] = n_sets
        header[3] = ways
        header[4] = blocks
        header[5] = threads_per_block
        meta.region.persist_range(0, _META_BYTES)
        capacity = blocks * threads_per_block * 64 * 4 + (1 << 14)
        logs, flags = [], []
        for s in range(n_shards):
            logs.append(gpmlog_create_hcl(system, cls.log_path(base, s),
                                          capacity, blocks, threads_per_block))
            flags.append(TransactionFlag.create(system, cls.flag_path(base, s)))
        return cls(system, base, n_shards, n_sets, logs, flags)

    @classmethod
    def open(cls, system, base: str) -> "ShardedHclLog":
        """Re-attach to the persisted shards (the post-crash entry point)."""
        meta = gpm_map(system, cls.meta_path(base))
        header = meta.persisted_view(np.uint32, 0, _META_BYTES // 4)
        if int(header[0]) != SERVE_MAGIC:
            raise GpmError(f"{cls.meta_path(base)!r} is not a serve manifest")
        n_shards, n_sets = int(header[1]), int(header[2])
        logs, flags = [], []
        for s in range(n_shards):
            log = gpmlog_open(system, cls.log_path(base, s))
            if not isinstance(log, HclLog):
                raise GpmError(f"shard {s} of {base!r} is not an HCL log")
            logs.append(log)
            flags.append(TransactionFlag.open(system, cls.flag_path(base, s)))
        return cls(system, base, n_shards, n_sets, logs, flags)

    @classmethod
    def manifest(cls, system, base: str) -> dict:
        """Read the persisted manifest fields (for recovery tooling)."""
        meta = gpm_map(system, cls.meta_path(base))
        header = meta.persisted_view(np.uint32, 0, _META_BYTES // 4)
        if int(header[0]) != SERVE_MAGIC:
            raise GpmError(f"{cls.meta_path(base)!r} is not a serve manifest")
        return {"n_shards": int(header[1]), "n_sets": int(header[2]),
                "ways": int(header[3]), "blocks": int(header[4]),
                "threads_per_block": int(header[5])}

    # -- shard addressing ----------------------------------------------------

    def shard_of_set(self, set_idxs: np.ndarray) -> np.ndarray:
        return shard_of_sets(set_idxs, self.n_sets, self.n_shards)

    def log(self, shard: int) -> HclLog:
        return self.logs[shard]

    def flag(self, shard: int) -> TransactionFlag:
        return self.flags[shard]

    # -- batch transaction protocol -----------------------------------------

    def begin(self, shards) -> None:
        """Persist the active flag of every participating shard.

        Flags go active *before* any shard's kernel runs, mirroring the
        single-log protocol: recovery treats each shard independently, so a
        crash anywhere in the flush leaves every touched shard undoable.
        """
        for s in shards:
            self.flags[s].begin()

    def commit(self, shards) -> None:
        """Commit and truncate every participating shard's log."""
        for s in shards:
            self.flags[s].commit()
            self.logs[s].clear()

    def active_shards(self) -> list[int]:
        """Shards whose *persisted* flag says a batch was in flight."""
        return [s for s in range(self.n_shards) if self.flags[s].active]

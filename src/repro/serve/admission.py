"""Admission control: per-tenant token buckets plus a global queue cap.

An open-loop service cannot slow its clients down; when offered load
exceeds what warp-batched kernel launches can drain, the only choices are
unbounded queueing (p99 goes to infinity) or *shedding*.  The controller
makes both decisions at enqueue time, deterministically:

* each tenant owns a :class:`TokenBucket` (rate = its contracted ops/s,
  burst = a few batches' worth), so one tenant's burst cannot starve the
  others - the bucket sheds *that tenant's* excess;
* a global queue-depth cap bounds the batcher's backlog, so total memory
  and worst-case latency stay finite - overflow sheds whoever arrives
  when the queue is full, whatever their bucket says.

Every decision is accounted per tenant and per reason (``tenant-rate`` vs
``queue-full``) so the metrics sink can report shed rates that explain
*why* requests were dropped, not just how many.
"""

from __future__ import annotations

from dataclasses import dataclass, field


class TokenBucket:
    """The classic token bucket, run on the simulated clock.

    Refill is computed lazily from elapsed simulated time, so the bucket
    needs no timer task and is exact under the virtual-time scheduler.
    """

    def __init__(self, rate: float, burst: float, now: float = 0.0) -> None:
        if rate <= 0 or burst <= 0:
            raise ValueError("token bucket needs positive rate and burst")
        self.rate = float(rate)
        self.burst = float(burst)
        self.tokens = float(burst)
        self._last = float(now)

    def _refill(self, now: float) -> None:
        if now > self._last:
            self.tokens = min(self.burst, self.tokens + (now - self._last) * self.rate)
            self._last = now

    def try_take(self, now: float, n: float = 1.0) -> bool:
        """Consume ``n`` tokens if available; never blocks."""
        self._refill(now)
        if self.tokens >= n:
            self.tokens -= n
            return True
        return False


@dataclass
class AdmissionStats:
    """Per-tenant admission ledger."""

    offered: int = 0
    admitted: int = 0
    shed_rate: int = 0       # tenant token bucket said no
    shed_queue: int = 0      # global queue-depth cap said no

    @property
    def shed(self) -> int:
        return self.shed_rate + self.shed_queue


@dataclass
class AdmissionConfig:
    #: per-tenant contracted rate, ops per simulated second
    tenant_rate: float = 600_000.0
    #: per-tenant burst allowance, in requests
    tenant_burst: float = 256.0
    #: global cap on queued-but-unlaunched requests
    max_queue_depth: int = 2048


class AdmissionController:
    """Decides, per request, admit vs shed - and keeps the ledger."""

    def __init__(self, config: AdmissionConfig | None = None) -> None:
        self.config = config or AdmissionConfig()
        self._buckets: dict[str, TokenBucket] = {}
        self.stats: dict[str, AdmissionStats] = {}
        #: live count of admitted-but-unlaunched requests, maintained by
        #: the batcher via :meth:`drained`
        self.queue_depth = 0

    def _bucket(self, tenant: str, now: float) -> TokenBucket:
        bucket = self._buckets.get(tenant)
        if bucket is None:
            bucket = TokenBucket(self.config.tenant_rate,
                                 self.config.tenant_burst, now)
            self._buckets[tenant] = bucket
        return bucket

    def tenant_stats(self, tenant: str) -> AdmissionStats:
        stats = self.stats.get(tenant)
        if stats is None:
            stats = AdmissionStats()
            self.stats[tenant] = stats
        return stats

    def offer(self, tenant: str, now: float) -> tuple[bool, str]:
        """Admit or shed one request arriving from ``tenant`` at ``now``.

        Returns ``(admitted, reason)``; ``reason`` is ``""`` on admission,
        else ``"tenant-rate"`` or ``"queue-full"``.
        """
        stats = self.tenant_stats(tenant)
        stats.offered += 1
        if not self._bucket(tenant, now).try_take(now):
            stats.shed_rate += 1
            return False, "tenant-rate"
        if self.queue_depth >= self.config.max_queue_depth:
            stats.shed_queue += 1
            return False, "queue-full"
        stats.admitted += 1
        self.queue_depth += 1
        return True, ""

    def drained(self, n: int) -> None:
        """The batcher launched ``n`` queued requests."""
        self.queue_depth -= n
        if self.queue_depth < 0:
            raise AssertionError("queue depth went negative")

"""The asyncio front-end, running tenant streams on the *simulated* clock.

Tenant clients are coroutines: each sleeps until its next request's
scheduled arrival, offers it to admission control, and submits admitted
requests to the batcher.  But ``await asyncio.sleep`` waits on wall-clock
time, and the service's time is :class:`~repro.sim.clock.SimClock` - so the
front-end brings its own virtual-time scheduler:

* a tenant awaiting ``sleep_until(t)`` parks a future in a heap keyed by
  ``(wake time, park order)``;
* the driver coroutine advances the simulated clock **only when every
  live tenant task is parked** - i.e. when no coroutine has runnable work
  at the current instant - and only to the earliest interesting time (the
  next arrival or the batcher's linger deadline), then resolves every
  future that came due;
* kernel launches (batch flushes) happen inside the driver and advance
  the clock themselves; sleepers whose wake time the flush ran past are
  woken immediately after, their requests arriving "late" exactly as an
  open-loop client's would.

Everything is single-threaded and FIFO-ordered (heap order for wakes,
asyncio's run-to-completion between awaits), so a run is a deterministic
pure function of the traffic schedule - the property the byte-identical
summary determinism test pins.

A :class:`~repro.sim.crash.SimulatedCrash` raised by a mid-flush crash
injector cancels the tenant tasks and propagates to the caller, leaving
the system in its crashed state for recovery tests.
"""

from __future__ import annotations

import asyncio
import heapq

from ..sim.events import ServiceRequest
from .admission import AdmissionController
from .batcher import Batcher
from .traffic import TenantStream


class VirtualTimeScheduler:
    """Futures parked on the simulated clock, woken in time order."""

    def __init__(self, clock) -> None:
        self.clock = clock
        self._heap: list = []
        self._seq = 0
        #: live futures parked in the heap; the *wake* decrements this (not
        #: the coroutine's resumption), so a task is "runnable" from the
        #: moment its time comes until it parks again
        self.parked = 0

    async def sleep_until(self, when: float) -> None:
        fut = asyncio.get_running_loop().create_future()
        heapq.heappush(self._heap, (when, self._seq, fut))
        self._seq += 1
        self.parked += 1
        await fut

    def next_wake(self) -> float | None:
        return self._heap[0][0] if self._heap else None

    def wake_due(self, now: float | None = None) -> int:
        """Resolve every future whose wake time the clock has reached.

        ``now`` overrides the clock: the driver passes its logical cursor,
        which can sit one float ulp *ahead* of the clock when an advance to
        a target time was absorbed by rounding (tiny delta added to a much
        larger ``now``).  The cursor, not the lossy sum, decides wakes.
        """
        if now is None:
            now = self.clock.now
        woken = 0
        while self._heap and self._heap[0][0] <= now:
            _, _, fut = heapq.heappop(self._heap)
            self.parked -= 1
            if not fut.done():
                fut.set_result(None)
            woken += 1
        return woken


class Frontend:
    """Runs tenant streams through admission + batching to completion."""

    def __init__(self, system, admission: AdmissionController,
                 batcher: Batcher, crash_injector=None) -> None:
        self.system = system
        self.admission = admission
        self.batcher = batcher
        self.crash_injector = crash_injector
        self.scheduler = VirtualTimeScheduler(system.clock)
        self._live = 0

    # -- tenant client -------------------------------------------------------

    async def _tenant(self, stream: TenantStream) -> None:
        clock = self.system.clock
        events = self.system.events
        try:
            for req in stream.requests:
                if req.arrival > clock.now:
                    await self.scheduler.sleep_until(req.arrival)
                admitted, reason = self.admission.offer(req.tenant, clock.now)
                events.emit(ServiceRequest(tenant=req.tenant, op=req.op,
                                           admitted=admitted, reason=reason))
                if admitted:
                    self.batcher.submit(req)
        finally:
            self._live -= 1

    # -- driver --------------------------------------------------------------

    async def _drain_runnable(self) -> None:
        """Give every woken/new task the loop until it parks or finishes."""
        while self._live > self.scheduler.parked:
            await asyncio.sleep(0)

    async def _drive(self) -> None:
        clock = self.system.clock
        sched = self.scheduler
        batcher = self.batcher
        # The driver's logical "now".  Advancing the clock to a target time
        # adds a tiny delta to a much larger float and can be absorbed by
        # rounding, leaving the clock one ulp short of the target forever;
        # the cursor tracks the target exactly, so linger deadlines and
        # wake times are compared against a value that actually reaches
        # them.
        cursor = clock.now
        while True:
            await self._drain_runnable()
            cursor = max(cursor, clock.now)
            if self._live == 0 and not batcher.pending:
                break
            if batcher.should_flush(cursor):
                # Launches advance the clock; arrivals they ran past wake
                # right after, like clients whose service stalled.
                batcher.flush(self.crash_injector)
                cursor = max(cursor, clock.now)
                sched.wake_due(cursor)
                continue
            targets = [t for t in (sched.next_wake(), batcher.next_deadline())
                       if t is not None]
            if not targets:
                batcher.flush(self.crash_injector)
                continue
            t = min(targets)
            if t > clock.now:
                clock.advance(t - clock.now)
            cursor = max(cursor, clock.now, t)
            sched.wake_due(cursor)

    async def _main(self, streams: list) -> None:
        self._live = len(streams)
        tasks = [asyncio.ensure_future(self._tenant(s)) for s in streams]
        try:
            await self._drive()
        finally:
            for task in tasks:
                task.cancel()
            await asyncio.gather(*tasks, return_exceptions=True)

    def run(self, streams: list) -> None:
        """Serve every stream to completion (or until a simulated crash)."""
        asyncio.run(self._main(streams))

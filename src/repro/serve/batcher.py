"""The batcher: admitted requests become warp-sized kernel launches.

MegaKV's insight, inherited by gpKVS, is that a GPU KVS lives or dies by
batching: individual requests are hopeless against kernel-launch and PCIe
overheads, so the pipeline coalesces a window of requests into one batched
kernel.  The serving layer reproduces that window:

* requests accumulate until either ``target_batch`` of them are pending or
  the oldest has waited ``linger`` simulated seconds - the classic
  size-or-timeout trigger;
* a flush *compacts* same-key mutations (last write wins, exactly
  MegaKV's pre-kernel dedup - the undo log is order-dependent within a
  launch, so a kernel batch must have unique keys); superseded requests
  complete with the batch, marked ``coalesced``;
* the surviving mutations launch as SET and DELETE kernels grouped by
  log shard, then GETs launch against the HBM mirror - so a GET admitted
  in the same window observes the window's writes;
* launches are warp-sized: ``ceil(n / 32)`` blocks of 32 threads, and the
  ``ServiceBatch`` event records ``n_ops`` vs ``threads`` (occupancy).

Every request's completion is announced as a ``ServiceComplete`` event
carrying its queueing + execution latency on the simulated clock.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..sim.events import ServiceBatch, ServiceComplete
from .store import ShardedKvStore
from .traffic import Request


@dataclass
class BatcherConfig:
    #: flush as soon as this many requests are pending
    target_batch: int = 128
    #: ... or when the oldest pending request has waited this long (s)
    linger: float = 20e-6


class Batcher:
    """Coalesces admitted requests into batched launches on the store."""

    def __init__(self, store: ShardedKvStore, admission,
                 config: BatcherConfig | None = None) -> None:
        self.store = store
        self.admission = admission
        self.config = config or BatcherConfig()
        if self.config.target_batch > store.config.max_batch:
            raise ValueError(
                f"target batch {self.config.target_batch} exceeds the store's "
                f"log geometry ({store.config.max_batch})")
        self.pending: list[Request] = []
        self.flushes = 0
        #: host wall-clock seconds each flush took (compaction, staging,
        #: launches, completion events) - diagnostics only, never part of
        #: the deterministic summary
        self.flush_wall: list[float] = []

    # -- trigger ------------------------------------------------------------

    def should_flush(self, now: float) -> bool:
        if not self.pending:
            return False
        if len(self.pending) >= self.config.target_batch:
            return True
        # Sum form, NOT `now - arrival >= linger`: the driver advances the
        # clock to exactly `next_deadline()`, and the two spellings can
        # disagree by one float ulp - which would leave a deadline that
        # never quite arrives.
        return now >= self.next_deadline()

    def next_deadline(self) -> float | None:
        """When the oldest pending request's linger expires (None if idle)."""
        if not self.pending:
            return None
        return self.pending[0].arrival + self.config.linger

    def submit(self, request: Request) -> None:
        self.pending.append(request)

    # -- flush --------------------------------------------------------------

    def _compact(self, batch: list[Request]):
        """Last-write-wins compaction of same-key mutations.

        Returns ``(sets, deletes, gets, superseded)`` where the mutation
        lists have unique keys (kernel batches require it) and
        ``superseded`` holds the overwritten earlier mutations.
        """
        final: dict[int, Request] = {}
        superseded: list[Request] = []
        gets: list[Request] = []
        for req in batch:
            if req.op == "get":
                gets.append(req)
                continue
            prev = final.get(req.key)
            if prev is not None:
                superseded.append(prev)
            final[req.key] = req
        sets = [r for r in final.values() if r.op == "set"]
        deletes = [r for r in final.values() if r.op == "delete"]
        return sets, deletes, gets, superseded

    def flush(self, crash_injector=None) -> int:
        """Launch one batch window; returns how many requests completed.

        Takes at most ``target_batch`` requests (FIFO) so a backlog that
        built up behind a long kernel never exceeds the store's per-launch
        log geometry; the driver simply flushes again while a backlog
        remains.
        """
        if not self.pending:
            return 0
        wall0 = time.perf_counter()
        take = self.config.target_batch
        batch, self.pending = self.pending[:take], self.pending[take:]
        self.admission.drained(len(batch))
        self.flushes += 1
        system = self.store.system
        events = system.events
        sets, deletes, gets, superseded = self._compact(batch)
        if sets:
            keys = np.array([r.key for r in sets], dtype=np.uint64)
            vals = np.array([r.value for r in sets], dtype=np.uint64)
            info = self.store.set_batch(keys, vals, crash_injector=crash_injector)
            events.emit(ServiceBatch(op="set", n_ops=len(sets),
                                     threads=info["threads"],
                                     shards=info["shards"]))
        if deletes:
            keys = np.array([r.key for r in deletes], dtype=np.uint64)
            info = self.store.delete_batch(keys, crash_injector=crash_injector)
            events.emit(ServiceBatch(op="delete", n_ops=len(deletes),
                                     threads=info["threads"],
                                     shards=info["shards"]))
        if gets:
            keys = np.array([r.key for r in gets], dtype=np.uint64)
            _, info = self.store.get_batch(keys)
            events.emit(ServiceBatch(op="get", n_ops=len(gets),
                                     threads=info["threads"], shards=1))
        done = system.clock.now
        for req in sets + deletes + gets:
            events.emit(ServiceComplete(tenant=req.tenant, op=req.op,
                                        latency=done - req.arrival))
        for req in superseded:
            events.emit(ServiceComplete(tenant=req.tenant, op=req.op,
                                        latency=done - req.arrival,
                                        coalesced=True))
        self.flush_wall.append(time.perf_counter() - wall0)
        return len(batch)

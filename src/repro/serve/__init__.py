"""repro.serve: a multi-tenant request-serving layer over the gpKVS store.

The reproduction's workloads run as one-shot batch experiments; MegaKV -
gpKVS's ancestor - was a *served* system.  This package adds that missing
layer on top of the existing simulator:

* :class:`~repro.serve.traffic.TrafficGenerator` - deterministic seeded
  open-loop client streams (Poisson arrivals, Zipfian key skew via
  :mod:`repro.workloads.distributions`, configurable read/write/delete mix);
* :class:`~repro.serve.admission.AdmissionController` - per-tenant token
  buckets plus a global queue-depth cap, with shed accounting;
* :class:`~repro.serve.batcher.Batcher` - coalesces admitted requests into
  warp-sized (multiples of 32) kernel launches against gpKVS's existing
  set/get/delete kernels;
* :class:`~repro.serve.shards.ShardedHclLog` - N independent HCL log
  shards keyed by key-hash range, so disjoint key ranges persist
  concurrently and recover shard-by-shard through the existing recovery
  kernel;
* :class:`~repro.serve.frontend.Frontend` - an asyncio front-end that runs
  the tenant streams on the machine's *simulated* clock (virtual-time
  scheduler), keeping every run deterministic under its seed;
* :class:`~repro.serve.metrics.ServiceMetrics` - an event-bus sink folding
  the service events into sustained throughput, per-tenant latency
  percentiles, batch occupancy, and shed rates.

``python -m repro serve`` drives one run; ``python -m repro bench
--service`` writes ``BENCH_service.json``.  See ``docs/service.md``.
"""

from .admission import AdmissionController, TokenBucket
from .batcher import Batcher
from .frontend import Frontend
from .metrics import ServiceMetrics, render_summary
from .service import ServiceConfig, run_service
from .shards import ShardedHclLog, shard_of_sets
from .store import ShardedKvStore, StoreConfig, recover_store
from .traffic import Request, TenantStream, TrafficConfig, TrafficGenerator

__all__ = [
    "AdmissionController",
    "Batcher",
    "Frontend",
    "Request",
    "ServiceConfig",
    "ServiceMetrics",
    "ShardedHclLog",
    "ShardedKvStore",
    "StoreConfig",
    "TenantStream",
    "TokenBucket",
    "TrafficConfig",
    "TrafficGenerator",
    "recover_store",
    "render_summary",
    "run_service",
    "shard_of_sets",
]

"""One served run, end to end: traffic -> admission -> batches -> shards.

:func:`run_service` is the composition root the CLI and bench harness call:
it builds the store (with its sharded logs), the admission controller, the
batcher and the virtual-time front-end from one :class:`ServiceConfig`,
runs the configured traffic to completion, and returns the deterministic
service summary.  The same seed yields a byte-identical summary - the
property ``python -m repro serve`` advertises and the tests pin.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

from ..workloads.base import Mode, make_system
from .admission import AdmissionConfig, AdmissionController
from .batcher import Batcher, BatcherConfig
from .frontend import Frontend
from .metrics import ServiceMetrics
from .store import ShardedKvStore, StoreConfig
from .traffic import TrafficConfig, TrafficGenerator


@dataclass
class ServiceConfig:
    """Everything one served run depends on (all simulated units)."""

    mode: str = "gpm"
    tenants: int = 4
    shards: int = 4
    #: per-tenant offered rate, ops per simulated second
    rate: float = 500_000.0
    #: simulated seconds of traffic
    duration: float = 2e-3
    seed: int = 42
    read_fraction: float = 0.5
    delete_fraction: float = 0.05
    theta: float = 0.99
    key_space: int = 8192
    #: admission: contracted per-tenant rate (defaults to 1.25x offered)
    tenant_rate: float | None = None
    tenant_burst: float = 256.0
    max_queue_depth: int = 2048
    #: batching: size trigger and linger timeout
    target_batch: int = 128
    linger: float = 20e-6
    #: store geometry
    n_sets: int = 4096
    ways: int = 8

    def traffic(self) -> TrafficConfig:
        return TrafficConfig(
            tenants=self.tenants, rate=self.rate, duration=self.duration,
            read_fraction=self.read_fraction,
            delete_fraction=self.delete_fraction, theta=self.theta,
            key_space=self.key_space, seed=self.seed,
        )

    def admission(self) -> AdmissionConfig:
        rate = self.tenant_rate if self.tenant_rate is not None else self.rate * 1.25
        return AdmissionConfig(tenant_rate=rate, tenant_burst=self.tenant_burst,
                               max_queue_depth=self.max_queue_depth)

    def store(self) -> StoreConfig:
        return StoreConfig(n_sets=self.n_sets, ways=self.ways,
                           n_shards=self.shards,
                           max_batch=max(256, self.target_batch))

    def batcher(self) -> BatcherConfig:
        return BatcherConfig(target_batch=self.target_batch, linger=self.linger)


def flush_wall_stats(samples: list[float]) -> dict:
    """Percentile digest of per-flush host wall-clock seconds.

    Host-side diagnostics for the pipelined flush path: *not* part of the
    deterministic ``summary`` (wall time varies run to run by nature).
    """
    if not samples:
        return {"flushes": 0, "p50_us": None, "p95_us": None, "total_s": 0.0}
    ordered = sorted(samples)
    p50 = ordered[len(ordered) // 2]
    p95 = ordered[min(len(ordered) - 1, int(len(ordered) * 0.95))]
    return {
        "flushes": len(samples),
        "p50_us": round(p50 * 1e6, 2),
        "p95_us": round(p95 * 1e6, 2),
        "total_s": round(sum(samples), 6),
    }


def run_service(config: ServiceConfig | None = None, system=None,
                crash_injector=None) -> dict:
    """Run one served window; returns ``{"config", "summary", "flush_wall"}``.

    ``summary`` is deterministic per seed; ``flush_wall`` is a host
    wall-clock digest of the batcher's flushes (diagnostics, varies).

    With a ``crash_injector`` armed, a mid-flush
    :class:`~repro.sim.crash.SimulatedCrash` propagates to the caller with
    the system left in its crashed state (recover via
    :func:`~repro.serve.store.recover_store`).
    """
    config = config or ServiceConfig()
    mode = Mode.from_name(config.mode)
    system = system or make_system(mode)
    store = ShardedKvStore.create(mode, system, config.store())
    admission = AdmissionController(config.admission())
    batcher = Batcher(store, admission, config.batcher())
    metrics = ServiceMetrics()
    metrics.attach(system.events)
    frontend = Frontend(system, admission, batcher, crash_injector=crash_injector)
    streams = TrafficGenerator(config.traffic()).streams()
    start = system.clock.now
    try:
        frontend.run(streams)
    finally:
        metrics.detach(system.events)
    elapsed = system.clock.now - start
    summary = metrics.summary(elapsed)
    return {"config": asdict(config), "summary": summary,
            "flush_wall": flush_wall_stats(batcher.flush_wall)}

"""The served KV store: gpKVS's kernels behind sharded logs.

:class:`ShardedKvStore` owns the same on-PM state as the batch workload -
an 8-way set-associative table, a volatile HBM mirror for GETs - but
replaces the single undo log + transaction flag with a
:class:`~repro.serve.shards.ShardedHclLog`.  Batches arriving from the
:class:`~repro.serve.batcher.Batcher` are grouped by shard and launched as
warp-sized kernels (**the unmodified** ``set_kernel`` / ``get_kernel`` /
``delete_kernel`` of :mod:`repro.workloads.kvs`); each shard's launch
carries that shard's log, so undo entries for disjoint key ranges land in
disjoint PM files.

Concurrent persistence: shard launches within one flush touch disjoint
table slices and disjoint logs, so - like the multi-GPU coordinator - each
launch is priced with ``advance_clock=False`` and the clock advances by
the *slowest shard's* critical path, not the sum.  With a crash injector
armed the launches run sequentially instead (crash exploration wants exact
per-launch interleavings, and simulated time is not under test there).

Recovery (:func:`recover_store`) is Fig. 6b per shard: an active persisted
flag means that shard's batch slice was in flight, so the existing
recovery kernel undoes it from that shard's log; idle shards just truncate.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

import numpy as np

from ..core.mapping import gpm_map
from ..core.transactions import TransactionFlag
from ..gpu.memory import DeviceArray
from ..sim.events import TraceMark
from ..workloads.base import Mode, ModeDriver, make_system
from ..workloads.kvs import (
    _recovery_kernel,
    delete_kernel,
    get_kernel,
    hash64_vec,
    set_kernel,
)
from .shards import ShardedHclLog

_WARP = 32
TABLE_PATH = "/pm/serve/table"
SERVE_BASE = "/pm/serve"


@dataclass
class StoreConfig:
    """Geometry of the served store (scaled like the batch workload)."""

    n_sets: int = 4096          # sized so sets never fill (no evictions)
    ways: int = 8
    n_shards: int = 4
    #: per-flush request cap; sizes each shard's log geometry (the whole
    #: flush can land in one shard in the worst case)
    max_batch: int = 256
    block_dim: int = 32         # one warp per block: warp-sized launches

    @property
    def n_pairs(self) -> int:
        return self.n_sets * self.ways

    @property
    def key_space(self) -> int:
        #: quarter-loaded table, like the batch workload's key range
        return self.n_sets * self.ways * 2

    @property
    def log_blocks(self) -> int:
        return -(-self.max_batch // self.block_dim)


class ShardedKvStore:
    """gpKVS state + sharded logs, executing batches shard-by-shard."""

    def __init__(self, system, driver: ModeDriver, config: StoreConfig,
                 table, keys: DeviceArray, values: DeviceArray,
                 mirror_keys: DeviceArray, mirror_values: DeviceArray,
                 shards: ShardedHclLog) -> None:
        self.system = system
        self.driver = driver
        self.config = config
        self.table = table
        self.keys = keys
        self.values = values
        self.mirror_keys = mirror_keys
        self.mirror_values = mirror_values
        self.shards = shards
        self._batch_seq = 0
        #: Persistent staging arena for batch arguments: one HBM region,
        #: lazily grown, sliced per shard each flush.  Replaces the
        #: alloc/free pair every shard group used to pay per flush.
        self._stage = None
        self._stage_ids = itertools.count()

    # -- construction --------------------------------------------------------

    @classmethod
    def create(cls, mode: Mode = Mode.GPM, system=None,
               config: StoreConfig | None = None) -> "ShardedKvStore":
        config = config or StoreConfig()
        if not mode.data_on_pm:
            raise ValueError(
                f"the serving layer needs a PM-direct mode (got {mode.value}): "
                "sharded HCL logs live on PM")
        system = system or make_system(mode)
        driver = ModeDriver(system, mode)
        table = driver.buffer(TABLE_PATH, config.n_pairs * 16, fine_grained=True)
        keys = table.array(np.uint64, 0, config.n_pairs)
        values = table.array(np.uint64, config.n_pairs * 8, config.n_pairs)
        mirror = system.machine.alloc_hbm("serve.mirror", config.n_pairs * 16)
        mirror_keys = DeviceArray(mirror, np.uint64, 0, config.n_pairs)
        mirror_values = DeviceArray(mirror, np.uint64, config.n_pairs * 8,
                                    config.n_pairs)
        shards = ShardedHclLog.create(system, SERVE_BASE, config.n_shards,
                                      config.n_sets, config.ways,
                                      config.log_blocks, config.block_dim)
        return cls(system, driver, config, table, keys, values,
                   mirror_keys, mirror_values, shards)

    # -- shard addressing ----------------------------------------------------

    def shard_of_keys(self, batch_keys: np.ndarray) -> np.ndarray:
        cfg = self.config
        set_idxs = (hash64_vec(batch_keys) % np.uint64(cfg.n_sets)).astype(np.int64)
        return self.shards.shard_of_set(set_idxs)

    def _shard_groups(self, batch_keys: np.ndarray) -> list[tuple[int, np.ndarray]]:
        """``(shard, request_indices)`` pairs, ascending by shard id."""
        by_shard = self.shard_of_keys(batch_keys)
        return [(int(s), np.flatnonzero(by_shard == s))
                for s in np.unique(by_shard)]

    def _grid(self, n_ops: int) -> int:
        return -(-n_ops // self.config.block_dim)

    def _stage_buffer(self, nbytes: int):
        """The flush's staging arena in HBM, grown on demand.

        Every flush fully overwrites the slices it uses (and the GET
        kernel writes every output slot), so the arena is reused across
        flushes without clearing.
        """
        if self._stage is None or self._stage.size < nbytes:
            machine = self.system.machine
            if self._stage is not None:
                machine.free(self._stage)
            name = f"serve.stage-{next(self._stage_ids)}"
            while name in machine._regions:
                name = f"serve.stage-{next(self._stage_ids)}"
            self._stage = machine.alloc_hbm(
                name, max(nbytes, self.config.max_batch * 16))
        return self._stage

    # -- batched execution ---------------------------------------------------

    def _launch_groups(self, kernel, groups, make_args, crash_injector):
        """Launch one shard group per kernel; overlap their critical paths.

        ``make_args(shard, idx, touched)`` builds the launch's argument
        tuple.  Returns ``(total_threads, touched_slots, lane)``.
        """
        cfg = self.config
        gpu = self.system.gpu
        touched: list[int] = []
        total_threads = 0
        lane = "scalar"
        overlap = crash_injector is None and len(groups) > 1
        slowest = 0.0
        for shard, idx in groups:
            n_ops = idx.size
            grid = self._grid(n_ops)
            total_threads += grid * cfg.block_dim
            result = gpu.launch(
                kernel, grid, cfg.block_dim, make_args(shard, idx, touched),
                crash_injector=crash_injector,
                advance_clock=not overlap,
            )
            lane = result.lane
            slowest = max(slowest, result.elapsed)
        if overlap:
            # Disjoint table slices, disjoint logs: the shards' drain
            # epochs overlap, so the flush costs its slowest member.
            self.system.clock.advance(slowest)
        return total_threads, touched, lane

    def set_batch(self, batch_keys: np.ndarray, batch_values: np.ndarray,
                  crash_injector=None) -> dict:
        """Transactionally apply one deduplicated SET batch.

        Keys must be unique within the batch (the batcher compacts
        same-key requests, as MegaKV's pipeline does before the kernel).
        Returns launch accounting for the metrics sink.
        """
        cfg = self.config
        batch_keys = np.asarray(batch_keys, dtype=np.uint64)
        batch_values = np.asarray(batch_values, dtype=np.uint64)
        n = batch_keys.size
        if n == 0:
            return {"threads": 0, "shards": 0, "lane": "none"}
        if n > cfg.max_batch:
            raise ValueError(f"batch of {n} exceeds the log geometry "
                             f"({cfg.max_batch})")
        self._batch_seq += 1
        groups = self._shard_groups(batch_keys)
        shard_ids = [s for s, _ in groups]
        # Pipelined flush: every shard's slice is compacted and staged into
        # the arena *before* the first launch, so shard k's critical path
        # is accounted while shard k+1's arguments already sit in HBM.
        stage = self._stage_buffer(n * 16)
        staged = {}
        off = 0
        for shard, idx in groups:
            sk = DeviceArray(stage, np.uint64, off, idx.size)
            sv = DeviceArray(stage, np.uint64, off + idx.size * 8, idx.size)
            sk.np[:] = batch_keys[idx]
            sv.np[:] = batch_values[idx]
            staged[shard] = (sk, sv)
            off += idx.size * 16
        self.shards.begin(shard_ids)
        self.driver.persist_phase_begin()
        try:
            def make_args(shard, idx, touched):
                sk, sv = staged[shard]
                return (self.keys, self.values, self.mirror_keys,
                        self.mirror_values, sk, sv, idx.size, cfg.n_sets,
                        cfg.ways, self.shards.log(shard), touched)

            threads, touched, lane = self._launch_groups(
                set_kernel, groups, make_args, crash_injector)
        finally:
            self.driver.persist_phase_end()
        self._persist_touched(touched)
        self.shards.commit(shard_ids)
        return {"threads": threads, "shards": len(groups), "lane": lane}

    def delete_batch(self, batch_keys: np.ndarray, crash_injector=None) -> dict:
        """Transactionally delete one deduplicated batch of keys."""
        cfg = self.config
        batch_keys = np.asarray(batch_keys, dtype=np.uint64)
        n = batch_keys.size
        if n == 0:
            return {"threads": 0, "shards": 0, "lane": "none"}
        if n > cfg.max_batch:
            raise ValueError(f"batch of {n} exceeds the log geometry "
                             f"({cfg.max_batch})")
        self._batch_seq += 1
        groups = self._shard_groups(batch_keys)
        shard_ids = [s for s, _ in groups]
        stage = self._stage_buffer(n * 8)
        staged = {}
        off = 0
        for shard, idx in groups:
            sk = DeviceArray(stage, np.uint64, off, idx.size)
            sk.np[:] = batch_keys[idx]
            staged[shard] = sk
            off += idx.size * 8
        self.shards.begin(shard_ids)
        self.driver.persist_phase_begin()
        try:
            def make_args(shard, idx, touched):
                return (self.keys, self.values, self.mirror_keys,
                        self.mirror_values, staged[shard], idx.size,
                        cfg.n_sets, cfg.ways, self.shards.log(shard), touched)

            threads, touched, lane = self._launch_groups(
                delete_kernel, groups, make_args, crash_injector)
        finally:
            self.driver.persist_phase_end()
        self._persist_touched(touched)
        self.shards.commit(shard_ids)
        return {"threads": threads, "shards": len(groups), "lane": lane}

    def get_batch(self, batch_keys: np.ndarray) -> tuple[np.ndarray, dict]:
        """Serve one GET batch from the HBM mirror (single launch)."""
        cfg = self.config
        batch_keys = np.asarray(batch_keys, dtype=np.uint64)
        n = batch_keys.size
        if n == 0:
            return np.empty(0, dtype=np.uint64), {"threads": 0, "shards": 0,
                                                  "lane": "none"}
        system = self.system
        self._batch_seq += 1
        stage = self._stage_buffer(n * 16)
        bk = DeviceArray(stage, np.uint64, 0, n)
        out = DeviceArray(stage, np.uint64, n * 8, n)
        bk.np[:] = batch_keys
        grid = self._grid(n)
        result = system.gpu.launch(
            get_kernel, grid, cfg.block_dim,
            (self.mirror_keys, self.mirror_values, bk, out, n, cfg.n_sets,
             cfg.ways),
        )
        values = out.np.copy()
        return values, {"threads": grid * cfg.block_dim, "shards": 1,
                        "lane": result.lane}

    def _persist_touched(self, touched: list[int]) -> None:
        """Mode-appropriate post-kernel persistence of the updated pairs."""
        idx = (np.unique(np.asarray(touched, dtype=np.int64)) if touched
               else np.array([], dtype=np.int64))
        starts = np.concatenate([idx * 8, self.values.offset + idx * 8])
        self.table.persist_segments(starts,
                                    np.full(starts.size, 8, dtype=np.int64))

    # -- crash invariants ----------------------------------------------------

    def declare_invariants(self, system) -> list:
        return serve_invariants(system)


def serve_invariants(system, base: str = SERVE_BASE) -> list:
    """Structural invariants of the served store's durable state.

    Standalone (no live store object needed) so post-crash judges can call
    it on a recovered system: every shard's transaction flag must be idle,
    and the table must have no torn key/value slots.
    """

    def flags_idle() -> tuple[bool, str]:
        if not system.fs.exists(ShardedHclLog.meta_path(base)):
            return True, "crash predates the shard manifest"
        manifest = ShardedHclLog.manifest(system, base)
        stuck = []
        for s in range(manifest["n_shards"]):
            path = ShardedHclLog.flag_path(base, s)
            if system.fs.exists(path) and TransactionFlag.open(system, path).active:
                stuck.append(s)
        if stuck:
            return False, (f"shards {stuck} still flag an active batch "
                           "after recovery")
        return True, f"all {manifest['n_shards']} shard flags idle"

    def table_intact() -> tuple[bool, str]:
        if not system.fs.exists(TABLE_PATH):
            return True, "crash predates the table"
        manifest = ShardedHclLog.manifest(system, base)
        n_pairs = manifest["n_sets"] * manifest["ways"]
        table = gpm_map(system, TABLE_PATH)
        keys = table.region.persisted_view(np.uint64, 0, n_pairs)
        values = table.region.persisted_view(np.uint64, n_pairs * 8, n_pairs)
        torn = np.flatnonzero((keys != 0) & (values == 0))
        if torn.size:
            return False, f"{torn.size} slots have a key but no value"
        return True, "no torn key/value slots"

    return [
        ("serve-flags-idle",
         "every shard's transaction flag is idle after recovery", flags_idle),
        ("serve-table-intact",
         "durable keys always carry their durable values", table_intact),
    ]


def recover_store(system, mode: Mode = Mode.GPM,
                  base: str = SERVE_BASE) -> dict:
    """Post-crash, shard-by-shard recovery through the existing kernel.

    For every shard whose persisted flag is active, the unmodified
    ``_recovery_kernel`` undoes that shard's in-flight batch slice from
    that shard's log; every shard's log is then truncated.  Returns a
    report: which shards needed undo and the simulated recovery latency.
    """
    system.events.emit(TraceMark(category="serve", label="recover"))
    start = system.clock.now
    shards = ShardedHclLog.open(system, base)
    manifest = ShardedHclLog.manifest(system, base)
    n_pairs = manifest["n_sets"] * manifest["ways"]
    table = gpm_map(system, TABLE_PATH)
    keys = table.array(np.uint64, 0, n_pairs)
    values = table.array(np.uint64, n_pairs * 8, n_pairs)
    driver = ModeDriver(system, mode)
    recovered = []
    for s in shards.active_shards():
        log = shards.log(s)
        driver.persist_phase_begin()
        try:
            system.gpu.launch(
                _recovery_kernel, log.blocks, log.threads_per_block,
                (keys, values, None, None, log, manifest["ways"],
                 log.total_threads),
            )
        finally:
            driver.persist_phase_end()
        shards.flag(s).commit()
        recovered.append(s)
    for s in range(shards.n_shards):
        shards.log(s).clear()
    return {"shards": shards.n_shards, "recovered": recovered,
            "elapsed": system.clock.now - start}

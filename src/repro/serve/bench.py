"""Service-level benchmark: one served window, measured and validated.

``python -m repro bench --service`` runs a full
:func:`~repro.serve.service.run_service` window and writes
``BENCH_service.json``: the deterministic service summary (sustained
throughput, per-tenant p50/p95/p99, batch occupancy, shed rates) plus
wall-clock and host context.  ``--smoke`` shrinks the window for CI.

:func:`validate_service_record` is the CI gate: a service run that shed
*everything* (the store never served a request) or produced non-finite
tail latencies is broken even if it exited zero, so the smoke job fails
on either.
"""

from __future__ import annotations

import json
import math
import time

from ..experiments.runner import available_cpus
from ..version import __version__
from .service import ServiceConfig, run_service

#: the CI smoke window: 2 tenants, ~0.5 ms simulated, a few hundred requests
SMOKE_OVERRIDES = dict(tenants=2, shards=2, duration=5e-4, rate=400_000.0)


def run_service_bench(smoke: bool = False, seed: int = 42,
                      out: str = "BENCH_service.json",
                      config: ServiceConfig | None = None) -> dict:
    """Run one served window and write the benchmark record."""
    if config is None:
        overrides = SMOKE_OVERRIDES if smoke else {}
        config = ServiceConfig(seed=seed, **overrides)
    start = time.perf_counter()
    result = run_service(config)
    wall = time.perf_counter() - start
    record = {
        "version": __version__,
        "smoke": bool(smoke),
        "wall_s": round(wall, 3),
        "cpu_count": available_cpus(),
        "config": result["config"],
        "summary": result["summary"],
        # Host wall-clock flush digest: diagnostics alongside the
        # deterministic summary, never compared byte-for-byte.
        "flush_wall": result["flush_wall"],
    }
    with open(out, "w") as fh:
        json.dump(record, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return record


def validate_service_record(record: dict) -> list[str]:
    """Sanity problems that should fail CI (empty list = healthy)."""
    problems = []
    summary = record["summary"]
    if summary["offered"] == 0:
        problems.append("no requests were offered (empty traffic window)")
    elif summary["shed_rate"] >= 1.0:
        problems.append("shed rate is 100%: the service admitted nothing")
    if summary["completed"] == 0:
        problems.append("no requests completed")
    p99 = summary["latency"]["p99"]
    if p99 is None or not math.isfinite(p99):
        problems.append(f"p99 latency is non-finite ({p99!r})")
    for tenant, t in summary["tenants"].items():
        tp99 = t["latency"]["p99"]
        if t["completed"] and (tp99 is None or not math.isfinite(tp99)):
            problems.append(f"{tenant}: p99 latency is non-finite ({tp99!r})")
    return problems

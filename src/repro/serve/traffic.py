"""Deterministic seeded traffic: open-loop multi-tenant request streams.

Each tenant is an independent open-loop client: Poisson arrivals at its
configured rate (:func:`~repro.workloads.distributions.poisson_arrivals`),
Zipfian key popularity (:func:`~repro.workloads.distributions.zipfian_keys`
- the same skew machinery as the YCSB workload), and a configurable
GET/SET/DELETE mix.  Open-loop means arrivals never wait for responses:
when the service falls behind, load does not politely back off - which is
exactly the regime admission control exists for.

Determinism: every tenant derives its generator from
``np.random.default_rng([seed, tenant_index])``, so streams are
reproducible per seed, independent of tenant count ordering, and the whole
service run is a pure function of its configuration.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..workloads.distributions import poisson_arrivals, zipfian_keys

_MASK63 = (1 << 63) - 1


@dataclass
class Request:
    """One client request, stamped with its open-loop arrival time."""

    tenant: str
    op: str            # "set" | "get" | "delete"
    key: int
    value: int
    arrival: float


@dataclass
class TenantStream:
    """One tenant's full request schedule, sorted by arrival."""

    tenant: str
    requests: list = field(default_factory=list)


@dataclass
class TrafficConfig:
    """Shape of the offered load."""

    tenants: int = 4
    #: per-tenant offered rate, ops per simulated second
    rate: float = 500_000.0
    #: simulated seconds of traffic
    duration: float = 2e-3
    #: fraction of requests that are GETs
    read_fraction: float = 0.5
    #: fraction of requests that are DELETEs (the rest are SETs)
    delete_fraction: float = 0.05
    #: Zipfian skew (0 = uniform; YCSB default 0.99)
    theta: float = 0.99
    #: key identifier space (keys are 1..key_space; 0 is the empty sentinel)
    key_space: int = 16_384
    seed: int = 42


class TrafficGenerator:
    """Materialises the per-tenant schedules from one config + seed."""

    def __init__(self, config: TrafficConfig | None = None) -> None:
        self.config = config or TrafficConfig()
        cfg = self.config
        if cfg.tenants < 1:
            raise ValueError("need at least one tenant")
        if not 0 <= cfg.read_fraction + cfg.delete_fraction <= 1:
            raise ValueError("read_fraction + delete_fraction must be in [0, 1]")

    @staticmethod
    def tenant_name(index: int) -> str:
        return f"tenant{index:02d}"

    def stream(self, index: int) -> TenantStream:
        """Tenant ``index``'s full schedule (pure function of the seed)."""
        cfg = self.config
        rng = np.random.default_rng([cfg.seed, index])
        arrivals = poisson_arrivals(cfg.rate, cfg.duration, rng)
        n = arrivals.size
        name = self.tenant_name(index)
        if n == 0:
            return TenantStream(tenant=name)
        keys = zipfian_keys(n, cfg.key_space, cfg.theta, rng)
        rolls = rng.random(n)
        values = rng.integers(1, _MASK63, size=n, dtype=np.uint64)
        ops = np.where(
            rolls < cfg.read_fraction, "get",
            np.where(rolls < cfg.read_fraction + cfg.delete_fraction,
                     "delete", "set"),
        )
        requests = [
            Request(tenant=name, op=str(ops[i]), key=int(keys[i]),
                    value=int(values[i]), arrival=float(arrivals[i]))
            for i in range(n)
        ]
        return TenantStream(tenant=name, requests=requests)

    def streams(self) -> list[TenantStream]:
        return [self.stream(i) for i in range(self.config.tenants)]

    @property
    def offered_total(self) -> float:
        """Aggregate offered load, ops per simulated second."""
        return self.config.tenants * self.config.rate

"""Service metrics: folding serve events into the numbers operators watch.

:class:`ServiceMetrics` is an event-bus subscriber in the style of
:class:`~repro.sim.events.StatsAggregator` - it observes the three serve
events (``service_request``, ``service_batch``, ``service_complete``) and
folds them into:

* **sustained throughput** - completed ops per simulated second over the
  measurement window;
* **latency percentiles** - p50/p95/p99 of queueing + execution latency,
  overall and per tenant (the multi-tenant story is *per-tenant tails*:
  a global p99 hides one tenant being starved);
* **batch occupancy** - live requests per warp-sized thread launched;
  low occupancy means the linger timeout, not the size trigger, is
  flushing batches;
* **shed rate** - per tenant and per reason, from the admission events.

Summaries are plain dicts of floats rounded to fixed precision, so the
same seed yields a byte-identical JSON rendering (the determinism the CLI
and tests pin).
"""

from __future__ import annotations

import json

import numpy as np

from ..sim.events import ServiceBatch, ServiceComplete, ServiceRequest

_ROUND = 9  # ns-scale latency precision; keeps JSON renderings stable


def _percentiles(latencies: list) -> dict:
    if not latencies:
        return {"p50": None, "p95": None, "p99": None}
    arr = np.asarray(latencies, dtype=np.float64)
    p50, p95, p99 = np.percentile(arr, [50.0, 95.0, 99.0])
    return {"p50": round(float(p50), _ROUND), "p95": round(float(p95), _ROUND),
            "p99": round(float(p99), _ROUND)}


class ServiceMetrics:
    """Folds serve events into a deterministic service-level summary."""

    def __init__(self) -> None:
        self.offered: dict[str, int] = {}
        self.admitted: dict[str, int] = {}
        self.shed: dict[str, dict[str, int]] = {}
        self.latencies: dict[str, list] = {}
        self.completed = 0
        self.coalesced = 0
        self.ops_launched = 0
        self.threads_launched = 0
        self.batches = 0
        self.shard_launches = 0

    # -- bus plumbing --------------------------------------------------------

    def attach(self, bus) -> None:
        bus.subscribe(self.on_event)

    def detach(self, bus) -> None:
        bus.unsubscribe(self.on_event)

    def on_event(self, ts: float, event) -> None:
        if isinstance(event, ServiceRequest):
            t = event.tenant
            self.offered[t] = self.offered.get(t, 0) + 1
            if event.admitted:
                self.admitted[t] = self.admitted.get(t, 0) + 1
            else:
                reasons = self.shed.setdefault(t, {})
                reasons[event.reason] = reasons.get(event.reason, 0) + 1
        elif isinstance(event, ServiceComplete):
            self.completed += 1
            if event.coalesced:
                self.coalesced += 1
            self.latencies.setdefault(event.tenant, []).append(event.latency)
        elif isinstance(event, ServiceBatch):
            self.batches += 1
            self.ops_launched += event.n_ops
            self.threads_launched += event.threads
            self.shard_launches += event.shards

    # -- summary -------------------------------------------------------------

    def summary(self, elapsed: float) -> dict:
        """The service-level report over a window of ``elapsed`` sim-seconds."""
        tenants = {}
        for t in sorted(self.offered):
            shed = self.shed.get(t, {})
            shed_total = sum(shed.values())
            offered = self.offered[t]
            lat = self.latencies.get(t, [])
            tenants[t] = {
                "offered": offered,
                "admitted": self.admitted.get(t, 0),
                "completed": len(lat),
                "shed": dict(sorted(shed.items())),
                "shed_rate": round(shed_total / offered, _ROUND) if offered else 0.0,
                "latency": _percentiles(lat),
            }
        all_lat = [x for lat in self.latencies.values() for x in lat]
        offered_total = sum(self.offered.values())
        shed_total = sum(sum(r.values()) for r in self.shed.values())
        return {
            "elapsed": round(elapsed, _ROUND),
            "offered": offered_total,
            "admitted": sum(self.admitted.values()),
            "completed": self.completed,
            "coalesced": self.coalesced,
            "shed": shed_total,
            "shed_rate": (round(shed_total / offered_total, _ROUND)
                          if offered_total else 0.0),
            "throughput_ops_per_s": (round(self.completed / elapsed, 3)
                                     if elapsed > 0 else 0.0),
            "batches": self.batches,
            "shard_launches": self.shard_launches,
            "batch_occupancy": (round(self.ops_launched / self.threads_launched,
                                      _ROUND)
                                if self.threads_launched else 0.0),
            "latency": _percentiles(all_lat),
            "tenants": tenants,
        }


def render_summary(summary: dict) -> str:
    """Stable human-readable rendering (same dict -> same bytes)."""
    lines = [
        f"window          {summary['elapsed'] * 1e3:.3f} ms simulated",
        f"offered         {summary['offered']} requests",
        f"admitted        {summary['admitted']}  "
        f"(shed {summary['shed']}, rate {summary['shed_rate']:.3f})",
        f"completed       {summary['completed']}  "
        f"(coalesced {summary['coalesced']})",
        f"throughput      {summary['throughput_ops_per_s'] / 1e6:.3f} M ops/s sustained",
        f"batches         {summary['batches']}  "
        f"(occupancy {summary['batch_occupancy']:.3f}, "
        f"shard launches {summary['shard_launches']})",
    ]
    lat = summary["latency"]
    if lat["p50"] is not None:
        lines.append(
            f"latency         p50 {lat['p50'] * 1e6:.2f} us | "
            f"p95 {lat['p95'] * 1e6:.2f} us | p99 {lat['p99'] * 1e6:.2f} us")
    for name, t in summary["tenants"].items():
        tl = t["latency"]
        p99 = f"{tl['p99'] * 1e6:.2f} us" if tl["p99"] is not None else "n/a"
        lines.append(
            f"  {name}      offered {t['offered']:5d}  admitted {t['admitted']:5d}  "
            f"shed {t['shed_rate']:.3f}  p99 {p99}")
    return "\n".join(lines)


def summary_json(summary: dict) -> str:
    """Canonical JSON bytes for determinism checks and artefacts."""
    return json.dumps(summary, indent=2, sort_keys=True)

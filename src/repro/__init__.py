"""GPM: Leveraging Persistent Memory from a GPU — simulated reproduction.

This library reproduces the ASPLOS 2022 paper by Pandey, Kamath and Basu in
pure Python.  It contains:

* :mod:`repro.sim` — the simulated Xeon + Optane + GPU machine;
* :mod:`repro.gpu` — a SIMT GPU engine (warps, coalescing, scoped fences);
* :mod:`repro.host` — CPU software: DAX filesystem, DMA, the CAP baselines;
* :mod:`repro.core` — **libGPM**, the paper's contribution: persistency
  primitives, hierarchical coalesced logging, checkpointing;
* :mod:`repro.workloads` — the GPMbench suite (9 workloads);
* :mod:`repro.baselines` — CPU-only persistent-memory applications;
* :mod:`repro.experiments` — harnesses regenerating every figure and table.

Quickstart::

    from repro import System
    from repro.core import gpm_map, persist_window

    sys = System()
    region = gpm_map(sys, "/pm/data", 1 << 20, create=True)
    with persist_window(sys):
        sys.gpu.launch(my_kernel, grid, block, (region, ...))
"""

from .system import System
from .version import __version__

__all__ = ["System", "__version__"]

# Mirrors the paper artifact's interface (Appendix A.5):
#   make figure_1 / figure_9 / figure_10 / figure_11a / table_5 / all
# Reports land in reports/out_*.txt, as in the original artifact.

PY ?= python3

JOBS ?= 1

.PHONY: all figure_1 figure_3 figure_9 figure_10 figure_11a figure_11b \
        figure_12 table_4 table_5 ablations extensions test bench \
        bench_engine clean

figure_1:
	$(PY) -m repro run figure1a figure1b

figure_3:
	$(PY) -m repro run figure3

figure_9:
	$(PY) -m repro run figure9

figure_10:
	$(PY) -m repro run figure10

figure_11a:
	$(PY) -m repro run figure11a

figure_11b:
	$(PY) -m repro run figure11b

figure_12:
	$(PY) -m repro run figure12 figure12_patterns

table_4:
	$(PY) -m repro run table4

table_5:
	$(PY) -m repro run table5

ablations:
	$(PY) -m repro run ablation_striping ablation_coalescing ablation_ddio \
	    ablation_entry_size ablation_binomial sensitivity

extensions:
	$(PY) -m repro run cxl_projection

all:
	$(PY) -m repro all --jobs $(JOBS)

test:
	$(PY) -m pytest tests/

bench:
	$(PY) -m pytest benchmarks/ --benchmark-only

bench_engine:
	$(PY) -m repro bench --jobs $(JOBS)

clean:
	rm -rf reports .pytest_cache

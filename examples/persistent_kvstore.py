"""A crash-consistent GPU key-value store (the gpKVS flow of Fig. 6).

Runs batched SETs against a PM-resident MegaKV-style store with HCL
write-ahead logging, kills the machine in the middle of a batch, runs the
recovery kernel, and shows the store rolled back to the last committed
batch - then compares throughput against today's CPU persistent KVS.

Run:  python examples/persistent_kvstore.py
"""

import numpy as np

from repro import System
from repro.baselines import PmemKvStore, RocksDbStore
from repro.core.mapping import gpm_map
from repro.sim import CrashInjector, SimulatedCrash
from repro.workloads import GpKvs, KvsConfig, Mode, make_system


def demo_recovery() -> None:
    print("=== crash consistency ===")
    config = KvsConfig(n_sets=1024, ways=8, batch_size=512, set_batches=3)
    workload = GpKvs(config)
    system = make_system(Mode.GPM)
    injector = CrashInjector(system.machine, np.random.default_rng(2))

    # Crash somewhere inside the second batch.
    injector.arm(config.batch_size + config.batch_size // 2)
    try:
        workload.run(Mode.GPM, system=system, crash_injector=injector)
    except SimulatedCrash as crash:
        print(f"power failed after {crash.threads_retired} SET threads "
              f"(mid-batch 2 of 3)")

    table = gpm_map(system, "/pm/gpkvs.table")
    keys = table.view(np.uint64, 0, config.n_sets * config.ways)
    print(f"durable pairs right after the crash: {np.count_nonzero(keys)} "
          f"(some of batch 2 leaked in - not yet consistent)")

    restore_latency = workload.recover(system, Mode.GPM)
    print(f"recovery kernel undid the partial batch in "
          f"{restore_latency * 1e6:.1f} simulated us")
    print(f"durable pairs after recovery: {np.count_nonzero(keys)} "
          f"(exactly the committed batch 1)\n")


def demo_throughput() -> None:
    print("=== throughput vs CPU persistent KVS (Fig. 1a) ===")
    gpm = GpKvs().run(Mode.GPM)
    gpm_thr = gpm.extras["throughput_ops_per_s"]
    print(f"{'GPM-KVS':<16} {gpm_thr / 1e6:6.2f} Mops/s")
    for cls in (PmemKvStore, RocksDbStore):
        thr = cls(System()).throughput()
        print(f"{cls.display_name:<16} {thr / 1e6:6.2f} Mops/s   "
              f"(GPM is {gpm_thr / thr:.1f}x faster)")


if __name__ == "__main__":
    demo_recovery()
    demo_throughput()

"""Fault-tolerant DNN training with libGPM checkpoints (Fig. 7).

Trains the LeNet model on synthetic MNIST, checkpointing the weights to PM
with ``gpmcp`` every few passes.  A simulated power failure wipes the GPU;
training then resumes from the last durable checkpoint instead of from
scratch, exactly following the paper's Fig. 7 recovery flow.

Run:  python examples/dnn_checkpointing.py
"""

import numpy as np

from repro import System
from repro.core import gpmcp_create, gpmcp_open, gpmcp_register
from repro.gpu import DeviceArray
from repro.workloads.lenet import LeNet, synthetic_mnist

CHECKPOINT_EVERY = 3
ITERATIONS_BEFORE_CRASH = 8
BATCH = 32


def train(net, images, labels, rng, system, weights, cp, start, count):
    losses = []
    for it in range(start, start + count):
        idx = rng.integers(0, images.shape[0], size=BATCH)
        losses.append(net.train_step(images[idx], labels[idx]))
        system.gpu.compute(net.flops_per_example() * BATCH, active_threads=256)
        if (it + 1) % CHECKPOINT_EVERY == 0:
            weights.np[:] = net.params.pack()
            t = cp.checkpoint(0)
            print(f"  iter {it + 1:3d}  loss {losses[-1]:.3f}  "
                  f"checkpointed {weights.nbytes / 1e6:.1f} MB in "
                  f"{t * 1e3:.3f} simulated ms")
    return losses


def main() -> None:
    system = System()
    net = LeNet(seed=0)
    images, labels = synthetic_mnist(256, seed=0, size=LeNet.IMAGE_SIZE)
    rng = np.random.default_rng(0)

    nbytes = net.params.total_bytes
    hbm = system.machine.alloc_hbm("weights", nbytes)
    weights = DeviceArray(hbm, np.float32, 0, nbytes // 4)
    cp = gpmcp_create(system, "/pm/lenet.cp", nbytes, elements=1, groups=1)
    gpmcp_register(cp, weights, group=0)

    print(f"training LeNet ({nbytes / 1e6:.1f} MB of parameters), "
          f"checkpointing every {CHECKPOINT_EVERY} passes...")
    train(net, images, labels, rng, system, weights, cp, 0,
          ITERATIONS_BEFORE_CRASH)

    print("\npower failure! GPU memory and all un-checkpointed progress gone.")
    system.crash()
    system.machine.drop_volatile_regions()

    # Fig. 7's RECOVERY_MODE path: open, re-register in order, restore.
    hbm2 = system.machine.alloc_hbm("weights", nbytes)
    weights2 = DeviceArray(hbm2, np.float32, 0, nbytes // 4)
    cp2 = gpmcp_open(system, "/pm/lenet.cp")
    gpmcp_register(cp2, weights2, group=0)
    t = cp2.restore(0)
    print(f"restored the last durable checkpoint in {t * 1e3:.3f} "
          f"simulated ms")

    recovered = LeNet(seed=99)  # wrong init, about to be overwritten
    recovered.params.unpack(weights2.np.copy())
    acc = recovered.accuracy(images, labels)
    print(f"recovered model accuracy: {acc:.2f} "
          f"(fresh random init would be ~0.10)")

    print("\nresuming training from the checkpoint...")
    train(recovered, images, labels, rng, system, weights2, cp2,
          ITERATIONS_BEFORE_CRASH, 6)
    print(f"final accuracy: {recovered.accuracy(images, labels):.2f}")


if __name__ == "__main__":
    main()

"""Building on libGPM: reusable crash-consistent data structures.

Shows the adopter-facing layer of the library - `repro.pstruct`'s
persistent hash map and append ring - plus the post-crash inspector that
tells an operator what is durably on PM and whether recovery is needed.

Run:  python examples/persistent_structures.py
"""

import numpy as np

from repro import System
from repro.core import format_survey
from repro.core.persist import persist_window
from repro.pstruct import PersistentHashMap, PersistentRing
from repro.sim import CrashInjector, SimulatedCrash


def ring_demo(system: System) -> None:
    print("=== PersistentRing: multi-producer durable journal ===")
    ring = PersistentRing.create(system, "/pm/journal", capacity=4096)

    def producer(ctx, ring, n):
        if ctx.global_id < n:
            ring.append(ctx, 5000 + ctx.global_id)

    injector = CrashInjector(system.machine, np.random.default_rng(8))
    injector.arm(300)
    try:
        with persist_window(system):
            system.gpu.launch(producer, 4, 128, (ring, 512),
                              crash_injector=injector)
    except SimulatedCrash as crash:
        print(f"power failed after {crash.threads_retired} producer threads")

    committed = ring.committed()
    prefix = ring.durable_prefix()
    print(f"durably committed records: {len(committed)} "
          f"(gap-free prefix: {len(prefix)}, holes: {len(ring.holes())})")
    next_ticket = ring.recover()
    print(f"cursor repaired; appends resume at ticket {next_ticket}\n")


def hashmap_demo(system: System) -> None:
    print("=== PersistentHashMap: atomic batched inserts ===")
    pmap = PersistentHashMap.create(system, "/pm/index", capacity=8192)
    pmap.insert_batch([101, 202, 303], [1, 2, 3])
    print(f"committed batch of 3; map holds {len(pmap)} pairs")

    injector = CrashInjector(system.machine, np.random.default_rng(9))
    injector.arm(40)
    keys = np.arange(1000, 1096, dtype=np.uint64)
    try:
        pmap.insert_batch(keys, keys * 7, crash_injector=injector)
    except SimulatedCrash:
        print("power failed mid-batch (96 inserts in flight)")

    print("\npost-crash inspection (what an operator would run):")
    print(format_survey(system))

    recovered = PersistentHashMap.open(system, "/pm/index")
    recovered.recover()
    print(f"\nafter recovery: {len(recovered)} pairs "
          f"(the interrupted batch was undone)")
    assert recovered.get(101) == 1
    assert all(recovered.get(int(k)) is None for k in keys)
    print("baseline pairs intact; no partial insert leaked")


def main() -> None:
    system = System()
    ring_demo(system)
    hashmap_demo(system)


if __name__ == "__main__":
    main()

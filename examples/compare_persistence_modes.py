"""Compare every persistence system on one workload (a mini Fig. 9/10).

Runs a GPMbench workload under all seven persistence configurations the
paper evaluates and prints their relative performance plus the traffic
that explains it (persisted bytes, PCIe write bandwidth).

Run:  python examples/compare_persistence_modes.py [workload]
      where workload is one of: gpkvs, gpdb-u, dnn, bfs, ps (default gpkvs)
"""

import sys

from repro.host.gpufs import GpufsUnsupported
from repro.workloads import (
    DnnTraining,
    GpDb,
    GpKvs,
    GraphBfs,
    Mode,
    PrefixSum,
)

WORKLOADS = {
    "gpkvs": GpKvs,
    "gpdb-u": lambda: GpDb("update"),
    "dnn": DnnTraining,
    "bfs": GraphBfs,
    "ps": PrefixSum,
}

MODES = [Mode.CAP_FS, Mode.CAP_MM, Mode.CAP_EADR, Mode.GPUFS,
         Mode.GPM_NDP, Mode.GPM, Mode.GPM_EADR]


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "gpkvs"
    if name not in WORKLOADS:
        raise SystemExit(f"unknown workload {name!r}; pick from {sorted(WORKLOADS)}")
    make = WORKLOADS[name]

    print(f"{'mode':<10} {'time':>12} {'vs CAP-fs':>10} "
          f"{'PM bytes':>12} {'PCIe write':>12}")
    baseline = None
    for mode in MODES:
        workload = make() if callable(make) else make
        try:
            result = workload.run(mode)
        except GpufsUnsupported as exc:
            print(f"{mode.value:<10} {'unsupported':>12}            ({exc})")
            continue
        if baseline is None or mode is Mode.CAP_FS:
            baseline = baseline or result.elapsed
        speedup = baseline / result.elapsed
        print(f"{mode.value:<10} {result.elapsed * 1e3:9.3f} ms "
              f"{speedup:9.2f}x {result.bytes_persisted:>12,} "
              f"{result.pcie_write_bandwidth / 1e9:9.2f} GB/s")

    print("\nreading the table:")
    print(" - CAP must ship whole structures (PM bytes column = write")
    print("   amplification); GPM persists only what changed")
    print(" - GPM-NDP shows what direct *access* buys without direct")
    print("   *persistence*; GPM-eADR projects future hardware")


if __name__ == "__main__":
    main()

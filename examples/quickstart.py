"""Quickstart: fine-grained persistence from a (simulated) GPU kernel.

Demonstrates the core GPM loop from the paper:

1. ``gpm_map`` a PM-resident file into the GPU's address space;
2. open a persistence window (``gpm_persist_begin`` disables DDIO);
3. launch a kernel whose threads store to PM and call ``gpm_persist()``
   (the system-scope fence);
4. power-fail the machine and observe that exactly the fenced data
   survived.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import System
from repro.core import gpm_map, gpm_persist, persist_window


def kernel(ctx, data, n):
    """Each thread persists its own element; odd threads skip the fence."""
    i = ctx.global_id
    if i >= n:
        return
    data.write(ctx, i, i * i)
    if i % 2 == 0:
        gpm_persist(ctx)  # __threadfence_system() inside a persist window


def main() -> None:
    system = System()
    n = 256

    print("mapping a PM-resident file into the GPU's address space...")
    region = gpm_map(system, "/pm/quickstart", n * 4, create=True)
    data = region.array(np.uint32)

    print("launching the kernel inside a persistence window...")
    with persist_window(system):
        result = system.gpu.launch(kernel, 2, 128, (data, n))

    print(f"  kernel time: {result.elapsed * 1e6:.2f} simulated us")
    print(f"  fences issued: {result.accounting.fences}")
    print(f"  PCIe transactions: {result.accounting.host_write_tx} "
          f"(128 B-coalesced across each warp)")

    print("\nvisible state before the crash:")
    print(" ", data.np[:8], "...")

    print("\npower failure!")
    system.crash()

    survived = data.np[:8]
    print("durable state after the crash:")
    print(" ", survived, "...")
    even = np.arange(0, n, 2)
    assert (data.np[even] == (even * even).astype(np.uint32)).all(), \
        "fenced writes must survive"
    # Odd threads never fenced: their warp drained at retirement, which the
    # persistence window still made durable - but only because DDIO was off.
    print("\nevery store that reached the memory controller inside the")
    print("persistence window survived; nothing else did.")

    # The same kernel without a window: DDIO parks writes in the LLC.
    system2 = System()
    region2 = gpm_map(system2, "/pm/quickstart", n * 4, create=True)
    data2 = region2.array(np.uint32)
    system2.gpu.launch(kernel, 2, 128, (data2, n))  # no persist_window!
    system2.crash()
    assert not data2.np.any()
    print("without the window (DDIO on), the same fences completed at the")
    print("volatile LLC and the crash erased everything - the exact trap")
    print("GPM's selective DDIO disabling closes (Section 3.1).")


if __name__ == "__main__":
    main()

"""Resumable graph traversal with native persistence (Section 4.3).

BFS over a road-network-like graph persists the per-node costs and the
visit sequence from inside the kernels.  After a random mid-search power
failure, the traversal *resumes* from the durable partial state instead of
restarting - the defining capability of GPM's native-persistence class.

Run:  python examples/resumable_bfs.py
"""

import numpy as np

from repro.sim import CrashInjector, SimulatedCrash
from repro.workloads import BfsConfig, GraphBfs, Mode, make_system
from repro.workloads.base import ModeDriver, PersistentBuffer
from repro.workloads.bfs import INF


def main() -> None:
    config = BfsConfig(rows=48, cols=96, engine="kernel",
                       shortcut_fraction=0.002)
    workload = GraphBfs(config)
    system = make_system(Mode.GPM)
    n = workload.n_nodes
    print(f"BFS over a {config.rows}x{config.cols} road grid "
          f"({n} nodes), persisting costs + visit order to PM...")

    injector = CrashInjector(system.machine, np.random.default_rng(11))
    point = injector.arm_random(n)
    try:
        workload.run(Mode.GPM, system=system, crash_injector=injector)
        print("finished without a crash (unlucky draw) - rerun for drama")
        return
    except SimulatedCrash:
        pass

    driver = ModeDriver(system, Mode.GPM)
    system.machine.drop_volatile_regions()
    buf = PersistentBuffer.reopen(driver, "/pm/bfs.state")
    header = buf.visible_view(np.uint32, 0, 2)
    costs = buf.visible_view(np.uint32, 128, n)
    done = int(np.count_nonzero(costs != INF))
    print(f"power failed after ~{point} relaxations: "
          f"{done}/{n} nodes have durable costs "
          f"(durable level counter: {int(header[0]) - 1})")

    print("resuming from the durable partial traversal...")
    resumed = GraphBfs(config)
    result = resumed.run(Mode.GPM, system=system, resume_buffer=buf)
    print(f"resumed search finished at level {result.extras['levels']} "
          f"in {result.elapsed * 1e3:.2f} additional simulated ms")
    assert resumed.verify(), "resumed costs must match a from-scratch BFS"
    print("verified: resumed costs are identical to a from-scratch BFS")

    # What the alternative costs: restart from zero.
    fresh = GraphBfs(config).run(Mode.GPM)
    print(f"(a full restart would have taken {fresh.elapsed * 1e3:.2f} "
          f"simulated ms)")


if __name__ == "__main__":
    main()

"""Regenerate Figure 9: CAP-mm / GPM / GPUfs speedups over CAP-fs.

Paper result: GPM wins everywhere - gpKVS 7-8x, checkpointing 11-18x,
BFS 85x; GPUfs runs only the coarse-grain workloads and is slower than
CAP-fs (0.1-0.7x).
"""

from repro.experiments import figure9


def test_figure9(regenerate):
    table = regenerate(figure9)
    assert all(row[2] > row[1] > 1.0 for row in table.rows)
    assert table.lookup("BFS", "gpm") == max(row[2] for row in table.rows)

"""Regenerate Table 4: write amplification of CAP over GPM.

Paper result: gpKVS 39.38x, gpDB (I) 1.27x, gpDB (U) 19.88x; 1.0x for the
checkpointing workloads.
"""

from repro.experiments import table4


def test_table4(regenerate):
    table = regenerate(table4)
    assert table.lookup("gpKVS", "write_amplification") > 20
    assert abs(table.lookup("gpDB (I)", "write_amplification") - 1.0) < 0.3
    assert table.lookup("gpDB (U)", "write_amplification") > 10

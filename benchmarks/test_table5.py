"""Regenerate Table 5: restoration latency under GPM.

Paper result: worst-case undo recovery costs at most ~19% of operation
time for the transactional workloads; checkpoint restores are well under
2% (at the paper's full run lengths - our scaled runs amortise the
restore over far fewer iterations, so the percentages are higher).
"""

from repro.experiments import table5


def test_table5(regenerate):
    table = regenerate(table5)
    assert len(table.rows) == 7
    assert all(row[3] < 100 for row in table.rows)

"""Regenerate the Section 6.1 in-text results.

Paper result: checkpointing on GPM improves total execution time over CAP
by 19%-122% depending on frequency (DNN: +61%/+40% at every 10th/20th
pass); the CPU-only OpenMP gpDB port is 3.1x (INSERT) and 6.9x (UPDATE)
slower than GPM.
"""

from repro.experiments import checkpoint_frequency, cpu_only_db


def test_checkpoint_frequency(regenerate):
    table = regenerate(checkpoint_frequency)
    assert all(10 < row[4] < 200 for row in table.rows)


def test_cpu_only_db(regenerate):
    table = regenerate(cpu_only_db)
    assert table.lookup("UPDATE", "speedup") > table.lookup("INSERT", "speedup") > 1

"""Regenerate Figure 1: benefits of GPM over CPU with PM.

Paper result (Fig. 1a): GPM-KVS outperforms Intel pmemKV / RocksDB-PM /
MatrixKV by 2.7x / 5.8x / 3.1x on batched SETs.
Paper result (Fig. 1b): GPM BFS / SRAD / PS beat multi-threaded CPU PM
implementations by 27x / 19.2x / 2.8x.
"""

from repro.experiments import figure1a, figure1b


def test_figure1a(regenerate):
    table = regenerate(figure1a)
    gpm = table.lookup("GPM-KVS", "throughput_mops")
    for store in ("Intel PmemKV", "RocksDB-PM", "MatrixKV"):
        assert gpm > table.lookup(store, "throughput_mops")


def test_figure1b(regenerate):
    table = regenerate(figure1b)
    assert all(row[3] > 1.0 for row in table.rows)

"""Benchmark fixtures: each bench regenerates one paper artefact.

Benchmarks run the experiment harnesses once (``pedantic`` mode - the
simulations are deterministic, so repeated rounds only measure Python
overhead), print the reproduced table next to the paper's numbers, and
save the artifact-style ``out_*.txt`` under ``reports/``.
"""

import pytest


@pytest.fixture
def regenerate(benchmark, capsys):
    """Run an experiment function once under pytest-benchmark and report."""

    def _run(fn, rounds: int = 1):
        table = benchmark.pedantic(fn, rounds=rounds, iterations=1)
        table.save("reports")
        with capsys.disabled():
            print()
            print(table.to_text())
        return table

    return _run

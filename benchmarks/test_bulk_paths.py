"""Micro-benchmarks of the zero-copy bulk data paths.

Three hot paths got copy-elision or scratch reuse (see
``docs/performance.md``, "Bulk data paths"):

* the CAP persist pipeline - the bounce-buffer fill is deferred and the
  host-side copy reads straight through it back to the GPU source view;
* ``stream_copy`` - lowered to one ``np.copyto`` through ``BulkTransfer``;
* ragged byte-index construction (warp drains, ``persist_ranges``) - built
  in place over the shared ``iota64`` ramp instead of per-call arange /
  concatenate temporaries.

Each bench has an eager/naive reference twin so a regression in the
optimised idiom shows up as a shrinking gap, not just noise.
"""

import numpy as np
import pytest

from repro.sim import bulk
from repro.workloads.base import Mode, make_system

_MB = 1 << 20


def _cap_system():
    from repro.core.mapping import gpm_map
    from repro.workloads.base import ModeDriver

    system = make_system(Mode.CAP_MM)
    driver = ModeDriver(system, Mode.CAP_MM)
    hbm = system.machine.alloc_hbm("bench.src", 4 * _MB)
    hbm.view(np.uint8)[:] = 0x5A
    pm = gpm_map(system, "/pm/bench.dst", 4 * _MB, create=True)
    return driver.cap, hbm, pm.region


@pytest.mark.parametrize("elide", [True, False], ids=["elided", "eager"])
def test_cap_persist_pipeline(benchmark, monkeypatch, elide):
    """The full DMA -> bounce -> CPU persist pipeline, 4 MB per round."""
    if elide:
        monkeypatch.delenv(bulk.NO_ELISION_ENV, raising=False)
    else:
        monkeypatch.setenv(bulk.NO_ELISION_ENV, "1")
    cap, hbm, pm = _cap_system()

    def run():
        for _ in range(8):
            cap.persist_output(hbm, 0, pm, 0, 4 * _MB)

    benchmark.pedantic(run, rounds=3, iterations=1)
    assert pm.persisted_view(np.uint8)[0] == 0x5A


def test_stream_copy_bulk(benchmark):
    """Whole-region device-side stream_copy (one BulkTransfer per call)."""
    system = make_system(Mode.GPM)
    src = system.machine.alloc_hbm("bench.a", 4 * _MB)
    dst = system.machine.alloc_hbm("bench.b", 4 * _MB)
    src.view(np.uint8)[:] = 0xA5

    def run():
        for _ in range(16):
            system.gpu.stream_copy(dst, 0, src, 0, 4 * _MB, persist=False)

    benchmark.pedantic(run, rounds=3, iterations=1)
    assert dst.view(np.uint8)[-1] == 0xA5


def _ragged(n_segments: int, seg_bytes: int = 48, stride: int = 64):
    offsets = np.arange(n_segments, dtype=np.int64) * stride
    nbytes = np.full(n_segments, seg_bytes, dtype=np.int64)
    return offsets, nbytes


def test_ragged_indices_inplace(benchmark):
    """The shipped idiom (``WarpContext._ragged_indices``,
    ``Region.persist_ranges``): cumsum in place + shared iota64 ramp."""
    offsets, nbytes = _ragged(4096)

    def run():
        for _ in range(100):
            total = int(nbytes.sum())
            before = np.cumsum(nbytes)
            before -= nbytes
            np.subtract(offsets, before, out=before)
            idx = np.repeat(before, nbytes)
            idx += bulk.iota64(total)

    benchmark.pedantic(run, rounds=3, iterations=1)


def test_ragged_indices_concatenate_reference(benchmark):
    """The historical idiom: one arange + concatenate per segment batch."""
    offsets, nbytes = _ragged(4096)

    def run():
        for _ in range(100):
            np.concatenate([
                np.arange(off, off + n, dtype=np.int64)
                for off, n in zip(offsets.tolist(), nbytes.tolist())
            ])

    benchmark.pedantic(run, rounds=3, iterations=1)

"""Ablation benches: each design choice of GPM, isolated.

These are extensions beyond the paper's figures: HCL's striping (Fig. 5),
the hardware coalescer's contribution, the cost/benefit of disabling DDIO,
HCL entry-size scaling, the Section 4.3 binomial counter-example, and the
Section 3.3 CXL projection.
"""

from repro.experiments import (
    binomial_counter_example,
    ddio_ablation,
    hcl_striping_ablation,
    log_entry_size_sweep,
    warp_coalescing_ablation,
)
from repro.extensions import cxl_projection


def test_ablation_striping(regenerate):
    table = regenerate(hcl_striping_ablation)
    assert table.lookup("striped (Fig. 5)", "speedup_vs_unstriped") > 3


def test_ablation_coalescing(regenerate):
    table = regenerate(warp_coalescing_ablation)
    assert table.column("slowdown_vs_coalesced")[1] > 3


def test_ablation_ddio(regenerate):
    table = regenerate(ddio_ablation)
    assert table.rows[1][3] is True  # the window buys durability


def test_ablation_entry_size(regenerate):
    table = regenerate(log_entry_size_sweep)
    per_stripe = table.column("us_per_stripe")
    assert per_stripe[-1] < per_stripe[0]


def test_ablation_binomial(regenerate):
    table = regenerate(binomial_counter_example)
    assert table.lookup("gpKVS", "gpm_vs_capfs") > \
        table.lookup("binomial options", "gpm_vs_capfs")


def test_cxl_projection(regenerate):
    table = regenerate(cxl_projection)
    assert table.rows[-1][3] > 1.5  # persist plateau lifts under CXL


def test_sensitivity_sweep(regenerate):
    from repro.experiments import sensitivity_sweep

    table = regenerate(sensitivity_sweep)
    penalty_rows = [r for r in table.rows if r[0] == "pm_random_penalty"]
    assert penalty_rows[0][4] > penalty_rows[-1][4]  # better PM -> bigger win


def test_persistence_profile(regenerate):
    from repro.experiments import persistence_profile

    table = regenerate(persistence_profile)
    fences_per_kb = {row[0]: row[2] for row in table.rows}
    assert fences_per_kb["gpKVS"] > 100 * fences_per_kb["DNN"]


def test_multi_gpu_scaling(regenerate):
    from repro.experiments import multi_gpu_scaling

    table = regenerate(multi_gpu_scaling)
    assert table.rows[1][2] > 1.8       # 2 GPUs nearly double
    assert table.rows[-1][1] <= 12.6    # Optane media ceiling


def test_delta_checkpoint(regenerate):
    from repro.extensions import delta_vs_full

    table = regenerate(delta_vs_full)
    speedups = table.column("delta_speedup")
    assert speedups[0] > 2 and speedups[0] > speedups[-1]


def test_redo_vs_undo(regenerate):
    from repro.extensions import redo_vs_undo

    table = regenerate(redo_vs_undo)
    undo = table.lookup("undo (libGPM default)", "commit_latency_us")
    redo = table.lookup("redo (extension)", "commit_latency_us")
    assert undo > 3 * redo


def test_ycsb_skew(regenerate):
    from repro.workloads.ycsb import ycsb_skew_sweep

    table = regenerate(ycsb_skew_sweep)
    speedups = table.column("gpm_speedup")
    assert min(speedups) > 3  # skew-robust advantage

"""Regenerate Figure 10: GPM-NDP / GPM / GPM-eADR / CAP-eADR.

Paper result: GPM beats GPM-NDP by up to 6x (direct persistence matters
beyond direct access); eADR lifts GPM by up to 13x on ordering-heavy
workloads; GPM-eADR beats CAP-eADR by 24x on average.
"""

from repro.experiments import eadr_summary, figure10


def test_figure10(regenerate):
    table = regenerate(figure10)
    summary = eadr_summary(table)
    print("summary:", {k: round(v, 2) for k, v in summary.items()})
    assert summary["max_gpm_over_ndp"] > 2
    assert summary["max_eadr_over_gpm"] > 1.5
    assert summary["avg_gpm_eadr_over_cap_eadr"] > 2

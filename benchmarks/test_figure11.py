"""Regenerate Figure 11: HCL versus conventional distributed logging.

Paper result (11a): HCL speeds up gpKVS by 3.3x and gpDB (U) by 6.1x.
Paper result (11b): HCL's insert latency stays flat with thread count
while the conventional log's grows; ~3.6x lower on average.
"""

from repro.experiments import figure11a, figure11b


def test_figure11a(regenerate):
    table = regenerate(figure11a)
    assert all(row[3] > 2 for row in table.rows)


def test_figure11b(regenerate):
    table = regenerate(figure11b)
    ratios = table.column("ratio")
    assert min(ratios) > 1.5

"""Micro-benchmarks of the vectorised persistence hot path.

``Region.persist_ranges`` runs once per Optane drain epoch; warp drains from
large kernels hand it thousands of segments.  These benches compare the
fancy-indexed bulk copy against the historical slice loop, and time one
warp-drain-shaped kernel launch end to end.
"""

import numpy as np
import pytest

from repro import System
from repro.core.persist import persist_window
from repro.sim import MemKind, Region


def _segments(n: int, seg_bytes: int = 8, stride: int = 64):
    starts = np.arange(n, dtype=np.int64) * stride
    lengths = np.full(n, seg_bytes, dtype=np.int64)
    return starts, lengths


@pytest.mark.parametrize("n_segments", [64, 1024, 4096])
def test_persist_ranges_vectorised(benchmark, n_segments):
    region = Region("pm", n_segments * 64 + 64, MemKind.PM)
    region.visible[:] = 0x5A
    starts, lengths = _segments(n_segments)

    def run():
        for _ in range(100):
            region.persist_ranges(starts, lengths)

    benchmark.pedantic(run, rounds=3, iterations=1)
    assert region.persisted[int(starts[-1])] == 0x5A


@pytest.mark.parametrize("n_segments", [4096])
def test_persist_ranges_slice_loop_reference(benchmark, n_segments):
    """The pre-vectorisation implementation, kept for comparison."""
    region = Region("pm", n_segments * 64 + 64, MemKind.PM)
    region.visible[:] = 0xA5
    starts, lengths = _segments(n_segments)

    def run():
        for _ in range(100):
            for start, length in zip(starts.tolist(), lengths.tolist()):
                region.persisted[start:start + length] = \
                    region.visible[start:start + length]

    benchmark.pedantic(run, rounds=3, iterations=1)


def test_kernel_launch_hot_path(benchmark):
    """A prefix-sum-shaped launch: per-thread stores + fences to PM.

    Guards the event-bus refactor's promise that the kernel hot path is no
    slower than per-store counter bumps (see CHANGES.md for baselines).
    """

    def run():
        system = System()
        pm = system.machine.alloc_pm("pm", 1 << 20)

        def kernel(ctx):
            base = ctx.global_id * 8
            ctx.store(pm, base, ctx.global_id, dtype=np.uint64)
            ctx.persist()

        with persist_window(system):
            system.gpu.launch(kernel, 256, 64)
        return system

    system = benchmark.pedantic(run, rounds=3, iterations=1)
    assert system.stats.pm_bytes_written == 256 * 64 * 8

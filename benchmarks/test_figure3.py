"""Regenerate Figure 3: scaling of persistence with threads.

Paper result: CPU persistence plateaus at 1.47x over one thread; GPU
persistence scales to ~4x one CPU thread before the PCIe endpoint's
bounded concurrency flattens it.
"""

from repro.experiments import figure3


def test_figure3(regenerate):
    table = regenerate(figure3)
    cpu = [r[2] for r in table.rows if r[0] == "cpu"]
    gpu = [r[2] for r in table.rows if r[0] == "gpu"]
    assert max(cpu) < 1.5
    assert max(gpu) > 3.5

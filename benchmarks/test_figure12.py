"""Regenerate Figure 12: PCIe write bandwidth to PM under GPM.

Paper result: streaming checkpoint workloads approach the link's ~13 GB/s;
sparse transactional updates and BFS's random 4 B writes sit far below,
bottlenecked at the Optane media (whose pattern microbenchmark gives
12.5 / 3.13 / 0.72 GB/s for aligned / unaligned / random access).
"""

from repro.experiments import figure12, pattern_microbenchmark


def test_figure12_patterns(regenerate):
    table = regenerate(pattern_microbenchmark)
    for row in table.rows:
        assert abs(row[1] - row[2]) / row[2] < 0.02


def test_figure12_workloads(regenerate):
    table = regenerate(figure12)
    bw = {row[0]: row[1] for row in table.rows}
    assert bw["BLK"] > bw["gpKVS"]
    assert bw["BFS"] == min(bw.values())

"""Setup shim for environments without the ``wheel`` package.

Allows ``pip install -e . --no-use-pep517`` (legacy editable install) when
PEP 517 build isolation is unavailable (e.g. offline machines).  All real
metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()

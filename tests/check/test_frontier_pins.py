"""Seed-corpus frontier-count pins: the explored crash space cannot shrink.

The hand-written oracle targets double as the litmus fuzzer's seed
corpus.  Their reference runs' frontier counts are pinned here (and in
``repro.check.litmus.SEED_CORPUS``): a generator or event-bus refactor
that silently drops frontier-tagged events - shrinking the crash space
every exploration walks - fails these before it can hide anything.
"""

import pytest

from repro.check import CrashExplorer, parse_frontier
from repro.check.explorer import explore_frontier
from repro.check.litmus import (
    BROKEN_DEMO_FRONTIER,
    SEED_CORPUS,
    run_seed_corpus,
)
from repro.gpu.warp import scalar_lane

PINS = sorted(SEED_CORPUS.items())


@pytest.mark.parametrize("target,expected", PINS,
                         ids=[t for t, _ in PINS])
def test_frontier_count_pinned(target, expected):
    assert len(CrashExplorer(target).record()) == expected


def test_pins_cover_all_targets():
    from repro.check import CHECK_TARGETS

    assert set(SEED_CORPUS) == set(CHECK_TARGETS)


def test_db_update_frontiers_match_either_lane():
    # gpDB UPDATE runs on the warp lane in normal operation, but recording
    # arms the FrontierRecorder as the crash injector, which forces the
    # scalar reference interpreter - so the crash space the explorer walks
    # must be identical whether or not the warp twins are registered.
    n_default = len(CrashExplorer("db-update").record())
    with scalar_lane():
        n_scalar = len(CrashExplorer("db-update").record())
    assert n_default == n_scalar == SEED_CORPUS["db-update"]


def test_db_update_recovery_survives_pinned_frontiers():
    # A slice of the db-update crash space end to end: crash, run the
    # warp-lane undo kernel, check batch atomicity.  (The full sweep ran
    # green across GPM/epoch/adaptive when the pin was recorded.)
    from repro.check import explore
    from repro.workloads.base import Mode

    report = explore("db-update", Mode.GPM, max_frontiers=6)
    assert report.frontiers_recorded == SEED_CORPUS["db-update"]
    assert report.ok, [
        (r.status, r.frontier.spec(), r.error,
         [v.detail for v in r.failed_verdicts])
        for r in report.results if r.status != "ok"
    ]


def test_broken_demo_bug_caught_at_pinned_frontier():
    result = explore_frontier("broken-demo", "gpm",
                              parse_frontier(BROKEN_DEMO_FRONTIER))
    assert result.status == "violation"
    assert result.failed_verdicts


def test_run_seed_corpus_reports_green():
    rows = run_seed_corpus()
    assert len(rows) == len(SEED_CORPUS) + 1  # + the broken-demo replay
    assert all(row["ok"] for row in rows), [r for r in rows if not r["ok"]]

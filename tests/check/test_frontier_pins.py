"""Seed-corpus frontier-count pins: the explored crash space cannot shrink.

The hand-written oracle targets double as the litmus fuzzer's seed
corpus.  Their reference runs' frontier counts are pinned here (and in
``repro.check.litmus.SEED_CORPUS``): a generator or event-bus refactor
that silently drops frontier-tagged events - shrinking the crash space
every exploration walks - fails these before it can hide anything.
"""

import pytest

from repro.check import CrashExplorer, parse_frontier
from repro.check.explorer import explore_frontier
from repro.check.litmus import (
    BROKEN_DEMO_FRONTIER,
    SEED_CORPUS,
    run_seed_corpus,
)

PINS = sorted(SEED_CORPUS.items())


@pytest.mark.parametrize("target,expected", PINS,
                         ids=[t for t, _ in PINS])
def test_frontier_count_pinned(target, expected):
    assert len(CrashExplorer(target).record()) == expected


def test_pins_cover_all_targets():
    from repro.check import CHECK_TARGETS

    assert set(SEED_CORPUS) == set(CHECK_TARGETS)


def test_broken_demo_bug_caught_at_pinned_frontier():
    result = explore_frontier("broken-demo", "gpm",
                              parse_frontier(BROKEN_DEMO_FRONTIER))
    assert result.status == "violation"
    assert result.failed_verdicts


def test_run_seed_corpus_reports_green():
    rows = run_seed_corpus()
    assert len(rows) == len(SEED_CORPUS) + 1  # + the broken-demo replay
    assert all(row["ok"] for row in rows), [r for r in rows if not r["ok"]]

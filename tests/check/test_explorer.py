"""CrashExplorer end to end: clean targets pass, planted bugs are caught."""

import pytest

from repro.check import CrashExplorer, explore, make_oracle, parse_frontier
from repro.check.explorer import explore_frontier
from repro.check.report import reproducer_command
from repro.workloads import Mode


class TestOracles:
    def test_unknown_target_rejected(self):
        with pytest.raises(ValueError, match="prefix_sum"):
            make_oracle("nope")

    def test_known_targets_build(self):
        oracle = make_oracle("ring")
        system = oracle.build_system(Mode.GPM)
        assert system.machine is not None


class TestCleanTarget:
    def test_ring_survives_every_frontier(self):
        report = explore("ring", Mode.GPM, max_frontiers=0)
        assert report.ok
        assert report.frontiers_explored == report.frontiers_recorded
        assert report.violations == [] and report.errors == []
        assert "PASS" in report.describe()

    def test_pruning_respects_budget(self):
        report = explore("ring", Mode.GPM, max_frontiers=6)
        assert report.frontiers_explored <= 6
        assert report.frontiers_pruned == (report.frontiers_recorded
                                           - report.frontiers_explored)
        assert report.ok

    def test_recorder_separates_mechanisms(self):
        frontiers = CrashExplorer("ring", Mode.GPM).record()
        mechanisms = {f.mechanism for f in frontiers}
        assert "event" in mechanisms
        assert "threads" in mechanisms  # unfenced windows between drains


class TestBrokenDemo:
    """The deliberately mis-fenced target: sentinel persisted before payload."""

    def test_violation_caught_with_reproducer(self):
        report = explore("broken-demo", Mode.GPM, max_frontiers=0)
        assert not report.ok
        assert report.violations
        text = report.describe()
        assert "VIOLATIONS" in text
        assert "reproduce:" in text
        spec = report.violations[0].frontier.spec()
        assert reproducer_command("broken-demo", "gpm", spec) in text

    def test_reproducer_replays_deterministically(self):
        report = explore("broken-demo", Mode.GPM, max_frontiers=0)
        frontier = report.violations[0].frontier
        first = explore_frontier("broken-demo", "gpm", frontier)
        second = explore_frontier("broken-demo", "gpm", frontier)
        assert first.status == "violation" == second.status
        assert ([v.name for v in first.failed_verdicts]
                == [v.name for v in second.failed_verdicts])

    def test_thread_frontiers_alone_miss_the_bug(self):
        # the pitch for event frontiers: random/thread-count injection can
        # never land between a warp's drain rounds, where this bug lives
        report = explore("broken-demo", Mode.GPM, max_frontiers=0)
        assert all(r.frontier.mechanism == "event" for r in report.violations)


class TestReplay:
    def test_parse_and_replay_single_frontier(self):
        report = explore("ring", Mode.GPM, max_frontiers=0)
        spec = report.results[0].frontier.spec()
        result = explore_frontier("ring", "gpm", parse_frontier(spec))
        assert result.status == "ok"
        assert result.verdicts

    def test_unknown_mechanism_is_error(self):
        from repro.check import Frontier

        result = explore_frontier("ring", "gpm", Frontier("warp", 0, "x"))
        assert result.status == "error"
        assert "mechanism" in result.error

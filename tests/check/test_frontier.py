"""Frontier taxonomy: recording, spec parsing, deterministic pruning."""

import pytest

from repro.check import Frontier, FrontierRecorder, format_frontier, parse_frontier, prune_frontiers
from repro.check.frontier import UNFENCED_WINDOW
from repro.sim.events import Crash, HbmWrite, SystemFence, WarpDrain


class TestSpecs:
    def test_roundtrip_event(self):
        f = parse_frontier("event:17")
        assert (f.mechanism, f.value) == ("event", 17)
        assert f.spec() == "event:17"

    def test_roundtrip_threads(self):
        f = parse_frontier("threads:113")
        assert (f.mechanism, f.value) == ("threads", 113)
        assert f.kind == UNFENCED_WINDOW

    @pytest.mark.parametrize("spec", ["fence:3", "event", "event:", "event:x",
                                      "event:-1", ""])
    def test_bad_specs_rejected(self, spec):
        with pytest.raises(ValueError):
            parse_frontier(spec)

    def test_format_mentions_spec_and_kind(self):
        text = format_frontier(Frontier("event", 4, "warp-drain", "warp_drain"))
        assert "event:4" in text
        assert "warp-drain" in text


class TestRecorder:
    def test_tags_frontier_events_only(self):
        rec = FrontierRecorder()
        rec.observe(0.0, SystemFence())
        rec.observe(0.0, HbmWrite(nbytes=64))   # not a frontier
        rec.observe(0.0, WarpDrain())
        frontiers = rec.frontiers()
        assert [(f.mechanism, f.value, f.kind) for f in frontiers] == [
            ("event", 0, "fence"), ("event", 1, "warp-drain")]

    def test_stops_at_crash(self):
        rec = FrontierRecorder()
        rec.observe(0.0, SystemFence())
        rec.observe(0.0, Crash())
        rec.observe(0.0, SystemFence())  # post-crash: ignored
        assert rec.event_count == 1

    def test_windows_sample_first_middle_last(self):
        rec = FrontierRecorder(window_samples=3)
        for _ in range(10):
            rec.advance(32)  # distinct cumulative counts 32..320
        rec.observe(0.0, SystemFence())
        threads = [f for f in rec.frontiers() if f.mechanism == "threads"]
        assert len(threads) == 3
        values = [f.value for f in threads]
        assert values[0] == 32 and values[-1] == 320
        assert all(f.kind == UNFENCED_WINDOW for f in threads)

    def test_duplicate_counts_collapse(self):
        rec = FrontierRecorder()
        rec.advance(8)
        rec.advance(0)  # same cumulative count: not a new state
        threads = [f for f in rec.frontiers() if f.mechanism == "threads"]
        assert [f.value for f in threads] == [8]

    def test_passive_injector_interface(self):
        # the GPU engine only touches .advance and .fired
        rec = FrontierRecorder()
        assert rec.fired is False
        rec.advance(100)  # never raises


class TestPruning:
    def _make(self, kind, n):
        return [Frontier("event", i, kind) for i in range(n)]

    def test_budget_covers_everything(self):
        fs = self._make("fence", 5)
        assert prune_frontiers(fs, 10) == fs
        assert prune_frontiers(fs, 0) == fs  # 0 = unlimited

    def test_every_kind_survives(self):
        fs = self._make("fence", 40) + self._make("warp-drain", 40) + \
            self._make("mark", 2)
        kept = prune_frontiers(fs, 12)
        assert len(kept) <= 12
        assert {f.kind for f in kept} == {"fence", "warp-drain", "mark"}

    def test_first_and_last_of_each_kind_kept(self):
        fs = self._make("fence", 50)
        kept = prune_frontiers(fs, 8)
        values = [f.value for f in kept]
        assert values[0] == 0 and values[-1] == 49

    def test_tight_budget_still_bounded(self):
        fs = (self._make("fence", 9) + self._make("warp-drain", 5)
              + self._make("mark", 2) + self._make("dma", 1))
        kept = prune_frontiers(fs, 5)
        assert len(kept) == 5
        assert {f.kind for f in kept} == {"fence", "warp-drain", "mark", "dma"}

    def test_more_kinds_than_budget_keeps_one_each(self):
        fs = sum((self._make(k, 3) for k in "abcdef"), [])
        kept = prune_frontiers(fs, 4)
        # the 1-per-kind floor wins over the cap: all six kinds represented
        assert len(kept) == 6
        assert {f.kind for f in kept} == set("abcdef")

    def test_deterministic(self):
        fs = self._make("fence", 100) + self._make("warp-drain", 30)
        assert prune_frontiers(fs, 16) == prune_frontiers(list(fs), 16)

    def test_preserves_recording_order(self):
        fs = self._make("warp-drain", 20) + self._make("fence", 20)
        kept = prune_frontiers(fs, 10)
        order = {id(f): i for i, f in enumerate(fs)}
        indices = [order[id(f)] for f in kept]
        assert indices == sorted(indices)

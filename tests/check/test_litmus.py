"""The persistency-litmus fuzzer: generator, oracle, matrix, sentinels.

Small bounded campaigns here (2-3 tests, the full 18-point matrix); the CI
workflow runs the real ``--litmus 25 --seed 7`` acceptance sweep.
"""

import pytest

from repro.check.litmus import (
    DEFAULT_LITMUS_FRONTIERS,
    REGION_BYTES,
    SLOT_STRIDE,
    ConfigPoint,
    LitmusExplorer,
    LitmusTest,
    build_model,
    config_matrix,
    execute_point,
    generate_test,
    generate_tests,
    interpret,
    parse_config_point,
    select_frontiers,
)
from repro.check.frontier import Frontier
from repro.check.report import litmus_reproducer_command, provenance_reproducer
from repro.sim.persistency import MODEL_REGISTRY, SENTINEL_MUTANTS


# ---------------------------------------------------------------------------
# the generator
# ---------------------------------------------------------------------------


class TestGenerator:
    def test_deterministic_in_seed_and_index(self):
        assert generate_test(7, 3) == generate_test(7, 3)
        assert generate_test(7, 3) != generate_test(7, 4)
        assert generate_test(7, 3) != generate_test(8, 3)

    def test_grammar_bounds(self):
        for test in generate_tests(0, 30):
            assert 2 <= test.n_regions <= 4
            assert test.n_threads in (4, 6, 8)
            assert 1 <= len(test.phases) <= 3
            for phase in test.phases:
                assert phase, "empty phases would make barriers unobservable"
                for step in phase:
                    assert step[0] in ("write", "fence")

    def test_forced_prefix_guarantees_two_fenced_rounds(self):
        # Every test's first phase opens with write/fence/write/fence so the
        # fence-order sentinel always has two ordered rounds in one flush.
        for test in generate_tests(11, 20):
            kinds = [step[0] for step in test.phases[0][:4]]
            assert kinds == ["write", "fence", "write", "fence"]

    def test_slots_never_collide(self):
        for test in generate_tests(3, 20):
            seen = set()
            for phase in test.phases:
                for step in phase:
                    if step[0] != "write":
                        continue
                    _, region, base, _ = step
                    for t in range(test.n_threads):
                        slot = (region, base + t)
                        assert slot not in seen
                        seen.add(slot)
                        assert (base + t + 1) * SLOT_STRIDE <= REGION_BYTES

    def test_values_unique_and_nonzero(self):
        for test in generate_tests(5, 10):
            values = set()
            for phase in test.phases:
                for step in phase:
                    if step[0] != "write":
                        continue
                    for t in range(test.n_threads):
                        value = step[3] + t + 1
                        assert value != 0
                        assert value not in values
                        values.add(value)

    def test_payload_round_trip(self):
        test = generate_test(9, 2)
        assert LitmusTest.from_payload(test.payload()) == test
        import json

        assert LitmusTest.from_payload(
            json.loads(json.dumps(test.payload()))) == test

    def test_bulk_copy_production(self):
        # The grammar emits the bulk-copy production often enough to
        # exercise the transfer descriptor, sourcing only written regions.
        tests = generate_tests(0, 40)
        with_bulk = [t for t in tests if t.bulk is not None]
        assert with_bulk, "bulk-copy production never fired in 40 tests"
        assert len(with_bulk) < len(tests), "plain tests must survive too"
        for test in with_bulk:
            src, n_slots = test.bulk
            assert 0 <= src < test.n_regions
            assert n_slots > 0
            assert f"bulk-copy r{src}x{n_slots}" in test.describe()

    def test_bulk_payload_round_trip_and_pre_bulk_compat(self):
        test = next(t for t in generate_tests(0, 40) if t.bulk is not None)
        assert LitmusTest.from_payload(test.payload()) == test
        # Cached payloads from before the bulk production lack the key.
        legacy = generate_test(9, 2).payload()
        assert "bulk" not in legacy
        assert LitmusTest.from_payload(legacy).bulk is None

    def test_bulk_copy_passes_a_config_point(self):
        test = next(t for t in generate_tests(0, 40) if t.bulk is not None)
        point = config_matrix()[0]
        verdict = execute_point(test.payload(), point.spec())
        assert verdict["ok"], verdict["violations"][:2]


# ---------------------------------------------------------------------------
# the config matrix
# ---------------------------------------------------------------------------


class TestConfigMatrix:
    def test_covers_every_model_window_and_eadr_axis(self):
        points = config_matrix()
        assert {p.model for p in points} == set(MODEL_REGISTRY)
        assert {p.window for p in points} == {True, False}
        assert {p.eadr for p in points} == {True, False}
        # eADR-native models are not doubled onto the eADR axis.
        for p in points:
            if MODEL_REGISTRY[p.model].eadr:
                assert not p.eadr
        assert len(points) == len(set(points))

    def test_spec_round_trip(self):
        for p in config_matrix():
            assert parse_config_point(p.spec()) == p

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError, match="nowindow"):
            parse_config_point("strict:sometimes:adr")
        with pytest.raises(ValueError, match="unknown model"):
            parse_config_point("bogus:window:adr")

    def test_eadr_axis_lifts_model_instance(self):
        model = build_model(ConfigPoint("strict", True, True))
        assert model.eadr and not model.toggles_ddio
        # The class is untouched: only the instance is lifted.
        assert not MODEL_REGISTRY["strict"].eadr
        plain = build_model(ConfigPoint("strict", True, False))
        assert not plain.eadr and plain.toggles_ddio


# ---------------------------------------------------------------------------
# the outcome oracle (abstract interpretation)
# ---------------------------------------------------------------------------


class TestInterpreter:
    def test_relaxed_defers_everything_to_retirement(self):
        test = generate_test(7, 0)
        plan, drains, bounds = interpret(test, "relaxed")
        assert bounds == 0
        assert all(w.key[1] > 0 for w in plan)
        # One implicit round per touched region per final flush.
        rounds = {w.key[1] for w in plan}
        assert rounds == {1 << 30}

    def test_strict_orders_rounds_per_thread(self):
        test = generate_test(7, 0)
        plan, drains, bounds = interpret(test, "strict")
        assert bounds == 0
        per_thread = {}
        for w in plan:
            per_thread.setdefault(w.thread, []).append(w.key)
        for keys in per_thread.values():
            assert keys == sorted(keys)

    def test_epoch_counts_boundaries(self):
        test = generate_test(7, 0)  # single phase with fences
        _, _, bounds = interpret(test, "epoch")
        assert bounds == 1
        multi = next(t for t in generate_tests(0, 40) if len(t.phases) == 3)
        _, _, multi_bounds = interpret(multi, "epoch")
        assert multi_bounds >= 1

    def test_census_matches_engine(self):
        # The predicted drain/boundary counts must equal what the reference
        # run announces - execute_point fails its census check otherwise,
        # so a passing matrix IS the cross-validation; spot-check here.
        test = generate_test(7, 1)
        for spec in ("strict:window:adr", "epoch:window:adr",
                     "relaxed:window:adr"):
            result = execute_point(test.payload(), spec)
            census = result["census"]
            assert census["warp-drain"] == census["expect-warp-drain"]
            assert census["epoch-boundary"] == census["expect-epoch-boundary"]


class TestSelectFrontiers:
    def test_keeps_every_ordering_frontier(self):
        frontiers = [Frontier("event", i, "warp-drain") for i in range(10)]
        frontiers += [Frontier("threads", i, "unfenced-window")
                      for i in range(20)]
        chosen = select_frontiers(frontiers, 4)
        assert [f for f in chosen if f.kind == "warp-drain"] == frontiers[:10]
        assert sum(f.kind == "unfenced-window" for f in chosen) <= 4

    def test_preserves_recording_order(self):
        frontiers = [Frontier("event", 0, "fence"),
                     Frontier("event", 1, "warp-drain"),
                     Frontier("threads", 5, "unfenced-window")]
        assert select_frontiers(frontiers, 10) == frontiers


# ---------------------------------------------------------------------------
# executing matrix points
# ---------------------------------------------------------------------------


class TestExecutePoint:
    def test_clean_configs_pass_everywhere(self):
        test = generate_test(7, 0)
        for point in config_matrix():
            result = execute_point(test.payload(), point.spec())
            assert result["ok"], (point.spec(), result["violations"][:2])
            assert result["config"] == point.spec()
            assert result["frontiers_explored"] >= 1

    def test_deterministic_verdicts(self):
        test = generate_test(3, 1)
        spec = "epoch:window:adr"
        assert (execute_point(test.payload(), spec)
                == execute_point(test.payload(), spec))

    def test_payload_is_json_serializable(self):
        import json

        result = execute_point(generate_test(1, 0).payload(),
                               "strict:window:adr")
        assert json.loads(json.dumps(result)) == result

    def test_frontier_spec_replays_single_state(self):
        test = generate_test(7, 0)
        result = execute_point(test.payload(), "strict:window:adr",
                               frontier_spec="event:1")
        assert result["frontiers_explored"] == 1
        assert result["ok"]


class TestSentinelMutants:
    def test_fence_order_mutant_caught(self):
        test = generate_test(7, 0)
        hits = [p.spec() for p in config_matrix()
                if not execute_point(test.payload(), p.spec(),
                                     mutant="fence-order")["ok"]]
        assert hits, "the fence-order sentinel escaped the whole matrix"
        # It must be caught under the strict-ordering durable configs at
        # least (those observe drain delivery order directly).
        assert "strict:window:adr" in hits
        assert "eadr:window:adr" in hits

    def test_epoch_boundary_mutant_caught(self):
        test = generate_test(7, 0)
        hits = {}
        for p in config_matrix():
            result = execute_point(test.payload(), p.spec(),
                                   mutant="epoch-boundary")
            if not result["ok"]:
                hits[p.spec()] = result["violations"][0]["name"]
        # Only epoch-policy models announce boundaries; the census notices
        # their absence.
        assert any(spec.startswith("epoch:") for spec in hits)
        assert "litmus-census-epoch-boundary" in hits.values()

    def test_mutants_do_not_leak_across_calls(self):
        from repro.sim.persistency import active_mutant

        test = generate_test(7, 0)
        execute_point(test.payload(), "strict:window:adr",
                      mutant="fence-order")
        assert active_mutant() is None
        assert execute_point(test.payload(), "strict:window:adr")["ok"]


# ---------------------------------------------------------------------------
# the explorer campaign
# ---------------------------------------------------------------------------


class TestLitmusExplorer:
    def test_campaign_passes_and_catches_both_sentinels(self):
        report = LitmusExplorer(count=2, seed=7, mutant_tests=1,
                                corpus=False).run()
        assert report.ok
        assert len(report.matrix) == 2 * len(config_matrix())
        assert set(report.sentinels) == set(SENTINEL_MUTANTS)
        for info in report.sentinels.values():
            assert info["caught"]
            assert info["detections"]
        text = report.describe()
        assert "PASS" in text and "caught" in text

    def test_campaign_is_deterministic(self):
        a = LitmusExplorer(count=2, seed=5, mutant_tests=1, corpus=False).run()
        b = LitmusExplorer(count=2, seed=5, mutant_tests=1, corpus=False).run()
        assert a.matrix == b.matrix
        assert a.sentinels == b.sentinels

    def test_disk_cache_serves_repeated_points(self, tmp_path):
        from repro.experiments.diskcache import ResultCache
        from repro.experiments.runner import set_disk_cache

        cache = ResultCache(str(tmp_path))
        set_disk_cache(cache)
        try:
            first = LitmusExplorer(count=1, seed=2, mutant_tests=1,
                                   corpus=False).run()
            entries = list(tmp_path.glob("litmus-*.json"))
            assert len(entries) == len(first.matrix) + sum(
                s["points"] for s in first.sentinels.values())
            # Second campaign: all points served from disk, same verdicts.
            import time

            start = time.perf_counter()
            second = LitmusExplorer(count=1, seed=2, mutant_tests=1,
                                    corpus=False).run()
            warm = time.perf_counter() - start
            assert second.matrix == first.matrix
            assert warm < 5.0
            assert list(tmp_path.glob("litmus-*.json")) == entries
        finally:
            set_disk_cache(None)

    def test_rejects_empty_campaign(self):
        with pytest.raises(ValueError):
            LitmusExplorer(count=0, seed=1)


# ---------------------------------------------------------------------------
# reproducers and provenance
# ---------------------------------------------------------------------------


class TestReproducers:
    def test_litmus_reproducer_command_shapes(self):
        cmd = litmus_reproducer_command(7, 3, "epoch:window:adr",
                                        "event:9", "fence-order")
        assert "--litmus-replay 7:3" in cmd
        assert "--litmus-config epoch:window:adr" in cmd
        assert "--frontier event:9" in cmd
        assert "--mutant fence-order" in cmd
        bare = litmus_reproducer_command(7, 3, "strict:window:adr",
                                         "reference")
        assert "--frontier" not in bare

    def test_provenance_reproducer_from_stored_coordinates(self):
        assert provenance_reproducer({}) is None
        cmd = provenance_reproducer({"seed": 7, "index": 2,
                                     "config": "relaxed:nowindow:adr"})
        assert cmd == litmus_reproducer_command(7, 2, "relaxed:nowindow:adr")
        assert provenance_reproducer({"run": "nightly"}) == "run=nightly"

    def test_explorer_provenance_flows_to_results_and_recovery(self):
        from repro.check import CrashExplorer
        from repro.workloads import Mode

        prov = {"seed": 7, "index": 0, "config": "strict:window:adr"}
        report = CrashExplorer("ring", Mode.GPM, max_frontiers=2,
                               provenance=prov).explore()
        assert report.provenance == prov
        for result in report.results:
            assert result.provenance == prov

    def test_recovery_report_surfaces_provenance_paths(self):
        from repro.check import make_oracle
        from repro.workloads import Mode

        oracle = make_oracle("ring")
        system = oracle.build_system(Mode.GPM)
        oracle.execute(system, Mode.GPM, None)
        system.machine.crash()
        report = oracle.recover(system, Mode.GPM,
                                provenance={"seed": 7, "config": "x"})
        assert report.provenance == {"seed": 7, "config": "x"}
        assert set(report.paths("provenance")) == {"seed=7", "config=x"}

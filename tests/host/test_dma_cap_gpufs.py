"""DMA engine, the CAP pipelines, and the GPUfs baseline."""

import numpy as np
import pytest

from repro import System
from repro.host import CapEngine, CapMode, GPUFS_PAGE_BYTES, GpuFs, GpufsUnsupported


class TestDma:
    def test_device_to_host_copies(self, system):
        hbm = system.machine.alloc_hbm("h", 1024)
        dram = system.machine.alloc_dram("d", 1024)
        hbm.view(np.uint8)[:] = 5
        t = system.dma.device_to_host(hbm, 0, dram, 0, 1024)
        assert t >= system.config.dma_init_s
        assert (dram.view(np.uint8) == 5).all()

    def test_device_to_pm_is_not_durable(self, system):
        hbm = system.machine.alloc_hbm("h", 1024)
        pm = system.machine.alloc_pm("p", 1024)
        hbm.view(np.uint8)[:] = 5
        system.dma.device_to_host(hbm, 0, pm, 0, 1024)
        assert pm.unpersisted_bytes() == 1024  # parked in LLC via DDIO

    def test_host_to_device(self, system):
        pm = system.machine.alloc_pm("p", 1024)
        hbm = system.machine.alloc_hbm("h", 1024)
        pm.view(np.uint8)[:] = 8
        system.dma.host_to_device(pm, 0, hbm, 0, 1024)
        assert (hbm.view(np.uint8) == 8).all()

    def test_pageable_adds_bounce_copy(self, system):
        hbm = system.machine.alloc_hbm("h", 1 << 20)
        dram = system.machine.alloc_dram("d", 1 << 20)
        t_pinned = system.dma.device_to_host(hbm, 0, dram, 0, 1 << 20, pinned=True)
        t_pageable = system.dma.device_to_host(hbm, 0, dram, 0, 1 << 20, pinned=False)
        assert t_pageable > t_pinned

    def test_direction_validation(self, system):
        hbm = system.machine.alloc_hbm("h", 64)
        dram = system.machine.alloc_dram("d", 64)
        with pytest.raises(ValueError):
            system.dma.device_to_host(dram, 0, dram, 0, 64)
        with pytest.raises(ValueError):
            system.dma.host_to_device(hbm, 0, hbm, 0, 64)


class TestCapEngine:
    def _setup(self, system, nbytes=1 << 16):
        hbm = system.machine.alloc_hbm("out", nbytes)
        hbm.view(np.uint8)[:] = 42
        f = system.fs.create("/pm/out", nbytes)
        return hbm, f

    def test_cap_fs_durable(self, system):
        hbm, f = self._setup(system)
        t = CapEngine(system, CapMode.FS).persist_output(hbm, 0, f, 0, 1 << 16)
        assert t > 0
        assert (f.region.persisted_view(np.uint8) == 42).all()

    def test_cap_mm_durable_and_faster_than_fs(self, system):
        hbm, f = self._setup(system)
        t_fs = CapEngine(system, CapMode.FS).persist_output(hbm, 0, f, 0, 1 << 16)
        t_mm = CapEngine(system, CapMode.MM).persist_output(hbm, 0, f.region, 0, 1 << 16)
        assert t_mm < t_fs
        assert f.region.unpersisted_bytes() == 0

    def test_cap_eadr_requires_eadr_platform(self, system):
        with pytest.raises(ValueError):
            CapEngine(system, CapMode.EADR)

    def test_cap_eadr_faster_than_mm(self):
        s1, s2 = System(), System(eadr=True)
        h1, f1 = self._setup(s1)
        h2, f2 = self._setup(s2)
        t_mm = CapEngine(s1, CapMode.MM).persist_output(h1, 0, f1.region, 0, 1 << 16)
        t_eadr = CapEngine(s2, CapMode.EADR).persist_output(h2, 0, f2.region, 0, 1 << 16)
        assert t_eadr < t_mm
        assert f2.region.unpersisted_bytes() == 0

    def test_zero_bytes_free(self, system):
        hbm, f = self._setup(system)
        assert CapEngine(system, CapMode.FS).persist_output(hbm, 0, f, 0, 0) == 0.0

    def test_source_must_be_hbm(self, system):
        dram = system.machine.alloc_dram("d", 64)
        f = system.fs.create("/pm/x", 64)
        with pytest.raises(ValueError):
            CapEngine(system, CapMode.FS).persist_output(dram, 0, f, 0, 64)

    def test_bounce_buffer_grows(self, system):
        hbm = system.machine.alloc_hbm("out", 1 << 20)
        f = system.fs.create("/pm/out", 1 << 20)
        eng = CapEngine(system, CapMode.MM)
        eng.persist_output(hbm, 0, f.region, 0, 1 << 10)
        eng.persist_output(hbm, 0, f.region, 0, 1 << 20)  # must regrow


class TestGpufs:
    def test_supported_coarse_small_file(self, system):
        hbm = system.machine.alloc_hbm("h", 1 << 16)
        hbm.view(np.uint8)[:] = 1
        f = system.fs.create("/pm/f", 1 << 16)
        t = GpuFs(system).gwrite_bulk(hbm, 0, f, 0, 1 << 16,
                                      paper_file_bytes=1 << 20)
        assert t > 0
        assert f.region.unpersisted_bytes() == 0

    def test_fine_grained_rejected(self, system):
        with pytest.raises(GpufsUnsupported) as e:
            GpuFs(system).check_supported(1 << 20, fine_grained=True)
        assert e.value.reason == GpufsUnsupported.FINE_GRAIN

    def test_large_file_rejected(self, system):
        with pytest.raises(GpufsUnsupported) as e:
            GpuFs(system).check_supported(4_000_000_000, fine_grained=False)
        assert e.value.reason == GpufsUnsupported.FILE_TOO_LARGE

    def test_rpc_cost_scales_with_pages(self, system):
        hbm = system.machine.alloc_hbm("h", 4 * GPUFS_PAGE_BYTES)
        f = system.fs.create("/pm/f", 4 * GPUFS_PAGE_BYTES)
        g = GpuFs(system)
        t1 = g.gwrite_bulk(hbm, 0, f, 0, GPUFS_PAGE_BYTES, paper_file_bytes=1)
        t4 = g.gwrite_bulk(hbm, 0, f, 0, 4 * GPUFS_PAGE_BYTES, paper_file_bytes=1)
        assert t4 > 2.5 * t1

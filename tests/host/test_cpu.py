"""CPU software model: persist paths, threading, nt-stores."""

import numpy as np
import pytest


class TestWriteAndPersist:
    def test_durable_on_return(self, system):
        pm = system.machine.alloc_pm("p", 4096)
        system.cpu.write_and_persist(pm, 0, np.full(100, 7, dtype=np.uint8))
        assert (pm.persisted_view(np.uint8, 0, 100) == 7).all()

    def test_thread_scaling_follows_amdahl(self, system):
        pm = system.machine.alloc_pm("p", 1 << 22)
        data = np.zeros(1 << 22, dtype=np.uint8)
        t1 = system.cpu.write_and_persist(pm, 0, data, threads=1)
        t64 = system.cpu.write_and_persist(pm, 0, data, threads=64)
        assert t1 / t64 == pytest.approx(system.config.cpu_persist_speedup(64), rel=0.05)

    def test_media_floor(self, system):
        # A single thread can flush 1.6 GB/s but the media at 64 B grain
        # caps at ~3.1 GB/s; many threads can't beat the media.
        pm = system.machine.alloc_pm("p", 1 << 22)
        t = system.cpu.persist_range(pm, 0, 1 << 22, threads=64)
        media_floor = (1 << 22) / 3.125e9
        assert t >= media_floor * 0.99

    def test_bad_thread_count(self, system):
        pm = system.machine.alloc_pm("p", 64)
        with pytest.raises(ValueError):
            system.cpu.persist_range(pm, 0, 64, threads=0)

    def test_persist_range_requires_pm(self, system):
        d = system.machine.alloc_dram("d", 64)
        with pytest.raises(ValueError):
            system.cpu.persist_range(d, 0, 64)


class TestScattered:
    def test_scattered_persist_durable(self, system):
        pm = system.machine.alloc_pm("p", 1 << 16)
        pm.visible[::64] = 1
        t = system.cpu.persist_scattered(pm, [0, 4096, 8192], [64, 64, 64])
        assert t > 0
        assert pm.persisted_view(np.uint8, 4096, 1)[0] == 1

    def test_scattered_slower_than_dense_per_byte(self, system):
        pm = system.machine.alloc_pm("p", 1 << 20)
        dense = system.cpu.persist_range(pm, 0, 64 * 64)
        spread = system.cpu.persist_scattered(
            pm, np.arange(64) * 8192, np.full(64, 64))
        assert spread > dense


class TestNtStores:
    def test_nt_write_durable_and_bypasses_llc(self, system):
        pm = system.machine.alloc_pm("p", 4096)
        system.cpu.nt_write_and_persist(pm, 0, np.full(256, 3, dtype=np.uint8))
        assert (pm.persisted_view(np.uint8, 0, 256) == 3).all()
        assert len(system.machine.llc) == 0


class TestPlainOps:
    def test_store_visible_not_durable(self, system):
        pm = system.machine.alloc_pm("p", 4096)
        system.cpu.store(pm, 0, [5] * 10)
        assert (pm.view(np.uint8, 0, 10) == 5).all()
        assert pm.unpersisted_bytes() == 10

    def test_memcpy_between_host_regions(self, system):
        d = system.machine.alloc_dram("d", 128)
        pm = system.machine.alloc_pm("p", 128)
        d.write_bytes(0, [9] * 128)
        t = system.cpu.memcpy(pm, 0, d, 0, 128)
        assert t > 0
        assert (pm.view(np.uint8) == 9).all()

    def test_compute_advances_clock(self, system):
        t = system.cpu.compute(1_000_000, threads=4)
        assert system.clock.now == pytest.approx(t)

    def test_read_pm_timed(self, system):
        pm = system.machine.alloc_pm("p", 4096)
        assert system.cpu.read_pm(pm, 0, 4096) > 0

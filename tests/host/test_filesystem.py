"""DAX filesystem: namespace, write/fsync semantics, crash survival."""

import numpy as np
import pytest

from repro.host import FsError


class TestNamespace:
    def test_create_open(self, system):
        f = system.fs.create("/pm/a", 1024)
        assert system.fs.open("/pm/a") is f
        assert f.size == 1024

    def test_duplicate_create_rejected(self, system):
        system.fs.create("/pm/a", 64)
        with pytest.raises(FsError):
            system.fs.create("/pm/a", 64)

    def test_open_missing_raises(self, system):
        with pytest.raises(FsError):
            system.fs.open("/pm/none")

    def test_unlink(self, system):
        system.fs.create("/pm/a", 64)
        system.fs.unlink("/pm/a")
        assert not system.fs.exists("/pm/a")
        with pytest.raises(FsError):
            system.fs.unlink("/pm/a")

    def test_listdir(self, system):
        system.fs.create("/pm/b", 64)
        system.fs.create("/pm/a", 64)
        assert system.fs.listdir() == ["/pm/a", "/pm/b"]

    def test_syscall_costs_charged(self, system):
        t0 = system.clock.now
        system.fs.create("/pm/a", 64)
        assert system.clock.now > t0
        assert system.stats.syscalls == 1


class TestWriteFsync:
    def test_write_visible_not_durable(self, system):
        f = system.fs.create("/pm/a", 1024)
        system.fs.write(f, 0, np.full(100, 3, dtype=np.uint8))
        assert (f.region.view(np.uint8, 0, 100) == 3).all()
        assert f.region.unpersisted_bytes() == 100

    def test_fsync_makes_durable(self, system):
        f = system.fs.create("/pm/a", 1024)
        system.fs.write(f, 0, np.full(100, 3, dtype=np.uint8))
        t = system.fs.fsync(f)
        assert t > system.config.syscall_s
        assert f.region.unpersisted_bytes() == 0

    def test_fsync_without_dirty_data_is_cheap(self, system):
        f = system.fs.create("/pm/a", 1024)
        assert system.fs.fsync(f) == pytest.approx(system.config.syscall_s)

    def test_fsync_covers_whole_dirty_span(self, system):
        f = system.fs.create("/pm/a", 1024)
        system.fs.write(f, 0, [1] * 10)
        system.fs.write(f, 500, [2] * 10)
        system.fs.fsync(f)
        assert f.region.unpersisted_bytes() == 0

    def test_second_fsync_free_after_first(self, system):
        f = system.fs.create("/pm/a", 1024)
        system.fs.write(f, 0, [1] * 512)
        t1 = system.fs.fsync(f)
        t2 = system.fs.fsync(f)
        assert t2 < t1


class TestCrashSurvival:
    def test_files_survive_crash(self, system):
        f = system.fs.create("/pm/a", 1024)
        system.fs.write(f, 0, np.full(64, 7, dtype=np.uint8))
        system.fs.fsync(f)
        system.crash()
        f2 = system.fs.open("/pm/a")
        assert (f2.region.view(np.uint8, 0, 64) == 7).all()

    def test_unsynced_writes_lost_on_crash(self, system):
        f = system.fs.create("/pm/a", 1024)
        system.fs.write(f, 0, np.full(64, 7, dtype=np.uint8))
        system.crash()
        assert not f.region.view(np.uint8, 0, 64).any()

"""CPU persistent KVS baselines."""

import numpy as np
import pytest

from repro import System
from repro.baselines import MatrixKvStore, PmemKvStore, RocksDbStore


class TestFunctional:
    def test_set_then_get(self, system):
        store = PmemKvStore(system, n_sets=128)
        store.set_batch(np.array([11], dtype=np.uint64),
                        np.array([77], dtype=np.uint64))
        assert store.get(11) == 77

    def test_get_missing_returns_none(self, system):
        store = PmemKvStore(system, n_sets=128)
        assert store.get(999) is None

    def test_overwrite(self, system):
        store = PmemKvStore(system, n_sets=128)
        store.set_batch(np.array([5], dtype=np.uint64), np.array([1], dtype=np.uint64))
        store.set_batch(np.array([5], dtype=np.uint64), np.array([2], dtype=np.uint64))
        assert store.get(5) == 2

    def test_sets_survive_crash(self, system):
        store = PmemKvStore(system, n_sets=128)
        store.set_batch(np.array([3], dtype=np.uint64), np.array([9], dtype=np.uint64))
        system.crash()
        assert store.get(3) == 9

    def test_batch_advances_clock(self, system):
        store = RocksDbStore(system, n_sets=128)
        keys = np.arange(1, 65, dtype=np.uint64)
        t = store.set_batch(keys, keys)
        assert t > 0
        assert system.clock.now == pytest.approx(t)


class TestRelativePerformance:
    def _thr(self, cls):
        return cls(System()).throughput(batch_size=2048, batches=2)

    def test_paper_ordering(self):
        """Fig. 1a ordering: pmemKV > MatrixKV > RocksDB."""
        pmemkv = self._thr(PmemKvStore)
        matrixkv = self._thr(MatrixKvStore)
        rocksdb = self._thr(RocksDbStore)
        assert pmemkv > matrixkv > rocksdb

    def test_rocksdb_roughly_half_of_pmemkv(self):
        ratio = self._thr(PmemKvStore) / self._thr(RocksDbStore)
        assert 1.5 < ratio < 4.0

    def test_throughputs_in_real_world_range(self):
        """Real PM KVS do 0.3-5 Mops/s on small batched SETs."""
        for cls in (PmemKvStore, MatrixKvStore, RocksDbStore):
            thr = self._thr(cls)
            assert 0.3e6 < thr < 5e6

"""CPU application baselines (Fig. 1b) and the OpenMP gpDB port."""

import numpy as np
import pytest

from repro import System
from repro.baselines import CpuBfs, CpuDb, CpuPrefixSum, CpuSrad
from repro.workloads import make_road_graph, reference_bfs
from repro.workloads.bfs import INF


class TestCpuBfs:
    def test_costs_correct(self):
        system = System()
        b = CpuBfs(system, rows=12, cols=12)
        b.run()
        ref = reference_bfs(b.row_ptr, b.col_idx, 0)
        assert np.array_equal(b.cost_view, ref)

    def test_costs_durable(self):
        system = System()
        b = CpuBfs(system, rows=12, cols=12)
        b.run()
        ref = b.cost_view.copy()
        system.crash()
        assert np.array_equal(b.cost_view, ref)

    def test_time_scales_with_graph(self):
        t_small = CpuBfs(System(), rows=8, cols=16).run()
        t_big = CpuBfs(System(), rows=8, cols=64).run()
        assert t_big > 2 * t_small


class TestCpuSrad:
    def test_smooths_and_advances_clock(self):
        system = System()
        s = CpuSrad(system, n=48, iterations=3)
        t = s.run()
        assert t > 0
        assert s.result.var() < s.img.var()


class TestCpuPrefixSum:
    def test_result_correct_and_durable(self):
        system = System()
        p = CpuPrefixSum(system, n=512)
        p.run()
        assert np.array_equal(p.result, np.cumsum(p.inputs[0]))
        system.crash()
        stored = p.state.view(np.int64, 128, 512)
        assert np.array_equal(stored, p.result)


class TestCpuDb:
    def test_insert_grows_table_durably(self):
        system = System()
        db = CpuDb(system, capacity_rows=2048, initial_rows=512)
        t = db.insert_batch(256, seed=1)
        assert t > 0
        assert db.row_count == 768
        system.crash()
        from repro.workloads.db import ROW_COLUMNS

        rows = db.table.view(np.uint64, 128, 2048 * ROW_COLUMNS)
        assert rows[512 * ROW_COLUMNS : 768 * ROW_COLUMNS].all()

    def test_update_changes_rows(self):
        system = System()
        db = CpuDb(system, capacity_rows=2048, initial_rows=512)
        from repro.workloads.db import ROW_COLUMNS

        before = db.table.view(np.uint64, 128, 512 * ROW_COLUMNS).copy()
        db.update_batch(64, seed=2)
        after = db.table.view(np.uint64, 128, 512 * ROW_COLUMNS)
        assert (before != after).any()

    def test_update_slower_per_row_than_insert(self):
        system = System()
        db = CpuDb(system, capacity_rows=4096, initial_rows=1024)
        t_ins = db.insert_batch(512, seed=1) / 512
        t_upd = db.update_batch(512, seed=1) / 512
        assert t_upd > t_ins

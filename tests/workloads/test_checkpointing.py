"""The checkpointing workload class: DNN, CFD, BLK, HS."""

import numpy as np
import pytest

from repro.workloads import (
    BlackScholes,
    CfdSolver,
    DnnTraining,
    Hotspot,
    Mode,
    synthetic_mnist,
)
from repro.workloads.blackscholes import black_scholes
from repro.workloads.cfd import EulerSolver
from repro.workloads.hotspot import AMB_TEMP, HotspotGrid
from repro.workloads.lenet import LeNet

ALL = [DnnTraining, CfdSolver, BlackScholes, Hotspot]


class TestCommonBehaviour:
    @pytest.mark.parametrize("cls", ALL)
    def test_runs_under_gpm_and_counts_checkpoints(self, cls):
        w = cls()
        r = w.run(Mode.GPM)
        expected = w.iterations // w.checkpoint_every
        assert r.extras["checkpoints"] == expected
        assert r.extras["checkpoint_time"] > 0
        assert r.extras["total_time"] > r.extras["checkpoint_time"]

    @pytest.mark.parametrize("cls", ALL)
    def test_gpm_checkpoints_faster_than_cap_mm(self, cls):
        gpm = cls().run(Mode.GPM).elapsed
        cap = cls().run(Mode.CAP_MM).elapsed
        assert cap > 2 * gpm

    @pytest.mark.parametrize("cls", ALL)
    def test_checkpoint_is_durable(self, cls):
        w = cls()
        w.run(Mode.GPM)
        system, driver, target = w._state
        payload_before = [p.np.copy() for p in target.payload]
        # data written after the checkpoint must not affect the durable copy
        for p in target.payload:
            p.np[:] = 0
        system.crash()
        system.machine.drop_volatile_regions()
        # restore straight from PM (fresh HBM landing zones)
        for i, (p, before) in enumerate(zip(target.payload, payload_before)):
            pass  # restore path exercised in the class-specific tests

    def test_checkpoint_frequency_controls_count(self):
        w = CfdSolver()
        r = w.run(Mode.GPM, checkpoint_every=6)
        assert r.extras["checkpoints"] == w.iterations // 6


class TestLeNet:
    def test_parameter_payload_matches_paper(self):
        net = LeNet()
        assert net.params.total_bytes == pytest.approx(3_200_000, rel=0.05)

    def test_training_reduces_loss(self):
        net = LeNet()
        x, y = synthetic_mnist(64, seed=1, size=LeNet.IMAGE_SIZE)
        first = net.train_step(x, y)
        for _ in range(10):
            last = net.train_step(x, y)
        assert last < first

    def test_accuracy_improves_over_chance(self):
        net = LeNet()
        x, y = synthetic_mnist(96, seed=2, size=LeNet.IMAGE_SIZE)
        for _ in range(15):
            net.train_step(x, y)
        assert net.accuracy(x, y) > 0.3

    def test_pack_unpack_roundtrip(self):
        net = LeNet(seed=3)
        flat = net.params.pack()
        net2 = LeNet(seed=4)
        net2.params.unpack(flat)
        assert np.array_equal(net2.params.pack(), flat)

    def test_dnn_restore_recovers_weights(self):
        w = DnnTraining()
        w.run(Mode.GPM)
        system, _, _ = w._state
        trained = w.net.params.pack()
        system.crash()
        system.machine.drop_volatile_regions()
        net = w.restore_into_new_net(system, Mode.GPM)
        # the restored weights equal the *last checkpointed* parameters,
        # which trained further after the final checkpoint only if
        # iterations % checkpoint_every != 0; with 12 % 2 == 0 they match.
        assert np.array_equal(net.params.pack(), trained)

    def test_loss_history_recorded(self):
        w = DnnTraining()
        w.run(Mode.GPM)
        assert len(w.losses) == w.iterations * w.passes_per_iteration


class TestEulerSolver:
    def test_mass_conserved(self):
        s = EulerSolver(n=32)
        m0 = s.total_mass()
        for _ in range(20):
            s.step()
        assert s.total_mass() == pytest.approx(m0, rel=1e-6)

    def test_blast_wave_spreads(self):
        s = EulerSolver(n=32)
        p0 = s.state[3].copy()
        for _ in range(20):
            s.step()
        # energy leaves the initial hot disc
        centre = (slice(12, 20), slice(12, 20))
        assert s.state[3][centre].sum() < p0[centre].sum()

    def test_state_stays_physical(self):
        s = EulerSolver(n=32)
        for _ in range(30):
            s.step()
        assert (s.state[0] > 0).all()
        assert (s.state[3] > 0).all()
        assert np.isfinite(s.state).all()


class TestBlackScholes:
    def test_put_call_parity(self):
        spot = np.array([10.0, 20.0, 30.0])
        strike = np.array([15.0, 15.0, 15.0])
        t = np.array([1.0, 2.0, 0.5])
        call, put = black_scholes(spot, strike, t, 0.02, 0.3)
        parity = call - put
        expected = spot - strike * np.exp(-0.02 * t)
        assert np.allclose(parity, expected, atol=1e-10)

    def test_call_increases_with_spot(self):
        spot = np.linspace(5, 50, 20)
        call, _ = black_scholes(spot, np.full(20, 20.0), np.full(20, 1.0), 0.02, 0.3)
        assert (np.diff(call) > 0).all()

    def test_prices_nonnegative(self):
        w = BlackScholes(n_options=1024)
        w.run(Mode.GPM)
        assert (w._prices.np >= -1e-6).all()


class TestHotspot:
    def test_heats_above_ambient(self):
        g = HotspotGrid(n=64)
        for _ in range(50):
            g.step()
        assert g.temp.max() > AMB_TEMP

    def test_powered_cells_warmer(self):
        g = HotspotGrid(n=64)
        for _ in range(50):
            g.step()
        hot = g.temp[g.power > 2.0].mean()
        cool = g.temp[g.power < 0.5].mean()
        assert hot > cool

    def test_temperatures_bounded(self):
        g = HotspotGrid(n=64)
        for _ in range(200):
            g.step()
        assert np.isfinite(g.temp).all()
        assert g.temp.max() < 1000

"""Mode machinery: ModeDriver and PersistentBuffer realisations."""

import numpy as np
import pytest

from repro.workloads import Mode, ModeDriver, make_system


class TestMode:
    def test_data_on_pm(self):
        assert Mode.GPM.data_on_pm
        assert Mode.GPM_NDP.data_on_pm
        assert not Mode.CAP_MM.data_on_pm
        assert not Mode.GPUFS.data_on_pm

    def test_in_kernel_persist(self):
        assert Mode.GPM.in_kernel_persist
        assert Mode.GPM_EADR.in_kernel_persist
        assert not Mode.GPM_NDP.in_kernel_persist
        assert not Mode.CAP_FS.in_kernel_persist

    def test_make_system_eadr(self):
        assert make_system(Mode.GPM_EADR).eadr
        assert make_system(Mode.CAP_EADR).eadr
        assert not make_system(Mode.GPM).eadr

    def test_driver_rejects_mode_platform_mismatch(self, system):
        with pytest.raises(ValueError):
            ModeDriver(system, Mode.GPM_EADR)


class TestPersistentBufferGpm:
    def test_kernel_region_is_pm(self):
        driver = ModeDriver(make_system(Mode.GPM), Mode.GPM)
        buf = driver.buffer("/pm/x", 4096)
        assert buf.kernel_region.is_persistent
        assert buf.gpm is not None

    def test_persist_calls_are_noop(self):
        driver = ModeDriver(make_system(Mode.GPM), Mode.GPM)
        buf = driver.buffer("/pm/x", 4096)
        assert buf.persist_all() == 0.0
        assert buf.persist_segments([0], [64]) == 0.0


class TestPersistentBufferNdp:
    def test_cpu_flushes_segments(self):
        driver = ModeDriver(make_system(Mode.GPM_NDP), Mode.GPM_NDP)
        buf = driver.buffer("/pm/x", 4096)
        buf.visible_view(np.uint8)[:] = 7
        t = buf.persist_segments([0, 256], [64, 64])
        assert t > 0
        assert buf.durable_view(np.uint8, 0, 64).all()
        assert not buf.durable_view(np.uint8, 128, 64).any()


class TestPersistentBufferCap:
    @pytest.mark.parametrize("mode", [Mode.CAP_FS, Mode.CAP_MM])
    def test_kernel_region_is_hbm_and_whole_buffer_persisted(self, mode):
        driver = ModeDriver(make_system(mode), mode)
        buf = driver.buffer("/pm/x", 4096)
        assert not buf.kernel_region.is_persistent
        buf.visible_view(np.uint8)[:] = 9
        # CAP cannot selectively persist: segments fall back to everything
        buf.persist_segments([0], [1])
        assert (buf.durable_view(np.uint8) == 9).all()

    def test_persist_range_restricts_transfer(self):
        driver = ModeDriver(make_system(Mode.CAP_MM), Mode.CAP_MM)
        buf = driver.buffer("/pm/x", 4096)
        buf.visible_view(np.uint8)[:] = 9
        before = driver.system.stats.snapshot()
        buf.persist_range(0, 1024)
        delta = driver.system.stats.delta_since(before)
        assert delta.pm_bytes_written == 1024


class TestPersistentBufferGpufs:
    def test_fine_grained_buffer_unsupported(self):
        from repro.host import GpufsUnsupported

        driver = ModeDriver(make_system(Mode.GPUFS), Mode.GPUFS)
        buf = driver.buffer("/pm/x", 4096, fine_grained=True)
        with pytest.raises(GpufsUnsupported):
            buf.persist_all()

    def test_coarse_buffer_supported(self):
        driver = ModeDriver(make_system(Mode.GPUFS), Mode.GPUFS)
        buf = driver.buffer("/pm/x", 4096, fine_grained=False, paper_bytes=4096)
        buf.visible_view(np.uint8)[:] = 3
        buf.persist_all()
        assert (buf.durable_view(np.uint8) == 3).all()

"""gpKVS DELETE and gpDB SELECT: the remaining operation types."""

import numpy as np
import pytest

from repro.sim import CrashInjector, SimulatedCrash
from repro.workloads import DbConfig, GpDb, GpKvs, KvsConfig, Mode, make_system
from repro.workloads.db import ROW_COLUMNS, _META_BYTES
from repro.workloads.kvs import hash64


def small_kvs():
    return GpKvs(KvsConfig(n_sets=256, ways=8, batch_size=128,
                           set_batches=1, block_dim=64))


class TestKvsDelete:
    def _inserted_keys(self, w):
        rng = np.random.default_rng(w.config.seed)
        n_pairs = w.config.n_sets * w.config.ways
        return rng.choice(np.arange(1, n_pairs * 4, dtype=np.uint64),
                          size=w.config.batch_size, replace=False)

    def test_delete_removes_pairs_durably(self):
        w = small_kvs()
        w.run(Mode.GPM)
        keys = self._inserted_keys(w)[:32]
        present = w.delete_batch(keys)
        assert present > 0
        system, _, _, kv_keys, *_ = w._state
        system.crash()
        for k in keys.tolist():
            base = (hash64(int(k)) % w.config.n_sets) * w.config.ways
            assert int(k) not in kv_keys.np[base : base + 8].tolist()

    def test_delete_of_absent_keys_is_noop(self):
        w = small_kvs()
        w.run(Mode.GPM)
        before = w._state[3].np.copy()
        present = w.delete_batch(np.array([10**9, 10**9 + 1], dtype=np.uint64))
        assert present == 0
        assert np.array_equal(w._state[3].np, before)

    def test_delete_crash_is_undone(self):
        w = small_kvs()
        system = make_system(Mode.GPM)
        w.run(Mode.GPM, system=system)
        committed = w._state[3].np.copy()
        keys = self._inserted_keys(w)[:64]
        inj = CrashInjector(system.machine)
        inj.arm(30)
        with pytest.raises(SimulatedCrash):
            w.delete_batch(keys, crash_injector=inj)
        w.recover(system, Mode.GPM)
        from repro.core.mapping import gpm_map

        table = gpm_map(system, "/pm/gpkvs.table")
        n_pairs = w.config.n_sets * w.config.ways
        assert np.array_equal(table.view(np.uint64, 0, n_pairs), committed)

    def test_oversized_delete_batch_rejected(self):
        w = small_kvs()
        w.run(Mode.GPM)
        with pytest.raises(ValueError):
            w.delete_batch(np.arange(1, 1000, dtype=np.uint64))


class TestDbSelect:
    def _db(self):
        return GpDb("insert", DbConfig(capacity_rows=1024, initial_rows=512,
                                       insert_batch=128, insert_batches=1,
                                       block_dim=64))

    def test_select_matches_numpy_reference(self):
        w = self._db()
        w.run(Mode.GPM)
        _, _, buf, table, *_ = w._state
        n_rows = int(buf.visible_view(np.uint64, 0, 1)[0])
        col1 = table.np[: n_rows * ROW_COLUMNS].reshape(n_rows, ROW_COLUMNS)[:, 1]
        lo, hi = 1 << 60, 1 << 62
        expected = np.flatnonzero((col1 >= lo) & (col1 < hi))
        got, elapsed = w.select(lo, hi)
        assert np.array_equal(got, expected)
        assert elapsed > 0

    def test_select_is_read_only(self):
        w = self._db()
        w.run(Mode.GPM)
        system = w._state[0]
        before = system.stats.snapshot()
        w.select(0, 1 << 63)
        delta = system.stats.delta_since(before)
        assert delta.pm_bytes_written == 0
        assert delta.system_fences == 0

    def test_select_identical_across_modes(self):
        results = {}
        for mode in (Mode.GPM, Mode.CAP_MM):
            w = self._db()
            w.run(mode)
            got, _ = w.select(1 << 59, 1 << 63)
            results[mode] = got
        assert np.array_equal(results[Mode.GPM], results[Mode.CAP_MM])

"""gpKVS: functional correctness, durability, recovery."""

import numpy as np
import pytest

from repro.sim import CrashInjector, SimulatedCrash
from repro.workloads import GpKvs, KvsConfig, Mode, make_system
from repro.workloads.kvs import LOG_ENTRY_BYTES, _pack_entry, _unpack_entry, hash64


def small_kvs(**overrides) -> GpKvs:
    cfg = dict(n_sets=256, ways=8, batch_size=128, set_batches=2, block_dim=64)
    cfg.update(overrides)
    return GpKvs(KvsConfig(**cfg))


class TestHash:
    def test_deterministic(self):
        assert hash64(42) == hash64(42)

    def test_spreads(self):
        buckets = {hash64(k) % 64 for k in range(1000)}
        assert len(buckets) == 64

    def test_entry_pack_roundtrip(self):
        raw = _pack_entry(3, 5, 1 << 40, 99)
        assert _unpack_entry(raw) == (3, 5, 1 << 40, 99)
        assert raw.size == LOG_ENTRY_BYTES


class TestFunctional:
    def test_sets_are_readable_via_get(self, ):
        w = small_kvs(get_batches=1, get_batch_size=64)
        r = w.run(Mode.GPM)
        assert r.extras["ops"] == 2 * 128 + 64

    def test_durable_state_matches_visible_under_gpm(self):
        w = small_kvs()
        w.run(Mode.GPM)
        system, driver, table, keys, values, *_ = w._state
        assert np.array_equal(keys.np, keys.np_persisted)
        assert np.array_equal(values.np, values.np_persisted)

    def test_inserted_pairs_present(self):
        w = small_kvs(set_batches=1)
        w.run(Mode.GPM)
        system, driver, table, keys, values, *_ = w._state
        rng = np.random.default_rng(w.config.seed)
        n_pairs = w.config.n_sets * w.config.ways
        bkeys = rng.choice(np.arange(1, n_pairs * 4, dtype=np.uint64),
                           size=128, replace=False)
        # at least the final batch's non-colliding keys must be findable
        found = 0
        for k in np.unique(bkeys):
            base = (hash64(int(k)) % w.config.n_sets) * w.config.ways
            if int(k) in [int(x) for x in keys.np[base : base + 8]]:
                found += 1
        assert found >= 0.9 * np.unique(bkeys).size

    @pytest.mark.parametrize("mode", [Mode.CAP_MM, Mode.CAP_FS])
    def test_cap_modes_persist_whole_table(self, mode):
        w = small_kvs(set_batches=1)
        r = w.run(mode)
        assert r.bytes_persisted >= w._table_bytes()

    def test_gpm_persists_less_than_cap(self):
        gpm = small_kvs().run(Mode.GPM).bytes_persisted
        cap = small_kvs().run(Mode.CAP_MM).bytes_persisted
        assert cap > 5 * gpm


class TestRecovery:
    def test_crash_mid_batch_then_undo_restores_prior_state(self):
        w = small_kvs(set_batches=1)
        system = make_system(Mode.GPM)
        inj = CrashInjector(system.machine)
        inj.arm(60)  # mid-batch
        with pytest.raises(SimulatedCrash):
            w.run(Mode.GPM, system=system, crash_injector=inj)
        rl = w.recover(system, Mode.GPM)
        assert rl > 0
        # all undone: the table must be empty again (it started empty)
        from repro.core.mapping import gpm_map

        table = gpm_map(system, "/pm/gpkvs.table")
        assert not table.view(np.uint64).any()
        assert not table.persisted_view(np.uint64).any()

    def test_crash_after_commit_needs_no_undo(self):
        w = small_kvs(set_batches=1)
        system = make_system(Mode.GPM)
        w.run(Mode.GPM, system=system)
        before = w._state[3].np_persisted.copy()
        system.crash()
        w.recover(system, Mode.GPM)
        from repro.core.mapping import gpm_map

        table = gpm_map(system, "/pm/gpkvs.table")
        n_pairs = w.config.n_sets * w.config.ways
        assert np.array_equal(table.view(np.uint64, 0, n_pairs), before)

    def test_recovery_truncates_logs(self):
        w = small_kvs(set_batches=1)
        system = make_system(Mode.GPM)
        inj = CrashInjector(system.machine)
        inj.arm(60)
        with pytest.raises(SimulatedCrash):
            w.run(Mode.GPM, system=system, crash_injector=inj)
        w.recover(system, Mode.GPM)
        from repro.core.logging import gpmlog_open

        log = gpmlog_open(system, "/pm/gpkvs.log")
        assert all(log.host_tail(s) == 0 for s in range(log.total_threads))


class TestVariants:
    def test_mixed_95_5_name_and_mix(self):
        w = GpKvs.mixed_95_5()
        assert w.name == "gpKVS (95:5)"
        gets = w.config.get_batches * w.config.get_batch_size
        sets = w.config.set_batches * w.config.batch_size
        assert gets / (gets + sets) == pytest.approx(0.95, abs=0.01)

    def test_conventional_log_variant_slower(self):
        hcl = small_kvs(batch_size=256).run(Mode.GPM).elapsed
        conv = small_kvs(batch_size=256, use_hcl=False).run(Mode.GPM).elapsed
        assert conv > hcl

"""YCSB-style generation: distributions, mixes, end-to-end runs."""

import numpy as np
import pytest

from repro.workloads import Mode
from repro.workloads.ycsb import MIXES, YcsbConfig, YcsbKvs, zipfian_keys


class TestZipfian:
    def test_theta_zero_is_uniform_range(self):
        keys = zipfian_keys(5000, 100, 0.0, np.random.default_rng(0))
        assert keys.min() >= 1
        assert keys.max() <= 100
        _, counts = np.unique(keys, return_counts=True)
        assert counts.max() < 150  # ~50 expected, no hot key

    def test_high_theta_concentrates(self):
        rng = np.random.default_rng(1)
        keys = zipfian_keys(5000, 1000, 0.99, rng)
        _, counts = np.unique(keys, return_counts=True)
        top = np.sort(counts)[::-1]
        assert top[0] > 0.05 * 5000  # the hottest key dominates
        assert top[:10].sum() > 0.3 * 5000

    def test_theta_validation(self):
        with pytest.raises(ValueError):
            zipfian_keys(10, 100, 1.5, np.random.default_rng(0))

    def test_hot_keys_not_address_adjacent(self):
        """Skew is about reuse, not contiguous key identities."""
        rng = np.random.default_rng(2)
        keys = zipfian_keys(5000, 1000, 0.99, rng)
        vals, counts = np.unique(keys, return_counts=True)
        hot = vals[np.argsort(counts)[-5:]]
        assert np.ptp(hot) > 50  # spread across the identity space


class TestMixes:
    def test_known_mixes(self):
        assert set(MIXES) == {"load", "A", "B", "C"}

    def test_unknown_mix_rejected(self):
        with pytest.raises(ValueError):
            YcsbKvs(YcsbConfig(mix="Z"))

    @pytest.mark.parametrize("mix,set_fraction", [("load", 1.0), ("A", 0.5),
                                                  ("B", 0.05), ("C", 0.0)])
    def test_mix_materialisation(self, mix, set_fraction):
        w = YcsbKvs(YcsbConfig(mix=mix, operations=2048, batch_size=256))
        kvs = w.as_gpkvs()
        sets = kvs.config.set_batches * kvs.config.batch_size if set_fraction else 0
        gets = kvs.config.get_batches * kvs.config.get_batch_size
        if set_fraction in (0.0, 1.0):
            assert (sets == 0) == (set_fraction == 0.0)
        else:
            assert 0 < sets < sets + gets

    def test_batches_have_unique_keys(self):
        w = YcsbKvs(YcsbConfig(mix="load", theta=0.99, operations=1024,
                               batch_size=256, n_sets=512))
        kvs = w.as_gpkvs()
        for keys, vals in kvs._batches():
            assert np.unique(keys).size == keys.size == 256


class TestEndToEnd:
    def test_runs_under_gpm(self):
        w = YcsbKvs(YcsbConfig(mix="A", operations=1024, batch_size=256,
                               n_sets=512))
        result = w.run(Mode.GPM)
        assert result.workload == "YCSB-A"
        assert result.extras["ops"] > 0
        assert result.bytes_persisted > 0

    def test_read_only_mix_persists_nothing_new(self):
        w = YcsbKvs(YcsbConfig(mix="C", operations=512, batch_size=256,
                               n_sets=512))
        result = w.run(Mode.GPM)
        # GETs only: the store's PM traffic is (near) zero
        assert result.bytes_persisted < 1024

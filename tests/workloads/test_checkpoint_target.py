"""CheckpointTarget: the mode-dispatching checkpoint/restore paths.

The class-specific workload tests exercise GPM restores; these cover the
CAP / GPM-NDP / GPUfs realisations and the multi-element staging layout.
"""

import numpy as np
import pytest

from repro.gpu import DeviceArray
from repro.workloads import Mode, ModeDriver, make_system
from repro.workloads.checkpointed import CheckpointTarget


def _payloads(system, sizes, value=3.5):
    arrays = []
    for i, size in enumerate(sizes):
        hbm = system.machine.alloc_hbm(f"pl{i}", size)
        arr = DeviceArray(hbm, np.float32, 0, size // 4)
        arr.np[:] = value + i
        arrays.append(arr)
    return arrays


MODES = [Mode.GPM, Mode.GPM_NDP, Mode.CAP_FS, Mode.CAP_MM, Mode.GPUFS]


class TestCheckpointRestoreAcrossModes:
    @pytest.mark.parametrize("mode", MODES, ids=lambda m: m.value)
    def test_checkpoint_is_durable(self, mode):
        system = make_system(mode)
        driver = ModeDriver(system, mode)
        payload = _payloads(system, [8192])
        target = CheckpointTarget(driver, "cp", payload, paper_bytes=8192)
        t = target.checkpoint()
        assert t > 0
        system.crash()
        pm = (target._cp.gpm.region if target._cp is not None
              else (target._buffer.pm_file or target._buffer.gpm.file).region)
        assert pm.visible.any()  # some durable checkpoint bytes survived

    @pytest.mark.parametrize("mode", MODES, ids=lambda m: m.value)
    def test_restore_roundtrip(self, mode):
        system = make_system(mode)
        driver = ModeDriver(system, mode)
        payload = _payloads(system, [4096, 8192])
        originals = [p.np.copy() for p in payload]
        target = CheckpointTarget(driver, "cp", payload, paper_bytes=12288)
        target.checkpoint()
        for p in payload:
            p.np[:] = -1.0
        t = target.restore()
        assert t > 0
        for p, original in zip(payload, originals):
            assert np.array_equal(p.np, original)

    def test_multi_element_offsets_do_not_overlap(self, system):
        driver = ModeDriver(system, Mode.CAP_MM)
        payload = _payloads(system, [4096, 4096, 4096])
        target = CheckpointTarget(driver, "cp", payload, paper_bytes=12288)
        target.checkpoint()
        # distinct per-element values must land in distinct file thirds
        stored = target._buffer.pm_file.region.view(np.float32, 0, 3072)
        assert stored[0] == pytest.approx(3.5)
        assert stored[1024] == pytest.approx(4.5)
        assert stored[2048] == pytest.approx(5.5)

    def test_ndp_checkpoint_needs_the_cpu_flush(self):
        """The GPU stream alone (DDIO on) leaves the tail volatile."""
        system = make_system(Mode.GPM_NDP)
        driver = ModeDriver(system, Mode.GPM_NDP)
        payload = _payloads(system, [8192])
        target = CheckpointTarget(driver, "cp", payload, paper_bytes=8192)
        # bypass the class: stream without the flush, as a broken impl would
        system.gpu.stream_copy(target._buffer.kernel_region, 0,
                               payload[0].region, 0, 8192, persist=False)
        assert target._buffer.kernel_region.unpersisted_bytes() > 0
        # the real path flushes
        target.checkpoint()
        assert target._buffer.kernel_region.unpersisted_bytes() == 0

    def test_gpm_checkpoint_faster_than_ndp(self):
        times = {}
        for mode in (Mode.GPM, Mode.GPM_NDP):
            system = make_system(mode)
            driver = ModeDriver(system, mode)
            payload = _payloads(system, [1 << 20])
            target = CheckpointTarget(driver, "cp", payload,
                                      paper_bytes=1 << 20)
            times[mode] = target.checkpoint()
        assert times[Mode.GPM_NDP] > 2 * times[Mode.GPM]

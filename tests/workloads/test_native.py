"""Native-persistence workloads: BFS, SRAD, PS."""

import numpy as np
import pytest

from repro.sim import CrashInjector, SimulatedCrash
from repro.workloads import (
    BfsConfig,
    GraphBfs,
    Mode,
    PrefixSum,
    PrefixSumConfig,
    Srad,
    SradConfig,
    make_road_graph,
    make_system,
    reference_bfs,
)
from repro.workloads.bfs import INF


def small_bfs(**overrides) -> GraphBfs:
    cfg = dict(rows=16, cols=24, shortcut_fraction=0.01)
    cfg.update(overrides)
    return GraphBfs(BfsConfig(**cfg))


class TestRoadGraph:
    def test_csr_well_formed(self):
        row_ptr, col_idx = make_road_graph(8, 8, shortcut_fraction=0.05)
        assert row_ptr[0] == 0
        assert row_ptr[-1] == col_idx.size
        assert (np.diff(row_ptr) >= 0).all()
        assert col_idx.min() >= 0
        assert col_idx.max() < 64

    def test_symmetric(self):
        row_ptr, col_idx = make_road_graph(6, 6, shortcut_fraction=0.1)
        edges = set()
        for u in range(36):
            for v in col_idx[row_ptr[u] : row_ptr[u + 1]]:
                edges.add((u, int(v)))
        assert all((v, u) in edges for (u, v) in edges)

    def test_grid_connected(self):
        row_ptr, col_idx = make_road_graph(10, 10, shortcut_fraction=0.0)
        cost = reference_bfs(row_ptr, col_idx, 0)
        assert (cost != INF).all()

    def test_agrees_with_networkx(self):
        import networkx as nx

        row_ptr, col_idx = make_road_graph(8, 12, shortcut_fraction=0.05)
        g = nx.Graph()
        g.add_nodes_from(range(96))
        for u in range(96):
            for v in col_idx[row_ptr[u] : row_ptr[u + 1]]:
                g.add_edge(u, int(v))
        lengths = nx.single_source_shortest_path_length(g, 0)
        ref = reference_bfs(row_ptr, col_idx, 0)
        for node, d in lengths.items():
            assert ref[node] == d


class TestBfs:
    @pytest.mark.parametrize("engine", ["bulk", "kernel"])
    def test_costs_correct(self, engine):
        w = small_bfs(engine=engine)
        w.run(Mode.GPM)
        assert w.verify()

    def test_bulk_and_kernel_agree(self):
        wb = small_bfs(engine="bulk")
        wb.run(Mode.GPM)
        costs_b = wb._state[2].visible_view(np.uint32, 128, wb.n_nodes).copy()
        wk = small_bfs(engine="kernel")
        wk.run(Mode.GPM)
        costs_k = wk._state[2].visible_view(np.uint32, 128, wk.n_nodes).copy()
        assert np.array_equal(costs_b, costs_k)

    def test_gpm_state_durable(self):
        w = small_bfs()
        w.run(Mode.GPM)
        buf = w._state[2]
        system = w._state[0]
        system.crash()
        assert w.verify()  # visible==persisted after crash; costs intact

    def test_sequence_is_valid_bfs_order(self):
        w = small_bfs()
        w.run(Mode.GPM)
        buf = w._state[2]
        n = w.n_nodes
        cost = buf.visible_view(np.uint32, 128, n)
        seq = buf.visible_view(np.uint32, 128 + 4 * n, n)
        visited = int(buf.visible_view(np.uint32, 0, 2)[1])
        assert visited == n
        levels = cost[seq[:visited]]
        assert (np.diff(levels.astype(np.int64)) >= 0).all()

    def test_resume_after_mid_run_crash(self):
        w = small_bfs(engine="kernel")
        system = make_system(Mode.GPM)
        inj = CrashInjector(system.machine, np.random.default_rng(5))
        inj.arm(150)
        try:
            w.run(Mode.GPM, system=system, crash_injector=inj)
            crashed = False
        except SimulatedCrash:
            crashed = True
        assert crashed
        # resume on the recovered (persisted) state
        from repro.workloads.base import ModeDriver, PersistentBuffer

        system.machine.drop_volatile_regions()
        w2 = small_bfs(engine="kernel")
        driver = ModeDriver(system, Mode.GPM)
        buf = PersistentBuffer.reopen(driver, "/pm/bfs.state")
        w2.run(Mode.GPM, system=system, resume_buffer=buf)
        assert w2.verify()


class TestSrad:
    def test_output_matches_host_filter_and_smooths(self):
        w = Srad(SradConfig(n=48, iterations=3))
        w.run(Mode.GPM)
        assert w.verify()

    def test_durable_under_gpm(self):
        w = Srad(SradConfig(n=48, iterations=3))
        w.run(Mode.GPM)
        _, _, buf = w._state
        assert buf.gpm.region.unpersisted_bytes() == 0

    def test_iteration_counter_resumable(self):
        w = Srad(SradConfig(n=48, iterations=3))
        w.run(Mode.GPM)
        _, _, buf = w._state
        assert int(buf.durable_view(np.uint32, 0, 1)[0]) == 3


class TestPrefixSum:
    def _small(self):
        return PrefixSum(PrefixSumConfig(n=1024, block_dim=128, arrays=2))

    def test_correct(self):
        w = self._small()
        w.run(Mode.GPM)
        assert w.verify()

    @pytest.mark.parametrize("mode", [Mode.CAP_MM, Mode.GPM_NDP])
    def test_correct_all_modes(self, mode):
        w = self._small()
        w.run(mode)
        assert w.verify()

    def test_gpm_durable(self):
        w = self._small()
        w.run(Mode.GPM)
        _, _, bufs = w._state
        for buf in bufs:
            out = buf.durable_view(np.int64, 128 + 8 * 1024, 1024)
            assert (out > 0).all()

    def test_block_dim_constraint(self):
        with pytest.raises(ValueError):
            PrefixSum(PrefixSumConfig(n=1000, block_dim=128))

    def test_crash_then_rerun_completes(self):
        """Fig. 8's embedded recovery: re-running skips finished blocks."""
        w = self._small()
        system = make_system(Mode.GPM)
        inj = CrashInjector(system.machine)
        inj.arm(700)
        with pytest.raises(SimulatedCrash):
            w.run(Mode.GPM, system=system, crash_injector=inj)
        # recovery = run the same kernels again over the persisted arrays
        from repro.workloads.base import ModeDriver, PersistentBuffer

        system.machine.drop_volatile_regions()
        driver = ModeDriver(system, Mode.GPM)
        w2 = self._small()
        rng = np.random.default_rng(w2.config.seed)
        inputs = [rng.integers(1, 100, size=1024, dtype=np.int64) for _ in range(2)]
        for a in range(2):
            buf = PersistentBuffer.reopen(driver, f"/pm/ps{a}.state")
            w2._scan_one(driver, buf, inputs[a], None)
            got = buf.visible_view(np.int64, 128 + 8 * 1024, 1024)
            assert np.array_equal(got, np.cumsum(inputs[a]))

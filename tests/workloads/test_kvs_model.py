"""Model-based testing: the GPU KVS against a reference dict.

Random SET/GET interleavings run both through gpKVS kernels and a plain
Python dict; any key the dict holds that the (set-associative, evicting)
store still holds must carry the same value, and GETs must never return a
stale value for a live key.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpu import DeviceArray
from repro.workloads import GpKvs, KvsConfig, Mode, make_system
from repro.workloads.kvs import get_kernel, hash64, set_kernel

N_SETS = 64
WAYS = 8


@st.composite
def op_batches(draw):
    n_batches = draw(st.integers(1, 3))
    batches = []
    for _ in range(n_batches):
        n = draw(st.integers(1, 32))
        keys = draw(st.lists(st.integers(1, 400), min_size=n, max_size=n,
                             unique=True))
        vals = draw(st.lists(st.integers(1, 10**9), min_size=n, max_size=n))
        batches.append((keys, vals))
    return batches


class TestKvsAgainstDictModel:
    @settings(max_examples=20, deadline=None)
    @given(batches=op_batches())
    def test_live_keys_hold_latest_values(self, batches):
        system = make_system(Mode.GPM)
        n_pairs = N_SETS * WAYS
        region = system.machine.alloc_pm("kvs", n_pairs * 16)
        keys = DeviceArray(region, np.uint64, 0, n_pairs)
        values = DeviceArray(region, np.uint64, n_pairs * 8, n_pairs)
        mirror = system.machine.alloc_hbm("mirror", n_pairs * 16)
        mkeys = DeviceArray(mirror, np.uint64, 0, n_pairs)
        mvalues = DeviceArray(mirror, np.uint64, n_pairs * 8, n_pairs)

        model: dict[int, int] = {}
        for batch_keys, batch_vals in batches:
            n = len(batch_keys)
            hbm = system.machine.alloc_hbm(f"b{id(batch_keys)}", n * 16)
            bk = DeviceArray(hbm, np.uint64, 0, n)
            bv = DeviceArray(hbm, np.uint64, n * 8, n)
            bk.np[:] = batch_keys
            bv.np[:] = batch_vals
            system.gpu.launch(set_kernel, (n + 31) // 32, 32,
                              (keys, values, mkeys, mvalues, bk, bv, n,
                               N_SETS, WAYS, None, []))
            system.machine.free(hbm)
            model.update(zip(batch_keys, batch_vals))

        # Every key still resident in the store must hold the model's value.
        for key, expected in model.items():
            base = (hash64(key) % N_SETS) * WAYS
            row = keys.np[base : base + WAYS]
            hits = np.flatnonzero(row == key)
            if hits.size:  # may have been evicted; absence is legal
                got = int(values.np[base + int(hits[0])])
                assert got == expected

    @settings(max_examples=10, deadline=None)
    @given(batches=op_batches())
    def test_gets_return_model_values(self, batches):
        system = make_system(Mode.GPM)
        n_pairs = N_SETS * WAYS
        mirror = system.machine.alloc_hbm("mirror", n_pairs * 16)
        mkeys = DeviceArray(mirror, np.uint64, 0, n_pairs)
        mvalues = DeviceArray(mirror, np.uint64, n_pairs * 8, n_pairs)
        region = system.machine.alloc_pm("kvs", n_pairs * 16)
        keys = DeviceArray(region, np.uint64, 0, n_pairs)
        values = DeviceArray(region, np.uint64, n_pairs * 8, n_pairs)

        model: dict[int, int] = {}
        for batch_keys, batch_vals in batches:
            n = len(batch_keys)
            hbm = system.machine.alloc_hbm(f"b{id(batch_keys)}", n * 16)
            bk = DeviceArray(hbm, np.uint64, 0, n)
            bv = DeviceArray(hbm, np.uint64, n * 8, n)
            bk.np[:] = batch_keys
            bv.np[:] = batch_vals
            system.gpu.launch(set_kernel, (n + 31) // 32, 32,
                              (keys, values, mkeys, mvalues, bk, bv, n,
                               N_SETS, WAYS, None, []))
            system.machine.free(hbm)
            model.update(zip(batch_keys, batch_vals))

        probe = list(model)[:16]
        n = len(probe)
        hbm = system.machine.alloc_hbm("probe", max(n, 1) * 16)
        bk = DeviceArray(hbm, np.uint64, 0, n)
        out = DeviceArray(hbm, np.uint64, n * 8, n)
        bk.np[:] = probe
        system.gpu.launch(get_kernel, (n + 31) // 32, 32,
                          (mkeys, mvalues, bk, out, n, N_SETS, WAYS))
        for i, key in enumerate(probe):
            got = int(out.np[i])
            # 0 = evicted (legal); otherwise must be the latest value
            assert got in (0, model[key])

"""Shared distributions: pinned goldens and composition properties.

``repro.workloads.distributions`` feeds both the YCSB driver and the
serving layer's traffic generator; the service's byte-identical-summary
determinism rests on these draws never silently changing.  The goldens pin
the exact byte stream a fixed seed produces - a numpy upgrade or an
"equivalent" reimplementation that shifts any draw fails here first, with
a much better error message than a drifted service summary.
"""

import hashlib

import numpy as np
import pytest

from repro.workloads.distributions import poisson_arrivals, zipfian_keys


def _sha(arr: np.ndarray) -> str:
    return hashlib.sha256(arr.tobytes()).hexdigest()


class TestZipfianKeys:
    def test_golden_head_and_digest(self):
        rng = np.random.default_rng(1234)
        keys = zipfian_keys(4096, 1000, 0.99, rng)
        assert keys.dtype == np.uint64
        assert keys[:12].tolist() == [12, 914, 170, 315, 315, 423,
                                      252, 910, 232, 7, 768, 730]
        assert _sha(keys) == ("88c1226f4c23a95e82a8fde3915a779481535"
                              "6cc20573971a035f3e8762a0395")

    def test_uniform_theta_zero_golden(self):
        rng = np.random.default_rng(7)
        keys = zipfian_keys(4096, 500, 0.0, rng)
        assert _sha(keys) == ("32b7bc81584628f417222aaa5bece9abd9c46"
                              "de2c39759c627e274edf8511204")

    def test_same_seed_same_draw(self):
        a = zipfian_keys(256, 100, 0.9, np.random.default_rng(5))
        b = zipfian_keys(256, 100, 0.9, np.random.default_rng(5))
        assert np.array_equal(a, b)

    def test_keys_stay_in_space_and_nonzero(self):
        for theta in (0.0, 0.5, 0.99):
            keys = zipfian_keys(2048, 64, theta, np.random.default_rng(3))
            assert keys.min() >= 1
            assert keys.max() <= 64

    def test_skew_concentrates_mass(self):
        rng = np.random.default_rng(11)
        skewed = zipfian_keys(8192, 1024, 0.99, rng)
        top = np.bincount(skewed.astype(np.int64)).max()
        rng = np.random.default_rng(11)
        uniform = zipfian_keys(8192, 1024, 0.0, rng)
        assert top > 3 * np.bincount(uniform.astype(np.int64)).max()

    def test_rejects_bad_theta(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            zipfian_keys(8, 16, -0.1, rng)
        with pytest.raises(ValueError):
            zipfian_keys(8, 16, 1.0, rng)


class TestPoissonArrivals:
    def test_golden_digest(self):
        rng = np.random.default_rng(99)
        times = poisson_arrivals(1e6, 2e-3, rng)
        assert times.size == 1899
        assert _sha(times) == ("4cadc5c9915c3add1806504dc1aad91555185"
                               "4f799827b7d759e88db6ed2524d")

    def test_sorted_and_bounded(self):
        times = poisson_arrivals(1e6, 2e-5, np.random.default_rng(99))
        assert np.all(np.diff(times) > 0)
        assert times.size and times[0] >= 0 and times[-1] < 2e-5

    def test_longer_horizon_extends_the_same_stream(self):
        # The docstring's composition claim: a shorter duration is exactly
        # the prefix of a longer one under the same seeded generator.
        short = poisson_arrivals(2e6, 1e-4, np.random.default_rng(21))
        long = poisson_arrivals(2e6, 5e-4, np.random.default_rng(21))
        assert np.array_equal(short, long[: short.size])

    def test_empty_and_invalid(self):
        assert poisson_arrivals(1e6, 0.0, np.random.default_rng(1)).size == 0
        with pytest.raises(ValueError):
            poisson_arrivals(0.0, 1e-3, np.random.default_rng(1))

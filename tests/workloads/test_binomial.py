"""Binomial options: pricing correctness and the Section 4.3 claim."""

import numpy as np
import pytest

from repro.workloads import BinomialConfig, BinomialOptions, Mode, binomial_price
from repro.workloads.blackscholes import black_scholes


class TestCrrModel:
    def test_converges_to_black_scholes(self):
        spot, strike, t, rate, vol = 20.0, 22.0, 1.5, 0.02, 0.3
        bs_call, _ = black_scholes(np.array([spot]), np.array([strike]),
                                   np.array([t]), rate, vol)
        crr = binomial_price(spot, strike, t, rate, vol, steps=512)
        assert crr == pytest.approx(float(bs_call[0]), rel=0.005)

    def test_more_steps_converge(self):
        args = (25.0, 20.0, 2.0, 0.02, 0.4)
        bs_call, _ = black_scholes(np.array([25.0]), np.array([20.0]),
                                   np.array([2.0]), 0.02, 0.4)
        err64 = abs(binomial_price(*args, steps=64) - float(bs_call[0]))
        err512 = abs(binomial_price(*args, steps=512) - float(bs_call[0]))
        assert err512 < err64

    def test_put_value(self):
        put = binomial_price(15.0, 20.0, 1.0, 0.02, 0.3, steps=128, call=False)
        bs_call, bs_put = black_scholes(np.array([15.0]), np.array([20.0]),
                                        np.array([1.0]), 0.02, 0.3)
        assert put == pytest.approx(float(bs_put[0]), rel=0.01)

    def test_deep_itm_call_near_intrinsic(self):
        price = binomial_price(100.0, 10.0, 0.5, 0.02, 0.2, steps=64)
        assert price == pytest.approx(100.0 - 10.0 * np.exp(-0.01), rel=0.01)


class TestWorkload:
    def test_runs_and_verifies_under_gpm(self):
        w = BinomialOptions(BinomialConfig(n_options=32, steps=32))
        r = w.run(Mode.GPM)
        assert w.verify()
        assert r.extras["options"] == 32

    def test_results_durable_under_gpm(self):
        w = BinomialOptions(BinomialConfig(n_options=32, steps=32))
        w.run(Mode.GPM)
        system, driver, buf, params = w._state
        system.crash()
        out = buf.visible_view(np.float32, 128, 32)
        assert np.count_nonzero(out) > 0  # persisted prices survive

    def test_counter_example_gpm_gains_little(self):
        """Section 4.3: GPM's advantage collapses without persist parallelism."""
        gpm = BinomialOptions().run(Mode.GPM).elapsed
        cap = BinomialOptions().run(Mode.CAP_MM).elapsed
        assert cap / gpm < 3  # vs gpKVS's ~4.3x over CAP-mm

"""gpDB: INSERT/UPDATE correctness, write amplification, recovery."""

import numpy as np
import pytest

from repro.sim import CrashInjector, SimulatedCrash
from repro.workloads import DbConfig, GpDb, Mode, make_system
from repro.workloads.db import _META_BYTES, ROW_BYTES, ROW_COLUMNS


def small_db(op="insert", **overrides) -> GpDb:
    cfg = dict(capacity_rows=2048, initial_rows=512, insert_batch=256,
               insert_batches=2, update_batch=128, update_batches=2,
               block_dim=64)
    cfg.update(overrides)
    return GpDb(op, DbConfig(**cfg))


class TestInsert:
    def test_row_count_advances_durably(self):
        w = small_db("insert")
        w.run(Mode.GPM)
        system, driver, buf, *_ = w._state
        assert buf.durable_view(np.uint64, 0, 1)[0] == 512 + 2 * 256

    def test_rows_durable_under_gpm(self):
        w = small_db("insert", insert_batches=1)
        w.run(Mode.GPM)
        _, _, buf, table, *_ = w._state
        new = slice(512 * ROW_COLUMNS, (512 + 256) * ROW_COLUMNS)
        assert np.array_equal(table.np[new], table.np_persisted[new])
        assert table.np[new].all()

    def test_capacity_respected(self):
        w = small_db("insert", insert_batches=100)
        r = w.run(Mode.GPM)
        assert r.extras["ops"] <= 2048 - 512

    def test_cap_write_amplification_near_one(self):
        gpm = small_db("insert").run(Mode.GPM).bytes_persisted
        cap = small_db("insert").run(Mode.CAP_MM).bytes_persisted
        assert cap / gpm == pytest.approx(1.0, abs=0.2)


class TestUpdate:
    def test_updates_applied_and_durable(self):
        w = small_db("update", update_batches=1)
        w.run(Mode.GPM)
        _, _, buf, table, *_ = w._state
        assert np.array_equal(table.np, table.np_persisted)

    def test_update_write_amplification_large(self):
        gpm = small_db("update").run(Mode.GPM).bytes_persisted
        cap = small_db("update").run(Mode.CAP_MM).bytes_persisted
        assert cap / gpm > 3

    def test_updates_touch_only_two_columns(self):
        w = small_db("update", update_batches=1)
        system = make_system(Mode.GPM)
        # snapshot the initial table after setup by running zero batches
        w2 = small_db("update", update_batches=0)
        w2.run(Mode.GPM)
        init = w2._state[3].np.copy()
        w.run(Mode.GPM, system=system)
        table = w._state[3].np
        changed = np.flatnonzero(table != init)
        cols = set(int(c) % ROW_COLUMNS for c in changed)
        assert cols <= {2, 5}


class TestRecovery:
    def test_update_crash_undone(self):
        w = small_db("update", update_batches=1)
        system = make_system(Mode.GPM)
        baseline = small_db("update", update_batches=0)
        baseline.run(Mode.GPM)
        init = baseline._state[3].np.copy()
        inj = CrashInjector(system.machine)
        inj.arm(100)
        with pytest.raises(SimulatedCrash):
            w.run(Mode.GPM, system=system, crash_injector=inj)
        w.recover(system, Mode.GPM)
        from repro.core.mapping import gpm_map

        table = gpm_map(system, "/pm/gpdb.table")
        rows = table.view(np.uint64, _META_BYTES, 2048 * ROW_COLUMNS)
        assert np.array_equal(rows, init)

    def test_insert_crash_restores_count(self):
        w = small_db("insert", insert_batches=1)
        system = make_system(Mode.GPM)
        inj = CrashInjector(system.machine)
        inj.arm(100)
        with pytest.raises(SimulatedCrash):
            w.run(Mode.GPM, system=system, crash_injector=inj)
        w.recover(system, Mode.GPM)
        from repro.core.mapping import gpm_map

        table = gpm_map(system, "/pm/gpdb.table")
        assert table.view(np.uint64, 0, 1)[0] == 512  # pre-batch count

    def test_recover_without_crash_is_safe(self):
        w = small_db("update")
        system = make_system(Mode.GPM)
        w.run(Mode.GPM, system=system)
        before = w._state[3].np.copy()
        system.crash()
        w.recover(system, Mode.GPM)
        from repro.core.mapping import gpm_map

        table = gpm_map(system, "/pm/gpdb.table")
        rows = table.view(np.uint64, _META_BYTES, 2048 * ROW_COLUMNS)
        assert np.array_equal(rows, before)


class TestValidation:
    def test_bad_op_rejected(self):
        with pytest.raises(ValueError):
            GpDb("delete")

    def test_names(self):
        assert GpDb("insert").name == "gpDB (I)"
        assert GpDb("update").name == "gpDB (U)"

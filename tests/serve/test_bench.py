"""The service benchmark record and its CI validation gate."""

import json

from repro.serve.bench import (
    SMOKE_OVERRIDES,
    run_service_bench,
    validate_service_record,
)


class TestRunServiceBench:
    def test_smoke_record_shape(self, tmp_path):
        out = tmp_path / "BENCH_service.json"
        record = run_service_bench(smoke=True, out=str(out))
        on_disk = json.loads(out.read_text())
        assert on_disk == record
        assert record["smoke"] is True
        assert record["wall_s"] > 0
        assert record["cpu_count"] >= 1
        assert record["config"]["tenants"] == SMOKE_OVERRIDES["tenants"]
        summary = record["summary"]
        assert summary["throughput_ops_per_s"] > 0
        for t in summary["tenants"].values():
            assert set(t["latency"]) == {"p50", "p95", "p99"}
        assert validate_service_record(record) == []

    def test_summary_deterministic_across_bench_runs(self, tmp_path):
        a = run_service_bench(smoke=True, out=str(tmp_path / "a.json"))
        b = run_service_bench(smoke=True, out=str(tmp_path / "b.json"))
        assert a["summary"] == b["summary"]
        assert a["config"] == b["config"]


class TestValidateServiceRecord:
    BASE = {
        "summary": {
            "offered": 100, "completed": 90, "shed_rate": 0.1,
            "latency": {"p50": 1e-5, "p95": 2e-5, "p99": 3e-5},
            "tenants": {
                "tenant00": {"completed": 90,
                             "latency": {"p50": 1e-5, "p95": 2e-5,
                                         "p99": 3e-5}},
            },
        },
    }

    def _record(self, **summary_overrides):
        record = json.loads(json.dumps(self.BASE))
        record["summary"].update(summary_overrides)
        return record

    def test_healthy_record_passes(self):
        assert validate_service_record(self._record()) == []

    def test_total_shed_fails(self):
        problems = validate_service_record(
            self._record(shed_rate=1.0, completed=0))
        assert any("shed rate is 100%" in p for p in problems)
        assert any("no requests completed" in p for p in problems)

    def test_empty_window_fails(self):
        problems = validate_service_record(self._record(offered=0))
        assert any("no requests were offered" in p for p in problems)

    def test_non_finite_p99_fails_globally_and_per_tenant(self):
        record = self._record(latency={"p50": 1e-5, "p95": 2e-5, "p99": None})
        record["summary"]["tenants"]["tenant00"]["latency"]["p99"] = float("inf")
        problems = validate_service_record(record)
        assert any("p99 latency is non-finite" in p for p in problems)
        assert any(p.startswith("tenant00:") for p in problems)

    def test_tenant_without_completions_not_flagged(self):
        record = self._record()
        record["summary"]["tenants"]["tenant01"] = {
            "completed": 0, "latency": {"p50": None, "p95": None, "p99": None}}
        assert validate_service_record(record) == []

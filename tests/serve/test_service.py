"""The serving layer end to end: store, batcher, determinism, recovery.

The headline acceptance properties live here:

* ``serve --seed S`` is deterministic - two runs of the same config give
  byte-identical summary JSON;
* a mid-traffic :class:`SimulatedCrash` with ``shards >= 2`` is recovered
  shard-by-shard through the existing Fig. 6b kernel with every serve
  invariant passing.
"""

import numpy as np
import pytest

from repro.serve.batcher import Batcher, BatcherConfig
from repro.serve.metrics import summary_json
from repro.serve.service import ServiceConfig, run_service
from repro.serve.store import (
    ShardedKvStore,
    StoreConfig,
    recover_store,
    serve_invariants,
)
from repro.serve.traffic import Request
from repro.sim.crash import CrashInjector, SimulatedCrash
from repro.workloads.base import Mode, make_system

SMALL_STORE = dict(n_sets=64, ways=8, n_shards=4, max_batch=64)

#: a small served window: 2 tenants x ~200 requests, a handful of flushes
SMALL_SERVICE = dict(tenants=2, shards=2, rate=400_000.0, duration=5e-4,
                     n_sets=256, seed=42)


def small_store(system=None, **overrides):
    return ShardedKvStore.create(
        Mode.GPM, system, StoreConfig(**{**SMALL_STORE, **overrides}))


# ---------------------------------------------------------------------------
# the sharded store
# ---------------------------------------------------------------------------


class TestShardedKvStore:
    def test_set_get_delete_round_trip_across_shards(self):
        store = small_store()
        keys = np.arange(1, 49, dtype=np.uint64)
        values = keys * np.uint64(1000)
        info = store.set_batch(keys, values)
        # The batch spans several shards and launches warp-sized grids.
        assert info["shards"] > 1
        assert info["threads"] % 32 == 0
        got, _ = store.get_batch(keys)
        assert np.array_equal(got, values)
        dead = keys[::2]
        store.delete_batch(dead)
        got, _ = store.get_batch(keys)
        assert np.all(got[::2] == 0)
        assert np.array_equal(got[1::2], values[1::2])

    def test_shard_grouping_matches_hash_ranges(self):
        store = small_store()
        keys = np.arange(1, 200, dtype=np.uint64)
        shards = store.shard_of_keys(keys)
        assert set(np.unique(shards)) <= set(range(SMALL_STORE["n_shards"]))
        # Every shard id must agree with the manifest-driven set mapping.
        from repro.workloads.kvs import hash64
        for key, shard in zip(keys.tolist(), shards.tolist()):
            set_idx = hash64(int(key)) % store.config.n_sets
            assert store.shards.shard_of_set(np.array([set_idx]))[0] == shard

    def test_flags_idle_and_logs_clear_after_commit(self):
        store = small_store()
        keys = np.arange(1, 33, dtype=np.uint64)
        store.set_batch(keys, keys)
        assert store.shards.active_shards() == []
        for name, _desc, check in serve_invariants(store.system):
            ok, detail = check()
            assert ok, (name, detail)

    def test_oversized_batch_rejected(self):
        store = small_store()
        keys = np.arange(1, 100, dtype=np.uint64)
        with pytest.raises(ValueError, match="log geometry"):
            store.set_batch(keys, keys)

    def test_crash_mid_set_batch_recovers_to_prior_state(self):
        system = make_system(Mode.GPM)
        store = small_store(system)
        committed = np.arange(1, 33, dtype=np.uint64)
        store.set_batch(committed, committed * np.uint64(7))
        before = (store.keys.np_persisted.copy(),
                  store.values.np_persisted.copy())
        injector = CrashInjector(system.machine)
        injector.arm(10)
        with pytest.raises(SimulatedCrash):
            store.set_batch(np.arange(100, 132, dtype=np.uint64),
                            np.arange(100, 132, dtype=np.uint64),
                            crash_injector=injector)
        injector.disarm()
        system.machine.crash()
        report = recover_store(system, Mode.GPM)
        assert report["recovered"], "the armed crash left no shard to undo"
        for name, _desc, check in serve_invariants(system):
            ok, detail = check()
            assert ok, (name, detail)
        # The interrupted batch is fully undone: the durable table is
        # exactly the committed prefix again.
        from repro.core.mapping import gpm_map
        table = gpm_map(system, "/pm/serve/table")
        n_pairs = store.config.n_pairs
        keys = table.region.persisted_view(np.uint64, 0, n_pairs)
        values = table.region.persisted_view(np.uint64, n_pairs * 8, n_pairs)
        assert np.array_equal(keys, before[0])
        assert np.array_equal(values, before[1])


# ---------------------------------------------------------------------------
# the batcher
# ---------------------------------------------------------------------------


def _req(key, op="set", tenant="t", arrival=0.0, value=1):
    return Request(tenant=tenant, op=op, key=key, value=value, arrival=arrival)


class TestBatcher:
    def _batcher(self, **cfg):
        store = small_store()
        from repro.serve.admission import AdmissionController
        admission = AdmissionController()
        cfg.setdefault("target_batch", 32)  # within the small store's logs
        batcher = Batcher(store, admission, BatcherConfig(**cfg))
        return batcher, admission

    def test_compaction_is_last_write_wins(self):
        batcher, _ = self._batcher()
        reqs = [_req(1, value=10), _req(2, value=20), _req(1, op="delete"),
                _req(3, op="get"), _req(2, value=21)]
        sets, deletes, gets, superseded = batcher._compact(reqs)
        assert [(r.key, r.value) for r in sets] == [(2, 21)]
        assert [r.key for r in deletes] == [1]
        assert [r.key for r in gets] == [3]
        assert {(r.key, r.op) for r in superseded} == {(1, "set"), (2, "set")}

    def test_size_trigger_and_linger_deadline(self):
        batcher, _ = self._batcher(target_batch=4, linger=20e-6)
        assert not batcher.should_flush(0.0)
        batcher.submit(_req(1, arrival=5e-6))
        assert batcher.next_deadline() == 5e-6 + 20e-6
        # The sum form: exactly at the deadline the flush fires.
        assert not batcher.should_flush(5e-6 + 19.9e-6)
        assert batcher.should_flush(batcher.next_deadline())
        for k in range(2, 5):
            batcher.submit(_req(k))
        assert batcher.should_flush(5e-6)  # size trigger, ignores linger

    def test_flush_chunks_backlog_to_target(self):
        batcher, admission = self._batcher(target_batch=8)
        admission.queue_depth = 20
        for k in range(1, 21):
            batcher.submit(_req(k))
        assert batcher.flush() == 8
        assert len(batcher.pending) == 12
        assert admission.queue_depth == 12

    def test_flush_completes_every_request_in_window(self):
        from repro.sim.events import ServiceComplete

        batcher, admission = self._batcher()
        seen = []
        bus = batcher.store.system.events
        bus.subscribe(lambda ts, e: seen.append(e)
                      if isinstance(e, ServiceComplete) else None)
        admission.queue_depth = 3
        batcher.submit(_req(1, value=5))
        batcher.submit(_req(1, value=6))   # supersedes the first SET
        batcher.submit(_req(1, op="get"))
        assert batcher.flush() == 3
        assert len(seen) == 3
        assert sum(e.coalesced for e in seen) == 1
        got, _ = batcher.store.get_batch(np.array([1], dtype=np.uint64))
        assert got[0] == 6  # the GET observed its window's last write


# ---------------------------------------------------------------------------
# the full service
# ---------------------------------------------------------------------------


class TestRunService:
    def test_summary_is_byte_identical_per_seed(self):
        a = run_service(ServiceConfig(**SMALL_SERVICE))
        b = run_service(ServiceConfig(**SMALL_SERVICE))
        assert summary_json(a["summary"]) == summary_json(b["summary"])
        c = run_service(ServiceConfig(**{**SMALL_SERVICE, "seed": 7}))
        assert summary_json(a["summary"]) != summary_json(c["summary"])

    def test_summary_reports_the_service_story(self):
        summary = run_service(ServiceConfig(**SMALL_SERVICE))["summary"]
        assert summary["offered"] > 100
        assert 0 < summary["completed"] <= summary["admitted"] <= summary["offered"]
        assert summary["throughput_ops_per_s"] > 0
        assert summary["batches"] > 1
        assert 0 < summary["batch_occupancy"] <= 1
        assert summary["latency"]["p50"] <= summary["latency"]["p95"] \
            <= summary["latency"]["p99"]
        assert len(summary["tenants"]) == SMALL_SERVICE["tenants"]
        for t in summary["tenants"].values():
            assert t["offered"] > 0
            for q in ("p50", "p95", "p99"):
                assert t["latency"][q] is not None

    def test_overload_sheds_instead_of_queueing_unboundedly(self):
        overload = {**SMALL_SERVICE, "rate": 3_000_000.0,
                    "tenant_rate": 500_000.0}
        summary = run_service(ServiceConfig(**overload))["summary"]
        assert summary["shed"] > 0
        assert 0 < summary["shed_rate"] < 1
        reasons = set()
        for t in summary["tenants"].values():
            reasons |= set(t["shed"])
        assert "tenant-rate" in reasons

    def test_mid_traffic_crash_recovers_every_shard(self):
        system = make_system(Mode.GPM)
        injector = CrashInjector(system.machine)
        injector.arm(600)
        config = ServiceConfig(**{**SMALL_SERVICE, "shards": 3})
        with pytest.raises(SimulatedCrash):
            run_service(config, system=system, crash_injector=injector)
        injector.disarm()
        system.machine.crash()
        report = recover_store(system, Mode.GPM)
        assert report["shards"] == 3
        assert report["recovered"], "the mid-flush crash left no active shard"
        assert report["elapsed"] > 0
        for name, _desc, check in serve_invariants(system):
            ok, detail = check()
            assert ok, (name, detail)

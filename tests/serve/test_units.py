"""Unit coverage of the serving layer's pieces: admission, traffic, shards.

End-to-end service behaviour (determinism, crash/recovery) lives in
``test_service.py``; this file pins each component's contract in
isolation, where failure messages actually name the broken piece.
"""

import numpy as np
import pytest

from repro.serve.admission import (
    AdmissionConfig,
    AdmissionController,
    TokenBucket,
)
from repro.serve.shards import ShardedHclLog, shard_of_sets, shard_set_range
from repro.serve.traffic import TrafficConfig, TrafficGenerator
from repro.workloads.base import Mode, make_system


# ---------------------------------------------------------------------------
# admission control
# ---------------------------------------------------------------------------


class TestTokenBucket:
    def test_burst_then_rate_limited(self):
        bucket = TokenBucket(rate=10.0, burst=3.0, now=0.0)
        assert all(bucket.try_take(0.0) for _ in range(3))
        assert not bucket.try_take(0.0)
        # 0.1 s at 10/s refills exactly one token.
        assert bucket.try_take(0.1)
        assert not bucket.try_take(0.1)

    def test_refill_caps_at_burst(self):
        bucket = TokenBucket(rate=100.0, burst=2.0, now=0.0)
        assert bucket.try_take(0.0, 2.0)
        assert not bucket.try_take(10.0, 3.0)  # a long idle gap buys burst, not more
        assert bucket.try_take(10.0, 2.0)

    def test_rejects_nonpositive_parameters(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0.0, burst=1.0)
        with pytest.raises(ValueError):
            TokenBucket(rate=1.0, burst=0.0)


class TestAdmissionController:
    def test_tenant_rate_shedding_is_per_tenant(self):
        ctl = AdmissionController(AdmissionConfig(
            tenant_rate=1000.0, tenant_burst=2.0, max_queue_depth=100))
        assert ctl.offer("a", 0.0) == (True, "")
        assert ctl.offer("a", 0.0) == (True, "")
        assert ctl.offer("a", 0.0) == (False, "tenant-rate")
        # Tenant b's bucket is untouched by a's burst.
        assert ctl.offer("b", 0.0) == (True, "")
        assert ctl.tenant_stats("a").shed_rate == 1
        assert ctl.tenant_stats("b").shed == 0

    def test_queue_full_shedding_and_drain(self):
        ctl = AdmissionController(AdmissionConfig(
            tenant_rate=1e9, tenant_burst=1e9, max_queue_depth=2))
        assert ctl.offer("a", 0.0)[0] and ctl.offer("a", 0.0)[0]
        assert ctl.offer("a", 0.0) == (False, "queue-full")
        assert ctl.tenant_stats("a").shed_queue == 1
        ctl.drained(2)
        assert ctl.queue_depth == 0
        assert ctl.offer("a", 0.0) == (True, "")

    def test_ledger_totals(self):
        ctl = AdmissionController(AdmissionConfig(
            tenant_rate=1000.0, tenant_burst=1.0, max_queue_depth=100))
        for _ in range(4):
            ctl.offer("t", 0.0)
        stats = ctl.tenant_stats("t")
        assert stats.offered == 4
        assert stats.admitted == 1
        assert stats.shed == 3

    def test_overdrain_is_a_bug(self):
        ctl = AdmissionController()
        with pytest.raises(AssertionError):
            ctl.drained(1)


# ---------------------------------------------------------------------------
# traffic generation
# ---------------------------------------------------------------------------


class TestTrafficGenerator:
    CFG = dict(tenants=3, rate=300_000.0, duration=5e-4, seed=9)

    def test_deterministic_per_seed(self):
        a = TrafficGenerator(TrafficConfig(**self.CFG)).streams()
        b = TrafficGenerator(TrafficConfig(**self.CFG)).streams()
        assert a == b
        c = TrafficGenerator(TrafficConfig(**{**self.CFG, "seed": 10})).streams()
        assert a != c

    def test_streams_independent_of_tenant_count(self):
        # Tenant i's schedule must not change when more tenants join (the
        # [seed, index] spawn-key property the docstring claims).
        two = TrafficGenerator(TrafficConfig(**{**self.CFG, "tenants": 2}))
        three = TrafficGenerator(TrafficConfig(**self.CFG))
        assert two.stream(1) == three.stream(1)

    def test_open_loop_schedules_sorted_and_bounded(self):
        for stream in TrafficGenerator(TrafficConfig(**self.CFG)).streams():
            arrivals = [r.arrival for r in stream.requests]
            assert arrivals == sorted(arrivals)
            assert all(0 <= a < self.CFG["duration"] for a in arrivals)

    def test_op_mix_and_key_space(self):
        cfg = TrafficConfig(**{**self.CFG, "read_fraction": 0.6,
                               "delete_fraction": 0.1, "key_space": 128})
        reqs = [r for s in TrafficGenerator(cfg).streams() for r in s.requests]
        ops = {r.op for r in reqs}
        assert ops == {"get", "set", "delete"}
        frac_get = sum(r.op == "get" for r in reqs) / len(reqs)
        assert 0.5 < frac_get < 0.7
        assert all(1 <= r.key <= 128 for r in reqs)
        assert all(r.value >= 1 for r in reqs)

    def test_rejects_bad_config(self):
        with pytest.raises(ValueError):
            TrafficGenerator(TrafficConfig(tenants=0))
        with pytest.raises(ValueError):
            TrafficGenerator(TrafficConfig(read_fraction=0.9,
                                           delete_fraction=0.2))


# ---------------------------------------------------------------------------
# shard addressing and the on-PM manifest
# ---------------------------------------------------------------------------


class TestShardAddressing:
    def test_contiguous_near_equal_ranges(self):
        n_sets, n_shards = 4096, 4
        shards = shard_of_sets(np.arange(n_sets), n_sets, n_shards)
        assert shards.min() == 0 and shards.max() == n_shards - 1
        # Contiguous: shard ids are non-decreasing over set indices.
        assert np.all(np.diff(shards) >= 0)
        counts = np.bincount(shards)
        assert counts.max() - counts.min() <= 1

    def test_range_helper_agrees_with_map(self):
        n_sets, n_shards = 100, 7  # deliberately non-divisible
        shards = shard_of_sets(np.arange(n_sets), n_sets, n_shards)
        for s in range(n_shards):
            first, last = shard_set_range(s, n_sets, n_shards)
            assert np.all(shards[first:last] == s)
        assert shard_set_range(0, n_sets, n_shards)[0] == 0
        assert shard_set_range(n_shards - 1, n_sets, n_shards)[1] == n_sets

    def test_ranges_partition_and_agree_across_full_grid(self):
        # Property pin over the whole legal (n_sets, n_shards) grid: the
        # per-shard ranges tile [0, n_sets) exactly, and every set index in
        # shard s's range maps back to s through shard_of_sets.
        for n_sets in range(1, 33):
            all_sets = np.arange(n_sets)
            for n_shards in range(1, n_sets + 1):
                shards = shard_of_sets(all_sets, n_sets, n_shards)
                cursor = 0
                for s in range(n_shards):
                    first, last = shard_set_range(s, n_sets, n_shards)
                    assert first == cursor, (n_sets, n_shards, s)
                    assert last > first, (n_sets, n_shards, s)
                    assert np.all(shards[first:last] == s), (n_sets, n_shards, s)
                    cursor = last
                assert cursor == n_sets, (n_sets, n_shards)

    def test_rejects_more_shards_than_sets(self):
        from repro.core.errors import GpmError

        with pytest.raises(GpmError):
            shard_of_sets(np.arange(4), n_sets=4, n_shards=5)
        with pytest.raises(GpmError):
            shard_set_range(0, n_sets=4, n_shards=5)
        with pytest.raises(GpmError):
            shard_set_range(0, n_sets=0, n_shards=1)
        with pytest.raises(GpmError):
            shard_set_range(0, n_sets=4, n_shards=0)
        with pytest.raises(GpmError):
            shard_set_range(4, n_sets=16, n_shards=4)  # shard id out of range
        system = make_system(Mode.GPM)
        with pytest.raises(GpmError):
            ShardedHclLog.create(system, "/pm/t", n_shards=8, n_sets=4,
                                 ways=8, blocks=1, threads_per_block=32)


class TestShardedHclLog:
    def test_manifest_round_trip_after_reopen(self):
        system = make_system(Mode.GPM)
        created = ShardedHclLog.create(system, "/pm/t", n_shards=3,
                                       n_sets=256, ways=8, blocks=2,
                                       threads_per_block=32)
        manifest = ShardedHclLog.manifest(system, "/pm/t")
        assert manifest == {"n_shards": 3, "n_sets": 256, "ways": 8,
                            "blocks": 2, "threads_per_block": 32}
        reopened = ShardedHclLog.open(system, "/pm/t")
        assert reopened.n_shards == created.n_shards
        assert reopened.n_sets == created.n_sets

    def test_begin_commit_tracks_active_shards(self):
        system = make_system(Mode.GPM)
        shards = ShardedHclLog.create(system, "/pm/t", n_shards=4,
                                      n_sets=64, ways=8, blocks=1,
                                      threads_per_block=32)
        assert shards.active_shards() == []
        shards.begin([1, 3])
        assert shards.active_shards() == [1, 3]
        shards.commit([1, 3])
        assert shards.active_shards() == []

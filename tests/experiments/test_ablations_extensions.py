"""Ablations and the CXL extension."""

import numpy as np
import pytest

from repro.experiments.ablations import (
    binomial_counter_example,
    ddio_ablation,
    hcl_striping_ablation,
    log_entry_size_sweep,
    warp_coalescing_ablation,
)
from repro.extensions import (
    GpfEngine,
    cxl_config,
    cxl_projection,
    gpf_inadequacy_demo,
)
from repro.sim import DEFAULT_CONFIG
from repro.system import System


class TestStripingAblation:
    @pytest.fixture(scope="class")
    def table(self):
        return hcl_striping_ablation()

    def test_striping_wins_severalfold(self, table):
        assert table.lookup("striped (Fig. 5)", "speedup_vs_unstriped") > 3

    def test_striping_cuts_transactions(self, table):
        striped_tx = table.lookup("striped (Fig. 5)", "pcie_tx")
        unstriped_tx = table.lookup("contiguous per thread", "pcie_tx")
        assert unstriped_tx > 4 * striped_tx


class TestCoalescingAblation:
    def test_strided_stores_cost_more(self):
        table = warp_coalescing_ablation()
        slow = table.column("slowdown_vs_coalesced")
        assert slow[0] == 1
        assert slow[1] > 3
        tx = table.column("pcie_tx")
        assert tx[1] == 32 * tx[0]  # 32 lanes scatter to 32 lines


class TestDdioAblation:
    def test_window_is_what_buys_durability(self):
        table = ddio_ablation()
        on = table.rows[0]
        off = table.rows[1]
        assert on[2] == 0 and on[3] is False
        assert off[2] > 0 and off[3] is True
        # the durability costs almost nothing in latency here (media absorbed)
        assert off[1] < 3 * on[1]


class TestEntrySizeSweep:
    def test_per_stripe_cost_amortises(self):
        table = log_entry_size_sweep()
        per_stripe = table.column("us_per_stripe")
        assert all(a >= b for a, b in zip(per_stripe, per_stripe[1:]))

    def test_latency_grows_sublinearly(self):
        table = log_entry_size_sweep()
        lat = table.column("latency_us")
        assert lat[-1] < 4 * lat[0]  # 16x the data, <4x the time


class TestBinomialCounterExample:
    def test_gpkvs_benefits_binomial_does_not(self):
        table = binomial_counter_example()
        kvs = table.lookup("gpKVS", "gpm_vs_capfs")
        bino = table.lookup("binomial options", "gpm_vs_capfs")
        assert kvs > 3 * bino


class TestCxlExtension:
    def test_config_overrides(self):
        cfg = cxl_config()
        assert cfg.pcie_bw > DEFAULT_CONFIG.pcie_bw
        assert cfg.pcie_rtt_s < DEFAULT_CONFIG.pcie_rtt_s
        assert cfg.pm_bw_seq_aligned == DEFAULT_CONFIG.pm_bw_seq_aligned

    def test_projection_shape(self):
        table = cxl_projection()
        # workloads are media-bound: CXL changes little
        for row in table.rows[:-1]:
            assert 0.95 < row[3] < 2.0
        # the persist plateau roughly doubles
        assert table.rows[-1][3] > 1.5

    def test_gpf_flushes_everything(self):
        system = System(cxl_config())
        region = system.machine.alloc_pm("x", 4096)
        region.write_bytes(0, [7] * 4096)
        system.machine.llc.install_writes(region, [0], [4096])
        t = GpfEngine(system).gpf()
        assert t > 0
        assert region.unpersisted_bytes() == 0

    def test_gpf_inadequacy_demo(self):
        evidence = gpf_inadequacy_demo()
        assert evidence["survived_without_gpf"] == 0
        assert evidence["survived_with_gpf"] == evidence["visible_before_crash"]
